package swarmavail

// The benchmark harness regenerates every table and figure of the paper
// at Quick scale — one benchmark per artefact, named after it — plus the
// ablation studies from DESIGN.md §4 and micro-benchmarks for the hot
// numerical and protocol paths. Headline quantities (optima,
// probabilities) are attached to the benchmark output via ReportMetric
// so `go test -bench` doubles as a results summary.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"swarmavail/internal/bittorrent/bencode"
	"swarmavail/internal/bittorrent/tracker"
	"swarmavail/internal/bittorrent/wire"
	"swarmavail/internal/core"
	"swarmavail/internal/dist"
	"swarmavail/internal/experiments"
	"swarmavail/internal/ingest"
	"swarmavail/internal/queue"
	"swarmavail/internal/swarm"
	"swarmavail/internal/trace"
	"swarmavail/internal/wal"
)

// benchDriver runs one experiment driver per iteration and reports a
// numeric headline extracted from its notes when extract is non-nil.
func benchDriver(b *testing.B, id string, metric string, extract func(*experiments.Result) float64) {
	b.Helper()
	d, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown driver %q", id)
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := d.Run(experiments.Quick, int64(42+i))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if extract != nil && last != nil {
		b.ReportMetric(extract(last), metric)
	}
}

// noteNumber pulls the last parseable float from the first note
// containing substr.
func noteNumber(res *experiments.Result, substr string) float64 {
	for _, n := range res.Notes {
		if !strings.Contains(n, substr) {
			continue
		}
		fields := strings.FieldsFunc(n, func(r rune) bool {
			return !(r == '.' || r == '-' || r == '+' || (r >= '0' && r <= '9'))
		})
		for i := len(fields) - 1; i >= 0; i-- {
			if v, err := strconv.ParseFloat(strings.Trim(fields[i], ".+-"), 64); err == nil {
				return v
			}
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// One benchmark per paper artefact.

func BenchmarkFig1SeedAvailabilityCDF(b *testing.B) {
	benchDriver(b, "fig1", "pct_fully_seeded_month1", func(r *experiments.Result) float64 {
		return noteNumber(r, "fully seeded")
	})
}

func BenchmarkSec23BundlingExtent(b *testing.B) {
	benchDriver(b, "sec2.3", "pct_seedless_bundles", func(r *experiments.Result) float64 {
		return noteNumber(r, "seedless")
	})
}

func BenchmarkFig2SamplePath(b *testing.B) {
	benchDriver(b, "fig2", "busy_periods", func(r *experiments.Result) float64 {
		return noteNumber(r, "busy periods")
	})
}

func BenchmarkFig3DownloadTimeVsK(b *testing.B) {
	benchDriver(b, "fig3", "optimal_K_at_900", func(r *experiments.Result) float64 {
		return noteNumber(r, "1/R=900")
	})
}

func BenchmarkFig4SeedlessAvailability(b *testing.B) {
	benchDriver(b, "fig4", "peers_served_K10", func(r *experiments.Result) float64 {
		return noteNumber(r, "K=10")
	})
}

func BenchmarkTableBmResidualBusyPeriods(b *testing.B) {
	benchDriver(b, "table-bm", "", nil)
}

func BenchmarkFig5PeerTimelines(b *testing.B) {
	benchDriver(b, "fig5", "", nil)
}

func BenchmarkFig6aDownloadTimeVsK(b *testing.B) {
	benchDriver(b, "fig6a", "testbed_optimal_K", func(r *experiments.Result) float64 {
		return noteNumber(r, "testbed optimal")
	})
}

func BenchmarkFig6bHeterogeneousUploads(b *testing.B) {
	benchDriver(b, "fig6b", "optimal_K", func(r *experiments.Result) float64 {
		return noteNumber(r, "optimal K")
	})
}

func BenchmarkFig6cHeterogeneousDemand(b *testing.B) {
	benchDriver(b, "fig6c", "bundle_mean_s", func(r *experiments.Result) float64 {
		return noteNumber(r, "bundle mean")
	})
}

func BenchmarkFig7ArrivalPatterns(b *testing.B) {
	benchDriver(b, "fig7", "", nil)
}

func BenchmarkTheoremScalingLaws(b *testing.B) {
	benchDriver(b, "scaling-laws", "doubling_ratio", func(r *experiments.Result) float64 {
		return noteNumber(r, "doubling-difference ratio")
	})
}

func BenchmarkFluidBaselineComparison(b *testing.B) {
	benchDriver(b, "fluid-baseline", "avail_model_optimum", func(r *experiments.Result) float64 {
		return noteNumber(r, "availability model optimum")
	})
}

func BenchmarkEq16ModelValidation(b *testing.B) {
	// The §4.3.1 validation curve evaluated directly from the model.
	model := core.SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	var best int
	for i := 0; i < b.N; i++ {
		best, _ = model.OptimalBundleSizeThreshold(8, 9, core.ConstantPublisher)
	}
	b.ReportMetric(float64(best), "model_optimal_K")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4).

func BenchmarkAblationCoverageThreshold(b *testing.B) {
	benchDriver(b, "ablation-threshold", "", nil)
}

func BenchmarkAblationPatience(b *testing.B) {
	benchDriver(b, "ablation-patience", "", nil)
}

func BenchmarkAblationLingering(b *testing.B) {
	benchDriver(b, "ablation-lingering", "", nil)
}

func BenchmarkAblationArrivalPattern(b *testing.B) {
	benchDriver(b, "ablation-arrivals", "", nil)
}

func BenchmarkAblationPieceSelection(b *testing.B) {
	benchDriver(b, "ablation-pieces", "", nil)
}

func BenchmarkAblationBusyPeriodModel(b *testing.B) {
	benchDriver(b, "ablation-busyperiod", "", nil)
}

func BenchmarkAblationWaitingGroup(b *testing.B) {
	benchDriver(b, "ablation-waitinggroup", "", nil)
}

func BenchmarkAblationDistributions(b *testing.B) {
	benchDriver(b, "ablation-distributions", "", nil)
}

func BenchmarkAblationTraffic(b *testing.B) {
	benchDriver(b, "ablation-traffic", "overhead_K4", func(r *experiments.Result) float64 {
		return noteNumber(r, "K=4")
	})
}

func BenchmarkAblationImpatience(b *testing.B) {
	benchDriver(b, "ablation-impatience", "", nil)
}

func BenchmarkAblationUnchokeSlots(b *testing.B) {
	benchDriver(b, "ablation-slots", "", nil)
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot paths.

func BenchmarkEq9BusyPeriod(b *testing.B) {
	// The Figure 3 hot spot: one eq. (9) evaluation at bundle scale.
	p := experiments.Fig3Params
	p.R = 1.0 / 900
	bundle := p.Bundle(8, core.ConstantPublisher)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bundle.BusyPeriod()
	}
}

func BenchmarkResidualBusyPeriodTable(b *testing.B) {
	p := core.SwarmParams{Lambda: 1.0 / 150, Size: 4000, Mu: 33, R: 1.0 / 900, U: 300}
	k6 := p.Bundle(6, core.ScaledPublisher)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k6.SteadyStateResidualBusyPeriod(9)
	}
}

func BenchmarkSwarmSimulatorK4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		files := make([]swarm.FileSpec, 4)
		for j := range files {
			files[j] = swarm.FileSpec{SizeKB: 4000, Lambda: 1.0 / 60}
		}
		_, err := swarm.Run(swarm.Config{
			Seed:                int64(i),
			Files:               files,
			PeerUpload:          dist.Deterministic{Value: 50},
			PublisherUploadKBps: 100,
			PublisherMode:       swarm.PublisherOnOff,
			PublisherOn:         dist.NewExponentialFromMean(300),
			PublisherOff:        dist.NewExponentialFromMean(900),
			DepartureLagSeconds: 15,
			ArrivalCutoff:       1200,
			Horizon:             8000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMGInfBusyPeriodSimulation(b *testing.B) {
	r := dist.NewRand(1)
	cfg := queue.BusyPeriodConfig{
		Beta:    0.02,
		First:   dist.Exponential{Rate: 1.0 / 300},
		Service: dist.Exponential{Rate: 1.0 / 80},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = queue.SimulateBusyPeriods(r, cfg, 100)
	}
}

func BenchmarkBencodeRoundTrip(b *testing.B) {
	v := map[string]any{
		"announce": "http://127.0.0.1:7070/announce",
		"info": map[string]any{
			"name":         "bundle",
			"piece length": int64(262144),
			"pieces":       strings.Repeat("01234567890123456789", 64),
			"files": []any{
				map[string]any{"length": int64(4000000), "path": []any{"ep1.avi"}},
				map[string]any{"length": int64(4000000), "path": []any{"ep2.avi"}},
			},
		},
	}
	enc, err := bencode.Encode(v)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc2, err := bencode.Encode(v)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bencode.Decode(enc2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireMessageRoundTrip(b *testing.B) {
	block := make([]byte, 16*1024)
	rand.New(rand.NewSource(1)).Read(block)
	msg := &wire.Message{Type: wire.MsgPiece, Index: 3, Begin: 0, Block: block}
	var buf bytes.Buffer
	b.SetBytes(int64(len(block)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := wire.WriteMessage(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := wire.ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackerAnnounce(b *testing.B) {
	srv := tracker.NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var ih [20]byte
	req := tracker.AnnounceRequest{
		TrackerURL: ts.URL + "/announce",
		InfoHash:   ih,
		Port:       7000,
		Left:       1000,
		IP:         "127.0.0.1",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(req.PeerID[:], strconv.Itoa(i%500))
		if _, err := tracker.Announce(ts.Client(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOps converts a pre-generated availability campaign to monitor
// ops once per benchmark process.
func benchOps() []ingest.Op {
	traces := GenerateStudy(DefaultStudyConfig(2000, 42))
	var ops []ingest.Op
	for _, t := range traces {
		ops = append(ops, ingest.TraceOps(t)...)
	}
	return ops
}

// BenchmarkIngest measures the streaming-analytics hot path
// (internal/ingest): a pre-generated availability campaign pushed
// through the sharded engine by one producer each iteration.
// Sub-benchmarks compare a single shard against 8 so future PRs can
// track both raw apply cost and sharding speed-up; records/sec is
// attached as a metric (computed from wall time, so it is exactly as
// stable as ns/op).
func BenchmarkIngest(b *testing.B) {
	ops := benchOps()
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := ingest.New(ingest.Config{Shards: shards})
				w := e.NewWriter()
				for _, op := range ops {
					w.Put(op)
				}
				w.Flush()
				e.Flush()
				e.Close()
			}
			b.ReportMetric(float64(len(ops))*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
			b.ReportMetric(float64(len(ops)), "records/op")
		})
	}
}

// BenchmarkIngestParallel is the multi-producer variant: GOMAXPROCS
// concurrent writers feed one engine, traces dealt round-robin so each
// swarm's ops stay with one producer (the ordering contract). This is
// the configuration the shard-scaling acceptance numbers come from —
// a single producer saturates before 8 shards do.
func BenchmarkIngestParallel(b *testing.B) {
	traces := GenerateStudy(DefaultStudyConfig(2000, 42))
	producers := runtime.GOMAXPROCS(0)
	parts := make([][]ingest.Op, producers)
	var total int
	for i, t := range traces {
		ops := ingest.TraceOps(t)
		parts[i%producers] = append(parts[i%producers], ops...)
		total += len(ops)
	}
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := ingest.New(ingest.Config{Shards: shards})
				var wg sync.WaitGroup
				for _, part := range parts {
					wg.Add(1)
					go func(part []ingest.Op) {
						defer wg.Done()
						w := e.NewWriter()
						for _, op := range part {
							w.Put(op)
						}
						w.Flush()
					}(part)
				}
				wg.Wait()
				e.Flush()
				e.Close()
			}
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
			b.ReportMetric(float64(total), "records/op")
		})
	}
}

// BenchmarkMixedReadWrite is the read-path-scale acceptance benchmark:
// GOMAXPROCS producers stream the campaign into an 8-shard engine with
// a snapshot query interleaved every 128 records — each query a full
// Snapshot() merge plus summary/windowed-response rendering, i.e. what
// /v1/summary and /v1/availability/window cost the engine. The
// interleave makes the query load deterministic (free-running reader
// goroutines starve unpredictably at low GOMAXPROCS, turning the metric
// into a scheduler lottery); the actual readers-race-writers
// concurrency is exercised by TestSnapshotReadersRaceWritersAndClose.
// Queries ride the lock-free snapshot path and never touch the shard
// queues, so ingest records/sec must stay within 10% of the write-only
// BenchmarkIngestParallel/shards=8 number while queries/sec clears 10⁴
// — both attached as metrics.
func BenchmarkMixedReadWrite(b *testing.B) {
	traces := GenerateStudy(DefaultStudyConfig(2000, 42))
	producers := runtime.GOMAXPROCS(0)
	parts := make([][]ingest.Op, producers)
	var total int
	for i, t := range traces {
		ops := ingest.TraceOps(t)
		parts[i%producers] = append(parts[i%producers], ops...)
		total += len(ops)
	}
	const queryEvery = 128
	b.ReportAllocs()
	var queries atomic.Int64
	for i := 0; i < b.N; i++ {
		e := ingest.New(ingest.Config{Shards: 8})
		var wg sync.WaitGroup
		for _, part := range parts {
			wg.Add(1)
			go func(part []ingest.Op) {
				defer wg.Done()
				w := e.NewWriter()
				for j, op := range part {
					w.Put(op)
					if j%queryEvery == 0 {
						snap := e.Snapshot()
						_ = snap.Summary.Headlines()
						_ = ingest.NewWindowResponse(snap.Window, 1)
						queries.Add(1)
					}
				}
				w.Flush()
			}(part)
		}
		wg.Wait()
		e.Flush()
		e.Close()
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	b.ReportMetric(float64(total), "records/op")
	b.ReportMetric(float64(queries.Load())/b.Elapsed().Seconds(), "queries/sec")
}

// benchRecords builds a deterministic monitor-record campaign shared by
// the ingest protocol benchmarks.
func benchRecords(n int) []ingest.Record {
	recs := make([]ingest.Record, n)
	for i := range recs {
		recs[i] = ingest.Record{
			SwarmID: i % 499,
			PeerID:  uint64(i%97 + 1),
			Seed:    i%3 == 0,
			Online:  i%7 != 6,
			Time:    float64(i%1000) / 10,
		}
	}
	return recs
}

// BenchmarkIngestStream compares the two ingest wire protocols end to
// end on identical 8-shard engines: JSONL batches over POST /v1/ingest
// (the handler's scanner-decode-then-Submit core) versus the
// length-framed binary stream (DESIGN.md §12) through a StreamClient
// over real loopback TCP. Each iteration pushes the same campaign into
// a fresh engine; records/sec is the acceptance metric — the binary
// stream must hold ≥5× the JSON path's throughput.
func BenchmarkIngestStream(b *testing.B) {
	const total, batch = 16384, 512
	recs := benchRecords(total)

	b.Run("json-http", func(b *testing.B) {
		var e *ingest.Engine
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sc := trace.NewScanner[ingest.Record](r.Body)
			var ops []ingest.Op
			for sc.Scan() {
				ops = append(ops, ingest.EventOp(sc.Record()))
			}
			if err := sc.Err(); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := e.Submit(ops); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintf(w, `{"accepted":%d}`, len(ops))
		}))
		defer srv.Close()
		client := ingest.NewHTTPClient(ingest.HTTPClientConfig{BaseURL: srv.URL, MaxAttempts: 2})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e = ingest.New(ingest.Config{Shards: 8})
			b.StartTimer()
			for off := 0; off < total; off += batch {
				if err := client.Push(context.Background(), recs[off:off+batch]); err != nil {
					b.Fatal(err)
				}
			}
			e.Flush()
			b.StopTimer()
			e.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	})

	b.Run("binary-stream", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := ingest.New(ingest.Config{Shards: 8})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			ss := ingest.NewStreamServer(e, nil)
			done := make(chan struct{})
			go func() { defer close(done); _ = ss.Serve(ln) }()
			b.StartTimer()
			c := ingest.NewStreamClient(ingest.StreamClientConfig{
				Addr:      ln.Addr().String(),
				BatchSize: batch,
			})
			for _, rec := range recs {
				if err := c.Observe(rec); err != nil {
					b.Fatal(err)
				}
			}
			if err := c.Close(); err != nil {
				b.Fatal(err)
			}
			e.Flush()
			b.StopTimer()
			ln.Close()
			ss.Close()
			<-done
			e.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	})
}

// BenchmarkTraceDecode compares the two JSONL decode paths on the same
// archived campaign: the sequential json.Decoder Scanner versus the
// order-preserving parallel worker-pool decoder replay and analysis now
// run on.
func BenchmarkTraceDecode(b *testing.B) {
	traces := GenerateStudy(DefaultStudyConfig(2000, 42))
	var buf bytes.Buffer
	if err := trace.WriteTraces(&buf, traces); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	run := func(b *testing.B, open func() trace.Source[trace.SwarmTrace]) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		var n int
		for i := 0; i < b.N; i++ {
			sc := open()
			n = 0
			for sc.Scan() {
				n++
			}
			if err := sc.Err(); err != nil {
				b.Fatal(err)
			}
			if n != len(traces) {
				b.Fatalf("decoded %d records, want %d", n, len(traces))
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	}
	b.Run("scanner", func(b *testing.B) {
		run(b, func() trace.Source[trace.SwarmTrace] {
			return trace.NewTraceScanner(bytes.NewReader(data))
		})
	})
	b.Run("parallel", func(b *testing.B) {
		run(b, func() trace.Source[trace.SwarmTrace] {
			return trace.NewParallelTraceScanner(bytes.NewReader(data), 0)
		})
	})
}

// BenchmarkWALAppend measures the durable-ingest journal's append path
// — frame framing, CRC, buffered write and segment rotation — with
// fsync off, so the number tracks the code, not the CI runner's disk.
// Sub-benchmark "sync" appends through a real fsync per append (the
// default acked⇒durable policy); its absolute value is storage-bound
// and noisy, but a large allocs/op jump still names itself.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 256)
	rand.New(rand.NewSource(9)).Read(payload)
	run := func(b *testing.B, policy wal.SyncPolicy) {
		log, _, err := wal.Open(b.TempDir(), wal.Options{Policy: policy})
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if _, err := log.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nosync", func(b *testing.B) { run(b, wal.SyncNone) })
	b.Run("sync", func(b *testing.B) { run(b, wal.SyncEachAppend) })
}

func BenchmarkStudyGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = GenerateStudy(DefaultStudyConfig(2000, int64(i)))
	}
}

func BenchmarkSnapshotGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = GenerateSnapshot(SnapshotConfig{Seed: int64(i), NumSwarms: 5000})
	}
}
