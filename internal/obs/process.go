package obs

import (
	"runtime"
	"sync"
	"time"
)

// memCache caches one runtime.ReadMemStats per refresh window so a
// scrape touching several process_* gauges pays for a single (brief
// stop-the-world) read, and rapid scrapes don't hammer the runtime.
type memCache struct {
	mu     sync.Mutex
	at     time.Time
	stats  runtime.MemStats
	maxAge time.Duration
}

func (c *memCache) get() *runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) > c.maxAge {
		runtime.ReadMemStats(&c.stats)
		c.at = time.Now()
	}
	return &c.stats
}

// RegisterProcessMetrics registers runtime/process gauges on reg:
// uptime, goroutine count, heap usage, GC cycles and pause time. Safe
// to call on a nil registry (no-op) and idempotent on the same one.
func RegisterProcessMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	start := time.Now()
	cache := &memCache{maxAge: time.Second}
	reg.GaugeFunc("process_uptime_seconds", func() float64 {
		return time.Since(start).Seconds()
	})
	reg.GaugeFunc("process_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("process_heap_alloc_bytes", func() float64 {
		return float64(cache.get().HeapAlloc)
	})
	reg.GaugeFunc("process_heap_sys_bytes", func() float64 {
		return float64(cache.get().HeapSys)
	})
	reg.GaugeFunc("process_heap_objects", func() float64 {
		return float64(cache.get().HeapObjects)
	})
	reg.GaugeFunc("process_gc_cycles_total", func() float64 {
		return float64(cache.get().NumGC)
	})
	reg.GaugeFunc("process_gc_pause_seconds_total", func() float64 {
		return float64(cache.get().PauseTotalNs) / 1e9
	})
	reg.GaugeFunc("process_cpus", func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
}
