package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// formatLabels renders {k="v",...} (empty string for no labels).
func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString("=")
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus encodes every series in the Prometheus text
// exposition format (version 0.0.4): # TYPE comments, cumulative
// histogram buckets with le labels, _sum and _count series. Output is
// sorted by name then labels, so scrapes are diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastFamily string
	for _, m := range r.sorted() {
		if m.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
			lastFamily = m.name
		}
		ls := formatLabels(m.labels)
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, ls, m.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, ls, formatValue(m.gauge.Value())); err != nil {
				return err
			}
		case kindGaugeFunc:
			fn := m.gaugeFn
			v := 0.0
			if fn != nil {
				v = fn()
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, ls, formatValue(v)); err != nil {
				return err
			}
		case kindHistogram:
			h := m.hist
			counts := h.bucketCounts()
			var cum uint64
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(h.bounds) {
					le = formatValue(h.bounds[i])
				}
				bls := formatLabels(m.labels, Label{Key: "le", Value: le})
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, bls, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.name, ls, formatValue(h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, ls, h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON encodes the registry as one flat JSON object mapping
// series id ("name" or "name{k=\"v\"}") to value — the /debug/vars
// shape. Histograms flatten to _count, _sum, _mean, _p50, _p99.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]float64)
	for _, m := range r.sorted() {
		id := m.name + formatLabels(m.labels)
		switch m.kind {
		case kindCounter:
			out[id] = float64(m.counter.Value())
		case kindGauge:
			out[id] = m.gauge.Value()
		case kindGaugeFunc:
			if m.gaugeFn != nil {
				out[id] = m.gaugeFn()
			} else {
				out[id] = 0
			}
		case kindHistogram:
			ls := formatLabels(m.labels)
			out[m.name+"_count"+ls] = float64(m.hist.Count())
			out[m.name+"_sum"+ls] = m.hist.Sum()
			out[m.name+"_mean"+ls] = m.hist.Mean()
			out[m.name+"_p50"+ls] = m.hist.Quantile(0.5)
			out[m.name+"_p99"+ls] = m.hist.Quantile(0.99)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
