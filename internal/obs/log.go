package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// ParseLevel maps a -log-level flag value ("debug", "info", "warn",
// "error") to a slog.Level, defaulting to Info for unknown strings.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds a structured logger writing to w (os.Stderr when
// nil) at the given level, as logfmt-style text or JSON. component is
// attached to every record so multi-binary log streams stay
// attributable.
func NewLogger(w io.Writer, component string, level slog.Level, jsonFormat bool) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	if component != "" {
		l = l.With("component", component)
	}
	return l
}

// Logf adapts a structured logger to the printf-style Logf hooks used
// across the repository (peer.Config.Logf, ingest.HTTPClientConfig.Logf
// and friends). Events land at Info with the formatted text as the
// message. Returns nil for a nil logger, so the hook stays optional.
func Logf(l *slog.Logger) func(format string, args ...any) {
	if l == nil {
		return nil
	}
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
