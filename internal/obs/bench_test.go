package obs

import (
	"io"
	"testing"
)

// Registry hot paths. These feed the BENCH_obs.json baseline via
// cmd/benchdiff; keep names stable.

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkCounterLookup measures the labeled map lookup that a
// handler pays when it resolves the series per call instead of
// capturing the handle.
func BenchmarkCounterLookup(b *testing.B) {
	r := NewRegistry()
	l1, l2 := L("handler", "api"), L("code", "2xx")
	r.Counter("bench_total", l1, l2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("bench_total", l1, l2).Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", LatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-6)
			i++
		}
	})
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter("series_total", L("i", string(rune('a'+i)))).Add(uint64(i))
	}
	r.Histogram("lat_seconds", LatencyBuckets).Observe(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
