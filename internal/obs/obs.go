// Package obs is the repository's observability layer: a
// dependency-free metrics registry (atomic counters, gauges and
// histograms with Prometheus-text and JSON encodings), log/slog-based
// structured logging helpers, HTTP middleware for request metrics and
// logging, and an admin handler exposing /metrics, /debug/vars and
// (opt-in) net/http/pprof.
//
// # Design
//
// The hot path is lock-free: an instrument handle (*Counter, *Gauge,
// *Histogram) is looked up once at construction and then updated with
// single atomic operations — an Inc costs one uncontended atomic add,
// nothing else. The registry itself is only locked when instruments are
// created or a snapshot is taken.
//
// Every constructor and instrument method is nil-safe: a nil *Registry
// hands out nil instruments, and updates on nil instruments are no-ops.
// Packages can therefore accept an optional registry and instrument
// themselves unconditionally; callers that pass nil pay (almost)
// nothing.
//
// # Naming conventions
//
// Metric names follow the Prometheus style: snake_case, a subsystem
// prefix (ingest_, tracker_, peer_, swarm_sim_, http_, process_), a
// _total suffix on counters, and base units (seconds, bytes) on
// histograms and gauges. Labels are for bounded dimensions only —
// shard indexes, HTTP status classes, result classes — never for
// unbounded values such as swarm or peer ids.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Keep value cardinality bounded.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates the instrument types held by a registry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series.
type metric struct {
	name   string
	labels []Label
	kind   kind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds a set of named instruments. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is a valid no-op
// sink: every constructor returns nil instruments and every snapshot is
// empty.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// seriesKey builds the unique lookup key for name+labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte(0xfe)
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns a sorted copy so label order never splits series.
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns the series, creating it with mk on first use. It
// panics if the name+labels are already registered as a different kind
// — that is a programming error, not a runtime condition.
func (r *Registry) lookup(name string, labels []Label, k kind, mk func(*metric)) *metric {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.RLock()
	m, ok := r.byKey[key]
	r.mu.RUnlock()
	if ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: %q registered as %s, requested as %s", name, m.kind, k))
		}
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok = r.byKey[key]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("obs: %q registered as %s, requested as %s", name, m.kind, k))
		}
		return m
	}
	m = &metric{name: name, labels: labels, kind: k}
	mk(m)
	r.byKey[key] = m
	return m
}

// Counter returns (registering on first use) the counter for
// name+labels. Calling again with the same series returns the same
// handle. A nil registry returns nil (a no-op counter).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindCounter, func(m *metric) {
		m.counter = &Counter{}
	}).counter
}

// Gauge returns (registering on first use) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindGauge, func(m *metric) {
		m.gauge = &Gauge{}
	}).gauge
}

// GaugeFunc registers a callback gauge evaluated at snapshot time. A
// second registration of the same series replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	m := r.lookup(name, labels, kindGaugeFunc, func(m *metric) {})
	r.mu.Lock()
	m.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns (registering on first use) the histogram for
// name+labels with the given bucket upper bounds (ascending; a +Inf
// overflow bucket is implicit). Buckets are fixed at first registration.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindHistogram, func(m *metric) {
		m.hist = newHistogram(buckets)
	}).hist
}

// sorted returns the registry's series ordered by name then labels.
func (r *Registry) sorted() []*metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	ms := make([]*metric, 0, len(r.byKey))
	for _, m := range r.byKey {
		ms = append(ms, m)
	}
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return seriesKey("", ms[i].labels) < seriesKey("", ms[j].labels)
	})
	return ms
}

// Value returns the current value of a counter, gauge or gauge func
// series (false if the series does not exist or is a histogram).
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	key := seriesKey(name, sortLabels(labels))
	r.mu.RLock()
	m, ok := r.byKey[key]
	var fn func() float64
	if ok {
		fn = m.gaugeFn
	}
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	switch m.kind {
	case kindCounter:
		return float64(m.counter.Value()), true
	case kindGauge:
		return m.gauge.Value(), true
	case kindGaugeFunc:
		if fn == nil {
			return 0, false
		}
		return fn(), true
	}
	return 0, false
}

// Sum adds up every series of the given name across label sets
// (counters, gauges and gauge funcs; histograms are skipped).
func (r *Registry) Sum(name string) float64 {
	var total float64
	for _, m := range r.sorted() {
		if m.name != name {
			continue
		}
		switch m.kind {
		case kindCounter:
			total += float64(m.counter.Value())
		case kindGauge:
			total += m.gauge.Value()
		case kindGaugeFunc:
			if m.gaugeFn != nil {
				total += m.gaugeFn()
			}
		}
	}
	return total
}

// ---------------------------------------------------------------------------
// Instruments.

// Counter is a monotonically increasing uint64. All methods are safe
// for concurrent use and no-ops on a nil receiver.
//
// The value is padded out to its own cache line: hot counters (e.g.
// ingest's per-shard applied counters) are allocated back-to-back, and
// without the padding two cores incrementing adjacent counters would
// bounce the shared line between them (false sharing).
type Counter struct {
	v atomic.Uint64
	_ [56]byte // pad to 64 bytes so adjacent counters don't share a line
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Observe is a
// binary search plus two atomic adds — no locks — so it is safe on hot
// paths. All methods no-op on a nil receiver.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1), // +1: overflow (+Inf)
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the average observation (0 with no data).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the bucket holding the target rank. The answer
// is bucket-resolution accurate: exact to within one bucket's width.
// Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper bound; report its floor.
				return lo
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// bucketCounts returns a stable copy of the per-bucket counts.
func (h *Histogram) bucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// ExpBuckets returns count upper bounds growing geometrically from
// start by factor — the standard shape for latency histograms.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, count ≥ 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 10 ns to ~100 s at factor 2 — a good default
// for batch/request latencies.
var LatencyBuckets = ExpBuckets(1e-8, 2, 34)

// SizeBuckets spans 1 to ~1M at factor 4 — a good default for batch
// and payload sizes.
var SizeBuckets = ExpBuckets(1, 4, 11)
