package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentIncrements hammers one counter, one gauge and one
// histogram from N goroutines and checks nothing is lost — the
// satellite race test for the registry hot paths. Run under -race.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	g := r.Gauge("level")
	h := r.Histogram("lat", ExpBuckets(1, 2, 10))

	const goroutines = 16
	const perG = 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 100))
			}
		}()
	}
	wg.Wait()

	const want = goroutines * perG
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %v, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := h.Sum(); got != float64(goroutines)*perG/100*4950 {
		t.Errorf("histogram sum = %v", got)
	}
}

// TestSnapshotDuringWrites encodes the registry continuously while
// writers mutate it and create new series — snapshot-during-write must
// never race, panic, or produce unparseable output.
func TestSnapshotDuringWrites(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("stream_total", L("w", fmt.Sprint(i)))
			h := r.Histogram("stream_lat", LatencyBuckets, L("w", fmt.Sprint(i)))
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(j%1000) * 1e-6)
				if j%100 == 0 {
					// New series appear mid-flight too.
					r.Gauge("late_gauge", L("w", fmt.Sprint(i)), L("j", fmt.Sprint(j%5))).Set(float64(j))
				}
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("encode during writes: %v", err)
		}
		var jbuf bytes.Buffer
		if err := r.WriteJSON(&jbuf); err != nil {
			t.Fatalf("json encode during writes: %v", err)
		}
		_ = r.Sum("stream_total")
	}
	close(stop)
	wg.Wait()
}
