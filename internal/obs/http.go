package obs

import (
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// statusRecorder captures the response status and size for middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// statusClass buckets an HTTP status into "2xx".."5xx" — bounded label
// cardinality regardless of what handlers return.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// InstrumentHandler wraps h with request metrics on reg:
//
//	http_requests_total{handler, code}   counter
//	http_request_seconds{handler}        histogram
//	http_in_flight{handler}              gauge
//	http_response_bytes_total{handler}   counter
//
// handler should be a short route-class name (e.g. "api", "admin"),
// not the raw path, to keep cardinality bounded.
func InstrumentHandler(reg *Registry, handler string, h http.Handler) http.Handler {
	if reg == nil {
		return h
	}
	hl := L("handler", handler)
	duration := reg.Histogram("http_request_seconds", LatencyBuckets, hl)
	inFlight := reg.Gauge("http_in_flight", hl)
	respBytes := reg.Counter("http_response_bytes_total", hl)
	// Pre-register the common classes so scrapes show the series at 0.
	for _, class := range []string{"2xx", "4xx", "5xx"} {
		reg.Counter("http_requests_total", hl, L("code", class))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inFlight.Add(1)
		defer inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		duration.Observe(time.Since(start).Seconds())
		reg.Counter("http_requests_total", hl, L("code", statusClass(rec.status))).Inc()
		respBytes.Add(uint64(rec.bytes))
	})
}

// LogRequests wraps h with structured request logging: one Info record
// per request with method, path, status, bytes and duration. A nil
// logger returns h unchanged.
func LogRequests(l *slog.Logger, h http.Handler) http.Handler {
	if l == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		l.Info("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration", time.Since(start),
			"remote", r.RemoteAddr,
		)
	})
}

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// VarsHandler serves the registry as a flat JSON object — the
// /debug/vars (expvar-style) view of the same series.
func VarsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
}

// AdminHandler builds the admin surface every daemon mounts:
//
//	GET /metrics       Prometheus text
//	GET /debug/vars    flat JSON of the same series
//	GET /healthz       liveness
//	GET /debug/pprof/  net/http/pprof (only when enablePprof)
//
// pprof is opt-in because profiling endpoints on a reachable port are
// a denial-of-service and information-disclosure surface; bind the
// admin listener to loopback and enable it deliberately.
func AdminHandler(reg *Registry, enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", MetricsHandler(reg))
	mux.Handle("GET /debug/vars", VarsHandler(reg))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
