package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInstrumentHandler(t *testing.T) {
	r := NewRegistry()
	h := InstrumentHandler(r, "api", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/boom" {
			http.Error(w, "no", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("hello"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/ok")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if v, _ := r.Value("http_requests_total", L("handler", "api"), L("code", "2xx")); v != 3 {
		t.Errorf("2xx = %v, want 3", v)
	}
	if v, _ := r.Value("http_requests_total", L("handler", "api"), L("code", "5xx")); v != 1 {
		t.Errorf("5xx = %v, want 1", v)
	}
	// "hello"×3 plus http.Error's "no\n".
	if v, _ := r.Value("http_response_bytes_total", L("handler", "api")); v != 3*5+3 {
		t.Errorf("response bytes = %v, want 18", v)
	}
	hist := r.Histogram("http_request_seconds", LatencyBuckets, L("handler", "api"))
	if hist.Count() != 4 {
		t.Errorf("duration observations = %d, want 4", hist.Count())
	}
	if v, _ := r.Value("http_in_flight", L("handler", "api")); v != 0 {
		t.Errorf("in-flight after completion = %v", v)
	}
}

func TestAdminHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ingest_records_total").Add(11)
	RegisterProcessMetrics(r)
	srv := httptest.NewServer(AdminHandler(r, true))
	defer srv.Close()

	get := func(path string) (string, int) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.String(), resp.StatusCode
	}

	body, code := get("/metrics")
	if code != 200 || !strings.Contains(body, "ingest_records_total 11") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if !strings.Contains(body, "process_goroutines") {
		t.Error("/metrics missing process metrics")
	}

	body, code = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: code=%d", code)
	}
	var vars map[string]float64
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars["ingest_records_total"] != 11 {
		t.Errorf("vars ingest_records_total = %v", vars["ingest_records_total"])
	}

	if _, code = get("/healthz"); code != 200 {
		t.Errorf("/healthz code = %d", code)
	}
	if body, code = get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("pprof cmdline: code=%d body=%q", code, body)
	}

	// pprof off by default.
	srv2 := httptest.NewServer(AdminHandler(r, false))
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("pprof reachable without opt-in")
	}
}

func TestLogRequests(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, nil))
	h := LogRequests(l, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/tea")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := buf.String()
	if !strings.Contains(out, "path=/tea") || !strings.Contains(out, "status=418") {
		t.Errorf("request log missing fields: %q", out)
	}
}

func TestLogfAdapter(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, nil))
	f := Logf(l)
	f("dial %s failed after %d tries", "1.2.3.4:5", 3)
	if !strings.Contains(buf.String(), "dial 1.2.3.4:5 failed after 3 tries") {
		t.Errorf("Logf output: %q", buf.String())
	}
	if Logf(nil) != nil {
		t.Error("Logf(nil) should be nil so hooks stay unset")
	}
}
