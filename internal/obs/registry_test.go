package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("widgets_total"); c2 != c {
		t.Fatalf("same series returned a different handle")
	}

	g := r.Gauge("level")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	g.SetMax(1.0)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("SetMax lowered the gauge to %v", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax = %v, want 9", got)
	}

	r.GaugeFunc("answer", func() float64 { return 42 })
	if v, ok := r.Value("answer"); !ok || v != 42 {
		t.Fatalf("gauge func = %v ok=%v", v, ok)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", L("code", "2xx"))
	b := r.Counter("reqs_total", L("code", "5xx"))
	if a == b {
		t.Fatal("different label values shared a handle")
	}
	a.Add(3)
	b.Inc()
	if v, _ := r.Value("reqs_total", L("code", "2xx")); v != 3 {
		t.Fatalf("2xx = %v, want 3", v)
	}
	if got := r.Sum("reqs_total"); got != 4 {
		t.Fatalf("Sum = %v, want 4", got)
	}
	// Label order must not split series.
	c := r.Counter("multi", L("b", "2"), L("a", "1"))
	d := r.Counter("multi", L("a", "1"), L("b", "2"))
	if c != d {
		t.Fatal("label order split one series into two")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", ExpBuckets(0.001, 2, 20))
	// 1000 observations uniform in [0, 1).
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if mean := h.Mean(); math.Abs(mean-0.4995) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
	// With factor-2 buckets the quantile is accurate to within the
	// holding bucket's width.
	p50 := h.Quantile(0.5)
	if p50 < 0.25 || p50 > 1.1 {
		t.Fatalf("p50 = %v, want ≈0.5 within one bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.5 || p99 > 1.1 {
		t.Fatalf("p99 = %v, want ≈0.99 within one bucket", p99)
	}
	if q0 := h.Quantile(0); q0 < 0 {
		t.Fatalf("q0 = %v", q0)
	}
	// Values beyond the last bound land in the overflow bucket.
	h2 := r.Histogram("over", []float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want floor of +Inf bucket (2)", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total")
	c.Inc()
	c.Add(3)
	g := r.Gauge("g")
	g.Set(1)
	g.Add(1)
	g.SetMax(5)
	h := r.Histogram("h", LatencyBuckets)
	h.Observe(0.1)
	r.GaugeFunc("f", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	if _, ok := r.Value("a_total"); ok {
		t.Fatal("nil registry returned a value")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry encoded output: %q err=%v", buf.String(), err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", L("k", "v")).Add(7)
	r.Gauge("b").Set(1.5)
	r.GaugeFunc("c", func() float64 { return 3 })
	h := r.Histogram("d_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		`a_total{k="v"} 7`,
		"# TYPE b gauge",
		"b 1.5",
		"c 3",
		"# TYPE d_seconds histogram",
		`d_seconds_bucket{le="1"} 1`,
		`d_seconds_bucket{le="10"} 2`,
		`d_seconds_bucket{le="+Inf"} 3`,
		"d_seconds_sum 55.5",
		"d_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Output is sorted and stable.
	var buf2 bytes.Buffer
	_ = r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Error("two encodings of the same registry differ")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	h := r.Histogram("lat", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got["a_total"] != 2 {
		t.Errorf("a_total = %v", got["a_total"])
	}
	if got["lat_count"] != 2 || got["lat_sum"] != 3.5 {
		t.Errorf("histogram flattening wrong: %v", got)
	}
	if _, ok := got["lat_p99"]; !ok {
		t.Error("missing lat_p99")
	}
}

func TestProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	RegisterProcessMetrics(r) // idempotent
	for _, name := range []string{
		"process_uptime_seconds", "process_goroutines",
		"process_heap_alloc_bytes", "process_gc_cycles_total",
	} {
		if _, ok := r.Value(name); !ok {
			t.Errorf("missing %s", name)
		}
	}
	if v, _ := r.Value("process_goroutines"); v < 1 {
		t.Errorf("goroutines = %v", v)
	}
}
