package metainfo

import (
	"bytes"
	"crypto/sha1"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeContent builds deterministic pseudo-random content.
func makeContent(n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func singleFileInfo(t *testing.T) (*Info, []byte) {
	t.Helper()
	content := makeContent(1000, 1)
	info, err := New("file.bin", 256, []File{{Path: "file.bin", Length: 1000}}, content)
	if err != nil {
		t.Fatal(err)
	}
	return info, content
}

func bundleInfo(t *testing.T) (*Info, []byte) {
	t.Helper()
	content := makeContent(700, 2)
	info, err := New("bundle", 256, []File{
		{Path: "a.mp3", Length: 300},
		{Path: "b.mp3", Length: 400},
	}, content)
	if err != nil {
		t.Fatal(err)
	}
	return info, content
}

func TestNewSingleFile(t *testing.T) {
	info, content := singleFileInfo(t)
	if info.NumPieces() != 4 { // ceil(1000/256)
		t.Fatalf("pieces = %d", info.NumPieces())
	}
	if info.TotalLength() != 1000 {
		t.Fatalf("total = %d", info.TotalLength())
	}
	if info.IsBundle() {
		t.Fatal("single file must not be a bundle")
	}
	// Final piece is short: 1000 − 3·256 = 232.
	if got := info.PieceSize(3); got != 232 {
		t.Fatalf("final piece size %d", got)
	}
	if got := info.PieceSize(0); got != 256 {
		t.Fatalf("piece 0 size %d", got)
	}
	if got := info.PieceSize(99); got != 0 {
		t.Fatalf("out-of-range piece size %d", got)
	}
	// Hashes match manual hashing.
	for i := 0; i < 4; i++ {
		lo := i * 256
		hi := lo + int(info.PieceSize(i))
		if sha1.Sum(content[lo:hi]) != info.Pieces[i] {
			t.Fatalf("piece %d hash mismatch", i)
		}
	}
}

func TestNewBundle(t *testing.T) {
	info, _ := bundleInfo(t)
	if !info.IsBundle() {
		t.Fatal("two files must be a bundle")
	}
	if info.NumPieces() != 3 {
		t.Fatalf("pieces = %d", info.NumPieces())
	}
}

func TestNewRejectsMismatchedLengths(t *testing.T) {
	if _, err := New("x", 256, []File{{Path: "x", Length: 999}}, makeContent(1000, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestValidate(t *testing.T) {
	good, _ := singleFileInfo(t)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Info{
		{Name: "", PieceLength: 1, Files: []File{{Path: "a", Length: 1}}},
		{Name: "x", PieceLength: 0, Files: []File{{Path: "a", Length: 1}}},
		{Name: "x", PieceLength: 1, Files: nil},
		{Name: "x", PieceLength: 1, Files: []File{{Path: "", Length: 1}}},
		{Name: "x", PieceLength: 1, Files: []File{{Path: "a", Length: -1}}},
		{Name: "x", PieceLength: 256, Files: []File{{Path: "a", Length: 1000}}, Pieces: nil},
	}
	for i, info := range bad {
		if err := info.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestVerifyPiece(t *testing.T) {
	info, content := singleFileInfo(t)
	if !info.VerifyPiece(0, content[:256]) {
		t.Fatal("valid piece rejected")
	}
	corrupted := append([]byte{}, content[:256]...)
	corrupted[0] ^= 0xFF
	if info.VerifyPiece(0, corrupted) {
		t.Fatal("corrupted piece accepted")
	}
	if info.VerifyPiece(-1, nil) || info.VerifyPiece(99, nil) {
		t.Fatal("out-of-range piece accepted")
	}
}

func TestMarshalUnmarshalSingleFile(t *testing.T) {
	info, _ := singleFileInfo(t)
	tor := &Torrent{Announce: "http://127.0.0.1:7070/announce", Info: *info, Comment: "test"}
	raw, err := tor.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Announce != tor.Announce || back.Comment != tor.Comment {
		t.Fatalf("metadata mismatch: %+v", back)
	}
	if back.Info.Name != info.Name || back.Info.PieceLength != info.PieceLength {
		t.Fatalf("info mismatch: %+v", back.Info)
	}
	if len(back.Info.Files) != 1 || back.Info.Files[0] != info.Files[0] {
		t.Fatalf("files mismatch: %+v", back.Info.Files)
	}
	if len(back.Info.Pieces) != len(info.Pieces) {
		t.Fatal("piece count mismatch")
	}
	for i := range info.Pieces {
		if back.Info.Pieces[i] != info.Pieces[i] {
			t.Fatalf("piece hash %d mismatch", i)
		}
	}
}

func TestMarshalUnmarshalBundle(t *testing.T) {
	info, _ := bundleInfo(t)
	tor := &Torrent{Announce: "http://t/announce", Info: *info}
	raw, err := tor.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Info.IsBundle() || len(back.Info.Files) != 2 {
		t.Fatalf("bundle not preserved: %+v", back.Info.Files)
	}
	if back.Info.Files[0].Path != "a.mp3" || back.Info.Files[1].Length != 400 {
		t.Fatalf("file entries wrong: %+v", back.Info.Files)
	}
}

func TestInfoHashStableAcrossRoundTrip(t *testing.T) {
	info, _ := bundleInfo(t)
	h1, err := info.Hash()
	if err != nil {
		t.Fatal(err)
	}
	tor := &Torrent{Announce: "http://t/announce", Info: *info}
	raw, _ := tor.Marshal()
	back, _ := Unmarshal(raw)
	h2, err := back.Info.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("infohash changed across round trip: %v vs %v", h1, h2)
	}
	if len(h1.String()) != 40 {
		t.Fatalf("hex infohash %q", h1.String())
	}
}

func TestInfoHashDistinguishesContent(t *testing.T) {
	a, _ := singleFileInfo(t)
	b, _ := bundleInfo(t)
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha == hb {
		t.Fatal("different torrents share an infohash")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := [][]byte{
		[]byte("garbage"),
		[]byte("i42e"),                // not a dict
		[]byte("d8:announce3:urle"),   // missing info
		[]byte("d4:infod4:name1:xee"), // missing piece length etc.
	}
	for i, raw := range bad {
		if _, err := Unmarshal(raw); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHashPiecesEdgeCases(t *testing.T) {
	if got := HashPieces(nil, 256); got != nil {
		t.Fatalf("empty content gave %d hashes", len(got))
	}
	if got := HashPieces([]byte("x"), 0); got != nil {
		t.Fatal("non-positive piece length must give nil")
	}
	if got := HashPieces(makeContent(256, 4), 256); len(got) != 1 {
		t.Fatalf("exact single piece gave %d hashes", len(got))
	}
}

// Property: marshal/unmarshal round trip preserves the infohash for
// random multi-file layouts.
func TestRoundTripInfoHashProperty(t *testing.T) {
	f := func(seed int64, nfiles, plExp uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nfiles%4) + 1
		pieceLen := int64(64 << (plExp % 4)) // 64..512
		files := make([]File, n)
		total := 0
		for i := range files {
			l := r.Intn(600) + 1
			files[i] = File{Path: string(rune('a'+i)) + ".bin", Length: int64(l)}
			total += l
		}
		content := makeContent(total, seed+1)
		info, err := New("prop", pieceLen, files, content)
		if err != nil {
			return false
		}
		h1, err := info.Hash()
		if err != nil {
			return false
		}
		raw, err := (&Torrent{Announce: "http://t/a", Info: *info}).Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(raw)
		if err != nil {
			return false
		}
		h2, err := back.Info.Hash()
		return err == nil && h1 == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRejectsInvalidInfo(t *testing.T) {
	tor := &Torrent{Announce: "http://t/a"}
	if _, err := tor.Marshal(); err == nil {
		t.Fatal("invalid info accepted")
	}
}

func TestPiecesBytesLayout(t *testing.T) {
	// The bencoded "pieces" entry must be the concatenation of hashes.
	info, _ := singleFileInfo(t)
	tor := &Torrent{Announce: "a", Info: *info}
	raw, _ := tor.Marshal()
	var concat []byte
	for _, h := range info.Pieces {
		concat = append(concat, h[:]...)
	}
	if !bytes.Contains(raw, concat) {
		t.Fatal("marshalled torrent does not embed concatenated piece hashes")
	}
}
