// Package metainfo builds and parses BitTorrent metainfo (.torrent)
// structures, including multi-file torrents — the on-disk form of a
// bundle. Piece hashes use SHA-1 as in the original protocol, and the
// infohash is the SHA-1 of the canonical bencoding of the info
// dictionary.
package metainfo

import (
	"crypto/sha1"
	"errors"
	"fmt"

	"swarmavail/internal/bittorrent/bencode"
)

// HashSize is the size of a SHA-1 digest in bytes.
const HashSize = sha1.Size

// InfoHash identifies a torrent.
type InfoHash [HashSize]byte

// String renders the infohash in hex.
func (h InfoHash) String() string { return fmt.Sprintf("%x", h[:]) }

// File is one file inside the torrent content.
type File struct {
	// Path is the file's name (single-file torrents) or slash-joined
	// relative path (multi-file torrents).
	Path string
	// Length is the file size in bytes.
	Length int64
}

// Info is the info dictionary: the content description that the
// infohash covers.
type Info struct {
	// Name is the advisory torrent name (and the single file's name for
	// single-file torrents).
	Name string
	// PieceLength is the number of bytes per piece.
	PieceLength int64
	// Pieces holds the SHA-1 hash of each piece, in order.
	Pieces []InfoHash
	// Files lists the content; a single entry denotes a single-file
	// torrent (bundles have several).
	Files []File
}

// Torrent is a parsed metainfo file.
type Torrent struct {
	// Announce is the tracker URL.
	Announce string
	// Info is the content description.
	Info Info
	// Comment is free-form metadata.
	Comment string
}

// TotalLength returns the total content size in bytes.
func (i *Info) TotalLength() int64 {
	var n int64
	for _, f := range i.Files {
		n += f.Length
	}
	return n
}

// NumPieces returns the number of pieces.
func (i *Info) NumPieces() int { return len(i.Pieces) }

// IsBundle reports whether the torrent carries more than one file.
func (i *Info) IsBundle() bool { return len(i.Files) > 1 }

// PieceSize returns the length of piece idx (the final piece may be
// short).
func (i *Info) PieceSize(idx int) int64 {
	if idx < 0 || idx >= len(i.Pieces) {
		return 0
	}
	if idx == len(i.Pieces)-1 {
		rem := i.TotalLength() - int64(idx)*i.PieceLength
		if rem > 0 {
			return rem
		}
	}
	return i.PieceLength
}

// Validate checks structural invariants.
func (i *Info) Validate() error {
	switch {
	case i.Name == "":
		return errors.New("metainfo: empty name")
	case i.PieceLength <= 0:
		return errors.New("metainfo: non-positive piece length")
	case len(i.Files) == 0:
		return errors.New("metainfo: no files")
	}
	for _, f := range i.Files {
		if f.Length < 0 {
			return fmt.Errorf("metainfo: negative length for %q", f.Path)
		}
		if f.Path == "" {
			return errors.New("metainfo: empty file path")
		}
	}
	want := int((i.TotalLength() + i.PieceLength - 1) / i.PieceLength)
	if len(i.Pieces) != want {
		return fmt.Errorf("metainfo: %d piece hashes for %d pieces of content",
			len(i.Pieces), want)
	}
	return nil
}

// HashPieces splits content into PieceLength-sized pieces and returns
// their SHA-1 hashes.
func HashPieces(content []byte, pieceLength int64) []InfoHash {
	if pieceLength <= 0 {
		return nil
	}
	var out []InfoHash
	for off := int64(0); off < int64(len(content)); off += pieceLength {
		end := off + pieceLength
		if end > int64(len(content)) {
			end = int64(len(content))
		}
		out = append(out, sha1.Sum(content[off:end]))
	}
	return out
}

// New builds an Info over the given content bytes, dividing files by the
// provided sizes (which must sum to len(content)).
func New(name string, pieceLength int64, files []File, content []byte) (*Info, error) {
	info := &Info{
		Name:        name,
		PieceLength: pieceLength,
		Pieces:      HashPieces(content, pieceLength),
		Files:       files,
	}
	var total int64
	for _, f := range files {
		total += f.Length
	}
	if total != int64(len(content)) {
		return nil, fmt.Errorf("metainfo: file lengths sum to %d but content is %d bytes",
			total, len(content))
	}
	if err := info.Validate(); err != nil {
		return nil, err
	}
	return info, nil
}

// infoDict converts Info into its bencodable dictionary form.
func (i *Info) infoDict() map[string]any {
	pieces := make([]byte, 0, len(i.Pieces)*HashSize)
	for _, h := range i.Pieces {
		pieces = append(pieces, h[:]...)
	}
	d := map[string]any{
		"name":         i.Name,
		"piece length": i.PieceLength,
		"pieces":       string(pieces),
	}
	if len(i.Files) == 1 && i.Files[0].Path == i.Name {
		d["length"] = i.Files[0].Length
	} else {
		fl := make([]any, 0, len(i.Files))
		for _, f := range i.Files {
			fl = append(fl, map[string]any{
				"length": f.Length,
				"path":   []any{f.Path},
			})
		}
		d["files"] = fl
	}
	return d
}

// Hash returns the torrent's infohash: SHA-1 over the canonical bencoded
// info dictionary.
func (i *Info) Hash() (InfoHash, error) {
	enc, err := bencode.Encode(i.infoDict())
	if err != nil {
		return InfoHash{}, err
	}
	return sha1.Sum(enc), nil
}

// Marshal serialises the torrent to its .torrent byte form.
func (t *Torrent) Marshal() ([]byte, error) {
	if err := t.Info.Validate(); err != nil {
		return nil, err
	}
	d := map[string]any{
		"announce": t.Announce,
		"info":     t.Info.infoDict(),
	}
	if t.Comment != "" {
		d["comment"] = t.Comment
	}
	return bencode.Encode(d)
}

// Unmarshal parses a .torrent byte form.
func Unmarshal(data []byte) (*Torrent, error) {
	v, err := bencode.Decode(data)
	if err != nil {
		return nil, err
	}
	d, ok := bencode.AsDict(v)
	if !ok {
		return nil, errors.New("metainfo: top level is not a dictionary")
	}
	t := &Torrent{}
	t.Announce, _ = d.Str("announce")
	t.Comment, _ = d.Str("comment")
	infoD, ok := d.Sub("info")
	if !ok {
		return nil, errors.New("metainfo: missing info dictionary")
	}
	info, err := parseInfo(infoD)
	if err != nil {
		return nil, err
	}
	t.Info = *info
	if err := t.Info.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseInfo(d bencode.Dict) (*Info, error) {
	info := &Info{}
	var ok bool
	if info.Name, ok = d.Str("name"); !ok {
		return nil, errors.New("metainfo: info.name missing")
	}
	if info.PieceLength, ok = d.Int("piece length"); !ok {
		return nil, errors.New("metainfo: info.piece length missing")
	}
	piecesRaw, ok := d.Str("pieces")
	if !ok {
		return nil, errors.New("metainfo: info.pieces missing")
	}
	if len(piecesRaw)%HashSize != 0 {
		return nil, fmt.Errorf("metainfo: pieces length %d not a multiple of %d",
			len(piecesRaw), HashSize)
	}
	for off := 0; off < len(piecesRaw); off += HashSize {
		var h InfoHash
		copy(h[:], piecesRaw[off:off+HashSize])
		info.Pieces = append(info.Pieces, h)
	}
	if length, ok := d.Int("length"); ok {
		info.Files = []File{{Path: info.Name, Length: length}}
		return info, nil
	}
	fl, ok := d.List("files")
	if !ok {
		return nil, errors.New("metainfo: neither length nor files present")
	}
	for idx, item := range fl {
		fd, ok := bencode.AsDict(item)
		if !ok {
			return nil, fmt.Errorf("metainfo: files[%d] is not a dictionary", idx)
		}
		length, ok := fd.Int("length")
		if !ok {
			return nil, fmt.Errorf("metainfo: files[%d].length missing", idx)
		}
		pathList, ok := fd.List("path")
		if !ok || len(pathList) == 0 {
			return nil, fmt.Errorf("metainfo: files[%d].path missing", idx)
		}
		path := ""
		for i, el := range pathList {
			s, ok := el.(string)
			if !ok {
				return nil, fmt.Errorf("metainfo: files[%d].path element not a string", idx)
			}
			if i > 0 {
				path += "/"
			}
			path += s
		}
		info.Files = append(info.Files, File{Path: path, Length: length})
	}
	return info, nil
}

// VerifyPiece checks a downloaded piece against the recorded hash.
func (i *Info) VerifyPiece(idx int, data []byte) bool {
	if idx < 0 || idx >= len(i.Pieces) {
		return false
	}
	return sha1.Sum(data) == i.Pieces[idx]
}
