// Package bencode implements the bencoding format used by the BitTorrent
// protocol for torrent metainfo files and tracker responses.
//
// The data model maps bencoded values onto Go types:
//
//	integer    → int64
//	byte string → string (may contain arbitrary bytes)
//	list       → []any
//	dictionary → map[string]any (keys are byte strings)
//
// Encoding is canonical: dictionary keys are emitted in sorted byte
// order, as the specification requires, so the same value always encodes
// to the same bytes (a property the metainfo infohash relies on).
package bencode

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// Errors returned by the decoder.
var (
	ErrTrailingData  = errors.New("bencode: trailing data after value")
	ErrUnexpectedEOF = errors.New("bencode: unexpected end of input")
)

// Encode returns the canonical bencoding of v. Supported types: int,
// int64, uint32, string, []byte, []any, and map[string]any (nested
// arbitrarily). It returns an error for any other type.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := encodeTo(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeTo(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case int:
		fmt.Fprintf(buf, "i%de", x)
	case int64:
		fmt.Fprintf(buf, "i%de", x)
	case uint32:
		fmt.Fprintf(buf, "i%de", x)
	case string:
		fmt.Fprintf(buf, "%d:%s", len(x), x)
	case []byte:
		fmt.Fprintf(buf, "%d:", len(x))
		buf.Write(x)
	case []any:
		buf.WriteByte('l')
		for _, item := range x {
			if err := encodeTo(buf, item); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
	case map[string]any:
		buf.WriteByte('d')
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(buf, "%d:%s", len(k), k)
			if err := encodeTo(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
	default:
		return fmt.Errorf("bencode: unsupported type %T", v)
	}
	return nil
}

// Decode parses a single bencoded value from data, requiring the whole
// input to be consumed.
func Decode(data []byte) (any, error) {
	v, rest, err := DecodePrefix(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTrailingData
	}
	return v, nil
}

// DecodePrefix parses one bencoded value from the front of data and
// returns the remaining bytes.
func DecodePrefix(data []byte) (v any, rest []byte, err error) {
	d := decoder{data: data}
	v, err = d.value(0)
	if err != nil {
		return nil, nil, err
	}
	return v, d.data[d.pos:], nil
}

// maxDepth bounds nesting to keep hostile inputs from exhausting the
// stack.
const maxDepth = 64

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) peek() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, ErrUnexpectedEOF
	}
	return d.data[d.pos], nil
}

func (d *decoder) value(depth int) (any, error) {
	if depth > maxDepth {
		return nil, errors.New("bencode: nesting too deep")
	}
	c, err := d.peek()
	if err != nil {
		return nil, err
	}
	switch {
	case c == 'i':
		return d.integer()
	case c >= '0' && c <= '9':
		return d.str()
	case c == 'l':
		d.pos++
		var list []any
		for {
			c, err := d.peek()
			if err != nil {
				return nil, err
			}
			if c == 'e' {
				d.pos++
				if list == nil {
					list = []any{}
				}
				return list, nil
			}
			item, err := d.value(depth + 1)
			if err != nil {
				return nil, err
			}
			list = append(list, item)
		}
	case c == 'd':
		d.pos++
		dict := map[string]any{}
		lastKey := ""
		first := true
		for {
			c, err := d.peek()
			if err != nil {
				return nil, err
			}
			if c == 'e' {
				d.pos++
				return dict, nil
			}
			key, err := d.str()
			if err != nil {
				return nil, fmt.Errorf("bencode: dictionary key: %w", err)
			}
			if !first && key <= lastKey {
				return nil, fmt.Errorf("bencode: dictionary keys out of order (%q after %q)", key, lastKey)
			}
			first = false
			lastKey = key
			val, err := d.value(depth + 1)
			if err != nil {
				return nil, err
			}
			dict[key] = val
		}
	default:
		return nil, fmt.Errorf("bencode: invalid type byte %q at offset %d", c, d.pos)
	}
}

func (d *decoder) integer() (int64, error) {
	d.pos++ // consume 'i'
	end := bytes.IndexByte(d.data[d.pos:], 'e')
	if end < 0 {
		return 0, ErrUnexpectedEOF
	}
	raw := string(d.data[d.pos : d.pos+end])
	if raw == "" {
		return 0, errors.New("bencode: empty integer")
	}
	// Reject leading zeros and negative zero per the spec.
	if raw != "0" {
		neg := raw[0] == '-'
		digits := raw
		if neg {
			digits = raw[1:]
		}
		if digits == "" || digits[0] == '0' {
			return 0, fmt.Errorf("bencode: malformed integer %q", raw)
		}
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bencode: malformed integer %q", raw)
	}
	d.pos += end + 1
	return n, nil
}

func (d *decoder) str() (string, error) {
	colon := bytes.IndexByte(d.data[d.pos:], ':')
	if colon < 0 {
		return "", ErrUnexpectedEOF
	}
	raw := string(d.data[d.pos : d.pos+colon])
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 || (len(raw) > 1 && raw[0] == '0') {
		return "", fmt.Errorf("bencode: malformed string length %q", raw)
	}
	start := d.pos + colon + 1
	if start+n > len(d.data) {
		return "", ErrUnexpectedEOF
	}
	d.pos = start + n
	return string(d.data[start : start+n]), nil
}

// Dict is a typed view helper over a decoded dictionary, reducing the
// type-assertion noise at call sites (tracker, metainfo).
type Dict map[string]any

// AsDict converts a decoded value to a Dict.
func AsDict(v any) (Dict, bool) {
	m, ok := v.(map[string]any)
	return Dict(m), ok
}

// Str returns the string value at key.
func (d Dict) Str(key string) (string, bool) {
	s, ok := d[key].(string)
	return s, ok
}

// Int returns the integer value at key.
func (d Dict) Int(key string) (int64, bool) {
	n, ok := d[key].(int64)
	return n, ok
}

// List returns the list value at key.
func (d Dict) List(key string) ([]any, bool) {
	l, ok := d[key].([]any)
	return l, ok
}

// Sub returns the nested dictionary at key.
func (d Dict) Sub(key string) (Dict, bool) {
	m, ok := d[key].(map[string]any)
	return Dict(m), ok
}
