package bencode

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode canonically and decode
// again to the same bytes (idempotent canonicalisation).
func FuzzDecode(f *testing.F) {
	for _, seed := range []string{
		"i42e", "4:spam", "le", "de", "l4:spami-7ee",
		"d1:a1:x1:bi2ee", "d4:infod4:name1:xee", "i-0e", "5:spam",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Encode(v)
		if err != nil {
			t.Fatalf("decoded value failed to encode: %v", err)
		}
		v2, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		enc2, err := Encode(v2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonicalisation not idempotent: %q vs %q", enc, enc2)
		}
	})
}
