package bencode

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeBasics(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{42, "i42e"},
		{int64(-7), "i-7e"},
		{0, "i0e"},
		{uint32(5), "i5e"},
		{"spam", "4:spam"},
		{"", "0:"},
		{[]byte{0, 1, 2}, "3:\x00\x01\x02"},
		{[]any{"a", 1}, "l1:ai1ee"},
		{[]any{}, "le"},
		{map[string]any{"b": 2, "a": "x"}, "d1:a1:x1:bi2ee"},
		{map[string]any{}, "de"},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.in, err)
		}
		if string(got) != c.want {
			t.Errorf("Encode(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEncodeUnsupportedType(t *testing.T) {
	if _, err := Encode(3.14); err == nil {
		t.Fatal("float must be rejected")
	}
	if _, err := Encode([]any{map[string]any{"k": struct{}{}}}); err == nil {
		t.Fatal("nested unsupported type must be rejected")
	}
}

func TestEncodeCanonicalKeyOrder(t *testing.T) {
	// The same dictionary must always serialise identically.
	m := map[string]any{"zeta": 1, "alpha": 2, "mid": 3}
	a, _ := Encode(m)
	b, _ := Encode(m)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding not deterministic")
	}
	want := "d5:alphai2e3:midi3e4:zetai1ee"
	if string(a) != want {
		t.Fatalf("got %q, want %q", a, want)
	}
}

func TestDecodeBasics(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"i42e", int64(42)},
		{"i-7e", int64(-7)},
		{"i0e", int64(0)},
		{"4:spam", "spam"},
		{"0:", ""},
		{"l1:ai1ee", []any{"a", int64(1)}},
		{"le", []any{}},
		{"d1:a1:x1:bi2ee", map[string]any{"a": "x", "b": int64(2)}},
		{"de", map[string]any{}},
	}
	for _, c := range cases {
		got, err := Decode([]byte(c.in))
		if err != nil {
			t.Fatalf("Decode(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Decode(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"",               // empty
		"i42",            // unterminated integer
		"ie",             // empty integer
		"i01e",           // leading zero
		"i-0e",           // negative zero
		"i--1e",          // double sign
		"5:spam",         // short string
		"4spam",          // missing colon
		"01:a",           // leading zero in length
		"l1:a",           // unterminated list
		"d1:a",           // missing value
		"d1:bi1e1:ai2ee", // keys out of order
		"x",              // unknown type
		"i1ei2e",         // trailing data
		"-1:a",           // negative length
	}
	for _, in := range bad {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", in)
		}
	}
}

func TestDecodeDepthLimit(t *testing.T) {
	deep := bytes.Repeat([]byte("l"), 100)
	deep = append(deep, bytes.Repeat([]byte("e"), 100)...)
	if _, err := Decode(deep); err == nil {
		t.Fatal("deeply nested input must be rejected")
	}
}

func TestDecodePrefix(t *testing.T) {
	v, rest, err := DecodePrefix([]byte("i42eXYZ"))
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 42 || string(rest) != "XYZ" {
		t.Fatalf("got %v, rest %q", v, rest)
	}
}

func TestDictHelpers(t *testing.T) {
	v, err := Decode([]byte("d4:listl1:xe3:numi7e3:str5:hello3:subd1:ki1eee"))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := AsDict(v)
	if !ok {
		t.Fatal("not a dict")
	}
	if n, ok := d.Int("num"); !ok || n != 7 {
		t.Fatalf("Int: %v %v", n, ok)
	}
	if s, ok := d.Str("str"); !ok || s != "hello" {
		t.Fatalf("Str: %v %v", s, ok)
	}
	if l, ok := d.List("list"); !ok || len(l) != 1 {
		t.Fatalf("List: %v %v", l, ok)
	}
	if sub, ok := d.Sub("sub"); !ok {
		t.Fatal("Sub failed")
	} else if k, ok := sub.Int("k"); !ok || k != 1 {
		t.Fatalf("Sub.Int: %v %v", k, ok)
	}
	// Missing / wrong-typed keys.
	if _, ok := d.Int("str"); ok {
		t.Fatal("Int on string must fail")
	}
	if _, ok := d.Str("missing"); ok {
		t.Fatal("missing key must fail")
	}
	if _, ok := AsDict("nope"); ok {
		t.Fatal("AsDict on string must fail")
	}
}

// randomValue builds a random bencodable value for the round-trip
// property test.
func randomValue(r *rand.Rand, depth int) any {
	switch n := r.Intn(4); {
	case n == 0 || depth > 3:
		return int64(r.Int63()) - (1 << 62)
	case n == 1:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return string(b)
	case n == 2:
		k := r.Intn(4)
		l := make([]any, k)
		for i := range l {
			l[i] = randomValue(r, depth+1)
		}
		return l
	default:
		k := r.Intn(4)
		m := map[string]any{}
		for i := 0; i < k; i++ {
			b := make([]byte, r.Intn(8))
			r.Read(b)
			m[string(b)] = randomValue(r, depth+1)
		}
		return m
	}
}

// normalise converts pre-encode representations to the decoded data
// model ([]any of nil stays nil vs []any{} — handled by construction).
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 0)
		enc, err := Encode(v)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		re, err := Encode(dec)
		if err != nil {
			return false
		}
		// Canonical encoding: encode(decode(encode(v))) == encode(v).
		return bytes.Equal(enc, re)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoder never panics on arbitrary input.
func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data) //nolint:errcheck // errors are the point
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
