// Package tracker implements a BitTorrent tracker — HTTP and UDP
// (BEP 15) front ends over one shared swarm registry — and the matching
// client announcers. The tracker keeps per-swarm peer lists, counts
// seeds ("complete") and leechers ("incomplete"), serves compact peer
// lists, and answers scrape requests — the §2 monitoring pipeline and
// the runnable examples both use it over localhost.
package tracker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"swarmavail/internal/bittorrent/bencode"
	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/obs"
)

// DefaultInterval is the re-announce interval handed to clients.
const DefaultInterval = 30 * time.Second

// peerEntry is one registered peer in a swarm.
type peerEntry struct {
	id       [20]byte
	ip       net.IP
	port     uint16
	seed     bool
	lastSeen time.Time
}

// swarmState is the tracker-side state of one torrent.
type swarmState struct {
	peers     map[string]*peerEntry // key: peer id
	downloads int64                 // completed-download counter
}

// Server is a BitTorrent tracker. Create with NewServer, mount its
// HTTP Handler (or use Serve), and/or attach a BEP 15 UDP front end
// with ServeUDP/ListenUDP — both speak to the same swarm registry, so
// a swarm announced over one protocol is visible over the other.
type Server struct {
	mu       sync.Mutex
	swarms   map[metainfo.InfoHash]*swarmState
	interval time.Duration
	// PeerTTL expires peers that stopped announcing (crashed clients).
	peerTTL time.Duration
	now     func() time.Time

	// UDP connection-id table (BEP 15): id → expiry. Guarded by udpMu,
	// not mu — connect storms must not contend with announce handling.
	udpMu  sync.Mutex
	udpIDs map[uint64]time.Time

	// Instruments, set by Instrument; nil (no-op) until then.
	mAnnounces        *obs.Counter
	mAnnounceFailures *obs.Counter
	mScrapes          *obs.Counter
	mDownloads        *obs.Counter
	mUDPPackets       *obs.Counter
	mUDPConnects      *obs.Counter
	mUDPErrors        *obs.Counter
}

// NewServer returns a tracker with the default announce interval.
func NewServer() *Server {
	return &Server{
		swarms:   make(map[metainfo.InfoHash]*swarmState),
		interval: DefaultInterval,
		peerTTL:  4 * DefaultInterval,
		now:      time.Now,
		udpIDs:   make(map[uint64]time.Time),
	}
}

// Handler returns the tracker's HTTP handler (announce on /announce,
// scrape on /scrape).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/announce", s.handleAnnounce)
	mux.HandleFunc("/scrape", s.handleScrape)
	return mux
}

// failure writes a bencoded failure response (trackers report errors
// in-band with HTTP 200).
func failure(w http.ResponseWriter, msg string) {
	body, _ := bencode.Encode(map[string]any{"failure reason": msg})
	w.Header().Set("Content-Type", "text/plain")
	_, _ = w.Write(body)
}

func parseInfoHash(q url.Values) (metainfo.InfoHash, error) {
	var h metainfo.InfoHash
	raw := q.Get("info_hash")
	if len(raw) != metainfo.HashSize {
		return h, fmt.Errorf("info_hash must be %d bytes, got %d", metainfo.HashSize, len(raw))
	}
	copy(h[:], raw)
	return h, nil
}

func (s *Server) handleAnnounce(w http.ResponseWriter, r *http.Request) {
	s.mAnnounces.Inc()
	q := r.URL.Query()
	ih, err := parseInfoHash(q)
	if err != nil {
		s.mAnnounceFailures.Inc()
		failure(w, err.Error())
		return
	}
	peerIDRaw := q.Get("peer_id")
	if len(peerIDRaw) != 20 {
		s.mAnnounceFailures.Inc()
		failure(w, "peer_id must be 20 bytes")
		return
	}
	port, err := strconv.Atoi(q.Get("port"))
	if err != nil || port <= 0 || port > 65535 {
		s.mAnnounceFailures.Inc()
		failure(w, "invalid port")
		return
	}
	left, _ := strconv.ParseInt(q.Get("left"), 10, 64)
	event := q.Get("event")
	numWant := 50
	if nw := q.Get("numwant"); nw != "" {
		if v, err := strconv.Atoi(nw); err == nil && v >= 0 {
			numWant = v
		}
	}

	host := q.Get("ip")
	if host == "" {
		host, _, _ = net.SplitHostPort(r.RemoteAddr)
	}
	ip := net.ParseIP(host)
	if ip == nil {
		s.mAnnounceFailures.Inc()
		failure(w, "cannot determine peer IP")
		return
	}

	var key [20]byte
	copy(key[:], peerIDRaw)

	res := s.applyAnnounce(announceArgs{
		ih:      ih,
		peerID:  key,
		ip:      ip,
		port:    uint16(port),
		left:    left,
		event:   event,
		numWant: numWant,
	})

	resp := map[string]any{
		"interval":   int64(res.interval / time.Second),
		"complete":   int64(res.seeds),
		"incomplete": int64(res.leechers),
		"peers":      string(res.compact),
	}
	body, _ := bencode.Encode(resp)
	w.Header().Set("Content-Type", "text/plain")
	_, _ = w.Write(body)
}

// announceArgs is one announce, protocol-independent — both the HTTP
// handler and the BEP 15 UDP handler reduce their requests to this.
type announceArgs struct {
	ih      metainfo.InfoHash
	peerID  [20]byte
	ip      net.IP
	port    uint16
	left    int64
	event   string // "", "started", "completed", "stopped"
	numWant int
}

// announceResult is the protocol-independent announce answer.
type announceResult struct {
	interval        time.Duration
	seeds, leechers int
	compact         []byte // 6-byte IPv4+port entries, announcer excluded
}

// applyAnnounce registers (or removes) the peer and computes the reply.
// Sharing this core between the HTTP and UDP front ends is what makes
// the two protocols answer identically for identical swarm state.
func (s *Server) applyAnnounce(a announceArgs) announceResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := s.swarms[a.ih]
	if sw == nil {
		sw = &swarmState{peers: make(map[string]*peerEntry)}
		s.swarms[a.ih] = sw
	}
	s.expireLocked(sw)
	switch a.event {
	case "stopped":
		delete(sw.peers, string(a.peerID[:]))
	default:
		if a.event == "completed" {
			sw.downloads++
			s.mDownloads.Inc()
		}
		sw.peers[string(a.peerID[:])] = &peerEntry{
			id:       a.peerID,
			ip:       a.ip,
			port:     a.port,
			seed:     a.left == 0,
			lastSeen: s.now(),
		}
	}
	res := announceResult{interval: s.interval}
	for _, p := range sw.peers {
		if p.seed {
			res.seeds++
		} else {
			res.leechers++
		}
	}
	// Hand out up to numWant peers other than the announcer itself.
	for idStr, p := range sw.peers {
		if len(res.compact) >= a.numWant*6 {
			break
		}
		if idStr == string(a.peerID[:]) {
			continue
		}
		ip4 := p.ip.To4()
		if ip4 == nil {
			continue // compact format is IPv4-only
		}
		entry := make([]byte, 6)
		copy(entry, ip4)
		binary.BigEndian.PutUint16(entry[4:], p.port)
		res.compact = append(res.compact, entry...)
	}
	return res
}

// scrapeCounts answers one scrape entry: seeds, leechers, downloads.
func (s *Server) scrapeCounts(ih metainfo.InfoHash) (seeds, leechers int, downloads int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := s.swarms[ih]
	if sw == nil {
		return 0, 0, 0
	}
	s.expireLocked(sw)
	for _, p := range sw.peers {
		if p.seed {
			seeds++
		} else {
			leechers++
		}
	}
	return seeds, leechers, sw.downloads
}

func (s *Server) handleScrape(w http.ResponseWriter, r *http.Request) {
	s.mScrapes.Inc()
	q := r.URL.Query()
	ih, err := parseInfoHash(q)
	if err != nil {
		failure(w, err.Error())
		return
	}
	seeds, leechers, downloads := s.scrapeCounts(ih)
	resp := map[string]any{
		"files": map[string]any{
			string(ih[:]): map[string]any{
				"complete":   int64(seeds),
				"downloaded": downloads,
				"incomplete": int64(leechers),
			},
		},
	}
	body, _ := bencode.Encode(resp)
	w.Header().Set("Content-Type", "text/plain")
	_, _ = w.Write(body)
}

// expireLocked drops peers that have not announced within the TTL.
func (s *Server) expireLocked(sw *swarmState) {
	cutoff := s.now().Add(-s.peerTTL)
	for k, p := range sw.peers {
		if p.lastSeen.Before(cutoff) {
			delete(sw.peers, k)
		}
	}
}

// Counts returns the current seed/leecher counts for a swarm (testing
// and monitoring convenience).
func (s *Server) Counts(ih metainfo.InfoHash) (seeds, leechers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := s.swarms[ih]
	if sw == nil {
		return 0, 0
	}
	for _, p := range sw.peers {
		if p.seed {
			seeds++
		} else {
			leechers++
		}
	}
	return seeds, leechers
}

// ---------------------------------------------------------------------------
// Client side.

// Error is a classified announce failure. Temporary errors — the
// tracker was unreachable, timed out, answered 5xx, or returned bytes
// that did not parse — are worth retrying with backoff; fatal ones mean
// the tracker answered and rejected the announce (a torrent it does not
// serve, a malformed request) and will not fix themselves. The
// distinction lets clients log "tracker briefly down" differently from
// "torrent unregistered" and back off accordingly.
type Error struct {
	URL       string
	Reason    string // in-band "failure reason", if the tracker sent one
	Temporary bool
	Err       error // underlying transport/parse error, if any
}

// Error implements error.
func (e *Error) Error() string {
	kind := "fatal"
	if e.Temporary {
		kind = "temporary"
	}
	switch {
	case e.Reason != "":
		return fmt.Sprintf("tracker: announce rejected (%s): %s", kind, e.Reason)
	case e.Err != nil:
		return fmt.Sprintf("tracker: announce failed (%s): %v", kind, e.Err)
	}
	return "tracker: announce failed (" + kind + ")"
}

// Unwrap exposes the underlying transport error.
func (e *Error) Unwrap() error { return e.Err }

// IsTemporary reports whether err is a retryable announce failure.
// Errors that are not a tracker.Error default to temporary — on
// PlanetLab-grade networks an unclassified failure is far more likely a
// flaky path than a permanent rejection.
func IsTemporary(err error) bool {
	var te *Error
	if errors.As(err, &te) {
		return te.Temporary
	}
	return err != nil
}

// PeerAddr is one peer endpoint from an announce response.
type PeerAddr struct {
	IP   net.IP
	Port uint16
}

// String renders host:port.
func (p PeerAddr) String() string {
	return net.JoinHostPort(p.IP.String(), strconv.Itoa(int(p.Port)))
}

// AnnounceRequest describes a client announce.
type AnnounceRequest struct {
	TrackerURL string
	InfoHash   metainfo.InfoHash
	PeerID     [20]byte
	Port       int
	Left       int64
	// Uploaded and Downloaded are the session's cumulative transfer
	// counters, reported verbatim to the tracker.
	Uploaded   int64
	Downloaded int64
	Event      string // "", "started", "completed", "stopped"
	NumWant    int
	// IP optionally overrides the address the tracker registers (needed
	// when many peers share one loopback host).
	IP string
}

// AnnounceResponse is the parsed tracker reply.
type AnnounceResponse struct {
	Interval   time.Duration
	Seeders    int
	Leechers   int
	Peers      []PeerAddr
	FailureMsg string
}

// maxAnnounceBody caps an HTTP announce response; anything larger is a
// misbehaving (or malicious) tracker, not a peer list.
const maxAnnounceBody = 1 << 20

// Announce performs one announce, dispatching on the tracker URL's
// scheme: http/https go over HTTP, udp:// uses DefaultUDP's BEP 15
// exchange (use AnnounceWith to supply a custom UDPClient). Failures
// come back as a classified *Error: transport problems, timeouts, 5xx
// statuses, and unparseable responses are Temporary; an in-band
// "failure reason" / UDP error packet (also surfaced in the response's
// FailureMsg for compatibility) or a non-5xx HTTP error status is
// fatal.
func Announce(client *http.Client, req AnnounceRequest) (*AnnounceResponse, error) {
	return AnnounceWith(client, nil, req)
}

// AnnounceWith is Announce with an explicit UDP client for udp://
// tracker URLs (nil = DefaultUDP). The HTTP client is used only for
// http(s) URLs, the UDP client only for udp ones, so callers can wire
// both unconditionally.
func AnnounceWith(client *http.Client, uc *UDPClient, req AnnounceRequest) (*AnnounceResponse, error) {
	u, err := url.Parse(req.TrackerURL)
	if err != nil {
		return nil, fmt.Errorf("tracker: bad URL: %w", err)
	}
	if u.Scheme == "udp" {
		if uc == nil {
			uc = DefaultUDP
		}
		return uc.Announce(req)
	}
	return announceHTTP(client, u, req)
}

func announceHTTP(client *http.Client, u *url.URL, req AnnounceRequest) (*AnnounceResponse, error) {
	if client == nil {
		client = http.DefaultClient
	}
	q := u.Query()
	q.Set("info_hash", string(req.InfoHash[:]))
	q.Set("peer_id", string(req.PeerID[:]))
	q.Set("port", strconv.Itoa(req.Port))
	q.Set("left", strconv.FormatInt(req.Left, 10))
	q.Set("uploaded", strconv.FormatInt(req.Uploaded, 10))
	q.Set("downloaded", strconv.FormatInt(req.Downloaded, 10))
	q.Set("compact", "1")
	if req.Event != "" {
		q.Set("event", req.Event)
	}
	if req.NumWant > 0 {
		q.Set("numwant", strconv.Itoa(req.NumWant))
	}
	if req.IP != "" {
		q.Set("ip", req.IP)
	}
	u.RawQuery = q.Encode()

	httpResp, err := client.Get(u.String())
	if err != nil {
		return nil, &Error{URL: req.TrackerURL, Temporary: true, Err: err}
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, &Error{
			URL:       req.TrackerURL,
			Temporary: httpResp.StatusCode >= 500 || httpResp.StatusCode == http.StatusTooManyRequests,
			Err:       fmt.Errorf("http status %s", httpResp.Status),
		}
	}
	// Read through a LimitReader one byte past the cap: a body of
	// exactly maxAnnounceBody+1 readable bytes means the tracker sent
	// too much, detected deterministically even when the oversized
	// final chunk arrives together with io.EOF (the old hand-rolled
	// loop only checked the cap on nil-error reads, so such a chunk
	// was appended past the cap unchecked).
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, maxAnnounceBody+1))
	if err != nil {
		return nil, &Error{URL: req.TrackerURL, Temporary: true, Err: err}
	}
	if len(body) > maxAnnounceBody {
		return nil, &Error{URL: req.TrackerURL, Temporary: true,
			Err: errors.New("response too large")}
	}
	resp, err := ParseAnnounceResponse(body)
	if err != nil {
		return nil, &Error{URL: req.TrackerURL, Temporary: true, Err: err}
	}
	if resp.FailureMsg != "" {
		return resp, &Error{URL: req.TrackerURL, Reason: resp.FailureMsg}
	}
	return resp, nil
}

// ParseAnnounceResponse decodes a bencoded announce reply.
func ParseAnnounceResponse(body []byte) (*AnnounceResponse, error) {
	v, err := bencode.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("tracker: malformed response: %w", err)
	}
	d, ok := bencode.AsDict(v)
	if !ok {
		return nil, errors.New("tracker: response is not a dictionary")
	}
	resp := &AnnounceResponse{}
	if msg, ok := d.Str("failure reason"); ok {
		resp.FailureMsg = msg
		return resp, nil
	}
	if iv, ok := d.Int("interval"); ok {
		resp.Interval = time.Duration(iv) * time.Second
	}
	if c, ok := d.Int("complete"); ok {
		resp.Seeders = int(c)
	}
	if c, ok := d.Int("incomplete"); ok {
		resp.Leechers = int(c)
	}
	compact, ok := d.Str("peers")
	if !ok {
		return nil, errors.New("tracker: missing peers")
	}
	if len(compact)%6 != 0 {
		return nil, fmt.Errorf("tracker: compact peers length %d", len(compact))
	}
	for off := 0; off < len(compact); off += 6 {
		resp.Peers = append(resp.Peers, PeerAddr{
			IP:   net.IPv4(compact[off], compact[off+1], compact[off+2], compact[off+3]),
			Port: binary.BigEndian.Uint16([]byte(compact[off+4 : off+6])),
		})
	}
	return resp, nil
}

// Serve starts the tracker on addr (e.g. "127.0.0.1:0") and returns the
// bound listener plus a shutdown function.
func (s *Server) Serve(addr string) (net.Listener, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln, srv.Close, nil
}
