// BEP 15: the UDP tracker protocol. This file holds the packet codec
// (shared by server and client) and the server side — a datagram front
// end over the same swarm registry the HTTP handler uses.
//
// Wire format (all integers big-endian, per the BEP):
//
//	connect request    int64 protocol_id = 0x41727101980
//	                   int32 action = 0, int32 transaction_id
//	connect response   int32 action = 0, int32 transaction_id,
//	                   int64 connection_id
//	announce request   int64 connection_id, int32 action = 1,
//	                   int32 transaction_id, 20B info_hash, 20B peer_id,
//	                   int64 downloaded, int64 left, int64 uploaded,
//	                   int32 event (0 none, 1 completed, 2 started,
//	                   3 stopped), uint32 IP (0 = sender), uint32 key,
//	                   int32 num_want (-1 default), uint16 port
//	announce response  int32 action = 1, int32 transaction_id,
//	                   int32 interval, int32 leechers, int32 seeders,
//	                   6B (IPv4+port) per peer
//	scrape request     int64 connection_id, int32 action = 2,
//	                   int32 transaction_id, 20B info_hash each
//	scrape response    int32 action = 2, int32 transaction_id, then per
//	                   hash: int32 seeders, int32 completed,
//	                   int32 leechers
//	error response     int32 action = 3, int32 transaction_id,
//	                   UTF-8 message
//
// Connection ids are minted on connect, expire after udpConnIDTTL
// (2 minutes, per the BEP), and every announce/scrape must present a
// live one — that is the protocol's anti-spoofing handshake.
package tracker

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
)

const (
	udpProtocolID = 0x41727101980

	udpActionConnect  = 0
	udpActionAnnounce = 1
	udpActionScrape   = 2
	udpActionError    = 3

	udpEventNone      = 0
	udpEventCompleted = 1
	udpEventStarted   = 2
	udpEventStopped   = 3

	// udpConnIDTTL is how long the server honours a connection id
	// (BEP 15 mandates two minutes).
	udpConnIDTTL = 2 * time.Minute

	// udpConnIDReuse is how long a client keeps reusing a connection id
	// before reconnecting (BEP 15 allows one minute).
	udpConnIDReuse = time.Minute

	// udpMaxNumWant caps one UDP announce response's peer list so the
	// datagram stays comfortably under common MTU-with-fragmentation
	// limits (20 + 6·500 = 3020 bytes).
	udpMaxNumWant = 500

	// udpMaxScrape is the BEP 15 cap on info-hashes per scrape.
	udpMaxScrape = 74

	connectReqLen   = 16
	connectRespLen  = 16
	announceReqLen  = 98
	announceRespLen = 20
	scrapeRespUnit  = 12
)

// udpErrExpiredConnID is the error-packet message for a missing or
// expired connection id. The client recognises it (by the substring
// "connection id") and reconnects instead of failing the announce.
const udpErrExpiredConnID = "expired connection id"

// udpEventCode maps the HTTP event string to the BEP 15 event int.
func udpEventCode(event string) (uint32, error) {
	switch event {
	case "":
		return udpEventNone, nil
	case "completed":
		return udpEventCompleted, nil
	case "started":
		return udpEventStarted, nil
	case "stopped":
		return udpEventStopped, nil
	}
	return 0, fmt.Errorf("tracker: unknown announce event %q", event)
}

// udpEventString is the inverse of udpEventCode; unknown codes become
// plain announces rather than errors (forward compatibility).
func udpEventString(code uint32) string {
	switch code {
	case udpEventCompleted:
		return "completed"
	case udpEventStarted:
		return "started"
	case udpEventStopped:
		return "stopped"
	}
	return ""
}

// ---------------------------------------------------------------------------
// Codec.

// udpAnnounceReq is a parsed BEP 15 announce request.
type udpAnnounceReq struct {
	ConnID     uint64
	Tx         uint32
	InfoHash   metainfo.InfoHash
	PeerID     [20]byte
	Downloaded int64
	Left       int64
	Uploaded   int64
	Event      uint32
	IP         uint32 // IPv4, 0 = use the datagram's source address
	Key        uint32
	NumWant    int32 // -1 = tracker default
	Port       uint16
}

func marshalConnectReq(tx uint32) []byte {
	p := make([]byte, connectReqLen)
	binary.BigEndian.PutUint64(p[0:8], udpProtocolID)
	binary.BigEndian.PutUint32(p[8:12], udpActionConnect)
	binary.BigEndian.PutUint32(p[12:16], tx)
	return p
}

func parseConnectReq(p []byte) (tx uint32, ok bool) {
	if len(p) < connectReqLen ||
		binary.BigEndian.Uint64(p[0:8]) != udpProtocolID ||
		binary.BigEndian.Uint32(p[8:12]) != udpActionConnect {
		return 0, false
	}
	return binary.BigEndian.Uint32(p[12:16]), true
}

func marshalConnectResp(tx uint32, connID uint64) []byte {
	p := make([]byte, connectRespLen)
	binary.BigEndian.PutUint32(p[0:4], udpActionConnect)
	binary.BigEndian.PutUint32(p[4:8], tx)
	binary.BigEndian.PutUint64(p[8:16], connID)
	return p
}

func parseConnectResp(p []byte) (connID uint64, err error) {
	if len(p) < connectRespLen {
		return 0, fmt.Errorf("tracker: connect response is %d bytes, want %d", len(p), connectRespLen)
	}
	return binary.BigEndian.Uint64(p[8:16]), nil
}

func marshalAnnounceReq(r udpAnnounceReq) []byte {
	p := make([]byte, announceReqLen)
	binary.BigEndian.PutUint64(p[0:8], r.ConnID)
	binary.BigEndian.PutUint32(p[8:12], udpActionAnnounce)
	binary.BigEndian.PutUint32(p[12:16], r.Tx)
	copy(p[16:36], r.InfoHash[:])
	copy(p[36:56], r.PeerID[:])
	binary.BigEndian.PutUint64(p[56:64], uint64(r.Downloaded))
	binary.BigEndian.PutUint64(p[64:72], uint64(r.Left))
	binary.BigEndian.PutUint64(p[72:80], uint64(r.Uploaded))
	binary.BigEndian.PutUint32(p[80:84], r.Event)
	binary.BigEndian.PutUint32(p[84:88], r.IP)
	binary.BigEndian.PutUint32(p[88:92], r.Key)
	binary.BigEndian.PutUint32(p[92:96], uint32(r.NumWant))
	binary.BigEndian.PutUint16(p[96:98], r.Port)
	return p
}

func parseAnnounceReq(p []byte) (udpAnnounceReq, bool) {
	var r udpAnnounceReq
	if len(p) < announceReqLen || binary.BigEndian.Uint32(p[8:12]) != udpActionAnnounce {
		return r, false
	}
	r.ConnID = binary.BigEndian.Uint64(p[0:8])
	r.Tx = binary.BigEndian.Uint32(p[12:16])
	copy(r.InfoHash[:], p[16:36])
	copy(r.PeerID[:], p[36:56])
	r.Downloaded = int64(binary.BigEndian.Uint64(p[56:64]))
	r.Left = int64(binary.BigEndian.Uint64(p[64:72]))
	r.Uploaded = int64(binary.BigEndian.Uint64(p[72:80]))
	r.Event = binary.BigEndian.Uint32(p[80:84])
	r.IP = binary.BigEndian.Uint32(p[84:88])
	r.Key = binary.BigEndian.Uint32(p[88:92])
	r.NumWant = int32(binary.BigEndian.Uint32(p[92:96]))
	r.Port = binary.BigEndian.Uint16(p[96:98])
	return r, true
}

func marshalAnnounceResp(tx uint32, interval time.Duration, leechers, seeders int, compact []byte) []byte {
	p := make([]byte, announceRespLen, announceRespLen+len(compact))
	binary.BigEndian.PutUint32(p[0:4], udpActionAnnounce)
	binary.BigEndian.PutUint32(p[4:8], tx)
	binary.BigEndian.PutUint32(p[8:12], uint32(interval/time.Second))
	binary.BigEndian.PutUint32(p[12:16], uint32(leechers))
	binary.BigEndian.PutUint32(p[16:20], uint32(seeders))
	return append(p, compact...)
}

func parseAnnounceResp(p []byte) (*AnnounceResponse, error) {
	if len(p) < announceRespLen {
		return nil, fmt.Errorf("tracker: announce response is %d bytes, want ≥%d", len(p), announceRespLen)
	}
	compact := p[announceRespLen:]
	if len(compact)%6 != 0 {
		return nil, fmt.Errorf("tracker: compact peers length %d", len(compact))
	}
	resp := &AnnounceResponse{
		Interval: time.Duration(binary.BigEndian.Uint32(p[8:12])) * time.Second,
		Leechers: int(binary.BigEndian.Uint32(p[12:16])),
		Seeders:  int(binary.BigEndian.Uint32(p[16:20])),
	}
	for off := 0; off < len(compact); off += 6 {
		resp.Peers = append(resp.Peers, PeerAddr{
			IP:   net.IPv4(compact[off], compact[off+1], compact[off+2], compact[off+3]),
			Port: binary.BigEndian.Uint16(compact[off+4 : off+6]),
		})
	}
	return resp, nil
}

func marshalScrapeReq(connID uint64, tx uint32, hashes []metainfo.InfoHash) []byte {
	p := make([]byte, 16, 16+20*len(hashes))
	binary.BigEndian.PutUint64(p[0:8], connID)
	binary.BigEndian.PutUint32(p[8:12], udpActionScrape)
	binary.BigEndian.PutUint32(p[12:16], tx)
	for _, h := range hashes {
		p = append(p, h[:]...)
	}
	return p
}

func parseScrapeReq(p []byte) (connID uint64, tx uint32, hashes []metainfo.InfoHash, ok bool) {
	if len(p) < 16+20 || binary.BigEndian.Uint32(p[8:12]) != udpActionScrape {
		return 0, 0, nil, false
	}
	connID = binary.BigEndian.Uint64(p[0:8])
	tx = binary.BigEndian.Uint32(p[12:16])
	body := p[16:]
	n := len(body) / 20
	if n > udpMaxScrape {
		n = udpMaxScrape
	}
	for i := 0; i < n; i++ {
		var h metainfo.InfoHash
		copy(h[:], body[i*20:(i+1)*20])
		hashes = append(hashes, h)
	}
	return connID, tx, hashes, true
}

// ScrapeCount is one swarm's scrape entry.
type ScrapeCount struct {
	Seeders   int
	Completed int
	Leechers  int
}

func marshalScrapeResp(tx uint32, counts []ScrapeCount) []byte {
	p := make([]byte, 8, 8+scrapeRespUnit*len(counts))
	binary.BigEndian.PutUint32(p[0:4], udpActionScrape)
	binary.BigEndian.PutUint32(p[4:8], tx)
	for _, c := range counts {
		var e [scrapeRespUnit]byte
		binary.BigEndian.PutUint32(e[0:4], uint32(c.Seeders))
		binary.BigEndian.PutUint32(e[4:8], uint32(c.Completed))
		binary.BigEndian.PutUint32(e[8:12], uint32(c.Leechers))
		p = append(p, e[:]...)
	}
	return p
}

func parseScrapeResp(p []byte) ([]ScrapeCount, error) {
	if len(p) < 8 || (len(p)-8)%scrapeRespUnit != 0 {
		return nil, fmt.Errorf("tracker: scrape response length %d", len(p))
	}
	body := p[8:]
	counts := make([]ScrapeCount, 0, len(body)/scrapeRespUnit)
	for off := 0; off < len(body); off += scrapeRespUnit {
		counts = append(counts, ScrapeCount{
			Seeders:   int(binary.BigEndian.Uint32(body[off : off+4])),
			Completed: int(binary.BigEndian.Uint32(body[off+4 : off+8])),
			Leechers:  int(binary.BigEndian.Uint32(body[off+8 : off+12])),
		})
	}
	return counts, nil
}

func marshalErrorResp(tx uint32, msg string) []byte {
	p := make([]byte, 8, 8+len(msg))
	binary.BigEndian.PutUint32(p[0:4], udpActionError)
	binary.BigEndian.PutUint32(p[4:8], tx)
	return append(p, msg...)
}

// udpRespHeader splits a response datagram's common header. Every
// response carries at least action + transaction id.
func udpRespHeader(p []byte) (action, tx uint32, ok bool) {
	if len(p) < 8 {
		return 0, 0, false
	}
	return binary.BigEndian.Uint32(p[0:4]), binary.BigEndian.Uint32(p[4:8]), true
}

// ---------------------------------------------------------------------------
// Server.

// mintConnID issues a fresh random connection id valid for
// udpConnIDTTL, opportunistically expiring dead ids.
func (s *Server) mintConnID() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, err
	}
	id := binary.BigEndian.Uint64(b[:])
	now := s.now()
	s.udpMu.Lock()
	for old, exp := range s.udpIDs {
		if exp.Before(now) {
			delete(s.udpIDs, old)
		}
	}
	s.udpIDs[id] = now.Add(udpConnIDTTL)
	s.udpMu.Unlock()
	return id, nil
}

// validConnID reports whether id was minted within the TTL.
func (s *Server) validConnID(id uint64) bool {
	now := s.now()
	s.udpMu.Lock()
	exp, ok := s.udpIDs[id]
	if ok && exp.Before(now) {
		delete(s.udpIDs, id)
		ok = false
	}
	s.udpMu.Unlock()
	return ok
}

// ServeUDP answers BEP 15 datagrams on pc until it is closed. Run it
// in a goroutine (ListenUDP does); multiple loops may share one pc.
func (s *Server) ServeUDP(pc net.PacketConn) error {
	buf := make([]byte, 4096)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			return err
		}
		if resp := s.handleUDPPacket(buf[:n], addr); resp != nil {
			_, _ = pc.WriteTo(resp, addr)
		}
	}
}

// ListenUDP binds addr (e.g. "127.0.0.1:0"), serves BEP 15 on it in a
// background goroutine, and returns the packet conn (for its bound
// address) plus a shutdown function.
func (s *Server) ListenUDP(addr string) (net.PacketConn, func() error, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, nil, err
	}
	go func() { _ = s.ServeUDP(pc) }()
	return pc, pc.Close, nil
}

// handleUDPPacket processes one request datagram and returns the
// response datagram (nil = drop silently, as BEP 15 prescribes for
// garbage that does not parse far enough to carry a transaction id).
func (s *Server) handleUDPPacket(p []byte, from net.Addr) []byte {
	s.mUDPPackets.Inc()
	if len(p) < 16 {
		return nil // too short to carry action + transaction id
	}
	action := binary.BigEndian.Uint32(p[8:12])
	switch action {
	case udpActionConnect:
		tx, ok := parseConnectReq(p)
		if !ok {
			return nil // wrong magic: not a BitTorrent UDP client
		}
		id, err := s.mintConnID()
		if err != nil {
			s.mUDPErrors.Inc()
			return marshalErrorResp(tx, "tracker unavailable")
		}
		s.mUDPConnects.Inc()
		return marshalConnectResp(tx, id)

	case udpActionAnnounce:
		req, ok := parseAnnounceReq(p)
		if !ok {
			s.mUDPErrors.Inc()
			return marshalErrorResp(binary.BigEndian.Uint32(p[12:16]), "malformed announce")
		}
		if !s.validConnID(req.ConnID) {
			s.mUDPErrors.Inc()
			return marshalErrorResp(req.Tx, udpErrExpiredConnID)
		}
		s.mAnnounces.Inc()
		ip := udpSourceIP(req.IP, from)
		if ip == nil {
			s.mAnnounceFailures.Inc()
			s.mUDPErrors.Inc()
			return marshalErrorResp(req.Tx, "cannot determine peer IP")
		}
		numWant := int(req.NumWant)
		if numWant < 0 {
			numWant = 50 // the HTTP handler's default, for parity
		}
		if numWant > udpMaxNumWant {
			numWant = udpMaxNumWant
		}
		res := s.applyAnnounce(announceArgs{
			ih:      req.InfoHash,
			peerID:  req.PeerID,
			ip:      ip,
			port:    req.Port,
			left:    req.Left,
			event:   udpEventString(req.Event),
			numWant: numWant,
		})
		return marshalAnnounceResp(req.Tx, res.interval, res.leechers, res.seeds, res.compact)

	case udpActionScrape:
		connID, tx, hashes, ok := parseScrapeReq(p)
		if !ok {
			s.mUDPErrors.Inc()
			return marshalErrorResp(binary.BigEndian.Uint32(p[12:16]), "malformed scrape")
		}
		if !s.validConnID(connID) {
			s.mUDPErrors.Inc()
			return marshalErrorResp(tx, udpErrExpiredConnID)
		}
		s.mScrapes.Inc()
		counts := make([]ScrapeCount, len(hashes))
		for i, h := range hashes {
			seeds, leechers, downloads := s.scrapeCounts(h)
			counts[i] = ScrapeCount{Seeders: seeds, Completed: int(downloads), Leechers: leechers}
		}
		return marshalScrapeResp(tx, counts)
	}
	return nil // unknown action: drop
}

// udpSourceIP resolves the peer IP an announce registers: the packet's
// explicit IPv4 field when nonzero (the ?ip= override of HTTP), else
// the datagram's source address.
func udpSourceIP(field uint32, from net.Addr) net.IP {
	if field != 0 {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], field)
		return net.IPv4(b[0], b[1], b[2], b[3])
	}
	switch a := from.(type) {
	case *net.UDPAddr:
		return a.IP
	}
	host, _, err := net.SplitHostPort(from.String())
	if err != nil {
		return nil
	}
	return net.ParseIP(host)
}

var errUDPTimeout = errors.New("tracker: udp exchange timed out (retransmits exhausted)")
