package tracker

import "swarmavail/internal/obs"

// Instrument registers the tracker's metrics on reg and starts
// counting. Call once, before the handler serves traffic. A nil
// registry is a no-op (the instruments stay nil, which updates
// tolerate), so servers can instrument unconditionally:
//
//	tracker_announces_total            all announce requests
//	tracker_announce_failures_total    announces rejected in-band
//	tracker_scrapes_total              all scrape requests
//	tracker_downloads_total            "completed" events seen
//	tracker_swarms                     swarms currently tracked (gauge)
//	tracker_peers                      peers currently registered (gauge)
//	tracker_udp_packets_total          BEP 15 datagrams handled
//	tracker_udp_connects_total         BEP 15 connect exchanges served
//	tracker_udp_errors_total           BEP 15 error packets sent
func (s *Server) Instrument(reg *obs.Registry) {
	s.mAnnounces = reg.Counter("tracker_announces_total")
	s.mAnnounceFailures = reg.Counter("tracker_announce_failures_total")
	s.mScrapes = reg.Counter("tracker_scrapes_total")
	s.mDownloads = reg.Counter("tracker_downloads_total")
	s.mUDPPackets = reg.Counter("tracker_udp_packets_total")
	s.mUDPConnects = reg.Counter("tracker_udp_connects_total")
	s.mUDPErrors = reg.Counter("tracker_udp_errors_total")
	reg.GaugeFunc("tracker_swarms", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.swarms))
	})
	reg.GaugeFunc("tracker_peers", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, sw := range s.swarms {
			n += len(sw.peers)
		}
		return float64(n)
	})
}
