package tracker

import (
	"bytes"
	"encoding/hex"
	"net"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
)

// startUDPTracker runs a BEP 15 listener over srv and returns its
// udp:// URL.
func startUDPTracker(t testing.TB, srv *Server) string {
	t.Helper()
	pc, closeFn, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	t.Cleanup(func() { _ = closeFn() })
	return "udp://" + pc.LocalAddr().String()
}

func testUDPClient() *UDPClient {
	return &UDPClient{Timeout: 200 * time.Millisecond, MaxRetransmits: 2}
}

// ---------------------------------------------------------------------------
// Golden packet vectors: the exact bytes the BEP prescribes.

func TestUDPGoldenVectors(t *testing.T) {
	ih := testHash(0xAA)
	pid := testPeerID(0xBB)
	cases := []struct {
		name string
		got  []byte
		want string // hex
	}{
		{
			name: "connect request",
			got:  marshalConnectReq(0x01020304),
			want: "0000041727101980" + "00000000" + "01020304",
		},
		{
			name: "connect response",
			got:  marshalConnectResp(0x01020304, 0x1122334455667788),
			want: "00000000" + "01020304" + "1122334455667788",
		},
		{
			name: "announce request",
			got: marshalAnnounceReq(udpAnnounceReq{
				ConnID:     0x1122334455667788,
				Tx:         0x0A0B0C0D,
				InfoHash:   ih,
				PeerID:     pid,
				Downloaded: 1000,
				Left:       2000,
				Uploaded:   3000,
				Event:      udpEventStarted,
				IP:         0x7F000001,
				Key:        0xCAFEBABE,
				NumWant:    -1,
				Port:       6881,
			}),
			want: "1122334455667788" + "00000001" + "0a0b0c0d" +
				strings.Repeat("aa", 20) + strings.Repeat("bb", 20) +
				"00000000000003e8" + "00000000000007d0" + "0000000000000bb8" +
				"00000002" + "7f000001" + "cafebabe" + "ffffffff" + "1ae1",
		},
		{
			name: "announce response",
			got: marshalAnnounceResp(0x0A0B0C0D, 1800*time.Second, 2, 3,
				[]byte{127, 0, 0, 1, 0x1a, 0xe1}),
			want: "00000001" + "0a0b0c0d" + "00000708" + "00000002" + "00000003" +
				"7f0000011ae1",
		},
		{
			name: "scrape request",
			got:  marshalScrapeReq(0x1122334455667788, 0x0A0B0C0D, []metainfo.InfoHash{ih}),
			want: "1122334455667788" + "00000002" + "0a0b0c0d" + strings.Repeat("aa", 20),
		},
		{
			name: "scrape response",
			got:  marshalScrapeResp(0x0A0B0C0D, []ScrapeCount{{Seeders: 1, Completed: 2, Leechers: 3}}),
			want: "00000002" + "0a0b0c0d" + "00000001" + "00000002" + "00000003",
		},
		{
			name: "error response",
			got:  marshalErrorResp(0x0A0B0C0D, "nope"),
			want: "00000003" + "0a0b0c0d" + hex.EncodeToString([]byte("nope")),
		},
	}
	for _, tc := range cases {
		want, err := hex.DecodeString(tc.want)
		if err != nil {
			t.Fatalf("%s: bad vector: %v", tc.name, err)
		}
		if !bytes.Equal(tc.got, want) {
			t.Errorf("%s:\n got %x\nwant %x", tc.name, tc.got, want)
		}
	}
}

func TestUDPAnnounceReqRoundTrip(t *testing.T) {
	in := udpAnnounceReq{
		ConnID: 7, Tx: 9, InfoHash: testHash(1), PeerID: testPeerID(2),
		Downloaded: 10, Left: 20, Uploaded: 30,
		Event: udpEventCompleted, IP: 0x01020304, Key: 5, NumWant: 42, Port: 999,
	}
	out, ok := parseAnnounceReq(marshalAnnounceReq(in))
	if !ok {
		t.Fatal("parseAnnounceReq rejected its own marshal")
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

// ---------------------------------------------------------------------------
// Server/client end-to-end.

func TestUDPAnnounceAndScrape(t *testing.T) {
	srv := NewServer()
	u := startUDPTracker(t, srv)
	uc := testUDPClient()
	ih := testHash(3)

	// A seed and a leecher join.
	if _, err := uc.Announce(AnnounceRequest{
		TrackerURL: u, InfoHash: ih, PeerID: testPeerID(1), Port: 7001,
		Left: 0, Event: "started", IP: "127.0.0.1",
	}); err != nil {
		t.Fatalf("seed announce: %v", err)
	}
	resp, err := uc.Announce(AnnounceRequest{
		TrackerURL: u, InfoHash: ih, PeerID: testPeerID(2), Port: 7002,
		Left: 500, Event: "started", IP: "127.0.0.1",
	})
	if err != nil {
		t.Fatalf("leecher announce: %v", err)
	}
	if resp.Seeders != 1 || resp.Leechers != 1 {
		t.Fatalf("got seeders=%d leechers=%d, want 1/1", resp.Seeders, resp.Leechers)
	}
	found := false
	for _, p := range resp.Peers {
		if p.String() == "127.0.0.1:7001" {
			found = true
		}
	}
	if !found {
		t.Fatalf("peer list %v misses the seed 127.0.0.1:7001", resp.Peers)
	}

	counts, err := uc.Scrape(u, []metainfo.InfoHash{ih})
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if len(counts) != 1 || counts[0].Seeders != 1 || counts[0].Leechers != 1 {
		t.Fatalf("scrape got %+v, want one entry with 1 seeder / 1 leecher", counts)
	}

	// Completing flips the leecher to a seed and bumps downloads.
	if _, err := uc.Announce(AnnounceRequest{
		TrackerURL: u, InfoHash: ih, PeerID: testPeerID(2), Port: 7002,
		Left: 0, Event: "completed", IP: "127.0.0.1",
	}); err != nil {
		t.Fatalf("completed announce: %v", err)
	}
	counts, err = uc.Scrape(u, []metainfo.InfoHash{ih})
	if err != nil {
		t.Fatalf("scrape after completed: %v", err)
	}
	if counts[0].Seeders != 2 || counts[0].Completed != 1 {
		t.Fatalf("after completed: %+v, want 2 seeders / 1 completed", counts[0])
	}
}

func TestUDPConnIDExpiryReconnect(t *testing.T) {
	srv := NewServer()
	var skew atomic.Int64 // server clock offset, read by the serve goroutine
	srv.now = func() time.Time { return time.Now().Add(time.Duration(skew.Load())) }
	u := startUDPTracker(t, srv)
	uc := testUDPClient()
	ih := testHash(4)

	if _, err := uc.Announce(AnnounceRequest{
		TrackerURL: u, InfoHash: ih, PeerID: testPeerID(1), Port: 7001,
		Left: 0, IP: "127.0.0.1",
	}); err != nil {
		t.Fatalf("first announce: %v", err)
	}

	// The server's clock jumps past the 2-minute TTL; the client still
	// holds its cached id (its own clock is real time, inside the
	// 1-minute reuse window) — the announce must transparently
	// reconnect, not fail.
	skew.Store(int64(udpConnIDTTL + time.Second))
	if _, err := uc.Announce(AnnounceRequest{
		TrackerURL: u, InfoHash: ih, PeerID: testPeerID(1), Port: 7001,
		Left: 0, IP: "127.0.0.1",
	}); err != nil {
		t.Fatalf("announce after server-side expiry: %v", err)
	}
}

func TestUDPAnnounceTimeoutIsTemporary(t *testing.T) {
	// A bound-but-unserved socket: every request times out.
	srv := NewServer()
	pc, closeFn, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	_ = closeFn()

	uc := &UDPClient{Timeout: 30 * time.Millisecond, MaxRetransmits: 1}
	_, err = uc.Announce(AnnounceRequest{
		TrackerURL: "udp://" + addr, InfoHash: testHash(5), PeerID: testPeerID(1),
		Port: 7001, IP: "127.0.0.1",
	})
	if err == nil {
		t.Fatal("announce to a dead tracker succeeded")
	}
	if !IsTemporary(err) {
		t.Fatalf("timeout should classify as temporary, got %v", err)
	}
}

func TestUDPBadEventRejected(t *testing.T) {
	uc := testUDPClient()
	_, err := uc.Announce(AnnounceRequest{
		TrackerURL: "udp://127.0.0.1:1", InfoHash: testHash(6), PeerID: testPeerID(1),
		Event: "bogus",
	})
	if err == nil || IsTemporary(err) {
		t.Fatalf("unknown event should fail fatally, got %v", err)
	}
}

// ---------------------------------------------------------------------------
// HTTP-vs-UDP parity: both front ends answer from the same swarm state,
// so identical state must yield identical counts and peer sets.

func TestUDPHTTPAnnounceParity(t *testing.T) {
	srv, httpURL, client := startTestTracker(t)
	udpURL := startUDPTracker(t, srv)
	uc := testUDPClient()
	ih := testHash(7)

	// Populate one swarm over HTTP: 2 seeds, 3 leechers.
	for i := 0; i < 5; i++ {
		left := int64(0)
		if i >= 2 {
			left = 1000
		}
		if _, err := Announce(client, AnnounceRequest{
			TrackerURL: httpURL, InfoHash: ih, PeerID: testPeerID(byte(10 + i)),
			Port: 7100 + i, Left: left, Event: "started", IP: "127.0.0.1",
		}); err != nil {
			t.Fatalf("populate %d: %v", i, err)
		}
	}

	observe := func(trackerURL string, viaUDP bool, port int) *AnnounceResponse {
		req := AnnounceRequest{
			TrackerURL: trackerURL, InfoHash: ih, PeerID: testPeerID(99),
			Port: port, Left: 1000, NumWant: 50, IP: "127.0.0.1",
		}
		var resp *AnnounceResponse
		var err error
		if viaUDP {
			resp, err = uc.Announce(req)
		} else {
			resp, err = Announce(client, req)
		}
		if err != nil {
			t.Fatalf("observer announce (udp=%v): %v", viaUDP, err)
		}
		// Deregister so the next observation sees pristine state.
		req.Event = "stopped"
		if viaUDP {
			_, err = uc.Announce(req)
		} else {
			_, err = Announce(client, req)
		}
		if err != nil {
			t.Fatalf("observer stop (udp=%v): %v", viaUDP, err)
		}
		return resp
	}

	udpResp := observe(udpURL, true, 7999)
	httpResp := observe(httpURL, false, 7999)

	if udpResp.Seeders != httpResp.Seeders || udpResp.Leechers != httpResp.Leechers {
		t.Fatalf("parity broken: udp %d/%d vs http %d/%d (seeders/leechers)",
			udpResp.Seeders, udpResp.Leechers, httpResp.Seeders, httpResp.Leechers)
	}
	// 2 seeds, 3 populated leechers, plus the observer itself (both
	// front ends count the announcer, maintaining parity).
	if udpResp.Seeders != 2 || udpResp.Leechers != 4 {
		t.Fatalf("got %d seeders / %d leechers, want 2/4", udpResp.Seeders, udpResp.Leechers)
	}
	peerSet := func(r *AnnounceResponse) []string {
		out := make([]string, 0, len(r.Peers))
		for _, p := range r.Peers {
			out = append(out, p.String())
		}
		sort.Strings(out)
		return out
	}
	u, h := peerSet(udpResp), peerSet(httpResp)
	if len(u) != len(h) {
		t.Fatalf("peer set sizes differ: udp %v vs http %v", u, h)
	}
	for i := range u {
		if u[i] != h[i] {
			t.Fatalf("peer sets differ: udp %v vs http %v", u, h)
		}
	}
}

// ---------------------------------------------------------------------------
// Fuzz: no packet may panic the server's handler or the client parsers.

func FuzzUDPTrackerPacket(f *testing.F) {
	f.Add(marshalConnectReq(1))
	f.Add(marshalAnnounceReq(udpAnnounceReq{ConnID: 1, Tx: 2, NumWant: -1}))
	f.Add(marshalScrapeReq(1, 2, []metainfo.InfoHash{testHash(1)}))
	f.Add(marshalConnectResp(1, 2))
	f.Add(marshalAnnounceResp(1, time.Second, 2, 3, []byte{1, 2, 3, 4, 5, 6}))
	f.Add(marshalScrapeResp(1, []ScrapeCount{{1, 2, 3}}))
	f.Add(marshalErrorResp(1, "x"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 98))

	srv := NewServer()
	from := mustUDPAddr("127.0.0.1:9999")
	f.Fuzz(func(t *testing.T, p []byte) {
		_ = srv.handleUDPPacket(p, from)
		_, _ = parseConnectResp(p)
		_, _ = parseAnnounceResp(p)
		_, _ = parseScrapeResp(p)
		_, _, _ = udpRespHeader(p)
		_, _ = parseAnnounceReq(p)
		_, _, _, _ = parseScrapeReq(p)
		_, _ = parseConnectReq(p)
	})
}

func mustUDPAddr(s string) *net.UDPAddr {
	a, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		panic(err)
	}
	return a
}

// ---------------------------------------------------------------------------
// Benchmark: one announce exchange over loopback (connect amortised by
// the client's connection-id cache).

func BenchmarkUDPAnnounce(b *testing.B) {
	srv := NewServer()
	u := startUDPTracker(b, srv)
	uc := &UDPClient{Timeout: time.Second, MaxRetransmits: 1}
	ih := testHash(9)
	req := AnnounceRequest{
		TrackerURL: u, InfoHash: ih, PeerID: testPeerID(1), Port: 7001,
		Left: 100, IP: "127.0.0.1", NumWant: 50,
	}
	if _, err := uc.Announce(req); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uc.Announce(req); err != nil {
			b.Fatalf("announce: %v", err)
		}
	}
}
