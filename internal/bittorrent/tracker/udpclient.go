// BEP 15 client side: AnnounceUDP/ScrapeUDP with the spec's
// 15·2^n-second retransmit schedule, connection-id caching (reused for
// one minute, reconnect on the server's expiry verdict), and the same
// classified *Error scheme as the HTTP announcer — so the peers' and
// monitors' existing retry/backoff logic applies unchanged.
package tracker

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/url"
	"strings"
	"sync"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
)

// DefaultUDP is the UDPClient Announce uses for udp:// tracker URLs.
var DefaultUDP = &UDPClient{}

// UDPClient performs BEP 15 exchanges. The zero value is ready to use;
// one client may be shared by any number of goroutines (the
// connection-id cache is the shared state worth having: a fleet of
// monitors announcing to one tracker connects once a minute, not once
// a probe).
type UDPClient struct {
	// Dial opens the datagram socket to the tracker (default
	// net.Dial("udp", addr)). A faultnet Datagram wrapper goes here to
	// announce through injected datagram loss/duplication/reordering.
	Dial func(addr string) (net.Conn, error)
	// Timeout is the base retransmit timeout; attempt n waits
	// Timeout·2^n (default 15s, per BEP 15). Tests shrink it.
	Timeout time.Duration
	// MaxRetransmits bounds the schedule: a request is sent
	// 1+MaxRetransmits times before the exchange fails as Temporary
	// (default 3 → worst case 15+30+60+120s with the default Timeout;
	// the BEP allows up to n=8).
	MaxRetransmits int
	// Now overrides the clock (tests).
	Now func() time.Time

	mu    sync.Mutex
	conns map[string]udpConnID // tracker host:port → cached connection id
}

// udpConnID is one cached connection id and when it was minted.
type udpConnID struct {
	id     uint64
	minted time.Time
}

func (c *UDPClient) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 15 * time.Second
}

func (c *UDPClient) retransmits() int {
	if c.MaxRetransmits > 0 {
		return c.MaxRetransmits
	}
	return 3
}

func (c *UDPClient) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *UDPClient) dial(addr string) (net.Conn, error) {
	if c.Dial != nil {
		return c.Dial(addr)
	}
	return net.Dial("udp", addr)
}

// newTx draws a random transaction id.
func newTx() (uint32, error) {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

// udpTrackerAddr extracts host:port from a udp:// tracker URL.
func udpTrackerAddr(trackerURL string) (string, error) {
	u, err := url.Parse(trackerURL)
	if err != nil {
		return "", fmt.Errorf("tracker: bad URL: %w", err)
	}
	if u.Scheme != "udp" {
		return "", fmt.Errorf("tracker: %q is not a udp:// URL", trackerURL)
	}
	if u.Host == "" {
		return "", fmt.Errorf("tracker: udp URL %q has no host", trackerURL)
	}
	return u.Host, nil
}

// udpServerError is an in-band error packet, pre-classification.
type udpServerError struct{ msg string }

func (e *udpServerError) Error() string { return "tracker: udp error packet: " + e.msg }

// isConnIDError reports whether the server's error verdict names the
// connection id — the one in-band error a reconnect can fix.
func (e *udpServerError) isConnIDError() bool {
	return strings.Contains(strings.ToLower(e.msg), "connection id")
}

// Announce performs one BEP 15 announce against req.TrackerURL
// (a udp:// URL). Timeouts and transport failures come back as
// Temporary *Error; an in-band error packet is fatal (with Reason set),
// except an expired-connection-id verdict, which triggers one
// transparent reconnect-and-retry.
func (c *UDPClient) Announce(req AnnounceRequest) (*AnnounceResponse, error) {
	addr, err := udpTrackerAddr(req.TrackerURL)
	if err != nil {
		return nil, err
	}
	event, err := udpEventCode(req.Event)
	if err != nil {
		return nil, &Error{URL: req.TrackerURL, Err: err}
	}
	var ipField uint32
	if req.IP != "" {
		if ip4 := net.ParseIP(req.IP).To4(); ip4 != nil {
			ipField = binary.BigEndian.Uint32(ip4)
		}
	}
	numWant := int32(-1)
	if req.NumWant > 0 {
		numWant = int32(req.NumWant)
	}
	key, err := newTx()
	if err != nil {
		return nil, &Error{URL: req.TrackerURL, Temporary: true, Err: err}
	}

	conn, err := c.dial(addr)
	if err != nil {
		return nil, &Error{URL: req.TrackerURL, Temporary: true, Err: err}
	}
	defer conn.Close()

	// One reconnect-and-retry when the server reports our connection id
	// expired (we raced the two-minute TTL).
	for attempt := 0; ; attempt++ {
		connID, err := c.connID(conn, addr, req.TrackerURL)
		if err != nil {
			return nil, err
		}
		tx, err := newTx()
		if err != nil {
			return nil, &Error{URL: req.TrackerURL, Temporary: true, Err: err}
		}
		pkt := marshalAnnounceReq(udpAnnounceReq{
			ConnID:     connID,
			Tx:         tx,
			InfoHash:   req.InfoHash,
			PeerID:     req.PeerID,
			Downloaded: req.Downloaded,
			Left:       req.Left,
			Uploaded:   req.Uploaded,
			Event:      event,
			IP:         ipField,
			Key:        key,
			NumWant:    numWant,
			Port:       uint16(req.Port),
		})
		payload, err := c.roundTrip(conn, addr, pkt, udpActionAnnounce, tx)
		if err != nil {
			var serr *udpServerError
			if errors.As(err, &serr) {
				if serr.isConnIDError() && attempt == 0 {
					c.invalidate(addr)
					continue
				}
				return &AnnounceResponse{FailureMsg: serr.msg},
					&Error{URL: req.TrackerURL, Reason: serr.msg}
			}
			return nil, &Error{URL: req.TrackerURL, Temporary: true, Err: err}
		}
		resp, err := parseAnnounceResp(payload)
		if err != nil {
			return nil, &Error{URL: req.TrackerURL, Temporary: true, Err: err}
		}
		return resp, nil
	}
}

// Scrape performs one BEP 15 scrape for up to 74 info-hashes.
func (c *UDPClient) Scrape(trackerURL string, hashes []metainfo.InfoHash) ([]ScrapeCount, error) {
	addr, err := udpTrackerAddr(trackerURL)
	if err != nil {
		return nil, err
	}
	if len(hashes) == 0 || len(hashes) > udpMaxScrape {
		return nil, fmt.Errorf("tracker: scrape wants 1..%d hashes, got %d", udpMaxScrape, len(hashes))
	}
	conn, err := c.dial(addr)
	if err != nil {
		return nil, &Error{URL: trackerURL, Temporary: true, Err: err}
	}
	defer conn.Close()
	for attempt := 0; ; attempt++ {
		connID, err := c.connID(conn, addr, trackerURL)
		if err != nil {
			return nil, err
		}
		tx, err := newTx()
		if err != nil {
			return nil, &Error{URL: trackerURL, Temporary: true, Err: err}
		}
		payload, err := c.roundTrip(conn, addr, marshalScrapeReq(connID, tx, hashes), udpActionScrape, tx)
		if err != nil {
			var serr *udpServerError
			if errors.As(err, &serr) {
				if serr.isConnIDError() && attempt == 0 {
					c.invalidate(addr)
					continue
				}
				return nil, &Error{URL: trackerURL, Reason: serr.msg}
			}
			return nil, &Error{URL: trackerURL, Temporary: true, Err: err}
		}
		counts, err := parseScrapeResp(payload)
		if err != nil {
			return nil, &Error{URL: trackerURL, Temporary: true, Err: err}
		}
		if len(counts) != len(hashes) {
			return nil, &Error{URL: trackerURL, Temporary: true,
				Err: fmt.Errorf("tracker: scrape answered %d entries for %d hashes", len(counts), len(hashes))}
		}
		return counts, nil
	}
}

// connID returns a live connection id for addr: the cached one when
// younger than udpConnIDReuse, else a fresh connect exchange.
func (c *UDPClient) connID(conn net.Conn, addr, trackerURL string) (uint64, error) {
	now := c.now()
	c.mu.Lock()
	cached, ok := c.conns[addr]
	c.mu.Unlock()
	if ok && now.Sub(cached.minted) < udpConnIDReuse {
		return cached.id, nil
	}
	tx, err := newTx()
	if err != nil {
		return 0, &Error{URL: trackerURL, Temporary: true, Err: err}
	}
	payload, err := c.roundTrip(conn, addr, marshalConnectReq(tx), udpActionConnect, tx)
	if err != nil {
		var serr *udpServerError
		if errors.As(err, &serr) {
			return 0, &Error{URL: trackerURL, Reason: serr.msg}
		}
		return 0, &Error{URL: trackerURL, Temporary: true, Err: err}
	}
	id, err := parseConnectResp(payload)
	if err != nil {
		return 0, &Error{URL: trackerURL, Temporary: true, Err: err}
	}
	c.mu.Lock()
	if c.conns == nil {
		c.conns = make(map[string]udpConnID)
	}
	c.conns[addr] = udpConnID{id: id, minted: now}
	c.mu.Unlock()
	return id, nil
}

// invalidate drops the cached connection id for addr.
func (c *UDPClient) invalidate(addr string) {
	c.mu.Lock()
	delete(c.conns, addr)
	c.mu.Unlock()
}

// roundTrip sends pkt and waits for the matching response, following
// the BEP 15 retransmit schedule: attempt n times out after
// Timeout·2^n, and the request is resent up to MaxRetransmits times.
// Datagrams with the wrong transaction id or an unexpected action are
// strays (late retransmit answers, cross-talk) and are skipped. An
// error packet for our transaction comes back as *udpServerError.
func (c *UDPClient) roundTrip(conn net.Conn, addr string, pkt []byte, wantAction, tx uint32) ([]byte, error) {
	buf := make([]byte, 4096)
	timeout := c.timeout()
	for n := 0; n <= c.retransmits(); n++ {
		if _, err := conn.Write(pkt); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(timeout << uint(n))
		if err := conn.SetReadDeadline(deadline); err != nil {
			return nil, err
		}
		for {
			rn, err := conn.Read(buf)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					break // retransmit with the doubled timeout
				}
				return nil, err
			}
			p := buf[:rn]
			action, gotTx, ok := udpRespHeader(p)
			if !ok || gotTx != tx {
				continue // stray datagram
			}
			if action == udpActionError {
				return nil, &udpServerError{msg: string(p[8:])}
			}
			if action != wantAction {
				continue // protocol confusion; keep waiting
			}
			out := make([]byte, rn)
			copy(out, p)
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w after %d attempts to %s", errUDPTimeout, c.retransmits()+1, addr)
}

// AnnounceUDP performs one BEP 15 announce with the default client —
// the UDP twin of Announce for callers that already know the scheme.
func AnnounceUDP(req AnnounceRequest) (*AnnounceResponse, error) {
	return DefaultUDP.Announce(req)
}
