package tracker

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"swarmavail/internal/bittorrent/bencode"
	"swarmavail/internal/bittorrent/metainfo"
)

func testHash(b byte) metainfo.InfoHash {
	var h metainfo.InfoHash
	for i := range h {
		h[i] = b
	}
	return h
}

func testPeerID(b byte) [20]byte {
	var id [20]byte
	for i := range id {
		id[i] = b
	}
	return id
}

func startTestTracker(t *testing.T) (*Server, string, *http.Client) {
	t.Helper()
	s := NewServer()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL + "/announce", ts.Client()
}

func TestAnnounceRegistersAndLists(t *testing.T) {
	srv, announceURL, client := startTestTracker(t)
	ih := testHash(1)

	// A seed announces.
	resp, err := Announce(client, AnnounceRequest{
		TrackerURL: announceURL, InfoHash: ih, PeerID: testPeerID('a'),
		Port: 7001, Left: 0, Event: "started", IP: "127.0.0.1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.FailureMsg != "" {
		t.Fatalf("failure: %s", resp.FailureMsg)
	}
	if resp.Seeders != 1 || resp.Leechers != 0 {
		t.Fatalf("counts %d/%d", resp.Seeders, resp.Leechers)
	}
	if len(resp.Peers) != 0 {
		t.Fatalf("announcer should not see itself: %v", resp.Peers)
	}
	if resp.Interval != DefaultInterval {
		t.Fatalf("interval %v", resp.Interval)
	}

	// A leecher announces and should see the seed.
	resp, err = Announce(client, AnnounceRequest{
		TrackerURL: announceURL, InfoHash: ih, PeerID: testPeerID('b'),
		Port: 7002, Left: 1000, Event: "started", IP: "127.0.0.1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seeders != 1 || resp.Leechers != 1 {
		t.Fatalf("counts %d/%d", resp.Seeders, resp.Leechers)
	}
	if len(resp.Peers) != 1 || resp.Peers[0].Port != 7001 {
		t.Fatalf("peer list %v", resp.Peers)
	}
	if resp.Peers[0].String() != "127.0.0.1:7001" {
		t.Fatalf("peer addr %q", resp.Peers[0])
	}

	seeds, leechers := srv.Counts(ih)
	if seeds != 1 || leechers != 1 {
		t.Fatalf("server counts %d/%d", seeds, leechers)
	}
}

func TestAnnounceStoppedRemovesPeer(t *testing.T) {
	srv, announceURL, client := startTestTracker(t)
	ih := testHash(2)
	req := AnnounceRequest{
		TrackerURL: announceURL, InfoHash: ih, PeerID: testPeerID('c'),
		Port: 7003, Left: 0, IP: "127.0.0.1",
	}
	if _, err := Announce(client, req); err != nil {
		t.Fatal(err)
	}
	req.Event = "stopped"
	if _, err := Announce(client, req); err != nil {
		t.Fatal(err)
	}
	if s, l := srv.Counts(ih); s != 0 || l != 0 {
		t.Fatalf("peer not removed: %d/%d", s, l)
	}
}

func TestCompletedTransitionsLeecherToSeed(t *testing.T) {
	srv, announceURL, client := startTestTracker(t)
	ih := testHash(3)
	req := AnnounceRequest{
		TrackerURL: announceURL, InfoHash: ih, PeerID: testPeerID('d'),
		Port: 7004, Left: 500, IP: "127.0.0.1",
	}
	if _, err := Announce(client, req); err != nil {
		t.Fatal(err)
	}
	if s, l := srv.Counts(ih); s != 0 || l != 1 {
		t.Fatalf("initial counts %d/%d", s, l)
	}
	req.Left = 0
	req.Event = "completed"
	if _, err := Announce(client, req); err != nil {
		t.Fatal(err)
	}
	if s, l := srv.Counts(ih); s != 1 || l != 0 {
		t.Fatalf("post-completion counts %d/%d", s, l)
	}
}

func TestScrape(t *testing.T) {
	_, announceURL, client := startTestTracker(t)
	ih := testHash(4)
	for i, left := range []int64{0, 100, 100} {
		if _, err := Announce(client, AnnounceRequest{
			TrackerURL: announceURL, InfoHash: ih, PeerID: testPeerID(byte('x' + i)),
			Port: 7100 + i, Left: left, IP: "127.0.0.1",
		}); err != nil {
			t.Fatal(err)
		}
	}
	scrapeURL := announceURL[:len(announceURL)-len("/announce")] + "/scrape?info_hash="
	resp, err := client.Get(scrapeURL + urlEscapeHash(ih))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	v, err := bencode.Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	d, _ := bencode.AsDict(v)
	files, ok := d.Sub("files")
	if !ok {
		t.Fatalf("no files in scrape: %v", v)
	}
	entry, ok := files.Sub(string(ih[:]))
	if !ok {
		t.Fatalf("swarm missing from scrape: %v", files)
	}
	if c, _ := entry.Int("complete"); c != 1 {
		t.Fatalf("complete = %d", c)
	}
	if c, _ := entry.Int("incomplete"); c != 2 {
		t.Fatalf("incomplete = %d", c)
	}
}

// urlEscapeHash percent-encodes an infohash byte-for-byte.
func urlEscapeHash(h metainfo.InfoHash) string {
	out := make([]byte, 0, 60)
	const hex = "0123456789ABCDEF"
	for _, b := range h {
		out = append(out, '%', hex[b>>4], hex[b&0xF])
	}
	return string(out)
}

func TestAnnounceValidation(t *testing.T) {
	_, announceURL, client := startTestTracker(t)
	// Bad infohash (tracker answers with failure reason, not an error).
	resp, err := client.Get(announceURL + "?info_hash=short&peer_id=aaaaaaaaaaaaaaaaaaaa&port=7000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	parsed, err := ParseAnnounceResponse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if parsed.FailureMsg == "" {
		t.Fatal("bad info_hash accepted")
	}
}

func TestAnnounceFailureCases(t *testing.T) {
	_, announceURL, client := startTestTracker(t)
	ih := testHash(9)
	cases := []AnnounceRequest{
		{TrackerURL: announceURL, InfoHash: ih, Port: 0, IP: "127.0.0.1"},     // bad port
		{TrackerURL: announceURL, InfoHash: ih, Port: 70000, IP: "127.0.0.1"}, // bad port
		{TrackerURL: announceURL, InfoHash: ih, Port: 7000, IP: "not-an-ip"},  // bad ip
	}
	for i, req := range cases {
		req.PeerID = testPeerID('z')
		resp, err := Announce(client, req)
		if err == nil {
			t.Fatalf("case %d accepted", i)
		}
		var te *Error
		if !errors.As(err, &te) || te.Temporary || te.Reason == "" {
			t.Errorf("case %d: error %v, want fatal tracker.Error with a reason", i, err)
		}
		if IsTemporary(err) {
			t.Errorf("case %d: in-band rejection classified temporary", i)
		}
		// The in-band reason stays readable on the response too.
		if resp == nil || resp.FailureMsg == "" {
			t.Errorf("case %d: FailureMsg not preserved", i)
		}
	}
}

func TestAnnounceErrorClassification(t *testing.T) {
	ih := testHash(11)
	valid := func(url string) AnnounceRequest {
		return AnnounceRequest{TrackerURL: url, InfoHash: ih,
			PeerID: testPeerID('c'), Port: 7000, IP: "127.0.0.1"}
	}

	// Unreachable tracker: temporary.
	_, err := Announce(nil, valid("http://127.0.0.1:1/announce"))
	if err == nil || !IsTemporary(err) {
		t.Fatalf("unreachable tracker: %v, want temporary", err)
	}

	// 5xx: temporary. 404: fatal. Garbage body: temporary.
	for _, tc := range []struct {
		status    int
		body      string
		temporary bool
	}{
		{http.StatusServiceUnavailable, "down", true},
		{http.StatusNotFound, "no such tracker", false},
		{http.StatusOK, "this is not bencode", true},
	} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(tc.status)
			_, _ = io.WriteString(w, tc.body)
		}))
		_, err := Announce(srv.Client(), valid(srv.URL+"/announce"))
		if err == nil {
			t.Fatalf("status %d accepted", tc.status)
		}
		if IsTemporary(err) != tc.temporary {
			t.Errorf("status %d %q: IsTemporary=%v, want %v (err: %v)",
				tc.status, tc.body, IsTemporary(err), tc.temporary, err)
		}
		srv.Close()
	}

	// Unclassified errors default to temporary; nil is not an error.
	if !IsTemporary(errors.New("mystery")) {
		t.Fatal("unclassified error must default to temporary")
	}
	if IsTemporary(nil) {
		t.Fatal("nil classified as temporary failure")
	}
}

func TestPeerExpiry(t *testing.T) {
	srv, announceURL, client := startTestTracker(t)
	// Take control of time.
	now := time.Now()
	srv.now = func() time.Time { return now }
	ih := testHash(5)
	if _, err := Announce(client, AnnounceRequest{
		TrackerURL: announceURL, InfoHash: ih, PeerID: testPeerID('e'),
		Port: 7050, Left: 0, IP: "127.0.0.1",
	}); err != nil {
		t.Fatal(err)
	}
	if s, _ := srv.Counts(ih); s != 1 {
		t.Fatal("peer not registered")
	}
	// Advance time beyond the TTL; the next announce (by someone else)
	// triggers expiry.
	now = now.Add(5 * DefaultInterval)
	if _, err := Announce(client, AnnounceRequest{
		TrackerURL: announceURL, InfoHash: ih, PeerID: testPeerID('f'),
		Port: 7051, Left: 10, IP: "127.0.0.1",
	}); err != nil {
		t.Fatal(err)
	}
	if s, l := srv.Counts(ih); s != 0 || l != 1 {
		t.Fatalf("stale peer not expired: %d/%d", s, l)
	}
}

func TestParseAnnounceResponseErrors(t *testing.T) {
	bad := [][]byte{
		[]byte("garbage"),
		[]byte("le"),               // not a dict
		[]byte("d8:intervali30ee"), // missing peers
		[]byte("d5:peers5:abcdee"), // peers not multiple of 6
	}
	for i, raw := range bad {
		if _, err := ParseAnnounceResponse(raw); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestServeStandalone(t *testing.T) {
	s := NewServer()
	ln, closeFn, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	url := "http://" + ln.Addr().String() + "/announce"
	resp, err := Announce(nil, AnnounceRequest{
		TrackerURL: url, InfoHash: testHash(6), PeerID: testPeerID('g'),
		Port: 7060, Left: 0, IP: "127.0.0.1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seeders != 1 {
		t.Fatalf("standalone tracker counts: %+v", resp)
	}
}

func TestNumWantLimitsPeerList(t *testing.T) {
	_, announceURL, client := startTestTracker(t)
	ih := testHash(7)
	for i := 0; i < 10; i++ {
		if _, err := Announce(client, AnnounceRequest{
			TrackerURL: announceURL, InfoHash: ih, PeerID: testPeerID(byte('A' + i)),
			Port: 7200 + i, Left: 100, IP: "127.0.0.1",
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := Announce(client, AnnounceRequest{
		TrackerURL: announceURL, InfoHash: ih, PeerID: testPeerID('Z'),
		Port: 7300, Left: 100, NumWant: 3, IP: "127.0.0.1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Peers) != 3 {
		t.Fatalf("numwant ignored: %d peers", len(resp.Peers))
	}
}

// TestAnnounceBodyCapExactEOF is the regression for the hand-rolled
// read loop that only checked the 1 MiB cap when Read returned a nil
// error: a final chunk delivered together with io.EOF was appended past
// the cap unchecked. The LimitReader-based read must reject an
// oversize body regardless of how the transport frames its chunks.
func TestAnnounceBodyCapExactEOF(t *testing.T) {
	oversize := make([]byte, maxAnnounceBody+10)
	for i := range oversize {
		oversize[i] = 'd' // never a valid bencode response
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Content-Length set: the whole body (cap overflow included)
		// arrives in final chunks paired with io.EOF.
		w.Header().Set("Content-Length", strconv.Itoa(len(oversize)))
		_, _ = w.Write(oversize)
	}))
	defer ts.Close()
	_, err := Announce(ts.Client(), AnnounceRequest{
		TrackerURL: ts.URL, InfoHash: testHash(21), PeerID: testPeerID(1),
		Port: 7000, IP: "127.0.0.1",
	})
	if err == nil {
		t.Fatal("oversize announce body accepted")
	}
	var te *Error
	if !errors.As(err, &te) {
		t.Fatalf("want *tracker.Error, got %v", err)
	}
	if !strings.Contains(err.Error(), "too large") {
		t.Fatalf("want a too-large rejection, got %v", err)
	}
}

// TestAnnounceThreadsUploadedDownloaded verifies the client reports the
// request's real transfer counters instead of the old hardcoded "0"s.
func TestAnnounceThreadsUploadedDownloaded(t *testing.T) {
	var gotUploaded, gotDownloaded string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotUploaded = r.URL.Query().Get("uploaded")
		gotDownloaded = r.URL.Query().Get("downloaded")
		resp, _ := bencode.Encode(map[string]any{
			"interval": int64(60), "peers": "",
		})
		_, _ = w.Write(resp)
	}))
	defer ts.Close()
	_, err := Announce(ts.Client(), AnnounceRequest{
		TrackerURL: ts.URL, InfoHash: testHash(22), PeerID: testPeerID(2),
		Port: 7000, IP: "127.0.0.1", Uploaded: 12345, Downloaded: 67890,
	})
	if err != nil {
		t.Fatalf("announce: %v", err)
	}
	if gotUploaded != "12345" || gotDownloaded != "67890" {
		t.Fatalf("tracker saw uploaded=%q downloaded=%q, want 12345/67890",
			gotUploaded, gotDownloaded)
	}
}
