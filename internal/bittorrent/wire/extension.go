package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"

	"swarmavail/internal/bittorrent/bencode"
)

// The BEP-10 extension protocol carries vendor extensions inside message
// type 20. We implement the subset the paper's methodology depends on:
// the extended handshake and ut_pex (BEP-11 peer exchange), which lets
// peers — and the §2 monitoring agents — discover neighbours beyond the
// tracker's answer.

// MsgExtended is the BEP-10 extended message type.
const MsgExtended MessageType = 20

// Extension sub-message IDs.
const (
	// ExtHandshakeID is the reserved sub-ID of the extended handshake.
	ExtHandshakeID = 0
	// ExtPexID is the sub-ID this implementation assigns to ut_pex in
	// its extended handshake.
	ExtPexID = 1
)

// extensionReservedByte/Bit flag BEP-10 support in the handshake
// reserved field (bit 20 from the right: byte 5, 0x10).
const (
	extensionReservedByte = 5
	extensionReservedBit  = 0x10
)

// ExtendedHandshake is the payload of sub-message 0: the map from
// extension names to the sub-IDs the sender will understand, plus the
// sender's listen port (the "p" key), which PEX needs to advertise
// dialable addresses.
type ExtendedHandshake struct {
	// PexID is the sub-ID the sender assigned to ut_pex (0 = PEX not
	// supported).
	PexID int64
	// Port is the sender's TCP listen port (0 = not listening).
	Port int64
}

// MarshalExtendedHandshake encodes the handshake dictionary.
func MarshalExtendedHandshake(h ExtendedHandshake) ([]byte, error) {
	m := map[string]any{}
	if h.PexID != 0 {
		m["ut_pex"] = h.PexID
	}
	d := map[string]any{"m": m}
	if h.Port != 0 {
		d["p"] = h.Port
	}
	return bencode.Encode(d)
}

// ParseExtendedHandshake decodes the handshake dictionary.
func ParseExtendedHandshake(payload []byte) (ExtendedHandshake, error) {
	var out ExtendedHandshake
	v, err := bencode.Decode(payload)
	if err != nil {
		return out, fmt.Errorf("wire: extended handshake: %w", err)
	}
	d, ok := bencode.AsDict(v)
	if !ok {
		return out, errors.New("wire: extended handshake is not a dictionary")
	}
	out.Port, _ = d.Int("p")
	m, ok := d.Sub("m")
	if !ok {
		return out, nil // no extensions advertised
	}
	out.PexID, _ = m.Int("ut_pex")
	return out, nil
}

// PexMessage is a ut_pex payload: peers recently added to and dropped
// from the sender's neighbourhood, in compact 6-byte format.
type PexMessage struct {
	Added   []PexPeer
	Dropped []PexPeer
}

// PexPeer is one IPv4 endpoint.
type PexPeer struct {
	IP   net.IP
	Port uint16
}

// String renders host:port.
func (p PexPeer) String() string {
	return fmt.Sprintf("%s:%d", p.IP.String(), p.Port)
}

func compactPeers(peers []PexPeer) (string, error) {
	buf := make([]byte, 0, 6*len(peers))
	for _, p := range peers {
		ip4 := p.IP.To4()
		if ip4 == nil {
			return "", fmt.Errorf("wire: pex peer %v is not IPv4", p.IP)
		}
		buf = append(buf, ip4...)
		var port [2]byte
		binary.BigEndian.PutUint16(port[:], p.Port)
		buf = append(buf, port[:]...)
	}
	return string(buf), nil
}

func parseCompactPeers(s string) ([]PexPeer, error) {
	if len(s)%6 != 0 {
		return nil, fmt.Errorf("wire: compact peer list length %d", len(s))
	}
	var out []PexPeer
	for off := 0; off < len(s); off += 6 {
		out = append(out, PexPeer{
			IP:   net.IPv4(s[off], s[off+1], s[off+2], s[off+3]),
			Port: binary.BigEndian.Uint16([]byte(s[off+4 : off+6])),
		})
	}
	return out, nil
}

// MarshalPex encodes a ut_pex payload.
func MarshalPex(m PexMessage) ([]byte, error) {
	added, err := compactPeers(m.Added)
	if err != nil {
		return nil, err
	}
	dropped, err := compactPeers(m.Dropped)
	if err != nil {
		return nil, err
	}
	return bencode.Encode(map[string]any{
		"added":   added,
		"dropped": dropped,
	})
}

// ParsePex decodes a ut_pex payload.
func ParsePex(payload []byte) (PexMessage, error) {
	var out PexMessage
	v, err := bencode.Decode(payload)
	if err != nil {
		return out, fmt.Errorf("wire: pex: %w", err)
	}
	d, ok := bencode.AsDict(v)
	if !ok {
		return out, errors.New("wire: pex payload is not a dictionary")
	}
	if s, ok := d.Str("added"); ok {
		if out.Added, err = parseCompactPeers(s); err != nil {
			return out, err
		}
	}
	if s, ok := d.Str("dropped"); ok {
		if out.Dropped, err = parseCompactPeers(s); err != nil {
			return out, err
		}
	}
	return out, nil
}

// ExtendedPayload frames an extension sub-message: one sub-ID byte
// followed by the bencoded body. Use with Message{Type: MsgExtended,
// Block: payload}.
func ExtendedPayload(subID byte, body []byte) []byte {
	out := make([]byte, 1+len(body))
	out[0] = subID
	copy(out[1:], body)
	return out
}

// SplitExtendedPayload separates the sub-ID byte from the body.
func SplitExtendedPayload(payload []byte) (subID byte, body []byte, err error) {
	if len(payload) < 1 {
		return 0, nil, errors.New("wire: empty extended payload")
	}
	return payload[0], payload[1:], nil
}
