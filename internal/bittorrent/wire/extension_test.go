package wire

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func TestHandshakeExtensionBit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, Handshake{Extensions: true}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if raw[1+len(ProtocolString)+5]&0x10 == 0 {
		t.Fatal("extension reserved bit not set")
	}
	h, err := ReadHandshake(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Extensions {
		t.Fatal("extension bit not read back")
	}
	buf.Reset()
	_ = WriteHandshake(&buf, Handshake{})
	h, err = ReadHandshake(&buf)
	if err != nil || h.Extensions {
		t.Fatalf("plain handshake misread: %+v, %v", h, err)
	}
}

func TestExtendedHandshakeRoundTrip(t *testing.T) {
	in := ExtendedHandshake{PexID: ExtPexID, Port: 51413}
	body, err := MarshalExtendedHandshake(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseExtendedHandshake(body)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
}

func TestExtendedHandshakeWithoutPex(t *testing.T) {
	body, err := MarshalExtendedHandshake(ExtendedHandshake{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseExtendedHandshake(body)
	if err != nil {
		t.Fatal(err)
	}
	if out.PexID != 0 || out.Port != 0 {
		t.Fatalf("empty handshake parsed as %+v", out)
	}
	// Handshake without an "m" dict at all.
	out, err = ParseExtendedHandshake([]byte("de"))
	if err != nil || out.PexID != 0 {
		t.Fatalf("bare dict: %+v, %v", out, err)
	}
}

func TestExtendedHandshakeErrors(t *testing.T) {
	if _, err := ParseExtendedHandshake([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseExtendedHandshake([]byte("le")); err == nil {
		t.Fatal("non-dict accepted")
	}
}

func TestPexRoundTrip(t *testing.T) {
	in := PexMessage{
		Added: []PexPeer{
			{IP: net.IPv4(127, 0, 0, 1), Port: 7001},
			{IP: net.IPv4(10, 1, 2, 3), Port: 65535},
		},
		Dropped: []PexPeer{{IP: net.IPv4(192, 168, 0, 9), Port: 80}},
	}
	body, err := MarshalPex(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParsePex(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Added) != 2 || len(out.Dropped) != 1 {
		t.Fatalf("parsed %+v", out)
	}
	for i := range in.Added {
		if !out.Added[i].IP.Equal(in.Added[i].IP) || out.Added[i].Port != in.Added[i].Port {
			t.Fatalf("added[%d] = %+v, want %+v", i, out.Added[i], in.Added[i])
		}
	}
	if out.Added[0].String() != "127.0.0.1:7001" {
		t.Fatalf("string form %q", out.Added[0])
	}
}

func TestPexRejectsIPv6(t *testing.T) {
	_, err := MarshalPex(PexMessage{Added: []PexPeer{{IP: net.ParseIP("::1"), Port: 1}}})
	if err == nil {
		t.Fatal("IPv6 accepted into compact format")
	}
}

func TestPexParseErrors(t *testing.T) {
	if _, err := ParsePex([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParsePex([]byte("le")); err == nil {
		t.Fatal("non-dict accepted")
	}
	// "added" not a multiple of 6.
	if _, err := ParsePex([]byte("d5:added5:abcdee")); err == nil {
		t.Fatal("ragged compact list accepted")
	}
}

func TestExtendedPayloadFraming(t *testing.T) {
	payload := ExtendedPayload(ExtPexID, []byte("body"))
	sub, body, err := SplitExtendedPayload(payload)
	if err != nil || sub != ExtPexID || string(body) != "body" {
		t.Fatalf("framing: %d %q %v", sub, body, err)
	}
	if _, _, err := SplitExtendedPayload(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestExtendedMessageThroughWire(t *testing.T) {
	body, _ := MarshalPex(PexMessage{Added: []PexPeer{{IP: net.IPv4(1, 2, 3, 4), Port: 5}}})
	msg := &Message{Type: MsgExtended, Block: ExtendedPayload(ExtPexID, body)}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgExtended || !reflect.DeepEqual(got.Block, msg.Block) {
		t.Fatalf("extended message round trip: %+v", got)
	}
	// Empty extended messages are rejected.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 1, 20})); err == nil {
		t.Fatal("extended message without sub-ID accepted")
	}
}

// Property: PEX compact lists round-trip for arbitrary IPv4/port sets.
func TestPexRoundTripProperty(t *testing.T) {
	f := func(raw []uint32, ports []uint16) bool {
		var in PexMessage
		for i := 0; i < len(raw) && i < len(ports) && i < 20; i++ {
			in.Added = append(in.Added, PexPeer{
				IP:   net.IPv4(byte(raw[i]>>24), byte(raw[i]>>16), byte(raw[i]>>8), byte(raw[i])),
				Port: ports[i],
			})
		}
		body, err := MarshalPex(in)
		if err != nil {
			return false
		}
		out, err := ParsePex(body)
		if err != nil || len(out.Added) != len(in.Added) {
			return false
		}
		for i := range in.Added {
			if !out.Added[i].IP.Equal(in.Added[i].IP) || out.Added[i].Port != in.Added[i].Port {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
