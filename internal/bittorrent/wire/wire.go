// Package wire implements the BitTorrent peer wire protocol: the
// handshake and the length-prefixed message stream (choke, unchoke,
// interested, not-interested, have, bitfield, request, piece, cancel),
// plus the bitfield representation peers exchange.
//
// The §2 measurement methodology records exactly these bitfields to
// distinguish seeds from leechers; internal/bittorrent/peer and the
// btmon monitoring agent both speak this protocol over TCP.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"swarmavail/internal/bittorrent/metainfo"
)

// ProtocolString is the BitTorrent handshake protocol identifier.
const ProtocolString = "BitTorrent protocol"

// MaxMessageSize bounds accepted message payloads (a piece block plus
// header slack); larger lengths indicate a corrupt or hostile stream.
const MaxMessageSize = 1<<18 + 16

// MessageType identifies a peer wire message.
type MessageType uint8

// Message type codes per the BitTorrent specification.
const (
	MsgChoke         MessageType = 0
	MsgUnchoke       MessageType = 1
	MsgInterested    MessageType = 2
	MsgNotInterested MessageType = 3
	MsgHave          MessageType = 4
	MsgBitfield      MessageType = 5
	MsgRequest       MessageType = 6
	MsgPiece         MessageType = 7
	MsgCancel        MessageType = 8
)

// String implements fmt.Stringer.
func (t MessageType) String() string {
	switch t {
	case MsgChoke:
		return "choke"
	case MsgUnchoke:
		return "unchoke"
	case MsgInterested:
		return "interested"
	case MsgNotInterested:
		return "not-interested"
	case MsgHave:
		return "have"
	case MsgBitfield:
		return "bitfield"
	case MsgRequest:
		return "request"
	case MsgPiece:
		return "piece"
	case MsgCancel:
		return "cancel"
	case MsgExtended:
		return "extended"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(t))
	}
}

// Handshake is the fixed-size connection preamble.
type Handshake struct {
	InfoHash metainfo.InfoHash
	PeerID   [20]byte
	// Extensions reports BEP-10 extension-protocol support (reserved
	// bit 20), which gates the extended handshake and ut_pex.
	Extensions bool
}

// handshakeLen = 1 + len(pstr) + 8 reserved + 20 + 20.
var handshakeLen = 1 + len(ProtocolString) + 8 + 20 + 20

// WriteHandshake sends a handshake on w.
func WriteHandshake(w io.Writer, h Handshake) error {
	buf := make([]byte, 0, handshakeLen)
	buf = append(buf, byte(len(ProtocolString)))
	buf = append(buf, ProtocolString...)
	reserved := make([]byte, 8)
	if h.Extensions {
		reserved[extensionReservedByte] |= extensionReservedBit
	}
	buf = append(buf, reserved...)
	buf = append(buf, h.InfoHash[:]...)
	buf = append(buf, h.PeerID[:]...)
	_, err := w.Write(buf)
	return err
}

// ReadHandshake reads and validates a handshake from r.
func ReadHandshake(r io.Reader) (Handshake, error) {
	var h Handshake
	buf := make([]byte, handshakeLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return h, fmt.Errorf("wire: reading handshake: %w", err)
	}
	if int(buf[0]) != len(ProtocolString) || string(buf[1:1+len(ProtocolString)]) != ProtocolString {
		return h, errors.New("wire: not a BitTorrent handshake")
	}
	reserved := buf[1+len(ProtocolString) : 1+len(ProtocolString)+8]
	h.Extensions = reserved[extensionReservedByte]&extensionReservedBit != 0
	off := 1 + len(ProtocolString) + 8
	copy(h.InfoHash[:], buf[off:off+20])
	copy(h.PeerID[:], buf[off+20:off+40])
	return h, nil
}

// Message is one decoded peer wire message. KeepAlive is represented by
// a nil *Message from ReadMessage.
type Message struct {
	Type MessageType
	// Index is the piece index for have/request/piece/cancel.
	Index uint32
	// Begin is the block offset for request/piece/cancel.
	Begin uint32
	// Length is the block length for request/cancel.
	Length uint32
	// Bitfield is the payload of a bitfield message.
	Bitfield Bitfield
	// Block is the payload of a piece message.
	Block []byte
}

// Marshal serialises the message with its length prefix.
func (m *Message) Marshal() []byte {
	var payload []byte
	switch m.Type {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested:
	case MsgHave:
		payload = make([]byte, 4)
		binary.BigEndian.PutUint32(payload, m.Index)
	case MsgBitfield:
		payload = m.Bitfield
	case MsgRequest, MsgCancel:
		payload = make([]byte, 12)
		binary.BigEndian.PutUint32(payload[0:4], m.Index)
		binary.BigEndian.PutUint32(payload[4:8], m.Begin)
		binary.BigEndian.PutUint32(payload[8:12], m.Length)
	case MsgPiece:
		payload = make([]byte, 8+len(m.Block))
		binary.BigEndian.PutUint32(payload[0:4], m.Index)
		binary.BigEndian.PutUint32(payload[4:8], m.Begin)
		copy(payload[8:], m.Block)
	case MsgExtended:
		payload = m.Block
	}
	out := make([]byte, 4+1+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(1+len(payload)))
	out[4] = byte(m.Type)
	copy(out[5:], payload)
	return out
}

// WriteMessage sends m on w. A nil message sends a keep-alive.
func WriteMessage(w io.Writer, m *Message) error {
	if m == nil {
		_, err := w.Write([]byte{0, 0, 0, 0})
		return err
	}
	_, err := w.Write(m.Marshal())
	return err
}

// ReadMessage reads the next message from r. It returns (nil, nil) for a
// keep-alive.
func ReadMessage(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(lenBuf[:])
	if length == 0 {
		return nil, nil // keep-alive
	}
	if length > MaxMessageSize {
		return nil, fmt.Errorf("wire: message length %d exceeds limit", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: reading message body: %w", err)
	}
	m := &Message{Type: MessageType(body[0])}
	payload := body[1:]
	switch m.Type {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested:
		if len(payload) != 0 {
			return nil, fmt.Errorf("wire: %v with payload", m.Type)
		}
	case MsgHave:
		if len(payload) != 4 {
			return nil, fmt.Errorf("wire: have payload %d bytes", len(payload))
		}
		m.Index = binary.BigEndian.Uint32(payload)
	case MsgBitfield:
		m.Bitfield = Bitfield(payload)
	case MsgRequest, MsgCancel:
		if len(payload) != 12 {
			return nil, fmt.Errorf("wire: %v payload %d bytes", m.Type, len(payload))
		}
		m.Index = binary.BigEndian.Uint32(payload[0:4])
		m.Begin = binary.BigEndian.Uint32(payload[4:8])
		m.Length = binary.BigEndian.Uint32(payload[8:12])
	case MsgPiece:
		if len(payload) < 8 {
			return nil, fmt.Errorf("wire: piece payload %d bytes", len(payload))
		}
		m.Index = binary.BigEndian.Uint32(payload[0:4])
		m.Begin = binary.BigEndian.Uint32(payload[4:8])
		m.Block = payload[8:]
	case MsgExtended:
		if len(payload) < 1 {
			return nil, fmt.Errorf("wire: extended message without sub-ID")
		}
		m.Block = payload
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", body[0])
	}
	return m, nil
}

// Bitfield is the piece-possession bitmap exchanged at connection start
// and updated via have messages — the exact data the paper's monitoring
// agents record to classify seeds.
type Bitfield []byte

// NewBitfield returns an all-zero bitfield for n pieces.
func NewBitfield(n int) Bitfield {
	return make(Bitfield, (n+7)/8)
}

// Has reports whether piece i is set.
func (b Bitfield) Has(i int) bool {
	if i < 0 || i/8 >= len(b) {
		return false
	}
	return b[i/8]&(0x80>>(i%8)) != 0
}

// Set marks piece i as possessed.
func (b Bitfield) Set(i int) {
	if i < 0 || i/8 >= len(b) {
		return
	}
	b[i/8] |= 0x80 >> (i % 8)
}

// Count returns the number of pieces set (considering only the first n
// pieces if n ≥ 0; pass -1 to count all bits).
func (b Bitfield) Count(n int) int {
	total := 0
	limit := len(b) * 8
	if n >= 0 && n < limit {
		limit = n
	}
	for i := 0; i < limit; i++ {
		if b.Has(i) {
			total++
		}
	}
	return total
}

// Complete reports whether all n pieces are set — i.e. the remote is a
// seed.
func (b Bitfield) Complete(n int) bool { return b.Count(n) == n }

// Clone returns a copy.
func (b Bitfield) Clone() Bitfield {
	c := make(Bitfield, len(b))
	copy(c, b)
	return c
}
