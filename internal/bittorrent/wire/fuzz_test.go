package wire

import (
	"bytes"
	"testing"
)

// FuzzReadMessage feeds arbitrary frames to the message reader: no
// panics, and every accepted message must survive a marshal/parse round
// trip.
func FuzzReadMessage(f *testing.F) {
	for _, m := range []*Message{
		{Type: MsgChoke},
		{Type: MsgHave, Index: 7},
		{Type: MsgBitfield, Bitfield: Bitfield{0xFF, 0x01}},
		{Type: MsgRequest, Index: 1, Begin: 2, Length: 3},
		{Type: MsgPiece, Index: 1, Begin: 0, Block: []byte("data")},
		{Type: MsgExtended, Block: []byte{0, 'd', 'e'}},
	} {
		f.Add(m.Marshal())
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil || m == nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("accepted message failed to marshal: %v", err)
		}
		m2, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("marshalled message failed to parse: %v", err)
		}
		if m2 == nil || m2.Type != m.Type || m2.Index != m.Index ||
			m2.Begin != m.Begin || m2.Length != m.Length ||
			!bytes.Equal(m2.Block, m.Block) || !bytes.Equal(m2.Bitfield, m.Bitfield) {
			t.Fatalf("round trip mismatch: %+v vs %+v", m2, m)
		}
	})
}

// FuzzParseExtended covers the BEP-10/11 payload codecs.
func FuzzParseExtended(f *testing.F) {
	hs, _ := MarshalExtendedHandshake(ExtendedHandshake{PexID: 1, Port: 6881})
	f.Add(hs)
	px, _ := MarshalPex(PexMessage{})
	f.Add(px)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseExtendedHandshake(data)
		_, _ = ParsePex(data)
	})
}
