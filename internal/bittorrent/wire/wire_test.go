package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestHandshakeRoundTrip(t *testing.T) {
	var h Handshake
	copy(h.InfoHash[:], bytes.Repeat([]byte{0xAB}, 20))
	copy(h.PeerID[:], []byte("-SA0001-123456789012"))
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, h); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 68 {
		t.Fatalf("handshake is %d bytes, want 68", buf.Len())
	}
	got, err := ReadHandshake(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, h)
	}
}

func TestHandshakeRejectsWrongProtocol(t *testing.T) {
	raw := make([]byte, 68)
	raw[0] = 19
	copy(raw[1:], "NotTorrent protocol")
	if _, err := ReadHandshake(bytes.NewReader(raw)); err == nil {
		t.Fatal("wrong protocol accepted")
	}
	if _, err := ReadHandshake(strings.NewReader("short")); err == nil {
		t.Fatal("truncated handshake accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []*Message{
		{Type: MsgChoke},
		{Type: MsgUnchoke},
		{Type: MsgInterested},
		{Type: MsgNotInterested},
		{Type: MsgHave, Index: 42},
		{Type: MsgBitfield, Bitfield: Bitfield{0xF0, 0x01}},
		{Type: MsgRequest, Index: 3, Begin: 16384, Length: 16384},
		{Type: MsgCancel, Index: 3, Begin: 16384, Length: 16384},
		{Type: MsgPiece, Index: 7, Begin: 0, Block: []byte("hello world")},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("%v: %v", m.Type, err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("%v: %v", m.Type, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%v round trip: %+v vs %+v", m.Type, got, m)
		}
	}
}

func TestKeepAlive(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 4 {
		t.Fatalf("keep-alive is %d bytes", buf.Len())
	}
	m, err := ReadMessage(&buf)
	if err != nil || m != nil {
		t.Fatalf("keep-alive read: %v %v", m, err)
	}
}

func TestReadMessageErrors(t *testing.T) {
	cases := [][]byte{
		{0, 0, 0, 2, byte(MsgChoke), 99},         // choke with payload
		{0, 0, 0, 3, byte(MsgHave), 0, 0},        // short have
		{0, 0, 0, 2, byte(MsgRequest), 0},        // short request
		{0, 0, 0, 5, byte(MsgPiece), 0, 0, 0, 0}, // short piece
		{0, 0, 0, 1, 99},                         // unknown type
		{0, 0, 0, 9, byte(MsgHave)},              // truncated body
		{0xFF, 0xFF, 0xFF, 0xFF},                 // absurd length
	}
	for i, raw := range cases {
		if _, err := ReadMessage(bytes.NewReader(raw)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := ReadMessage(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream error = %v, want EOF", err)
	}
}

func TestMessageStream(t *testing.T) {
	// Several messages back-to-back on one stream.
	var buf bytes.Buffer
	seq := []*Message{
		{Type: MsgBitfield, Bitfield: NewBitfield(10)},
		nil, // keep-alive
		{Type: MsgInterested},
		{Type: MsgUnchoke},
		{Type: MsgRequest, Index: 0, Begin: 0, Length: 256},
		{Type: MsgPiece, Index: 0, Begin: 0, Block: bytes.Repeat([]byte{7}, 256)},
		{Type: MsgHave, Index: 0},
	}
	for _, m := range seq {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range seq {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d mismatch: %+v vs %+v", i, got, want)
		}
	}
}

func TestBitfield(t *testing.T) {
	b := NewBitfield(10)
	if len(b) != 2 {
		t.Fatalf("10 pieces need 2 bytes, got %d", len(b))
	}
	for i := 0; i < 10; i++ {
		if b.Has(i) {
			t.Fatalf("fresh bitfield has piece %d", i)
		}
	}
	b.Set(0)
	b.Set(7)
	b.Set(9)
	if !b.Has(0) || !b.Has(7) || !b.Has(9) || b.Has(1) || b.Has(8) {
		t.Fatalf("bit layout wrong: %08b", []byte(b))
	}
	// MSB-first layout per the spec: piece 0 is the high bit of byte 0.
	if b[0] != 0b10000001 {
		t.Fatalf("byte 0 = %08b, want 10000001", b[0])
	}
	if got := b.Count(10); got != 3 {
		t.Fatalf("count = %d", got)
	}
	if got := b.Count(-1); got != 3 {
		t.Fatalf("count(-1) = %d", got)
	}
	if b.Complete(10) {
		t.Fatal("incomplete bitfield reported complete")
	}
	for i := 0; i < 10; i++ {
		b.Set(i)
	}
	if !b.Complete(10) {
		t.Fatal("complete bitfield not recognised")
	}
	// Out-of-range operations are safe no-ops.
	b.Set(-1)
	b.Set(99)
	if b.Has(-1) || b.Has(99) {
		t.Fatal("out-of-range Has must be false")
	}
	c := b.Clone()
	c.Set(0)
	if &c[0] == &b[0] {
		t.Fatal("clone shares storage")
	}
}

func TestSeedDetectionViaBitfield(t *testing.T) {
	// The §2 monitoring logic: a peer is a seed iff its bitfield is
	// complete for the torrent's piece count.
	n := 37
	seed := NewBitfield(n)
	for i := 0; i < n; i++ {
		seed.Set(i)
	}
	leecher := seed.Clone()
	// Clear one piece: leecher.
	leecher[2] &^= 0x80 >> 2 // piece 18
	if !seed.Complete(n) {
		t.Fatal("seed not detected")
	}
	if leecher.Complete(n) {
		t.Fatal("leecher misdetected as seed")
	}
}

func TestMessageTypeString(t *testing.T) {
	for mt, want := range map[MessageType]string{
		MsgChoke: "choke", MsgUnchoke: "unchoke", MsgInterested: "interested",
		MsgNotInterested: "not-interested", MsgHave: "have", MsgBitfield: "bitfield",
		MsgRequest: "request", MsgPiece: "piece", MsgCancel: "cancel",
		MessageType(77): "unknown(77)",
	} {
		if got := mt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", mt, got, want)
		}
	}
}

// Property: any marshalled message round-trips.
func TestMessageRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var m *Message
		switch r.Intn(6) {
		case 0:
			m = &Message{Type: MessageType(r.Intn(4))}
		case 1:
			m = &Message{Type: MsgHave, Index: r.Uint32()}
		case 2:
			bf := make(Bitfield, r.Intn(64))
			r.Read(bf)
			m = &Message{Type: MsgBitfield, Bitfield: bf}
		case 3:
			m = &Message{Type: MsgRequest, Index: r.Uint32(), Begin: r.Uint32(), Length: r.Uint32()}
		case 4:
			m = &Message{Type: MsgCancel, Index: r.Uint32(), Begin: r.Uint32(), Length: r.Uint32()}
		default:
			blk := make([]byte, r.Intn(1024))
			r.Read(blk)
			m = &Message{Type: MsgPiece, Index: r.Uint32(), Begin: r.Uint32(), Block: blk}
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		// Normalise nil vs empty slices before comparing.
		if len(m.Bitfield) == 0 {
			m.Bitfield = nil
		}
		if len(got.Bitfield) == 0 {
			got.Bitfield = nil
		}
		if len(m.Block) == 0 {
			m.Block = nil
		}
		if len(got.Block) == 0 {
			got.Block = nil
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reader never panics on arbitrary bytes.
func TestReadMessageNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) bool {
		r := bytes.NewReader(data)
		for {
			_, err := ReadMessage(r)
			if err != nil {
				return true
			}
			if r.Len() == 0 {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
