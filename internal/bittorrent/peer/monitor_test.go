package peer

import (
	mrand "math/rand"
	"net"
	"strconv"
	"testing"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/tracker"
	"swarmavail/internal/bittorrent/wire"
)

// fakeQuietLeecher is a raw TCP peer that completes the BitTorrent
// handshake and then sends nothing — exactly what a freshly-joined
// leecher with zero pieces looks like on the wire (no bitfield is
// sent when the bitfield would be all-zero).
func fakeQuietLeecher(t *testing.T, ih metainfo.InfoHash) (addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := wire.ReadHandshake(c); err != nil {
					return
				}
				var id [20]byte
				copy(id[:], "-SAQUIET-fakepeer000")
				if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: ih, PeerID: id}); err != nil {
					return
				}
				// Say nothing: hold the connection open until the probe
				// gives up waiting.
				buf := make([]byte, 256)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

// fakeHaveOnlyPeer handshakes and then advertises two pieces via bare
// have messages, never sending a bitfield — the other legitimate
// no-bitfield pattern.
func fakeHaveOnlyPeer(t *testing.T, ih metainfo.InfoHash) (addr string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, err := wire.ReadHandshake(c); err != nil {
					return
				}
				var id [20]byte
				copy(id[:], "-SAHAVES-fakepeer000")
				if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: ih, PeerID: id}); err != nil {
					return
				}
				_ = wire.WriteMessage(c, &wire.Message{Type: wire.MsgHave, Index: 0})
				_ = wire.WriteMessage(c, &wire.Message{Type: wire.MsgHave, Index: 2})
				buf := make([]byte, 256)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

// registerPeer announces addr to the tracker so a probe will find it.
func registerPeer(t *testing.T, announce string, ih metainfo.InfoHash, addr string, idByte byte) {
	t.Helper()
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		t.Fatal(err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		t.Fatal(err)
	}
	var id [20]byte
	for i := range id {
		id[i] = idByte
	}
	if _, err := tracker.Announce(nil, tracker.AnnounceRequest{
		TrackerURL: announce, InfoHash: ih, PeerID: id,
		Port: port, Left: 1 << 20, Event: "started", IP: host,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestProbeCountsQuietPeerAsLeecher is the zero-piece-leecher
// regression: a handshaking peer that never sends a bitfield must be a
// leecher observation, not an unreachable drop — dropping it inflated
// measured seed fractions (the §2 methodology bias this repo exists to
// quantify).
func TestProbeCountsQuietPeerAsLeecher(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 16 * 1024}}, 4096, 7)
	ih, err := tor.Info.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// One real seed and one quiet zero-piece leecher.
	startNode(t, Config{Torrent: tor, Content: content})
	quiet := fakeQuietLeecher(t, ih)
	registerPeer(t, announce, ih, quiet, 'q')

	results, err := Probe(tor, ProbeConfig{
		DialTimeout:  2 * time.Second,
		BitfieldWait: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawQuiet, sawSeed bool
	seeds, peers := 0, 0
	for _, r := range results {
		peers++
		if r.Seed {
			seeds++
			sawSeed = true
		}
		if r.Addr == quiet {
			sawQuiet = true
			if r.Seed || r.Pieces != 0 {
				t.Fatalf("quiet peer classified %+v, want zero-piece leecher", r)
			}
		}
	}
	if !sawSeed {
		t.Fatalf("probe missed the seed entirely (results %+v)", results)
	}
	if !sawQuiet {
		t.Fatalf("quiet peer dropped from the probe (results %+v) — the seed/leecher ratio is biased", results)
	}
	// The corrected seed fraction: 1 seed out of ≥2 observed peers.
	// Under the old drop-quiet-peers behavior the same swarm measured
	// 1/1 = 100% seeds.
	if frac := float64(seeds) / float64(peers); frac > 0.5+1e-9 {
		t.Fatalf("seed fraction %.2f still biased high (seeds=%d peers=%d)", frac, seeds, peers)
	}
}

// TestProbeCountsHaveOnlyPeer covers the have-only variant: piece
// announcements without a bitfield must accumulate into the observed
// piece count.
func TestProbeCountsHaveOnlyPeer(t *testing.T) {
	announce := startTracker(t)
	tor, _ := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 16 * 1024}}, 4096, 8)
	ih, err := tor.Info.Hash()
	if err != nil {
		t.Fatal(err)
	}
	addr := fakeHaveOnlyPeer(t, ih)
	registerPeer(t, announce, ih, addr, 'h')

	results, err := Probe(tor, ProbeConfig{
		DialTimeout:  2 * time.Second,
		BitfieldWait: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Addr != addr {
			continue
		}
		if r.Seed || r.Pieces != 2 {
			t.Fatalf("have-only peer classified %+v, want leecher with 2 pieces", r)
		}
		return
	}
	t.Fatalf("have-only peer missing from results %+v", results)
}

// TestProbePexDiscovery exercises PEX-assisted discovery: peer B
// announces to a different tracker, so the probed tracker cannot name
// it — only BEP-11 gossip from peer A can.
func TestProbePexDiscovery(t *testing.T) {
	announceA := startTracker(t)
	announceB := startTracker(t)
	torA, content := makeTorrent(t, announceA,
		[]metainfo.File{{Path: "f.bin", Length: 16 * 1024}}, 4096, 9)
	torB := &metainfo.Torrent{Announce: announceB, Info: torA.Info}

	a := startNode(t, Config{Torrent: torA, Content: content})
	b := startNode(t, Config{Torrent: torB, Content: content,
		Bootstrap: []string{a.Addr()}})

	// Wait for A to learn B's listen address via the extended handshake.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.knownAddrs()) > 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	results, err := Probe(torA, ProbeConfig{
		DialTimeout:  2 * time.Second,
		BitfieldWait: 500 * time.Millisecond,
		PEX:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range results {
		if r.Addr == b.Addr() {
			found = true
			if !r.Seed {
				t.Fatalf("PEX-discovered seed classified %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("PEX discovery missed peer B (%s); results %+v (A knows %v)",
			b.Addr(), results, a.knownAddrs())
	}

	// Without PEX the same probe must NOT see B — proving the gossip
	// path (not the tracker) was the discovery channel.
	plain, err := Probe(torA, ProbeConfig{DialTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plain {
		if r.Addr == b.Addr() {
			t.Fatalf("peer B visible without PEX — test topology is broken")
		}
	}
}

// TestBackoffAfterTable is the regression for the rng.Int63n panic on a
// non-positive base, plus overflow behavior at extreme failure counts.
func TestBackoffAfterTable(t *testing.T) {
	rng := mrand.New(mrand.NewSource(1))
	cases := []struct {
		name     string
		failures int
		base     time.Duration
		cap      time.Duration
		min, max time.Duration // inclusive bounds on the result
	}{
		{"base zero", 3, 0, time.Second, minBackoff / 2, time.Second},
		{"base negative", 1, -time.Second, time.Second, minBackoff / 2, time.Second},
		{"failures zero", 0, time.Second, time.Minute, time.Second / 2, time.Second},
		{"failures negative", -5, time.Second, time.Minute, time.Second / 2, time.Second},
		{"normal growth", 3, time.Second, time.Minute, 2 * time.Second, 4 * time.Second},
		{"capped", 100, time.Second, 8 * time.Second, 4 * time.Second, 8 * time.Second},
		{"overflow failures", 200, time.Hour, 24 * time.Hour, 12 * time.Hour, 24 * time.Hour},
		{"cap below base", 2, time.Second, time.Millisecond, time.Second / 2, time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 50; i++ {
				got := backoffAfter(tc.failures, tc.base, tc.cap, rng)
				if got < tc.min || got > tc.max {
					t.Fatalf("backoffAfter(%d, %v, %v) = %v, want in [%v, %v]",
						tc.failures, tc.base, tc.cap, got, tc.min, tc.max)
				}
			}
		})
	}
}
