// Package peer implements a runnable BitTorrent node: a seeder or
// leecher that announces to an HTTP tracker, accepts and dials peer
// connections, exchanges bitfields and pieces over TCP, verifies piece
// hashes, and serves uploads after completing.
//
// Together with internal/bittorrent/tracker it forms a complete private
// swarm deployable on localhost — the repository's stand-in for the
// paper's PlanetLab testbed (§4.1). The protocol implementation is the
// mainline wire protocol with whole-piece requests, BEP-10/11 peer
// exchange, and either a trivially generous choking policy (the default,
// adequate for cooperative controlled experiments) or the real
// tit-for-tat choker with an optimistic slot (Config.TitForTat).
package peer

import (
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/tracker"
	"swarmavail/internal/bittorrent/wire"
	"swarmavail/internal/obs"
)

// DefaultDialTimeout bounds outgoing peer dials when Config.DialTimeout
// (or ProbeConfig.DialTimeout) is zero.
const DefaultDialTimeout = 3 * time.Second

// DialFunc dials one peer; it matches net.DialTimeout and
// faultnet.Network.Dial, so a fault-injection layer slots straight in.
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// Config describes a node.
type Config struct {
	// Torrent is the metainfo the node participates in.
	Torrent *metainfo.Torrent
	// Content holds the full content for a seeder; leave nil to start as
	// a leecher.
	Content []byte
	// ListenAddr is the TCP listen address ("127.0.0.1:0" by default).
	ListenAddr string
	// AnnounceInterval overrides the tracker-provided interval (tests).
	AnnounceInterval time.Duration
	// MaxPeers caps concurrent connections (default 30).
	MaxPeers int
	// Pipeline is the number of outstanding piece requests per
	// connection (default 2).
	Pipeline int
	// DisableTrackerPeers stops the node from dialing tracker-reported
	// peers; it still announces (so others can find it) but discovers
	// neighbours only via Bootstrap and PEX. Used to demonstrate and
	// test PEX-driven discovery (§2.2's methodology).
	DisableTrackerPeers bool
	// Bootstrap is a list of peer addresses dialed at Start.
	Bootstrap []string
	// DisablePex turns the BEP-11 peer exchange off.
	DisablePex bool
	// TitForTat enables the mainline choking algorithm: only the
	// interested peers that reciprocated the most data in the last
	// window are unchoked, plus one optimistic slot. When false (the
	// default, used by the controlled experiments) everyone is unchoked
	// on request.
	TitForTat bool
	// ChokeInterval is the choker re-evaluation period (10 s if 0).
	ChokeInterval time.Duration
	// UnchokeSlots is the number of reciprocation-ranked unchoke slots
	// (3 if 0); the optimistic slot is additional.
	UnchokeSlots int
	// DialTimeout bounds each outgoing peer dial (DefaultDialTimeout
	// if 0). Flaky-network deployments want this well below the announce
	// interval so one dead peer cannot stall a discovery round.
	DialTimeout time.Duration
	// Dial overrides the peer dialer (nil = net.DialTimeout). A
	// faultnet.Network's Dial goes here to run the node under injected
	// faults.
	Dial DialFunc
	// Listen overrides the listener constructor (nil = net.Listen); a
	// fault layer can wrap accepted connections here.
	Listen func(network, addr string) (net.Listener, error)
	// HTTPClient performs tracker announces (nil = http.DefaultClient);
	// inject a faulty http.RoundTripper to exercise announce retry.
	HTTPClient *http.Client
	// UDP performs announces when the torrent's tracker URL is udp://
	// (nil = tracker.DefaultUDP). A client with a faultnet Dial hook
	// goes here to announce through injected datagram faults.
	UDP *tracker.UDPClient
	// Logf, when set, receives classified lifecycle events: announce
	// failures (temporary vs. fatal) and dial backoff decisions. Leave
	// nil for silence.
	Logf func(format string, args ...any)
	// Metrics is an optional observability registry; when set the node
	// emits peer_* series (announce results, dial failures, live
	// connections, piece throughput). Nodes sharing a registry share
	// the series, which then read as fleet totals.
	Metrics *obs.Registry
}

// Node is a running peer.
type Node struct {
	cfg      Config
	info     *metainfo.Info
	infoHash metainfo.InfoHash
	peerID   [20]byte

	listener net.Listener

	mu        sync.Mutex
	content   []byte
	have      wire.Bitfield
	haveCount int
	pending   map[int]*conn // piece → connection it is requested from
	conns     map[*conn]struct{}
	dialed    map[string]bool
	known     map[string]bool // peer listen addresses learned (tracker, PEX, handshakes)
	stopped   bool

	// Dial-failure backoff (guarded by mu): consecutive failures per
	// address and the earliest next attempt, capped exponential with
	// jitter so a dead peer is not hammered every announce round.
	dialFails  map[string]int
	nextDial   map[string]time.Time
	backoffRng *mrand.Rand

	doneOnce sync.Once
	doneCh   chan struct{}
	stopCh   chan struct{}
	wg       sync.WaitGroup

	// Cumulative transfer totals reported to the tracker (BEP 3
	// "uploaded"/"downloaded", payload bytes).
	uploaded   atomic.Int64
	downloaded atomic.Int64

	// Tit-for-tat state.
	connSeq       int
	optimistic    *conn
	optimisticRng *mrand.Rand

	m nodeMetrics
}

// conn is one peer connection.
type conn struct {
	node     *Node
	c        net.Conn
	writeMu  sync.Mutex
	mu       sync.Mutex
	remoteBF wire.Bitfield
	choked   bool // we are choked by the remote
	inflight map[int]bool
	// Extension state.
	remoteExts bool  // remote set the BEP-10 reserved bit
	pexID      int64 // remote's ut_pex sub-ID (0 = none yet)
	// Choking state (tit-for-tat).
	seq               int   // creation order, for deterministic tie-breaks
	remoteInterested  bool  // the remote wants our pieces
	weAreChoking      bool  // we are withholding service
	bytesFromPeer     int64 // verified piece bytes received from the remote
	bytesToPeer       int64 // piece bytes served to the remote
	prevBytesFromPeer int64 // window bookkeeping for the choker
	prevBytesToPeer   int64
}

// New creates a node. If cfg.Content is non-nil it must match the
// torrent's total length and piece hashes.
func New(cfg Config) (*Node, error) {
	if cfg.Torrent == nil {
		return nil, errors.New("peer: torrent required")
	}
	info := &cfg.Torrent.Info
	if err := info.Validate(); err != nil {
		return nil, err
	}
	ih, err := info.Hash()
	if err != nil {
		return nil, err
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.MaxPeers == 0 {
		cfg.MaxPeers = 30
	}
	if cfg.Pipeline == 0 {
		cfg.Pipeline = 2
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	n := &Node{
		cfg:       cfg,
		info:      info,
		infoHash:  ih,
		have:      wire.NewBitfield(info.NumPieces()),
		pending:   make(map[int]*conn),
		conns:     make(map[*conn]struct{}),
		dialed:    make(map[string]bool),
		known:     make(map[string]bool),
		dialFails: make(map[string]int),
		nextDial:  make(map[string]time.Time),
		doneCh:    make(chan struct{}),
		stopCh:    make(chan struct{}),
		m:         newNodeMetrics(cfg.Metrics),
	}
	copy(n.peerID[:], "-SA0001-")
	if _, err := rand.Read(n.peerID[8:]); err != nil {
		return nil, err
	}
	var rngSeed int64
	for _, b := range n.peerID[8:16] {
		rngSeed = rngSeed<<8 | int64(b)
	}
	n.optimisticRng = mrand.New(mrand.NewSource(rngSeed))
	n.backoffRng = mrand.New(mrand.NewSource(rngSeed ^ 0x5eed))
	if cfg.Content != nil {
		if int64(len(cfg.Content)) != info.TotalLength() {
			return nil, fmt.Errorf("peer: content is %d bytes, torrent says %d",
				len(cfg.Content), info.TotalLength())
		}
		for i := 0; i < info.NumPieces(); i++ {
			lo, hi := n.pieceRange(i)
			if !info.VerifyPiece(i, cfg.Content[lo:hi]) {
				return nil, fmt.Errorf("peer: content fails hash check at piece %d", i)
			}
		}
		n.content = append([]byte(nil), cfg.Content...)
		for i := 0; i < info.NumPieces(); i++ {
			n.have.Set(i)
		}
		n.haveCount = info.NumPieces()
		n.signalDone()
	} else {
		n.content = make([]byte, info.TotalLength())
	}
	return n, nil
}

func (n *Node) pieceRange(i int) (lo, hi int64) {
	lo = int64(i) * n.info.PieceLength
	hi = lo + n.info.PieceSize(i)
	return lo, hi
}

// PeerID returns this node's peer id.
func (n *Node) PeerID() [20]byte { return n.peerID }

// InfoHash returns the torrent's infohash.
func (n *Node) InfoHash() metainfo.InfoHash { return n.infoHash }

// Start begins listening, announcing, and dialing.
func (n *Node) Start() error {
	listen := n.cfg.Listen
	if listen == nil {
		listen = net.Listen
	}
	ln, err := listen("tcp", n.cfg.ListenAddr)
	if err != nil {
		return err
	}
	n.listener = ln
	n.wg.Add(2)
	go n.acceptLoop()
	go n.announceLoop()
	if n.cfg.TitForTat {
		n.wg.Add(1)
		go n.chokerLoop()
	}
	n.dialAddrs(n.cfg.Bootstrap)
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (n *Node) Addr() string {
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

// Port returns the bound TCP port.
func (n *Node) Port() int {
	if n.listener == nil {
		return 0
	}
	return n.listener.Addr().(*net.TCPAddr).Port
}

// Done is closed once the download completes (immediately for seeders).
func (n *Node) Done() <-chan struct{} { return n.doneCh }

// Progress returns pieces held and the total piece count.
func (n *Node) Progress() (have, total int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.haveCount, n.info.NumPieces()
}

// Complete reports whether the node holds the full content.
func (n *Node) Complete() bool {
	have, total := n.Progress()
	return have == total
}

// Bytes returns a copy of the assembled content; it is only meaningful
// once Complete.
func (n *Node) Bytes() []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]byte(nil), n.content...)
}

// BytesLeft returns the number of content bytes still missing.
func (n *Node) BytesLeft() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bytesLeftLocked()
}

func (n *Node) bytesLeftLocked() int64 {
	var left int64
	for i := 0; i < n.info.NumPieces(); i++ {
		if !n.have.Has(i) {
			left += n.info.PieceSize(i)
		}
	}
	return left
}

// Stop announces departure and tears down all connections. It is safe to
// call more than once.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	conns := make([]*conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()

	close(n.stopCh)
	if n.listener != nil {
		_ = n.listener.Close()
	}
	for _, c := range conns {
		_ = c.c.Close()
	}
	// Best-effort goodbye to the tracker.
	_, _ = n.announce("stopped")
	n.wg.Wait()
}

// logf reports a lifecycle event through Config.Logf, if set.
func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// dial performs one outgoing connection through the configured dialer.
func (n *Node) dial(addr string) (net.Conn, error) {
	dial := n.cfg.Dial
	if dial == nil {
		dial = net.DialTimeout
	}
	return dial("tcp", addr, n.cfg.DialTimeout)
}

// minBackoff is the floor backoffAfter clamps a non-positive (or
// sub-floor) base to; rng.Int63n needs a positive argument, so a
// caller-supplied base of 0 would otherwise panic.
const minBackoff = time.Millisecond

// backoffAfter returns the capped-exponential-with-jitter delay to wait
// after the given consecutive-failure count (1 = first failure).
func backoffAfter(failures int, base, cap time.Duration, rng *mrand.Rand) time.Duration {
	if failures < 1 {
		failures = 1
	}
	if base < minBackoff {
		base = minBackoff
	}
	if cap < base {
		cap = base
	}
	d := base
	for i := 1; i < failures && d < cap; i++ {
		d *= 2
		if d <= 0 { // doubling overflowed; the cap is the answer
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	// Uniform jitter in [d/2, d): desynchronises retry herds.
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

func (n *Node) signalDone() {
	n.doneOnce.Do(func() { close(n.doneCh) })
}

// ---------------------------------------------------------------------------
// Tracker interaction.

func (n *Node) announceReq(event string) tracker.AnnounceRequest {
	return tracker.AnnounceRequest{
		TrackerURL: n.cfg.Torrent.Announce,
		InfoHash:   n.infoHash,
		PeerID:     n.peerID,
		Port:       n.Port(),
		Uploaded:   n.uploaded.Load(),
		Downloaded: n.downloaded.Load(),
		Left:       n.BytesLeft(),
		Event:      event,
		NumWant:    n.cfg.MaxPeers,
		IP:         "127.0.0.1",
	}
}

// announce performs one tracker exchange over whichever scheme the
// torrent's announce URL names (http(s):// or udp://).
func (n *Node) announce(event string) (*tracker.AnnounceResponse, error) {
	return tracker.AnnounceWith(n.cfg.HTTPClient, n.cfg.UDP, n.announceReq(event))
}

// announceLoop announces on the tracker interval, retrying failures
// with capped exponential backoff. Temporary failures (tracker down,
// 5xx, garbled response) retry faster than the full interval; fatal
// rejections ("torrent unregistered") keep the normal cadence — a hot
// retry cannot fix them, but a tracker-side fix should be picked up.
func (n *Node) announceLoop() {
	defer n.wg.Done()
	interval := n.cfg.AnnounceInterval
	event := "started"
	failures := 0
	for {
		resp, err := n.announce(event)
		if err == nil {
			n.m.announceOK.Inc()
			if failures > 0 {
				n.logf("announce recovered after %d failed attempts", failures)
			}
			failures = 0
			event = "" // the event landed; don't repeat it
			if interval == 0 {
				interval = resp.Interval
			}
			if !n.cfg.DisableTrackerPeers {
				addrs := make([]string, 0, len(resp.Peers))
				for _, p := range resp.Peers {
					addrs = append(addrs, p.String())
				}
				n.rememberAddrs(addrs)
				n.dialAddrs(addrs)
			}
		} else if tracker.IsTemporary(err) {
			failures++
			n.m.announceTemp.Inc()
			n.logf("announce failed (temporary, attempt %d): %v", failures, err)
		} else {
			// The tracker answered and said no; retrying sooner won't help.
			failures = 0
			n.m.announceFatal.Inc()
			n.logf("announce rejected (fatal): %v", err)
		}
		n.broadcastPex()
		if interval <= 0 {
			interval = tracker.DefaultInterval
		}
		wait := interval
		if failures > 0 {
			// Retry sooner than the full interval, backing off toward it.
			base := interval / 8
			if base < 50*time.Millisecond {
				base = 50 * time.Millisecond
			}
			n.mu.Lock()
			wait = backoffAfter(failures, base, interval, n.backoffRng)
			n.mu.Unlock()
		}
		select {
		case <-n.stopCh:
			return
		case <-time.After(wait):
		}
	}
}

// rememberAddrs records peer listen addresses for PEX gossip.
func (n *Node) rememberAddrs(addrs []string) {
	self := n.Addr()
	n.mu.Lock()
	for _, a := range addrs {
		if a != self {
			n.known[a] = true
		}
	}
	n.mu.Unlock()
}

// knownAddrs returns the PEX gossip set.
func (n *Node) knownAddrs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.known))
	for a := range n.known {
		out = append(out, a)
	}
	return out
}

// dialAddrs connects to every address not already connected or inside
// its failure-backoff window. Dial failures back off exponentially (with
// jitter) per address; a connection that later drops clears its dialed
// mark so churned peers are re-dialed on the next discovery round.
func (n *Node) dialAddrs(addrs []string) {
	self := n.Addr()
	now := time.Now()
	for _, addr := range addrs {
		if addr == self {
			continue
		}
		n.mu.Lock()
		skip := n.dialed[addr] || n.stopped || len(n.conns) >= n.cfg.MaxPeers ||
			now.Before(n.nextDial[addr])
		if !skip {
			n.dialed[addr] = true
		}
		n.mu.Unlock()
		if skip {
			continue
		}
		n.wg.Add(1)
		go func(addr string) {
			defer n.wg.Done()
			n.m.dials.Inc()
			c, err := n.dial(addr)
			if err != nil {
				n.m.dialFailures.Inc()
				n.mu.Lock()
				delete(n.dialed, addr) // allow a retry once the backoff passes
				n.dialFails[addr]++
				wait := backoffAfter(n.dialFails[addr],
					250*time.Millisecond, 15*time.Second, n.backoffRng)
				n.nextDial[addr] = time.Now().Add(wait)
				fails := n.dialFails[addr]
				n.mu.Unlock()
				n.logf("dial %s failed (%d consecutive, next try in %v): %v",
					addr, fails, wait.Round(time.Millisecond), err)
				return
			}
			n.mu.Lock()
			delete(n.dialFails, addr)
			delete(n.nextDial, addr)
			n.mu.Unlock()
			n.runConn(c, true)
			// The connection ended — churn, reset, or shutdown. Unmark the
			// address so a future announce/PEX round may reconnect.
			n.mu.Lock()
			delete(n.dialed, addr)
			n.mu.Unlock()
		}(addr)
	}
}

// broadcastPex gossips the known-address set to every PEX-capable
// connection (BEP-11; idempotent for receivers, which dedupe by
// address).
func (n *Node) broadcastPex() {
	if n.cfg.DisablePex {
		return
	}
	addrs := n.knownAddrs()
	if len(addrs) == 0 {
		return
	}
	var added []wire.PexPeer
	for _, a := range addrs {
		host, portStr, err := net.SplitHostPort(a)
		if err != nil {
			continue
		}
		port, err := strconv.Atoi(portStr)
		if err != nil {
			continue
		}
		ip := net.ParseIP(host)
		if ip == nil || ip.To4() == nil {
			continue
		}
		added = append(added, wire.PexPeer{IP: ip, Port: uint16(port)})
	}
	if len(added) == 0 {
		return
	}
	n.mu.Lock()
	conns := make([]*conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.mu.Lock()
		pexID := c.pexID
		c.mu.Unlock()
		if pexID == 0 {
			continue
		}
		body, err := wire.MarshalPex(wire.PexMessage{Added: added})
		if err != nil {
			continue
		}
		_ = c.write(&wire.Message{
			Type:  wire.MsgExtended,
			Block: wire.ExtendedPayload(byte(pexID), body),
		})
	}
}

// ---------------------------------------------------------------------------
// Connections.

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.runConn(c, false)
		}()
	}
}

// runConn performs the handshake and runs the message loop until the
// connection dies.
func (n *Node) runConn(netc net.Conn, initiator bool) {
	defer netc.Close()
	_ = netc.SetDeadline(time.Now().Add(10 * time.Second))
	hs := wire.Handshake{
		InfoHash:   n.infoHash,
		PeerID:     n.peerID,
		Extensions: !n.cfg.DisablePex,
	}
	var remote wire.Handshake
	var err error
	if initiator {
		if err = wire.WriteHandshake(netc, hs); err != nil {
			return
		}
		if remote, err = wire.ReadHandshake(netc); err != nil || remote.InfoHash != n.infoHash {
			return
		}
	} else {
		if remote, err = wire.ReadHandshake(netc); err != nil || remote.InfoHash != n.infoHash {
			return
		}
		if err = wire.WriteHandshake(netc, hs); err != nil {
			return
		}
	}
	_ = netc.SetDeadline(time.Time{})

	c := &conn{
		node:         n,
		c:            netc,
		choked:       true,
		weAreChoking: n.cfg.TitForTat,
		inflight:     make(map[int]bool),
		remoteExts:   remote.Extensions,
	}
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	c.seq = n.connSeq
	n.connSeq++
	n.conns[c] = struct{}{}
	bf := n.have.Clone()
	n.mu.Unlock()
	n.m.connections.Add(1)

	defer n.dropConn(c)
	if err := c.write(&wire.Message{Type: wire.MsgBitfield, Bitfield: bf}); err != nil {
		return
	}
	if c.remoteExts && !n.cfg.DisablePex {
		body, err := wire.MarshalExtendedHandshake(wire.ExtendedHandshake{
			PexID: wire.ExtPexID,
			Port:  int64(n.Port()),
		})
		if err == nil {
			_ = c.write(&wire.Message{
				Type:  wire.MsgExtended,
				Block: wire.ExtendedPayload(wire.ExtHandshakeID, body),
			})
		}
	}
	for {
		_ = netc.SetReadDeadline(time.Now().Add(2 * time.Minute))
		msg, err := wire.ReadMessage(netc)
		if err != nil {
			return
		}
		if msg == nil {
			continue // keep-alive
		}
		if err := n.handleMessage(c, msg); err != nil {
			return
		}
	}
}

func (n *Node) dropConn(c *conn) {
	n.m.connections.Add(-1)
	n.mu.Lock()
	delete(n.conns, c)
	c.mu.Lock()
	for piece := range c.inflight {
		if n.pending[piece] == c {
			delete(n.pending, piece)
		}
	}
	c.inflight = make(map[int]bool)
	c.mu.Unlock()
	n.mu.Unlock()
	// Other connections may now pick up the orphaned pieces.
	n.mu.Lock()
	conns := make([]*conn, 0, len(n.conns))
	for oc := range n.conns {
		conns = append(conns, oc)
	}
	n.mu.Unlock()
	for _, oc := range conns {
		n.requestMore(oc)
	}
}

func (c *conn) write(m *wire.Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_ = c.c.SetWriteDeadline(time.Now().Add(30 * time.Second))
	return wire.WriteMessage(c.c, m)
}

func (n *Node) handleMessage(c *conn, m *wire.Message) error {
	switch m.Type {
	case wire.MsgBitfield:
		c.mu.Lock()
		c.remoteBF = m.Bitfield.Clone()
		c.mu.Unlock()
		if n.remoteHasUseful(c) {
			if err := c.write(&wire.Message{Type: wire.MsgInterested}); err != nil {
				return err
			}
		}
	case wire.MsgHave:
		c.mu.Lock()
		if c.remoteBF == nil {
			c.remoteBF = wire.NewBitfield(n.info.NumPieces())
		}
		c.remoteBF.Set(int(m.Index))
		c.mu.Unlock()
		if n.remoteHasUseful(c) {
			if err := c.write(&wire.Message{Type: wire.MsgInterested}); err != nil {
				return err
			}
			n.requestMore(c)
		}
	case wire.MsgInterested:
		c.mu.Lock()
		c.remoteInterested = true
		c.mu.Unlock()
		if !n.cfg.TitForTat {
			// Generous policy: unchoke everyone immediately.
			return c.write(&wire.Message{Type: wire.MsgUnchoke})
		}
		// Tit-for-tat: the choker decides at its next tick.
	case wire.MsgNotInterested:
		c.mu.Lock()
		c.remoteInterested = false
		c.mu.Unlock()
	case wire.MsgChoke:
		c.mu.Lock()
		c.choked = true
		orphans := make([]int, 0, len(c.inflight))
		for p := range c.inflight {
			orphans = append(orphans, p)
		}
		c.inflight = make(map[int]bool)
		c.mu.Unlock()
		n.mu.Lock()
		for _, p := range orphans {
			if n.pending[p] == c {
				delete(n.pending, p)
			}
		}
		n.mu.Unlock()
	case wire.MsgUnchoke:
		c.mu.Lock()
		c.choked = false
		c.mu.Unlock()
		n.requestMore(c)
	case wire.MsgRequest:
		return n.servePiece(c, m)
	case wire.MsgPiece:
		return n.receivePiece(c, m)
	case wire.MsgCancel:
		// Whole-piece transfers: nothing useful to cancel mid-write.
	case wire.MsgExtended:
		return n.handleExtended(c, m)
	}
	return nil
}

// handleExtended processes BEP-10 messages: the extended handshake
// (learning the remote's PEX sub-ID and listen port) and incoming
// ut_pex gossip (learning new peer addresses).
func (n *Node) handleExtended(c *conn, m *wire.Message) error {
	if n.cfg.DisablePex {
		return nil
	}
	subID, body, err := wire.SplitExtendedPayload(m.Block)
	if err != nil {
		return err
	}
	switch subID {
	case wire.ExtHandshakeID:
		eh, err := wire.ParseExtendedHandshake(body)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.pexID = eh.PexID
		c.mu.Unlock()
		// The remote's listen address (its IP from the socket, its port
		// from the handshake) joins the gossip set.
		if eh.Port > 0 {
			host, _, err := net.SplitHostPort(c.c.RemoteAddr().String())
			if err == nil {
				n.rememberAddrs([]string{net.JoinHostPort(host, strconv.FormatInt(eh.Port, 10))})
			}
		}
	case wire.ExtPexID:
		pex, err := wire.ParsePex(body)
		if err != nil {
			return err
		}
		addrs := make([]string, 0, len(pex.Added))
		for _, p := range pex.Added {
			addrs = append(addrs, p.String())
		}
		n.rememberAddrs(addrs)
		n.dialAddrs(addrs)
	}
	return nil
}

// remoteHasUseful reports whether c's remote holds a piece we lack.
func (n *Node) remoteHasUseful(c *conn) bool {
	c.mu.Lock()
	bf := c.remoteBF
	c.mu.Unlock()
	if bf == nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := 0; i < n.info.NumPieces(); i++ {
		if bf.Has(i) && !n.have.Has(i) {
			return true
		}
	}
	return false
}

// requestMore fills c's request pipeline with pieces the remote has and
// nobody else is fetching.
func (n *Node) requestMore(c *conn) {
	for {
		c.mu.Lock()
		if c.choked || len(c.inflight) >= n.cfg.Pipeline || c.remoteBF == nil {
			c.mu.Unlock()
			return
		}
		bf := c.remoteBF
		n.mu.Lock()
		piece := -1
		for i := 0; i < n.info.NumPieces(); i++ {
			if bf.Has(i) && !n.have.Has(i) && n.pending[i] == nil {
				piece = i
				break
			}
		}
		if piece < 0 {
			n.mu.Unlock()
			c.mu.Unlock()
			return
		}
		n.pending[piece] = c
		c.inflight[piece] = true
		size := n.info.PieceSize(piece)
		n.mu.Unlock()
		c.mu.Unlock()
		err := c.write(&wire.Message{
			Type:   wire.MsgRequest,
			Index:  uint32(piece),
			Begin:  0,
			Length: uint32(size),
		})
		if err != nil {
			n.mu.Lock()
			if n.pending[piece] == c {
				delete(n.pending, piece)
			}
			n.mu.Unlock()
			c.mu.Lock()
			delete(c.inflight, piece)
			c.mu.Unlock()
			return
		}
	}
}

// servePiece answers a whole-piece request. Requests from peers we are
// choking are dropped, per the protocol.
func (n *Node) servePiece(c *conn, m *wire.Message) error {
	if n.cfg.TitForTat {
		c.mu.Lock()
		choking := c.weAreChoking
		c.mu.Unlock()
		if choking {
			return nil
		}
	}
	idx := int(m.Index)
	n.mu.Lock()
	if idx < 0 || idx >= n.info.NumPieces() || !n.have.Has(idx) {
		n.mu.Unlock()
		return fmt.Errorf("peer: request for piece %d we lack", idx)
	}
	lo, hi := n.pieceRange(idx)
	block := append([]byte(nil), n.content[lo:hi]...)
	n.mu.Unlock()
	if int64(m.Begin) != 0 || int64(m.Length) != int64(len(block)) {
		return fmt.Errorf("peer: partial-piece request not supported (begin=%d len=%d)",
			m.Begin, m.Length)
	}
	if err := c.write(&wire.Message{Type: wire.MsgPiece, Index: m.Index, Begin: 0, Block: block}); err != nil {
		return err
	}
	c.mu.Lock()
	c.bytesToPeer += int64(len(block))
	c.mu.Unlock()
	n.uploaded.Add(int64(len(block)))
	n.m.bytesTx.Add(uint64(len(block)))
	return nil
}

// receivePiece verifies and stores an incoming piece.
func (n *Node) receivePiece(c *conn, m *wire.Message) error {
	idx := int(m.Index)
	if idx < 0 || idx >= n.info.NumPieces() {
		return fmt.Errorf("peer: piece index %d out of range", idx)
	}
	c.mu.Lock()
	c.bytesFromPeer += int64(len(m.Block))
	c.mu.Unlock()
	n.downloaded.Add(int64(len(m.Block)))
	n.m.bytesRx.Add(uint64(len(m.Block)))
	if !n.info.VerifyPiece(idx, m.Block) {
		n.m.hashFailures.Inc()
		// Hash failure: drop the in-flight claim so it can be re-fetched.
		n.mu.Lock()
		if n.pending[idx] == c {
			delete(n.pending, idx)
		}
		n.mu.Unlock()
		c.mu.Lock()
		delete(c.inflight, idx)
		c.mu.Unlock()
		return fmt.Errorf("peer: piece %d failed hash check", idx)
	}

	n.mu.Lock()
	fresh := !n.have.Has(idx)
	if fresh {
		lo, hi := n.pieceRange(idx)
		if int64(len(m.Block)) != hi-lo {
			n.mu.Unlock()
			return fmt.Errorf("peer: piece %d is %d bytes, want %d", idx, len(m.Block), hi-lo)
		}
		copy(n.content[lo:hi], m.Block)
		n.have.Set(idx)
		n.haveCount++
	}
	if n.pending[idx] == c {
		delete(n.pending, idx)
	}
	complete := n.haveCount == n.info.NumPieces()
	conns := make([]*conn, 0, len(n.conns))
	for oc := range n.conns {
		conns = append(conns, oc)
	}
	n.mu.Unlock()

	c.mu.Lock()
	delete(c.inflight, idx)
	c.mu.Unlock()

	if fresh {
		n.m.piecesDone.Inc()
		for _, oc := range conns {
			_ = oc.write(&wire.Message{Type: wire.MsgHave, Index: m.Index})
		}
	}
	if complete {
		n.signalDone()
		// Tell the tracker we are now a seed (best effort, async).
		go func() { _, _ = n.announce("completed") }()
	}
	n.requestMore(c)
	return nil
}

// NumConns returns the number of live peer connections.
func (n *Node) NumConns() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

// String identifies the node for logs.
func (n *Node) String() string {
	have, total := n.Progress()
	return "peer[" + n.Addr() + " " + strconv.Itoa(have) + "/" + strconv.Itoa(total) + "]"
}
