package peer

import (
	"crypto/rand"
	"net"
	"net/http"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/tracker"
	"swarmavail/internal/bittorrent/wire"
)

// ProbeResult describes one peer observed by the monitoring agent.
type ProbeResult struct {
	// Addr is the peer's host:port.
	Addr string
	// Seed reports whether the peer's bitfield was complete.
	Seed bool
	// Pieces is the number of pieces the peer advertised.
	Pieces int
}

// ProbeConfig parameterises a monitoring probe with the same networking
// knobs a Node has: the dial timeout (DefaultDialTimeout if 0, and also
// the per-peer I/O deadline), an optional dialer override, and an
// optional HTTP client for the announce.
type ProbeConfig struct {
	DialTimeout time.Duration
	Dial        DialFunc
	HTTPClient  *http.Client
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.Dial == nil {
		c.Dial = net.DialTimeout
	}
	return c
}

// Probe is the §2 monitoring methodology in miniature: join the swarm's
// control plane (announce to the tracker), connect to each reported
// peer, record the bitfield it advertises, and classify seeds — without
// uploading or downloading any content. The probe deregisters itself
// afterwards.
func Probe(t *metainfo.Torrent, cfg ProbeConfig) ([]ProbeResult, error) {
	cfg = cfg.withDefaults()
	info := &t.Info
	ih, err := info.Hash()
	if err != nil {
		return nil, err
	}
	var id [20]byte
	copy(id[:], "-SAMON0-")
	if _, err := rand.Read(id[8:]); err != nil {
		return nil, err
	}
	req := tracker.AnnounceRequest{
		TrackerURL: t.Announce,
		InfoHash:   ih,
		PeerID:     id,
		Port:       6881, // advisory; the agent never accepts connections
		Left:       info.TotalLength(),
		NumWant:    200,
		IP:         "127.0.0.1",
	}
	resp, err := tracker.Announce(cfg.HTTPClient, req)
	if err != nil {
		return nil, err
	}
	defer func() {
		req.Event = "stopped"
		_, _ = tracker.Announce(cfg.HTTPClient, req)
	}()

	var out []ProbeResult
	for _, p := range resp.Peers {
		r, err := probeOne(cfg, p.String(), ih, id, info.NumPieces())
		if err != nil {
			continue // unreachable peers are simply skipped, as on PlanetLab
		}
		out = append(out, r)
	}
	return out, nil
}

func probeOne(cfg ProbeConfig, addr string, ih metainfo.InfoHash, id [20]byte, numPieces int) (ProbeResult, error) {
	res := ProbeResult{Addr: addr}
	c, err := cfg.Dial("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return res, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(cfg.DialTimeout))
	if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: ih, PeerID: id}); err != nil {
		return res, err
	}
	if _, err := wire.ReadHandshake(c); err != nil {
		return res, err
	}
	// The first real message from a well-behaved peer is its bitfield.
	for {
		m, err := wire.ReadMessage(c)
		if err != nil {
			return res, err
		}
		if m == nil {
			continue
		}
		if m.Type == wire.MsgBitfield {
			res.Pieces = m.Bitfield.Count(numPieces)
			res.Seed = m.Bitfield.Complete(numPieces)
			return res, nil
		}
	}
}
