package peer

import (
	"crypto/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/tracker"
	"swarmavail/internal/bittorrent/wire"
)

// ProbeResult describes one peer observed by the monitoring agent.
type ProbeResult struct {
	// Addr is the peer's host:port.
	Addr string
	// Seed reports whether the peer's bitfield was complete.
	Seed bool
	// Pieces is the number of pieces the peer advertised.
	Pieces int
}

// ProbeConfig parameterises a monitoring probe with the same networking
// knobs a Node has: the dial timeout (DefaultDialTimeout if 0, and also
// the per-peer I/O deadline), an optional dialer override, and optional
// HTTP/UDP clients for the announce (whichever matches the tracker URL
// scheme is used).
type ProbeConfig struct {
	DialTimeout time.Duration
	Dial        DialFunc
	HTTPClient  *http.Client
	UDP         *tracker.UDPClient

	// BitfieldWait bounds how long probeOne waits for the first
	// post-handshake message before classifying a quiet peer as a
	// zero-piece leecher (DialTimeout if 0). Newly-joined leechers hold
	// nothing and legitimately skip the bitfield message, so silence is
	// data, not failure.
	BitfieldWait time.Duration

	// PEX keeps each probed connection open long enough to collect
	// BEP-11 gossip and expands the probe frontier with the addresses
	// learned — the §2 methodology's answer to trackers that return
	// only a sample of the swarm.
	PEX bool
	// MaxPeers caps the total peers probed per Probe call, PEX
	// discoveries included (256 if 0).
	MaxPeers int
	// NumWant is the announce's peer-count request (200 if 0).
	NumWant int
	// Port is the advisory port announced (6881 if 0); the agent never
	// accepts connections.
	Port int
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.Dial == nil {
		c.Dial = net.DialTimeout
	}
	if c.BitfieldWait <= 0 {
		c.BitfieldWait = c.DialTimeout
	}
	if c.MaxPeers <= 0 {
		c.MaxPeers = 256
	}
	if c.NumWant <= 0 {
		c.NumWant = 200
	}
	if c.Port <= 0 {
		c.Port = 6881
	}
	return c
}

// Probe is the §2 monitoring methodology in miniature: join the swarm's
// control plane (announce to the tracker, HTTP or UDP), connect to each
// reported peer, record the bitfield it advertises, and classify seeds —
// without uploading or downloading any content. With cfg.PEX the
// frontier grows with gossip learned from probed peers, reaching swarm
// members the tracker's sample missed. The probe deregisters itself
// afterwards.
func Probe(t *metainfo.Torrent, cfg ProbeConfig) ([]ProbeResult, error) {
	cfg = cfg.withDefaults()
	info := &t.Info
	ih, err := info.Hash()
	if err != nil {
		return nil, err
	}
	var id [20]byte
	copy(id[:], "-SAMON0-")
	if _, err := rand.Read(id[8:]); err != nil {
		return nil, err
	}
	req := tracker.AnnounceRequest{
		TrackerURL: t.Announce,
		InfoHash:   ih,
		PeerID:     id,
		Port:       cfg.Port,
		Left:       info.TotalLength(),
		NumWant:    cfg.NumWant,
		IP:         "127.0.0.1",
	}
	resp, err := tracker.AnnounceWith(cfg.HTTPClient, cfg.UDP, req)
	if err != nil {
		return nil, err
	}
	defer func() {
		req.Event = "stopped"
		_, _ = tracker.AnnounceWith(cfg.HTTPClient, cfg.UDP, req)
	}()

	frontier := make([]string, 0, len(resp.Peers))
	for _, p := range resp.Peers {
		frontier = append(frontier, p.String())
	}
	seen := make(map[string]bool, len(frontier))
	var out []ProbeResult
	for i := 0; i < len(frontier) && len(seen) < cfg.MaxPeers; i++ {
		addr := frontier[i]
		if seen[addr] {
			continue
		}
		seen[addr] = true
		r, discovered, err := probeOne(cfg, addr, ih, id, info.NumPieces())
		if err != nil {
			continue // unreachable peers are simply skipped, as on PlanetLab
		}
		out = append(out, r)
		// Deterministic expansion order keeps probe traces reproducible.
		sort.Strings(discovered)
		for _, d := range discovered {
			if !seen[d] {
				frontier = append(frontier, d)
			}
		}
	}
	return out, nil
}

// probeOne handshakes with one peer and classifies it from what it
// volunteers. A complete bitfield is a seed. Anything else — a partial
// bitfield, bare have messages, or post-handshake silence until
// BitfieldWait — is a leecher with the observed piece count: peers that
// hold zero pieces legitimately never send a bitfield, and dropping
// them (the old behavior) inflated measured seed fractions. With
// cfg.PEX the connection also collects gossiped addresses until the
// wait expires.
func probeOne(cfg ProbeConfig, addr string, ih metainfo.InfoHash, id [20]byte, numPieces int) (ProbeResult, []string, error) {
	res := ProbeResult{Addr: addr}
	c, err := cfg.Dial("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return res, nil, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(cfg.DialTimeout))
	hs := wire.Handshake{InfoHash: ih, PeerID: id, Extensions: cfg.PEX}
	if err := wire.WriteHandshake(c, hs); err != nil {
		return res, nil, err
	}
	remote, err := wire.ReadHandshake(c)
	if err != nil {
		return res, nil, err
	}

	// From here on, the peer is reachable: every exit path below is an
	// observation, not an error.
	deadline := time.Now().Add(cfg.BitfieldWait)
	_ = c.SetDeadline(deadline)
	have := wire.NewBitfield(numPieces)
	count := 0
	var discovered []string
	var pexID int64
	sawBitfield := false

	if cfg.PEX && remote.Extensions {
		body, err := wire.MarshalExtendedHandshake(wire.ExtendedHandshake{PexID: wire.ExtPexID})
		if err == nil {
			_ = wire.WriteMessage(c, &wire.Message{
				Type:  wire.MsgExtended,
				Block: wire.ExtendedPayload(wire.ExtHandshakeID, body),
			})
		}
	}

	finish := func() (ProbeResult, []string, error) {
		res.Pieces = count
		res.Seed = numPieces > 0 && count == numPieces
		return res, discovered, nil
	}
	for {
		m, err := wire.ReadMessage(c)
		if err != nil {
			return finish() // silence or teardown: classify from what we saw
		}
		if m == nil {
			continue // keep-alive
		}
		switch m.Type {
		case wire.MsgBitfield:
			have = m.Bitfield.Clone()
			count = have.Count(numPieces)
			sawBitfield = true
		case wire.MsgHave:
			if idx := int(m.Index); idx >= 0 && idx < numPieces && !have.Has(idx) {
				have.Set(idx)
				count++
			}
		case wire.MsgExtended:
			if !cfg.PEX {
				continue
			}
			subID, body, err := wire.SplitExtendedPayload(m.Block)
			if err != nil {
				continue
			}
			switch subID {
			case wire.ExtHandshakeID:
				if eh, err := wire.ParseExtendedHandshake(body); err == nil {
					pexID = eh.PexID
					if eh.Port > 0 {
						if host, _, err := net.SplitHostPort(addr); err == nil {
							listen := net.JoinHostPort(host, strconv.FormatInt(eh.Port, 10))
							if listen != addr {
								discovered = append(discovered, listen)
							}
						}
					}
				}
			case wire.ExtPexID, pexSubID(pexID):
				// Accept both our advertised sub-ID and the one the
				// remote declared for itself.
				if pex, err := wire.ParsePex(body); err == nil {
					for _, p := range pex.Added {
						discovered = append(discovered, p.String())
					}
				}
			}
		}
		// A bitfield settles the classification; without PEX there is
		// nothing more to learn, so return early rather than idling out
		// the deadline on every probed peer.
		if sawBitfield && !cfg.PEX {
			return finish()
		}
	}
}

// pexSubID folds the remote-advertised PEX sub-ID into the switch above.
// An unset (or out-of-range) id maps to wire.ExtPexID, which the
// constant case already covers, so it never widens the match.
func pexSubID(id int64) byte {
	if id <= 0 || id > 255 {
		return wire.ExtPexID
	}
	return byte(id)
}
