package peer

import (
	"crypto/rand"
	"net"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/tracker"
	"swarmavail/internal/bittorrent/wire"
)

// ProbeResult describes one peer observed by the monitoring agent.
type ProbeResult struct {
	// Addr is the peer's host:port.
	Addr string
	// Seed reports whether the peer's bitfield was complete.
	Seed bool
	// Pieces is the number of pieces the peer advertised.
	Pieces int
}

// Probe is the §2 monitoring methodology in miniature: join the swarm's
// control plane (announce to the tracker), connect to each reported
// peer, record the bitfield it advertises, and classify seeds — without
// uploading or downloading any content. The probe deregisters itself
// afterwards.
func Probe(t *metainfo.Torrent, timeout time.Duration) ([]ProbeResult, error) {
	info := &t.Info
	ih, err := info.Hash()
	if err != nil {
		return nil, err
	}
	var id [20]byte
	copy(id[:], "-SAMON0-")
	if _, err := rand.Read(id[8:]); err != nil {
		return nil, err
	}
	req := tracker.AnnounceRequest{
		TrackerURL: t.Announce,
		InfoHash:   ih,
		PeerID:     id,
		Port:       6881, // advisory; the agent never accepts connections
		Left:       info.TotalLength(),
		NumWant:    200,
		IP:         "127.0.0.1",
	}
	resp, err := tracker.Announce(nil, req)
	if err != nil {
		return nil, err
	}
	defer func() {
		req.Event = "stopped"
		_, _ = tracker.Announce(nil, req)
	}()

	var out []ProbeResult
	for _, p := range resp.Peers {
		r, err := probeOne(p.String(), ih, id, info.NumPieces(), timeout)
		if err != nil {
			continue // unreachable peers are simply skipped, as on PlanetLab
		}
		out = append(out, r)
	}
	return out, nil
}

func probeOne(addr string, ih metainfo.InfoHash, id [20]byte, numPieces int, timeout time.Duration) (ProbeResult, error) {
	res := ProbeResult{Addr: addr}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return res, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: ih, PeerID: id}); err != nil {
		return res, err
	}
	if _, err := wire.ReadHandshake(c); err != nil {
		return res, err
	}
	// The first real message from a well-behaved peer is its bitfield.
	for {
		m, err := wire.ReadMessage(c)
		if err != nil {
			return res, err
		}
		if m == nil {
			continue
		}
		if m.Type == wire.MsgBitfield {
			res.Pieces = m.Bitfield.Count(numPieces)
			res.Seed = m.Bitfield.Complete(numPieces)
			return res, nil
		}
	}
}
