package peer

import "swarmavail/internal/obs"

// nodeMetrics bundles a node's instruments. Every field is nil when no
// registry was configured — obs instruments no-op on nil, so the call
// sites never branch. Several nodes sharing one registry (a fleet in
// one process, as the chaos experiments run) share these series; the
// counters then read as fleet totals.
type nodeMetrics struct {
	announceOK    *obs.Counter // peer_announces_total{result="ok"}
	announceTemp  *obs.Counter // ...{result="temporary"}: retried with backoff
	announceFatal *obs.Counter // ...{result="fatal"}: tracker rejected
	dials         *obs.Counter // peer_dials_total
	dialFailures  *obs.Counter // peer_dial_failures_total (each starts a backoff)
	connections   *obs.Gauge   // peer_connections currently live
	bytesRx       *obs.Counter // peer_piece_bytes_rx_total (pre-verification)
	bytesTx       *obs.Counter // peer_piece_bytes_tx_total
	hashFailures  *obs.Counter // peer_piece_hash_failures_total
	piecesDone    *obs.Counter // peer_pieces_completed_total (verified, fresh)
}

func newNodeMetrics(reg *obs.Registry) nodeMetrics {
	return nodeMetrics{
		announceOK:    reg.Counter("peer_announces_total", obs.L("result", "ok")),
		announceTemp:  reg.Counter("peer_announces_total", obs.L("result", "temporary")),
		announceFatal: reg.Counter("peer_announces_total", obs.L("result", "fatal")),
		dials:         reg.Counter("peer_dials_total"),
		dialFailures:  reg.Counter("peer_dial_failures_total"),
		connections:   reg.Gauge("peer_connections"),
		bytesRx:       reg.Counter("peer_piece_bytes_rx_total"),
		bytesTx:       reg.Counter("peer_piece_bytes_tx_total"),
		hashFailures:  reg.Counter("peer_piece_hash_failures_total"),
		piecesDone:    reg.Counter("peer_pieces_completed_total"),
	}
}
