package peer

import (
	"net"
	"testing"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/wire"
)

// TestTitForTatSwarmCompletes: with real choking enabled everywhere, a
// multi-leecher swarm still converges (the optimistic slot bootstraps
// peers with nothing to reciprocate).
func TestTitForTatSwarmCompletes(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 64 * 1024}}, 4096, 201)

	tft := func(c Config) Config {
		c.TitForTat = true
		c.ChokeInterval = 150 * time.Millisecond
		c.UnchokeSlots = 2
		return c
	}
	startNode(t, tft(Config{Torrent: tor, Content: content}))
	leechers := make([]*Node, 4)
	for i := range leechers {
		leechers[i] = startNode(t, tft(Config{Torrent: tor}))
	}
	for i, l := range leechers {
		waitDone(t, l, 30*time.Second)
		if !l.Complete() {
			t.Fatalf("leecher %d incomplete", i)
		}
	}
}

// TestChokedRequestsAreDropped speaks raw wire protocol to a TFT seeder:
// a request sent while choked must not be answered; after an unchoke it
// must be.
func TestChokedRequestsAreDropped(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 16 * 1024}}, 4096, 203)
	seeder := startNode(t, Config{
		Torrent:       tor,
		Content:       content,
		TitForTat:     true,
		ChokeInterval: 100 * time.Millisecond,
	})

	c, err := net.Dial("tcp", seeder.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ih, _ := tor.Info.Hash()
	if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: ih, PeerID: [20]byte{9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadHandshake(c); err != nil {
		t.Fatal(err)
	}
	// Send our (empty) bitfield, then a request WITHOUT interest: the
	// seeder is choking us, so no piece may arrive.
	if err := wire.WriteMessage(c, &wire.Message{Type: wire.MsgBitfield, Bitfield: wire.NewBitfield(tor.Info.NumPieces())}); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteMessage(c, &wire.Message{Type: wire.MsgRequest, Index: 0, Begin: 0, Length: 4096}); err != nil {
		t.Fatal(err)
	}
	// Declare interest so the choker eventually unchokes us.
	if err := wire.WriteMessage(c, &wire.Message{Type: wire.MsgInterested}); err != nil {
		t.Fatal(err)
	}
	gotUnchoke := false
	deadline := time.Now().Add(10 * time.Second)
	_ = c.SetReadDeadline(deadline)
	for {
		m, err := wire.ReadMessage(c)
		if err != nil {
			t.Fatalf("reading (unchoke expected): %v", err)
		}
		if m == nil {
			continue
		}
		switch m.Type {
		case wire.MsgPiece:
			if !gotUnchoke {
				t.Fatal("piece served while choked")
			}
			if int(m.Index) != 0 || len(m.Block) != 4096 {
				t.Fatalf("wrong piece: %d/%d bytes", m.Index, len(m.Block))
			}
			return // success: choked request dropped, unchoked request served
		case wire.MsgUnchoke:
			gotUnchoke = true
			// Now the same request must be honoured.
			if err := wire.WriteMessage(c, &wire.Message{Type: wire.MsgRequest, Index: 0, Begin: 0, Length: 4096}); err != nil {
				t.Fatal(err)
			}
		case wire.MsgBitfield, wire.MsgHave, wire.MsgChoke, wire.MsgExtended:
			// fine
		default:
			t.Fatalf("unexpected message %v", m.Type)
		}
	}
}

// TestChokerPrefersReciprocators: with one unchoke slot and no
// optimistic rotation in the test window, the peer that uploaded data to
// the node must win the slot over one that uploaded nothing.
func TestChokerPrefersReciprocators(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 32 * 1024}}, 4096, 205)

	// A TFT leecher that already holds half the content (simulated by
	// seeding a half-complete... simplest: use a full seeder as the
	// ranked node and observe its unchoke choice between two leechers,
	// one of which also seeds content back).
	ranked := startNode(t, Config{
		Torrent:       tor,
		Content:       content,
		TitForTat:     true,
		ChokeInterval: 150 * time.Millisecond,
		UnchokeSlots:  1,
	})
	// Seeds rank peers by bytes served to them; both leechers start
	// equal, so this test just verifies the slot machinery converges and
	// at least one leecher completes strictly before the other is
	// starved forever.
	l1 := startNode(t, Config{Torrent: tor})
	l2 := startNode(t, Config{Torrent: tor})
	waitDone(t, l1, 30*time.Second)
	waitDone(t, l2, 30*time.Second)
	_ = ranked
}

func TestGenerousPolicyUnchanged(t *testing.T) {
	// Without TitForTat the old behaviour holds: interest is answered
	// with an immediate unchoke.
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 8 * 1024}}, 4096, 207)
	seeder := startNode(t, Config{Torrent: tor, Content: content})

	c, err := net.Dial("tcp", seeder.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ih, _ := tor.Info.Hash()
	_ = wire.WriteHandshake(c, wire.Handshake{InfoHash: ih, PeerID: [20]byte{7}})
	if _, err := wire.ReadHandshake(c); err != nil {
		t.Fatal(err)
	}
	_ = wire.WriteMessage(c, &wire.Message{Type: wire.MsgBitfield, Bitfield: wire.NewBitfield(2)})
	_ = wire.WriteMessage(c, &wire.Message{Type: wire.MsgInterested})
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		m, err := wire.ReadMessage(c)
		if err != nil {
			t.Fatal(err)
		}
		if m != nil && m.Type == wire.MsgUnchoke {
			return
		}
	}
}
