package peer

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/tracker"
)

// makeTorrent builds a torrent + content over the given tracker URL.
func makeTorrent(t *testing.T, announce string, files []metainfo.File, pieceLen int64, seed int64) (*metainfo.Torrent, []byte) {
	t.Helper()
	var total int64
	for _, f := range files {
		total += f.Length
	}
	content := make([]byte, total)
	rand.New(rand.NewSource(seed)).Read(content)
	info, err := metainfo.New("test-content", pieceLen, files, content)
	if err != nil {
		t.Fatal(err)
	}
	return &metainfo.Torrent{Announce: announce, Info: *info}, content
}

// startTracker runs a tracker on loopback and returns its announce URL.
func startTracker(t *testing.T) string {
	t.Helper()
	srv := tracker.NewServer()
	ln, closeFn, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = closeFn() })
	return "http://" + ln.Addr().String() + "/announce"
}

// startNode creates and starts a node, registering cleanup.
func startNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	cfg.AnnounceInterval = 200 * time.Millisecond
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

func waitDone(t *testing.T, n *Node, timeout time.Duration) {
	t.Helper()
	select {
	case <-n.Done():
	case <-time.After(timeout):
		have, total := n.Progress()
		t.Fatalf("download did not complete in %v (%d/%d pieces, %d conns)",
			timeout, have, total, n.NumConns())
	}
}

func TestSeederLeecherTransfer(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 64 * 1024}}, 8*1024, 1)

	seeder := startNode(t, Config{Torrent: tor, Content: content})
	if !seeder.Complete() {
		t.Fatal("seeder must start complete")
	}
	leecher := startNode(t, Config{Torrent: tor})
	waitDone(t, leecher, 15*time.Second)
	if !bytes.Equal(leecher.Bytes(), content) {
		t.Fatal("downloaded content differs from original")
	}
	if leecher.BytesLeft() != 0 {
		t.Fatalf("bytes left %d", leecher.BytesLeft())
	}
}

func TestBundleTransferMultiFile(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce, []metainfo.File{
		{Path: "ep1.avi", Length: 20000},
		{Path: "ep2.avi", Length: 30000},
		{Path: "ep3.avi", Length: 10000},
	}, 4096, 2)
	if !tor.Info.IsBundle() {
		t.Fatal("expected a bundle")
	}
	seeder := startNode(t, Config{Torrent: tor, Content: content})
	_ = seeder
	leechers := make([]*Node, 3)
	for i := range leechers {
		leechers[i] = startNode(t, Config{Torrent: tor})
	}
	for i, l := range leechers {
		waitDone(t, l, 20*time.Second)
		if !bytes.Equal(l.Bytes(), content) {
			t.Fatalf("leecher %d content mismatch", i)
		}
	}
}

func TestLeecherWaitsForPublisher(t *testing.T) {
	// The availability phenomenon in miniature: a leecher alone makes no
	// progress; once the publisher (seeder) appears, it completes.
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 32 * 1024}}, 4096, 3)

	leecher := startNode(t, Config{Torrent: tor})
	time.Sleep(500 * time.Millisecond)
	if have, _ := leecher.Progress(); have != 0 {
		t.Fatalf("leecher acquired %d pieces with no seed", have)
	}
	select {
	case <-leecher.Done():
		t.Fatal("leecher claims completion with no seed")
	default:
	}

	startNode(t, Config{Torrent: tor, Content: content})
	waitDone(t, leecher, 15*time.Second)
	if !bytes.Equal(leecher.Bytes(), content) {
		t.Fatal("content mismatch after publisher returned")
	}
}

func TestPeersExchangeAfterSeederLeaves(t *testing.T) {
	// Seed a first leecher fully, stop the seeder, then verify a second
	// leecher can complete from the first (peer-sustained busy period).
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 48 * 1024}}, 4096, 4)

	seeder := startNode(t, Config{Torrent: tor, Content: content})
	first := startNode(t, Config{Torrent: tor})
	waitDone(t, first, 15*time.Second)
	seeder.Stop()

	second := startNode(t, Config{Torrent: tor})
	waitDone(t, second, 15*time.Second)
	if !bytes.Equal(second.Bytes(), content) {
		t.Fatal("content mismatch from peer-only download")
	}
}

func TestMonitoringProbeClassifiesSeeds(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 24 * 1024}}, 4096, 5)

	seeder := startNode(t, Config{Torrent: tor, Content: content})
	leecher := startNode(t, Config{Torrent: tor})
	waitDone(t, leecher, 15*time.Second)

	// Give the "completed" announce a moment to land.
	deadline := time.Now().Add(5 * time.Second)
	var results []ProbeResult
	for time.Now().Before(deadline) {
		var err error
		results, err = Probe(tor, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) >= 2 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if len(results) < 2 {
		t.Fatalf("probe saw %d peers, want ≥2", len(results))
	}
	seeds := 0
	for _, r := range results {
		if r.Seed {
			seeds++
		}
		if r.Pieces != tor.Info.NumPieces() && r.Seed {
			t.Fatalf("seed with %d pieces", r.Pieces)
		}
	}
	if seeds < 2 { // both the original seeder and the completed leecher
		t.Fatalf("probe found %d seeds, want 2 (results %+v)", seeds, results)
	}
	_ = seeder
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil torrent accepted")
	}
	announce := "http://127.0.0.1:1/announce"
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 1024}}, 256, 6)
	// Wrong-length content.
	if _, err := New(Config{Torrent: tor, Content: content[:100]}); err == nil {
		t.Fatal("short content accepted")
	}
	// Corrupted content.
	bad := append([]byte(nil), content...)
	bad[0] ^= 0xFF
	if _, err := New(Config{Torrent: tor, Content: bad}); err == nil {
		t.Fatal("corrupt content accepted")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 4096}}, 1024, 7)
	n := startNode(t, Config{Torrent: tor, Content: content})
	n.Stop()
	n.Stop() // must not panic or deadlock
}

func TestTrackerSeesSeedTransition(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 16 * 1024}}, 4096, 8)
	seeder := startNode(t, Config{Torrent: tor, Content: content})
	leecher := startNode(t, Config{Torrent: tor})
	waitDone(t, leecher, 15*time.Second)
	_ = seeder

	// After completion the leecher re-announces as a seed; the tracker's
	// scrape counters should eventually show 2 seeds.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := tracker.Announce(nil, tracker.AnnounceRequest{
			TrackerURL: tor.Announce,
			InfoHash:   leecher.InfoHash(),
			PeerID:     [20]byte{1, 2, 3},
			Port:       9999,
			Left:       1,
			IP:         "127.0.0.1",
		})
		if err == nil && resp.Seeders >= 2 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("tracker never observed two seeds")
}
