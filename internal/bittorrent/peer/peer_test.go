package peer

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/tracker"
)

// makeTorrent builds a torrent + content over the given tracker URL.
func makeTorrent(t *testing.T, announce string, files []metainfo.File, pieceLen int64, seed int64) (*metainfo.Torrent, []byte) {
	t.Helper()
	var total int64
	for _, f := range files {
		total += f.Length
	}
	content := make([]byte, total)
	rand.New(rand.NewSource(seed)).Read(content)
	info, err := metainfo.New("test-content", pieceLen, files, content)
	if err != nil {
		t.Fatal(err)
	}
	return &metainfo.Torrent{Announce: announce, Info: *info}, content
}

// startTracker runs a tracker on loopback and returns its announce URL.
func startTracker(t *testing.T) string {
	t.Helper()
	srv := tracker.NewServer()
	ln, closeFn, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = closeFn() })
	return "http://" + ln.Addr().String() + "/announce"
}

// startNode creates and starts a node, registering cleanup.
func startNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	cfg.AnnounceInterval = 200 * time.Millisecond
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

func waitDone(t *testing.T, n *Node, timeout time.Duration) {
	t.Helper()
	select {
	case <-n.Done():
	case <-time.After(timeout):
		have, total := n.Progress()
		t.Fatalf("download did not complete in %v (%d/%d pieces, %d conns)",
			timeout, have, total, n.NumConns())
	}
}

func TestSeederLeecherTransfer(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 64 * 1024}}, 8*1024, 1)

	seeder := startNode(t, Config{Torrent: tor, Content: content})
	if !seeder.Complete() {
		t.Fatal("seeder must start complete")
	}
	leecher := startNode(t, Config{Torrent: tor})
	waitDone(t, leecher, 15*time.Second)
	if !bytes.Equal(leecher.Bytes(), content) {
		t.Fatal("downloaded content differs from original")
	}
	if leecher.BytesLeft() != 0 {
		t.Fatalf("bytes left %d", leecher.BytesLeft())
	}
}

func TestBundleTransferMultiFile(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce, []metainfo.File{
		{Path: "ep1.avi", Length: 20000},
		{Path: "ep2.avi", Length: 30000},
		{Path: "ep3.avi", Length: 10000},
	}, 4096, 2)
	if !tor.Info.IsBundle() {
		t.Fatal("expected a bundle")
	}
	seeder := startNode(t, Config{Torrent: tor, Content: content})
	_ = seeder
	leechers := make([]*Node, 3)
	for i := range leechers {
		leechers[i] = startNode(t, Config{Torrent: tor})
	}
	for i, l := range leechers {
		waitDone(t, l, 20*time.Second)
		if !bytes.Equal(l.Bytes(), content) {
			t.Fatalf("leecher %d content mismatch", i)
		}
	}
}

func TestLeecherWaitsForPublisher(t *testing.T) {
	// The availability phenomenon in miniature: a leecher alone makes no
	// progress; once the publisher (seeder) appears, it completes.
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 32 * 1024}}, 4096, 3)

	leecher := startNode(t, Config{Torrent: tor})
	time.Sleep(500 * time.Millisecond)
	if have, _ := leecher.Progress(); have != 0 {
		t.Fatalf("leecher acquired %d pieces with no seed", have)
	}
	select {
	case <-leecher.Done():
		t.Fatal("leecher claims completion with no seed")
	default:
	}

	startNode(t, Config{Torrent: tor, Content: content})
	waitDone(t, leecher, 15*time.Second)
	if !bytes.Equal(leecher.Bytes(), content) {
		t.Fatal("content mismatch after publisher returned")
	}
}

func TestPeersExchangeAfterSeederLeaves(t *testing.T) {
	// Seed a first leecher fully, stop the seeder, then verify a second
	// leecher can complete from the first (peer-sustained busy period).
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 48 * 1024}}, 4096, 4)

	seeder := startNode(t, Config{Torrent: tor, Content: content})
	first := startNode(t, Config{Torrent: tor})
	waitDone(t, first, 15*time.Second)
	seeder.Stop()

	second := startNode(t, Config{Torrent: tor})
	waitDone(t, second, 15*time.Second)
	if !bytes.Equal(second.Bytes(), content) {
		t.Fatal("content mismatch from peer-only download")
	}
}

func TestMonitoringProbeClassifiesSeeds(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 24 * 1024}}, 4096, 5)

	seeder := startNode(t, Config{Torrent: tor, Content: content})
	leecher := startNode(t, Config{Torrent: tor})
	waitDone(t, leecher, 15*time.Second)

	// Give the "completed" announce a moment to land.
	deadline := time.Now().Add(5 * time.Second)
	var results []ProbeResult
	for time.Now().Before(deadline) {
		var err error
		results, err = Probe(tor, ProbeConfig{DialTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if len(results) >= 2 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if len(results) < 2 {
		t.Fatalf("probe saw %d peers, want ≥2", len(results))
	}
	seeds := 0
	for _, r := range results {
		if r.Seed {
			seeds++
		}
		if r.Pieces != tor.Info.NumPieces() && r.Seed {
			t.Fatalf("seed with %d pieces", r.Pieces)
		}
	}
	if seeds < 2 { // both the original seeder and the completed leecher
		t.Fatalf("probe found %d seeds, want 2 (results %+v)", seeds, results)
	}
	_ = seeder
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil torrent accepted")
	}
	announce := "http://127.0.0.1:1/announce"
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 1024}}, 256, 6)
	// Wrong-length content.
	if _, err := New(Config{Torrent: tor, Content: content[:100]}); err == nil {
		t.Fatal("short content accepted")
	}
	// Corrupted content.
	bad := append([]byte(nil), content...)
	bad[0] ^= 0xFF
	if _, err := New(Config{Torrent: tor, Content: bad}); err == nil {
		t.Fatal("corrupt content accepted")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 4096}}, 1024, 7)
	n := startNode(t, Config{Torrent: tor, Content: content})
	n.Stop()
	n.Stop() // must not panic or deadlock
}

func TestTrackerSeesSeedTransition(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 16 * 1024}}, 4096, 8)
	seeder := startNode(t, Config{Torrent: tor, Content: content})
	leecher := startNode(t, Config{Torrent: tor})
	waitDone(t, leecher, 15*time.Second)
	_ = seeder

	// After completion the leecher re-announces as a seed; the tracker's
	// scrape counters should eventually show 2 seeds.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := tracker.Announce(nil, tracker.AnnounceRequest{
			TrackerURL: tor.Announce,
			InfoHash:   leecher.InfoHash(),
			PeerID:     [20]byte{1, 2, 3},
			Port:       9999,
			Left:       1,
			IP:         "127.0.0.1",
		})
		if err == nil && resp.Seeders >= 2 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("tracker never observed two seeds")
}

func TestDialTimeoutKnob(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 4096}}, 1024, 9)
	seeder := startNode(t, Config{Torrent: tor, Content: content})

	// A custom dialer observes the timeout the node passes through.
	timeouts := make(chan time.Duration, 8)
	leecher := startNode(t, Config{
		Torrent:     tor,
		DialTimeout: 123 * time.Millisecond,
		Dial: func(network, addr string, timeout time.Duration) (net.Conn, error) {
			timeouts <- timeout
			return net.DialTimeout(network, addr, timeout)
		},
		Bootstrap: []string{seeder.Addr()},
	})
	waitDone(t, leecher, 15*time.Second)
	select {
	case got := <-timeouts:
		if got != 123*time.Millisecond {
			t.Fatalf("dialer saw timeout %v, want 123ms", got)
		}
	default:
		t.Fatal("custom dialer never invoked")
	}

	// The zero value defaults to DefaultDialTimeout.
	n, err := New(Config{Torrent: tor})
	if err != nil {
		t.Fatal(err)
	}
	if n.cfg.DialTimeout != DefaultDialTimeout {
		t.Fatalf("default dial timeout %v, want %v", n.cfg.DialTimeout, DefaultDialTimeout)
	}
}

func TestAnnounceRetriesThroughOutage(t *testing.T) {
	// The tracker is unreachable for the node's first announces; backoff
	// retries must land the registration once it comes back.
	srv := tracker.NewServer()
	ln, closeFn, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = closeFn() })
	announce := "http://" + ln.Addr().String() + "/announce"
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 4096}}, 1024, 10)

	var mu sync.Mutex
	down := true
	failures := make(chan struct{}, 64)
	rt := roundTripFunc(func(r *http.Request) (*http.Response, error) {
		mu.Lock()
		defer mu.Unlock()
		if down {
			select {
			case failures <- struct{}{}:
			default:
			}
			return nil, errors.New("injected: tracker down")
		}
		return http.DefaultTransport.RoundTrip(r)
	})

	var logMu sync.Mutex
	var logs []string
	n, err := New(Config{
		Torrent:          tor,
		Content:          content,
		AnnounceInterval: 100 * time.Millisecond,
		HTTPClient:       &http.Client{Transport: rt},
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	// Wait for a couple of failed attempts, then restore the tracker.
	for i := 0; i < 2; i++ {
		select {
		case <-failures:
		case <-time.After(5 * time.Second):
			t.Fatal("node never attempted to announce")
		}
	}
	mu.Lock()
	down = false
	mu.Unlock()

	ih, _ := tor.Info.Hash()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s, _ := srv.Counts(ih); s == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("announce never landed after the outage healed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The tracker registers the peer before the client goroutine gets to
	// log "recovered", so give the log a moment to catch up.
	checkLogs := func() (sawTemp, sawRecover bool) {
		logMu.Lock()
		defer logMu.Unlock()
		for _, l := range logs {
			if strings.Contains(l, "temporary") {
				sawTemp = true
			}
			if strings.Contains(l, "recovered") {
				sawRecover = true
			}
		}
		return
	}
	for {
		sawTemp, sawRecover := checkLogs()
		if sawTemp && sawRecover {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("logs missed the outage story (temporary=%v recovered=%v)",
				sawTemp, sawRecover)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestDialBackoffSkipsDeadPeer(t *testing.T) {
	announce := startTracker(t)
	tor, _ := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 4096}}, 1024, 11)

	var dials atomic.Int32
	n, err := New(Config{
		Torrent:     tor,
		DialTimeout: 50 * time.Millisecond,
		Dial: func(network, addr string, timeout time.Duration) (net.Conn, error) {
			dials.Add(1)
			return nil, errors.New("injected: unreachable")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ten discovery rounds at a dead address: the backoff window must
	// swallow most of them (without backoff this would be 10 dials).
	dead := []string{"127.0.0.1:1"}
	for i := 0; i < 10; i++ {
		n.dialAddrs(dead)
		time.Sleep(20 * time.Millisecond)
	}
	n.wg.Wait()
	if got := dials.Load(); got >= 5 {
		t.Fatalf("%d dials in 10 rounds, want backoff to suppress most", got)
	}
}
