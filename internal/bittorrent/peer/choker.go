package peer

import (
	"sort"
	"time"

	"swarmavail/internal/bittorrent/wire"
)

// The tit-for-tat choker (Cohen 2003): every interval, unchoke the
// interested peers that reciprocated the most data in the last window,
// plus one optimistically unchoked peer rotated periodically so that
// newcomers with nothing to reciprocate can bootstrap. The §4
// experiments run with the generous policy (everyone unchoked — adequate
// for cooperative controlled swarms); TitForTat enables the real
// mainline behaviour.

// Choking defaults.
const (
	defaultChokeInterval   = 10 * time.Second
	defaultUnchokeSlots    = 3
	optimisticRotationTick = 3 // optimistic peer changes every Nth tick
)

// chokerLoop drives periodic re-evaluation.
func (n *Node) chokerLoop() {
	defer n.wg.Done()
	interval := n.cfg.ChokeInterval
	if interval <= 0 {
		interval = defaultChokeInterval
	}
	tick := 0
	for {
		select {
		case <-n.stopCh:
			return
		case <-time.After(interval):
			tick++
			n.chokerTick(tick%optimisticRotationTick == 0)
		}
	}
}

// chokerTick ranks interested connections and flips choke states.
// rotateOptimistic picks a fresh optimistic peer.
func (n *Node) chokerTick(rotateOptimistic bool) {
	slots := n.cfg.UnchokeSlots
	if slots <= 0 {
		slots = defaultUnchokeSlots
	}

	n.mu.Lock()
	conns := make([]*conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	seed := n.haveCount == n.info.NumPieces()
	optimistic := n.optimistic
	n.mu.Unlock()

	type ranked struct {
		c    *conn
		rate int64
	}
	var interested []ranked
	for _, c := range conns {
		c.mu.Lock()
		// Rate = reciprocation for leechers, service speed for seeds.
		var window int64
		if seed {
			window = c.bytesToPeer - c.prevBytesToPeer
			c.prevBytesToPeer = c.bytesToPeer
		} else {
			window = c.bytesFromPeer - c.prevBytesFromPeer
			c.prevBytesFromPeer = c.bytesFromPeer
		}
		ok := c.remoteInterested
		c.mu.Unlock()
		if ok {
			interested = append(interested, ranked{c: c, rate: window})
		}
	}
	// Deterministic order under equal rates: connection identity via
	// pointer order is unstable, so fall back to creation sequence.
	sort.SliceStable(interested, func(i, j int) bool {
		if interested[i].rate != interested[j].rate {
			return interested[i].rate > interested[j].rate
		}
		return interested[i].c.seq < interested[j].c.seq
	})

	unchoke := make(map[*conn]bool, slots+1)
	for i := 0; i < len(interested) && i < slots; i++ {
		unchoke[interested[i].c] = true
	}
	// Optimistic slot: rotate among interested-but-not-selected peers.
	if rotateOptimistic || optimistic == nil || !containsConn(conns, optimistic) {
		optimistic = nil
		var candidates []*conn
		for _, r := range interested {
			if !unchoke[r.c] {
				candidates = append(candidates, r.c)
			}
		}
		if len(candidates) > 0 {
			n.mu.Lock()
			optimistic = candidates[n.optimisticRng.Intn(len(candidates))]
			n.mu.Unlock()
		}
	}
	if optimistic != nil {
		unchoke[optimistic] = true
	}
	n.mu.Lock()
	n.optimistic = optimistic
	n.mu.Unlock()

	for _, c := range conns {
		c.mu.Lock()
		interestedPeer := c.remoteInterested
		choking := c.weAreChoking
		c.mu.Unlock()
		want := interestedPeer && unchoke[c]
		switch {
		case choking && want:
			c.setChoking(false)
		case !choking && !want && interestedPeer:
			// Keep at least the selected set; choke the rest.
			c.setChoking(true)
		case !choking && !interestedPeer:
			// Peer lost interest; reset to choked for the next round.
			c.setChoking(true)
		}
	}
}

func containsConn(conns []*conn, c *conn) bool {
	for _, x := range conns {
		if x == c {
			return true
		}
	}
	return false
}

// setChoking flips our choke state toward the remote and notifies it.
func (c *conn) setChoking(choke bool) {
	c.mu.Lock()
	if c.weAreChoking == choke {
		c.mu.Unlock()
		return
	}
	c.weAreChoking = choke
	c.mu.Unlock()
	mt := wire.MsgUnchoke
	if choke {
		mt = wire.MsgChoke
	}
	_ = c.write(&wire.Message{Type: mt})
}
