package peer

import (
	"testing"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
)

// TestPexDiscovery exercises the §2.2 discovery path: a node that never
// uses tracker peer lists must still reach the whole swarm through a
// single bootstrap neighbour plus ut_pex gossip.
func TestPexDiscovery(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 32 * 1024}}, 4096, 99)

	// Seeder and a helper leecher discover each other via the tracker.
	seeder := startNode(t, Config{Torrent: tor, Content: content})
	helper := startNode(t, Config{Torrent: tor})
	waitDone(t, helper, 15*time.Second)

	// The isolated node bootstraps off the seeder only; it must learn the
	// helper's address through PEX gossip and complete the swarm view.
	isolated := startNode(t, Config{
		Torrent:             tor,
		DisableTrackerPeers: true,
		Bootstrap:           []string{seeder.Addr()},
	})
	waitDone(t, isolated, 15*time.Second)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if isolated.NumConns() >= 2 {
			return // seeder + PEX-discovered helper
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("PEX never connected the isolated node to the helper: %d conns",
		isolated.NumConns())
}

// TestPexDisabled verifies the DisablePex switch: with tracker peers
// also disabled and no gossip, the isolated node reaches only its
// bootstrap neighbour.
func TestPexDisabled(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 16 * 1024}}, 4096, 101)

	// Nobody uses tracker peer lists, so connectivity is exactly the
	// bootstrap topology plus whatever PEX adds.
	seeder := startNode(t, Config{Torrent: tor, Content: content, DisableTrackerPeers: true})
	helper := startNode(t, Config{
		Torrent:             tor,
		DisableTrackerPeers: true,
		Bootstrap:           []string{seeder.Addr()},
	})
	waitDone(t, helper, 15*time.Second)

	isolated := startNode(t, Config{
		Torrent:             tor,
		DisableTrackerPeers: true,
		DisablePex:          true,
		Bootstrap:           []string{seeder.Addr()},
	})
	waitDone(t, isolated, 15*time.Second)
	// Give any (erroneous) gossip time to arrive. Without PEX the
	// isolated node never advertises a listen port and never dials
	// gossiped addresses, so its only connection stays the bootstrap.
	time.Sleep(700 * time.Millisecond)
	if got := isolated.NumConns(); got > 1 {
		t.Fatalf("PEX-disabled node has %d connections, want 1", got)
	}
}

// TestPexSurvivesBootstrapDeparture: after learning the swarm via PEX,
// the isolated node can keep downloading when its bootstrap goes away.
func TestPexSurvivesBootstrapDeparture(t *testing.T) {
	announce := startTracker(t)
	tor, content := makeTorrent(t, announce,
		[]metainfo.File{{Path: "f.bin", Length: 48 * 1024}}, 4096, 103)

	seeder := startNode(t, Config{Torrent: tor, Content: content})
	// Helper completes and stays as a second seed.
	helper := startNode(t, Config{Torrent: tor})
	waitDone(t, helper, 15*time.Second)

	isolated := startNode(t, Config{
		Torrent:             tor,
		DisableTrackerPeers: true,
		Bootstrap:           []string{seeder.Addr()},
	})
	// Wait until gossip connected it to the helper, then drop the seeder.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && isolated.NumConns() < 2 {
		time.Sleep(50 * time.Millisecond)
	}
	if isolated.NumConns() < 2 {
		t.Fatal("gossip never delivered the helper's address")
	}
	seeder.Stop()
	waitDone(t, isolated, 15*time.Second)
}
