package ingest

import (
	"fmt"
	"sort"

	"swarmavail/internal/stats"
	"swarmavail/internal/trace"
)

// SummaryState is the mergeable wire form of a Summary: every counter
// plus the availability sketches and per-category bundling counters that
// Summary hides from its (human-facing) JSON. It is what a cluster node
// serves on GET /v1/state and what the gateway's scatter-gather read
// path decodes, merges (Summary.Merge → QuantileSketch.Merge /
// Accumulator.Merge) and re-renders. The round trip is exact: a merged
// decoded state equals the merge of the live summaries, which is what
// makes a gateway-served /v1/summary byte-identical to a single node
// that saw the whole stream.
type SummaryState struct {
	Swarms                   int              `json:"swarms"`
	StudySwarms              int              `json:"study_swarms"`
	CensusSwarms             int              `json:"census_swarms"`
	SeedsOnline              int              `json:"seeds_online"`
	LeechersOnline           int              `json:"leechers_online"`
	BusyPeriods              int              `json:"busy_periods"`
	Events                   uint64           `json:"events"`
	FullyAvailableFirstMonth int              `json:"fully_available_first_month"`
	MostlyUnavailable        int              `json:"mostly_unavailable"`
	FirstMonth               *stats.QuantileSketch `json:"first_month"`
	Full                     *stats.QuantileSketch `json:"full"`
	Categories               []categoryRecord `json:"categories,omitempty"`
}

// State converts the summary to its wire form. Categories are sorted so
// the encoding is deterministic.
func (s *Summary) State() *SummaryState {
	st := &SummaryState{
		Swarms:                   s.Swarms,
		StudySwarms:              s.StudySwarms,
		CensusSwarms:             s.CensusSwarms,
		SeedsOnline:              s.SeedsOnline,
		LeechersOnline:           s.LeechersOnline,
		BusyPeriods:              s.BusyPeriods,
		Events:                   s.Events,
		FullyAvailableFirstMonth: s.FullyAvailableFirstMonth,
		MostlyUnavailable:        s.MostlyUnavailable,
		FirstMonth:               s.FirstMonth,
		Full:                     s.Full,
	}
	cats := make([]trace.Category, 0, len(s.Categories))
	for cat := range s.Categories {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, cat := range cats {
		st.Categories = append(st.Categories, newCategoryRecord(cat, s.Categories[cat]))
	}
	return st
}

// Summary converts the wire form back to a live, mergeable summary. A
// state with missing sketches (foreign or truncated input) is rejected
// rather than half-built.
func (st *SummaryState) Summary() (*Summary, error) {
	if st.FirstMonth == nil || st.Full == nil {
		return nil, fmt.Errorf("ingest: summary state is missing availability sketches")
	}
	s := &Summary{
		Swarms:                   st.Swarms,
		StudySwarms:              st.StudySwarms,
		CensusSwarms:             st.CensusSwarms,
		SeedsOnline:              st.SeedsOnline,
		LeechersOnline:           st.LeechersOnline,
		BusyPeriods:              st.BusyPeriods,
		Events:                   st.Events,
		FullyAvailableFirstMonth: st.FullyAvailableFirstMonth,
		MostlyUnavailable:        st.MostlyUnavailable,
		FirstMonth:               st.FirstMonth,
		Full:                     st.Full,
		Categories:               make(map[trace.Category]CategoryCounters, len(st.Categories)),
	}
	for _, cr := range st.Categories {
		merged := s.Categories[cr.Category]
		merged.merge(cr.counters())
		s.Categories[cr.Category] = merged
	}
	return s, nil
}
