// Time-windowed availability aggregates: each swarm keeps a small ring
// of time bins recording how much of each bin the swarm was observed
// (tracked), how much of that time it was seeded (covered), how many
// busy periods started in it, and how many monitor events landed in it.
// Old fine bins downsample into coarser bins and eventually age out, so
// resident window state is bounded per swarm regardless of stream
// length.
//
// # Merge algebra
//
// Bin contents are integer fixed-point: a contribution of d days to a
// bin of width binDays is quantized once, on the swarm's home shard, to
// round(d/binDays · winUnitsPerBin) units. Everything downstream —
// folding fine bins into coarse ones, folding swarms into a shard
// WindowState, merging shard states into an engine state, merging node
// states at the cluster gateway — is integer addition keyed by absolute
// bin index, which commutes and associates exactly. Because a swarm's
// ring is a function of that swarm's own event stream alone (eviction
// included), and cluster partitioning keeps swarms whole, a merged
// clustered WindowState is identical — and renders byte-identical — to
// the WindowState of a single engine that saw the whole stream.
package ingest

import (
	"fmt"
	"math"
	"sort"
)

// winUnitsPerBin is the fixed-point scale: the number of integer units
// in one full bin width. 2^30 units ≈ 0.08ms resolution on a one-day
// bin — far below the float64 noise floor of the inputs.
const winUnitsPerBin = 1 << 30

// winBin is one time bin of one swarm's ring.
type winBin struct {
	covered uint64 // seeded time, in winUnitsPerBin-ths of the bin width
	tracked uint64 // observed time, same units
	busy    uint64 // busy periods (0→1 seed transitions) starting here
	events  uint64 // monitor events timestamped here
}

func (b *winBin) zero() bool {
	return b.covered|b.tracked|b.busy|b.events == 0
}

// winRing is one swarm's windowed history: fine bins at full
// resolution, coarse bins (fold× wider) behind them, nothing beyond.
// Slots are addressed modularly by absolute bin index; fineHi/coarseHi
// are the newest absolute indices currently represented, so the live
// fine window is [fineHi-len(fine)+1, fineHi].
type winRing struct {
	fine     []winBin
	coarse   []winBin
	fineHi   int64
	coarseHi int64 // in coarse-bin units (fine index / fold)
}

func (r *winRing) inited() bool { return r.fine != nil }

// binIndex maps a time in days to its absolute fine-bin index
// (negative times clamp to bin 0).
func (c *windowConfig) binIndex(t float64) int64 {
	if t <= 0 {
		return 0
	}
	return int64(t / c.binDays)
}

// quantize converts a span of d days to integer bin units; one rounding
// per contribution, on the swarm's home shard, so downstream sums are
// exact.
func (c *windowConfig) quantize(d float64) uint64 {
	if d <= 0 {
		return 0
	}
	u := math.Round(d / c.binDays * winUnitsPerBin)
	if u <= 0 {
		return 0
	}
	return uint64(u)
}

// advance moves the ring head to absolute fine bin nb, folding fine
// bins that leave the window into their coarse bins and dropping coarse
// bins that age out of retention. Allocates the rings on first touch.
func (r *winRing) advance(c *windowConfig, nb int64) {
	if nb < 0 {
		nb = 0
	}
	if !r.inited() {
		r.fine = make([]winBin, c.fine)
		r.coarse = make([]winBin, c.coarse)
		r.fineHi = nb
		r.coarseHi = nb / int64(c.fold)
		return
	}
	if nb <= r.fineHi {
		return
	}
	nFine, nCoarse := int64(len(r.fine)), int64(len(r.coarse))
	// Advance the coarse ring first so evicted fine bins fold into
	// slots that are already positioned (and zeroed) for their index.
	if nc := nb / int64(c.fold); nc > r.coarseHi {
		steps := nc - r.coarseHi
		if steps > nCoarse {
			steps = nCoarse
		}
		for i := int64(1); i <= steps; i++ {
			r.coarse[(r.coarseHi+i)%nCoarse] = winBin{}
		}
		r.coarseHi = nc
	}
	// Fold the fine bins that fall out of [nb-nFine+1, nb]. Only live
	// indices need visiting, which bounds the loop at len(fine) no
	// matter how far the head jumps.
	lo := r.fineHi - nFine + 1
	if lo < 0 {
		lo = 0
	}
	evictTo := nb - nFine
	for b := lo; b <= evictTo && b <= r.fineHi; b++ {
		slot := &r.fine[b%nFine]
		if slot.zero() {
			continue
		}
		if cb := b / int64(c.fold); cb > r.coarseHi-nCoarse {
			cs := &r.coarse[cb%nCoarse]
			cs.covered += slot.covered
			cs.tracked += slot.tracked
			cs.busy += slot.busy
			cs.events += slot.events
		}
		*slot = winBin{}
	}
	r.fineHi = nb
}

// add lands units on absolute fine bin b: in the fine window directly,
// behind it via the covering coarse bin, beyond retention nowhere. The
// head must already be advanced past b.
func (r *winRing) add(c *windowConfig, b int64, bin winBin) {
	if b < 0 {
		b = 0
	}
	nFine := int64(len(r.fine))
	if b > r.fineHi-nFine { // b <= fineHi by the advance contract
		s := &r.fine[b%nFine]
		s.covered += bin.covered
		s.tracked += bin.tracked
		s.busy += bin.busy
		s.events += bin.events
		return
	}
	nCoarse := int64(len(r.coarse))
	cb := b / int64(c.fold)
	if cb > r.coarseHi-nCoarse && cb <= r.coarseHi {
		s := &r.coarse[cb%nCoarse]
		s.covered += bin.covered
		s.tracked += bin.tracked
		s.busy += bin.busy
		s.events += bin.events
	}
}

// accrue advances the swarm's observed clock from lo to hi days,
// crediting tracked time (and covered time when the swarm was seeded
// throughout — the caller passes the seed state in effect over the
// span) to every bin the span touches.
func (r *winRing) accrue(c *windowConfig, lo, hi float64, seeded bool) {
	if lo < 0 {
		lo = 0
	}
	head := c.binIndex(hi)
	r.advance(c, head)
	if hi <= lo {
		return
	}
	b0 := c.binIndex(lo)
	// Time below the retention horizon lands nowhere; skip straight to
	// the oldest bin that can still hold it.
	if floor := head - int64(c.fine) - int64(c.coarse)*int64(c.fold); b0 < floor {
		b0 = floor
	}
	for b := b0; b <= head; b++ {
		s := math.Max(lo, float64(b)*c.binDays)
		e := math.Min(hi, float64(b+1)*c.binDays)
		if e <= s {
			continue
		}
		u := c.quantize(e - s)
		bin := winBin{tracked: u}
		if seeded {
			bin.covered = u
		}
		r.add(c, b, bin)
	}
}

// mark lands per-event counters (one event, optionally one busy-period
// start) on the bin containing t. The ring is initialized if this is
// the swarm's first touch.
func (r *winRing) mark(c *windowConfig, t float64, busyStart bool) {
	b := c.binIndex(t)
	if !r.inited() || b > r.fineHi {
		r.advance(c, b)
	}
	bin := winBin{events: 1}
	if busyStart {
		bin.busy = 1
	}
	r.add(c, b, bin)
}

// fold adds the ring's live bins into the per-index aggregation maps
// (fine and coarse keyed separately; coarse keys are coarse-bin
// indices). Each nonempty bin counts this swarm once.
func (r *winRing) fold(fine, coarse map[int64]*WindowBinState) {
	if !r.inited() {
		return
	}
	nFine := int64(len(r.fine))
	for b := r.fineHi - nFine + 1; b <= r.fineHi; b++ {
		if b < 0 {
			continue
		}
		slot := &r.fine[b%nFine]
		if slot.zero() {
			continue
		}
		foldBin(fine, b, slot)
	}
	nCoarse := int64(len(r.coarse))
	for cb := r.coarseHi - nCoarse + 1; cb <= r.coarseHi; cb++ {
		if cb < 0 {
			continue
		}
		slot := &r.coarse[cb%nCoarse]
		if slot.zero() {
			continue
		}
		foldBin(coarse, cb, slot)
	}
}

func foldBin(m map[int64]*WindowBinState, idx int64, slot *winBin) {
	agg := m[idx]
	if agg == nil {
		agg = &WindowBinState{Index: idx}
		m[idx] = agg
	}
	agg.Covered += slot.covered
	agg.Tracked += slot.tracked
	agg.BusyStarts += slot.busy
	agg.Events += slot.events
	agg.Swarms++
}

// winBinRecord is the checkpoint wire form of one live ring bin.
type winBinRecord struct {
	Index   int64  `json:"i"`
	Covered uint64 `json:"c,omitempty"`
	Tracked uint64 `json:"t,omitempty"`
	Busy    uint64 `json:"b,omitempty"`
	Events  uint64 `json:"e,omitempty"`
}

// records returns the ring's nonempty bins in index order (nil when the
// ring was never touched). The head position is not serialized: it is
// always binIndex(lastEvent), which the swarm record carries already.
func (r *winRing) records() (fine, coarse []winBinRecord) {
	if !r.inited() {
		return nil, nil
	}
	nFine := int64(len(r.fine))
	for b := r.fineHi - nFine + 1; b <= r.fineHi; b++ {
		if b < 0 {
			continue
		}
		if slot := &r.fine[b%nFine]; !slot.zero() {
			fine = append(fine, winBinRecord{Index: b, Covered: slot.covered, Tracked: slot.tracked, Busy: slot.busy, Events: slot.events})
		}
	}
	nCoarse := int64(len(r.coarse))
	for cb := r.coarseHi - nCoarse + 1; cb <= r.coarseHi; cb++ {
		if cb < 0 {
			continue
		}
		if slot := &r.coarse[cb%nCoarse]; !slot.zero() {
			coarse = append(coarse, winBinRecord{Index: cb, Covered: slot.covered, Tracked: slot.tracked, Busy: slot.busy, Events: slot.events})
		}
	}
	return fine, coarse
}

// restore rebuilds the ring from checkpointed bins. The head comes from
// lastEvent, so a load under the same geometry reproduces the ring
// exactly; under a different geometry, out-of-window fine bins fold
// into coarse and out-of-retention bins drop — the same rules live
// eviction applies.
func (r *winRing) restore(c *windowConfig, lastEvent float64, fine, coarse []winBinRecord, touched bool) {
	if !touched && len(fine) == 0 && len(coarse) == 0 {
		return
	}
	r.advance(c, c.binIndex(lastEvent))
	nCoarse := int64(len(r.coarse))
	for _, rec := range coarse {
		if rec.Index > r.coarseHi-nCoarse && rec.Index <= r.coarseHi {
			s := &r.coarse[rec.Index%nCoarse]
			s.covered += rec.Covered
			s.tracked += rec.Tracked
			s.busy += rec.Busy
			s.events += rec.Events
		}
	}
	for _, rec := range fine {
		r.add(c, rec.Index, winBin{covered: rec.Covered, tracked: rec.Tracked, busy: rec.Busy, events: rec.Events})
	}
}

// WindowBinState is one time bin of a mergeable WindowState: integer
// unit sums across the contributing swarms. Index is the absolute bin
// index (fine-bin units in Fine, coarse-bin units in Coarse); bin b
// covers [b·width, (b+1)·width) days.
type WindowBinState struct {
	Index      int64  `json:"i"`
	Covered    uint64 `json:"covered,omitempty"`
	Tracked    uint64 `json:"tracked,omitempty"`
	BusyStarts uint64 `json:"busy_starts,omitempty"`
	Events     uint64 `json:"events,omitempty"`
	Swarms     uint64 `json:"swarms,omitempty"`
}

// WindowState is the mergeable wire form of the windowed aggregates —
// what a node serves on GET /v1/window/state and the gateway's
// scatter-gather merges. Merging is integer addition keyed by bin
// index, so any merge order over any partition of the swarms
// reproduces the single-engine state exactly.
type WindowState struct {
	// BinDays, FoldFactor, FineBins and CoarseBins are the window
	// geometry; states only merge when all four agree.
	BinDays    float64          `json:"bin_days"`
	FoldFactor int              `json:"fold_factor"`
	FineBins   int              `json:"fine_bins"`
	CoarseBins int              `json:"coarse_bins"`
	Fine       []WindowBinState `json:"fine,omitempty"`
	Coarse     []WindowBinState `json:"coarse,omitempty"`
}

// newWindowState returns an empty state carrying c's geometry.
func newWindowState(c *windowConfig) *WindowState {
	return &WindowState{BinDays: c.binDays, FoldFactor: c.fold, FineBins: c.fine, CoarseBins: c.coarse}
}

func (w *WindowState) geometryEqual(o *WindowState) bool {
	return w.BinDays == o.BinDays && w.FoldFactor == o.FoldFactor &&
		w.FineBins == o.FineBins && w.CoarseBins == o.CoarseBins
}

// Merge folds other into w. States must share geometry; a foreign
// geometry is an error, not a panic, because the inputs may come off
// the wire.
func (w *WindowState) Merge(other *WindowState) error {
	if other == nil {
		return nil
	}
	if !w.geometryEqual(other) {
		return fmt.Errorf("ingest: merging window states with different geometry (%v/%d/%d/%d vs %v/%d/%d/%d)",
			w.BinDays, w.FoldFactor, w.FineBins, w.CoarseBins,
			other.BinDays, other.FoldFactor, other.FineBins, other.CoarseBins)
	}
	w.Fine = mergeBins(w.Fine, other.Fine)
	w.Coarse = mergeBins(w.Coarse, other.Coarse)
	return nil
}

func mergeBins(a, b []WindowBinState) []WindowBinState {
	if len(b) == 0 {
		return a
	}
	m := make(map[int64]*WindowBinState, len(a)+len(b))
	for _, lists := range [2][]WindowBinState{a, b} {
		for i := range lists {
			bin := lists[i]
			agg := m[bin.Index]
			if agg == nil {
				cp := bin
				m[bin.Index] = &cp
				continue
			}
			agg.Covered += bin.Covered
			agg.Tracked += bin.Tracked
			agg.BusyStarts += bin.BusyStarts
			agg.Events += bin.Events
			agg.Swarms += bin.Swarms
		}
	}
	return sortedBins(m)
}

func sortedBins(m map[int64]*WindowBinState) []WindowBinState {
	out := make([]WindowBinState, 0, len(m))
	for _, bin := range m {
		out = append(out, *bin)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Downsample folds every fine bin at or below cutoff (an absolute
// fine-bin index) into its coarse bin — the retention operation, made
// explicit so the property tests can check it commutes with Merge.
func (w *WindowState) Downsample(cutoff int64) {
	if len(w.Fine) == 0 {
		return
	}
	keep := w.Fine[:0]
	coarse := make(map[int64]*WindowBinState, len(w.Coarse)+len(w.Fine))
	for i := range w.Coarse {
		cp := w.Coarse[i]
		coarse[cp.Index] = &cp
	}
	for _, bin := range w.Fine {
		if bin.Index > cutoff {
			keep = append(keep, bin)
			continue
		}
		cb := bin.Index / int64(w.FoldFactor)
		agg := coarse[cb]
		if agg == nil {
			agg = &WindowBinState{Index: cb}
			coarse[cb] = agg
		}
		agg.Covered += bin.Covered
		agg.Tracked += bin.Tracked
		agg.BusyStarts += bin.BusyStarts
		agg.Events += bin.Events
		agg.Swarms += bin.Swarms
	}
	w.Fine = keep
	w.Coarse = sortedBins(coarse)
}

// MaxIndex returns the newest absolute fine-bin index the state covers
// (coarse bins are converted to the upper edge of their span), and
// false when the state is empty.
func (w *WindowState) MaxIndex() (int64, bool) {
	var hi int64
	ok := false
	if n := len(w.Fine); n > 0 {
		hi, ok = w.Fine[n-1].Index, true
	}
	if n := len(w.Coarse); n > 0 {
		if c := (w.Coarse[n-1].Index+1)*int64(w.FoldFactor) - 1; !ok || c > hi {
			hi, ok = c, true
		}
	}
	return hi, ok
}
