package ingest

import (
	"encoding/json"
	"math/rand"
	"testing"

	"swarmavail/internal/trace"
	"swarmavail/internal/wal"
)

// windowJSON is the byte-level identity the merge algebra promises:
// equal WindowStates render to equal bytes.
func windowJSON(t *testing.T, w *WindowState) string {
	t.Helper()
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// studyOpsBySwarm generates a study and groups each swarm's ops; the
// partition tests route whole swarms, which is the invariant cluster
// sharding maintains.
func studyOpsBySwarm(numSwarms int, seed int64) [][]Op {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(numSwarms, seed))
	groups := make([][]Op, 0, len(traces))
	for _, tr := range traces {
		groups = append(groups, TraceOps(tr))
	}
	return groups
}

// TestWindowMergePartitionInvariant is the clustering property behind
// the gateway's byte-identical windowed answers: split the swarms over
// K engines any way, merge the K WindowStates in any order, and the
// result is byte-identical to the WindowState of one engine that saw
// the whole stream.
func TestWindowMergePartitionInvariant(t *testing.T) {
	groups := studyOpsBySwarm(60, 7)
	cfg := Config{Shards: 3, WindowFineBins: 16, WindowFoldFactor: 4, WindowCoarseBins: 8}

	ref := New(cfg)
	for _, ops := range groups {
		if err := ref.Submit(ops); err != nil {
			t.Fatal(err)
		}
	}
	refWin := ref.Window()
	want := windowJSON(t, refWin)
	ref.Close()

	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{1, 2, 5} {
		parts := make([]*WindowState, k)
		for i := 0; i < k; i++ {
			e := New(cfg)
			for gi, ops := range groups {
				if gi%k != i {
					continue
				}
				if err := e.Submit(ops); err != nil {
					t.Fatal(err)
				}
			}
			parts[i] = e.Window()
			e.Close()
		}
		// Any merge order must agree: try a few random permutations.
		for trial := 0; trial < 4; trial++ {
			order := rng.Perm(k)
			wc := cfg.withDefaults(1).windowConfig()
			merged := newWindowState(&wc)
			for _, i := range order {
				if err := merged.Merge(parts[i]); err != nil {
					t.Fatal(err)
				}
			}
			if got := windowJSON(t, merged); got != want {
				t.Fatalf("K=%d order %v: merged window diverged from single-engine reference\n--- merged ---\n%s\n--- reference ---\n%s", k, order, got, want)
			}
		}
	}
}

// TestWindowDownsampleMergeCommute pins the retention algebra:
// downsampling each partition and then merging gives the same state as
// merging first and downsampling the result, for any cutoff.
func TestWindowDownsampleMergeCommute(t *testing.T) {
	groups := studyOpsBySwarm(40, 13)
	cfg := Config{Shards: 2, WindowFineBins: 16, WindowFoldFactor: 4, WindowCoarseBins: 8}

	const k = 3
	parts := make([]*WindowState, k)
	for i := 0; i < k; i++ {
		e := New(cfg)
		for gi, ops := range groups {
			if gi%k != i {
				continue
			}
			if err := e.Submit(ops); err != nil {
				t.Fatal(err)
			}
		}
		parts[i] = e.Window()
		e.Close()
	}

	clone := func(w *WindowState) *WindowState {
		b, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		var out WindowState
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatal(err)
		}
		return &out
	}
	wc := cfg.withDefaults(1).windowConfig()
	hi := int64(0)
	for _, p := range parts {
		if m, ok := p.MaxIndex(); ok && m > hi {
			hi = m
		}
	}
	for _, cutoff := range []int64{-1, 0, hi / 2, hi, hi + 10} {
		mergeFirst := newWindowState(&wc)
		for _, p := range parts {
			if err := mergeFirst.Merge(clone(p)); err != nil {
				t.Fatal(err)
			}
		}
		mergeFirst.Downsample(cutoff)

		downFirst := newWindowState(&wc)
		for _, p := range parts {
			c := clone(p)
			c.Downsample(cutoff)
			if err := downFirst.Merge(c); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := windowJSON(t, downFirst), windowJSON(t, mergeFirst); got != want {
			t.Fatalf("cutoff %d: downsample/merge do not commute\n--- downsample-then-merge ---\n%s\n--- merge-then-downsample ---\n%s", cutoff, got, want)
		}
	}
}

// TestCheckpointWindowRoundTripExact pins the checkpoint-v3 frame: the
// window rings survive a checkpoint/recover cycle bit-for-bit, so a
// restarted (or promoted) node serves the same windowed answers.
func TestCheckpointWindowRoundTripExact(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 3, WindowFineBins: 16, WindowFoldFactor: 4, WindowCoarseBins: 8}
	e, _, err := OpenDurable(cfg, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for _, ops := range studyOpsBySwarm(50, 21) {
		if err := e.Submit(ops); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	want := windowJSON(t, e.Window())
	wantSnap := windowJSON(t, e.Snapshot().Window)
	if want != wantSnap {
		t.Fatalf("flushed snapshot window diverged from barrier window\n--- snapshot ---\n%s\n--- barrier ---\n%s", wantSnap, want)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2, _, err := OpenDurable(cfg, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := windowJSON(t, e2.Window()); got != want {
		t.Fatalf("window state did not survive checkpoint recovery\n--- recovered ---\n%s\n--- original ---\n%s", got, want)
	}
	if got := windowJSON(t, e2.Snapshot().Window); got != want {
		t.Fatalf("recovered snapshot window diverged\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
