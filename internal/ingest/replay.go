package ingest

import (
	"sync"

	"swarmavail/internal/trace"
)

// publisherID derives a stable synthetic peer id for a swarm's archived
// publisher sessions (the study traces don't name the publisher).
func publisherID(swarmID int) uint64 { return uint64(swarmID)<<1 | 1 }

// TraceOps converts one archived availability-study record into its op
// stream: a registration followed by the publisher's online/offline
// transitions in session order. Replaying these through an engine
// reproduces the offline availability analysis exactly.
func TraceOps(t trace.SwarmTrace) []Op {
	ops := make([]Op, 0, 1+2*len(t.SeedSessions))
	ops = append(ops, MetaOp(t.Meta, t.MonitoredDays))
	pid := publisherID(t.Meta.ID)
	for _, s := range t.SeedSessions {
		ops = append(ops,
			EventOp(Record{SwarmID: t.Meta.ID, PeerID: pid, Seed: true, Online: true, Time: s.Start}),
			EventOp(Record{SwarmID: t.Meta.ID, PeerID: pid, Seed: true, Online: false, Time: s.End}),
		)
	}
	return ops
}

// ReplayTraces streams an availability-study dataset through the engine
// using `writers` concurrent producers and returns the number of swarms
// replayed. Each swarm's ops are produced by exactly one writer, so
// per-swarm ordering (and with it offline/online exactness) is
// preserved regardless of concurrency. The engine is flushed before
// returning.
func ReplayTraces(e *Engine, sc trace.Source[trace.SwarmTrace], writers int) (int, error) {
	n, err := replay(e, sc, writers, func(w *Writer, t trace.SwarmTrace) error {
		for _, op := range TraceOps(t) {
			if err := w.Put(op); err != nil {
				return err
			}
		}
		return nil
	})
	return n, err
}

// ReplaySnapshots streams a census dataset through the engine with
// `writers` concurrent producers.
func ReplaySnapshots(e *Engine, sc trace.Source[trace.Snapshot], writers int) (int, error) {
	return replay(e, sc, writers, func(w *Writer, s trace.Snapshot) error {
		return w.ObserveCensus(s)
	})
}

func replay[T any](e *Engine, sc trace.Source[T], writers int, put func(*Writer, T) error) (int, error) {
	if writers < 1 {
		writers = 1
	}
	ch := make(chan T, 4*writers)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := e.NewWriter()
			for rec := range ch {
				if errs[i] != nil {
					continue // keep draining so the producer can't deadlock
				}
				errs[i] = put(w, rec)
			}
			if err := w.Flush(); err != nil && errs[i] == nil {
				errs[i] = err
			}
		}(i)
	}
	n := 0
	for sc.Scan() {
		ch <- sc.Record()
		n++
	}
	close(ch)
	wg.Wait()
	e.Flush()
	if err := sc.Err(); err != nil {
		return n, err
	}
	for _, err := range errs {
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
