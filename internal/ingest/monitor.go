package ingest

import (
	"hash/fnv"
	"sort"
)

// This file maps live monitor probes onto the trace schema: a btmon
// fleet observes swarm membership round by round, but the engine
// ingests online/offline *transitions*. ProbeDiff is the stateful
// differ that turns consecutive membership snapshots into exactly the
// Records the offline trace analysis would have contained.

// PeerObservation is one peer as a probe round saw it.
type PeerObservation struct {
	// Key identifies the peer across rounds (use ObservationKey on a
	// stable address).
	Key uint64
	// Seed reports whether the peer advertised a complete bitfield.
	Seed bool
}

// ObservationKey derives a stable peer id from an observed address
// (FNV-1a, the same cheap non-cryptographic choice the shard hash
// uses). Monitors across a fleet hashing the same address agree on the
// id without coordination.
func ObservationKey(addr string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	return h.Sum64()
}

// ProbeDiff diffs successive probe rounds of one swarm into event ops.
// Not safe for concurrent use; each monitor owns one.
type ProbeDiff struct {
	swarmID int
	last    map[uint64]bool // peers seen last round → seed flag
}

// NewProbeDiff creates a differ for one swarm, starting from an empty
// membership (every peer in the first round appears as an arrival).
func NewProbeDiff(swarmID int) *ProbeDiff {
	return &ProbeDiff{swarmID: swarmID, last: make(map[uint64]bool)}
}

// Ops diffs one probe round against the previous one and returns the
// transitions: a new peer comes online, a vanished peer goes offline,
// and a peer whose seed flag flipped (leecher completed the download)
// goes offline as its old role and online as its new one — matching how
// the trace schema models role changes. tDays is the observation time
// in days since swarm creation. Output order is deterministic
// (arrivals/flips in obs order after dedup, departures sorted by key).
func (d *ProbeDiff) Ops(tDays float64, obs []PeerObservation) []Op {
	cur := make(map[uint64]bool, len(obs))
	var ops []Op
	for _, o := range obs {
		if _, dup := cur[o.Key]; dup {
			continue // same peer observed twice in one round
		}
		cur[o.Key] = o.Seed
		prev, seen := d.last[o.Key]
		switch {
		case !seen:
			ops = append(ops, EventOp(Record{
				SwarmID: d.swarmID, PeerID: o.Key, Seed: o.Seed, Online: true, Time: tDays,
			}))
		case prev != o.Seed:
			ops = append(ops,
				EventOp(Record{SwarmID: d.swarmID, PeerID: o.Key, Seed: prev, Online: false, Time: tDays}),
				EventOp(Record{SwarmID: d.swarmID, PeerID: o.Key, Seed: o.Seed, Online: true, Time: tDays}),
			)
		}
	}
	departed := make([]uint64, 0)
	for key := range d.last {
		if _, still := cur[key]; !still {
			departed = append(departed, key)
		}
	}
	sort.Slice(departed, func(i, j int) bool { return departed[i] < departed[j] })
	for _, key := range departed {
		ops = append(ops, EventOp(Record{
			SwarmID: d.swarmID, PeerID: key, Seed: d.last[key], Online: false, Time: tDays,
		}))
	}
	d.last = cur
	return ops
}

// Close emits the final departures: every peer still online goes
// offline at tDays, so the swarm's availability interval is closed when
// monitoring stops. The differ is reset and reusable.
func (d *ProbeDiff) Close(tDays float64) []Op {
	return d.Ops(tDays, nil)
}
