package ingest

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"swarmavail/internal/obs"
	"swarmavail/internal/wal"
)

// checkpointVersion versions the checkpoint file layout. Version 2
// appends one mandatory dedup frame (the per-source exactly-once
// windows, JSON) after the shard frames; version 3 adds the window-ring
// bins to each swarm record (win_fine/win_coarse, sparse). Older files
// still load: version 1 with empty dedup windows, versions 1–2 with
// empty window rings that re-seed from subsequent events.
const checkpointVersion = 3

// checkpointsKept is how many checkpoint files survive pruning: the
// newest plus one fallback in case the newest is torn by a crash
// mid-rename (shouldn't happen — rename is atomic — but disks lie).
const checkpointsKept = 2

// DurabilityConfig parameterises OpenDurable. Only Dir is required.
type DurabilityConfig struct {
	// Dir holds the WAL segments (wal-*.seg) and checkpoint files
	// (checkpoint-*.bin). Created if missing.
	Dir string
	// Fsync selects the WAL sync policy (default wal.SyncEachAppend:
	// an acked Submit survives SIGKILL).
	Fsync wal.SyncPolicy
	// SyncEvery is the background fsync cadence under wal.SyncInterval.
	SyncEvery time.Duration
	// SegmentBytes overrides the WAL segment rotation threshold.
	SegmentBytes int64
}

// RecoveryStats reports what OpenDurable found on disk.
type RecoveryStats struct {
	// CheckpointSeq is the WAL sequence the loaded checkpoint covers
	// (0 = no checkpoint, cold start).
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// CheckpointSwarms is the number of swarms restored from it.
	CheckpointSwarms int `json:"checkpoint_swarms"`
	// ReplayedFrames / ReplayedOps count the WAL tail replayed on top.
	ReplayedFrames uint64 `json:"replayed_frames"`
	ReplayedOps    uint64 `json:"replayed_ops"`
	// TruncatedBytes and DroppedSegments echo the WAL's torn-tail
	// repair (wal.OpenStats).
	TruncatedBytes  int64 `json:"truncated_bytes"`
	DroppedSegments int   `json:"dropped_segments"`
	// BadFrameSeq is non-zero when a frame's envelope was valid but its
	// payload failed to decode; the log was cut there (TruncateFrom) so
	// every future boot sees the same prefix this one replayed.
	BadFrameSeq uint64 `json:"bad_frame_seq,omitempty"`
}

// CheckpointStats reports one Engine.Checkpoint call.
type CheckpointStats struct {
	// Seq is the WAL sequence the checkpoint covers.
	Seq uint64 `json:"seq"`
	// Swarms is the number of swarms captured.
	Swarms int `json:"swarms"`
	// Bytes is the checkpoint file size.
	Bytes int64 `json:"bytes"`
	// Duration is the wall time spent, gate acquisition included.
	Duration time.Duration `json:"duration"`
	// Skipped is true when nothing was journaled since the previous
	// checkpoint and no file was written.
	Skipped bool `json:"skipped"`
}

// ErrNotDurable is returned by Checkpoint on an engine without a
// journal (one built by New rather than OpenDurable).
var ErrNotDurable = errors.New("ingest: engine has no durability layer")

// checkpointHeader is frame 0 of a checkpoint file.
type checkpointHeader struct {
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
	Shards  int    `json:"shards"`
	Swarms  int    `json:"swarms"`
}

// OpenDurable opens (or cold-starts) a durable engine rooted at
// d.Dir: it loads the newest readable checkpoint, replays the WAL tail
// beyond it through the normal apply path, and returns an engine whose
// every subsequently accepted batch is journaled before it is
// acknowledged (under the default fsync policy). The swarm keyspace is
// re-partitioned by the engine's current shard count, so cfg.Shards may
// differ from the run that wrote the checkpoint.
func OpenDurable(cfg Config, d DurabilityConfig) (*Engine, RecoveryStats, error) {
	var rs RecoveryStats
	if d.Dir == "" {
		return nil, rs, errors.New("ingest: DurabilityConfig.Dir is required")
	}
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return nil, rs, err
	}
	e := newEngine(cfg)

	// 1. Newest readable checkpoint → shard maps (still single-threaded).
	ckptSeq, swarms, dedupRecs, err := loadNewestCheckpoint(d.Dir, e.shards)
	if err != nil {
		return nil, rs, err
	}
	rs.CheckpointSeq, rs.CheckpointSwarms = ckptSeq, swarms
	e.dedup.install(dedupRecs)

	// 2. Open the journal, repairing any torn tail.
	reg := e.metrics.reg
	log, ws, err := wal.Open(d.Dir, wal.Options{
		SegmentBytes:      d.SegmentBytes,
		Policy:            d.Fsync,
		SyncEvery:         d.SyncEvery,
		FsyncSeconds:      reg.Histogram("wal_fsync_seconds", obs.LatencyBuckets),
		SegmentBytesGauge: reg.Gauge("wal_segment_bytes"),
	})
	if err != nil {
		return nil, rs, err
	}
	rs.TruncatedBytes, rs.DroppedSegments = ws.TruncatedBytes, ws.DroppedSegments

	// 3. Replay the tail through the ordinary apply path. The journal is
	// not attached yet, so replayed batches are not re-journaled — they
	// are already in the log, at the sequences being read.
	e.start()
	replayed := reg.Counter("recovery_replayed_total")
	var badSeq uint64
	replayErr := log.Replay(ckptSeq+1, func(seq uint64, payload []byte) error {
		source, batchSeq, ops, derr := decodeFrame(payload)
		if derr != nil {
			badSeq = seq
			return derr
		}
		if serr := e.Submit(ops); serr != nil {
			return serr
		}
		if source != "" {
			// The journal already arbitrated this key (SubmitKeyed only
			// journals first applications), so replay just re-marks it.
			e.dedup.observe(source, batchSeq)
		}
		rs.ReplayedFrames++
		rs.ReplayedOps += uint64(len(ops))
		replayed.Add(uint64(len(ops)))
		return nil
	})
	if replayErr != nil {
		if badSeq == 0 {
			// Not a decode failure (Submit error or envelope corruption
			// that slipped past Open's repair): refuse to serve a state
			// we cannot trust.
			log.Close()
			e.Close()
			return nil, rs, replayErr
		}
		// A well-framed but undecodable payload: cut the log at the bad
		// frame so this boot's state and every later boot's agree.
		rs.BadFrameSeq = badSeq
		if terr := log.TruncateFrom(badSeq); terr != nil {
			log.Close()
			e.Close()
			return nil, rs, terr
		}
	}

	// 4. Keep sequence numbers monotonic past the checkpoint even when
	// the journal tail was shorter than it (lost or repaired away):
	// frames ≤ ckptSeq are replayed history and must never be reused.
	if err := log.AdvanceTo(ckptSeq); err != nil {
		log.Close()
		e.Close()
		return nil, rs, err
	}

	e.Flush() // replay fully applied before the first producer sees the engine
	e.journal = newJournal(log, reg)
	e.journal.lastCkpt = ckptSeq
	return e, rs, nil
}

// WAL returns the engine's journal log, or nil for an engine without a
// durability layer (one built by New). The cluster's WAL-shipping
// endpoints read from it with Tail, which is safe alongside the
// engine's appends.
func (e *Engine) WAL() *wal.Log {
	if e.journal == nil {
		return nil
	}
	return e.journal.log
}

// DurableDir returns the durability directory (WAL segments and
// checkpoint files), or "" for a non-durable engine.
func (e *Engine) DurableDir() string {
	if e.journal == nil {
		return ""
	}
	return e.journal.log.Dir()
}

// NewestCheckpoint reports the newest checkpoint file in dir: its path
// and the WAL sequence it covers. ok is false when dir holds no
// checkpoint. The WAL-shipping bootstrap path serves this file to a
// follower whose catch-up point has been truncated out of the journal.
func NewestCheckpoint(dir string) (path string, seq uint64, ok bool, err error) {
	seqs, err := listCheckpoints(dir)
	if err != nil || len(seqs) == 0 {
		return "", 0, false, err
	}
	return checkpointPath(dir, seqs[0]), seqs[0], true, nil
}

// Checkpoint serializes the engine's full state to a checkpoint file in
// the durability directory and drops the WAL segments it makes
// redundant. Concurrent producers stall only for the snapshot capture
// (per-shard state copy), not for the file write. Calling it on a
// closed engine still works — the drained final state is captured —
// provided the engine was closed by Close (which leaves checkpointing
// to the caller) rather than crashed.
func (e *Engine) Checkpoint() (CheckpointStats, error) {
	var cs CheckpointStats
	j := e.journal
	if j == nil {
		return cs, ErrNotDurable
	}
	start := time.Now()
	defer func() { cs.Duration = time.Since(start) }()

	j.gate.Lock()
	defer j.gate.Unlock()
	// With the gate held exclusively, every journaled batch has been
	// sent to its shard queue (enqueue spans append+send under RLock),
	// so a persist message queued now observes everything ≤ seq.
	seq := j.log.LastSeq()
	if seq == j.lastCkpt {
		cs.Seq, cs.Skipped = seq, true
		return cs, nil
	}

	snaps := make([]*shardSnapshot, 0, len(e.shards))
	if e.enter() {
		ch := make(chan *shardSnapshot, len(e.shards))
		for _, s := range e.shards {
			s.in <- shardMsg{persist: ch}
		}
		for range e.shards {
			snaps = append(snaps, <-ch)
		}
		e.exit()
	} else {
		// Closed: the drain is complete once done closes, and the shard
		// goroutines have exited — their state is safe to read in place.
		<-e.done
		for _, s := range e.shards {
			snaps = append(snaps, s.snapshot())
		}
	}
	sort.Slice(snaps, func(i, k int) bool { return snaps[i].Idx < snaps[k].Idx })
	for _, s := range snaps {
		cs.Swarms += len(s.Swarms)
	}

	// The gate is held exclusively, so no keyed submit is mid-mark: the
	// windows captured here are exactly the ones the journaled prefix
	// ≤ seq produced.
	bytes, err := writeCheckpoint(j.log.Dir(), seq, len(e.shards), snaps, e.dedup.records())
	if err != nil {
		return cs, err
	}
	cs.Seq, cs.Bytes = seq, bytes
	e.metrics.checkpointSeconds.Observe(time.Since(start).Seconds())

	// Space reclamation is best-effort: replay starts from the
	// checkpoint's seq regardless, so a failed truncate or prune costs
	// disk, not correctness.
	if err := j.log.TruncateThrough(seq); err != nil && !errors.Is(err, wal.ErrClosed) {
		return cs, err
	}
	if err := pruneCheckpoints(j.log.Dir()); err != nil {
		return cs, err
	}
	j.lastCkpt = seq
	return cs, nil
}

func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016d.bin", seq))
}

// writeCheckpoint renders the snapshot to checkpoint-<seq>.bin via a
// fsynced temp file + atomic rename: the file either exists whole and
// checksummed or not at all.
func writeCheckpoint(dir string, seq uint64, shards int, snaps []*shardSnapshot, dedup []dedupRecord) (int64, error) {
	tmp, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return 0, err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	var swarms int
	for _, s := range snaps {
		swarms += len(s.Swarms)
	}
	hdr, err := json.Marshal(checkpointHeader{Version: checkpointVersion, Seq: seq, Shards: shards, Swarms: swarms})
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	var scratch []byte
	writeFrame := func(payload []byte) error {
		scratch = wal.AppendFrame(scratch[:0], payload)
		_, werr := w.Write(scratch)
		return werr
	}
	if err := writeFrame(hdr); err != nil {
		return 0, err
	}
	for _, s := range snaps {
		payload, merr := json.Marshal(s)
		if merr != nil {
			return 0, merr
		}
		if err := writeFrame(payload); err != nil {
			return 0, err
		}
	}
	// v2: one mandatory dedup frame after the shard frames (an empty
	// window table still writes "[]" so the reader never guesses).
	if dedup == nil {
		dedup = []dedupRecord{}
	}
	dedupPayload, err := json.Marshal(dedup)
	if err != nil {
		return 0, err
	}
	if err := writeFrame(dedupPayload); err != nil {
		return 0, err
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, err
	}
	size, err := tmp.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	tmp = nil
	if err := os.Rename(name, checkpointPath(dir, seq)); err != nil {
		os.Remove(name)
		return 0, err
	}
	syncDirBestEffort(dir)
	return size, nil
}

// listCheckpoints returns the checkpoint sequences present in dir,
// newest first.
func listCheckpoints(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".bin") {
			continue
		}
		seq, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".bin"), 10, 64)
		if perr != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, k int) bool { return seqs[i] > seqs[k] })
	return seqs, nil
}

// loadNewestCheckpoint installs the newest readable checkpoint into the
// shards and returns its sequence. A torn or corrupt checkpoint is
// skipped in favour of the next older one — recovery degrades to a
// longer WAL replay, never a refusal to start.
func loadNewestCheckpoint(dir string, shards []*shard) (uint64, int, []dedupRecord, error) {
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return 0, 0, nil, err
	}
	for _, seq := range seqs {
		swarms, dedup, lerr := loadCheckpoint(checkpointPath(dir, seq), seq, shards)
		if lerr == nil {
			return seq, swarms, dedup, nil
		}
		// Reset any partial install and fall back to the next older
		// checkpoint.
		for _, s := range shards {
			clear(s.swarms)
			clear(s.cats)
		}
	}
	return 0, 0, nil, nil
}

// loadCheckpoint reads one checkpoint file into the shards, routing
// each swarm by the *current* hash (the checkpoint's shard count need
// not match).
func loadCheckpoint(path string, wantSeq uint64, shards []*shard) (int, []dedupRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	r := wal.NewFrameReader(bufio.NewReaderSize(f, 1<<20))

	frame, err := r.Next()
	if err != nil {
		return 0, nil, fmt.Errorf("ingest: checkpoint header: %w", err)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(frame, &hdr); err != nil {
		return 0, nil, fmt.Errorf("ingest: checkpoint header: %w", err)
	}
	if hdr.Version < 1 || hdr.Version > checkpointVersion {
		return 0, nil, fmt.Errorf("ingest: checkpoint version %d not supported", hdr.Version)
	}
	if hdr.Seq != wantSeq {
		return 0, nil, fmt.Errorf("ingest: checkpoint header seq %d does not match file name %d", hdr.Seq, wantSeq)
	}

	// Parse everything before installing anything, so a torn tail can't
	// leave half a checkpoint in the shard maps.
	snaps := make([]*shardSnapshot, 0, hdr.Shards)
	for i := 0; i < hdr.Shards; i++ {
		frame, err := r.Next()
		if err != nil {
			return 0, nil, fmt.Errorf("ingest: checkpoint shard frame %d/%d: %w", i, hdr.Shards, err)
		}
		snap := &shardSnapshot{}
		if err := json.Unmarshal(frame, snap); err != nil {
			return 0, nil, fmt.Errorf("ingest: checkpoint shard frame %d/%d: %w", i, hdr.Shards, err)
		}
		snaps = append(snaps, snap)
	}
	var dedup []dedupRecord
	if hdr.Version >= 2 {
		frame, err := r.Next()
		if err != nil {
			return 0, nil, fmt.Errorf("ingest: checkpoint dedup frame: %w", err)
		}
		if err := json.Unmarshal(frame, &dedup); err != nil {
			return 0, nil, fmt.Errorf("ingest: checkpoint dedup frame: %w", err)
		}
	}

	var swarms int
	n := len(shards)
	for _, snap := range snaps {
		routed := make(map[int]*shardSnapshot)
		for _, rec := range snap.Swarms {
			dst := shardIndex(rec.ID, n)
			rs, ok := routed[dst]
			if !ok {
				rs = &shardSnapshot{Idx: dst}
				routed[dst] = rs
			}
			rs.Swarms = append(rs.Swarms, rec)
			swarms++
		}
		// Category counters are additive across shards; land the old
		// shard's counters on one current shard, preserving totals.
		if len(snap.Cats) > 0 {
			dst := snap.Idx % n
			rs, ok := routed[dst]
			if !ok {
				rs = &shardSnapshot{Idx: dst}
				routed[dst] = rs
			}
			rs.Cats = snap.Cats
		}
		for dst, rs := range routed {
			shards[dst].install(rs)
		}
	}
	return swarms, dedup, nil
}

// pruneCheckpoints removes all but the checkpointsKept newest files.
func pruneCheckpoints(dir string) error {
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs[min(len(seqs), checkpointsKept):] {
		if err := os.Remove(checkpointPath(dir, seq)); err != nil {
			return err
		}
	}
	return nil
}

// syncDirBestEffort fsyncs dir so the checkpoint rename is durable.
func syncDirBestEffort(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
