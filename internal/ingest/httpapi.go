// HTTP response rendering shared by cmd/availd (single node) and
// cmd/availgw (cluster gateway). Keeping the encoding in one place is
// what makes the gateway's merged answers byte-identical to a single
// node's: both sides render the same structs with the same encoder
// settings, so equality of the underlying Summary is equality of the
// bytes on the wire.
package ingest

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"swarmavail/internal/measure"
)

// WriteJSON renders v as indented JSON with the shared encoder settings.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// SummaryResponse is the GET /v1/summary body: the summary's public
// counters plus the §2 headline fractions.
type SummaryResponse struct {
	*Summary
	Headlines measure.StudyHeadlines `json:"headlines"`
}

// WriteSummary renders sum as a /v1/summary response.
func WriteSummary(w http.ResponseWriter, sum *Summary) {
	WriteJSON(w, SummaryResponse{Summary: sum, Headlines: sum.Headlines()})
}

// DefaultCDFQuantiles is the quantile list served when the request does
// not name one.
var DefaultCDFQuantiles = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}

// CDFResponse is the GET /v1/availability/cdf body.
type CDFResponse struct {
	Swarms     int                `json:"swarms"`
	FirstMonth map[string]float64 `json:"first_month_quantiles"`
	Full       map[string]float64 `json:"full_quantiles"`
	// ToleranceAbs is the sketch resolution: every quantile is within
	// this of the exact order statistic.
	ToleranceAbs float64                `json:"tolerance_abs"`
	Headlines    measure.StudyHeadlines `json:"headlines"`
}

// NewCDFResponse evaluates sum's availability sketches at qs.
func NewCDFResponse(sum *Summary, qs []float64) CDFResponse {
	resp := CDFResponse{
		Swarms:       sum.StudySwarms,
		FirstMonth:   make(map[string]float64, len(qs)),
		Full:         make(map[string]float64, len(qs)),
		ToleranceAbs: sum.Full.Resolution(),
		Headlines:    sum.Headlines(),
	}
	for _, q := range qs {
		key := strconv.FormatFloat(q, 'g', -1, 64)
		resp.FirstMonth[key] = sum.FirstMonth.Quantile(q)
		resp.Full[key] = sum.Full.Quantile(q)
	}
	return resp
}

// WriteCDF renders sum's quantiles at qs as a /v1/availability/cdf
// response.
func WriteCDF(w http.ResponseWriter, sum *Summary, qs []float64) {
	WriteJSON(w, NewCDFResponse(sum, qs))
}

// ParseQuantiles parses a ?q=0.25,0.5,… list; an empty argument selects
// DefaultCDFQuantiles.
func ParseQuantiles(arg string) ([]float64, error) {
	if arg == "" {
		return DefaultCDFQuantiles, nil
	}
	var qs []float64
	for _, part := range strings.Split(arg, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || q < 0 || q > 1 {
			return nil, fmt.Errorf("bad quantile list")
		}
		qs = append(qs, q)
	}
	return qs, nil
}

// WriteState renders sum's full mergeable wire form — the scatter-gather
// payload served on GET /v1/state.
func WriteState(w http.ResponseWriter, sum *Summary) {
	WriteJSON(w, sum.State())
}

// ParseWindowDays parses a ?d= window length: a Go duration ("24h",
// "30m") or a bare number of days ("7"). Empty selects one day.
func ParseWindowDays(arg string) (float64, error) {
	if arg == "" {
		return 1, nil
	}
	if dur, err := time.ParseDuration(arg); err == nil {
		if dur <= 0 {
			return 0, fmt.Errorf("window must be positive")
		}
		return dur.Hours() / 24, nil
	}
	d, err := strconv.ParseFloat(arg, 64)
	if err != nil || d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
		return 0, fmt.Errorf("bad window %q (want a duration like 24h or a number of days)", arg)
	}
	return d, nil
}

// WindowBin is one rendered time bin of a windowed response. Day spans
// and availabilities are derived from the integer WindowState sums at
// render time, so identical states render to identical bytes.
type WindowBin struct {
	Index    int64   `json:"index"`
	StartDay float64 `json:"start_day"`
	EndDay   float64 `json:"end_day"`
	// Availability is covered/tracked within the bin (0 when nothing
	// was tracked); TrackedDays and CoveredDays are the underlying
	// observed and seeded time.
	Availability float64 `json:"availability"`
	TrackedDays  float64 `json:"tracked_days"`
	CoveredDays  float64 `json:"covered_days"`
	BusyStarts   uint64  `json:"busy_starts,omitempty"`
	Events       uint64  `json:"events,omitempty"`
	Swarms       uint64  `json:"swarms,omitempty"`
}

// renderBins converts the trailing n state bins (ending at the newest
// present index) to their rendered form; binDays is the bin width of
// the slice being rendered.
func renderBins(bins []WindowBinState, binDays float64, n int64) []WindowBin {
	if len(bins) == 0 || n <= 0 {
		return nil
	}
	hi := bins[len(bins)-1].Index
	lo := hi - n + 1
	out := make([]WindowBin, 0, n)
	for _, b := range bins {
		if b.Index < lo {
			continue
		}
		rb := WindowBin{
			Index:       b.Index,
			StartDay:    float64(b.Index) * binDays,
			EndDay:      float64(b.Index+1) * binDays,
			TrackedDays: float64(b.Tracked) / winUnitsPerBin * binDays,
			CoveredDays: float64(b.Covered) / winUnitsPerBin * binDays,
			BusyStarts:  b.BusyStarts,
			Events:      b.Events,
			Swarms:      b.Swarms,
		}
		if b.Tracked > 0 {
			rb.Availability = float64(b.Covered) / float64(b.Tracked)
		}
		out = append(out, rb)
	}
	return out
}

// WindowResponse is the GET /v1/availability/window body: the trailing
// window of time bins at the finest resolution that covers the
// requested span, plus the aggregate availability over it.
type WindowResponse struct {
	// WindowDays is the requested span; BinDays the width of the bins
	// actually served; Resolution names which ring they came from.
	WindowDays float64 `json:"window_days"`
	BinDays    float64 `json:"bin_days"`
	Resolution string  `json:"resolution"` // "fine" or "coarse"
	// Availability is covered/tracked summed over the returned bins.
	Availability float64     `json:"availability"`
	Bins         []WindowBin `json:"bins"`
}

// NewWindowResponse renders the trailing days-long window of win. Spans
// that fit in the fine ring serve full-resolution bins; longer spans
// fall back to the coarse (downsampled) ring, clamped to retention.
func NewWindowResponse(win *WindowState, days float64) WindowResponse {
	resp := WindowResponse{WindowDays: days, BinDays: win.BinDays, Resolution: "fine"}
	bins, n := win.Fine, int64(math.Ceil(days/win.BinDays))
	if n > int64(win.FineBins) {
		resp.Resolution = "coarse"
		resp.BinDays = win.BinDays * float64(win.FoldFactor)
		bins, n = win.Coarse, int64(math.Ceil(days/resp.BinDays))
		if n > int64(win.CoarseBins) {
			n = int64(win.CoarseBins)
		}
	}
	resp.Bins = renderBins(bins, resp.BinDays, n)
	resp.Availability = windowAvailability(bins, n)
	return resp
}

// windowAvailability is covered/tracked over the trailing n state bins.
func windowAvailability(bins []WindowBinState, n int64) float64 {
	if len(bins) == 0 || n <= 0 {
		return 0
	}
	lo := bins[len(bins)-1].Index - n + 1
	var covered, tracked uint64
	for _, b := range bins {
		if b.Index < lo {
			continue
		}
		covered += b.Covered
		tracked += b.Tracked
	}
	if tracked == 0 {
		return 0
	}
	return float64(covered) / float64(tracked)
}

// WriteWindow renders win's trailing window as a
// /v1/availability/window response.
func WriteWindow(w http.ResponseWriter, win *WindowState, days float64) {
	WriteJSON(w, NewWindowResponse(win, days))
}

// TimelineResponse is the GET /v1/swarm/{id}/timeline body: one swarm's
// full windowed history — per-bin availability and busy-period starts
// at fine resolution, plus the downsampled tail.
type TimelineResponse struct {
	SwarmID       int         `json:"swarm_id"`
	BinDays       float64     `json:"bin_days"`
	Bins          []WindowBin `json:"bins"`
	CoarseBinDays float64     `json:"coarse_bin_days"`
	CoarseBins    []WindowBin `json:"coarse_bins,omitempty"`
}

// NewTimelineResponse renders a per-swarm WindowState (from
// Engine.Timeline) in full.
func NewTimelineResponse(id int, win *WindowState) TimelineResponse {
	coarseDays := win.BinDays * float64(win.FoldFactor)
	return TimelineResponse{
		SwarmID:       id,
		BinDays:       win.BinDays,
		Bins:          renderBins(win.Fine, win.BinDays, int64(win.FineBins)),
		CoarseBinDays: coarseDays,
		CoarseBins:    renderBins(win.Coarse, coarseDays, int64(win.CoarseBins)),
	}
}

// NotModified handles HTTP conditional GETs: it stamps etag on the
// response and, when the request's If-None-Match already holds it,
// writes 304 and reports true (the caller skips the body).
func NotModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	if etag == "" {
		return false
	}
	w.Header().Set("ETag", etag)
	for _, cand := range strings.Split(r.Header.Get("If-None-Match"), ",") {
		cand = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(cand), "W/"))
		if cand == etag || cand == "*" {
			w.WriteHeader(http.StatusNotModified)
			return true
		}
	}
	return false
}
