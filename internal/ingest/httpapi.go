// HTTP response rendering shared by cmd/availd (single node) and
// cmd/availgw (cluster gateway). Keeping the encoding in one place is
// what makes the gateway's merged answers byte-identical to a single
// node's: both sides render the same structs with the same encoder
// settings, so equality of the underlying Summary is equality of the
// bytes on the wire.
package ingest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"swarmavail/internal/measure"
)

// WriteJSON renders v as indented JSON with the shared encoder settings.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// SummaryResponse is the GET /v1/summary body: the summary's public
// counters plus the §2 headline fractions.
type SummaryResponse struct {
	*Summary
	Headlines measure.StudyHeadlines `json:"headlines"`
}

// WriteSummary renders sum as a /v1/summary response.
func WriteSummary(w http.ResponseWriter, sum *Summary) {
	WriteJSON(w, SummaryResponse{Summary: sum, Headlines: sum.Headlines()})
}

// DefaultCDFQuantiles is the quantile list served when the request does
// not name one.
var DefaultCDFQuantiles = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}

// CDFResponse is the GET /v1/availability/cdf body.
type CDFResponse struct {
	Swarms     int                `json:"swarms"`
	FirstMonth map[string]float64 `json:"first_month_quantiles"`
	Full       map[string]float64 `json:"full_quantiles"`
	// ToleranceAbs is the sketch resolution: every quantile is within
	// this of the exact order statistic.
	ToleranceAbs float64                `json:"tolerance_abs"`
	Headlines    measure.StudyHeadlines `json:"headlines"`
}

// NewCDFResponse evaluates sum's availability sketches at qs.
func NewCDFResponse(sum *Summary, qs []float64) CDFResponse {
	resp := CDFResponse{
		Swarms:       sum.StudySwarms,
		FirstMonth:   make(map[string]float64, len(qs)),
		Full:         make(map[string]float64, len(qs)),
		ToleranceAbs: sum.Full.Resolution(),
		Headlines:    sum.Headlines(),
	}
	for _, q := range qs {
		key := strconv.FormatFloat(q, 'g', -1, 64)
		resp.FirstMonth[key] = sum.FirstMonth.Quantile(q)
		resp.Full[key] = sum.Full.Quantile(q)
	}
	return resp
}

// WriteCDF renders sum's quantiles at qs as a /v1/availability/cdf
// response.
func WriteCDF(w http.ResponseWriter, sum *Summary, qs []float64) {
	WriteJSON(w, NewCDFResponse(sum, qs))
}

// ParseQuantiles parses a ?q=0.25,0.5,… list; an empty argument selects
// DefaultCDFQuantiles.
func ParseQuantiles(arg string) ([]float64, error) {
	if arg == "" {
		return DefaultCDFQuantiles, nil
	}
	var qs []float64
	for _, part := range strings.Split(arg, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || q < 0 || q > 1 {
			return nil, fmt.Errorf("bad quantile list")
		}
		qs = append(qs, q)
	}
	return qs, nil
}

// WriteState renders sum's full mergeable wire form — the scatter-gather
// payload served on GET /v1/state.
func WriteState(w http.ResponseWriter, sum *Summary) {
	WriteJSON(w, sum.State())
}
