package ingest

import "sync"

// Idempotency and epoch headers shared by the HTTP client, availd's
// ingest handler, and the cluster gateway. They live here (not in
// internal/cluster) because cluster already imports ingest and the
// client stamps them on every keyed push.
const (
	// HeaderSource carries the idempotency source id (a stable name for
	// one sender) on POST /v1/ingest.
	HeaderSource = "X-Ingest-Source"
	// HeaderSeq carries the batch sequence within the source; together
	// (source, seq) name one batch across retries.
	HeaderSeq = "X-Ingest-Seq"
	// HeaderEpoch carries the cluster slot epoch. Requests stamped with
	// it are fenced by the node's epoch gate; responses always echo the
	// node's current epoch.
	HeaderEpoch = "X-Avail-Epoch"
)

// dedupWindowSize is how many batch sequences below a source's
// high-watermark stay individually tracked. Sequences at or below
// max−dedupWindowSize are assumed already seen: a sender never has
// anywhere near this many batches in flight (retries keep their
// original seq), so anything that old can only be a replay.
const dedupWindowSize = 1024

// sourceWindow is one source's exactly-once state: the highest batch
// sequence observed plus the set of individually seen sequences inside
// the trailing window (pushes from one client can complete out of
// order, so a plain high-watermark would misclassify a late first
// attempt as a duplicate).
type sourceWindow struct {
	mu   sync.Mutex
	max  uint64
	seen map[uint64]struct{}
}

// observed reports whether seq was already applied. Caller holds mu.
func (w *sourceWindow) observed(seq uint64) bool {
	if w.max >= dedupWindowSize && seq <= w.max-dedupWindowSize {
		return true
	}
	_, ok := w.seen[seq]
	return ok
}

// mark records seq as applied and evicts sequences that fell out of the
// window. Caller holds mu.
func (w *sourceWindow) mark(seq uint64) {
	if w.seen == nil {
		w.seen = make(map[uint64]struct{})
	}
	w.seen[seq] = struct{}{}
	if seq > w.max {
		w.max = seq
	}
	// Evict lazily, once the map has grown well past the window, so a
	// steady in-order stream pays one sweep per window, not per batch.
	if len(w.seen) >= 2*dedupWindowSize && w.max >= dedupWindowSize {
		floor := w.max - dedupWindowSize
		for s := range w.seen {
			if s <= floor {
				delete(w.seen, s)
			}
		}
	}
}

// dedupState is the engine's per-source window table. Sources are
// never evicted (a monitor fleet is a bounded population; see DESIGN.md
// §11 for the accounting).
type dedupState struct {
	mu      sync.Mutex
	sources map[string]*sourceWindow
}

// window returns source's window, creating it on first use.
func (d *dedupState) window(source string) *sourceWindow {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sources == nil {
		d.sources = make(map[string]*sourceWindow)
	}
	w, ok := d.sources[source]
	if !ok {
		w = &sourceWindow{}
		d.sources[source] = w
	}
	return w
}

// observe marks (source, seq) as applied — the recovery-replay path,
// where no duplicate check is needed (the journal already decided).
func (d *dedupState) observe(source string, seq uint64) {
	w := d.window(source)
	w.mu.Lock()
	w.mark(seq)
	w.mu.Unlock()
}

// dedupRecord is one source's window in checkpoint wire form.
type dedupRecord struct {
	Source string   `json:"source"`
	Max    uint64   `json:"max"`
	Seen   []uint64 `json:"seen,omitempty"`
}

// records snapshots every window, sorted by source for deterministic
// checkpoint bytes. Checkpoint calls it with the journal gate held
// exclusively, so no keyed submit is concurrently marking.
func (d *dedupState) records() []dedupRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]dedupRecord, 0, len(d.sources))
	for source, w := range d.sources {
		w.mu.Lock()
		rec := dedupRecord{Source: source, Max: w.max, Seen: make([]uint64, 0, len(w.seen))}
		for s := range w.seen {
			rec.Seen = append(rec.Seen, s)
		}
		w.mu.Unlock()
		sortUint64s(rec.Seen)
		out = append(out, rec)
	}
	sortDedupRecords(out)
	return out
}

// install replaces the table with recs — recovery only, before any
// producer exists.
func (d *dedupState) install(recs []dedupRecord) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sources = make(map[string]*sourceWindow, len(recs))
	for _, rec := range recs {
		w := &sourceWindow{max: rec.Max}
		if len(rec.Seen) > 0 {
			w.seen = make(map[uint64]struct{}, len(rec.Seen))
			for _, s := range rec.Seen {
				w.seen[s] = struct{}{}
			}
		}
		d.sources[rec.Source] = w
	}
}

// SubmitKeyed applies ops exactly once per (source, seq) idempotency
// key: the first call delivers the batch, any retry of the same key is
// acknowledged without re-applying (applied=false, err=nil, and the
// duplicate is counted in ingest_deduped_total). An empty source
// degrades to plain at-least-once Submit.
//
// On a durable engine the whole keyed batch is journaled as one frame —
// key and ops together — before any shard sees it, so a crash can never
// apply a batch while forgetting its key (or vice versa), and WAL
// shipping carries the window to followers: a batch retried across a
// failover is deduplicated by the promoted follower too.
//
// Keyed batches always use Block delivery regardless of cfg.OnFull:
// shedding a journaled batch would resurrect at recovery exactly what
// the shed dropped, breaking the exactly-once ledger.
func (e *Engine) SubmitKeyed(source string, seq uint64, ops []Op) (applied bool, err error) {
	if source == "" {
		return true, e.Submit(ops)
	}
	if len(ops) == 0 {
		return true, nil
	}
	if !e.enter() {
		return false, ErrClosed
	}
	defer e.exit()
	w := e.dedup.window(source)

	if e.journal == nil {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.observed(seq) {
			e.metrics.deduped.Add(uint64(len(ops)))
			return false, nil
		}
		e.deliver(ops)
		w.mark(seq)
		return true, nil
	}

	frame, err := e.journal.encodeKeyed(source, seq, ops)
	if err != nil {
		return false, err
	}
	// Lock order: journal gate before window — Checkpoint holds the gate
	// exclusively while snapshotting windows, so taking the window first
	// here would deadlock. Holding the window across append+deliver also
	// serialises retries of the same key: the loser of the race observes
	// the winner's mark.
	e.journal.gate.RLock()
	defer e.journal.gate.RUnlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.observed(seq) {
		e.journal.release(frame)
		e.metrics.deduped.Add(uint64(len(ops)))
		return false, nil
	}
	if err := e.journal.append(frame, len(ops)); err != nil {
		return false, err
	}
	e.deliver(ops)
	w.mark(seq)
	return true, nil
}

// SubmitFrame applies one already-encoded wire frame (the v1/v2 ops
// codec — exactly the bytes a binary stream DATA frame carries). This
// is the streaming ingest hot path's whole point: the frame is decoded
// once, and on a durable engine the received bytes are appended to the
// journal verbatim — no intermediate structs, no re-encode — so the
// wire format, the WAL format and the recovery format are one format.
//
// Keyed (v2) frames ride the same exactly-once windows as SubmitKeyed:
// a replayed frame is acknowledged (applied=false, err=nil) without
// re-applying and counted in ingest_deduped_total. A frame that fails
// to decode is rejected before any state — journal or shards — is
// touched.
func (e *Engine) SubmitFrame(frame []byte) (applied bool, err error) {
	// Decode into a pooled scratch slice: deliver copies ops into the
	// per-shard batches before returning, so the decode buffer is dead by
	// the time the deferred put runs.
	scratch := e.pool.get(0)
	source, seq, ops, err := decodeFrameInto(scratch, frame)
	if err != nil {
		e.pool.put(scratch)
		return false, err
	}
	defer e.pool.put(ops)
	if len(ops) == 0 {
		return true, nil
	}
	if !e.enter() {
		return false, ErrClosed
	}
	defer e.exit()

	if source == "" {
		if e.journal == nil {
			e.deliver(ops)
			return true, nil
		}
		e.journal.gate.RLock()
		defer e.journal.gate.RUnlock()
		if err := e.journal.appendRaw(frame, len(ops)); err != nil {
			return false, err
		}
		e.deliver(ops)
		return true, nil
	}

	w := e.dedup.window(source)
	if e.journal == nil {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.observed(seq) {
			e.metrics.deduped.Add(uint64(len(ops)))
			return false, nil
		}
		e.deliver(ops)
		w.mark(seq)
		return true, nil
	}
	// Same lock order as SubmitKeyed: journal gate before window.
	e.journal.gate.RLock()
	defer e.journal.gate.RUnlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.observed(seq) {
		e.metrics.deduped.Add(uint64(len(ops)))
		return false, nil
	}
	if err := e.journal.appendRaw(frame, len(ops)); err != nil {
		return false, err
	}
	e.deliver(ops)
	w.mark(seq)
	return true, nil
}

// deliver partitions ops and block-sends one pooled batch per shard
// touched, without journaling (the caller already has) and without
// shedding (see SubmitKeyed). The caller must hold an enter()
// registration.
func (e *Engine) deliver(ops []Op) {
	defer e.metrics.records.Add(uint64(len(ops)))
	if len(e.shards) == 1 {
		batch := e.pool.get(len(ops))
		batch = append(batch, ops...)
		e.shards[0].in <- shardMsg{ops: batch}
		return
	}
	var parts [][]Op
	if v := e.parts.Get(); v != nil {
		parts = *(v.(*[][]Op))
	} else {
		parts = make([][]Op, len(e.shards))
	}
	// Same cold-start sizing rationale as Submit's fan-out.
	hint := len(ops)/len(e.shards) + len(ops)/8 + 8
	for _, op := range ops {
		i := shardIndex(op.SwarmID(), len(e.shards))
		if parts[i] == nil {
			parts[i] = e.pool.get(hint)
		}
		parts[i] = append(parts[i], op)
	}
	for i, part := range parts {
		if len(part) > 0 {
			e.shards[i].in <- shardMsg{ops: part}
		}
		parts[i] = nil
	}
	e.parts.Put(&parts)
}

func sortUint64s(s []uint64) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}

func sortDedupRecords(recs []dedupRecord) {
	for i := 1; i < len(recs); i++ {
		for k := i; k > 0 && recs[k].Source < recs[k-1].Source; k-- {
			recs[k], recs[k-1] = recs[k-1], recs[k]
		}
	}
}
