package ingest

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"time"
)

// Snapshot is the engine-wide lock-free read view: the merged Summary
// and windowed aggregate of every shard's published snapshot, tagged
// with an epoch (total ops applied as of the snapshot) and the derived
// HTTP ETag. Snapshots are immutable and shared between readers — treat
// every reachable structure as read-only.
type Snapshot struct {
	Summary *Summary
	Window  *WindowState
	// Epoch is the sum of the shard apply watermarks the snapshot
	// reflects. Watermarks never decrease, so equal epochs ⇒ identical
	// state and the epoch is a sound cache validator.
	Epoch uint64
	// ETag is the strong HTTP validator for this snapshot:
	// "<engine-nonce>-<epoch>". The per-incarnation nonce keeps a
	// client's cached epoch from validating against a restarted engine
	// whose watermark happens to match.
	ETag string
}

// mergedSnap memoizes one merged Snapshot keyed by the per-shard
// snapshot pointers it was built from.
type mergedSnap struct {
	parts []*shardSnap
	snap  Snapshot
}

func (m *mergedSnap) matches(parts []*shardSnap) bool {
	if len(m.parts) != len(parts) {
		return false
	}
	for i, p := range parts {
		if m.parts[i] != p {
			return false
		}
	}
	return true
}

// snapNonce returns the per-engine ETag nonce.
func snapNonce() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		return hex.EncodeToString(b[:])
	}
	return strconv.FormatUint(uint64(time.Now().UnixNano()), 16)
}

// freshSnap returns shard s's published snapshot, first nudging a
// republish through the queue when the snapshot is both behind the
// shard's apply watermark and older than SnapshotMaxAge. Under
// sustained writes the shard republishes on its own and the nudge never
// fires; on an idle engine the queue is empty and the barrier costs two
// channel hops. Either way the returned snapshot is at most
// SnapshotMaxAge behind the applied stream.
func (e *Engine) freshSnap(s *shard) *shardSnap {
	snap := s.snap.Load()
	if s.applied.Load() == snap.epoch || time.Since(snap.built) <= e.cfg.SnapshotMaxAge {
		return snap
	}
	if !e.enter() {
		// Closed: the final publish after drain is the complete state.
		<-e.done
		return s.snap.Load()
	}
	defer e.exit()
	ack := make(chan struct{}, 1)
	s.in <- shardMsg{ack: ack}
	<-ack
	// The shard publishes before acknowledging, so this reload observes
	// everything applied before the barrier.
	return s.snap.Load()
}

// Snapshot returns the engine-wide read view without touching the shard
// queues (readers cost the writers nothing): one atomic load per shard,
// plus a merge that is memoized on the per-shard snapshot pointers —
// back-to-back calls under a quiet engine hit the cache
// (read_cache_hits_total) and return the identical Snapshot.
//
// The view is consistent per shard and at most SnapshotMaxAge stale; it
// may interleave shards mid-write. For a full barrier read use
// Summary/Window (the ?consistent=1 path).
func (e *Engine) Snapshot() Snapshot {
	parts := make([]*shardSnap, len(e.shards))
	for i, s := range e.shards {
		parts[i] = e.freshSnap(s)
	}
	if c := e.snapCache.Load(); c != nil && c.matches(parts) {
		e.metrics.readCacheHits.Add(1)
		return c.snap
	}
	sum := NewSummary()
	wc := e.cfg.windowConfig()
	win := newWindowState(&wc)
	var epoch uint64
	for _, p := range parts {
		sum.Merge(p.sum)
		_ = win.Merge(p.win) // same engine ⇒ same geometry
		epoch += p.epoch
	}
	snap := Snapshot{
		Summary: sum,
		Window:  win,
		Epoch:   epoch,
		ETag:    fmt.Sprintf("%q", e.snapNonce+"-"+strconv.FormatUint(epoch, 10)),
	}
	e.snapCache.Store(&mergedSnap{parts: parts, snap: snap})
	return snap
}

// SwarmSnapshot returns one swarm's stats from the lock-free snapshot
// path (at most SnapshotMaxAge stale; Swarm is the barrier variant).
func (e *Engine) SwarmSnapshot(id int) (SwarmStats, bool) {
	st, ok := e.freshSnap(e.shardFor(id)).swarms[id]
	return st, ok
}

// Window requests the windowed aggregate from every shard through the
// queues and merges them — the barrier (?consistent=1) counterpart of
// Snapshot().Window. It observes everything submitted before the call.
func (e *Engine) Window() *WindowState {
	wc := e.cfg.windowConfig()
	win := newWindowState(&wc)
	if !e.enter() {
		<-e.done
		for _, s := range e.shards {
			_ = win.Merge(s.windowize())
		}
		return win
	}
	defer e.exit()
	ch := make(chan *WindowState, len(e.shards))
	for _, s := range e.shards {
		s.in <- shardMsg{window: ch}
	}
	for range e.shards {
		_ = win.Merge(<-ch)
	}
	return win
}

// Timeline returns one swarm's windowed history (per-bin observed and
// seeded time, busy-period starts, event counts) as a barrier read
// through the owning shard's queue. ok is false for unknown swarms.
func (e *Engine) Timeline(id int) (*WindowState, bool) {
	s := e.shardFor(id)
	if !e.enter() {
		<-e.done
		w := s.timelineOf(id)
		return w, w != nil
	}
	defer e.exit()
	ch := make(chan *WindowState, 1)
	s.in <- shardMsg{timelineID: id, timeline: ch}
	w := <-ch
	return w, w != nil
}

// registerSnapshotGauges exposes the read path's health:
// ingest_snapshot_age_seconds is the worst shard snapshot staleness
// (zero when every snapshot is caught up with its watermark);
// ingest_window_bins is the resident windowed-aggregate size across
// shards. Both read only atomics and published snapshots — never the
// shard queues — so scraping them is free for writers.
func (e *Engine) registerSnapshotGauges() {
	e.metrics.reg.GaugeFunc("ingest_snapshot_age_seconds", func() float64 {
		var worst float64
		now := time.Now()
		for _, s := range e.shards {
			snap := s.snap.Load()
			if s.applied.Load() == snap.epoch {
				continue
			}
			if age := now.Sub(snap.built).Seconds(); age > worst {
				worst = age
			}
		}
		return worst
	})
	e.metrics.reg.GaugeFunc("ingest_window_bins", func() float64 {
		var n int
		for _, s := range e.shards {
			snap := s.snap.Load()
			n += len(snap.win.Fine) + len(snap.win.Coarse)
		}
		return float64(n)
	})
}
