package ingest

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"swarmavail/internal/obs"
	"swarmavail/internal/trace"
	"swarmavail/internal/wal"
)

// opsCodecVersion versions the WAL frame payload: a batch of Ops. Bump
// it on any layout change; decodeOps rejects unknown versions so an old
// binary never misreads a new journal.
const opsCodecVersion = 1

// keyedCodecVersion marks a frame carrying a (source, seq) idempotency
// key ahead of a complete v1 ops payload:
//
//	[ver=2][u16 len(source)][source bytes][u64 seq][v1 ops frame]
//
// Keying the frame itself — rather than journaling a separate marker —
// makes the batch and its key one atomic durability unit: a crash can
// never journal the ops while losing the key, or vice versa, and WAL
// shipping carries the dedup window to followers for free.
const keyedCodecVersion = 2

// maxSourceLen bounds the idempotency source id so a corrupt frame
// cannot claim an absurd header.
const maxSourceLen = 256

// Event ops use a fixed-width binary layout (the hot path: one frame
// per flushed batch, almost all events); registration and census ops
// carry their bulky payloads as length-prefixed JSON, reusing the
// types' existing tags.
const (
	eventWireBytes = 1 + 8 + 8 + 1 + 8 // kind + swarm + peer + flags + time
	auxWireMin     = 1 + 4             // kind + payload length
)

// metaWire is the JSON form of a registration op.
type metaWire struct {
	Meta        trace.SwarmMeta `json:"meta"`
	HorizonDays float64         `json:"horizon_days"`
}

// encodeOps appends the wire form of ops to dst: a version byte, an op
// count, then each op.
func encodeOps(dst []byte, ops []Op) ([]byte, error) {
	dst = append(dst, opsCodecVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ops)))
	for _, op := range ops {
		switch op.kind {
		case opEvent:
			dst = append(dst, byte(opEvent))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(op.rec.SwarmID))
			dst = binary.LittleEndian.AppendUint64(dst, op.rec.PeerID)
			var flags byte
			if op.rec.Seed {
				flags |= 1
			}
			if op.rec.Online {
				flags |= 2
			}
			dst = append(dst, flags)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(op.rec.Time))
		case opMeta:
			payload, err := json.Marshal(metaWire{Meta: op.aux.meta, HorizonDays: op.aux.horizon})
			if err != nil {
				return nil, err
			}
			dst = append(dst, byte(opMeta))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
			dst = append(dst, payload...)
		case opCensus:
			payload, err := json.Marshal(op.aux.census)
			if err != nil {
				return nil, err
			}
			dst = append(dst, byte(opCensus))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
			dst = append(dst, payload...)
		default:
			return nil, fmt.Errorf("ingest: cannot encode op kind %d", op.kind)
		}
	}
	return dst, nil
}

// encodeKeyedOps appends the keyed (v2) wire form of ops to dst: the
// key header followed by the complete v1 encoding.
// opsHeaderSize is the fixed v1 frame prefix: version byte + op count.
const opsHeaderSize = 1 + 4

// keyedHeaderSize is the v2 prefix in front of the embedded v1 frame:
// version byte, source length + bytes, sequence number.
func keyedHeaderSize(source string) int { return 1 + 2 + len(source) + 8 }

func encodeKeyedOps(dst []byte, source string, seq uint64, ops []Op) ([]byte, error) {
	if source == "" || len(source) > maxSourceLen {
		return nil, fmt.Errorf("ingest: bad idempotency source length %d", len(source))
	}
	dst = append(dst, keyedCodecVersion)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(source)))
	dst = append(dst, source...)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	return encodeOps(dst, ops)
}

// decodeFrame parses one WAL frame of either codec version: keyed (v2)
// frames yield their idempotency key, plain (v1) frames yield
// source == "". Like decodeOps it is total — corrupt headers return
// errors, never panics.
func decodeFrame(data []byte) (source string, seq uint64, ops []Op, err error) {
	return decodeFrameInto(nil, data)
}

// decodeFrameInto is decodeFrame decoding into dst's backing array
// (regrown as needed) — the hot ingest path feeds it a pooled scratch
// slice so a frame decode costs no steady-state allocation.
func decodeFrameInto(dst []Op, data []byte) (source string, seq uint64, ops []Op, err error) {
	if len(data) == 0 {
		return "", 0, nil, fmt.Errorf("ingest: empty journal frame")
	}
	if data[0] != keyedCodecVersion {
		ops, err = decodeOpsInto(dst, data)
		return "", 0, ops, err
	}
	if len(data) < 3 {
		return "", 0, nil, fmt.Errorf("ingest: keyed journal frame too short (%d bytes)", len(data))
	}
	srclen := int(binary.LittleEndian.Uint16(data[1:3]))
	if srclen == 0 || srclen > maxSourceLen {
		return "", 0, nil, fmt.Errorf("ingest: bad keyed frame source length %d", srclen)
	}
	if len(data) < 3+srclen+8 {
		return "", 0, nil, fmt.Errorf("ingest: keyed journal frame truncated in header")
	}
	source = string(data[3 : 3+srclen])
	seq = binary.LittleEndian.Uint64(data[3+srclen : 3+srclen+8])
	ops, err = decodeOpsInto(dst, data[3+srclen+8:])
	if err != nil {
		return "", 0, nil, err
	}
	return source, seq, ops, nil
}

// decodeOps parses one WAL frame back into ops. It is total: any input
// — truncated, oversized counts, unknown kinds, bad JSON — returns an
// error, never a panic or an over-allocation, because recovery feeds it
// frames whose envelope checksum passed but whose payload may still be
// foreign (a frame written by a different build, say).
func decodeOps(data []byte) ([]Op, error) { return decodeOpsInto(nil, data) }

// decodeOpsInto appends into dst's backing array when it has the
// capacity, regrowing otherwise; see decodeFrameInto.
func decodeOpsInto(dst []Op, data []byte) ([]Op, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("ingest: journal frame too short (%d bytes)", len(data))
	}
	if v := data[0]; v != opsCodecVersion {
		return nil, fmt.Errorf("ingest: unknown journal codec version %d", v)
	}
	count := binary.LittleEndian.Uint32(data[1:5])
	data = data[5:]
	// Every op occupies at least auxWireMin bytes, so a count claiming
	// more ops than the payload could hold is corruption, not a reason
	// to allocate.
	if uint64(count)*auxWireMin > uint64(len(data)) {
		return nil, fmt.Errorf("ingest: journal frame claims %d ops in %d bytes", count, len(data))
	}
	ops := dst[:0]
	if cap(ops) < int(count) {
		ops = make([]Op, 0, count)
	}
	for i := uint32(0); i < count; i++ {
		if len(data) == 0 {
			return nil, fmt.Errorf("ingest: journal frame truncated at op %d/%d", i, count)
		}
		kind := opKind(data[0])
		switch kind {
		case opEvent:
			if len(data) < eventWireBytes {
				return nil, fmt.Errorf("ingest: truncated event op at %d/%d", i, count)
			}
			rec := Record{
				SwarmID: int(int64(binary.LittleEndian.Uint64(data[1:9]))),
				PeerID:  binary.LittleEndian.Uint64(data[9:17]),
				Seed:    data[17]&1 != 0,
				Online:  data[17]&2 != 0,
				Time:    math.Float64frombits(binary.LittleEndian.Uint64(data[18:26])),
			}
			ops = append(ops, EventOp(rec))
			data = data[eventWireBytes:]
		case opMeta, opCensus:
			if len(data) < auxWireMin {
				return nil, fmt.Errorf("ingest: truncated op header at %d/%d", i, count)
			}
			n := binary.LittleEndian.Uint32(data[1:5])
			if uint64(n) > uint64(len(data)-auxWireMin) {
				return nil, fmt.Errorf("ingest: op payload length %d exceeds frame at %d/%d", n, i, count)
			}
			payload := data[auxWireMin : auxWireMin+int(n)]
			if kind == opMeta {
				var w metaWire
				if err := json.Unmarshal(payload, &w); err != nil {
					return nil, fmt.Errorf("ingest: registration op: %w", err)
				}
				ops = append(ops, MetaOp(w.Meta, w.HorizonDays))
			} else {
				var snap trace.Snapshot
				if err := json.Unmarshal(payload, &snap); err != nil {
					return nil, fmt.Errorf("ingest: census op: %w", err)
				}
				ops = append(ops, CensusOp(snap))
			}
			data = data[auxWireMin+int(n):]
		default:
			return nil, fmt.Errorf("ingest: unknown op kind %d at %d/%d", kind, i, count)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("ingest: %d trailing bytes after %d ops", len(data), count)
	}
	return ops, nil
}

// DecodeFrame parses one journal/wire frame of either codec version:
// keyed (v2) frames yield their idempotency key, plain (v1) frames
// yield source == "". It is total — corrupt input returns an error,
// never a panic. Exported for the cluster gateway's binary stream
// forwarding and for cross-package protocol tests; the engine's own
// paths use it through SubmitFrame.
func DecodeFrame(frame []byte) (source string, seq uint64, ops []Op, err error) {
	return decodeFrame(frame)
}

// EncodeFrame appends the wire form of ops to dst: the keyed (v2)
// layout when source is non-empty, the plain (v1) layout otherwise.
// The bytes are exactly what a WAL frame or a binary stream DATA frame
// carries — the two formats are one format.
func EncodeFrame(dst []byte, source string, seq uint64, ops []Op) ([]byte, error) {
	if source == "" {
		return encodeOps(dst, ops)
	}
	return encodeKeyedOps(dst, source, seq, ops)
}

// journal couples the engine's write path to a wal.Log. Its gate is the
// checkpoint/append ordering lock: enqueue holds it shared across the
// journal-append *and* the queue send, so when Checkpoint acquires it
// exclusively, every journaled batch is also in its shard queue (Block)
// or every delivered batch is journaled (Shed) — and a persist message
// queued afterwards therefore observes everything the journal covers.
type journal struct {
	gate sync.RWMutex
	log  *wal.Log

	// lastCkpt (under gate, exclusive) is the sequence of the newest
	// checkpoint, letting Checkpoint skip when nothing was appended
	// since.
	lastCkpt uint64

	appended *obs.Counter // wal_appended_total: ops made durable
	bufs     sync.Pool    // *[]byte frame-encoding scratch
}

func newJournal(log *wal.Log, reg *obs.Registry) *journal {
	return &journal{log: log, appended: reg.Counter("wal_appended_total")}
}

// encode renders ops into a pooled scratch buffer. The caller must hand
// the buffer back via j.release after the append.
func (j *journal) encode(ops []Op) ([]byte, error) {
	var buf []byte
	if v := j.bufs.Get(); v != nil {
		buf = (*(v.(*[]byte)))[:0]
	}
	return encodeOps(buf, ops)
}

// encodeKeyed renders a keyed batch into a pooled scratch buffer. The
// caller must hand the buffer back via j.append or j.release.
func (j *journal) encodeKeyed(source string, seq uint64, ops []Op) ([]byte, error) {
	var buf []byte
	if v := j.bufs.Get(); v != nil {
		buf = (*(v.(*[]byte)))[:0]
	}
	return encodeKeyedOps(buf, source, seq, ops)
}

// append journals one pre-encoded frame and releases the buffer.
func (j *journal) append(frame []byte, nOps int) error {
	_, err := j.log.Append(frame)
	j.bufs.Put(&frame)
	if err == nil {
		j.appended.Add(uint64(nOps))
	}
	return err
}

// appendRaw journals one wire-received frame verbatim. Unlike append it
// never pools the buffer: the bytes belong to the caller (a stream
// reader's reusable frame buffer), and the wal.Log copies them into its
// own scratch before Append returns.
func (j *journal) appendRaw(frame []byte, nOps int) error {
	_, err := j.log.Append(frame)
	if err == nil {
		j.appended.Add(uint64(nOps))
	}
	return err
}

// release returns an encode buffer without appending it (shed path).
func (j *journal) release(frame []byte) { j.bufs.Put(&frame) }
