package ingest

import (
	"strconv"
	"time"

	"swarmavail/internal/obs"
)

// Metrics owns the engine's operational instruments, all registered on
// an obs.Registry: ingest volume, shed counts, per-shard applied
// counters, batch sizes and per-batch apply latency. Counter and
// histogram updates are single atomic operations — nothing on the
// per-record hot path takes a lock.
//
// The registry is the single source of truth: MetricsSnapshot is built
// from it in one place (snapshot), so a scrape of /metrics and a call
// to Engine.Metrics can never disagree.
type Metrics struct {
	start time.Time
	reg   *obs.Registry

	records       *obs.Counter   // ops accepted by Submit/Writer
	deduped       *obs.Counter   // keyed ops acked without re-applying (duplicates)
	shed          *obs.Counter   // ops dropped by the Shed overflow policy
	writerDropped *obs.Counter   // buffered Writer ops lost to Close (see ClosedError)
	batches       *obs.Counter   // batches applied
	applied       []*obs.Counter // ops applied, labeled shard="i"
	batchLatency  *obs.Histogram // batch apply seconds
	batchSize     *obs.Histogram // ops per batch
	batchSizeMax  *obs.Gauge     // high-water batch size
	readCacheHits *obs.Counter   // merged-snapshot reads served from cache

	// checkpointSeconds times Engine.Checkpoint end to end. Registered
	// unconditionally (zero-valued on non-durable engines) so the
	// series set is stable across configurations.
	checkpointSeconds *obs.Histogram
}

// newMetrics registers the engine's instruments on reg (a private
// registry when nil, so Engine.Metrics works without one). Sharing one
// registry between two live engines merges their series; run one
// engine per registry.
func newMetrics(reg *obs.Registry, shards int) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Metrics{
		start:         time.Now(),
		reg:           reg,
		records:       reg.Counter("ingest_records_total"),
		deduped:       reg.Counter("ingest_deduped_total"),
		shed:          reg.Counter("ingest_shed_total"),
		writerDropped: reg.Counter("ingest_writer_dropped_total"),
		batches:       reg.Counter("ingest_batches_total"),
		batchLatency:  reg.Histogram("ingest_batch_apply_seconds", obs.LatencyBuckets),
		batchSize:     reg.Histogram("ingest_batch_size", obs.SizeBuckets),
		batchSizeMax:  reg.Gauge("ingest_batch_size_max"),
		readCacheHits: reg.Counter("read_cache_hits_total"),

		checkpointSeconds: reg.Histogram("checkpoint_duration_seconds", obs.LatencyBuckets),
	}
	m.applied = make([]*obs.Counter, shards)
	for i := range m.applied {
		m.applied[i] = reg.Counter("ingest_applied_total", obs.L("shard", strconv.Itoa(i)))
	}
	return m
}

// observeBatch records one batch applied by shard i.
func (m *Metrics) observeBatch(shard, n int, d time.Duration) {
	m.applied[shard].Add(uint64(n))
	m.batches.Inc()
	sec := d.Seconds()
	if sec <= 0 {
		sec = 1e-9
	}
	m.batchLatency.Observe(sec)
	m.batchSize.Observe(float64(n))
	m.batchSizeMax.SetMax(float64(n))
}

// MetricsSnapshot is a point-in-time copy of the engine's counters.
type MetricsSnapshot struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Records          uint64  `json:"records"`
	Applied          uint64  `json:"applied"`
	Batches          uint64  `json:"batches"`
	RecordsPerSecond float64 `json:"records_per_second"`
	// Deduped counts keyed ops acknowledged without re-applying because
	// their (source, seq) batch was already journaled.
	Deduped uint64 `json:"deduped"`
	// Shed counts ops dropped by the Shed overflow policy; always 0
	// under Block. OverflowPolicy names the active policy.
	Shed           uint64  `json:"shed"`
	OverflowPolicy string  `json:"overflow_policy"`
	// ReadCacheHits counts Snapshot() reads served from the memoized
	// merged snapshot (no per-shard re-merge).
	ReadCacheHits uint64 `json:"read_cache_hits"`
	MeanBatchSize  float64 `json:"mean_batch_size"`
	MaxBatchSize   float64 `json:"max_batch_size"`
	// Batch apply latency quantiles in seconds (histogram-accurate:
	// exact to within one factor-2 bucket).
	LatencyP50 float64 `json:"latency_p50_seconds"`
	LatencyP99 float64 `json:"latency_p99_seconds"`
	// ShardDepths are instantaneous queue depths in batches;
	// ShardApplied are cumulative applied ops per shard.
	ShardDepths  []int    `json:"shard_depths"`
	ShardApplied []uint64 `json:"shard_applied"`
}

// snapshot is the single place a MetricsSnapshot is assembled — every
// field is read from the registry-backed instruments here, so handlers
// cannot skip a counter by copying fields themselves.
// TestMetricsSnapshotComplete enforces (by reflection) that every
// exported field is populated.
func (m *Metrics) snapshot(depths []int, policy OverflowPolicy) MetricsSnapshot {
	up := time.Since(m.start).Seconds()
	perShard := make([]uint64, len(m.applied))
	var applied uint64
	for i, c := range m.applied {
		perShard[i] = c.Value()
		applied += perShard[i]
	}
	snap := MetricsSnapshot{
		UptimeSeconds:  up,
		Records:        m.records.Value(),
		Deduped:        m.deduped.Value(),
		Applied:        applied,
		Batches:        m.batches.Value(),
		Shed:           m.shed.Value(),
		OverflowPolicy: policy.String(),
		ReadCacheHits:  m.readCacheHits.Value(),
		MeanBatchSize:  m.batchSize.Mean(),
		MaxBatchSize:   m.batchSizeMax.Value(),
		LatencyP50:     m.batchLatency.Quantile(0.5),
		LatencyP99:     m.batchLatency.Quantile(0.99),
		ShardDepths:    depths,
		ShardApplied:   perShard,
	}
	if up > 0 {
		snap.RecordsPerSecond = float64(applied) / up
	}
	return snap
}
