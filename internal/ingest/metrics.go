package ingest

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"swarmavail/internal/stats"
)

// latency sketch geometry: log10(seconds) from 10ns to 100s at ~2.3%
// relative resolution.
const (
	latLogLo   = -8.0
	latLogHi   = 2.0
	latLogBins = 1000
)

// Metrics tracks the engine's operational counters: ingest volume,
// batch sizes, per-batch apply latency (as a mergeable log-scale
// sketch), and — via Engine.Metrics — instantaneous shard queue depths.
// Counter updates are atomic; the latency sketch takes a short mutex
// once per *batch*, off the per-record hot path.
type Metrics struct {
	start   time.Time
	records atomic.Uint64 // ops accepted by Submit/Writer
	applied atomic.Uint64 // ops applied by shards
	batches atomic.Uint64
	shed    atomic.Uint64 // ops dropped by the Shed overflow policy

	mu         sync.Mutex
	latency    *stats.QuantileSketch // log10(batch apply seconds)
	batchSizes stats.Accumulator
}

func newMetrics() *Metrics {
	return &Metrics{
		start:   time.Now(),
		latency: stats.NewQuantileSketch(latLogLo, latLogHi, latLogBins),
	}
}

// observeBatch records one applied batch.
func (m *Metrics) observeBatch(n int, d time.Duration) {
	m.applied.Add(uint64(n))
	m.batches.Add(1)
	sec := d.Seconds()
	if sec <= 0 {
		sec = 1e-9
	}
	m.mu.Lock()
	m.latency.Add(math.Log10(sec))
	m.batchSizes.Add(float64(n))
	m.mu.Unlock()
}

// MetricsSnapshot is a point-in-time copy of the engine's counters.
type MetricsSnapshot struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Records          uint64  `json:"records"`
	Applied          uint64  `json:"applied"`
	Batches          uint64  `json:"batches"`
	RecordsPerSecond float64 `json:"records_per_second"`
	// Shed counts ops dropped by the Shed overflow policy; always 0
	// under Block. OverflowPolicy names the active policy.
	Shed           uint64 `json:"shed"`
	OverflowPolicy string `json:"overflow_policy"`
	MeanBatchSize    float64 `json:"mean_batch_size"`
	MaxBatchSize     float64 `json:"max_batch_size"`
	// Batch apply latency quantiles in seconds (sketch-accurate to
	// ~2.3% relative).
	LatencyP50 float64 `json:"latency_p50_seconds"`
	LatencyP99 float64 `json:"latency_p99_seconds"`
	// ShardDepths are instantaneous queue depths in batches.
	ShardDepths []int `json:"shard_depths"`
}

func (m *Metrics) snapshot(depths []int, policy OverflowPolicy) MetricsSnapshot {
	up := time.Since(m.start).Seconds()
	snap := MetricsSnapshot{
		UptimeSeconds:  up,
		Records:        m.records.Load(),
		Applied:        m.applied.Load(),
		Batches:        m.batches.Load(),
		Shed:           m.shed.Load(),
		OverflowPolicy: policy.String(),
		ShardDepths:    depths,
	}
	if up > 0 {
		snap.RecordsPerSecond = float64(snap.Applied) / up
	}
	m.mu.Lock()
	snap.MeanBatchSize = m.batchSizes.Mean()
	snap.MaxBatchSize = m.batchSizes.Max()
	if m.latency.N() > 0 {
		snap.LatencyP50 = math.Pow(10, m.latency.Quantile(0.5))
		snap.LatencyP99 = math.Pow(10, m.latency.Quantile(0.99))
	}
	m.mu.Unlock()
	return snap
}
