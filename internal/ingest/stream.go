package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"swarmavail/internal/obs"
	"swarmavail/internal/wal"
)

// The binary streaming ingest protocol (DESIGN.md §12). One TCP (or any
// full-duplex byte-stream) connection carries a sequence of frames in
// both directions, each wrapped in the WAL envelope — u32 LE payload
// length, u32 LE CRC32-C, payload (wal.AppendFrame / wal.FrameReader) —
// so a frame that passes the envelope check on arrival is, byte for
// byte, a frame the journal can store and recovery can replay.
//
// Frame payloads start with a one-byte type:
//
//	client → server
//	  0x01 DATA   rest = one ops-codec frame (v1 plain or v2 keyed,
//	              identical to the WAL payload format)
//	  0x02 CLOSE  empty; asks for a final cumulative ACK, then close
//
//	server → client
//	  0x81 ACK    u64 LE: cumulative count of DATA frames accepted on
//	              this connection (applied or deduplicated — both are
//	              acknowledgements)
//	  0x82 ERR    u8 code + UTF-8 message; the connection closes after
//
// Acks are cumulative and coalesced: the server acknowledges when its
// read buffer drains or every streamAckEvery frames, whichever comes
// first, so a fast sender pays one ack per burst, not per frame.
const (
	StreamFrameData  = 0x01
	StreamFrameClose = 0x02
	StreamFrameAck   = 0x81
	StreamFrameErr   = 0x82
)

// ERR frame codes. A codec or protocol error is fatal to the
// connection but — by construction — leaves engine state untouched:
// frames are fully decoded before anything is journaled or applied.
const (
	// StreamErrCodec: a DATA frame's ops payload failed to decode.
	StreamErrCodec = 1
	// StreamErrState: the engine refused the write (closing/closed).
	StreamErrState = 2
	// StreamErrProto: a torn or corrupt envelope, or an unknown frame
	// type — the stream is unsynchronized and cannot continue.
	StreamErrProto = 3
)

// streamAckEvery bounds ack coalescing: at most this many DATA frames
// are accepted between acks even when the sender never lets the read
// buffer drain.
const streamAckEvery = 64

// maxStreamFrame bounds one stream frame's payload. Far below
// wal.MaxFrameBytes: a single DATA frame is one client batch, and a
// length claiming more than this is a framing desync, not a batch.
const maxStreamFrame = 8 << 20

// StreamError is the server's ERR frame surfaced to the client.
type StreamError struct {
	Code byte
	Msg  string
}

func (e *StreamError) Error() string {
	return fmt.Sprintf("ingest: stream error %d: %s", e.Code, e.Msg)
}

// countingReader counts bytes as they arrive from the connection (the
// ingest_stream_bytes_total source of truth — envelope included,
// counted where they enter).
type countingReader struct {
	r io.Reader
	n *obs.Counter
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.n.Add(uint64(n))
	}
	return n, err
}

// StreamServer serves the binary streaming ingest protocol over an
// Engine. One StreamServer handles any number of concurrent
// connections; per-connection state is local to ServeConn.
type StreamServer struct {
	e    *Engine
	logf func(format string, args ...any)

	frames    *obs.Counter   // ingest_stream_frames_total: DATA frames accepted
	bytes     *obs.Counter   // ingest_stream_bytes_total: wire bytes received
	conns     *obs.Counter   // ingest_stream_conns_total: connections served
	errs      *obs.Counter   // ingest_stream_errors_total: ERR frames sent
	ackWindow *obs.Histogram // ingest_stream_ack_window: DATA frames covered per ACK

	mu     sync.Mutex
	active map[net.Conn]struct{}
	closed bool
}

// NewStreamServer registers the stream series on e's registry and
// returns a server ready to accept connections.
func NewStreamServer(e *Engine, logf func(format string, args ...any)) *StreamServer {
	reg := e.Registry()
	return &StreamServer{
		e:         e,
		logf:      logf,
		frames:    reg.Counter("ingest_stream_frames_total"),
		bytes:     reg.Counter("ingest_stream_bytes_total"),
		conns:     reg.Counter("ingest_stream_conns_total"),
		errs:      reg.Counter("ingest_stream_errors_total"),
		ackWindow: reg.Histogram("ingest_stream_ack_window", obs.SizeBuckets),
		active:    map[net.Conn]struct{}{},
	}
}

// Serve accepts connections from ln until the listener closes (or
// Close is called), handling each on its own goroutine. It returns nil
// on a clean listener close.
func (s *StreamServer) Serve(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			conn.Close()
			return nil
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer s.untrack(conn)
			if err := s.ServeConn(conn); err != nil && s.logf != nil {
				s.logf("ingest stream %s: %v", conn.RemoteAddr(), err)
			}
		}(conn)
	}
}

func (s *StreamServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.active[conn] = struct{}{}
	return true
}

func (s *StreamServer) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.active, conn)
	s.mu.Unlock()
}

// Close tears down every active connection. In-flight frames that were
// already acknowledged are journaled/applied; everything after the cut
// is the client's to resend (keyed frames make the resend exactly-once).
func (s *StreamServer) Close() {
	s.mu.Lock()
	s.closed = true
	for conn := range s.active {
		conn.Close()
	}
	s.mu.Unlock()
}

// streamConn is one connection's protocol state.
type streamConn struct {
	s   *StreamServer
	fr  *wal.FrameReader
	buf *bufio.Reader // Buffered() drives ack coalescing
	w   io.Writer

	accepted  uint64 // DATA frames accepted (applied or deduplicated)
	lastAcked uint64
	wbuf      []byte // outbound frame scratch
}

// ServeConn runs the protocol on one connection until the peer closes,
// a CLOSE frame completes, or an error ends the stream. The returned
// error describes why the stream ended (nil for clean ends); the caller
// owns closing conn.
func (s *StreamServer) ServeConn(conn net.Conn) error {
	s.conns.Inc()
	br := bufio.NewReaderSize(&countingReader{r: conn, n: s.bytes}, 64<<10)
	c := &streamConn{s: s, fr: wal.NewFrameReader(br), buf: br, w: conn}
	for {
		payload, err := c.fr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				// Peer vanished without CLOSE (crash, reset): everything
				// acknowledged stands; everything else was never applied.
				return nil
			}
			if errors.Is(err, wal.ErrCorrupt) {
				c.sendErr(StreamErrProto, "corrupt frame: "+err.Error())
				return fmt.Errorf("corrupt frame: %w", err)
			}
			return err
		}
		if len(payload) > maxStreamFrame {
			c.sendErr(StreamErrProto, "frame exceeds stream bound")
			return fmt.Errorf("oversized stream frame (%d bytes)", len(payload))
		}
		switch payload[0] {
		case StreamFrameData:
			if _, err := s.e.SubmitFrame(payload[1:]); err != nil {
				code := byte(StreamErrCodec)
				if errors.Is(err, ErrClosed) {
					code = StreamErrState
				}
				c.sendErr(code, err.Error())
				return fmt.Errorf("data frame rejected: %w", err)
			}
			s.frames.Inc()
			c.accepted++
			if c.buf.Buffered() == 0 || c.accepted-c.lastAcked >= streamAckEvery {
				if err := c.sendAck(); err != nil {
					return err
				}
			}
		case StreamFrameClose:
			// Final cumulative ack, then a clean end. The client treats
			// the ack that covers its last DATA frame as full settlement.
			if err := c.sendAck(); err != nil {
				return err
			}
			return nil
		default:
			c.sendErr(StreamErrProto, fmt.Sprintf("unknown frame type 0x%02x", payload[0]))
			return fmt.Errorf("unknown stream frame type 0x%02x", payload[0])
		}
	}
}

// sendAck writes one cumulative ACK frame.
func (c *streamConn) sendAck() error {
	c.s.ackWindow.Observe(float64(c.accepted - c.lastAcked))
	c.lastAcked = c.accepted
	var p [9]byte
	p[0] = StreamFrameAck
	binary.LittleEndian.PutUint64(p[1:], c.accepted)
	c.wbuf = wal.AppendFrame(c.wbuf[:0], p[:])
	_, err := c.w.Write(c.wbuf)
	return err
}

// sendErr writes one ERR frame, best effort (the connection is about
// to close either way).
func (c *streamConn) sendErr(code byte, msg string) {
	c.s.errs.Inc()
	if len(msg) > 512 {
		msg = msg[:512]
	}
	p := make([]byte, 0, 2+len(msg))
	p = append(p, StreamFrameErr, code)
	p = append(p, msg...)
	c.wbuf = wal.AppendFrame(c.wbuf[:0], p)
	_, _ = c.w.Write(c.wbuf)
}
