// Package ingest is the streaming counterpart of the offline §2
// analysis pipeline (internal/trace → internal/measure): a sharded,
// batched, concurrency-safe engine that consumes monitor records as
// they arrive and maintains *online* per-swarm availability state —
// incremental busy-period and seed-availability tracking with the exact
// definitions internal/measure applies offline, mergeable availability
// quantile sketches (stats.QuantileSketch), per-category bundling
// counters, and rolling seed/leecher gauges.
//
// # Architecture
//
//	producers ──Writer──▶ per-shard batch queues ──▶ shard goroutines
//	                                                   │ (own all state,
//	                                                   │  no locks)
//	readers ───Summary/Swarm──▶ request messages ──────┘
//
// Swarm state is partitioned by swarm-id hash across N shard
// goroutines, each owning its slice of the keyspace outright — the hot
// path applies batches without taking any lock. Readers never block
// writers: snapshot requests travel through the same per-shard queues
// as batches and are answered with copies, so a slow reader costs at
// most one queue slot; writers stall only on queue backpressure.
// Per-shard sketches and counters merge losslessly (see
// stats.QuantileSketch and stats.Accumulator), which is what makes the
// sharded aggregate equal to the unsharded one.
//
// # Exactness
//
// When swarm metadata (monitoring horizon) is registered before a
// swarm's events and each swarm's events arrive in time order — both
// guaranteed by the replay helpers — the online per-swarm first-month
// and whole-trace availabilities are computed with the same clipping
// arithmetic, in the same order, as trace.SwarmTrace.AvailabilityOver,
// and therefore agree bitwise with the offline analysis. CDF quantiles
// come from a fixed-resolution sketch and agree with the exact order
// statistics within stats.QuantileSketch's documented one-bin
// tolerance (±1/4096 by default).
package ingest

import (
	"time"

	"swarmavail/internal/obs"
	"swarmavail/internal/trace"
)

// Record is one monitor observation, the schema the §2 monitoring
// agents (and internal/trace's archived seed sessions) emit: a peer —
// publisher seed or leecher — transitioned online or offline in a swarm
// at a point in time.
type Record struct {
	SwarmID int `json:"swarm_id"`
	// PeerID identifies the observed peer; distinct concurrent seeds
	// union their online time, exactly as merged seed sessions do.
	PeerID uint64 `json:"peer_id"`
	// Seed marks a publisher/seed observation (false = leecher).
	Seed bool `json:"seed"`
	// Online is the transition direction: true = came online.
	Online bool `json:"online"`
	// Time is in days since the swarm's creation, the availability
	// study's clock.
	Time float64 `json:"t"`
}

// opKind discriminates the operations a shard applies.
type opKind uint8

const (
	opEvent opKind = iota
	opMeta
	opCensus
)

// Op is one unit of ingestion work: an online/offline event, a swarm
// registration (metadata + monitoring horizon), or a census
// observation. Build with EventOp, MetaOp, or CensusOp.
//
// Events — the overwhelming majority of a monitor stream — are carried
// inline; the bulky registration/census payloads live behind a pointer.
// That keeps an Op at 48 bytes instead of ~220, which matters because
// the write path moves Ops by value through per-shard batch buffers:
// batch copies are the single biggest cost on the hot path.
type Op struct {
	kind opKind
	rec  Record
	aux  *opAux // registration/census payload; nil for events
}

// opAux is the out-of-line payload of registration and census ops.
type opAux struct {
	meta    trace.SwarmMeta
	horizon float64
	census  trace.Snapshot
}

// EventOp wraps a monitor record.
func EventOp(rec Record) Op { return Op{kind: opEvent, rec: rec} }

// MetaOp registers a swarm's metadata and monitoring horizon (days).
// Registering before the swarm's events is what makes the online
// availability agree exactly with the offline analysis.
func MetaOp(meta trace.SwarmMeta, horizonDays float64) Op {
	return Op{kind: opMeta, aux: &opAux{meta: meta, horizon: horizonDays}}
}

// CensusOp records a single-day census observation (§2.3): absolute
// seed/leecher gauges, the cumulative download counter, and — on first
// sight of the swarm — its bundling classification.
func CensusOp(snap trace.Snapshot) Op { return Op{kind: opCensus, aux: &opAux{census: snap}} }

// EventRecord returns the monitor record carried by an event op
// (ok=false for registrations and census ops) — what can travel over
// the wire to a remote engine's /v1/ingest.
func (o Op) EventRecord() (Record, bool) {
	if o.kind != opEvent {
		return Record{}, false
	}
	return o.rec, true
}

// SwarmID returns the swarm the op targets.
func (o Op) SwarmID() int {
	switch o.kind {
	case opEvent:
		return o.rec.SwarmID
	case opMeta:
		return o.aux.meta.ID
	default:
		return o.aux.census.Meta.ID
	}
}

// OverflowPolicy selects what Submit does when a shard queue is full.
type OverflowPolicy uint8

const (
	// Block (the default) stalls the submitter until the shard drains —
	// lossless backpressure.
	Block OverflowPolicy = iota
	// Shed drops the overflowing batch immediately and counts the lost
	// ops in Metrics().Shed — bounded-latency, lossy degradation for
	// producers that must never stall (e.g. a live monitor).
	Shed
)

// String names the policy for metrics and logs.
func (p OverflowPolicy) String() string {
	if p == Shed {
		return "shed"
	}
	return "block"
}

// Config parameterises the engine. The zero value selects sensible
// defaults via New.
type Config struct {
	// Shards is the number of state-owning worker goroutines
	// (default: GOMAXPROCS, min 1).
	Shards int
	// BatchSize is the Writer's flush threshold in ops (default 512).
	// Batches travel through the shard queues by ownership transfer —
	// no copy — so larger batches only amortise the channel hop; 512
	// ops ≈ 24 KiB per pooled buffer.
	BatchSize int
	// QueueDepth is the per-shard queue capacity in batches
	// (default 128). What happens when a queue fills is OnFull's call.
	QueueDepth int
	// OnFull is the backpressure policy for a full shard queue:
	// Block (default) or Shed.
	OnFull OverflowPolicy
	// Metrics is an optional observability registry the engine
	// registers its instruments on (ingest_* series). Nil means a
	// private registry — Engine.Metrics still works, nothing is
	// exported. Run at most one live engine per registry: a second
	// engine on the same registry merges its series into the first's.
	Metrics *obs.Registry

	// SnapshotMaxAge bounds how stale the lock-free read snapshots may
	// get (default 100ms). Under sustained writes each shard republishes
	// its snapshot once this much time has passed since the last
	// publish; on an idle engine a reader that observes a snapshot both
	// older than this and behind the shard's apply watermark nudges a
	// refresh through the queue. Either way a snapshot read is never
	// more than SnapshotMaxAge behind the applied stream.
	SnapshotMaxAge time.Duration

	// WindowBinDays is the width of one fine time bin in days (default
	// 1.0) for the ring-buffered windowed aggregates behind
	// /v1/availability/window. WindowFineBins fine bins are retained at
	// full resolution (default 64); older bins downsample by
	// WindowFoldFactor (default 8: eight day-bins fold into one
	// 8-day bin) into WindowCoarseBins coarse bins (default 32), beyond
	// which observations age out entirely. Every node of a cluster must
	// run the same window geometry for merged windowed answers to be
	// byte-identical to a single engine's.
	WindowBinDays    float64
	WindowFineBins   int
	WindowFoldFactor int
	WindowCoarseBins int
}

func (c Config) withDefaults(defaultShards int) Config {
	if c.Shards <= 0 {
		c.Shards = defaultShards
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.SnapshotMaxAge <= 0 {
		c.SnapshotMaxAge = 100 * time.Millisecond
	}
	if c.WindowBinDays <= 0 {
		c.WindowBinDays = 1.0
	}
	if c.WindowFineBins <= 0 {
		c.WindowFineBins = 64
	}
	if c.WindowFoldFactor <= 0 {
		c.WindowFoldFactor = 8
	}
	if c.WindowCoarseBins <= 0 {
		c.WindowCoarseBins = 32
	}
	return c
}

// windowConfig is the engine-internal window geometry derived from
// Config; one copy lives on every shard so the apply hot path reads it
// without indirection through the engine.
type windowConfig struct {
	binDays float64
	fine    int
	fold    int
	coarse  int
}

func (c Config) windowConfig() windowConfig {
	return windowConfig{
		binDays: c.WindowBinDays,
		fine:    c.WindowFineBins,
		fold:    c.WindowFoldFactor,
		coarse:  c.WindowCoarseBins,
	}
}

// shardIndex spreads (typically sequential) swarm ids across n shards
// with a 64-bit finalizer (splitmix64's mix).
func shardIndex(swarmID, n int) int {
	x := uint64(swarmID)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}
