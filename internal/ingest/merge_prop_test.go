package ingest

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// synthStream builds a deterministic event stream over the given swarm
// population, with per-swarm arrival order preserved no matter how the
// stream is later partitioned (partitioning is by swarm, never within
// one).
func synthStream(rng *rand.Rand, swarms, events int) []Record {
	recs := make([]Record, events)
	for i := range recs {
		recs[i] = Record{
			SwarmID: rng.Intn(swarms),
			PeerID:  uint64(rng.Intn(40)),
			Seed:    rng.Intn(3) != 0,
			Online:  rng.Intn(2) == 0,
			Time:    float64(i) / 10,
		}
	}
	return recs
}

func applyAll(t *testing.T, e *Engine, recs []Record) {
	t.Helper()
	ops := make([]Op, len(recs))
	for i, r := range recs {
		ops[i] = EventOp(r)
	}
	if err := e.Submit(ops); err != nil {
		t.Fatal(err)
	}
}

// TestSummaryMergePartitionInvariant is the distributed-reads property:
// split one stream across K engines by swarm (any assignment), merge
// the K summaries back in any order, and the result must marshal to the
// same bytes as the single engine that saw everything. This is exactly
// what availgw does per read, so the property is load-bearing for the
// cluster's byte-identical-answers guarantee.
func TestSummaryMergePartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		const swarms = 61
		recs := synthStream(rng, swarms, 1500+rng.Intn(1500))

		single := New(Config{Shards: 2, BatchSize: 32})
		applyAll(t, single, recs)
		single.Flush()

		// Random assignment of swarms to K partitions — deliberately NOT
		// the production ring, so the property holds for any partitioning
		// that keeps swarms whole, not just the one the gateway happens
		// to use.
		k := 2 + rng.Intn(4)
		home := make([]int, swarms)
		for s := range home {
			home[s] = rng.Intn(k)
		}
		engines := make([]*Engine, k)
		parts := make([][]Record, k)
		for _, r := range recs {
			parts[home[r.SwarmID]] = append(parts[home[r.SwarmID]], r)
		}
		for i := range engines {
			engines[i] = New(Config{Shards: 1 + rng.Intn(3), BatchSize: 16})
			applyAll(t, engines[i], parts[i])
			engines[i].Flush()
		}

		merged := NewSummary()
		for _, i := range rng.Perm(k) {
			merged.Merge(engines[i].Summary())
		}

		want, err := json.Marshal(single.Summary().State())
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(merged.State())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("trial %d (k=%d): merged summary differs from sequential\n--- merged ---\n%s\n--- single ---\n%s",
				trial, k, got, want)
		}

		single.Close()
		for _, e := range engines {
			e.Close()
		}
	}
}

// TestSummaryStateRoundTripExact: State → JSON → SummaryState → Summary
// → State must be byte-stable; this is the wire format the gateway's
// scatter-gather reads and the follower's promoted engines both trust.
func TestSummaryStateRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e := New(Config{Shards: 4, BatchSize: 32})
	defer e.Close()
	applyAll(t, e, synthStream(rng, 97, 4000))
	e.Flush()

	first, err := json.Marshal(e.Summary().State())
	if err != nil {
		t.Fatal(err)
	}
	var st SummaryState
	if err := json.Unmarshal(first, &st); err != nil {
		t.Fatal(err)
	}
	sum, err := st.Summary()
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(sum.State())
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("SummaryState round-trip not exact:\n%s\n%s", first, second)
	}
}
