package ingest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHTTPClientConcurrentPushes drives one shared HTTPClient from two
// goroutines whose pushes all fail once before succeeding, so both hit
// the jittered-backoff path concurrently. Run under -race (CI does)
// this is the regression test for the data race on the client's rng:
// backoff() must serialise jitter draws and the retry counter behind
// the client mutex.
func TestHTTPClientConcurrentPushes(t *testing.T) {
	var hits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Fail every other request: each Push's first attempt bounces
		// with a retryable 503, forcing a backoff draw per push.
		if hits.Add(1)%2 == 1 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"accepted":1}`))
	}))
	defer srv.Close()

	c := NewHTTPClient(HTTPClientConfig{
		URL:         srv.URL,
		MaxAttempts: 10,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
	})

	const pushers, pushes = 2, 32
	var wg sync.WaitGroup
	errs := make([]error, pushers)
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < pushes; i++ {
				recs := []Record{{SwarmID: p*1000 + i, PeerID: 1, Seed: true, Online: true}}
				if err := c.Push(context.Background(), recs); err != nil {
					errs[p] = err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("pusher %d: %v", p, err)
		}
	}
	if got := c.Retries(); got == 0 {
		t.Fatalf("no retries recorded; the backoff path was never exercised")
	} else {
		t.Logf("retries across %d concurrent pushes: %d", pushers*pushes, got)
	}
}
