package ingest

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHTTPClientConcurrentPushes drives one shared HTTPClient from two
// goroutines whose pushes all fail once before succeeding, so both hit
// the jittered-backoff path concurrently. Run under -race (CI does)
// this is the regression test for the data race on the client's rng:
// backoff() must serialise jitter draws and the retry counter behind
// the client mutex.
func TestHTTPClientConcurrentPushes(t *testing.T) {
	var hits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Fail every other request: each Push's first attempt bounces
		// with a retryable 503, forcing a backoff draw per push.
		if hits.Add(1)%2 == 1 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"accepted":1}`))
	}))
	defer srv.Close()

	c := NewHTTPClient(HTTPClientConfig{
		URL:         srv.URL,
		MaxAttempts: 10,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
	})

	const pushers, pushes = 2, 32
	var wg sync.WaitGroup
	errs := make([]error, pushers)
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < pushes; i++ {
				recs := []Record{{SwarmID: p*1000 + i, PeerID: 1, Seed: true, Online: true}}
				if err := c.Push(context.Background(), recs); err != nil {
					errs[p] = err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("pusher %d: %v", p, err)
		}
	}
	if got := c.Retries(); got == 0 {
		t.Fatalf("no retries recorded; the backoff path was never exercised")
	} else {
		t.Logf("retries across %d concurrent pushes: %d", pushers*pushes, got)
	}
}

// TestHTTPClientPushCancelMidBackoff is the regression test for prompt
// cancellation: with a multi-second backoff pending between attempts
// against an always-failing server, cancelling the context must return
// immediately — not after the backoff timer or the remaining attempt
// budget drains.
func TestHTTPClientPushCancelMidBackoff(t *testing.T) {
	attempted := make(chan struct{}, 16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempted <- struct{}{}
		http.Error(w, "transient", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := NewHTTPClient(HTTPClientConfig{
		URL:         srv.URL,
		MaxAttempts: 10,
		BackoffBase: 10 * time.Second,
		BackoffCap:  10 * time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- c.Push(ctx, []Record{{SwarmID: 1, PeerID: 1, Online: true}})
	}()
	<-attempted // first attempt has failed; the client is now in backoff
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("Push returned %v, want context.Canceled", err)
		}
		if wait := time.Since(start); wait > 2*time.Second {
			t.Fatalf("Push took %v to honour cancellation; it sat out the backoff", wait)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Push still running 5s after cancel — stuck in the 10s backoff")
	}
}

// TestHTTPClientPushCancelDuringAttempt: a cancel while an attempt is
// in flight (server never answers) must also surface promptly as
// context.Canceled, not be retried as a transport error.
func TestHTTPClientPushCancelDuringAttempt(t *testing.T) {
	arrived := make(chan struct{}, 16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only watches for the client
		// hanging up (which cancels r.Context()) once the body is read.
		io.Copy(io.Discard, r.Body)
		arrived <- struct{}{}
		<-r.Context().Done()
	}))
	defer srv.Close()

	c := NewHTTPClient(HTTPClientConfig{
		URL:         srv.URL,
		MaxAttempts: 10,
		BackoffBase: 10 * time.Second,
		BackoffCap:  10 * time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- c.Push(ctx, []Record{{SwarmID: 1, PeerID: 1, Online: true}})
	}()
	<-arrived
	cancel()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("Push returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Push did not return after cancel during an in-flight attempt")
	}
}

// TestHTTPClientPerAttemptTimeoutRetries: a per-attempt timeout from
// http.Client.Timeout surfaces as context.DeadlineExceeded with the
// caller's ctx still live. That must stay retryable — the slow-network
// fault tests depend on the client riding through per-attempt stalls.
func TestHTTPClientPerAttemptTimeoutRetries(t *testing.T) {
	var hits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			select { // stall past the client's per-attempt timeout
			case <-r.Context().Done():
			case <-time.After(2 * time.Second):
			}
			return
		}
		w.Write([]byte(`{"accepted":1}`))
	}))
	defer srv.Close()

	c := NewHTTPClient(HTTPClientConfig{
		URL:         srv.URL,
		Client:      &http.Client{Timeout: 100 * time.Millisecond},
		MaxAttempts: 6,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
	})
	if err := c.Push(context.Background(), []Record{{SwarmID: 1, PeerID: 1, Online: true}}); err != nil {
		t.Fatalf("Push did not ride through per-attempt timeouts: %v", err)
	}
	if hits.Load() < 3 {
		t.Fatalf("server saw %d attempts, want >= 3", hits.Load())
	}
}

// TestHTTPClientEpochConflictFatal: a 409 carrying the node's epoch is
// a cluster-membership fact, not a transient — Push must fail fast with
// *EpochConflictError instead of burning the retry budget.
func TestHTTPClientEpochConflictFatal(t *testing.T) {
	var hits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if got := r.Header.Get(HeaderEpoch); got != "3" {
			t.Errorf("request stamped %q, want epoch 3", got)
		}
		w.Header().Set(HeaderEpoch, "5")
		http.Error(w, `{"error":"stale"}`, http.StatusConflict)
	}))
	defer srv.Close()

	c := NewHTTPClient(HTTPClientConfig{
		URL:         srv.URL,
		Epoch:       3,
		MaxAttempts: 6,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
	})
	err := c.Push(context.Background(), []Record{{SwarmID: 1, PeerID: 1, Online: true}})
	var conflict *EpochConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("Push returned %v, want *EpochConflictError", err)
	}
	if conflict.ClientEpoch != 3 || conflict.NodeEpoch != 5 {
		t.Fatalf("conflict %+v, want client 3 node 5", conflict)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d attempts, want 1 (no retries on epoch conflict)", hits.Load())
	}
}
