package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"swarmavail/internal/faultnet"
	"swarmavail/internal/trace"
	"swarmavail/internal/wal"
)

// startStreamServer serves the binary streaming protocol for e on a
// loopback listener, torn down with the test.
func startStreamServer(t testing.TB, e *Engine) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamServer(e, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ss.Serve(ln)
	}()
	t.Cleanup(func() {
		ln.Close()
		ss.Close()
		<-done
	})
	return ln.Addr().String()
}

// studyOps renders a generated availability study as one flat op
// stream, the shared input of the parity tests.
func studyOps(swarms int, seed int64) []Op {
	var ops []Op
	for _, tr := range trace.GenerateStudy(trace.DefaultStudyConfig(swarms, seed)) {
		ops = append(ops, TraceOps(tr)...)
	}
	return ops
}

// renderAPI renders the engine's two read endpoints exactly as availd
// serves them; byte equality of these is the parity criterion.
func renderAPI(t testing.TB, e *Engine) (summary, cdf []byte) {
	t.Helper()
	e.Flush()
	sum := e.Summary()
	qs, err := ParseQuantiles("")
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewRecorder()
	WriteSummary(rs, sum)
	rc := httptest.NewRecorder()
	WriteCDF(rc, sum, qs)
	return rs.Body.Bytes(), rc.Body.Bytes()
}

// TestStreamSummaryParity drives the same op stream through the JSON
// path's core (Submit, as POST /v1/ingest does) and through the full
// binary stream stack — StreamClient over real TCP into a StreamServer
// — and requires the rendered /v1/summary and /v1/availability/cdf
// bodies to be byte-identical.
func TestStreamSummaryParity(t *testing.T) {
	ops := studyOps(120, 17)

	jsonE := New(Config{Shards: 4})
	defer jsonE.Close()
	for i := 0; i < len(ops); i += 500 {
		end := i + 500
		if end > len(ops) {
			end = len(ops)
		}
		if err := jsonE.Submit(ops[i:end]); err != nil {
			t.Fatal(err)
		}
	}

	binE := New(Config{Shards: 4})
	defer binE.Close()
	addr := startStreamServer(t, binE)
	c := NewStreamClient(StreamClientConfig{Addr: addr, BatchSize: 97})
	for _, op := range ops {
		if err := c.Put(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Acked(), c.Sent(); got != want {
		t.Fatalf("acked %d of %d sent frames", got, want)
	}

	jsonSum, jsonCDF := renderAPI(t, jsonE)
	binSum, binCDF := renderAPI(t, binE)
	if !bytes.Equal(jsonSum, binSum) {
		t.Fatalf("summary diverged\n--- json ---\n%s\n--- binary ---\n%s", jsonSum, binSum)
	}
	if !bytes.Equal(jsonCDF, binCDF) {
		t.Fatalf("cdf diverged\n--- json ---\n%s\n--- binary ---\n%s", jsonCDF, binCDF)
	}
	if binE.Metrics().Records != jsonE.Metrics().Records {
		t.Fatalf("record counts diverged: binary %d, json %d",
			binE.Metrics().Records, jsonE.Metrics().Records)
	}
}

// dialStream opens one raw protocol connection for hand-rolled frames.
func dialStream(t *testing.T, addr string) (net.Conn, *wal.FrameReader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, wal.NewFrameReader(conn)
}

// writeData wraps one ops-codec frame as a DATA stream frame.
func writeData(t *testing.T, conn net.Conn, frame []byte) {
	t.Helper()
	payload := append([]byte{StreamFrameData}, frame...)
	if _, err := conn.Write(wal.AppendFrame(nil, payload)); err != nil {
		t.Fatal(err)
	}
}

func mustEncodeFrame(t *testing.T, source string, seq uint64, ops []Op) []byte {
	t.Helper()
	frame, err := EncodeFrame(nil, source, seq, ops)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestStreamCorruptFramesLeaveStateUnchanged sends a valid frame, then
// torn/corrupt ones, and requires (a) an ERR frame with the right code,
// (b) the connection to die, and (c) the engine's rendered state and
// record counters to be exactly what the valid frame left.
func TestStreamCorruptFramesLeaveStateUnchanged(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	addr := startStreamServer(t, e)

	ops := []Op{
		EventOp(Record{SwarmID: 1, PeerID: 7, Seed: true, Online: true, Time: 0.5}),
		EventOp(Record{SwarmID: 2, PeerID: 9, Online: true, Time: 1.5}),
	}
	conn, fr := dialStream(t, addr)
	writeData(t, conn, mustEncodeFrame(t, "mon-a", 1, ops))
	ack, err := fr.Next()
	if err != nil || ack[0] != StreamFrameAck {
		t.Fatalf("want ACK, got %v / %v", ack, err)
	}
	baseSum, baseCDF := renderAPI(t, e)
	baseRecords := e.Metrics().Records

	cases := []struct {
		name     string
		corrupt  func(env []byte) []byte
		wantCode byte
	}{
		{"flipped payload bit", func(env []byte) []byte {
			env[len(env)-1] ^= 0x40
			return env
		}, StreamErrProto},
		{"torn frame then close", func(env []byte) []byte {
			return env[:len(env)-5]
		}, StreamErrProto},
		{"bad ops codec", func(env []byte) []byte {
			junk := append([]byte{StreamFrameData}, 0xEE, 0xFF, 0x00, 0x01, 0x02)
			return wal.AppendFrame(nil, junk)
		}, StreamErrCodec},
		{"unknown frame type", func(env []byte) []byte {
			return wal.AppendFrame(nil, []byte{0x7F, 0x00})
		}, StreamErrProto},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, fr := dialStream(t, addr)
			env := wal.AppendFrame(nil, append([]byte{StreamFrameData},
				mustEncodeFrame(t, "mon-bad", 99, ops)...))
			if _, err := conn.Write(tc.corrupt(env)); err != nil {
				t.Fatal(err)
			}
			conn.(*net.TCPConn).CloseWrite()
			payload, err := fr.Next()
			if err != nil {
				t.Fatalf("want ERR frame, got read error %v", err)
			}
			if payload[0] != StreamFrameErr || payload[1] != tc.wantCode {
				t.Fatalf("got frame %v, want ERR code %d", payload[:2], tc.wantCode)
			}
			if _, err := fr.Next(); !errors.Is(err, io.EOF) {
				t.Fatalf("connection should close after ERR, got %v", err)
			}
		})
	}

	sum, cdf := renderAPI(t, e)
	if !bytes.Equal(sum, baseSum) || !bytes.Equal(cdf, baseCDF) {
		t.Fatal("corrupt frames changed engine state")
	}
	if got := e.Metrics().Records; got != baseRecords {
		t.Fatalf("records moved %d -> %d across rejected frames", baseRecords, got)
	}
}

// TestStreamKeyedReplayDedups is the exactly-once ledger check on the
// stream path: a second client replaying an already-applied keyed frame
// (the lost-ack retry) is acknowledged without re-applying, and the
// duplicate is visible in ingest_deduped_total.
func TestStreamKeyedReplayDedups(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	addr := startStreamServer(t, e)

	ops := []Op{
		EventOp(Record{SwarmID: 3, PeerID: 1, Online: true, Time: 0.25}),
		EventOp(Record{SwarmID: 4, PeerID: 2, Seed: true, Online: true, Time: 0.75}),
		EventOp(Record{SwarmID: 3, PeerID: 1, Online: false, Time: 2}),
	}
	c1 := NewStreamClient(StreamClientConfig{Addr: addr, Source: "mon-replay"})
	for seq := uint64(1); seq <= 5; seq++ {
		if err := c1.PushFrame(mustEncodeFrame(t, "mon-replay", seq, ops)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	base := e.Metrics()
	if want := uint64(5 * len(ops)); base.Records != want {
		t.Fatalf("applied %d records, want %d", base.Records, want)
	}

	// The reconnect-shaped replay: same source, frames 2..4 again.
	c2 := NewStreamClient(StreamClientConfig{Addr: addr, Source: "mon-replay"})
	for seq := uint64(2); seq <= 4; seq++ {
		if err := c2.PushFrame(mustEncodeFrame(t, "mon-replay", seq, ops)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Records != base.Records {
		t.Fatalf("replay re-applied: records %d -> %d", base.Records, m.Records)
	}
	if want := base.Deduped + uint64(3*len(ops)); m.Deduped != want {
		t.Fatalf("deduped %d, want %d", m.Deduped, want)
	}
}

// TestStreamConcurrentClientsWithResets is the -race battery: many
// clients stream concurrently through a fault-injecting network that
// resets connections mid-stream; every client rides the resets out by
// reconnecting and resending its unacked window. Exactly-once must hold
// to the record: the engine applies each record exactly once, no matter
// where the resets landed.
func TestStreamConcurrentClientsWithResets(t *testing.T) {
	e := New(Config{Shards: 4})
	defer e.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fn := faultnet.New(faultnet.Config{Seed: 7, ResetProb: 0.02})
	ss := NewStreamServer(e, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ss.Serve(fn.Listener(ln))
	}()
	defer func() {
		ln.Close()
		ss.Close()
		<-done
	}()

	const (
		clients = 6
		frames  = 40
		perOp   = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := NewStreamClient(StreamClientConfig{
				Source: fmt.Sprintf("mon-%d", ci),
				Dial: func() (net.Conn, error) {
					return fn.Dial("tcp", ln.Addr().String(), time.Second)
				},
				BatchSize:    perOp,
				Window:       8,
				RetryBackoff: 2 * time.Millisecond,
				MaxAttempts:  100,
			})
			for f := 0; f < frames; f++ {
				for k := 0; k < perOp; k++ {
					rec := Record{
						SwarmID: ci*1000 + f,
						PeerID:  uint64(k + 1),
						Seed:    k%2 == 0,
						Online:  true,
						Time:    float64(f) + float64(k)/float64(perOp),
					}
					if err := c.Observe(rec); err != nil {
						errs <- fmt.Errorf("client %d observe: %w", ci, err)
						return
					}
				}
			}
			if err := c.Close(); err != nil {
				errs <- fmt.Errorf("client %d close: %w", ci, err)
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	e.Flush()
	m := e.Metrics()
	if want := uint64(clients * frames * perOp); m.Records != want {
		t.Fatalf("applied %d records, want exactly %d (deduped %d)", m.Records, want, m.Deduped)
	}
	st := fn.Stats()
	t.Logf("faultnet: %d resets, %d dials denied; engine deduped %d replayed records",
		st.Resets, st.DialsDenied, m.Deduped)
}

// FuzzStreamFrames feeds arbitrary bytes to a live protocol connection.
// The server must never panic, and whatever the bytes did, the engine
// must still accept well-formed work afterwards.
func FuzzStreamFrames(f *testing.F) {
	ops := []Op{EventOp(Record{SwarmID: 1, PeerID: 1, Online: true, Time: 1})}
	valid, err := EncodeFrame(nil, "fuzz", 1, ops)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wal.AppendFrame(nil, append([]byte{StreamFrameData}, valid...)))
	f.Add(wal.AppendFrame(nil, []byte{StreamFrameClose}))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x00})
	torn := wal.AppendFrame(nil, append([]byte{StreamFrameData}, valid...))
	f.Add(torn[:len(torn)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		e := New(Config{Shards: 1})
		defer e.Close()
		ss := NewStreamServer(e, nil)
		srv, cli := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = ss.ServeConn(srv)
			srv.Close()
		}()
		go io.Copy(io.Discard, cli) // drain acks/errs
		_, _ = cli.Write(data)
		cli.Close()
		<-done

		// The engine survived whatever the stream did.
		frame, err := EncodeFrame(nil, "after", 1, ops)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.SubmitFrame(frame); err != nil {
			t.Fatalf("engine broken after fuzzed stream: %v", err)
		}
		e.Flush()
		_ = e.Summary()
	})
}

// FuzzOpCodec holds the codec to two properties on arbitrary bytes:
// decoding never panics, and any frame that decodes has a canonical
// form — re-encoding the decoded value and decoding again reproduces
// the same bytes (encode∘decode is idempotent).
func FuzzOpCodec(f *testing.F) {
	recOps := []Op{
		EventOp(Record{SwarmID: 5, PeerID: 11, Seed: true, Online: true, Time: 3.5}),
		EventOp(Record{SwarmID: -1, PeerID: 0, Time: 0}),
	}
	metaOps := []Op{MetaOp(trace.SwarmMeta{ID: 9, Title: "m"}, 30)}
	censusOps := []Op{CensusOp(trace.Snapshot{Meta: trace.SwarmMeta{ID: 2}, Seeds: 1, Leechers: 4})}
	for _, ops := range [][]Op{recOps, metaOps, censusOps} {
		plain, err := EncodeFrame(nil, "", 0, ops)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(plain)
		keyed, err := EncodeFrame(nil, "source-a", 42, ops)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(keyed)
	}
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		source, seq, ops, err := DecodeFrame(data)
		if err != nil {
			return // rejected without panicking: all the contract asks
		}
		c1, err := EncodeFrame(nil, source, seq, ops)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		s2, q2, ops2, err := DecodeFrame(c1)
		if err != nil {
			t.Fatalf("canonical form failed to decode: %v", err)
		}
		if s2 != source || q2 != seq || len(ops2) != len(ops) {
			t.Fatalf("canonical decode changed key/shape: (%q,%d,%d) -> (%q,%d,%d)",
				source, seq, len(ops), s2, q2, len(ops2))
		}
		c2, err := EncodeFrame(nil, s2, q2, ops2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("encode∘decode not idempotent:\n c1=%x\n c2=%x", c1, c2)
		}
	})
}
