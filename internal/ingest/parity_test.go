package ingest

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"swarmavail/internal/measure"
	"swarmavail/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// parityGolden pins the statistics both pipelines must produce for the
// fixed generator seeds below. Regenerate with
//
//	go test ./internal/ingest -run TestIngestMeasureParity -update
//
// after an intentional change to the shared definitions.
type parityGolden struct {
	StudySwarms  int                               `json:"study_swarms"`
	CensusSwarms int                               `json:"census_swarms"`
	Headlines    measure.StudyHeadlines            `json:"headlines"`
	FirstMonthQ  map[string]float64                `json:"first_month_quantiles"`
	FullQ        map[string]float64                `json:"full_quantiles"`
	SumFirst     float64                           `json:"sum_first_month_availability"`
	SumFull      float64                           `json:"sum_full_availability"`
	Extent       map[string]measure.BundlingExtent `json:"bundling_extent"`
}

var parityQuantiles = []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}

// TestIngestMeasureParity replays one generated campaign — an
// availability study plus a census snapshot — through both analysis
// paths and requires they agree: the streaming engine in this package
// and the offline batch functions in internal/measure. The agreed
// numbers are then pinned against a committed golden file, so a change
// that shifts BOTH pipelines in lockstep (e.g. editing a shared
// definition in measure) is still caught.
func TestIngestMeasureParity(t *testing.T) {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(300, 11))
	snaps := trace.GenerateSnapshot(trace.SnapshotConfig{Seed: 13, NumSwarms: 500})

	// Offline reference.
	fm, fl := measure.Availabilities(traces)
	head := measure.HeadlinesFromAvailabilities(fm, fl)
	skFM, skFull := measure.AvailabilitySketches(traces)
	ext := measure.ExtentOfBundling(snaps)

	// Online path: the same records through the streaming engine.
	e := New(Config{Shards: 4})
	defer e.Close()
	w := e.NewWriter()
	for _, tr := range traces {
		for _, op := range TraceOps(tr) {
			if err := w.Put(op); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, s := range snaps {
		if err := w.ObserveCensus(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	sum := e.Summary()

	// Per-swarm availabilities agree to 1e-9 (the arithmetic is shared
	// and ordered identically, so in practice they agree bitwise).
	const tol = 1e-9
	var sumFM, sumFull float64
	for i, tr := range traces {
		st, ok := e.Swarm(tr.Meta.ID)
		if !ok {
			t.Fatalf("swarm %d missing from online state", tr.Meta.ID)
		}
		if d := math.Abs(st.FirstMonth - fm[i]); d > tol {
			t.Fatalf("swarm %d first-month availability: online %v offline %v", tr.Meta.ID, st.FirstMonth, fm[i])
		}
		if d := math.Abs(st.Full - fl[i]); d > tol {
			t.Fatalf("swarm %d full availability: online %v offline %v", tr.Meta.ID, st.Full, fl[i])
		}
		sumFM += fm[i]
		sumFull += fl[i]
	}

	// Aggregates: headline fractions, sketch quantiles, bundling
	// counters — all must be identical, not merely close.
	if got := sum.Headlines(); got != head {
		t.Errorf("headlines diverged: online %+v offline %+v", got, head)
	}
	fmq := make(map[string]float64, len(parityQuantiles))
	flq := make(map[string]float64, len(parityQuantiles))
	for _, q := range parityQuantiles {
		key := fmt.Sprintf("%g", q)
		fmq[key] = sum.FirstMonth.Quantile(q)
		flq[key] = sum.Full.Quantile(q)
		if fmq[key] != skFM.Quantile(q) || flq[key] != skFull.Quantile(q) {
			t.Errorf("quantile q=%v diverged between online and offline sketches", q)
		}
	}
	for cat, want := range ext {
		if got := sum.Categories[cat].Extent(cat); got != want {
			t.Errorf("%v bundling extent diverged: online %+v offline %+v", cat, got, want)
		}
	}

	got := parityGolden{
		StudySwarms:  sum.StudySwarms,
		CensusSwarms: sum.CensusSwarms,
		Headlines:    head,
		FirstMonthQ:  fmq,
		FullQ:        flq,
		SumFirst:     sumFM,
		SumFull:      sumFull,
		Extent:       make(map[string]measure.BundlingExtent, len(ext)),
	}
	for cat, x := range ext {
		got.Extent[cat.String()] = x
	}

	path := filepath.Join("testdata", "parity_golden.json")
	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	var want parityGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	// float64 survives a JSON round-trip exactly, so deep equality is
	// the right comparison here.
	if !reflect.DeepEqual(got, want) {
		gb, _ := json.MarshalIndent(got, "", "  ")
		t.Errorf("statistics drifted from golden file (rerun with -update if intentional)\ngot:\n%s\nwant:\n%s", gb, raw)
	}
}

// summaryFingerprint marshals everything a Summary knows — including
// the sketch quantiles and category counters that json.Marshal skips —
// so two summaries can be compared byte for byte.
func summaryFingerprint(t *testing.T, sum *Summary) []byte {
	t.Helper()
	quant := make(map[string][2]float64, len(parityQuantiles))
	for _, q := range parityQuantiles {
		quant[fmt.Sprintf("%g", q)] = [2]float64{sum.FirstMonth.Quantile(q), sum.Full.Quantile(q)}
	}
	cats := make(map[string]CategoryCounters, len(sum.Categories))
	for cat, cc := range sum.Categories {
		cats[cat.String()] = cc
	}
	b, err := json.Marshal(struct {
		*Summary
		Quantiles  map[string][2]float64
		Categories map[string]CategoryCounters
	}{sum, quant, cats})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelDecodeSummaryParity replays the same archived campaign
// through the engine twice — once decoded by the sequential
// trace.Scanner, once by the parallel worker-pool decoder — and
// requires byte-identical Summary JSON. This is the end-to-end guarantee
// that switching availd/study replay onto parallel decode cannot change
// a single published statistic.
func TestParallelDecodeSummaryParity(t *testing.T) {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(300, 11))
	var data bytes.Buffer
	if err := trace.WriteTraces(&data, traces); err != nil {
		t.Fatal(err)
	}

	run := func(src trace.Source[trace.SwarmTrace]) []byte {
		e := New(Config{Shards: 4})
		defer e.Close()
		n, err := ReplayTraces(e, src, 4)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if n != len(traces) {
			t.Fatalf("replayed %d swarms, want %d", n, len(traces))
		}
		return summaryFingerprint(t, e.Summary())
	}

	seq := run(trace.NewTraceScanner(bytes.NewReader(data.Bytes())))
	psc := trace.NewParallelTraceScanner(bytes.NewReader(data.Bytes()), 4)
	defer psc.Close()
	par := run(psc)
	if !bytes.Equal(seq, par) {
		t.Fatalf("summary diverged between decoders:\nscanner:  %s\nparallel: %s", seq, par)
	}
}
