package ingest

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"swarmavail/internal/obs"
	"swarmavail/internal/trace"
)

// ErrClosed is returned by writes submitted after Close.
var ErrClosed = errors.New("ingest: engine closed")

// ClosedError is the error returned when a Writer's buffered batch is
// dropped because the engine closed underneath it. It wraps ErrClosed
// (errors.Is(err, ErrClosed) is true) and carries the number of ops
// lost, so callers can account for the data loss instead of guessing.
// The same count is added to the ingest_writer_dropped_total counter.
type ClosedError struct {
	// Dropped is the number of buffered ops that were discarded.
	Dropped int
}

func (e *ClosedError) Error() string {
	return fmt.Sprintf("ingest: engine closed (%d buffered ops dropped)", e.Dropped)
}

// Unwrap makes errors.Is(err, ErrClosed) hold.
func (e *ClosedError) Unwrap() error { return ErrClosed }

// batchPool recycles the []Op batch buffers that travel through the
// shard queues. A buffer's life cycle is: Writer/Submit fills it →
// ownership transfers through the queue (no copy) → the shard applies
// it and puts it back. Elements are cleared before pooling so a parked
// buffer cannot pin registration payloads for the GC.
//
// The free list is a bounded channel rather than a sync.Pool: the
// ingest hot path allocates little else, so with a small live heap the
// GC runs every few MB and would empty a sync.Pool on every cycle —
// turning each delivery into a fresh make([]Op). The channel's buffers
// survive GC; when it is full, put drops the buffer (bounding retained
// memory at init's size), and the zero value degrades to plain
// allocation.
type batchPool struct {
	free chan []Op
}

// init sizes the free list; called once before the engine starts.
func (p *batchPool) init(size int) { p.free = make(chan []Op, size) }

func (p *batchPool) get(capHint int) []Op {
	select {
	case b := <-p.free:
		return b[:0]
	default:
		return make([]Op, 0, capHint)
	}
}

func (p *batchPool) put(b []Op) {
	if cap(b) == 0 {
		return
	}
	clear(b) // drop aux pointers before parking
	b = b[:0]
	select {
	case p.free <- b:
	default: // full: let the GC have it
	}
}

// Engine is the sharded streaming-ingestion engine. Writes scale
// across shards (one state-owning goroutine each); reads are served
// from consistent per-shard snapshots merged on demand.
//
// Lifecycle: New → any number of concurrent Submit/Writer producers and
// Summary/Swarm readers → Flush (barrier) → Close. Close drains every
// queued batch before returning and is idempotent; writes racing or
// following Close return ErrClosed (never a panic), and reads keep
// working after Close, serving the final drained state.
//
// The lifecycle fast path is lock-free: producers and readers pay one
// atomic increment, one atomic flag load, and one atomic decrement per
// queue interaction — no RWMutex, so there is no reader-count cache
// line being bounced between cores per Submit. Close is the only slow
// path: it flips the closed flag, waits the in-flight queue users out,
// closes the queues, and joins the shard goroutines.
type Engine struct {
	cfg     Config
	shards  []*shard
	metrics *Metrics
	pool    batchPool
	parts   sync.Pool // *[][]Op partition scratch for multi-shard Submit
	wg      sync.WaitGroup

	// journal, when non-nil, makes every accepted batch durable before
	// (Block) or immediately after (Shed) it reaches a shard queue. Set
	// only by OpenDurable, after recovery replay and before any
	// producer exists, so the unsynchronised reads in enqueue are safe.
	journal *journal

	// dedup holds the per-source exactly-once windows consulted by
	// SubmitKeyed. On a durable engine its contents are recovered from
	// the checkpoint and keyed WAL frames before any producer exists.
	dedup dedupState

	// closed is the lifecycle fast-path flag: once set, no new queue
	// user may enter. inflight counts producers and readers currently
	// touching the shard queues; Close waits for it to reach zero
	// before closing the queues, so a queue can never be written after
	// it is closed. drained carries the wakeup from the exit that takes
	// inflight to zero after closed is set, so Close can sleep instead
	// of spinning (buffered so the sender never blocks; a stale token
	// costs Close one extra loop iteration).
	closed   atomic.Bool
	inflight atomic.Int64
	drained  chan struct{}

	// snapCache memoizes the merged engine-wide read snapshot keyed by
	// the per-shard snapshot pointers, and snapNonce makes ETags unique
	// per engine incarnation (see snapshot.go).
	snapCache atomic.Pointer[mergedSnap]
	snapNonce string

	// closeMu serialises Close (slow path only — never touched by
	// writes or reads). stopped (under closeMu) records a completed
	// drain; done is closed when the drain completes, and post-close
	// readers block on it before touching shard state directly.
	closeMu sync.Mutex
	stopped bool
	done    chan struct{}
}

// New starts an engine with cfg (zero fields take defaults). For an
// engine that survives restarts, see OpenDurable.
func New(cfg Config) *Engine {
	e := newEngine(cfg)
	e.start()
	return e
}

// newEngine constructs an engine without starting its shard goroutines,
// so OpenDurable can install checkpointed state into the shard maps
// while they are still single-threaded.
func newEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults(runtime.GOMAXPROCS(0))
	e := &Engine{
		cfg:       cfg,
		metrics:   newMetrics(cfg.Metrics, cfg.Shards),
		done:      make(chan struct{}),
		drained:   make(chan struct{}, 1),
		snapNonce: snapNonce(),
	}
	// Enough parked buffers for every queue slot plus the batches being
	// filled and decoded at the edges.
	e.pool.init(cfg.Shards*cfg.QueueDepth + 2*cfg.Shards + 8)
	e.shards = make([]*shard, cfg.Shards)
	wc := cfg.windowConfig()
	for i := range e.shards {
		e.shards[i] = newShard(i, cfg.QueueDepth, e.metrics, &e.pool, wc, cfg.SnapshotMaxAge)
		s := e.shards[i]
		e.metrics.reg.GaugeFunc("ingest_shard_queue_depth",
			func() float64 { return float64(len(s.in)) },
			obs.L("shard", strconv.Itoa(i)))
	}
	e.registerSnapshotGauges()
	return e
}

// start launches the shard goroutines.
func (e *Engine) start() {
	e.wg.Add(len(e.shards))
	for _, s := range e.shards {
		go func(s *shard) {
			defer e.wg.Done()
			s.run()
		}(s)
	}
}

// Registry returns the registry the engine's instruments live on —
// cfg.Metrics if one was supplied, the engine's private registry
// otherwise.
func (e *Engine) Registry() *obs.Registry { return e.metrics.reg }

// Shards returns the shard count.
func (e *Engine) Shards() int { return e.cfg.Shards }

func (e *Engine) shardFor(swarmID int) *shard {
	return e.shards[shardIndex(swarmID, len(e.shards))]
}

// enter registers the caller as an in-flight queue user. It returns
// false when the engine is closed. The memory-order argument for why a
// queue send after a successful enter can never hit a closed channel:
// the increment of inflight and the load of closed are sequentially
// consistent, so if enter loaded closed == false, Close's flag store
// had not happened yet, and Close's subsequent wait observes this
// caller's increment and stalls until the matching exit.
func (e *Engine) enter() bool {
	e.inflight.Add(1)
	if e.closed.Load() {
		// Bounce through exit so a bouncing entrant still wakes a
		// Close that observed its increment.
		e.exit()
		return false
	}
	return true
}

// exit releases the in-flight registration taken by enter. The exit
// that takes inflight to zero after Close set the flag sends the drain
// wakeup (non-blocking: the channel is buffered and Close re-checks the
// count, so a stale token is harmless).
func (e *Engine) exit() {
	if e.inflight.Add(-1) == 0 && e.closed.Load() {
		select {
		case e.drained <- struct{}{}:
		default:
		}
	}
}

// enqueue delivers one pool-owned batch to shard i under the configured
// overflow policy. The caller must hold an enter() registration and
// must not touch the batch afterwards: ownership transfers to the shard
// (or back to the pool on shed/error) in every path.
//
// With a journal attached, the batch is encoded before any send (the
// shard may recycle the buffer the moment it is delivered), and the
// journal append and queue send happen under one shared acquisition of
// the journal gate. Under Block the frame is durable before the send,
// so a batch whose Submit returned nil survives a crash; under Shed the
// send is attempted first and only delivered batches are journaled —
// journal-first would resurrect shed batches at recovery.
func (e *Engine) enqueue(i int, batch []Op) error {
	msg := shardMsg{ops: batch}
	if e.journal == nil {
		if e.cfg.OnFull == Shed {
			select {
			case e.shards[i].in <- msg:
			default:
				e.metrics.shed.Add(uint64(len(batch)))
				e.pool.put(batch)
				return nil
			}
		} else {
			e.shards[i].in <- msg
		}
		e.metrics.records.Add(uint64(len(batch)))
		return nil
	}

	n := len(batch)
	frame, err := e.journal.encode(batch)
	if err != nil {
		e.pool.put(batch)
		return err
	}
	e.journal.gate.RLock()
	defer e.journal.gate.RUnlock()
	if e.cfg.OnFull == Shed {
		select {
		case e.shards[i].in <- msg:
		default:
			e.metrics.shed.Add(uint64(n))
			e.pool.put(batch)
			e.journal.release(frame)
			return nil
		}
		if err := e.journal.append(frame, n); err != nil {
			// The batch is already with the shard (applied in memory but
			// not durable): surface the journal failure to the producer.
			return err
		}
	} else {
		if err := e.journal.append(frame, n); err != nil {
			e.pool.put(batch)
			return err
		}
		e.shards[i].in <- msg
	}
	e.metrics.records.Add(uint64(n))
	return nil
}

// Submit partitions ops by owning shard and enqueues one batch per
// shard touched. Safe for concurrent use; ops for the same swarm keep
// their relative order within a call (and across calls from the same
// goroutine). Under the default Block policy a full shard queue stalls
// the caller (backpressure); under Shed the overflowing batch is
// dropped and counted in Metrics().Shed. After Close, Submit returns
// ErrClosed. The caller keeps ownership of ops: its contents are copied
// into pool-recycled batch buffers.
func (e *Engine) Submit(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	if !e.enter() {
		return ErrClosed
	}
	defer e.exit()
	if len(e.shards) == 1 {
		batch := e.pool.get(len(ops))
		batch = append(batch, ops...)
		return e.enqueue(0, batch)
	}
	// Partition into pooled per-shard buffers. The [][]Op scratch is
	// itself recycled, so a steady-state Submit allocates nothing.
	var parts [][]Op
	if v := e.parts.Get(); v != nil {
		parts = *(v.(*[][]Op))
	} else {
		parts = make([][]Op, len(e.shards))
	}
	// Size cold-start buffers for this batch's per-shard share (with
	// slack for skew), not the full BatchSize: a pool miss then costs
	// what the batch needs, and append regrows the rare hot shard.
	hint := len(ops)/len(e.shards) + len(ops)/8 + 8
	for _, op := range ops {
		i := shardIndex(op.SwarmID(), len(e.shards))
		if parts[i] == nil {
			parts[i] = e.pool.get(hint)
		}
		parts[i] = append(parts[i], op)
	}
	var firstErr error
	for i, part := range parts {
		if len(part) > 0 {
			if firstErr != nil {
				// A journal failure already poisoned this call: don't
				// deliver the rest of a batch whose durability promise
				// broke mid-way. enqueue consumed the earlier buffers.
				e.pool.put(part)
			} else if err := e.enqueue(i, part); err != nil {
				firstErr = err
			}
		}
		parts[i] = nil
	}
	e.parts.Put(&parts)
	return firstErr
}

// Observe ingests a single monitor record (convenience; prefer a
// Writer on hot paths).
func (e *Engine) Observe(rec Record) error { return e.Submit([]Op{EventOp(rec)}) }

// RegisterSwarm ingests a swarm registration.
func (e *Engine) RegisterSwarm(meta trace.SwarmMeta, horizonDays float64) error {
	return e.Submit([]Op{MetaOp(meta, horizonDays)})
}

// ObserveCensus ingests a census observation.
func (e *Engine) ObserveCensus(snap trace.Snapshot) error {
	return e.Submit([]Op{CensusOp(snap)})
}

// Flush blocks until every op submitted before the call has been
// applied (a barrier through every shard queue). After Close it waits
// for the drain to finish (the close applies everything) and returns.
func (e *Engine) Flush() {
	if !e.enter() {
		<-e.done
		return
	}
	defer e.exit()
	ack := make(chan struct{}, len(e.shards))
	for _, s := range e.shards {
		s.in <- shardMsg{ack: ack}
	}
	for range e.shards {
		<-ack
	}
}

// Close drains every shard queue, stops the shard goroutines, and
// returns once all submitted work is applied. It is idempotent, and
// safe to race with Submit/Flush/readers: late writes get ErrClosed,
// late reads serve the final state. A write that was acknowledged (its
// Submit or flush returned nil) before or during Close is always
// applied before Close returns.
func (e *Engine) Close() {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.stopped {
		return
	}
	e.closed.Store(true)
	// Wait the in-flight queue users out. New entrants bounce off the
	// closed flag; the ones already inside finish their sends against
	// still-open queues and live shard goroutines. Every decrement to
	// zero after the flag store sends a drained token, so this wait
	// sleeps instead of burning a core; the count is re-checked per
	// token because tokens can be stale.
	for e.inflight.Load() != 0 {
		<-e.drained
	}
	for _, s := range e.shards {
		close(s.in)
	}
	e.wg.Wait()
	if e.journal != nil {
		// Every accepted batch is both journaled and applied by now;
		// closing the log fsyncs its tail. Call Checkpoint *before*
		// Close to also fold that state into a checkpoint file.
		_ = e.journal.log.Close()
	}
	e.stopped = true
	close(e.done)
}

// Summary requests a consistent aggregate from every shard and merges
// them. It observes everything the caller submitted before the call
// (readers queue behind writes, never the other way around). After
// Close it reads the shards' final state directly.
func (e *Engine) Summary() *Summary {
	sum := NewSummary()
	if !e.enter() {
		// Shard goroutines have exited once done closes, so their
		// state is safe to read in place.
		<-e.done
		for _, s := range e.shards {
			sum.Merge(s.summarize())
		}
		return sum
	}
	defer e.exit()
	ch := make(chan *Summary, len(e.shards))
	for _, s := range e.shards {
		s.in <- shardMsg{summary: ch}
	}
	for range e.shards {
		sum.Merge(<-ch)
	}
	return sum
}

// Swarm returns the current snapshot of one swarm.
func (e *Engine) Swarm(id int) (SwarmStats, bool) {
	if !e.enter() {
		<-e.done
		if st, ok := e.shardFor(id).swarms[id]; ok {
			return st.stats(), true
		}
		return SwarmStats{}, false
	}
	defer e.exit()
	ch := make(chan *SwarmStats, 1)
	e.shardFor(id).in <- shardMsg{swarmID: id, swarm: ch}
	st := <-ch
	if st == nil {
		return SwarmStats{}, false
	}
	return *st, true
}

// Metrics snapshots the engine's operational counters.
func (e *Engine) Metrics() MetricsSnapshot {
	depths := make([]int, len(e.shards))
	for i, s := range e.shards {
		depths[i] = len(s.in)
	}
	return e.metrics.snapshot(depths, e.cfg.OnFull)
}

// Writer is a per-producer batching front end: ops accumulate in
// per-shard buffers and flush to the shard queues when BatchSize is
// reached (or on Flush). One Writer must not be shared between
// goroutines; open one per producer — per-swarm ordering is preserved
// because a swarm's ops always travel through the same shard buffer in
// append order. Writes after Engine.Close return a *ClosedError
// reporting how many buffered ops were dropped.
//
// Buffers come from the engine's batch pool and are handed to the
// shard whole — the shard applies the batch and recycles the buffer —
// so a steady-state Put/flush cycle performs no allocation and no
// batch copy.
type Writer struct {
	e    *Engine
	bufs [][]Op
}

// NewWriter opens a batching writer.
func (e *Engine) NewWriter() *Writer {
	return &Writer{e: e, bufs: make([][]Op, len(e.shards))}
}

// Put appends one op, flushing the owning shard's buffer if full.
func (w *Writer) Put(op Op) error {
	i := shardIndex(op.SwarmID(), len(w.e.shards))
	buf := w.bufs[i]
	if buf == nil {
		buf = w.e.pool.get(w.e.cfg.BatchSize)
	}
	buf = append(buf, op)
	w.bufs[i] = buf
	if len(buf) >= w.e.cfg.BatchSize {
		return w.flushShard(i)
	}
	return nil
}

// Observe appends a monitor record.
func (w *Writer) Observe(rec Record) error { return w.Put(EventOp(rec)) }

// RegisterSwarm appends a swarm registration.
func (w *Writer) RegisterSwarm(meta trace.SwarmMeta, horizonDays float64) error {
	return w.Put(MetaOp(meta, horizonDays))
}

// ObserveCensus appends a census observation.
func (w *Writer) ObserveCensus(snap trace.Snapshot) error {
	return w.Put(CensusOp(snap))
}

// flushShard hands shard i's buffer to its queue. If the engine closed
// underneath the writer the batch cannot be delivered: the loss is
// counted in ingest_writer_dropped_total and reported through the
// returned *ClosedError instead of being discarded silently.
func (w *Writer) flushShard(i int) error {
	batch := w.bufs[i]
	if len(batch) == 0 {
		return nil
	}
	w.bufs[i] = nil
	if !w.e.enter() {
		n := len(batch)
		w.e.metrics.writerDropped.Add(uint64(n))
		w.e.pool.put(batch)
		return &ClosedError{Dropped: n}
	}
	defer w.e.exit()
	return w.e.enqueue(i, batch)
}

// Flush pushes every buffered op to its shard. It does not wait for
// application; use Engine.Flush for a barrier. If the engine closed,
// the returned *ClosedError totals the dropped ops across all shard
// buffers.
func (w *Writer) Flush() error {
	var dropped int
	var first error
	for i := range w.bufs {
		err := w.flushShard(i)
		if err == nil {
			continue
		}
		var ce *ClosedError
		if errors.As(err, &ce) {
			dropped += ce.Dropped
		} else if first == nil {
			first = err
		}
	}
	if dropped > 0 {
		return &ClosedError{Dropped: dropped}
	}
	return first
}
