package ingest

import (
	"runtime"
	"sync"

	"swarmavail/internal/trace"
)

// Engine is the sharded streaming-ingestion engine. Writes scale
// across shards (one state-owning goroutine each); reads are served
// from consistent per-shard snapshots merged on demand.
//
// Lifecycle: New → any number of concurrent Submit/Writer producers and
// Summary/Swarm readers → Flush (barrier) → Close. Submitting after
// Close panics.
type Engine struct {
	cfg     Config
	shards  []*shard
	metrics *Metrics
	wg      sync.WaitGroup
}

// New starts an engine with cfg (zero fields take defaults).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults(runtime.GOMAXPROCS(0))
	e := &Engine{cfg: cfg, metrics: newMetrics()}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = newShard(cfg.QueueDepth, e.metrics)
	}
	e.wg.Add(cfg.Shards)
	for _, s := range e.shards {
		go func(s *shard) {
			defer e.wg.Done()
			s.run()
		}(s)
	}
	return e
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return e.cfg.Shards }

func (e *Engine) shardFor(swarmID int) *shard {
	return e.shards[shardIndex(swarmID, len(e.shards))]
}

// Submit partitions ops by owning shard and enqueues one batch per
// shard touched. Safe for concurrent use; ops for the same swarm keep
// their relative order within a call (and across calls from the same
// goroutine).
func (e *Engine) Submit(ops []Op) {
	if len(ops) == 0 {
		return
	}
	e.metrics.records.Add(uint64(len(ops)))
	if len(e.shards) == 1 {
		batch := make([]Op, len(ops))
		copy(batch, ops)
		e.shards[0].in <- shardMsg{ops: batch}
		return
	}
	parts := make([][]Op, len(e.shards))
	for _, op := range ops {
		i := shardIndex(op.SwarmID(), len(e.shards))
		parts[i] = append(parts[i], op)
	}
	for i, part := range parts {
		if len(part) > 0 {
			e.shards[i].in <- shardMsg{ops: part}
		}
	}
}

// Observe ingests a single monitor record (convenience; prefer a
// Writer on hot paths).
func (e *Engine) Observe(rec Record) { e.Submit([]Op{EventOp(rec)}) }

// RegisterSwarm ingests a swarm registration.
func (e *Engine) RegisterSwarm(meta trace.SwarmMeta, horizonDays float64) {
	e.Submit([]Op{MetaOp(meta, horizonDays)})
}

// ObserveCensus ingests a census observation.
func (e *Engine) ObserveCensus(snap trace.Snapshot) { e.Submit([]Op{CensusOp(snap)}) }

// Flush blocks until every op submitted before the call has been
// applied (a barrier through every shard queue).
func (e *Engine) Flush() {
	ack := make(chan struct{}, len(e.shards))
	for _, s := range e.shards {
		s.in <- shardMsg{ack: ack}
	}
	for range e.shards {
		<-ack
	}
}

// Close stops the shard goroutines after draining their queues. Read
// snapshots (Summary/Swarm) must be taken before Close.
func (e *Engine) Close() {
	for _, s := range e.shards {
		close(s.in)
	}
	e.wg.Wait()
}

// Summary requests a consistent aggregate from every shard and merges
// them. It observes everything the caller submitted before the call
// (readers queue behind writes, never the other way around).
func (e *Engine) Summary() *Summary {
	ch := make(chan *Summary, len(e.shards))
	for _, s := range e.shards {
		s.in <- shardMsg{summary: ch}
	}
	sum := NewSummary()
	for range e.shards {
		sum.Merge(<-ch)
	}
	return sum
}

// Swarm returns the current snapshot of one swarm.
func (e *Engine) Swarm(id int) (SwarmStats, bool) {
	ch := make(chan *SwarmStats, 1)
	e.shardFor(id).in <- shardMsg{swarmID: id, swarm: ch}
	st := <-ch
	if st == nil {
		return SwarmStats{}, false
	}
	return *st, true
}

// Metrics snapshots the engine's operational counters.
func (e *Engine) Metrics() MetricsSnapshot {
	depths := make([]int, len(e.shards))
	for i, s := range e.shards {
		depths[i] = len(s.in)
	}
	return e.metrics.snapshot(depths)
}

// Writer is a per-producer batching front end: ops accumulate in
// per-shard buffers and flush to the shard queues when BatchSize is
// reached (or on Flush). One Writer must not be shared between
// goroutines; open one per producer — per-swarm ordering is preserved
// because a swarm's ops always travel through the same shard buffer in
// append order.
type Writer struct {
	e    *Engine
	bufs [][]Op
}

// NewWriter opens a batching writer.
func (e *Engine) NewWriter() *Writer {
	return &Writer{e: e, bufs: make([][]Op, len(e.shards))}
}

// Put appends one op, flushing the owning shard's buffer if full.
func (w *Writer) Put(op Op) {
	i := shardIndex(op.SwarmID(), len(w.e.shards))
	w.bufs[i] = append(w.bufs[i], op)
	if len(w.bufs[i]) >= w.e.cfg.BatchSize {
		w.flushShard(i)
	}
}

// Observe appends a monitor record.
func (w *Writer) Observe(rec Record) { w.Put(EventOp(rec)) }

// RegisterSwarm appends a swarm registration.
func (w *Writer) RegisterSwarm(meta trace.SwarmMeta, horizonDays float64) {
	w.Put(MetaOp(meta, horizonDays))
}

// ObserveCensus appends a census observation.
func (w *Writer) ObserveCensus(snap trace.Snapshot) { w.Put(CensusOp(snap)) }

func (w *Writer) flushShard(i int) {
	batch := w.bufs[i]
	if len(batch) == 0 {
		return
	}
	w.bufs[i] = nil
	w.e.metrics.records.Add(uint64(len(batch)))
	w.e.shards[i].in <- shardMsg{ops: batch}
}

// Flush pushes every buffered op to its shard. It does not wait for
// application; use Engine.Flush for a barrier.
func (w *Writer) Flush() {
	for i := range w.bufs {
		w.flushShard(i)
	}
}
