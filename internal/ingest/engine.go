package ingest

import (
	"errors"
	"runtime"
	"strconv"
	"sync"

	"swarmavail/internal/obs"
	"swarmavail/internal/trace"
)

// ErrClosed is returned by writes submitted after Close.
var ErrClosed = errors.New("ingest: engine closed")

// Engine is the sharded streaming-ingestion engine. Writes scale
// across shards (one state-owning goroutine each); reads are served
// from consistent per-shard snapshots merged on demand.
//
// Lifecycle: New → any number of concurrent Submit/Writer producers and
// Summary/Swarm readers → Flush (barrier) → Close. Close drains every
// queued batch before returning and is idempotent; writes racing or
// following Close return ErrClosed (never a panic), and reads keep
// working after Close, serving the final drained state.
type Engine struct {
	cfg     Config
	shards  []*shard
	metrics *Metrics
	wg      sync.WaitGroup

	// lifecycle: producers and readers hold it shared while touching
	// shard queues; Close holds it exclusively while closing the queues
	// and waiting the shard goroutines out, so a queue can never be
	// written after it is closed.
	lifecycle sync.RWMutex
	closed    bool
}

// New starts an engine with cfg (zero fields take defaults).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults(runtime.GOMAXPROCS(0))
	e := &Engine{cfg: cfg, metrics: newMetrics(cfg.Metrics, cfg.Shards)}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = newShard(i, cfg.QueueDepth, e.metrics)
		s := e.shards[i]
		e.metrics.reg.GaugeFunc("ingest_shard_queue_depth",
			func() float64 { return float64(len(s.in)) },
			obs.L("shard", strconv.Itoa(i)))
	}
	e.wg.Add(cfg.Shards)
	for _, s := range e.shards {
		go func(s *shard) {
			defer e.wg.Done()
			s.run()
		}(s)
	}
	return e
}

// Registry returns the registry the engine's instruments live on —
// cfg.Metrics if one was supplied, the engine's private registry
// otherwise.
func (e *Engine) Registry() *obs.Registry { return e.metrics.reg }

// Shards returns the shard count.
func (e *Engine) Shards() int { return e.cfg.Shards }

func (e *Engine) shardFor(swarmID int) *shard {
	return e.shards[shardIndex(swarmID, len(e.shards))]
}

// enqueueLocked delivers one batch to shard i under the configured
// overflow policy. Callers hold the lifecycle read lock.
func (e *Engine) enqueueLocked(i int, ops []Op) {
	msg := shardMsg{ops: ops}
	if e.cfg.OnFull == Shed {
		select {
		case e.shards[i].in <- msg:
		default:
			e.metrics.shed.Add(uint64(len(ops)))
			return
		}
	} else {
		e.shards[i].in <- msg
	}
	e.metrics.records.Add(uint64(len(ops)))
}

// Submit partitions ops by owning shard and enqueues one batch per
// shard touched. Safe for concurrent use; ops for the same swarm keep
// their relative order within a call (and across calls from the same
// goroutine). Under the default Block policy a full shard queue stalls
// the caller (backpressure); under Shed the overflowing batch is
// dropped and counted in Metrics().Shed. After Close, Submit returns
// ErrClosed.
func (e *Engine) Submit(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	e.lifecycle.RLock()
	defer e.lifecycle.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if len(e.shards) == 1 {
		batch := make([]Op, len(ops))
		copy(batch, ops)
		e.enqueueLocked(0, batch)
		return nil
	}
	parts := make([][]Op, len(e.shards))
	for _, op := range ops {
		i := shardIndex(op.SwarmID(), len(e.shards))
		parts[i] = append(parts[i], op)
	}
	for i, part := range parts {
		if len(part) > 0 {
			e.enqueueLocked(i, part)
		}
	}
	return nil
}

// Observe ingests a single monitor record (convenience; prefer a
// Writer on hot paths).
func (e *Engine) Observe(rec Record) error { return e.Submit([]Op{EventOp(rec)}) }

// RegisterSwarm ingests a swarm registration.
func (e *Engine) RegisterSwarm(meta trace.SwarmMeta, horizonDays float64) error {
	return e.Submit([]Op{MetaOp(meta, horizonDays)})
}

// ObserveCensus ingests a census observation.
func (e *Engine) ObserveCensus(snap trace.Snapshot) error {
	return e.Submit([]Op{CensusOp(snap)})
}

// Flush blocks until every op submitted before the call has been
// applied (a barrier through every shard queue). After Close it is a
// no-op: the close already drained everything.
func (e *Engine) Flush() {
	e.lifecycle.RLock()
	defer e.lifecycle.RUnlock()
	if e.closed {
		return
	}
	ack := make(chan struct{}, len(e.shards))
	for _, s := range e.shards {
		s.in <- shardMsg{ack: ack}
	}
	for range e.shards {
		<-ack
	}
}

// Close drains every shard queue, stops the shard goroutines, and
// returns once all submitted work is applied. It is idempotent, and
// safe to race with Submit/Flush/readers: late writes get ErrClosed,
// late reads serve the final state.
func (e *Engine) Close() {
	e.lifecycle.Lock()
	defer e.lifecycle.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.in)
	}
	e.wg.Wait()
}

// Summary requests a consistent aggregate from every shard and merges
// them. It observes everything the caller submitted before the call
// (readers queue behind writes, never the other way around). After
// Close it reads the shards' final state directly.
func (e *Engine) Summary() *Summary {
	e.lifecycle.RLock()
	defer e.lifecycle.RUnlock()
	sum := NewSummary()
	if e.closed {
		// Shard goroutines have exited (Close waited them out under the
		// exclusive lock), so their state is safe to read in place.
		for _, s := range e.shards {
			sum.Merge(s.summarize())
		}
		return sum
	}
	ch := make(chan *Summary, len(e.shards))
	for _, s := range e.shards {
		s.in <- shardMsg{summary: ch}
	}
	for range e.shards {
		sum.Merge(<-ch)
	}
	return sum
}

// Swarm returns the current snapshot of one swarm.
func (e *Engine) Swarm(id int) (SwarmStats, bool) {
	e.lifecycle.RLock()
	defer e.lifecycle.RUnlock()
	if e.closed {
		if st, ok := e.shardFor(id).swarms[id]; ok {
			return st.stats(), true
		}
		return SwarmStats{}, false
	}
	ch := make(chan *SwarmStats, 1)
	e.shardFor(id).in <- shardMsg{swarmID: id, swarm: ch}
	st := <-ch
	if st == nil {
		return SwarmStats{}, false
	}
	return *st, true
}

// Metrics snapshots the engine's operational counters.
func (e *Engine) Metrics() MetricsSnapshot {
	depths := make([]int, len(e.shards))
	for i, s := range e.shards {
		depths[i] = len(s.in)
	}
	return e.metrics.snapshot(depths, e.cfg.OnFull)
}

// Writer is a per-producer batching front end: ops accumulate in
// per-shard buffers and flush to the shard queues when BatchSize is
// reached (or on Flush). One Writer must not be shared between
// goroutines; open one per producer — per-swarm ordering is preserved
// because a swarm's ops always travel through the same shard buffer in
// append order. Writes after Engine.Close return ErrClosed.
type Writer struct {
	e    *Engine
	bufs [][]Op
}

// NewWriter opens a batching writer.
func (e *Engine) NewWriter() *Writer {
	return &Writer{e: e, bufs: make([][]Op, len(e.shards))}
}

// Put appends one op, flushing the owning shard's buffer if full.
func (w *Writer) Put(op Op) error {
	i := shardIndex(op.SwarmID(), len(w.e.shards))
	w.bufs[i] = append(w.bufs[i], op)
	if len(w.bufs[i]) >= w.e.cfg.BatchSize {
		return w.flushShard(i)
	}
	return nil
}

// Observe appends a monitor record.
func (w *Writer) Observe(rec Record) error { return w.Put(EventOp(rec)) }

// RegisterSwarm appends a swarm registration.
func (w *Writer) RegisterSwarm(meta trace.SwarmMeta, horizonDays float64) error {
	return w.Put(MetaOp(meta, horizonDays))
}

// ObserveCensus appends a census observation.
func (w *Writer) ObserveCensus(snap trace.Snapshot) error {
	return w.Put(CensusOp(snap))
}

func (w *Writer) flushShard(i int) error {
	batch := w.bufs[i]
	if len(batch) == 0 {
		return nil
	}
	w.bufs[i] = nil
	w.e.lifecycle.RLock()
	defer w.e.lifecycle.RUnlock()
	if w.e.closed {
		return ErrClosed
	}
	w.e.enqueueLocked(i, batch)
	return nil
}

// Flush pushes every buffered op to its shard. It does not wait for
// application; use Engine.Flush for a barrier.
func (w *Writer) Flush() error {
	var first error
	for i := range w.bufs {
		if err := w.flushShard(i); err != nil && first == nil {
			first = err
		}
	}
	return first
}
