package ingest

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"swarmavail/internal/trace"
)

// NewSourceID returns a fresh random idempotency source id (8 bytes,
// hex). One id names one sender stream: batches pushed under it carry
// monotonic sequence numbers, and the server deduplicates on the
// (source, seq) pair.
func NewSourceID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to the
		// jitter PRNG's seed space rather than refusing to start.
		return "src-" + strconv.FormatInt(time.Now().UnixNano(), 36)
	}
	return hex.EncodeToString(b[:])
}

// EpochConflictError reports a push or read rejected (or silently
// re-homed) because the node's cluster epoch disagrees with the
// client's. It is fatal to the attempt: retrying against the same node
// cannot change the verdict — the caller must learn the newer epoch
// first.
type EpochConflictError struct {
	ClientEpoch uint64
	NodeEpoch   uint64
}

func (e *EpochConflictError) Error() string {
	return fmt.Sprintf("ingest: epoch conflict (client %d, node %d)", e.ClientEpoch, e.NodeEpoch)
}

// HTTPClientConfig parameterises an HTTPClient. The zero value (plus a
// URL or BaseURL) selects sensible defaults.
type HTTPClientConfig struct {
	// URL is the ingest endpoint (e.g. http://127.0.0.1:8647/v1/ingest).
	// Derived from BaseURL when empty.
	URL string
	// BaseURL is the server root (e.g. http://127.0.0.1:8647) the GET
	// helpers (FetchState, FetchSummary, FetchCDF) resolve against.
	// Derived from URL when empty by trimming the /v1/ingest suffix.
	BaseURL string
	// Client is the underlying HTTP client (default: 30s timeout). Tests
	// inject fault-wrapped transports here.
	Client *http.Client
	// MaxAttempts bounds tries per batch, first attempt included
	// (default 6).
	MaxAttempts int
	// BackoffBase/BackoffCap shape the capped exponential retry backoff
	// (defaults 100ms / 5s); each wait is jittered to [d/2, d).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed seeds the jitter stream (0 = fixed default; determinism is
	// harmless here and useful in tests).
	Seed int64
	// Source is the idempotency source id stamped (with a per-client
	// sequence) on every push so server-side dedup makes retries
	// exactly-once. Default: a fresh random id from NewSourceID.
	Source string
	// Epoch, when non-zero, stamps every request with the cluster slot
	// epoch (X-Avail-Epoch). A node whose epoch disagrees answers 409,
	// which surfaces as a fatal *EpochConflictError instead of burning
	// retries.
	Epoch uint64
	// Logf, when set, receives one line per retried attempt.
	Logf func(format string, args ...any)
}

func (c HTTPClientConfig) withDefaults() HTTPClientConfig {
	if c.URL == "" && c.BaseURL != "" {
		c.URL = strings.TrimSuffix(c.BaseURL, "/") + "/v1/ingest"
	}
	if c.BaseURL == "" {
		c.BaseURL = strings.TrimSuffix(c.URL, "/v1/ingest")
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 0x16e57
	}
	if c.Source == "" {
		c.Source = NewSourceID()
	}
	return c
}

// HTTPClient pushes monitor records to an availd /v1/ingest endpoint
// with at-least-once delivery: each batch is retried with capped,
// jittered exponential backoff through transient failures (transport
// errors, 5xx, 429) and abandoned only on a fatal server verdict (other
// 4xx) or when the context ends. A batch is acknowledged once the
// server has accepted every record into its engine queues — which a
// gracefully shut down availd drains before exiting, so acked records
// survive a SIGTERM on either end of the connection.
type HTTPClient struct {
	cfg HTTPClientConfig

	// seq numbers the batches pushed under cfg.Source; retries of one
	// batch reuse its number, which is what lets the server deduplicate.
	seq atomic.Uint64

	mu  sync.Mutex
	rng *mrand.Rand

	retries uint64 // attempts beyond the first, across all pushes
}

// NewHTTPClient returns a client for cfg.URL.
func NewHTTPClient(cfg HTTPClientConfig) *HTTPClient {
	cfg = cfg.withDefaults()
	return &HTTPClient{cfg: cfg, rng: mrand.New(mrand.NewSource(cfg.Seed))}
}

// Source returns the client's idempotency source id.
func (c *HTTPClient) Source() string { return c.cfg.Source }

// Retries reports attempts beyond the first across the client's
// lifetime — the cost of the faults it rode through.
func (c *HTTPClient) Retries() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

func (c *HTTPClient) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffCap || d <= 0 {
		d = c.cfg.BackoffCap
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retries++
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

func (c *HTTPClient) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Push delivers one batch of records, retrying transient failures until
// the server acknowledges all of them or ctx ends. Returns nil exactly
// when the batch is acknowledged. The batch is keyed with the client's
// source id and the next sequence number, so a retry whose first
// attempt actually landed is acknowledged by the server without being
// re-applied (exactly-once against dedup-aware servers; plain
// at-least-once against older ones, which ignore the headers).
func (c *HTTPClient) Push(ctx context.Context, recs []Record) error {
	return c.PushKeyed(ctx, c.cfg.Source, c.seq.Add(1), recs)
}

// PushKeyed delivers one batch under an explicit (source, seq)
// idempotency key — for callers that relay batches on behalf of an
// upstream sender and must preserve its key (the cluster gateway).
// source may be "" to push unkeyed.
func (c *HTTPClient) PushKeyed(ctx context.Context, source string, seq uint64, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("ingest: encoding record: %w", err)
		}
	}
	payload := body.Bytes()

	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			wait := c.backoff(attempt - 1)
			c.logf("ingest push failed (attempt %d/%d, retrying in %v): %v",
				attempt-1, c.cfg.MaxAttempts, wait, lastErr)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		}
		err := c.pushOnce(ctx, source, seq, payload, len(recs))
		if err == nil {
			if attempt > 1 {
				c.logf("ingest push recovered after %d failed attempts", attempt-1)
			}
			return nil
		}
		// The caller's context ending is fatal: either it was cancelled
		// (give the cancel back promptly instead of burning the remaining
		// backoff budget) or its own deadline passed. A per-attempt
		// timeout from http.Client.Timeout also surfaces as
		// context.DeadlineExceeded (since Go 1.16) but with ctx still
		// live — that one stays retryable, which slow-network fault tests
		// depend on.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, context.Canceled) {
			return err
		}
		var fatal *fatalPushError
		if errors.As(err, &fatal) {
			return fatal.err
		}
		lastErr = err
	}
	return fmt.Errorf("ingest: push failed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// PushStats summarises one PushTraces run.
type PushStats struct {
	// Records is the number of monitor records acknowledged by the
	// server; Swarms the number of study traces they came from.
	Records int
	Swarms  int
}

// PushTraces streams an archived availability study's monitor records
// to the server in acknowledged batches of `batch` records (default
// 256): replay-over-network. src is any trace source — pair it with
// trace.NewParallelTraceScanner so decode keeps up with the network.
// Registrations carry no event record and travel only on the local
// path; see TraceOps. On error, the returned stats count what was
// acknowledged before the failure.
func (c *HTTPClient) PushTraces(ctx context.Context, src trace.Source[trace.SwarmTrace], batch int) (PushStats, error) {
	if batch <= 0 {
		batch = 256
	}
	var st PushStats
	buf := make([]Record, 0, batch)
	flush := func() error {
		if err := c.Push(ctx, buf); err != nil {
			return err
		}
		st.Records += len(buf)
		buf = buf[:0]
		return nil
	}
	for src.Scan() {
		t := src.Record()
		st.Swarms++
		for _, op := range TraceOps(t) {
			rec, ok := op.EventRecord()
			if !ok {
				continue
			}
			buf = append(buf, rec)
			if len(buf) >= batch {
				if err := flush(); err != nil {
					return st, err
				}
			}
		}
	}
	if err := src.Err(); err != nil {
		return st, err
	}
	return st, flush()
}

// fatalPushError marks a server verdict that retrying cannot change.
type fatalPushError struct{ err error }

func (e *fatalPushError) Error() string { return e.err.Error() }
func (e *fatalPushError) Unwrap() error { return e.err }

func (c *HTTPClient) pushOnce(ctx context.Context, source string, seq uint64, payload []byte, n int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.URL, bytes.NewReader(payload))
	if err != nil {
		return &fatalPushError{err: err}
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if source != "" {
		req.Header.Set(HeaderSource, source)
		req.Header.Set(HeaderSeq, strconv.FormatUint(seq, 10))
	}
	if c.cfg.Epoch != 0 {
		req.Header.Set(HeaderEpoch, strconv.FormatUint(c.cfg.Epoch, 10))
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err // transport error: retryable
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if err := c.checkEpoch(resp); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		statusErr := fmt.Errorf("ingest: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return statusErr
		}
		return &fatalPushError{err: statusErr}
	}
	var ack struct {
		Accepted int `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return fmt.Errorf("ingest: bad ack: %w", err)
	}
	if ack.Accepted != n {
		return &fatalPushError{err: fmt.Errorf("ingest: server accepted %d of %d records", ack.Accepted, n)}
	}
	return nil
}

// checkEpoch turns an epoch disagreement into a fatal
// *EpochConflictError: a 409 carrying the node's epoch (the fencing
// verdict), or a success from a node whose epoch no longer matches the
// client's stamp (the node moved on between our stamp and its answer —
// the caller must re-learn before trusting further requests).
func (c *HTTPClient) checkEpoch(resp *http.Response) error {
	nodeEpochStr := resp.Header.Get(HeaderEpoch)
	if nodeEpochStr == "" {
		return nil
	}
	nodeEpoch, err := strconv.ParseUint(nodeEpochStr, 10, 64)
	if err != nil {
		return nil // pre-epoch server or proxy noise; ignore
	}
	conflict := &fatalPushError{err: &EpochConflictError{ClientEpoch: c.cfg.Epoch, NodeEpoch: nodeEpoch}}
	if resp.StatusCode == http.StatusConflict {
		return conflict
	}
	if resp.StatusCode == http.StatusOK && c.cfg.Epoch != 0 && nodeEpoch != c.cfg.Epoch {
		return conflict
	}
	return nil
}

// getJSON fetches BaseURL+path and decodes the body into v, with the
// same retry discipline as Push: transport errors, 5xx and 429 are
// retried with capped jittered backoff; other 4xx are fatal.
func (c *HTTPClient) getJSON(ctx context.Context, path string, v any) error {
	_, _, err := c.getJSONTagged(ctx, path, "", v)
	return err
}

// getJSONTagged is getJSON with HTTP conditional-GET support: inm, when
// non-empty, travels as If-None-Match, and a 304 answer reports
// notModified=true with v left untouched. The returned etag is the
// server's validator for whatever state the answer reflects (the echoed
// inm on a 304).
func (c *HTTPClient) getJSONTagged(ctx context.Context, path, inm string, v any) (etag string, notModified bool, err error) {
	target := c.cfg.BaseURL + path
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			wait := c.backoff(attempt - 1)
			c.logf("ingest get %s failed (attempt %d/%d, retrying in %v): %v",
				path, attempt-1, c.cfg.MaxAttempts, wait, lastErr)
			select {
			case <-ctx.Done():
				return "", false, ctx.Err()
			case <-time.After(wait):
			}
		}
		etag, notModified, err = c.getOnce(ctx, target, inm, v)
		if err == nil {
			return etag, notModified, nil
		}
		if ctx.Err() != nil {
			return "", false, ctx.Err()
		}
		if errors.Is(err, context.Canceled) {
			return "", false, err
		}
		var fatal *fatalPushError
		if errors.As(err, &fatal) {
			return "", false, fatal.err
		}
		lastErr = err
	}
	return "", false, fmt.Errorf("ingest: get %s failed after %d attempts: %w", path, c.cfg.MaxAttempts, lastErr)
}

func (c *HTTPClient) getOnce(ctx context.Context, target, inm string, v any) (string, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return "", false, &fatalPushError{err: err}
	}
	if c.cfg.Epoch != 0 {
		req.Header.Set(HeaderEpoch, strconv.FormatUint(c.cfg.Epoch, 10))
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return "", false, err // transport error: retryable
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if err := c.checkEpoch(resp); err != nil {
		return "", false, err
	}
	if inm != "" && resp.StatusCode == http.StatusNotModified {
		return inm, true, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		statusErr := fmt.Errorf("ingest: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return "", false, statusErr
		}
		return "", false, &fatalPushError{err: statusErr}
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return "", false, fmt.Errorf("ingest: bad response body: %w", err)
	}
	return resp.Header.Get("ETag"), false, nil
}

// FetchState fetches the server's full mergeable summary state
// (GET /v1/state) — the scatter-gather payload the cluster gateway
// merges across nodes via Summary.Merge.
func (c *HTTPClient) FetchState(ctx context.Context) (*Summary, error) {
	sum, _, _, err := c.FetchStateTagged(ctx, false, "")
	return sum, err
}

// consistentQuery appends the ?consistent=1 barrier flag.
func consistentQuery(path string, consistent bool) string {
	if consistent {
		return path + "?consistent=1"
	}
	return path
}

// FetchStateTagged is FetchState with the read-path controls:
// consistent selects the queue-barrier path on the node (default is the
// lock-free snapshot, at most its SnapshotMaxAge stale), and inm makes
// the fetch conditional — on 304 it returns (nil, inm, true, nil) and
// the caller reuses its cached copy.
func (c *HTTPClient) FetchStateTagged(ctx context.Context, consistent bool, inm string) (*Summary, string, bool, error) {
	var st SummaryState
	etag, notModified, err := c.getJSONTagged(ctx, consistentQuery("/v1/state", consistent), inm, &st)
	if err != nil {
		return nil, "", false, err
	}
	if notModified {
		return nil, etag, true, nil
	}
	sum, err := st.Summary()
	if err != nil {
		return nil, "", false, err
	}
	return sum, etag, false, nil
}

// FetchWindowState fetches the server's mergeable windowed aggregate
// (GET /v1/window/state) with the same controls as FetchStateTagged.
func (c *HTTPClient) FetchWindowState(ctx context.Context, consistent bool, inm string) (*WindowState, string, bool, error) {
	var win WindowState
	etag, notModified, err := c.getJSONTagged(ctx, consistentQuery("/v1/window/state", consistent), inm, &win)
	if err != nil {
		return nil, "", false, err
	}
	if notModified {
		return nil, etag, true, nil
	}
	return &win, etag, false, nil
}

// FetchSummary fetches the server's rendered GET /v1/summary response
// (public counters + headlines; the sketches do not travel on this
// endpoint — use FetchState for mergeable state).
func (c *HTTPClient) FetchSummary(ctx context.Context) (*SummaryResponse, error) {
	resp := &SummaryResponse{Summary: NewSummary()}
	if err := c.getJSON(ctx, "/v1/summary", resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// FetchCDF fetches GET /v1/availability/cdf, asking for qs (nil = the
// server's default quantile list).
func (c *HTTPClient) FetchCDF(ctx context.Context, qs []float64) (*CDFResponse, error) {
	path := "/v1/availability/cdf"
	if len(qs) > 0 {
		parts := make([]string, len(qs))
		for i, q := range qs {
			parts[i] = strconv.FormatFloat(q, 'g', -1, 64)
		}
		path += "?q=" + url.QueryEscape(strings.Join(parts, ","))
	}
	var resp CDFResponse
	if err := c.getJSON(ctx, path, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
