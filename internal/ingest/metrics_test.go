package ingest

import (
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"swarmavail/internal/obs"
	"swarmavail/internal/trace"
)

// TestMetricsSnapshotComplete runs a workload that exercises every
// instrument — including shedding — then checks by reflection that no
// exported MetricsSnapshot field is left at its zero value. Adding a
// field to MetricsSnapshot without populating it in snapshot() fails
// here, which is the regression this guards: handlers used to copy
// fields by hand and silently skip new ones.
func TestMetricsSnapshotComplete(t *testing.T) {
	e := New(Config{Shards: 2, BatchSize: 8, QueueDepth: 1, OnFull: Shed})
	defer e.Close()

	traces := trace.GenerateStudy(trace.DefaultStudyConfig(40, 3))
	var ops []Op
	for _, tr := range traces {
		ops = append(ops, TraceOps(tr)...)
	}
	// Hammer Submit until the tiny queues overflow and shed; under the
	// Shed policy Submit never blocks, so this terminates quickly.
	deadline := time.Now().Add(10 * time.Second)
	for e.Metrics().Shed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("could not provoke shedding")
		}
		if err := e.Submit(ops); err != nil {
			t.Fatal(err)
		}
	}
	// Exercise the exactly-once path: the second submit of the same
	// (source, seq) key is a duplicate and populates Deduped.
	if applied, err := e.SubmitKeyed("metrics-test", 1, ops[:1]); err != nil || !applied {
		t.Fatalf("first keyed submit: applied=%v err=%v", applied, err)
	}
	if applied, err := e.SubmitKeyed("metrics-test", 1, ops[:1]); err != nil || applied {
		t.Fatalf("duplicate keyed submit: applied=%v err=%v", applied, err)
	}
	e.Flush()
	// Exercise the snapshot read cache: back-to-back lock-free reads of
	// a quiet engine serve the memoized merge, populating ReadCacheHits.
	e.Snapshot()
	e.Snapshot()

	snap := e.Metrics()
	v := reflect.ValueOf(snap)
	typ := v.Type()
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Errorf("MetricsSnapshot.%s is zero after a full-coverage workload — snapshot() missed it", typ.Field(i).Name)
		}
	}
	// ShardDepths may legitimately hold zeros but must cover every shard.
	if len(snap.ShardDepths) != e.Shards() || len(snap.ShardApplied) != e.Shards() {
		t.Errorf("per-shard slices sized %d/%d, want %d", len(snap.ShardDepths), len(snap.ShardApplied), e.Shards())
	}
}

// TestShardCountersConcurrent drives parallel writers into a sharded
// engine on a shared registry and checks that the per-shard applied
// counters, their registry-wide sum, and the snapshot all agree with
// the number of ops submitted. Run under -race.
func TestShardCountersConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Shards: 4, BatchSize: 16, Metrics: reg})
	defer e.Close()

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := e.NewWriter()
			for j := 0; j < perWriter; j++ {
				w.Observe(Record{SwarmID: wi*perWriter + j, PeerID: 1, Seed: true, Online: true})
			}
			if err := w.Flush(); err != nil {
				t.Error(err)
			}
		}(wi)
	}
	wg.Wait()
	e.Flush()

	const want = writers * perWriter
	snap := e.Metrics()
	if snap.Applied != want || snap.Records != want {
		t.Fatalf("snapshot applied %d records %d, want %d", snap.Applied, snap.Records, want)
	}
	var perShard uint64
	for _, n := range snap.ShardApplied {
		perShard += n
	}
	if perShard != want {
		t.Fatalf("per-shard applied sums to %d, want %d", perShard, want)
	}
	if got := reg.Sum("ingest_applied_total"); got != want {
		t.Fatalf("registry sum = %v, want %d", got, want)
	}
	if v, ok := reg.Value("ingest_records_total"); !ok || v != want {
		t.Fatalf("ingest_records_total = %v ok=%v", v, ok)
	}
	// Queue-depth gauges exist for every shard and read 0 after Flush.
	for i := 0; i < e.Shards(); i++ {
		if _, ok := reg.Value("ingest_shard_queue_depth", obs.L("shard", strconv.Itoa(i))); !ok {
			t.Errorf("missing queue-depth gauge for shard %d", i)
		}
	}
}
