package ingest

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"swarmavail/internal/measure"
	"swarmavail/internal/trace"
)

// replayStudy archives a generated study, then streams it back through
// a fresh engine via the JSONL scanner — the full production replay
// path — with the given shard/writer parallelism.
func replayStudy(t *testing.T, traces []trace.SwarmTrace, shards, writers int) *Engine {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteTraces(&buf, traces); err != nil {
		t.Fatal(err)
	}
	e := New(Config{Shards: shards, BatchSize: 64, QueueDepth: 16})
	n, err := ReplayTraces(e, trace.NewTraceScanner(&buf), writers)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(traces) {
		t.Fatalf("replayed %d swarms, want %d", n, len(traces))
	}
	return e
}

// TestOnlineMatchesOffline is the acceptance check: replaying a
// generated campaign concurrently through the sharded engine must
// reproduce the offline internal/measure answers — per-swarm
// availabilities within 1e-9 (they are computed with identical
// arithmetic) and CDF quantiles identical to the offline sketch of the
// same geometry.
func TestOnlineMatchesOffline(t *testing.T) {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(2000, 42))
	e := replayStudy(t, traces, 8, 4)
	defer e.Close()

	for _, tr := range traces {
		st, ok := e.Swarm(tr.Meta.ID)
		if !ok {
			t.Fatalf("swarm %d missing after replay", tr.Meta.ID)
		}
		wantFM, wantFull := measure.Availability(tr)
		if d := math.Abs(st.FirstMonth - wantFM); d > 1e-9 {
			t.Fatalf("swarm %d first-month: online %v offline %v (Δ %g)",
				tr.Meta.ID, st.FirstMonth, wantFM, d)
		}
		if d := math.Abs(st.Full - wantFull); d > 1e-9 {
			t.Fatalf("swarm %d full: online %v offline %v (Δ %g)",
				tr.Meta.ID, st.Full, wantFull, d)
		}
		if st.BusyPeriods != len(tr.SeedSessions) {
			t.Fatalf("swarm %d busy periods %d, want %d",
				tr.Meta.ID, st.BusyPeriods, len(tr.SeedSessions))
		}
		if st.SeedsOnline != 0 {
			t.Fatalf("swarm %d still has %d seeds online after full replay",
				tr.Meta.ID, st.SeedsOnline)
		}
	}

	sum := e.Summary()
	if sum.Swarms != len(traces) || sum.StudySwarms != len(traces) {
		t.Fatalf("summary counts %d/%d, want %d", sum.Swarms, sum.StudySwarms, len(traces))
	}
	offline := measure.Headlines(traces)
	online := sum.Headlines()
	if online.Swarms != offline.Swarms ||
		math.Abs(online.FullyAvailableFirstMonth-offline.FullyAvailableFirstMonth) > 1e-12 ||
		math.Abs(online.MostlyUnavailableOverall-offline.MostlyUnavailableOverall) > 1e-12 {
		t.Fatalf("headlines: online %+v offline %+v", online, offline)
	}

	// The sharded, merged sketches must equal the offline single-pass
	// sketches exactly — merging is lossless.
	offFM, offFull := measure.AvailabilitySketches(traces)
	for _, q := range []float64{0, 0.05, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if got, want := sum.FirstMonth.Quantile(q), offFM.Quantile(q); got != want {
			t.Fatalf("first-month q%v: online %v offline %v", q, got, want)
		}
		if got, want := sum.Full.Quantile(q), offFull.Quantile(q); got != want {
			t.Fatalf("full q%v: online %v offline %v", q, got, want)
		}
	}
	if sum.FirstMonth.N() != len(traces) || sum.Full.N() != len(traces) {
		t.Fatalf("sketch sizes %d/%d", sum.FirstMonth.N(), sum.Full.N())
	}
}

// TestShardingInvariance pins that the answer does not depend on the
// shard or writer count.
func TestShardingInvariance(t *testing.T) {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(400, 9))
	e1 := replayStudy(t, traces, 1, 1)
	defer e1.Close()
	e8 := replayStudy(t, traces, 8, 6)
	defer e8.Close()
	s1, s8 := e1.Summary(), e8.Summary()
	if s1.Swarms != s8.Swarms || s1.BusyPeriods != s8.BusyPeriods ||
		s1.FullyAvailableFirstMonth != s8.FullyAvailableFirstMonth ||
		s1.MostlyUnavailable != s8.MostlyUnavailable {
		t.Fatalf("1-shard %+v vs 8-shard %+v", s1, s8)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if s1.Full.Quantile(q) != s8.Full.Quantile(q) {
			t.Fatalf("q%v differs across shard counts", q)
		}
	}
}

// TestCensusMatchesOffline replays a census through 4 concurrent
// writers and compares the per-category counters with the offline
// bundling analysis.
func TestCensusMatchesOffline(t *testing.T) {
	snaps := trace.GenerateSnapshot(trace.SnapshotConfig{Seed: 7, NumSwarms: 20000})
	var buf bytes.Buffer
	if err := trace.WriteSnapshots(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	e := New(Config{Shards: 8})
	defer e.Close()
	if _, err := ReplaySnapshots(e, trace.NewSnapshotScanner(&buf), 4); err != nil {
		t.Fatal(err)
	}
	sum := e.Summary()
	if sum.CensusSwarms != len(snaps) {
		t.Fatalf("census swarms %d, want %d", sum.CensusSwarms, len(snaps))
	}

	offlineExt := measure.ExtentOfBundling(snaps)
	for _, cat := range []trace.Category{trace.Music, trace.TV, trace.Books} {
		got := sum.Categories[cat].Extent(cat)
		if got != offlineExt[cat] {
			t.Fatalf("%v extent: online %+v offline %+v", cat, got, offlineExt[cat])
		}
	}

	offCmp := measure.CompareAvailability(snaps, trace.Books)
	onCmp := sum.Categories[trace.Books].Compare(trace.Books)
	if onCmp.NAll != offCmp.NAll || onCmp.NBundles != offCmp.NBundles {
		t.Fatalf("counts: online %+v offline %+v", onCmp, offCmp)
	}
	relClose := func(a, b float64) bool {
		if a == b {
			return true
		}
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	if !relClose(onCmp.SeedlessAll, offCmp.SeedlessAll) ||
		!relClose(onCmp.SeedlessBundles, offCmp.SeedlessBundles) ||
		!relClose(onCmp.MeanDownloadsAll, offCmp.MeanDownloadsAll) ||
		!relClose(onCmp.MeanDownloadsBundles, offCmp.MeanDownloadsBundles) {
		t.Fatalf("comparison: online %+v offline %+v", onCmp, offCmp)
	}

	// A repeated census observation must not double-count the
	// classification counters.
	before := sum.Categories[trace.Books].Swarms
	for _, s := range snaps[:100] {
		e.ObserveCensus(s)
	}
	e.Flush()
	if after := e.Summary().Categories[trace.Books].Swarms; after != before {
		t.Fatalf("re-observed census changed bundling counters: %d → %d", before, after)
	}
}

// TestConcurrentWritersAndReaders hammers the engine from 8 writer
// goroutines while readers snapshot concurrently — the -race test for
// the concurrent hot path.
func TestConcurrentWritersAndReaders(t *testing.T) {
	e := New(Config{Shards: 4, BatchSize: 32, QueueDepth: 8})
	const writers = 8
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(wi)))
			w := e.NewWriter()
			for i := 0; i < 2000; i++ {
				// Writers own disjoint swarm-id ranges so per-swarm
				// ordering holds by construction.
				id := wi*1000 + r.Intn(1000)
				tday := float64(i) / 100
				w.Observe(Record{SwarmID: id, PeerID: uint64(wi), Seed: i%3 == 0, Online: i%2 == 0, Time: tday})
			}
			w.Flush()
		}(wi)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for ri := 0; ri < 3; ri++ {
		readers.Add(1)
		go func(ri int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = e.Summary()
				_, _ = e.Swarm(ri * 997)
				_ = e.Metrics()
			}
		}(ri)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	e.Flush()
	m := e.Metrics()
	if m.Records != writers*2000 || m.Applied != writers*2000 {
		t.Fatalf("records %d applied %d, want %d", m.Records, m.Applied, writers*2000)
	}
	e.Close()
}

// TestSeedUnionSemantics checks that overlapping distinct seeds union
// their coverage, as merged seed sessions would offline.
func TestSeedUnionSemantics(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	meta := trace.SwarmMeta{ID: 1, Category: trace.TV}
	e.RegisterSwarm(meta, 100)
	evs := []Record{
		{SwarmID: 1, PeerID: 1, Seed: true, Online: true, Time: 0},
		{SwarmID: 1, PeerID: 2, Seed: true, Online: true, Time: 5},
		{SwarmID: 1, PeerID: 1, Seed: true, Online: false, Time: 10},
		{SwarmID: 1, PeerID: 2, Seed: true, Online: false, Time: 15},
		{SwarmID: 1, PeerID: 3, Seed: false, Online: true, Time: 15},
	}
	for _, rec := range evs {
		e.Observe(rec)
	}
	e.Flush()
	st, ok := e.Swarm(1)
	if !ok {
		t.Fatal("swarm missing")
	}
	if st.BusyPeriods != 1 {
		t.Fatalf("busy periods %d, want 1 (overlap must not split)", st.BusyPeriods)
	}
	if want := 15.0 / 100; math.Abs(st.Full-want) > 1e-12 {
		t.Fatalf("full availability %v, want %v", st.Full, want)
	}
	if want := 15.0 / 30; math.Abs(st.FirstMonth-want) > 1e-12 {
		t.Fatalf("first-month availability %v, want %v", st.FirstMonth, want)
	}
	if st.LeechersOnline != 1 || st.SeedsOnline != 0 {
		t.Fatalf("gauges %d/%d, want 0 seeds 1 leecher", st.SeedsOnline, st.LeechersOnline)
	}
}

// TestOpenIntervalLowerBound: a still-open seed session counts up to
// the last event, not beyond.
func TestOpenIntervalLowerBound(t *testing.T) {
	e := New(Config{Shards: 1})
	defer e.Close()
	e.RegisterSwarm(trace.SwarmMeta{ID: 4}, 200)
	e.Observe(Record{SwarmID: 4, PeerID: 1, Seed: true, Online: true, Time: 10})
	e.Observe(Record{SwarmID: 4, PeerID: 9, Seed: false, Online: true, Time: 40})
	e.Flush()
	st, _ := e.Swarm(4)
	if want := 30.0 / 200; math.Abs(st.Full-want) > 1e-12 {
		t.Fatalf("open-interval full availability %v, want %v", st.Full, want)
	}
	if want := 20.0 / 30; math.Abs(st.FirstMonth-want) > 1e-12 {
		t.Fatalf("open-interval first-month availability %v, want %v", st.FirstMonth, want)
	}
	if st.SeedsOnline != 1 {
		t.Fatalf("seeds online %d", st.SeedsOnline)
	}
}

func TestUnknownSwarmAndSpuriousEvents(t *testing.T) {
	e := New(Config{Shards: 2})
	defer e.Close()
	if _, ok := e.Swarm(12345); ok {
		t.Fatal("unknown swarm must report !ok")
	}
	// Offline event for a never-online seed must not corrupt state.
	e.Observe(Record{SwarmID: 8, PeerID: 1, Seed: true, Online: false, Time: 5})
	e.Observe(Record{SwarmID: 8, PeerID: 1, Seed: false, Online: false, Time: 6})
	e.Flush()
	st, ok := e.Swarm(8)
	if !ok || st.SeedsOnline != 0 || st.LeechersOnline != 0 || st.BusyPeriods != 0 {
		t.Fatalf("spurious offline corrupted state: %+v", st)
	}
	if st.Full != 0 {
		t.Fatalf("availability %v, want 0", st.Full)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	e := New(Config{Shards: 2, BatchSize: 10})
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(50, 3))
	w := e.NewWriter()
	total := 0
	for _, tr := range traces {
		ops := TraceOps(tr)
		total += len(ops)
		for _, op := range ops {
			w.Put(op)
		}
	}
	w.Flush()
	e.Flush()
	m := e.Metrics()
	if m.Records != uint64(total) || m.Applied != uint64(total) {
		t.Fatalf("records %d applied %d, want %d", m.Records, m.Applied, total)
	}
	if m.Batches == 0 || m.MeanBatchSize <= 0 || m.MeanBatchSize > 10 {
		t.Fatalf("batch stats: %+v", m)
	}
	if m.LatencyP50 <= 0 || m.LatencyP99 < m.LatencyP50/2 {
		t.Fatalf("latency quantiles: p50 %v p99 %v", m.LatencyP50, m.LatencyP99)
	}
	if len(m.ShardDepths) != 2 {
		t.Fatalf("shard depths %v", m.ShardDepths)
	}
	if m.RecordsPerSecond <= 0 {
		t.Fatalf("rate %v", m.RecordsPerSecond)
	}
	e.Close()
}

func TestShardIndexInRange(t *testing.T) {
	for n := 1; n <= 16; n++ {
		counts := make([]int, n)
		for id := 0; id < 10000; id++ {
			i := shardIndex(id, n)
			if i < 0 || i >= n {
				t.Fatalf("shardIndex(%d, %d) = %d", id, n, i)
			}
			counts[i]++
		}
		// Sequential ids must spread: no shard may own more than twice
		// its fair share.
		for i, c := range counts {
			if n > 1 && c > 2*10000/n {
				t.Fatalf("shard %d/%d owns %d of 10000 sequential ids", i, n, c)
			}
		}
	}
}
