package ingest

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"swarmavail/internal/trace"
	"swarmavail/internal/wal"
)

// sliceSource adapts a slice to trace.Source for the replay helpers.
type sliceSource[T any] struct {
	recs []T
	i    int
}

func (s *sliceSource[T]) Scan() bool {
	if s.i >= len(s.recs) {
		return false
	}
	s.i++
	return true
}
func (s *sliceSource[T]) Record() T  { return s.recs[s.i-1] }
func (s *sliceSource[T]) Err() error { return nil }

func TestOpsCodecRoundTrip(t *testing.T) {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(20, 7))
	snaps := trace.GenerateSnapshot(trace.SnapshotConfig{Seed: 13, NumSwarms: 25})
	var ops []Op
	for _, tr := range traces {
		ops = append(ops, TraceOps(tr)...)
	}
	for _, sn := range snaps {
		ops = append(ops, CensusOp(sn))
	}
	ops = append(ops, EventOp(Record{SwarmID: -3, PeerID: math.MaxUint64, Seed: true, Online: true, Time: math.Inf(1)}))

	frame, err := encodeOps(nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeOps(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i, op := range ops {
		g := got[i]
		if g.kind != op.kind {
			t.Fatalf("op %d kind %d, want %d", i, g.kind, op.kind)
		}
		switch op.kind {
		case opEvent:
			if g.rec != op.rec {
				t.Fatalf("op %d record %+v, want %+v", i, g.rec, op.rec)
			}
		case opMeta:
			if !reflect.DeepEqual(g.aux.meta, op.aux.meta) || g.aux.horizon != op.aux.horizon {
				t.Fatalf("op %d meta mismatch", i)
			}
		case opCensus:
			if !reflect.DeepEqual(g.aux.census, op.aux.census) {
				t.Fatalf("op %d census mismatch", i)
			}
		}
	}
}

func TestDecodeOpsRejectsGarbage(t *testing.T) {
	valid, err := encodeOps(nil, []Op{EventOp(Record{SwarmID: 1, Time: 2})})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           nil,
		"short":           {1, 0, 0},
		"bad version":     append([]byte{99}, valid[1:]...),
		"truncated op":    valid[:len(valid)-4],
		"trailing bytes":  append(append([]byte{}, valid...), 0xee),
		"absurd count":    {1, 0xff, 0xff, 0xff, 0xff, 0},
		"unknown kind":    {1, 1, 0, 0, 0, 42},
		"oversized aux":   {1, 1, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0x7f, 'x'},
		"meta not json":   {1, 1, 0, 0, 0, 1, 2, 0, 0, 0, 'n', 'o'},
		"census not json": {1, 1, 0, 0, 0, 2, 2, 0, 0, 0, 'n', 'o'},
	}
	for name, data := range cases {
		if _, err := decodeOps(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// replayHalves pushes traces[:k] and snaps, optionally checkpoints,
// then pushes traces[k:].
func feedDurable(t *testing.T, e *Engine, traces []trace.SwarmTrace, snaps []trace.Snapshot, k int, checkpoint bool) {
	t.Helper()
	if _, err := ReplayTraces(e, &sliceSource[trace.SwarmTrace]{recs: traces[:k]}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplaySnapshots(e, &sliceSource[trace.Snapshot]{recs: snaps}, 2); err != nil {
		t.Fatal(err)
	}
	if checkpoint {
		cs, err := e.Checkpoint()
		if err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		if cs.Skipped || cs.Seq == 0 {
			t.Fatalf("checkpoint did nothing: %+v", cs)
		}
	}
	if _, err := ReplayTraces(e, &sliceSource[trace.SwarmTrace]{recs: traces[k:]}, 2); err != nil {
		t.Fatal(err)
	}
}

// referenceFingerprint is the ground truth: the same data through a
// plain in-memory engine.
func referenceFingerprint(t *testing.T, shards int, traces []trace.SwarmTrace, snaps []trace.Snapshot) []byte {
	t.Helper()
	ref := New(Config{Shards: shards})
	defer ref.Close()
	if _, err := ReplayTraces(ref, &sliceSource[trace.SwarmTrace]{recs: traces}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplaySnapshots(ref, &sliceSource[trace.Snapshot]{recs: snaps}, 2); err != nil {
		t.Fatal(err)
	}
	return summaryFingerprint(t, ref.Summary())
}

func TestDurableCheckpointRecoverEquality(t *testing.T) {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(120, 11))
	snaps := trace.GenerateSnapshot(trace.SnapshotConfig{Seed: 13, NumSwarms: 150})
	want := referenceFingerprint(t, 4, traces, snaps)

	for _, mode := range []struct {
		name       string
		checkpoint bool
		reShards   int
	}{
		{"wal only", false, 4},
		{"checkpoint plus tail", true, 4},
		{"reshard 4 to 2", true, 2},
		{"reshard 4 to 7", false, 7},
	} {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			e, rs, err := OpenDurable(Config{Shards: 4}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
			if err != nil {
				t.Fatal(err)
			}
			if rs.CheckpointSeq != 0 || rs.ReplayedFrames != 0 {
				t.Fatalf("cold start recovered something: %+v", rs)
			}
			feedDurable(t, e, traces, snaps, 60, mode.checkpoint)
			if !bytes.Equal(summaryFingerprint(t, e.Summary()), want) {
				t.Fatal("durable engine diverged from in-memory reference before restart")
			}
			e.Close()

			e2, rs2, err := OpenDurable(Config{Shards: mode.reShards}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			if mode.checkpoint && rs2.CheckpointSeq == 0 {
				t.Fatalf("checkpoint not found: %+v", rs2)
			}
			if !mode.checkpoint && rs2.ReplayedFrames == 0 {
				t.Fatalf("nothing replayed: %+v", rs2)
			}
			got := summaryFingerprint(t, e2.Summary())
			if !bytes.Equal(got, want) {
				t.Fatalf("recovered state diverged (shards %d→%d)\ngot:  %s\nwant: %s",
					4, mode.reShards, got, want)
			}
		})
	}
}

func TestDurableRecoveryAfterCheckpointOnClosedEngine(t *testing.T) {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(60, 3))
	want := referenceFingerprint(t, 3, traces, nil)

	dir := t.TempDir()
	e, _, err := OpenDurable(Config{Shards: 3}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayTraces(e, &sliceSource[trace.SwarmTrace]{recs: traces}, 2); err != nil {
		t.Fatal(err)
	}
	e.Close()
	// The shutdown checkpoint runs after Close: the drained final state
	// is captured even though the journal is already sealed.
	cs, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint after close: %v", err)
	}
	if cs.Swarms == 0 {
		t.Fatalf("empty post-close checkpoint: %+v", cs)
	}

	e2, rs, err := OpenDurable(Config{Shards: 3}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if rs.CheckpointSeq != cs.Seq {
		t.Fatalf("recovered checkpoint seq %d, want %d", rs.CheckpointSeq, cs.Seq)
	}
	// Everything is inside the checkpoint; the journal tail holds only
	// already-covered frames.
	if rs.ReplayedFrames != 0 {
		t.Fatalf("replayed %d frames past a full checkpoint", rs.ReplayedFrames)
	}
	if got := summaryFingerprint(t, e2.Summary()); !bytes.Equal(got, want) {
		t.Fatal("recovered state diverged after post-close checkpoint")
	}
}

func TestDurableTornWALTailRecovers(t *testing.T) {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(40, 5))
	dir := t.TempDir()
	e, _, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayTraces(e, &sliceSource[trace.SwarmTrace]{recs: traces}, 1); err != nil {
		t.Fatal(err)
	}
	want := summaryFingerprint(t, e.Summary())
	e.Close()

	// Tear the tail: a crash mid-append leaves a half-written frame.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xba, 0xad, 0xf0}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, rs, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if rs.TruncatedBytes != 7 {
		t.Fatalf("TruncatedBytes = %d, want 7", rs.TruncatedBytes)
	}
	if got := summaryFingerprint(t, e2.Summary()); !bytes.Equal(got, want) {
		t.Fatal("torn tail lost acknowledged frames")
	}
}

func TestDurableBadFramePayloadCutsLog(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(Record{SwarmID: 1, PeerID: 2, Seed: true, Online: true, Time: 0.5}); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Append a frame whose envelope is valid but whose payload isn't an
	// op batch — what a foreign or future-versioned writer would leave.
	log, _, err := wal.Open(dir, wal.Options{Policy: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	badSeq, err := log.Append([]byte{0xfe, 0xfe, 0xfe})
	if err != nil {
		t.Fatal(err)
	}
	log.Close()

	e2, rs, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatalf("recovery refused a decodable-prefix log: %v", err)
	}
	defer e2.Close()
	if rs.BadFrameSeq != badSeq {
		t.Fatalf("BadFrameSeq = %d, want %d", rs.BadFrameSeq, badSeq)
	}
	if rs.ReplayedFrames != badSeq-1 {
		t.Fatalf("replayed %d frames, want %d", rs.ReplayedFrames, badSeq-1)
	}
	if st, ok := e2.Swarm(1); !ok || st.SeedsOnline != 1 {
		t.Fatalf("state before the bad frame lost: %+v ok=%v", st, ok)
	}
}

func TestCheckpointSkipAndPrune(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for round := 0; round < 3; round++ {
		if err := e.Observe(Record{SwarmID: round, PeerID: 9, Seed: true, Online: true, Time: float64(round)}); err != nil {
			t.Fatal(err)
		}
		cs, err := e.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if cs.Skipped {
			t.Fatalf("round %d: checkpoint skipped with fresh data", round)
		}
		// Nothing new ⇒ skip, no file churn.
		again, err := e.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if !again.Skipped || again.Seq != cs.Seq {
			t.Fatalf("round %d: idle checkpoint not skipped: %+v", round, again)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != checkpointsKept {
		t.Fatalf("%d checkpoint files on disk, want %d: %v", len(files), checkpointsKept, files)
	}
}

func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(30, 9))
	dir := t.TempDir()
	e, _, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayTraces(e, &sliceSource[trace.SwarmTrace]{recs: traces[:15]}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayTraces(e, &sliceSource[trace.SwarmTrace]{recs: traces[15:]}, 1); err != nil {
		t.Fatal(err)
	}
	want := summaryFingerprint(t, e.Summary())
	cs, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Corrupt the newest checkpoint mid-file: recovery must fall back
	// to the older one plus a longer WAL replay... but the WAL segments
	// the newest checkpoint truncated are gone, so the older checkpoint
	// alone cannot reach `want`. What recovery CAN promise is the state
	// of the newest *readable* checkpoint plus the surviving journal —
	// here, everything up to the older checkpoint. Verify it boots and
	// serves that, rather than failing or serving garbage.
	raw, err := os.ReadFile(checkpointPath(dir, cs.Seq))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(checkpointPath(dir, cs.Seq), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, rs, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatalf("recovery failed outright on a corrupt checkpoint: %v", err)
	}
	defer e2.Close()
	if rs.CheckpointSeq == cs.Seq || rs.CheckpointSeq == 0 {
		t.Fatalf("fell back to checkpoint %d, want the older one", rs.CheckpointSeq)
	}
	if e2.Summary().Swarms == 0 {
		t.Fatal("fallback recovery lost all state")
	}
	_ = want
}

func TestCheckpointOnPlainEngineErrors(t *testing.T) {
	e := New(Config{Shards: 1})
	defer e.Close()
	if _, err := e.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint on plain engine: %v", err)
	}
}

func TestOpenDurableRequiresDir(t *testing.T) {
	if _, _, err := OpenDurable(Config{}, DurabilityConfig{}); err == nil ||
		!strings.Contains(err.Error(), "Dir") {
		t.Fatalf("missing-dir error: %v", err)
	}
}

func TestDurableFsyncPolicies(t *testing.T) {
	for _, p := range []wal.SyncPolicy{wal.SyncEachAppend, wal.SyncInterval, wal.SyncNone} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			e, _, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: p})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				if err := e.Observe(Record{SwarmID: i, PeerID: 1, Seed: true, Online: true, Time: 1}); err != nil {
					t.Fatal(err)
				}
			}
			e.Close()
			e2, rs, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: p})
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			if rs.ReplayedOps != 100 {
				t.Fatalf("replayed %d ops, want 100", rs.ReplayedOps)
			}
		})
	}
}
