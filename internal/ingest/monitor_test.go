package ingest

import (
	"testing"
)

func obsOf(keys ...uint64) []PeerObservation {
	out := make([]PeerObservation, 0, len(keys))
	for _, k := range keys {
		out = append(out, PeerObservation{Key: k})
	}
	return out
}

func recOf(op Op, t *testing.T) Record {
	t.Helper()
	rec, ok := op.EventRecord()
	if !ok {
		t.Fatalf("op %+v is not an event", op)
	}
	return rec
}

func TestProbeDiffTransitions(t *testing.T) {
	d := NewProbeDiff(7)

	// Round 1: two leechers and a seed appear — three arrivals.
	ops := d.Ops(0.1, []PeerObservation{{Key: 1}, {Key: 2}, {Key: 3, Seed: true}})
	if len(ops) != 3 {
		t.Fatalf("round 1: %d ops, want 3 arrivals", len(ops))
	}
	for _, op := range ops {
		rec := recOf(op, t)
		if !rec.Online || rec.SwarmID != 7 || rec.Time != 0.1 {
			t.Fatalf("round 1 op %+v, want online at t=0.1 in swarm 7", rec)
		}
	}

	// Round 2: peer 1 still there, peer 2 gone, peer 4 new,
	// peer 3 still a seed (no-op).
	ops = d.Ops(0.2, []PeerObservation{{Key: 1}, {Key: 4}, {Key: 3, Seed: true}})
	if len(ops) != 2 {
		t.Fatalf("round 2: %d ops (%+v), want arrival of 4 + departure of 2", len(ops), ops)
	}
	arr := recOf(ops[0], t)
	dep := recOf(ops[1], t)
	if arr.PeerID != 4 || !arr.Online {
		t.Fatalf("round 2 first op %+v, want peer 4 online", arr)
	}
	if dep.PeerID != 2 || dep.Online {
		t.Fatalf("round 2 second op %+v, want peer 2 offline", dep)
	}

	// Round 3: peer 1 completes (leecher → seed) — offline as leecher,
	// online as seed, at the same instant.
	ops = d.Ops(0.3, []PeerObservation{{Key: 1, Seed: true}, {Key: 4}, {Key: 3, Seed: true}})
	if len(ops) != 2 {
		t.Fatalf("round 3: %d ops (%+v), want the seed flip pair", len(ops), ops)
	}
	off, on := recOf(ops[0], t), recOf(ops[1], t)
	if off.PeerID != 1 || off.Online || off.Seed {
		t.Fatalf("flip first half %+v, want peer 1 offline as leecher", off)
	}
	if on.PeerID != 1 || !on.Online || !on.Seed {
		t.Fatalf("flip second half %+v, want peer 1 online as seed", on)
	}

	// Close: everyone still online departs.
	ops = d.Close(0.4)
	if len(ops) != 3 {
		t.Fatalf("close: %d ops, want 3 departures", len(ops))
	}
	for _, op := range ops {
		rec := recOf(op, t)
		if rec.Online || rec.Time != 0.4 {
			t.Fatalf("close op %+v, want offline at t=0.4", rec)
		}
	}

	// After Close the differ restarts from empty.
	ops = d.Ops(0.5, obsOf(9))
	if len(ops) != 1 || !recOf(ops[0], t).Online {
		t.Fatalf("post-close round: %+v, want one arrival", ops)
	}
}

func TestProbeDiffDedupsWithinRound(t *testing.T) {
	d := NewProbeDiff(1)
	ops := d.Ops(0.1, []PeerObservation{{Key: 5}, {Key: 5, Seed: true}, {Key: 5}})
	if len(ops) != 1 {
		t.Fatalf("duplicated observation produced %d ops, want 1", len(ops))
	}
	if rec := recOf(ops[0], t); rec.Seed {
		t.Fatalf("dedup should keep the first observation, got %+v", rec)
	}
}

func TestProbeDiffDeterministicDepartures(t *testing.T) {
	mkops := func() []Op {
		d := NewProbeDiff(1)
		d.Ops(0.1, obsOf(9, 3, 7, 1, 5))
		return d.Ops(0.2, nil)
	}
	a, b := mkops(), mkops()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("want 5 departures, got %d and %d", len(a), len(b))
	}
	var prev uint64
	for i := range a {
		ra, rb := recOf(a[i], t), recOf(b[i], t)
		if ra != rb {
			t.Fatalf("departure order differs at %d: %+v vs %+v", i, ra, rb)
		}
		if ra.PeerID < prev {
			t.Fatalf("departures not sorted: %d after %d", ra.PeerID, prev)
		}
		prev = ra.PeerID
	}
}

func TestObservationKeyStable(t *testing.T) {
	a := ObservationKey("10.0.0.1:6881")
	if a != ObservationKey("10.0.0.1:6881") {
		t.Fatal("same address hashed differently")
	}
	if a == ObservationKey("10.0.0.2:6881") {
		t.Fatal("distinct addresses collided (FNV should separate these)")
	}
	if a == 0 {
		t.Fatal("zero key would collide with unset ids")
	}
}
