package ingest

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestSnapshotFreshAfterFlush pins the publish-before-ack contract: a
// flushed engine's lock-free snapshot is byte-identical to the barrier
// read, so in-process flush-then-read flows never see stale data.
func TestSnapshotFreshAfterFlush(t *testing.T) {
	e := New(Config{Shards: 3})
	defer e.Close()
	for _, ops := range studyOpsBySwarm(40, 3) {
		if err := e.Submit(ops); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()

	snap := e.Snapshot()
	mustJSON := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got, want := mustJSON(snap.Summary), mustJSON(e.Summary()); got != want {
		t.Fatalf("flushed snapshot summary diverged from barrier summary\n--- snapshot ---\n%s\n--- barrier ---\n%s", got, want)
	}
	if got, want := mustJSON(snap.Window), mustJSON(e.Window()); got != want {
		t.Fatalf("flushed snapshot window diverged from barrier window\n--- snapshot ---\n%s\n--- barrier ---\n%s", got, want)
	}
	if snap.Epoch == 0 || snap.ETag == "" {
		t.Fatalf("snapshot missing validator: epoch=%d etag=%q", snap.Epoch, snap.ETag)
	}

	// Idle engine: the validator is stable and the memoized merge serves
	// repeat reads (the serving cache).
	hits := e.Metrics().ReadCacheHits
	again := e.Snapshot()
	if again.ETag != snap.ETag || again.Epoch != snap.Epoch {
		t.Fatalf("idle snapshot validator moved: %q/%d → %q/%d", snap.ETag, snap.Epoch, again.ETag, again.Epoch)
	}
	if got := e.Metrics().ReadCacheHits; got <= hits {
		t.Fatalf("repeat snapshot read did not hit the cache (hits %d → %d)", hits, got)
	}

	// New writes invalidate it.
	if err := e.Submit([]Op{EventOp(Record{SwarmID: 999999, PeerID: 1, Seed: true, Online: true})}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	moved := e.Snapshot()
	if moved.ETag == snap.ETag || moved.Epoch <= snap.Epoch {
		t.Fatalf("post-write snapshot validator did not move: %q/%d", moved.ETag, moved.Epoch)
	}
}

// TestSnapshotStalenessBound checks the reader-side freshness nudge: an
// engine left idle after unflushed writes still serves a snapshot no
// older than SnapshotMaxAge, because a stale read pays one queue
// barrier to republish.
func TestSnapshotStalenessBound(t *testing.T) {
	e := New(Config{Shards: 1, BatchSize: 4, SnapshotMaxAge: 5 * time.Millisecond})
	defer e.Close()
	if err := e.Submit([]Op{EventOp(Record{SwarmID: 1, PeerID: 1, Seed: true, Online: true})}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	before := e.Snapshot()

	// A write the engine has applied but not republished (no flush, no
	// reads): after SnapshotMaxAge the next read must surface it.
	if err := e.Submit([]Op{EventOp(Record{SwarmID: 2, PeerID: 1, Seed: true, Online: true})}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := e.Snapshot()
		if snap.Epoch > before.Epoch && snap.Summary.Swarms == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot still stale long past SnapshotMaxAge: epoch %d, swarms %d", snap.Epoch, snap.Summary.Swarms)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSnapshotAfterClose: reads on a closed engine serve the final
// published state instead of hanging or panicking.
func TestSnapshotAfterClose(t *testing.T) {
	e := New(Config{Shards: 2})
	for _, ops := range studyOpsBySwarm(10, 5) {
		if err := e.Submit(ops); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	want := e.Summary().Events
	e.Close()

	if got := e.Snapshot().Summary.Events; got != want {
		t.Fatalf("post-close snapshot holds %d events, want %d", got, want)
	}
	if win := e.Snapshot().Window; len(win.Fine) == 0 && len(win.Coarse) == 0 {
		t.Fatal("post-close snapshot window is empty")
	}
	if win := e.Window(); len(win.Fine) == 0 && len(win.Coarse) == 0 {
		t.Fatal("post-close barrier window is empty")
	}
	if _, ok := e.Timeline(0); !ok {
		t.Fatal("post-close timeline read failed for a known swarm")
	}
}

// TestSnapshotReadersRaceWritersAndClose is the -race stress for the
// lock-free read path: readers iterate stale-tolerant snapshots and
// windowed reads while writers hammer the queues and the engine shuts
// down mid-flight. Nothing here asserts freshness — the test is that
// every interleaving is memory-safe and returns a coherent view.
func TestSnapshotReadersRaceWritersAndClose(t *testing.T) {
	e := New(Config{Shards: 4, SnapshotMaxAge: time.Millisecond})
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ops := []Op{EventOp(Record{SwarmID: w*10000 + i%500, PeerID: 1, Seed: true, Online: i%2 == 0, Time: float64(i) / 100})}
				if err := e.Submit(ops); err != nil {
					return // engine closed under us — expected
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := e.Snapshot()
				if snap.Summary == nil || snap.Window == nil {
					t.Error("snapshot with nil parts")
					return
				}
				if snap.Summary.Events > 0 && snap.Summary.Swarms == 0 {
					t.Error("snapshot has events but no swarms")
					return
				}
				e.SwarmSnapshot(r * 10000)
				if i%7 == 0 {
					e.Window()
				}
			}
		}(r)
	}

	time.Sleep(50 * time.Millisecond)
	e.Close() // Close races the readers and writers
	close(stop)
	wg.Wait()

	// The final snapshot is the drained state.
	if got, want := e.Snapshot().Summary.Events, e.Summary().Events; got != want {
		t.Fatalf("post-close snapshot events %d != barrier %d", got, want)
	}
}
