package ingest

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swarmavail/internal/trace"
)

func rec(swarm int, peer uint64, online bool, t float64) Record {
	return Record{SwarmID: swarm, PeerID: peer, Seed: true, Online: online, Time: t}
}

// Submitting after Close must return ErrClosed — never panic on a
// closed channel — for every write entry point.
func TestSubmitAfterCloseReturnsError(t *testing.T) {
	e := New(Config{Shards: 4})
	if err := e.Observe(rec(1, 1, true, 0)); err != nil {
		t.Fatalf("Observe before close: %v", err)
	}
	w := e.NewWriter()
	if err := w.Observe(rec(2, 1, true, 0)); err != nil {
		t.Fatalf("Writer.Observe before close: %v", err)
	}
	e.Close()

	if err := e.Submit([]Op{EventOp(rec(1, 1, false, 1))}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after close: got %v, want ErrClosed", err)
	}
	if err := e.RegisterSwarm(trace.SwarmMeta{ID: 9}, 30); !errors.Is(err, ErrClosed) {
		t.Fatalf("RegisterSwarm after close: got %v, want ErrClosed", err)
	}
	// The writer still buffers op 2 from before the close: Flush must
	// surface the loss instead of panicking or dropping silently.
	if err := w.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Writer.Flush after close: got %v, want ErrClosed", err)
	}

	// Reads serve the final drained state: swarm 1 (submitted directly)
	// made it in; swarm 2 was still buffered in the writer, and its loss
	// was reported by Flush above.
	sum := e.Summary()
	if sum.Swarms != 1 {
		t.Fatalf("post-close Summary: %d swarms, want 1", sum.Swarms)
	}
	if _, ok := e.Swarm(1); !ok {
		t.Fatalf("post-close Swarm(1) missing")
	}
	if _, ok := e.Swarm(42); ok {
		t.Fatalf("post-close Swarm(42) should be unknown")
	}
	e.Flush() // no-op, must not hang or panic
	e.Close() // idempotent
}

// Close must drain every batch already queued: ops submitted (and
// acknowledged) before Close are all visible afterwards.
func TestCloseDrainsQueuedWork(t *testing.T) {
	e := New(Config{Shards: 2, QueueDepth: 256})
	const n = 500
	for i := 0; i < n; i++ {
		if err := e.Observe(rec(i, 1, true, 0)); err != nil {
			t.Fatalf("Observe %d: %v", i, err)
		}
	}
	e.Close()
	if got := e.Summary().Swarms; got != n {
		t.Fatalf("after Close: %d swarms, want %d", got, n)
	}
	if m := e.Metrics(); m.Applied != n {
		t.Fatalf("after Close: applied %d, want %d", m.Applied, n)
	}
}

// Concurrent submitters racing Flush and Close: no panics, no lost
// acknowledged ops, late submitters get ErrClosed. Run with -race.
func TestConcurrentSubmitRacingClose(t *testing.T) {
	e := New(Config{Shards: 4, QueueDepth: 8})
	var accepted atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := e.Observe(rec(g*1_000_000+i, 1, true, 0))
				if err == nil {
					accepted.Add(1)
					continue
				}
				if !errors.Is(err, ErrClosed) {
					t.Errorf("unexpected submit error: %v", err)
				}
				return
			}
		}(g)
	}
	// A reader and a flusher race the writers too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = e.Summary()
			e.Flush()
		}
	}()
	time.Sleep(10 * time.Millisecond)
	e.Close()
	close(stop)
	wg.Wait()
	if got, want := e.Summary().Events, accepted.Load(); got != want {
		t.Fatalf("events after close: %d, want %d accepted", got, want)
	}
}

// Shed policy: when a shard queue is full the batch is dropped and
// counted, and the submitter never blocks.
func TestShedPolicyCountsDrops(t *testing.T) {
	// One shard whose goroutine we wedge mid-request (a summary reply
	// nobody receives yet) so the queue (depth 1) backs up
	// deterministically.
	e := New(Config{Shards: 1, QueueDepth: 1, OnFull: Shed})
	defer e.Close()

	wedge := make(chan *Summary) // unbuffered: the shard blocks sending the reply
	e.shards[0].in <- shardMsg{summary: wedge}
	for len(e.shards[0].in) != 0 { // dequeued ⇒ the shard is committed to the reply
		time.Sleep(time.Millisecond)
	}

	if err := e.Observe(rec(1, 1, true, 0)); err != nil { // fills the queue
		t.Fatalf("first observe: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Submit([]Op{EventOp(rec(2, 1, true, 0)), EventOp(rec(2, 1, false, 1))}) }()
	select {
	case err := <-done: // must not block
		if err != nil {
			t.Fatalf("shed submit errored: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Shed submit blocked on a full queue")
	}
	m := e.Metrics()
	if m.Shed != 2 {
		t.Fatalf("shed counter: %d, want 2", m.Shed)
	}
	if m.OverflowPolicy != "shed" {
		t.Fatalf("overflow policy: %q, want shed", m.OverflowPolicy)
	}
	if m.Records != 1 {
		t.Fatalf("records counts shed ops: %d, want 1", m.Records)
	}
	<-wedge // release the shard to drain the backlog
}

// HTTPClient retries a flaky ingest endpoint to success and reports
// at-least-once delivery.
func TestHTTPClientRetriesToSuccess(t *testing.T) {
	var calls atomic.Int32
	e := New(Config{Shards: 1})
	defer e.Close()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "catching my breath", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"accepted": 2}`))
	}))
	defer srv.Close()

	c := NewHTTPClient(HTTPClientConfig{
		URL:         srv.URL,
		Seed:        7,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
	})
	err := c.Push(context.Background(), []Record{rec(1, 1, true, 0), rec(1, 1, false, 1)})
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if c.Retries() != 2 {
		t.Fatalf("client counted %d retries, want 2", c.Retries())
	}
}

// A fatal server verdict (4xx) must not be retried.
func TestHTTPClientFatalNotRetried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad record", http.StatusBadRequest)
	}))
	defer srv.Close()
	c := NewHTTPClient(HTTPClientConfig{URL: srv.URL, BackoffBase: time.Millisecond})
	if err := c.Push(context.Background(), []Record{rec(1, 1, true, 0)}); err == nil {
		t.Fatalf("push should fail on 400")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fatal error retried: %d attempts", got)
	}
}

// Context cancellation aborts the retry loop promptly.
func TestHTTPClientHonoursContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := NewHTTPClient(HTTPClientConfig{
		URL:         srv.URL,
		BackoffBase: time.Hour, // would stall forever without the ctx
		BackoffCap:  time.Hour,
		MaxAttempts: 3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Push(ctx, []Record{rec(1, 1, true, 0)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("push: got %v, want context deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("push ignored the context for %v", time.Since(start))
	}
}
