package ingest

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWriterFlushReportsDroppedOps pins the ClosedError contract: a
// writer whose buffered batch cannot be delivered because the engine
// closed reports exactly how many ops were lost, both through the
// returned error and the ingest_writer_dropped_total counter.
func TestWriterFlushReportsDroppedOps(t *testing.T) {
	e := New(Config{Shards: 2, BatchSize: 64})
	w := e.NewWriter()
	const buffered = 7
	for i := range buffered {
		if err := w.Observe(rec(i, 1, true, 0)); err != nil {
			t.Fatalf("Observe %d: %v", i, err)
		}
	}
	e.Close()

	err := w.Flush()
	var ce *ClosedError
	if !errors.As(err, &ce) {
		t.Fatalf("Flush after close: got %T (%v), want *ClosedError", err, err)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("ClosedError must unwrap to ErrClosed, got %v", err)
	}
	if ce.Dropped != buffered {
		t.Fatalf("ClosedError.Dropped = %d, want %d", ce.Dropped, buffered)
	}
	if got := e.Registry().Counter("ingest_writer_dropped_total").Value(); got != buffered {
		t.Fatalf("ingest_writer_dropped_total = %d, want %d", got, buffered)
	}
	// A Put after close drops the full buffer it just joined.
	if err := w.Observe(rec(1, 1, true, 0)); err != nil {
		t.Fatalf("Observe buffers locally even when closed: %v", err)
	}
	err = w.Flush()
	if !errors.As(err, &ce) || ce.Dropped != 1 {
		t.Fatalf("second Flush: got %v, want ClosedError{Dropped: 1}", err)
	}
}

// TestAtomicLifecycleStress hammers the lock-free lifecycle fast path
// from every direction at once — Submit, batching Writers, Flush,
// Summary, Swarm and a racing Close — and then audits the books: every
// op whose acknowledgement the producer saw (a nil Submit error, or a
// buffered Put not later reported dropped by ClosedError) must be in
// the final state, and nothing else. Run with -race; this is the test
// for the "atomic closed-flag instead of RWMutex" redesign.
func TestAtomicLifecycleStress(t *testing.T) {
	const (
		submitters = 4
		writers    = 4
		batch      = 8
	)
	e := New(Config{Shards: 4, BatchSize: batch, QueueDepth: 16})
	var (
		wg       sync.WaitGroup
		acked    atomic.Uint64 // ops known delivered to the engine
		overshot atomic.Uint64 // writer puts later reported dropped
	)
	stop := make(chan struct{})

	for g := range submitters {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := e.Submit([]Op{
					EventOp(rec(g*1_000_000+i, 1, true, 0)),
					EventOp(rec(g*1_000_000+i, 1, false, 1)),
				})
				if err == nil {
					acked.Add(2)
					continue
				}
				if !errors.Is(err, ErrClosed) {
					t.Errorf("submit: %v", err)
				}
				return
			}
		}()
	}
	for g := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := e.NewWriter()
			puts := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					acked.Add(puts)
					if err := w.Flush(); err != nil {
						var ce *ClosedError
						if errors.As(err, &ce) {
							overshot.Add(uint64(ce.Dropped))
						} else {
							t.Errorf("writer flush: %v", err)
						}
					}
					return
				default:
				}
				err := w.Observe(rec((10+g)*1_000_000+i, 1, true, 0))
				if err == nil {
					puts++
					continue
				}
				var ce *ClosedError
				if errors.As(err, &ce) {
					// Dropped includes the op this Put just buffered, so
					// count it on both sides of the ledger — then flush
					// the writer's other shard buffers so their losses
					// are reported too.
					acked.Add(puts + 1)
					overshot.Add(uint64(ce.Dropped))
					if ferr := w.Flush(); ferr != nil {
						if errors.As(ferr, &ce) {
							overshot.Add(uint64(ce.Dropped))
						} else {
							t.Errorf("writer flush: %v", ferr)
						}
					}
				} else {
					t.Errorf("writer put: %v", err)
					acked.Add(puts)
				}
				return
			}
		}()
	}
	// Readers and a flusher race the producers and the close.
	for range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = e.Summary()
				_, _ = e.Swarm(i % 100)
				e.Flush()
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() { e.Close(); close(done) }()
	e.Close() // concurrent Close must be safe and idempotent
	<-done
	close(stop)
	wg.Wait()

	want := acked.Load() - overshot.Load()
	if got := e.Summary().Events; got != want {
		t.Fatalf("events after close: %d, want %d (acked %d − dropped %d)",
			got, want, acked.Load(), overshot.Load())
	}
	if got := e.Registry().Counter("ingest_writer_dropped_total").Value(); got != overshot.Load() {
		t.Fatalf("ingest_writer_dropped_total = %d, want %d", got, overshot.Load())
	}
}
