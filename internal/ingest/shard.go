package ingest

import (
	"sync/atomic"
	"time"

	"swarmavail/internal/measure"
	"swarmavail/internal/stats"
	"swarmavail/internal/trace"
)

// shardMsg is the single message type flowing through a shard's queue.
// Exactly one of the fields is set. Routing reads through the same
// queue as writes keeps them ordered after every batch submitted before
// them — and means a reader never takes a lock a writer could contend
// on.
type shardMsg struct {
	ops []Op // batch of work

	ack chan<- struct{} // flush barrier: signalled once prior msgs applied

	summary chan<- *Summary // aggregate snapshot request

	swarmID int
	swarm   chan<- *SwarmStats // per-swarm snapshot request (nil reply = unknown)

	window chan<- *WindowState // windowed-aggregate request (consistent path)

	timelineID int
	timeline   chan<- *WindowState // per-swarm window ring (nil reply = unknown)

	persist chan<- *shardSnapshot // checkpoint state capture request
}

// shardSnap is one shard's immutable published read snapshot. Readers
// load it with a single atomic pointer load and never touch the shard
// queue; the shard goroutine replaces it wholesale, never mutates it.
type shardSnap struct {
	epoch  uint64    // apply watermark the snapshot reflects
	built  time.Time // publish time, for the staleness bound
	sum    *Summary
	win    *WindowState
	swarms map[int]SwarmStats
}

// shard owns a partition of the swarm keyspace. Only its goroutine
// touches the maps — no locks anywhere on the apply path.
type shard struct {
	idx     int
	in      chan shardMsg
	metrics *Metrics
	pool    *batchPool
	wc      windowConfig
	maxAge  time.Duration
	swarms  map[int]*swarmState
	cats    map[trace.Category]*CategoryCounters

	// applied is the shard's apply watermark (ops applied since start);
	// snap is the latest published read snapshot. Together they give
	// readers the freshness test: snap.epoch == applied ⇒ nothing
	// unpublished.
	applied atomic.Uint64
	snap    atomic.Pointer[shardSnap]

	// Publish bookkeeping, touched only by the shard goroutine (or
	// before it starts).
	dirty   bool
	lastPub time.Time
}

func newShard(idx, queueDepth int, m *Metrics, pool *batchPool, wc windowConfig, maxAge time.Duration) *shard {
	s := &shard{
		idx:     idx,
		in:      make(chan shardMsg, queueDepth),
		metrics: m,
		pool:    pool,
		wc:      wc,
		maxAge:  maxAge,
		swarms:  make(map[int]*swarmState),
		cats:    make(map[trace.Category]*CategoryCounters),
	}
	// Publish an empty snapshot up front so readers never observe nil.
	s.publish()
	return s
}

// publish replaces the read snapshot with the current state.
func (s *shard) publish() {
	s.snap.Store(s.buildSnap())
	s.dirty = false
	s.lastPub = time.Now()
}

// run drains the queue until the channel closes.
func (s *shard) run() {
	for msg := range s.in {
		switch {
		case msg.ops != nil:
			start := time.Now()
			for _, op := range msg.ops {
				s.apply(op)
			}
			s.applied.Add(uint64(len(msg.ops)))
			s.dirty = true
			s.metrics.observeBatch(s.idx, len(msg.ops), time.Since(start))
			// The batch buffer's ownership ends here: recycle it for
			// the next Submit/Writer fill.
			s.pool.put(msg.ops)
			// Throttled republish: under sustained writes the snapshot
			// trails the stream by at most maxAge.
			if s.dirty && time.Since(s.lastPub) >= s.maxAge {
				s.publish()
			}
		case msg.ack != nil:
			// Publish before acknowledging, so Flush ⇒ snapshots are
			// fresh — in-process flush-then-read stays read-your-writes
			// even on the lock-free path.
			if s.dirty {
				s.publish()
			}
			msg.ack <- struct{}{}
		case msg.summary != nil:
			msg.summary <- s.summarize()
		case msg.swarm != nil:
			if st, ok := s.swarms[msg.swarmID]; ok {
				snap := st.stats()
				msg.swarm <- &snap
			} else {
				msg.swarm <- nil
			}
		case msg.window != nil:
			msg.window <- s.windowize()
		case msg.timeline != nil:
			msg.timeline <- s.timelineOf(msg.timelineID)
		case msg.persist != nil:
			msg.persist <- s.snapshot()
		}
	}
	// Final publish: after Close the snapshot is the complete state.
	s.publish()
}

func (s *shard) state(id int) *swarmState {
	st, ok := s.swarms[id]
	if !ok {
		st = &swarmState{}
		s.swarms[id] = st
	}
	return st
}

func (s *shard) apply(op Op) {
	switch op.kind {
	case opEvent:
		s.state(op.rec.SwarmID).apply(op.rec, &s.wc)
	case opMeta:
		st := s.state(op.aux.meta.ID)
		st.meta = op.aux.meta
		st.horizon = op.aux.horizon
		st.hasMeta = true
	case opCensus:
		census := &op.aux.census
		st := s.state(census.Meta.ID)
		first := !st.hasCensus
		if !st.hasMeta {
			st.meta = census.Meta
		}
		st.censusSeeds = census.Seeds
		st.censusLeechers = census.Leechers
		st.downloads = census.Downloads
		st.hasCensus = true
		if first {
			cat := census.Meta.Category
			cc, ok := s.cats[cat]
			if !ok {
				cc = &CategoryCounters{}
				s.cats[cat] = cc
			}
			cc.observe(*census)
		}
	}
}

// shardSnapshot is one shard's complete state in checkpoint wire form.
// It is built by the shard goroutine (consistent by construction) and
// serialized by the checkpointer off the apply path.
type shardSnapshot struct {
	Idx    int              `json:"idx"`
	Swarms []swarmRecord    `json:"swarms"`
	Cats   []categoryRecord `json:"cats,omitempty"`
}

// snapshot captures the shard's state for a checkpoint.
func (s *shard) snapshot() *shardSnapshot {
	snap := &shardSnapshot{Idx: s.idx, Swarms: make([]swarmRecord, 0, len(s.swarms))}
	for id, st := range s.swarms {
		snap.Swarms = append(snap.Swarms, st.record(id))
	}
	for cat, cc := range s.cats {
		snap.Cats = append(snap.Cats, newCategoryRecord(cat, *cc))
	}
	return snap
}

// install merges a checkpointed shard snapshot into this shard's maps.
// Only safe before the shard goroutine starts (recovery) — swarm ids
// must already be routed to this shard by the current hash.
func (s *shard) install(snap *shardSnapshot) {
	// The installed state is unpublished; the recovery flush (or the
	// first write) publishes it to the read snapshot.
	s.dirty = true
	for _, r := range snap.Swarms {
		s.swarms[r.ID] = r.state(&s.wc)
	}
	for _, cr := range snap.Cats {
		cc, ok := s.cats[cr.Category]
		if !ok {
			cc = &CategoryCounters{}
			s.cats[cr.Category] = cc
		}
		cc.merge(cr.counters())
	}
}

// summarize folds the shard's swarms into a mergeable aggregate.
func (s *shard) summarize() *Summary {
	sum := NewSummary()
	sum.Swarms = len(s.swarms)
	for _, st := range s.swarms {
		sum.SeedsOnline += st.seedsOnline
		sum.LeechersOnline += st.leechersOnline
		sum.BusyPeriods += st.busyPeriods
		sum.Events += st.events
		if st.events > 0 || st.hasMeta {
			fm, full := st.availability()
			sum.FirstMonth.Add(fm)
			sum.Full.Add(full)
			if measure.IsFullyAvailable(fm) {
				sum.FullyAvailableFirstMonth++
			}
			if measure.IsMostlyUnavailable(full) {
				sum.MostlyUnavailable++
			}
			sum.StudySwarms++
		}
		if st.hasCensus {
			sum.CensusSwarms++
		}
	}
	for cat, cc := range s.cats {
		merged := sum.Categories[cat]
		merged.merge(*cc)
		sum.Categories[cat] = merged
	}
	return sum
}

// buildSnap captures the shard's complete read state in one pass:
// the mergeable Summary (same arithmetic as summarize — integer sums
// plus per-swarm availabilities computed deterministically here, on the
// swarm's home shard), the per-swarm stats map, and the windowed
// aggregate.
func (s *shard) buildSnap() *shardSnap {
	sum := NewSummary()
	sum.Swarms = len(s.swarms)
	swarms := make(map[int]SwarmStats, len(s.swarms))
	fine := make(map[int64]*WindowBinState)
	coarse := make(map[int64]*WindowBinState)
	for id, st := range s.swarms {
		stats := st.stats()
		swarms[id] = stats
		sum.SeedsOnline += st.seedsOnline
		sum.LeechersOnline += st.leechersOnline
		sum.BusyPeriods += st.busyPeriods
		sum.Events += st.events
		if st.events > 0 || st.hasMeta {
			sum.FirstMonth.Add(stats.FirstMonth)
			sum.Full.Add(stats.Full)
			if measure.IsFullyAvailable(stats.FirstMonth) {
				sum.FullyAvailableFirstMonth++
			}
			if measure.IsMostlyUnavailable(stats.Full) {
				sum.MostlyUnavailable++
			}
			sum.StudySwarms++
		}
		if st.hasCensus {
			sum.CensusSwarms++
		}
		st.win.fold(fine, coarse)
	}
	for cat, cc := range s.cats {
		merged := sum.Categories[cat]
		merged.merge(*cc)
		sum.Categories[cat] = merged
	}
	win := newWindowState(&s.wc)
	win.Fine = sortedBins(fine)
	win.Coarse = sortedBins(coarse)
	return &shardSnap{
		epoch:  s.applied.Load(),
		built:  time.Now(),
		sum:    sum,
		win:    win,
		swarms: swarms,
	}
}

// windowize folds the shard's swarm rings into a mergeable windowed
// aggregate (the consistent-path counterpart of the snapshot's win).
func (s *shard) windowize() *WindowState {
	fine := make(map[int64]*WindowBinState)
	coarse := make(map[int64]*WindowBinState)
	for _, st := range s.swarms {
		st.win.fold(fine, coarse)
	}
	w := newWindowState(&s.wc)
	w.Fine = sortedBins(fine)
	w.Coarse = sortedBins(coarse)
	return w
}

// timelineOf folds one swarm's ring into a WindowState of its own
// (nil when the swarm is unknown to this shard).
func (s *shard) timelineOf(id int) *WindowState {
	st, ok := s.swarms[id]
	if !ok {
		return nil
	}
	fine := make(map[int64]*WindowBinState)
	coarse := make(map[int64]*WindowBinState)
	st.win.fold(fine, coarse)
	w := newWindowState(&s.wc)
	w.Fine = sortedBins(fine)
	w.Coarse = sortedBins(coarse)
	return w
}

// Summary is the engine-wide (or per-shard, pre-merge) aggregate
// snapshot: rolling gauges, online availability sketches, headline
// counters, and per-category bundling counters.
type Summary struct {
	Swarms         int `json:"swarms"`
	StudySwarms    int `json:"study_swarms"` // swarms with events or registration
	CensusSwarms   int `json:"census_swarms"`
	SeedsOnline    int `json:"seeds_online"`
	LeechersOnline int `json:"leechers_online"`
	BusyPeriods    int `json:"busy_periods"`

	Events uint64 `json:"events"`

	// FirstMonth and Full are mergeable availability sketches over the
	// per-swarm online availabilities (Figure 1's two CDFs, live).
	FirstMonth *stats.QuantileSketch `json:"-"`
	Full       *stats.QuantileSketch `json:"-"`

	// Headline counters under the shared §2 definitions.
	FullyAvailableFirstMonth int `json:"fully_available_first_month"`
	MostlyUnavailable        int `json:"mostly_unavailable"`

	Categories map[trace.Category]CategoryCounters `json:"-"`
}

// NewSummary returns an empty summary with sketches of the standard
// geometry.
func NewSummary() *Summary {
	return &Summary{
		FirstMonth: stats.NewAvailabilitySketch(),
		Full:       stats.NewAvailabilitySketch(),
		Categories: make(map[trace.Category]CategoryCounters),
	}
}

// Merge folds other into s.
func (s *Summary) Merge(other *Summary) {
	s.Swarms += other.Swarms
	s.StudySwarms += other.StudySwarms
	s.CensusSwarms += other.CensusSwarms
	s.SeedsOnline += other.SeedsOnline
	s.LeechersOnline += other.LeechersOnline
	s.BusyPeriods += other.BusyPeriods
	s.Events += other.Events
	s.FirstMonth.Merge(other.FirstMonth)
	s.Full.Merge(other.Full)
	s.FullyAvailableFirstMonth += other.FullyAvailableFirstMonth
	s.MostlyUnavailable += other.MostlyUnavailable
	for cat, cc := range other.Categories {
		merged := s.Categories[cat]
		merged.merge(cc)
		s.Categories[cat] = merged
	}
}

// Headlines converts the counters to measure's offline headline type.
func (s *Summary) Headlines() measure.StudyHeadlines {
	h := measure.StudyHeadlines{Swarms: s.StudySwarms}
	if s.StudySwarms > 0 {
		h.FullyAvailableFirstMonth = float64(s.FullyAvailableFirstMonth) / float64(s.StudySwarms)
		h.MostlyUnavailableOverall = float64(s.MostlyUnavailable) / float64(s.StudySwarms)
	}
	return h
}
