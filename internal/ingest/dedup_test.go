package ingest

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"swarmavail/internal/wal"
)

func mkEventOps(swarmBase, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = EventOp(Record{SwarmID: swarmBase + i%7, PeerID: uint64(i + 1), Seed: i%2 == 0, Online: true, Time: float64(i)})
	}
	return ops
}

// TestSubmitKeyedDedup checks the in-memory exactly-once semantics:
// first application applies, any retry of the key acks without
// re-applying, out-of-order first attempts are not misread as
// duplicates, and an empty source degrades to plain Submit.
func TestSubmitKeyedDedup(t *testing.T) {
	e := New(Config{Shards: 2, BatchSize: 8})
	defer e.Close()

	ops := mkEventOps(0, 10)
	if applied, err := e.SubmitKeyed("mon-a", 1, ops); err != nil || !applied {
		t.Fatalf("first submit: applied=%v err=%v", applied, err)
	}
	if applied, err := e.SubmitKeyed("mon-a", 1, ops); err != nil || applied {
		t.Fatalf("retry: applied=%v err=%v", applied, err)
	}
	// Out of order within the window: seq 5 before 2..4.
	if applied, err := e.SubmitKeyed("mon-a", 5, ops); err != nil || !applied {
		t.Fatalf("seq 5: applied=%v err=%v", applied, err)
	}
	if applied, err := e.SubmitKeyed("mon-a", 2, ops); err != nil || !applied {
		t.Fatalf("late seq 2: applied=%v err=%v", applied, err)
	}
	// Sources are independent namespaces.
	if applied, err := e.SubmitKeyed("mon-b", 1, ops); err != nil || !applied {
		t.Fatalf("other source seq 1: applied=%v err=%v", applied, err)
	}
	e.Flush()

	const wantApplied = 4 * 10
	snap := e.Metrics()
	if snap.Applied != wantApplied {
		t.Fatalf("applied %d ops, want %d", snap.Applied, wantApplied)
	}
	if snap.Deduped != 10 {
		t.Fatalf("deduped %d ops, want 10", snap.Deduped)
	}

	// Empty source: at-least-once Submit, never deduplicated.
	if applied, err := e.SubmitKeyed("", 1, ops); err != nil || !applied {
		t.Fatalf("unkeyed: applied=%v err=%v", applied, err)
	}
	if applied, err := e.SubmitKeyed("", 1, ops); err != nil || !applied {
		t.Fatalf("unkeyed repeat: applied=%v err=%v", applied, err)
	}
}

// TestSubmitKeyedConcurrentRetries races N goroutines pushing the same
// key; exactly one must apply. Run under -race.
func TestSubmitKeyedConcurrentRetries(t *testing.T) {
	e := New(Config{Shards: 4, BatchSize: 8})
	defer e.Close()
	ops := mkEventOps(0, 16)

	const racers = 16
	var wg sync.WaitGroup
	applied := make([]bool, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ok, err := e.SubmitKeyed("racer", 7, ops)
			if err != nil {
				t.Error(err)
			}
			applied[i] = ok
		}(i)
	}
	wg.Wait()
	e.Flush()
	wins := 0
	for _, ok := range applied {
		if ok {
			wins++
		}
	}
	if wins != 1 {
		t.Fatalf("%d racers applied the batch, want exactly 1", wins)
	}
	if snap := e.Metrics(); snap.Applied != uint64(len(ops)) {
		t.Fatalf("applied %d ops, want %d", snap.Applied, len(ops))
	}
}

// TestSourceWindowEviction drives one window far past the tracked span
// and checks both halves of the floor rule: evicted sequences still
// read as observed, and the seen map stays bounded.
func TestSourceWindowEviction(t *testing.T) {
	w := &sourceWindow{}
	const total = 5 * dedupWindowSize
	for seq := uint64(1); seq <= total; seq++ {
		if w.observed(seq) {
			t.Fatalf("seq %d observed before mark", seq)
		}
		w.mark(seq)
	}
	for _, seq := range []uint64{1, dedupWindowSize, total - dedupWindowSize, total} {
		if !w.observed(seq) {
			t.Fatalf("seq %d not observed after marking 1..%d", seq, total)
		}
	}
	if len(w.seen) >= 2*dedupWindowSize+1 {
		t.Fatalf("seen map grew to %d entries; eviction is not bounding it", len(w.seen))
	}
}

// TestOpsCodecKeyedRoundTrip exercises the v2 keyed frame: the key and
// every op survive the round trip, and v1 frames still decode with an
// empty key.
func TestOpsCodecKeyedRoundTrip(t *testing.T) {
	ops := mkEventOps(3, 9)
	frame, err := encodeKeyedOps(nil, "monitor-7", 42, ops)
	if err != nil {
		t.Fatal(err)
	}
	source, seq, got, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if source != "monitor-7" || seq != 42 {
		t.Fatalf("key round-tripped as (%q, %d)", source, seq)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i].rec != ops[i].rec {
			t.Fatalf("op %d: %+v != %+v", i, got[i].rec, ops[i].rec)
		}
	}

	plain, err := encodeOps(nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	source, seq, got, err = decodeFrame(plain)
	if err != nil {
		t.Fatal(err)
	}
	if source != "" || seq != 0 || len(got) != len(ops) {
		t.Fatalf("v1 frame decoded as (%q, %d, %d ops)", source, seq, len(got))
	}

	if _, err := encodeKeyedOps(nil, "", 1, ops); err == nil {
		t.Fatal("empty source encoded")
	}
	long := make([]byte, maxSourceLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := encodeKeyedOps(nil, string(long), 1, ops); err == nil {
		t.Fatal("oversized source encoded")
	}
}

// TestDecodeOpsKeyedRejectsGarbage: decodeFrame is total over corrupt
// keyed headers.
func TestDecodeOpsKeyedRejectsGarbage(t *testing.T) {
	valid, err := encodeKeyedOps(nil, "src", 9, mkEventOps(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":                 nil,
		"bare version":          {2},
		"short header":          {2, 3, 0},
		"zero source len":       {2, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8},
		"oversized source len":  {2, 0xff, 0xff, 'x'},
		"truncated in source":   valid[:4],
		"truncated in seq":      valid[:3+3+4],
		"truncated ops payload": valid[:len(valid)-1],
	}
	for name, data := range cases {
		if _, _, _, err := decodeFrame(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestDurableKeyedDedupSurvivesRestart: a keyed batch journaled before
// a crash must still be recognised as a duplicate after recovery —
// the WAL replay rebuilds the window — and the recovered state equals
// a reference engine that saw each batch exactly once.
func TestDurableKeyedDedupSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenDurable(Config{Shards: 3}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	batches := make([][]Op, 5)
	for i := range batches {
		batches[i] = mkEventOps(i*10, 20)
		if applied, kerr := e.SubmitKeyed("campaign", uint64(i+1), batches[i]); kerr != nil || !applied {
			t.Fatalf("batch %d: applied=%v err=%v", i, applied, kerr)
		}
	}
	// A lost-ack retry before the crash.
	if applied, kerr := e.SubmitKeyed("campaign", 3, batches[2]); kerr != nil || applied {
		t.Fatalf("pre-crash retry: applied=%v err=%v", applied, kerr)
	}
	e.Close()

	e2, rs, err := OpenDurable(Config{Shards: 3}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if rs.ReplayedFrames == 0 {
		t.Fatalf("nothing replayed: %+v", rs)
	}
	// Retries of every pre-crash batch are still duplicates.
	for i := range batches {
		if applied, kerr := e2.SubmitKeyed("campaign", uint64(i+1), batches[i]); kerr != nil || applied {
			t.Fatalf("post-recovery retry of batch %d: applied=%v err=%v", i, applied, kerr)
		}
	}
	if snap := e2.Metrics(); snap.Deduped != 5*20 {
		t.Fatalf("deduped %d ops post-recovery, want %d", snap.Deduped, 5*20)
	}

	ref := New(Config{Shards: 3})
	defer ref.Close()
	for _, b := range batches {
		if err := ref.Submit(b); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := summaryFingerprint(t, e2.Summary()), summaryFingerprint(t, ref.Summary()); !bytes.Equal(got, want) {
		t.Fatalf("recovered state diverged from exactly-once reference\ngot:  %s\nwant: %s", got, want)
	}
}

// TestCheckpointCarriesDedupWindows: windows survive through a
// checkpoint that truncates the keyed WAL frames away, and through a
// checkpoint-plus-tail recovery spanning both.
func TestCheckpointCarriesDedupWindows(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	pre := mkEventOps(0, 15)
	if applied, kerr := e.SubmitKeyed("mon", 1, pre); kerr != nil || !applied {
		t.Fatalf("pre-checkpoint: applied=%v err=%v", applied, kerr)
	}
	cs, err := e.Checkpoint()
	if err != nil || cs.Skipped {
		t.Fatalf("checkpoint: %+v err=%v", cs, err)
	}
	post := mkEventOps(50, 15)
	if applied, kerr := e.SubmitKeyed("mon", 2, post); kerr != nil || !applied {
		t.Fatalf("post-checkpoint: applied=%v err=%v", applied, kerr)
	}
	e.Close()

	e2, rs, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if rs.CheckpointSeq == 0 {
		t.Fatalf("checkpoint not loaded: %+v", rs)
	}
	// Seq 1 lives only in the checkpoint's dedup frame (its WAL frame
	// was truncated); seq 2 only in the replayed tail. Both must dedup.
	for seq, ops := range map[uint64][]Op{1: pre, 2: post} {
		if applied, kerr := e2.SubmitKeyed("mon", seq, ops); kerr != nil || applied {
			t.Fatalf("retry of seq %d post-recovery: applied=%v err=%v", seq, applied, kerr)
		}
	}
}

// TestCheckpointDedupManySources checks the checkpoint round-trips a
// multi-source table with out-of-order seen sets intact.
func TestCheckpointDedupManySources(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	ops := mkEventOps(0, 4)
	seqs := []uint64{8, 2, 5} // gaps: 1,3,4,6,7 must stay submittable
	for s := 0; s < 6; s++ {
		source := fmt.Sprintf("mon-%d", s)
		for _, seq := range seqs {
			if applied, kerr := e.SubmitKeyed(source, seq, ops); kerr != nil || !applied {
				t.Fatalf("%s seq %d: applied=%v err=%v", source, seq, applied, kerr)
			}
		}
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2, _, err := OpenDurable(Config{Shards: 2}, DurabilityConfig{Dir: dir, Fsync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for s := 0; s < 6; s++ {
		source := fmt.Sprintf("mon-%d", s)
		for _, seq := range seqs {
			if applied, _ := e2.SubmitKeyed(source, seq, ops); applied {
				t.Fatalf("%s seq %d re-applied after recovery", source, seq)
			}
		}
		// A gap inside the window is not a duplicate.
		if applied, kerr := e2.SubmitKeyed(source, 6, ops); kerr != nil || !applied {
			t.Fatalf("%s gap seq 6: applied=%v err=%v", source, applied, kerr)
		}
	}
}
