package ingest

import (
	"swarmavail/internal/measure"
	"swarmavail/internal/stats"
	"swarmavail/internal/trace"
)

// swarmState is the per-swarm online state owned by exactly one shard.
// It tracks the seed-coverage of two availability windows incrementally
// with the same clipping arithmetic trace.AvailabilityOver applies to
// archived sessions, so closed-interval availabilities agree bitwise
// with the offline analysis.
type swarmState struct {
	meta    trace.SwarmMeta
	horizon float64 // monitoring horizon in days (0 until registered)
	hasMeta bool

	seedsOnline    int
	leechersOnline int
	upSince        float64 // start of the current seeded interval (seedsOnline > 0)
	coveredFM      float64 // seeded time within [0, min(FirstMonthDays, horizon))
	coveredFull    float64 // seeded time within [0, horizon)
	busyPeriods    int     // 0→1 seed transitions
	events         uint64
	lastEvent      float64

	// Census fields (absolute gauges, not transitions).
	censusSeeds    int
	censusLeechers int
	downloads      int
	hasCensus      bool

	// win is the swarm's windowed history (see window.go). It is a pure
	// function of the swarm's own event stream, which is what makes
	// clustered windowed answers merge exactly.
	win winRing
}

// windows returns the two availability windows. Before registration the
// horizon falls back to the last event time, making the availability a
// best-effort "so far" figure.
func (s *swarmState) windows() (fm, full float64) {
	full = s.horizon
	if !s.hasMeta {
		full = s.lastEvent
	}
	fm = measure.FirstMonthDays
	if full < fm {
		fm = full
	}
	return fm, full
}

// addCovered folds a closed seeded interval [lo, hi) into both window
// accumulators, clipping exactly as dist.AvailableFraction does.
func (s *swarmState) addCovered(lo, hi float64) {
	if lo < 0 {
		lo = 0
	}
	fmW, fullW := s.windows()
	if h := min(hi, fmW); h > lo {
		s.coveredFM += h - lo
	}
	if h := min(hi, fullW); h > lo {
		s.coveredFull += h - lo
	}
}

// apply processes one monitor event.
func (s *swarmState) apply(rec Record, wc *windowConfig) {
	s.events++
	if rec.Time > s.lastEvent {
		// Accrue windowed observed/seeded time over the span up to this
		// event using the seed state in effect *before* its transition.
		s.win.accrue(wc, s.lastEvent, rec.Time, s.seedsOnline > 0)
		s.lastEvent = rec.Time
	}
	busyStart := false
	if !rec.Seed {
		if rec.Online {
			s.leechersOnline++
		} else if s.leechersOnline > 0 {
			s.leechersOnline--
		}
	} else if rec.Online {
		if s.seedsOnline == 0 {
			s.upSince = rec.Time
			s.busyPeriods++
			busyStart = true
		}
		s.seedsOnline++
	} else if s.seedsOnline > 0 { // seedsOnline == 0: spurious offline; ignore
		s.seedsOnline--
		if s.seedsOnline == 0 {
			s.addCovered(s.upSince, rec.Time)
		}
	}
	s.win.mark(wc, rec.Time, busyStart)
}

// availability returns the online first-month and whole-trace
// availability fractions. An interval still open is counted up to the
// last observed event, so mid-stream figures are monotone lower bounds
// of the final ones.
func (s *swarmState) availability() (firstMonth, full float64) {
	fmW, fullW := s.windows()
	cFM, cFull := s.coveredFM, s.coveredFull
	if s.seedsOnline > 0 {
		lo := s.upSince
		if lo < 0 {
			lo = 0
		}
		if h := min(s.lastEvent, fmW); h > lo {
			cFM += h - lo
		}
		if h := min(s.lastEvent, fullW); h > lo {
			cFull += h - lo
		}
	}
	return fraction(cFM, fmW), fraction(cFull, fullW)
}

// fraction mirrors dist.AvailableFraction's final division and clamp.
func fraction(covered, window float64) float64 {
	if window <= 0 {
		return 0
	}
	f := covered / window
	if f > 1 {
		f = 1
	}
	return f
}

// swarmRecord is the checkpoint wire form of one swarm's state: every
// swarmState field, verbatim, so a load followed by the same op stream
// produces bitwise-identical availabilities to an uninterrupted run.
type swarmRecord struct {
	ID             int             `json:"id"`
	Meta           trace.SwarmMeta `json:"meta"`
	Horizon        float64         `json:"horizon,omitempty"`
	HasMeta        bool            `json:"has_meta,omitempty"`
	SeedsOnline    int             `json:"seeds_online,omitempty"`
	LeechersOnline int             `json:"leechers_online,omitempty"`
	UpSince        float64         `json:"up_since,omitempty"`
	CoveredFM      float64         `json:"covered_fm,omitempty"`
	CoveredFull    float64         `json:"covered_full,omitempty"`
	BusyPeriods    int             `json:"busy_periods,omitempty"`
	Events         uint64          `json:"events,omitempty"`
	LastEvent      float64         `json:"last_event,omitempty"`
	CensusSeeds    int             `json:"census_seeds,omitempty"`
	CensusLeechers int             `json:"census_leechers,omitempty"`
	Downloads      int             `json:"downloads,omitempty"`
	HasCensus      bool            `json:"has_census,omitempty"`
	// WinFine/WinCoarse are the nonempty window-ring bins (checkpoint
	// v3; absent in v1/v2 frames). The ring head is not serialized — it
	// is recomputed from LastEvent on restore.
	WinFine   []winBinRecord `json:"win_fine,omitempty"`
	WinCoarse []winBinRecord `json:"win_coarse,omitempty"`
}

// record converts the state to its wire form.
func (s *swarmState) record(id int) swarmRecord {
	fine, coarse := s.win.records()
	return swarmRecord{
		ID:             id,
		Meta:           s.meta,
		Horizon:        s.horizon,
		HasMeta:        s.hasMeta,
		SeedsOnline:    s.seedsOnline,
		LeechersOnline: s.leechersOnline,
		UpSince:        s.upSince,
		CoveredFM:      s.coveredFM,
		CoveredFull:    s.coveredFull,
		BusyPeriods:    s.busyPeriods,
		Events:         s.events,
		LastEvent:      s.lastEvent,
		CensusSeeds:    s.censusSeeds,
		CensusLeechers: s.censusLeechers,
		Downloads:      s.downloads,
		HasCensus:      s.hasCensus,
		WinFine:        fine,
		WinCoarse:      coarse,
	}
}

// state converts the wire form back to live state.
func (r swarmRecord) state(wc *windowConfig) *swarmState {
	st := &swarmState{
		meta:           r.Meta,
		horizon:        r.Horizon,
		hasMeta:        r.HasMeta,
		seedsOnline:    r.SeedsOnline,
		leechersOnline: r.LeechersOnline,
		upSince:        r.UpSince,
		coveredFM:      r.CoveredFM,
		coveredFull:    r.CoveredFull,
		busyPeriods:    r.BusyPeriods,
		events:         r.Events,
		lastEvent:      r.LastEvent,
		censusSeeds:    r.CensusSeeds,
		censusLeechers: r.CensusLeechers,
		downloads:      r.Downloads,
		hasCensus:      r.HasCensus,
	}
	st.win.restore(wc, r.LastEvent, r.WinFine, r.WinCoarse, r.Events > 0)
	return st
}

// categoryRecord is the checkpoint wire form of CategoryCounters; the
// live type hides its accumulators from JSON (`json:"-"`), so the wire
// form spells every field out, including the exact Welford state.
type categoryRecord struct {
	Category        trace.Category    `json:"category"`
	Swarms          int               `json:"swarms"`
	Bundles         int               `json:"bundles,omitempty"`
	Collections     int               `json:"collections,omitempty"`
	Seedless        int               `json:"seedless,omitempty"`
	SeedlessBundles int               `json:"seedless_bundles,omitempty"`
	Downloads       stats.Accumulator `json:"downloads"`
	BundleDownloads stats.Accumulator `json:"bundle_downloads"`
}

func newCategoryRecord(cat trace.Category, c CategoryCounters) categoryRecord {
	return categoryRecord{
		Category:        cat,
		Swarms:          c.Swarms,
		Bundles:         c.Bundles,
		Collections:     c.Collections,
		Seedless:        c.Seedless,
		SeedlessBundles: c.SeedlessBundles,
		Downloads:       c.Downloads,
		BundleDownloads: c.BundleDownloads,
	}
}

func (r categoryRecord) counters() CategoryCounters {
	return CategoryCounters{
		Swarms:          r.Swarms,
		Bundles:         r.Bundles,
		Collections:     r.Collections,
		Seedless:        r.Seedless,
		SeedlessBundles: r.SeedlessBundles,
		Downloads:       r.Downloads,
		BundleDownloads: r.BundleDownloads,
	}
}

// stats snapshots the swarm into its exported form.
func (s *swarmState) stats() SwarmStats {
	fm, full := s.availability()
	st := SwarmStats{
		Meta:           s.meta,
		MonitoredDays:  s.horizon,
		Registered:     s.hasMeta,
		SeedsOnline:    s.seedsOnline,
		LeechersOnline: s.leechersOnline,
		BusyPeriods:    s.busyPeriods,
		Events:         s.events,
		LastEventDay:   s.lastEvent,
		FirstMonth:     fm,
		Full:           full,
	}
	if s.hasCensus {
		st.Census = &CensusStats{
			Seeds:     s.censusSeeds,
			Leechers:  s.censusLeechers,
			Downloads: s.downloads,
		}
	}
	return st
}

// SwarmStats is the exported per-swarm snapshot served by
// /v1/swarm/{id}.
type SwarmStats struct {
	Meta           trace.SwarmMeta `json:"meta"`
	MonitoredDays  float64         `json:"monitored_days"`
	Registered     bool            `json:"registered"`
	SeedsOnline    int             `json:"seeds_online"`
	LeechersOnline int             `json:"leechers_online"`
	BusyPeriods    int             `json:"busy_periods"`
	Events         uint64          `json:"events"`
	LastEventDay   float64         `json:"last_event_day"`
	// FirstMonth and Full are the online seed-availability fractions
	// under the shared §2 definitions (measure.Availability).
	FirstMonth float64 `json:"first_month_availability"`
	Full       float64 `json:"full_availability"`
	// Census is present once a census observation arrived.
	Census *CensusStats `json:"census,omitempty"`
}

// CensusStats is the absolute-gauge census view of a swarm.
type CensusStats struct {
	Seeds     int `json:"seeds"`
	Leechers  int `json:"leechers"`
	Downloads int `json:"downloads"`
}

// CategoryCounters aggregates one content category's census: the online
// form of measure.BundlingExtent plus the seedless/demand split of
// measure.AvailabilityByBundling.
type CategoryCounters struct {
	Swarms          int `json:"swarms"`
	Bundles         int `json:"bundles"`
	Collections     int `json:"collections"`
	Seedless        int `json:"seedless"`
	SeedlessBundles int `json:"seedless_bundles"`

	Downloads       stats.Accumulator `json:"-"`
	BundleDownloads stats.Accumulator `json:"-"`
}

// merge folds other into c.
func (c *CategoryCounters) merge(other CategoryCounters) {
	c.Swarms += other.Swarms
	c.Bundles += other.Bundles
	c.Collections += other.Collections
	c.Seedless += other.Seedless
	c.SeedlessBundles += other.SeedlessBundles
	c.Downloads.Merge(&other.Downloads)
	c.BundleDownloads.Merge(&other.BundleDownloads)
}

// observe folds one census snapshot into the counters, applying the
// paper's classifiers exactly as the offline path does.
func (c *CategoryCounters) observe(snap trace.Snapshot) {
	c.Swarms++
	bundle := measure.IsBundle(snap.Meta)
	if bundle {
		c.Bundles++
	}
	if snap.Meta.Category == trace.Books && measure.IsCollection(snap.Meta) {
		c.Collections++
	}
	if snap.Seeds == 0 {
		c.Seedless++
		if bundle {
			c.SeedlessBundles++
		}
	}
	c.Downloads.Add(float64(snap.Downloads))
	if bundle {
		c.BundleDownloads.Add(float64(snap.Downloads))
	}
}

// Extent converts the counters to measure's offline summary type.
func (c CategoryCounters) Extent(cat trace.Category) measure.BundlingExtent {
	return measure.BundlingExtent{
		Category:    cat,
		Swarms:      c.Swarms,
		Bundles:     c.Bundles,
		Collections: c.Collections,
	}
}

// Compare converts the counters to measure's availability-by-bundling
// comparison.
func (c CategoryCounters) Compare(cat trace.Category) measure.AvailabilityByBundling {
	out := measure.AvailabilityByBundling{
		Category: cat,
		NAll:     c.Swarms,
		NBundles: c.Bundles,
	}
	if c.Swarms > 0 {
		out.SeedlessAll = float64(c.Seedless) / float64(c.Swarms)
		out.MeanDownloadsAll = c.Downloads.Mean()
	}
	if c.Bundles > 0 {
		out.SeedlessBundles = float64(c.SeedlessBundles) / float64(c.Bundles)
		out.MeanDownloadsBundles = c.BundleDownloads.Mean()
	}
	return out
}
