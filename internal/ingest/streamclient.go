package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"swarmavail/internal/wal"
)

// StreamClientConfig parameterises a StreamClient. The zero value
// (plus an Addr or Dial) selects sensible defaults.
type StreamClientConfig struct {
	// Addr is the binary ingest listener's TCP address
	// (availd -ingest-bin).
	Addr string
	// Dial, when set, replaces the default net.Dial — tests inject
	// fault-wrapped connections, and the crash harness re-resolves the
	// restarted server's port here.
	Dial func() (net.Conn, error)
	// Source is the idempotency source id carried inside every keyed
	// DATA frame (default: a fresh id from NewSourceID). One Source
	// names one exactly-once sender stream — reuse it across
	// reconnects, never across concurrent clients.
	Source string
	// BatchSize is the ops accumulated per DATA frame (default 512,
	// matching the engine's batch size).
	BatchSize int
	// Window is the maximum unacknowledged DATA frames in flight;
	// a full window blocks the producer (default 32).
	Window int
	// MaxAttempts bounds consecutive failed dials before a send
	// reports failure (default 8).
	MaxAttempts int
	// RetryBackoff is the wait after a failed dial, doubling up to
	// 32× per consecutive failure (default 50ms).
	RetryBackoff time.Duration
	// Logf, when set, receives one line per reconnect.
	Logf func(format string, args ...any)
}

func (c StreamClientConfig) withDefaults() StreamClientConfig {
	if c.Source == "" {
		c.Source = NewSourceID()
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	return c
}

// StreamClient speaks the binary streaming ingest protocol: it batches
// ops into keyed DATA frames, keeps up to Window frames in flight
// against the server's cumulative acks, and on a broken connection
// redials and resends everything unacknowledged. Because every frame
// carries a (source, seq) idempotency key, the resend is exactly-once
// end to end: frames the server had accepted before the cut are
// acknowledged again from its dedup window without re-applying.
//
// Ops for one batch are encoded exactly once — the encoded envelope is
// what the in-flight window retains, so a retry resends bytes, not
// re-encodes structs.
//
// A StreamClient is a single-producer object like Writer: Put/Observe/
// Flush/Close must come from one goroutine. Acked and WaitAcked are
// safe to call from others (the cluster gateway's ack relay does).
type StreamClient struct {
	cfg StreamClientConfig

	mu   sync.Mutex
	cond *sync.Cond

	conn net.Conn
	gen  uint64 // bumps per established connection; readLoop's identity

	// unacked holds the encoded envelopes of every DATA frame not yet
	// covered by a cumulative ack, oldest first. The frames at indexes
	// below sentOnConn−ackedOnConn are on the wire of the current
	// connection; the rest await (re)send.
	unacked    [][]byte
	sentOnConn uint64 // DATA frames written on the current connection
	ackedOnConn uint64

	totalSent  uint64 // DATA frames handed to the window, ever
	totalAcked uint64 // DATA frames settled by acks, ever
	reconnects uint64

	pumping bool  // a sender is mid-pump (writes happen unlocked)
	lastErr error // newest transport error, for dial-exhausted reports
	fatal   error // server verdict that retrying cannot change
	closed  bool

	batch []Op // ops accumulating toward the next DATA frame
	seq   uint64
}

// NewStreamClient returns a client ready to send; the first Put dials.
func NewStreamClient(cfg StreamClientConfig) *StreamClient {
	c := &StreamClient{cfg: cfg.withDefaults()}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Source returns the idempotency source id the client stamps inside
// every keyed frame.
func (c *StreamClient) Source() string { return c.cfg.Source }

// Reconnects returns how many times the client re-established the
// connection after a failure.
func (c *StreamClient) Reconnects() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Sent returns the cumulative DATA frames handed to the in-flight
// window.
func (c *StreamClient) Sent() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalSent
}

// Acked returns the cumulative DATA frames the server has settled.
func (c *StreamClient) Acked() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalAcked
}

// Put appends one op, sending a DATA frame when the batch fills.
func (c *StreamClient) Put(op Op) error {
	c.batch = append(c.batch, op)
	if len(c.batch) >= c.cfg.BatchSize {
		return c.flushBatch()
	}
	return nil
}

// Observe appends one monitor record.
func (c *StreamClient) Observe(rec Record) error { return c.Put(EventOp(rec)) }

// flushBatch encodes the pending ops as one keyed DATA frame and hands
// it to the window. The whole envelope is built in one buffer — header
// space reserved up front, payload appended behind it, sealed by
// FinishFrame — so a frame costs a single allocation.
func (c *StreamClient) flushBatch() error {
	if len(c.batch) == 0 {
		return nil
	}
	c.seq++
	// Event ops encode to 26 bytes; meta/census are rare enough that a
	// regrow on their account is fine.
	hint := wal.FrameHeaderSize + 1 + keyedHeaderSize(c.cfg.Source) + opsHeaderSize + 26*len(c.batch)
	env := make([]byte, wal.FrameHeaderSize, hint)
	env = append(env, StreamFrameData)
	env, err := encodeKeyedOps(env, c.cfg.Source, c.seq, c.batch)
	if err != nil {
		c.seq--
		return err
	}
	if env, err = wal.FinishFrame(env); err != nil {
		c.seq--
		return err
	}
	c.batch = c.batch[:0]
	return c.sendEnvelope(env)
}

// PushFrame hands one pre-encoded ops-codec frame (v1 plain or v2
// keyed — the bytes DecodeFrame accepts) to the window verbatim. The
// cluster gateway forwards client frames through this without
// re-encoding; callers mixing PushFrame with Put own the coherence of
// their key space.
func (c *StreamClient) PushFrame(frame []byte) error {
	env := make([]byte, wal.FrameHeaderSize, wal.FrameHeaderSize+1+len(frame))
	env = append(env, StreamFrameData)
	env = append(env, frame...)
	env, err := wal.FinishFrame(env)
	if err != nil {
		return err
	}
	return c.sendEnvelope(env)
}

// sendEnvelope blocks while the window is full, then appends env and
// pumps the connection.
func (c *StreamClient) sendEnvelope(env []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	for len(c.unacked) >= c.cfg.Window {
		if c.fatal != nil {
			return c.fatal
		}
		if c.conn == nil {
			if err := c.pumpLocked(); err != nil {
				return err
			}
			continue
		}
		c.cond.Wait()
	}
	c.unacked = append(c.unacked, env)
	c.totalSent++
	return c.pumpLocked()
}

// Flush sends any buffered ops and blocks until every sent frame is
// acknowledged — the client-side barrier. On return, everything put
// before the call is journaled (durable engine) and applied, or the
// error says why not.
func (c *StreamClient) Flush() error {
	if err := c.flushBatch(); err != nil {
		return err
	}
	c.mu.Lock()
	target := c.totalSent
	c.mu.Unlock()
	return c.WaitAcked(target)
}

// WaitAcked blocks until the server's cumulative acks cover the first
// n DATA frames, redialing and resending as needed. n beyond Sent()
// never settles; callers pass a value they observed from Sent().
func (c *StreamClient) WaitAcked(n uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.totalAcked < n {
		if c.fatal != nil {
			return c.fatal
		}
		if c.closed {
			return ErrClosed
		}
		if c.conn == nil && len(c.unacked) > 0 {
			if err := c.pumpLocked(); err != nil {
				return err
			}
			continue
		}
		c.cond.Wait()
	}
	return nil
}

// Close flushes, settles the window, sends a CLOSE frame, and tears
// the connection down. Idempotent; later sends return ErrClosed.
func (c *StreamClient) Close() error {
	err := c.Flush()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return err
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	if conn != nil {
		// Best effort: the window is already settled, so CLOSE is
		// courtesy, not correctness.
		_, _ = conn.Write(wal.AppendFrame(nil, []byte{StreamFrameClose}))
		conn.Close()
	}
	return err
}

// pumpLocked drives the connection until every unacked frame has been
// written on a live connection: dial (with bounded, backed-off
// retries), resend the unacked window, send anything new. Only one
// caller pumps at a time; others wait — the pumper writes their frames
// too. Called with mu held; unlocks around dials and writes.
func (c *StreamClient) pumpLocked() error {
	for c.pumping {
		c.cond.Wait()
		if c.fatal != nil {
			return c.fatal
		}
	}
	c.pumping = true
	defer func() {
		c.pumping = false
		c.cond.Broadcast()
	}()
	dialFails := 0
	for {
		if c.fatal != nil {
			return c.fatal
		}
		if c.closed {
			return ErrClosed
		}
		if c.conn == nil {
			if dialFails >= c.cfg.MaxAttempts {
				return fmt.Errorf("ingest: stream dial failed %d times: %w", dialFails, c.lastErr)
			}
			c.mu.Unlock()
			conn, err := c.dial()
			c.mu.Lock()
			if err != nil {
				dialFails++
				c.lastErr = err
				if c.cfg.Logf != nil {
					c.cfg.Logf("ingest stream: dial %d/%d failed: %v", dialFails, c.cfg.MaxAttempts, err)
				}
				c.mu.Unlock()
				time.Sleep(c.backoff(dialFails))
				c.mu.Lock()
				continue
			}
			c.gen++
			c.conn = conn
			c.sentOnConn, c.ackedOnConn = 0, 0
			if c.gen > 1 {
				c.reconnects++
				if c.cfg.Logf != nil {
					c.cfg.Logf("ingest stream: reconnected (%d unacked frames to resend)", len(c.unacked))
				}
			}
			go c.readLoop(conn, c.gen)
		}
		inflight := int(c.sentOnConn - c.ackedOnConn)
		if inflight >= len(c.unacked) {
			return nil
		}
		// Commit the frames to this connection before writing: the ack
		// reader validates acks against sentOnConn, and the server may
		// answer before the write call even returns.
		toSend := make([][]byte, len(c.unacked)-inflight)
		copy(toSend, c.unacked[inflight:])
		c.sentOnConn += uint64(len(toSend))
		conn, gen := c.conn, c.gen
		c.mu.Unlock()
		var werr error
		for _, env := range toSend {
			if _, werr = conn.Write(env); werr != nil {
				break
			}
		}
		c.mu.Lock()
		if werr != nil && gen == c.gen && conn == c.conn {
			c.dropConnLocked(conn, werr)
		}
		// Loop: recheck under the lock — the connection may have died
		// (our write error or the reader's), leaving frames to resend.
	}
}

func (c *StreamClient) backoff(fails int) time.Duration {
	d := c.cfg.RetryBackoff
	for i := 1; i < fails && d < 32*c.cfg.RetryBackoff; i++ {
		d *= 2
	}
	return d
}

func (c *StreamClient) dial() (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial()
	}
	return net.DialTimeout("tcp", c.cfg.Addr, 10*time.Second)
}

// dropConnLocked retires the current connection after a transport
// error. Unacked frames stay queued; the next pump resends them.
func (c *StreamClient) dropConnLocked(conn net.Conn, err error) {
	c.lastErr = err
	c.conn = nil
	conn.Close()
	c.cond.Broadcast()
}

// readLoop consumes ACK/ERR frames for one connection. gen ties the
// loop to its connection: bookkeeping is applied only while the client
// still considers conn current.
func (c *StreamClient) readLoop(conn net.Conn, gen uint64) {
	fr := wal.NewFrameReader(bufio.NewReaderSize(conn, 4<<10))
	for {
		payload, err := fr.Next()
		if err != nil {
			c.connFailed(conn, gen, err)
			return
		}
		switch payload[0] {
		case StreamFrameAck:
			if len(payload) < 9 {
				c.connFailed(conn, gen, fmt.Errorf("ingest: short ack frame (%d bytes)", len(payload)))
				return
			}
			n := binary.LittleEndian.Uint64(payload[1:9])
			if !c.applyAck(conn, gen, n) {
				return
			}
		case StreamFrameErr:
			serr := &StreamError{Code: StreamErrProto}
			if len(payload) >= 2 {
				serr.Code = payload[1]
				serr.Msg = string(payload[2:])
			}
			c.connFailed(conn, gen, serr)
			return
		default:
			c.connFailed(conn, gen, fmt.Errorf("ingest: unknown stream frame type 0x%02x", payload[0]))
			return
		}
	}
}

// applyAck advances the window to the server's cumulative count.
// Returns false when the loop should exit (stale connection or a
// protocol violation).
func (c *StreamClient) applyAck(conn net.Conn, gen, n uint64) bool {
	c.mu.Lock()
	if gen != c.gen || conn != c.conn {
		c.mu.Unlock()
		return false
	}
	if n < c.ackedOnConn || n > c.sentOnConn {
		c.mu.Unlock()
		c.connFailed(conn, gen, fmt.Errorf("ingest: ack %d outside window [%d,%d]", n, c.ackedOnConn, c.sentOnConn))
		return false
	}
	delta := n - c.ackedOnConn
	c.ackedOnConn = n
	c.totalAcked += delta
	c.unacked = c.unacked[delta:]
	if len(c.unacked) == 0 {
		c.unacked = nil // release the settled backing array
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	return true
}

// connFailed retires conn after a read-side failure. A codec verdict
// from the server is fatal — resending the same bytes cannot change
// it — while everything else (resets, engine-closed during a restart,
// torn acks) leaves the unacked window queued for the next pump.
func (c *StreamClient) connFailed(conn net.Conn, gen uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen || conn != c.conn {
		return
	}
	if serr, ok := err.(*StreamError); ok && serr.Code == StreamErrCodec {
		c.fatal = serr
	}
	c.dropConnLocked(conn, err)
}
