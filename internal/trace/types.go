// Package trace is the synthetic measurement substrate standing in for
// the paper's Mininova/PlanetLab datasets (§2), which are no longer
// obtainable (Mininova is defunct; PlanetLab is retired). It generates
// swarm populations with the same observable structure the paper's
// monitoring agents recorded:
//
//   - a seven-month availability study: per-swarm publisher (seed)
//     sessions over a monitoring horizon (Figure 1's input);
//   - a single-day snapshot of ~10⁶ swarms with categories, file
//     listings, seed/leecher counts and download counters (§2.3's
//     input);
//   - peer arrival patterns for young (flash-crowd) and old (steady)
//     swarms (Figure 7's input).
//
// The generator parameters are calibrated so the paper's headline
// statistics are reproduced; internal/measure recomputes those
// statistics from the generated data exactly as the paper's analysis
// scripts would.
package trace

import (
	"fmt"
	"strings"

	"swarmavail/internal/dist"
)

// Category is a content category as used by Mininova's taxonomy.
type Category int

// Categories analysed in §2.3 plus the aggregate rest.
const (
	Music Category = iota
	TV
	Books
	Movies
	Other
	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Music:
		return "music"
	case TV:
		return "tv"
	case Books:
		return "books"
	case Movies:
		return "movies"
	case Other:
		return "other"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// FileMeta is one file inside a swarm's content listing.
type FileMeta struct {
	Name   string  `json:"name"`
	SizeKB float64 `json:"size_kb"`
}

// Ext returns the lower-cased file extension including the dot ("" when
// absent).
func (f FileMeta) Ext() string {
	i := strings.LastIndexByte(f.Name, '.')
	if i < 0 {
		return ""
	}
	return strings.ToLower(f.Name[i:])
}

// SwarmMeta describes one swarm's static metadata.
type SwarmMeta struct {
	ID       int        `json:"id"`
	Category Category   `json:"category"`
	Title    string     `json:"title"`
	Files    []FileMeta `json:"files"`
	// CreatedDay is the swarm's creation time in days since the start of
	// the measurement.
	CreatedDay float64 `json:"created_day"`
	// GroupID ties swarms that carry the same underlying franchise (for
	// TV: the show). Zero means ungrouped. It powers the §2.3.2
	// case-study analysis ("the popular TV show Friends had 52 swarms…").
	GroupID int `json:"group_id,omitempty"`
}

// TotalSizeKB returns the content size.
func (m SwarmMeta) TotalSizeKB() float64 {
	var s float64
	for _, f := range m.Files {
		s += f.SizeKB
	}
	return s
}

// SwarmTrace is the availability-study record for one swarm: the
// intervals (in days, relative to swarm creation) during which at least
// one seed was online, over the monitored horizon.
type SwarmTrace struct {
	Meta SwarmMeta `json:"meta"`
	// SeedSessions are merged seed-online intervals in days since
	// creation.
	SeedSessions []dist.Interval `json:"seed_sessions"`
	// MonitoredDays is the monitoring horizon for this swarm.
	MonitoredDays float64 `json:"monitored_days"`
}

// AvailabilityOver returns the fraction of [0, days) with a seed online.
func (t SwarmTrace) AvailabilityOver(days float64) float64 {
	if days > t.MonitoredDays {
		days = t.MonitoredDays
	}
	return dist.AvailableFraction(t.SeedSessions, days)
}

// FirstMonthAvailability is AvailabilityOver(30).
func (t SwarmTrace) FirstMonthAvailability() float64 { return t.AvailabilityOver(30) }

// FullAvailability is the availability over the whole monitored window.
func (t SwarmTrace) FullAvailability() float64 { return t.AvailabilityOver(t.MonitoredDays) }

// Snapshot is one swarm's state in the single-day dataset (§2.3):
// instantaneous seed/leecher counts plus the cumulative download
// counter.
type Snapshot struct {
	Meta      SwarmMeta `json:"meta"`
	Seeds     int       `json:"seeds"`
	Leechers  int       `json:"leechers"`
	Downloads int       `json:"downloads"`
}
