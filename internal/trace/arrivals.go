package trace

import (
	"math/rand"

	"swarmavail/internal/dist"
	"swarmavail/internal/stats"
)

// ArrivalPattern bundles an arrival process with a label for the
// Figure 7 comparison of young and old swarms.
type ArrivalPattern struct {
	Label   string
	Process dist.ArrivalProcess
}

// NewSwarmArrivals models a freshly published swarm (Figure 7a): a
// flash crowd whose rate decays from peakPerHour to floorPerHour with
// the given time constant (hours). Times are in seconds.
func NewSwarmArrivals(peakPerHour, decayHours, floorPerHour float64) ArrivalPattern {
	return ArrivalPattern{
		Label: "new swarm (flash crowd)",
		Process: dist.FlashCrowd{
			Peak:  peakPerHour / 3600,
			Decay: decayHours * 3600,
			Floor: floorPerHour / 3600,
		},
	}
}

// OldSwarmArrivals models a mature swarm (Figure 7b): steady Poisson
// arrivals at ratePerHour. Times are in seconds.
func OldSwarmArrivals(ratePerHour float64) ArrivalPattern {
	return ArrivalPattern{
		Label:   "old swarm (steady)",
		Process: dist.PoissonProcess{Rate: ratePerHour / 3600},
	}
}

// BinnedArrivals simulates the pattern over horizon seconds and returns
// per-bucket arrival counts (bucket width in seconds) — the series
// Figure 7 plots — together with the coefficient of variation of the
// bucket counts, the statistic §4.3.4 uses to contrast the two regimes.
func BinnedArrivals(p ArrivalPattern, r *rand.Rand, horizon, bucket float64) (counts []int, cv float64) {
	ts := stats.NewTimeSeries(bucket)
	for _, t := range dist.CollectArrivals(p.Process, r, horizon, 0) {
		ts.Record(t)
	}
	return ts.Counts(), ts.CoefficientOfVariation()
}
