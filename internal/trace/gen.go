package trace

import (
	"fmt"
	"math"
	"math/rand"

	"swarmavail/internal/dist"
)

// StudyConfig parameterises the seven-month availability study
// generator. Defaults (via DefaultStudyConfig) are calibrated to the
// paper's Figure 1: ≲35% of swarms fully seeded during their first
// month, and ≈80% of swarms unavailable ≥80% of the time over the whole
// trace.
type StudyConfig struct {
	Seed      int64
	NumSwarms int
	// HorizonDays is the monitoring duration per swarm (the paper
	// monitored each swarm for at least one month within a 7-month
	// campaign; we use a per-swarm horizon).
	HorizonDays float64
	// AttentionMeanDays is the mean of the exponential "attended period"
	// after publication, during which the publisher keeps its seed
	// mostly online. Afterwards the seed disappears except for rare
	// revisits.
	AttentionMeanDays float64
	// AlwaysOnFraction is the fraction of publishers whose seed stays
	// continuously online during the attended period.
	AlwaysOnFraction float64
	// MeanOnHours/MeanOffHours shape the duty cycle of the remaining
	// (intermittent) publishers during the attended period.
	MeanOnHours  float64
	MeanOffHours float64
	// RevisitRatePerDay is the rate of brief post-abandonment seed
	// reappearances; RevisitMeanHours their mean duration.
	RevisitRatePerDay float64
	RevisitMeanHours  float64
}

// DefaultStudyConfig returns the calibrated configuration.
func DefaultStudyConfig(numSwarms int, seed int64) StudyConfig {
	return StudyConfig{
		Seed:              seed,
		NumSwarms:         numSwarms,
		HorizonDays:       210,
		AttentionMeanDays: 45,
		AlwaysOnFraction:  0.62,
		MeanOnHours:       7,
		MeanOffHours:      17,
		RevisitRatePerDay: 0.02,
		RevisitMeanHours:  5,
	}
}

// GenerateStudy produces the availability-study dataset.
func GenerateStudy(cfg StudyConfig) []SwarmTrace {
	if cfg.NumSwarms <= 0 || cfg.HorizonDays <= 0 {
		panic("trace: study needs positive swarm count and horizon")
	}
	r := dist.NewRand(cfg.Seed)
	snap := newSnapshotModel(r) // reuse the category/file machinery
	out := make([]SwarmTrace, 0, cfg.NumSwarms)
	for i := 0; i < cfg.NumSwarms; i++ {
		meta := snap.meta(i)
		out = append(out, SwarmTrace{
			Meta:          meta,
			SeedSessions:  cfg.seedSessions(r),
			MonitoredDays: cfg.HorizonDays,
		})
	}
	return out
}

// seedSessions simulates one swarm's publisher behaviour over the
// horizon (all times in days).
func (cfg StudyConfig) seedSessions(r *rand.Rand) []dist.Interval {
	attended := r.ExpFloat64() * cfg.AttentionMeanDays
	if attended > cfg.HorizonDays {
		attended = cfg.HorizonDays
	}
	var sessions []dist.Interval
	if r.Float64() < cfg.AlwaysOnFraction {
		if attended > 0 {
			sessions = append(sessions, dist.Interval{Start: 0, End: attended})
		}
	} else {
		onOff := dist.OnOff{
			On:      dist.NewExponentialFromMean(cfg.MeanOnHours / 24),
			Off:     dist.NewExponentialFromMean(cfg.MeanOffHours / 24),
			StartOn: true,
		}
		sessions = onOff.Sessions(r, attended)
	}
	// Rare revisits after abandonment.
	if cfg.RevisitRatePerDay > 0 {
		t := attended
		for {
			t += r.ExpFloat64() / cfg.RevisitRatePerDay
			if t >= cfg.HorizonDays {
				break
			}
			d := r.ExpFloat64() * cfg.RevisitMeanHours / 24
			end := math.Min(t+d, cfg.HorizonDays)
			sessions = append(sessions, dist.Interval{Start: t, End: end})
			t = end
		}
	}
	return dist.MergeIntervals(sessions)
}

// ---------------------------------------------------------------------------
// Snapshot dataset (§2.3).

// SnapshotConfig parameterises the single-day dataset generator. The
// defaults reproduce the Mininova May 6 2009 marginals: category mix,
// per-category bundling fractions (72.4% of music, 15.8% of TV, ~10.7%
// of book swarms), download counts (books: ≈2,578 mean overall, ≈4,216
// for collections), and seed-presence rates coupled to bundling
// (books: 62% of all swarms seedless vs 36% of collections).
type SnapshotConfig struct {
	Seed      int64
	NumSwarms int
}

// audio/video/book extensions used both by the generator and by the
// measure classifier (they are part of the §2.3 methodology).
var (
	AudioExts = []string{".mp3", ".mid", ".wav", ".flac"}
	VideoExts = []string{".mpg", ".avi", ".mkv", ".mp4"}
	BookExts  = []string{".pdf", ".djvu", ".epub"}
	otherExts = []string{".iso", ".exe", ".zip", ".rar"}
)

// categoryShares approximates Mininova's category mix: the three
// analysed categories account for ≈46% of swarms (music 24.6%,
// TV 15.2%, books 6.1%).
var categoryShares = map[Category]float64{
	Music:  0.246,
	TV:     0.152,
	Books:  0.061,
	Movies: 0.28,
	Other:  0.261,
}

// bundleFraction is the generator-side probability that a swarm of the
// category is authored as a bundle (multiple principal files):
// music 193,491/267,117; TV 25,990/164,930; books (841+6,270)/66,387.
var bundleFraction = map[Category]float64{
	Music:  0.724,
	TV:     0.158,
	Books:  0.107,
	Movies: 0.0, // DVD rips: many files, one movie — not detectable bundles
	Other:  0.05,
}

// collectionFractionOfBookBundles is the share of book bundles that are
// keyword-titled "collections" (841 of 841+6,270).
const collectionFractionOfBookBundles = 0.118

// numTVShows is the franchise pool behind TV swarms' GroupIDs.
const numTVShows = 400

type snapshotModel struct {
	r        *rand.Rand
	catPick  *dist.Categorical
	catOrder []Category
}

func newSnapshotModel(r *rand.Rand) *snapshotModel {
	order := []Category{Music, TV, Books, Movies, Other}
	weights := make([]float64, len(order))
	for i, c := range order {
		weights[i] = categoryShares[c]
	}
	return &snapshotModel{r: r, catPick: dist.NewCategorical(weights), catOrder: order}
}

func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }

// meta generates one swarm's static metadata.
func (m *snapshotModel) meta(id int) SwarmMeta {
	cat := m.catOrder[m.catPick.Sample(m.r)]
	meta := SwarmMeta{
		ID:         id,
		Category:   cat,
		CreatedDay: m.r.Float64() * 700, // up to ~2 years old
	}
	bundle := m.r.Float64() < bundleFraction[cat]
	switch cat {
	case Music:
		if bundle {
			n := 2 + m.r.Intn(18)
			meta.Title = fmt.Sprintf("Album %d", id)
			for i := 0; i < n; i++ {
				meta.Files = append(meta.Files, FileMeta{
					Name:   fmt.Sprintf("track%02d%s", i+1, pick(m.r, AudioExts)),
					SizeKB: 3000 + m.r.Float64()*6000,
				})
			}
		} else {
			meta.Title = fmt.Sprintf("Single %d", id)
			meta.Files = []FileMeta{{
				Name:   fmt.Sprintf("song%d%s", id, pick(m.r, AudioExts)),
				SizeKB: 3000 + m.r.Float64()*6000,
			}}
		}
	case TV:
		// Swarms of one show share a GroupID; popularity over shows is
		// skewed so hit shows accumulate dozens of swarms (the Friends
		// case study had 52).
		show := 1 + int(math.Floor(math.Pow(m.r.Float64(), 2)*float64(numTVShows)))
		meta.GroupID = show
		if bundle {
			n := 2 + m.r.Intn(22)
			meta.Title = fmt.Sprintf("Show %d Season %d", show, 1+m.r.Intn(9))
			for i := 0; i < n; i++ {
				meta.Files = append(meta.Files, FileMeta{
					Name:   fmt.Sprintf("s01e%02d%s", i+1, pick(m.r, VideoExts)),
					SizeKB: 200000 + m.r.Float64()*300000,
				})
			}
		} else {
			meta.Title = fmt.Sprintf("Show %d episode", show)
			meta.Files = []FileMeta{{
				Name:   fmt.Sprintf("episode%d%s", id, pick(m.r, VideoExts)),
				SizeKB: 200000 + m.r.Float64()*300000,
			}}
		}
	case Books:
		if bundle {
			collection := m.r.Float64() < collectionFractionOfBookBundles
			n := 2 + m.r.Intn(12)
			if collection {
				meta.Title = fmt.Sprintf("Ultimate Collection %d", id)
				n = 20 + m.r.Intn(600)
			} else {
				meta.Title = fmt.Sprintf("Book pack %d", id)
			}
			for i := 0; i < n; i++ {
				meta.Files = append(meta.Files, FileMeta{
					Name:   fmt.Sprintf("book%03d%s", i+1, pick(m.r, BookExts)),
					SizeKB: 500 + m.r.Float64()*9000,
				})
			}
		} else {
			meta.Title = fmt.Sprintf("Book %d", id)
			meta.Files = []FileMeta{{
				Name:   fmt.Sprintf("book%d%s", id, pick(m.r, BookExts)),
				SizeKB: 500 + m.r.Float64()*9000,
			}}
		}
	case Movies:
		// A DVD rip: several video/other files that are NOT separate
		// contents — the case the paper calls out as hard to classify.
		n := 1 + m.r.Intn(4)
		meta.Title = fmt.Sprintf("Movie %d", id)
		for i := 0; i < n; i++ {
			meta.Files = append(meta.Files, FileMeta{
				Name:   fmt.Sprintf("VTS_%02d_1%s", i+1, pick(m.r, VideoExts)),
				SizeKB: 700000 + m.r.Float64()*300000,
			})
		}
	default:
		n := 1
		if bundle {
			n = 2 + m.r.Intn(5)
		}
		meta.Title = fmt.Sprintf("Misc %d", id)
		for i := 0; i < n; i++ {
			meta.Files = append(meta.Files, FileMeta{
				Name:   fmt.Sprintf("file%d%s", i+1, pick(m.r, otherExts)),
				SizeKB: 10000 + m.r.Float64()*100000,
			})
		}
	}
	return meta
}

// isBundleMeta reports whether the generator authored meta as a bundle
// of ≥2 principal files (ground truth; the measure package re-detects
// this from the file listing alone).
func isBundleMeta(meta SwarmMeta) bool {
	return len(meta.Files) >= 2 && meta.Category != Movies
}

// GenerateSnapshot produces the single-day dataset.
func GenerateSnapshot(cfg SnapshotConfig) []Snapshot {
	if cfg.NumSwarms <= 0 {
		panic("trace: snapshot needs a positive swarm count")
	}
	r := dist.NewRand(cfg.Seed)
	m := newSnapshotModel(r)
	out := make([]Snapshot, 0, cfg.NumSwarms)
	for i := 0; i < cfg.NumSwarms; i++ {
		meta := m.meta(i)
		bundle := isBundleMeta(meta)
		out = append(out, Snapshot{
			Meta:      meta,
			Seeds:     m.seeds(meta.Category, bundle),
			Leechers:  m.leechers(bundle),
			Downloads: m.downloads(meta.Category, bundle),
		})
	}
	return out
}

// seeds draws the instantaneous seed count. Bundled content is more
// available (§2.3.2): for books, 62% of all swarms are seedless but only
// 36% of collections.
func (m *snapshotModel) seeds(cat Category, bundle bool) int {
	seedless := 0.62
	if bundle {
		seedless = 0.36
	}
	if cat == Movies || cat == Other {
		seedless = 0.55
	}
	if m.r.Float64() < seedless {
		return 0
	}
	// Geometric-ish positive seed counts.
	n := 1
	for m.r.Float64() < 0.45 && n < 200 {
		n++
	}
	return n
}

func (m *snapshotModel) leechers(bundle bool) int {
	mean := 2.0
	if bundle {
		mean = 4.0
	}
	return dist.PoissonCount(m.r, m.r.ExpFloat64()*mean)
}

// downloads draws the cumulative download counter: lognormal popularity
// with bundles drawing more demand (books: 2,578 typical vs 4,216 for
// collections — a ratio of ≈1.64).
func (m *snapshotModel) downloads(cat Category, bundle bool) int {
	// lognormal with median ≈ e^mu. Calibrated so the books-category
	// means land near the paper's: mean = e^{mu+sigma²/2}.
	mu, sigma := 7.13, 1.2
	if bundle {
		mu += 0.49 // ×1.63 in the mean
	}
	_ = cat
	v := math.Exp(mu + sigma*m.r.NormFloat64())
	if v > 5e6 {
		v = 5e6
	}
	return int(v)
}
