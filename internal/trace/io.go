package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteTraces serialises traces as JSON lines (one swarm per line) — the
// archival format of the synthetic measurement campaign.
func WriteTraces(w io.Writer, traces []SwarmTrace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range traces {
		if err := enc.Encode(&traces[i]); err != nil {
			return fmt.Errorf("trace: encoding swarm %d: %w", traces[i].Meta.ID, err)
		}
	}
	return bw.Flush()
}

// ReadTraces parses a JSON-lines trace stream.
func ReadTraces(r io.Reader) ([]SwarmTrace, error) {
	var out []SwarmTrace
	dec := json.NewDecoder(r)
	for {
		var t SwarmTrace
		if err := dec.Decode(&t); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decoding record %d: %w", len(out), err)
		}
		out = append(out, t)
	}
}

// WriteSnapshots serialises a snapshot dataset as JSON lines.
func WriteSnapshots(w io.Writer, snaps []Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range snaps {
		if err := enc.Encode(&snaps[i]); err != nil {
			return fmt.Errorf("trace: encoding snapshot %d: %w", snaps[i].Meta.ID, err)
		}
	}
	return bw.Flush()
}

// ReadSnapshots parses a JSON-lines snapshot stream.
func ReadSnapshots(r io.Reader) ([]Snapshot, error) {
	var out []Snapshot
	dec := json.NewDecoder(r)
	for {
		var s Snapshot
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decoding record %d: %w", len(out), err)
		}
		out = append(out, s)
	}
}
