package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// WriteTraces serialises traces as JSON lines (one swarm per line) — the
// archival format of the synthetic measurement campaign.
func WriteTraces(w io.Writer, traces []SwarmTrace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range traces {
		if err := enc.Encode(&traces[i]); err != nil {
			return fmt.Errorf("trace: encoding swarm %d: %w", traces[i].Meta.ID, err)
		}
	}
	return bw.Flush()
}

// Source is the streaming-read interface shared by Scanner (sequential
// json.Decoder) and ParallelScanner (order-preserving worker-pool
// decode). Consumers written against Source — the replay helpers,
// ingest.HTTPClient.PushTraces, cmd/availd, cmd/study — work with
// either and can pick per workload: Scanner for small inputs or
// single-core machines, ParallelScanner when decode is the bottleneck.
type Source[T any] interface {
	// Scan advances to the next record; false at end of input or on the
	// first decode error (Err distinguishes).
	Scan() bool
	// Record returns the record read by the last successful Scan.
	Record() T
	// Err returns the first decode error, or nil on clean end of input.
	Err() error
}

// Scanner streams a JSON-lines dataset one record at a time, so replay
// and analysis tools can process campaigns far larger than memory.
// Instantiated as Scanner[SwarmTrace] (NewTraceScanner) or
// Scanner[Snapshot] (NewSnapshotScanner).
//
// Usage follows bufio.Scanner:
//
//	sc := trace.NewTraceScanner(f)
//	for sc.Scan() {
//	    t := sc.Record()
//	    …
//	}
//	if err := sc.Err(); err != nil { … }
type Scanner[T any] struct {
	dec *json.Decoder
	cur T
	n   int
	err error
}

// NewTraceScanner returns a streaming reader over an availability-study
// trace file.
func NewTraceScanner(r io.Reader) *Scanner[SwarmTrace] { return newScanner[SwarmTrace](r) }

// NewSnapshotScanner returns a streaming reader over a census snapshot
// file.
func NewSnapshotScanner(r io.Reader) *Scanner[Snapshot] { return newScanner[Snapshot](r) }

// NewScanner returns a sequential streaming reader over a JSONL stream
// of any record type (availd uses it for ingest records).
func NewScanner[T any](r io.Reader) *Scanner[T] { return newScanner[T](r) }

func newScanner[T any](r io.Reader) *Scanner[T] {
	// json.Decoder reads in small chunks; the bufio layer keeps the
	// underlying reads large even for unbuffered sources (files, pipes,
	// network bodies).
	return &Scanner[T]{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Scan advances to the next record. It returns false at end of input or
// on the first decode error; Err distinguishes the two.
func (s *Scanner[T]) Scan() bool {
	if s.err != nil {
		return false
	}
	var rec T
	if err := s.dec.Decode(&rec); err != nil {
		if !errors.Is(err, io.EOF) {
			s.err = fmt.Errorf("trace: decoding record %d: %w", s.n, err)
		}
		return false
	}
	s.cur = rec
	s.n++
	return true
}

// Record returns the record read by the last successful Scan.
func (s *Scanner[T]) Record() T { return s.cur }

// Count returns the number of records successfully read so far.
func (s *Scanner[T]) Count() int { return s.n }

// Err returns the first decode error, or nil if the stream ended
// cleanly. A truncated final record surfaces as io.ErrUnexpectedEOF
// (wrapped), not as a clean end.
func (s *Scanner[T]) Err() error { return s.err }

// ReadTraces parses a JSON-lines trace stream into memory. Prefer
// NewTraceScanner for large datasets.
func ReadTraces(r io.Reader) ([]SwarmTrace, error) {
	sc := NewTraceScanner(r)
	var out []SwarmTrace
	for sc.Scan() {
		out = append(out, sc.Record())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteSnapshots serialises a snapshot dataset as JSON lines.
func WriteSnapshots(w io.Writer, snaps []Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range snaps {
		if err := enc.Encode(&snaps[i]); err != nil {
			return fmt.Errorf("trace: encoding snapshot %d: %w", snaps[i].Meta.ID, err)
		}
	}
	return bw.Flush()
}

// ReadSnapshots parses a JSON-lines snapshot stream into memory. Prefer
// NewSnapshotScanner for large datasets.
func ReadSnapshots(r io.Reader) ([]Snapshot, error) {
	sc := NewSnapshotScanner(r)
	var out []Snapshot
	for sc.Scan() {
		out = append(out, sc.Record())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
