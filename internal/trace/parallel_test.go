package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// studyJSONL renders a deterministic synthetic study as the archival
// JSONL bytes the decoders consume.
func studyJSONL(t testing.TB, swarms int, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTraces(&buf, GenerateStudy(DefaultStudyConfig(swarms, seed))); err != nil {
		t.Fatalf("writing study: %v", err)
	}
	return buf.Bytes()
}

// TestParallelScannerMatchesScanner is the core parity property: on a
// real campaign file the parallel decoder yields exactly the records,
// order and count of the sequential Scanner, for any worker count.
func TestParallelScannerMatchesScanner(t *testing.T) {
	data := studyJSONL(t, 500, 7)

	sc := NewTraceScanner(bytes.NewReader(data))
	var want []SwarmTrace
	for sc.Scan() {
		want = append(want, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanner: %v", err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		ps := NewParallelTraceScanner(bytes.NewReader(data), workers)
		var got []SwarmTrace
		for ps.Scan() {
			got = append(got, ps.Record())
		}
		if err := ps.Err(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ps.Count() != len(want) {
			t.Fatalf("workers=%d: Count = %d, want %d", workers, ps.Count(), len(want))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel decode diverged from Scanner", workers)
		}
	}
}

// TestParallelScannerOrder checks order preservation across many blocks
// with records small enough that a block carries thousands of them.
func TestParallelScannerOrder(t *testing.T) {
	var buf bytes.Buffer
	const n = 200_000 // ~4 MiB: forces many blocks in flight at once
	for i := range n {
		fmt.Fprintf(&buf, `{"meta":{"id":%d}}`+"\n", i)
	}
	ps := NewParallelSnapshotScanner(bytes.NewReader(buf.Bytes()), 4)
	next := 0
	for ps.Scan() {
		if got := ps.Record().Meta.ID; got != next {
			t.Fatalf("record %d arrived with id %d", next, got)
		}
		next++
	}
	if err := ps.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if next != n {
		t.Fatalf("decoded %d records, want %d", next, n)
	}
}

// TestParallelScannerTruncation mirrors TestScannerTruncation: records
// before the cut are delivered, the cut surfaces as io.ErrUnexpectedEOF,
// and the scanner stays stopped.
func TestParallelScannerTruncation(t *testing.T) {
	data := []byte(validTraceLine + validTraceLine[:30])
	ps := NewParallelTraceScanner(bytes.NewReader(data), 2)
	if !ps.Scan() {
		t.Fatalf("first record must scan (err %v)", ps.Err())
	}
	if ps.Record().Meta.ID != 7 {
		t.Fatalf("unexpected record %+v", ps.Record())
	}
	if ps.Scan() {
		t.Fatal("truncated record must not scan")
	}
	if err := ps.Err(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation must report io.ErrUnexpectedEOF, got %v", err)
	}
	if ps.Scan() {
		t.Fatal("scanner must stay stopped after an error")
	}

	clean := NewParallelTraceScanner(bytes.NewReader([]byte(validTraceLine)), 2)
	for clean.Scan() {
	}
	if err := clean.Err(); err != nil {
		t.Fatalf("clean EOF must not error: %v", err)
	}
	if clean.Count() != 1 {
		t.Fatalf("Count = %d, want 1", clean.Count())
	}
}

// TestParallelScannerMidStreamError pins decode-error semantics on a
// non-final record: everything before the bad line is delivered, the
// error is positioned at the bad line's record index, and nothing after
// it leaks out.
func TestParallelScannerMidStreamError(t *testing.T) {
	data := []byte(validTraceLine + "[]\n" + validTraceLine)
	for _, workers := range []int{1, 4} {
		ps := NewParallelTraceScanner(bytes.NewReader(data), workers)
		n := 0
		for ps.Scan() {
			n++
		}
		if n != 1 {
			t.Fatalf("workers=%d: delivered %d records before the error, want 1", workers, n)
		}
		err := ps.Err()
		if err == nil {
			t.Fatalf("workers=%d: bad record must error", workers)
		}
		if !strings.Contains(err.Error(), "record 1") {
			t.Fatalf("workers=%d: error not positioned at record 1: %v", workers, err)
		}
	}
}

// errAfterReader yields its payload and then a non-EOF read error.
type errAfterReader struct {
	r   io.Reader
	err error
}

func (e *errAfterReader) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		return n, e.err
	}
	return n, err
}

// TestParallelScannerReadError: a failing reader surfaces after every
// record that arrived intact, wrapped so callers can errors.Is it.
func TestParallelScannerReadError(t *testing.T) {
	boom := errors.New("disk on fire")
	r := &errAfterReader{r: strings.NewReader(validTraceLine + validTraceLine), err: boom}
	ps := NewParallelTraceScanner(r, 2)
	n := 0
	for ps.Scan() {
		n++
	}
	if n != 2 {
		t.Fatalf("delivered %d records before the read error, want 2", n)
	}
	if err := ps.Err(); !errors.Is(err, boom) {
		t.Fatalf("read error must surface wrapped, got %v", err)
	}
}

// TestParallelScannerLongLine exercises the grow path: a single record
// larger than the splitter's block size.
func TestParallelScannerLongLine(t *testing.T) {
	big := SwarmTrace{Meta: SwarmMeta{ID: 1, Title: strings.Repeat("x", parallelBlockSize+8192)}}
	var buf bytes.Buffer
	if err := WriteTraces(&buf, []SwarmTrace{big, {Meta: SwarmMeta{ID: 2}}}); err != nil {
		t.Fatal(err)
	}
	ps := NewParallelTraceScanner(bytes.NewReader(buf.Bytes()), 2)
	var ids []int
	for ps.Scan() {
		ids = append(ids, ps.Record().Meta.ID)
	}
	if err := ps.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if !reflect.DeepEqual(ids, []int{1, 2}) {
		t.Fatalf("ids = %v, want [1 2]", ids)
	}
}

// TestParallelScannerClose: abandoning a scan mid-stream must not
// deadlock the splitter or workers, and Close is idempotent.
func TestParallelScannerClose(t *testing.T) {
	data := studyJSONL(t, 2000, 3)
	ps := NewParallelTraceScanner(bytes.NewReader(data), 4)
	if !ps.Scan() {
		t.Fatalf("first record must scan (err %v)", ps.Err())
	}
	ps.Close()
	ps.Close() // idempotent
	// A second scanner over the same bytes still works — the abandoned
	// one's goroutines aren't holding anything shared.
	ps2 := NewParallelTraceScanner(bytes.NewReader(data), 4)
	n := 0
	for ps2.Scan() {
		n++
	}
	if err := ps2.Err(); err != nil || n == 0 {
		t.Fatalf("fresh scan after Close: n=%d err=%v", n, err)
	}
}

// shortReader dribbles out its payload in tiny uneven reads, forcing
// the splitter through its refill and carry paths.
type shortReader struct {
	data []byte
	step int
}

func (s *shortReader) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	n := s.step%7 + 1
	s.step++
	if n > len(s.data) {
		n = len(s.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, s.data[:n])
	s.data = s.data[n:]
	return n, nil
}

// FuzzSplitBlocks drives the parallel decoder's line splitter with
// arbitrary bytes and checks its two invariants directly: the
// concatenation of the published blocks is exactly the input (no byte
// lost, duplicated or reordered, whatever the read sizes), and the
// blocks' record indices agree with countLines. When the input also
// happens to be a valid study file (checked by re-encoding whatever
// Scanner accepts into canonical JSONL), the full parallel decode must
// match Scanner record-for-record.
func FuzzSplitBlocks(f *testing.F) {
	f.Add([]byte(""), false)
	f.Add([]byte("\n\n\n"), true)
	f.Add([]byte(validTraceLine+validTraceLine), false)
	f.Add([]byte(validTraceLine[:40]), true)
	f.Add([]byte("a\nbb\nccc"), false)
	f.Add(bytes.Repeat([]byte("x"), 3000), true)
	f.Fuzz(func(t *testing.T, data []byte, slow bool) {
		var r io.Reader = bytes.NewReader(data)
		if slow {
			r = &shortReader{data: data}
		}
		jobs := make(chan *parallelChunk[json.RawMessage], 64)
		order := make(chan *parallelChunk[json.RawMessage], 64)
		done := make(chan struct{})
		var got []byte
		go func() {
			defer close(done)
			next := 0
			for c := range jobs {
				if c.first != next {
					t.Errorf("block first = %d, want %d", c.first, next)
				}
				next += countLines(c.buf)
				got = append(got, c.buf...)
			}
		}()
		go func() {
			for range order {
			}
		}()
		splitBlocks(r, jobs, order, make(chan struct{}), &sync.Pool{})
		<-done
		if !bytes.Equal(got, data) {
			t.Fatalf("splitter dropped or reordered bytes: got %d bytes, want %d", len(got), len(data))
		}

		// Cross-decoder parity on the canonical re-encoding.
		sc := NewTraceScanner(bytes.NewReader(data))
		var accepted []SwarmTrace
		for sc.Scan() {
			accepted = append(accepted, sc.Record())
		}
		if sc.Err() != nil || len(accepted) == 0 {
			return
		}
		var canon bytes.Buffer
		if err := WriteTraces(&canon, accepted); err != nil {
			t.Fatalf("re-encoding: %v", err)
		}
		ps := NewParallelTraceScanner(bytes.NewReader(canon.Bytes()), 3)
		var par []SwarmTrace
		for ps.Scan() {
			par = append(par, ps.Record())
		}
		if err := ps.Err(); err != nil {
			t.Fatalf("parallel decode of canonical form: %v", err)
		}
		if !reflect.DeepEqual(par, accepted) {
			t.Fatalf("parallel decode diverged on canonical form: %d vs %d records", len(par), len(accepted))
		}
	})
}
