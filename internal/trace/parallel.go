package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// parallelBlockSize is the splitter's read granularity. Blocks are cut
// at the last newline, so one block carries many JSONL records and the
// per-block coordination (two channel hops) amortises to noise, while
// the block still fits in cache for the worker that decodes it.
const parallelBlockSize = 256 << 10

// ParallelScanner decodes a JSON-lines dataset with a pool of
// json.Unmarshal workers while preserving input order, satisfying the
// same Source contract as Scanner. encoding/json is CPU-bound and
// single-threaded inside one Decode call, which hard-caps Scanner at
// one core; splitting the byte stream into newline-aligned blocks and
// unmarshalling blocks concurrently scales decode across cores.
//
//	splitter (1 goroutine): read ~256 KiB, cut at the last '\n',
//	    publish {block, result chan} to jobs AND to order
//	workers (N goroutines): for each job, split lines, unmarshal,
//	    deliver []T (or a positioned error) on the job's result chan
//	consumer (Scan caller): receive jobs from order, then their
//	    results — input order restored without any sorting
//
// Semantics intentionally match Scanner on valid JSONL input (one JSON
// value per '\n'-separated line; final newline optional): the same
// records in the same order, errors positioned by record index, records
// preceding an error still delivered, and a truncated final record
// surfacing as a wrapped io.ErrUnexpectedEOF. Unlike Scanner's
// json.Decoder, a record must not span lines — fine for this package's
// archives, which are written line-per-record by WriteTraces /
// WriteSnapshots. Blank lines are skipped.
//
// Not safe for concurrent use by multiple goroutines (like
// bufio.Scanner). Call Close when abandoning a scan early to release
// the decode goroutines; a scan driven until Scan returns false
// releases them itself.
type ParallelScanner[T any] struct {
	order chan *parallelChunk[T] // jobs in input order
	stop  chan struct{}          // closed by Close: splitter/workers abort
	once  sync.Once

	cur     []T // decoded records of the chunk being drained
	nexti   int // next index into cur
	n       int // records returned so far
	pending error
	err     error
	done    bool
}

// parallelChunk is one newline-aligned block travelling from the
// splitter to a worker and, via res, on to the consumer. res has
// capacity 1 so a worker never blocks delivering a result.
type parallelChunk[T any] struct {
	buf   []byte // raw bytes: whole lines, plus a final fragment at EOF
	first int    // record index of the block's first line
	res   chan parallelResult[T]
}

type parallelResult[T any] struct {
	recs []T
	err  error
}

// NewParallelTraceScanner returns an order-preserving parallel reader
// over an availability-study trace file. workers <= 0 selects
// GOMAXPROCS.
func NewParallelTraceScanner(r io.Reader, workers int) *ParallelScanner[SwarmTrace] {
	return NewParallelScanner[SwarmTrace](r, workers)
}

// NewParallelSnapshotScanner returns an order-preserving parallel
// reader over a census snapshot file. workers <= 0 selects GOMAXPROCS.
func NewParallelSnapshotScanner(r io.Reader, workers int) *ParallelScanner[Snapshot] {
	return NewParallelScanner[Snapshot](r, workers)
}

// NewParallelScanner returns an order-preserving parallel reader over a
// JSONL stream of any record type (availd uses it for ingest records).
// workers <= 0 selects GOMAXPROCS.
func NewParallelScanner[T any](r io.Reader, workers int) *ParallelScanner[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &ParallelScanner[T]{
		// Depth ~2× workers keeps every worker fed while bounding
		// read-ahead to a few MiB.
		order: make(chan *parallelChunk[T], 2*workers),
		stop:  make(chan struct{}),
	}
	jobs := make(chan *parallelChunk[T], 2*workers)
	slabs := &sync.Pool{} // *[]byte block buffers, recycled after decode
	go splitBlocks(r, jobs, s.order, s.stop, slabs)
	for range workers {
		go decodeChunks(jobs, slabs)
	}
	return s
}

func getSlab(slabs *sync.Pool) []byte {
	if v := slabs.Get(); v != nil {
		if b := *(v.(*[]byte)); cap(b) >= parallelBlockSize {
			return b[:0]
		}
	}
	return make([]byte, 0, parallelBlockSize+4096)
}

// send publishes c to jobs (if non-nil) and order, bailing out if the
// consumer closed stop. Returns false when the scan was abandoned.
func send[T any](c *parallelChunk[T], jobs chan<- *parallelChunk[T], order chan<- *parallelChunk[T], stop <-chan struct{}) bool {
	if jobs != nil {
		select {
		case jobs <- c:
		case <-stop:
			return false
		}
	}
	select {
	case order <- c:
	case <-stop:
		return false
	}
	return true
}

// splitBlocks reads r into newline-aligned blocks and publishes each to
// jobs (for a worker) and order (for the consumer). A read error is
// published as a pre-resolved chunk so it surfaces at the right
// position in the record sequence, after every record read before it.
func splitBlocks[T any](r io.Reader, jobs chan<- *parallelChunk[T], order chan<- *parallelChunk[T], stop <-chan struct{}, slabs *sync.Pool) {
	defer close(jobs)
	defer close(order)
	var carry []byte // partial final line of the previous block
	record := 0
	for {
		buf := append(getSlab(slabs), carry...)
		carry = carry[:0]
		n, rerr := io.ReadAtLeast(r, buf[len(buf):parallelBlockSize], parallelBlockSize-len(buf))
		buf = buf[:len(buf)+n]
		// A single line longer than the block: grow until its newline
		// (or the end of input) arrives.
		for rerr == nil && bytes.IndexByte(buf, '\n') < 0 {
			var tmp [4096]byte
			var m int
			m, rerr = r.Read(tmp[:])
			buf = append(buf, tmp[:m]...)
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			// Clean end of input (ReadAtLeast reports a short final
			// block as ErrUnexpectedEOF; a final Read can return data
			// with io.EOF). buf may end with an unterminated final
			// record — the decode worker accepts it if it parses,
			// matching json.Decoder, and reports io.ErrUnexpectedEOF
			// (input cut mid-record) if it does not.
			rerr = nil
			if len(buf) > 0 {
				c := &parallelChunk[T]{buf: buf, first: record, res: make(chan parallelResult[T], 1)}
				send(c, jobs, order, stop)
			}
			return
		}
		// Keep whole lines; carry the partial last line into the next
		// block. On a read error, still decode the whole lines that
		// arrived before it (Scanner delivers those too).
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			carry = append(carry, buf[i+1:]...)
			buf = buf[:i+1]
		} else {
			carry, buf = append(carry, buf...), buf[:0]
		}
		if len(buf) > 0 {
			c := &parallelChunk[T]{buf: buf, first: record, res: make(chan parallelResult[T], 1)}
			record += countLines(buf)
			if !send(c, jobs, order, stop) {
				return
			}
		}
		if rerr != nil {
			// carry (a record cut off by the failed read) is not
			// counted: like Scanner, the error is positioned at the
			// index of the first record that could not be delivered.
			c := &parallelChunk[T]{first: record, res: make(chan parallelResult[T], 1)}
			c.res <- parallelResult[T]{err: fmt.Errorf("trace: reading record %d: %w", record, rerr)}
			send(c, nil, order, stop)
			return
		}
	}
}

// countLines counts the records in a block: non-blank newline-separated
// lines, including a final unterminated fragment.
func countLines(b []byte) int {
	n := 0
	for len(b) > 0 {
		var line []byte
		if i := bytes.IndexByte(b, '\n'); i >= 0 {
			line, b = b[:i], b[i+1:]
		} else {
			line, b = b, nil
		}
		if len(bytes.TrimSpace(line)) > 0 {
			n++
		}
	}
	return n
}

// decodeChunks is the worker loop: unmarshal each line of each block.
func decodeChunks[T any](jobs <-chan *parallelChunk[T], slabs *sync.Pool) {
	for c := range jobs {
		var res parallelResult[T]
		buf, record := c.buf, c.first
		for len(buf) > 0 {
			var line []byte
			terminated := true
			if i := bytes.IndexByte(buf, '\n'); i >= 0 {
				line, buf = buf[:i], buf[i+1:]
			} else {
				line, buf = buf, nil
				terminated = false
			}
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var rec T
			if err := json.Unmarshal(line, &rec); err != nil {
				if !terminated {
					// Unterminated final fragment that fails to parse:
					// the input was truncated mid-record. Scanner's
					// json.Decoder reports io.ErrUnexpectedEOF here.
					err = io.ErrUnexpectedEOF
				}
				res.err = fmt.Errorf("trace: decoding record %d: %w", record, err)
				break
			}
			res.recs = append(res.recs, rec)
			record++
		}
		if slab := c.buf; cap(slab) > 0 {
			c.buf = nil
			slabs.Put(&slab)
		}
		c.res <- res
	}
}

// Scan advances to the next record. It returns false at end of input or
// on the first decode error; Err distinguishes the two.
func (s *ParallelScanner[T]) Scan() bool {
	for {
		if s.err != nil || s.done {
			return false
		}
		if s.nexti < len(s.cur) {
			s.nexti++
			s.n++
			return true
		}
		if s.pending != nil {
			s.err = s.pending
			s.Close()
			return false
		}
		c, ok := <-s.order
		if !ok {
			s.done = true
			return false
		}
		res := <-c.res
		// A chunk can carry both records and an error (the error struck
		// mid-block): deliver the records first, then surface the error
		// — exactly Scanner's behaviour.
		s.cur, s.nexti, s.pending = res.recs, 0, res.err
	}
}

// Record returns the record read by the last successful Scan.
func (s *ParallelScanner[T]) Record() T { return s.cur[s.nexti-1] }

// Count returns the number of records successfully read so far.
func (s *ParallelScanner[T]) Count() int { return s.n }

// Err returns the first decode error, or nil if the stream ended
// cleanly. A truncated final record surfaces as io.ErrUnexpectedEOF
// (wrapped), not as a clean end.
func (s *ParallelScanner[T]) Err() error { return s.err }

// Close releases the splitter and worker goroutines without draining
// the input. It is idempotent, called automatically when Scan hits an
// error, and unnecessary after Scan has returned false at end of input.
// The scanner must not be used after Close.
func (s *ParallelScanner[T]) Close() {
	s.once.Do(func() {
		close(s.stop)
		// Drain order so a splitter blocked on a full channel observes
		// stop and exits; results sitting in chunk res channels (cap 1,
		// already delivered) are simply dropped.
		go func() {
			for range s.order {
			}
		}()
	})
}
