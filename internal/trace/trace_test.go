package trace

import (
	"bytes"
	"math"
	"testing"

	"swarmavail/internal/dist"
)

func TestFileMetaExt(t *testing.T) {
	cases := map[string]string{
		"song.MP3":    ".mp3",
		"a.b.c.avi":   ".avi",
		"noextension": "",
		"x.PDF":       ".pdf",
	}
	for name, want := range cases {
		if got := (FileMeta{Name: name}).Ext(); got != want {
			t.Errorf("Ext(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	for c, want := range map[Category]string{
		Music: "music", TV: "tv", Books: "books", Movies: "movies", Other: "other",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category must print")
	}
}

func TestSwarmTraceAvailability(t *testing.T) {
	tr := SwarmTrace{
		SeedSessions:  []dist.Interval{{Start: 0, End: 15}, {Start: 100, End: 110}},
		MonitoredDays: 200,
	}
	if got := tr.FirstMonthAvailability(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("first month availability %v, want 0.5", got)
	}
	if got := tr.FullAvailability(); math.Abs(got-25.0/200) > 1e-12 {
		t.Fatalf("full availability %v", got)
	}
	// Clamping beyond the horizon.
	if got := tr.AvailabilityOver(9999); math.Abs(got-25.0/200) > 1e-12 {
		t.Fatalf("clamped availability %v", got)
	}
}

func TestGenerateStudyShape(t *testing.T) {
	traces := GenerateStudy(DefaultStudyConfig(3000, 7))
	if len(traces) != 3000 {
		t.Fatalf("generated %d traces", len(traces))
	}
	for i, tr := range traces {
		if tr.MonitoredDays != 210 {
			t.Fatalf("trace %d horizon %v", i, tr.MonitoredDays)
		}
		prevEnd := -1.0
		for _, s := range tr.SeedSessions {
			if s.Start < 0 || s.End > tr.MonitoredDays+1e-9 || s.End <= s.Start {
				t.Fatalf("trace %d bad session %+v", i, s)
			}
			if s.Start <= prevEnd {
				t.Fatalf("trace %d sessions not disjoint-sorted", i)
			}
			prevEnd = s.End
		}
	}
}

func TestGenerateStudyDeterministic(t *testing.T) {
	a := GenerateStudy(DefaultStudyConfig(100, 3))
	b := GenerateStudy(DefaultStudyConfig(100, 3))
	for i := range a {
		if len(a[i].SeedSessions) != len(b[i].SeedSessions) {
			t.Fatalf("trace %d differs across identical seeds", i)
		}
	}
}

func TestGenerateStudyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GenerateStudy(StudyConfig{NumSwarms: 0})
}

func TestGenerateSnapshotShape(t *testing.T) {
	snaps := GenerateSnapshot(SnapshotConfig{Seed: 11, NumSwarms: 5000})
	if len(snaps) != 5000 {
		t.Fatalf("generated %d snapshots", len(snaps))
	}
	catCounts := map[Category]int{}
	for i, s := range snaps {
		if len(s.Meta.Files) == 0 {
			t.Fatalf("snapshot %d has no files", i)
		}
		if s.Seeds < 0 || s.Leechers < 0 || s.Downloads < 0 {
			t.Fatalf("snapshot %d negative counts: %+v", i, s)
		}
		if s.Meta.TotalSizeKB() <= 0 {
			t.Fatalf("snapshot %d empty content", i)
		}
		catCounts[s.Meta.Category]++
	}
	// Category mix roughly follows the configured shares.
	for cat, share := range categoryShares {
		got := float64(catCounts[cat]) / float64(len(snaps))
		if math.Abs(got-share) > 0.03 {
			t.Errorf("category %v share %v, want ≈%v", cat, got, share)
		}
	}
}

func TestSnapshotBundleDemandCoupling(t *testing.T) {
	// Bundles must draw more downloads on average (the generator encodes
	// the paper's observed demand coupling).
	snaps := GenerateSnapshot(SnapshotConfig{Seed: 13, NumSwarms: 20000})
	var bundleSum, singleSum float64
	var bundleN, singleN int
	for _, s := range snaps {
		if s.Meta.Category != Books {
			continue
		}
		if isBundleMeta(s.Meta) {
			bundleSum += float64(s.Downloads)
			bundleN++
		} else {
			singleSum += float64(s.Downloads)
			singleN++
		}
	}
	if bundleN < 20 || singleN < 100 {
		t.Fatalf("too few book swarms: %d bundles, %d singles", bundleN, singleN)
	}
	if bundleSum/float64(bundleN) <= singleSum/float64(singleN) {
		t.Fatal("bundles do not draw more downloads")
	}
}

func TestTraceIORoundTrip(t *testing.T) {
	traces := GenerateStudy(DefaultStudyConfig(50, 17))
	var buf bytes.Buffer
	if err := WriteTraces(&buf, traces); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(traces) {
		t.Fatalf("read %d of %d", len(back), len(traces))
	}
	for i := range traces {
		if back[i].Meta.ID != traces[i].Meta.ID ||
			len(back[i].SeedSessions) != len(traces[i].SeedSessions) ||
			back[i].MonitoredDays != traces[i].MonitoredDays {
			t.Fatalf("trace %d mismatch", i)
		}
	}
}

func TestSnapshotIORoundTrip(t *testing.T) {
	snaps := GenerateSnapshot(SnapshotConfig{Seed: 19, NumSwarms: 100})
	var buf bytes.Buffer
	if err := WriteSnapshots(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(snaps) {
		t.Fatalf("read %d of %d", len(back), len(snaps))
	}
	for i := range snaps {
		if back[i].Seeds != snaps[i].Seeds || back[i].Downloads != snaps[i].Downloads ||
			back[i].Meta.Title != snaps[i].Meta.Title {
			t.Fatalf("snapshot %d mismatch", i)
		}
	}
}

func TestReadTracesMalformed(t *testing.T) {
	if _, err := ReadTraces(bytes.NewBufferString("not json\n")); err == nil {
		t.Fatal("malformed input accepted")
	}
	if _, err := ReadSnapshots(bytes.NewBufferString("{]")); err == nil {
		t.Fatal("malformed input accepted")
	}
}

func TestArrivalPatterns(t *testing.T) {
	r := dist.NewRand(23)
	young := NewSwarmArrivals(60, 12, 0.5)
	old := OldSwarmArrivals(2)
	const horizon = 3 * 24 * 3600.0
	youngCounts, youngCV := BinnedArrivals(young, r, horizon, 3600)
	oldCounts, oldCV := BinnedArrivals(old, r, horizon, 3600)
	if len(youngCounts) == 0 || len(oldCounts) == 0 {
		t.Fatal("no arrivals binned")
	}
	// Figure 7's contrast: the young swarm's arrivals are far burstier.
	if youngCV <= oldCV {
		t.Fatalf("young CV %v not above old CV %v", youngCV, oldCV)
	}
	// Young swarm: first hour >> last hour.
	if youngCounts[0] <= youngCounts[len(youngCounts)-1] {
		t.Fatalf("flash crowd did not decay: %d vs %d",
			youngCounts[0], youngCounts[len(youngCounts)-1])
	}
	if young.Label == "" || old.Label == "" {
		t.Fatal("patterns must be labelled")
	}
}
