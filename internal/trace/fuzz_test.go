package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// validTraceLine is a well-formed study record used to seed the corpus.
const validTraceLine = `{"meta":{"id":7,"category":1,"title":"show s01","files":[{"name":"e1.avi","size_kb":350000}],"created_day":3},"seed_sessions":[{"Start":0,"End":12.5}],"monitored_days":210}` + "\n"

// validSnapshotLine is a well-formed census record.
const validSnapshotLine = `{"meta":{"id":9,"category":2,"title":"books collection","files":[{"name":"a.pdf","size_kb":900},{"name":"b.pdf","size_kb":700}],"created_day":101},"seeds":0,"leechers":3,"downloads":2578}` + "\n"

// FuzzReadTraces drives the streaming trace scanner with arbitrary
// bytes: it must never panic, the batch reader must agree with the
// scanner record-for-record, and a truncated tail must surface as an
// error rather than a silent clean EOF.
func FuzzReadTraces(f *testing.F) {
	seeds := []string{
		"",
		"\n\n",
		validTraceLine,
		validTraceLine + validTraceLine,
		validTraceLine[:len(validTraceLine)/2], // truncated record
		`{"meta":{"id":1}}` + "\n" + `{"meta":` + "\n",
		`nulltrue{"monitored_days":1}`,
		`{"seed_sessions":[{"Start":1e999}]}`,
		"{}\n[]\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		batch, batchErr := ReadTraces(bytes.NewReader(data))

		sc := NewTraceScanner(bytes.NewReader(data))
		var streamed []SwarmTrace
		for sc.Scan() {
			streamed = append(streamed, sc.Record())
		}
		if (batchErr == nil) != (sc.Err() == nil) {
			t.Fatalf("batch error %v vs scanner error %v", batchErr, sc.Err())
		}
		if batchErr != nil {
			return
		}
		if len(batch) != len(streamed) || sc.Count() != len(streamed) {
			t.Fatalf("batch read %d records, scanner %d (Count %d)",
				len(batch), len(streamed), sc.Count())
		}
		// Whatever was accepted must survive an archival round trip.
		var buf bytes.Buffer
		if err := WriteTraces(&buf, streamed); err != nil {
			t.Fatalf("re-encoding accepted records: %v", err)
		}
		again, err := ReadTraces(&buf)
		if err != nil {
			t.Fatalf("re-reading archived records: %v", err)
		}
		if len(again) != len(streamed) {
			t.Fatalf("round trip changed record count: %d vs %d", len(again), len(streamed))
		}
	})
}

// FuzzReadSnapshots is the census-file variant of FuzzReadTraces.
func FuzzReadSnapshots(f *testing.F) {
	seeds := []string{
		"",
		validSnapshotLine,
		validSnapshotLine + validSnapshotLine,
		validSnapshotLine[:20],
		`{"seeds":"three"}`,
		`{"meta":{"files":[{}]}}` + "\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		batch, batchErr := ReadSnapshots(bytes.NewReader(data))

		sc := NewSnapshotScanner(bytes.NewReader(data))
		n := 0
		for sc.Scan() {
			n++
		}
		if (batchErr == nil) != (sc.Err() == nil) {
			t.Fatalf("batch error %v vs scanner error %v", batchErr, sc.Err())
		}
		if batchErr != nil {
			return
		}
		if len(batch) != n {
			t.Fatalf("batch read %d records, scanner %d", len(batch), n)
		}
	})
}

// TestScannerTruncation pins the EOF semantics: clean EOF is not an
// error, a mid-record cut is.
func TestScannerTruncation(t *testing.T) {
	sc := NewTraceScanner(bytes.NewReader([]byte(validTraceLine + validTraceLine[:30])))
	if !sc.Scan() {
		t.Fatalf("first record must scan (err %v)", sc.Err())
	}
	if sc.Record().Meta.ID != 7 {
		t.Fatalf("unexpected record %+v", sc.Record())
	}
	if sc.Scan() {
		t.Fatal("truncated record must not scan")
	}
	if err := sc.Err(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation must report io.ErrUnexpectedEOF, got %v", err)
	}
	if sc.Scan() {
		t.Fatal("scanner must stay stopped after an error")
	}

	clean := NewTraceScanner(bytes.NewReader([]byte(validTraceLine)))
	for clean.Scan() {
	}
	if err := clean.Err(); err != nil {
		t.Fatalf("clean EOF must not error: %v", err)
	}
	if clean.Count() != 1 {
		t.Fatalf("Count = %d, want 1", clean.Count())
	}
}
