package queue

import (
	"math"
	"testing"

	"swarmavail/internal/dist"
	"swarmavail/internal/stats"
)

// simpleBusyPeriod is the closed form E[B] = (e^{βα}−1)/β for the M/G/∞
// busy period with homogeneous mean-α services (paper eq. 20/2).
func simpleBusyPeriod(beta, alpha float64) float64 {
	return (math.Exp(beta*alpha) - 1) / beta
}

// exceptionalBusyPeriod is eq. (19): homogeneous exp(α) services except
// the initiator, which is exp(θ).
func exceptionalBusyPeriod(beta, alpha, theta float64) float64 {
	sum := 0.0
	term := 1.0 // (βα)^i / i! for i=0
	for i := 1; i <= 500; i++ {
		term *= beta * alpha / float64(i)
		inc := term / (alpha + float64(i)*theta)
		sum += inc
		if inc < 1e-16*sum {
			break
		}
	}
	return theta + alpha*theta*sum
}

// residualB is eq. (12): B(n,0) for service mean sm and arrival rate
// lambda, with x = sm·lambda.
func residualB(n int, lambda, sm float64) float64 {
	var b float64
	for i := 1; i <= n; i++ {
		b += sm / float64(i)
	}
	x := sm * lambda
	// Σ x^i [(n+i)! − n! i!] / (i! (n+i)! i) = Σ x^i [1/(i·i!) − n!/(i·(n+i)!)]
	xi := 1.0
	fact := 1.0  // i!
	ratio := 1.0 // n!/(n+i)! running product of 1/(n+1)...(n+i)
	var tail float64
	for i := 1; i <= 500; i++ {
		xi *= x
		fact *= float64(i)
		ratio /= float64(n + i)
		inc := xi * (1/(float64(i)*fact) - ratio/float64(i))
		tail += inc
		if math.Abs(inc) < 1e-16*math.Abs(tail)+1e-300 {
			break
		}
	}
	return b + sm*tail
}

func TestBusyPeriodNoArrivals(t *testing.T) {
	r := dist.NewRand(100)
	cfg := BusyPeriodConfig{Beta: 0, Service: dist.Exponential{Rate: 1.0 / 30}}
	mean, ci := MeanBusyPeriod(r, cfg, 20000)
	if math.Abs(mean-30) > 3*ci+0.5 {
		t.Fatalf("busy period with no arrivals: %v ± %v, want 30", mean, ci)
	}
}

func TestBusyPeriodMatchesSimpleClosedForm(t *testing.T) {
	// βα = 1.2 → E[B] = (e^1.2 − 1)/β.
	r := dist.NewRand(101)
	beta, alpha := 0.04, 30.0
	cfg := BusyPeriodConfig{Beta: beta, Service: dist.Exponential{Rate: 1 / alpha}}
	mean, ci := MeanBusyPeriod(r, cfg, 40000)
	want := simpleBusyPeriod(beta, alpha)
	if math.Abs(mean-want) > 3*ci+0.02*want {
		t.Fatalf("E[B] = %v ± %v, want %v", mean, ci, want)
	}
}

func TestBusyPeriodInsensitivityOfMean(t *testing.T) {
	// The mean M/G/∞ busy period depends on G only through its mean:
	// deterministic service with the same mean must agree.
	r := dist.NewRand(102)
	beta, alpha := 0.05, 20.0
	want := simpleBusyPeriod(beta, alpha)
	for name, svc := range map[string]dist.Dist{
		"deterministic": dist.Deterministic{Value: alpha},
		"uniform":       dist.Uniform{Lo: 0, Hi: 2 * alpha},
		"pareto":        dist.Pareto{Scale: alpha / 3, Shape: 1.5}, // mean = alpha
	} {
		cfg := BusyPeriodConfig{Beta: beta, Service: svc}
		mean, ci := MeanBusyPeriod(r, cfg, 60000)
		if math.Abs(mean-want) > 4*ci+0.03*want {
			t.Errorf("%s: E[B] = %v ± %v, want %v", name, mean, ci, want)
		}
	}
}

func TestBusyPeriodExceptionalFirstCustomer(t *testing.T) {
	// Initiator stays 5× longer than ordinary customers (a publisher
	// with residence u = 5·s/μ): eq. (19).
	r := dist.NewRand(103)
	beta, alpha, theta := 0.03, 25.0, 125.0
	cfg := BusyPeriodConfig{
		Beta:    beta,
		First:   dist.Exponential{Rate: 1 / theta},
		Service: dist.Exponential{Rate: 1 / alpha},
	}
	mean, ci := MeanBusyPeriod(r, cfg, 40000)
	want := exceptionalBusyPeriod(beta, alpha, theta)
	if math.Abs(mean-want) > 3*ci+0.02*want {
		t.Fatalf("E[B] = %v ± %v, want %v", mean, ci, want)
	}
}

func TestBusyPeriodServedCount(t *testing.T) {
	// E[N] = 1 + β·E[B]: arrivals during the busy period plus the
	// initiator (Wald / PASTA for Poisson arrivals over the busy span).
	r := dist.NewRand(104)
	beta, alpha := 0.06, 15.0
	cfg := BusyPeriodConfig{Beta: beta, Service: dist.Exponential{Rate: 1 / alpha}}
	samples := SimulateBusyPeriods(r, cfg, 50000)
	var nAcc, bAcc stats.Accumulator
	for _, s := range samples {
		nAcc.Add(float64(s.Served))
		bAcc.Add(s.Length)
	}
	want := 1 + beta*bAcc.Mean()
	if math.Abs(nAcc.Mean()-want) > 0.03*want {
		t.Fatalf("E[N] = %v, want %v", nAcc.Mean(), want)
	}
}

func TestBusyPeriodRequiresService(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Service")
		}
	}()
	SimulateBusyPeriods(dist.NewRand(1), BusyPeriodConfig{Beta: 1}, 1)
}

func TestResidualBusyPeriodClosedForm(t *testing.T) {
	r := dist.NewRand(105)
	lambda, sm := 0.02, 10.0 // x = 0.2
	for _, n := range []int{1, 3, 6} {
		samples := SimulateResidualBusyPeriod(r, lambda, sm, n, 0, 60000)
		var acc stats.Accumulator
		acc.AddAll(samples)
		want := residualB(n, lambda, sm)
		if math.Abs(acc.Mean()-want) > 3*acc.CI95()+0.02*want {
			t.Errorf("B(%d,0) = %v ± %v, want %v", n, acc.Mean(), acc.CI95(), want)
		}
	}
}

func TestResidualBusyPeriodRecursion(t *testing.T) {
	// Lemma 3.3: B(n,m) = B(n,0) − B(m,0).
	r := dist.NewRand(106)
	lambda, sm := 0.03, 8.0
	n, m := 7, 3
	var nm stats.Accumulator
	nm.AddAll(SimulateResidualBusyPeriod(r, lambda, sm, n, m, 60000))
	want := residualB(n, lambda, sm) - residualB(m, lambda, sm)
	if math.Abs(nm.Mean()-want) > 3*nm.CI95()+0.03*want {
		t.Fatalf("B(%d,%d) = %v ± %v, want %v", n, m, nm.Mean(), nm.CI95(), want)
	}
}

func TestResidualBusyPeriodDegenerate(t *testing.T) {
	samples := SimulateResidualBusyPeriod(dist.NewRand(1), 0.1, 5, 2, 2, 10)
	for _, s := range samples {
		if s != 0 {
			t.Fatalf("n<=m must be 0, got %v", s)
		}
	}
	samples = SimulateResidualBusyPeriod(dist.NewRand(1), 0.1, 5, 1, 3, 10)
	for _, s := range samples {
		if s != 0 {
			t.Fatalf("n<m must be 0, got %v", s)
		}
	}
}

func TestResidualBusyPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative populations")
		}
	}()
	SimulateResidualBusyPeriod(dist.NewRand(1), 0.1, 5, -1, 0, 1)
}

func TestAvailabilityImpatientMatchesClosedForm(t *testing.T) {
	// Special case u = s/μ (§3.2 with peers+publishers): all services
	// share mean α so E[B] = (e^{(λ+r)α}−1)/(λ+r) and
	// P = (1/r)/(E[B]+1/r).
	r := dist.NewRand(107)
	lambda, pub, alpha := 0.02, 0.005, 40.0
	cfg := AvailabilityConfig{
		PeerRate:      lambda,
		PublisherRate: pub,
		PeerService:   dist.Exponential{Rate: 1 / alpha},
		PublisherStay: dist.Exponential{Rate: 1 / alpha},
		Patient:       false,
	}
	res := SimulateAvailability(r, cfg, 4e6)
	eb := simpleBusyPeriod(lambda+pub, alpha)
	want := (1 / pub) / (eb + 1/pub)
	if math.Abs(res.Unavailability-want) > 0.05*want+0.01 {
		t.Fatalf("P = %v, want %v (E[B] sim %v vs %v)",
			res.Unavailability, want, res.MeanBusyPeriod, eb)
	}
	if math.Abs(res.MeanIdlePeriod-1/pub) > 0.05/pub {
		t.Fatalf("idle period %v, want %v", res.MeanIdlePeriod, 1/pub)
	}
}

func TestAvailabilityPatientDownloadTime(t *testing.T) {
	// Lemma 3.2: E[T] = s/μ + P/r for patient peers. The closed form
	// neglects the impact of the waiting group on the busy period
	// (§3.3.2), so keep the expected group size λ/r small.
	r := dist.NewRand(108)
	lambda, pub, alpha := 0.002, 0.004, 50.0
	cfg := AvailabilityConfig{
		PeerRate:      lambda,
		PublisherRate: pub,
		PeerService:   dist.Exponential{Rate: 1 / alpha},
		PublisherStay: dist.Exponential{Rate: 1 / alpha},
		Patient:       true,
	}
	res := SimulateAvailability(r, cfg, 4e6)
	eb := simpleBusyPeriod(lambda+pub, alpha)
	p := (1 / pub) / (eb + 1/pub)
	want := alpha + p/pub
	if math.Abs(res.MeanDownloadTime-want) > 3*res.DownloadTimeCI+0.05*want {
		t.Fatalf("E[T] = %v ± %v, want %v", res.MeanDownloadTime, res.DownloadTimeCI, want)
	}
	// Patient peers are all eventually served (modulo horizon edge).
	if res.PeersServed < res.PeerArrivals*95/100 {
		t.Fatalf("served %d of %d patient peers", res.PeersServed, res.PeerArrivals)
	}
}

func TestAvailabilityImpatientServesOnlyBusyArrivals(t *testing.T) {
	r := dist.NewRand(109)
	cfg := AvailabilityConfig{
		PeerRate:      0.05,
		PublisherRate: 0.002,
		PeerService:   dist.Exponential{Rate: 1.0 / 20},
		PublisherStay: dist.Exponential{Rate: 1.0 / 20},
		Patient:       false,
	}
	res := SimulateAvailability(r, cfg, 1e6)
	wantServed := float64(res.PeerArrivals) * (1 - res.Unavailability)
	if math.Abs(float64(res.PeersServed)-wantServed) > 0.02*float64(res.PeerArrivals)+5 {
		t.Fatalf("served %d, arrivals %d, P %v", res.PeersServed, res.PeerArrivals, res.Unavailability)
	}
}

func TestAvailabilityHigherPublisherRateImprovesAvailability(t *testing.T) {
	base := AvailabilityConfig{
		PeerRate:      0.01,
		PublisherStay: dist.Exponential{Rate: 1.0 / 100},
		PeerService:   dist.Exponential{Rate: 1.0 / 100},
	}
	lo := base
	lo.PublisherRate = 0.0005
	hi := base
	hi.PublisherRate = 0.005
	rlo := SimulateAvailability(dist.NewRand(110), lo, 2e6)
	rhi := SimulateAvailability(dist.NewRand(111), hi, 2e6)
	if rhi.Unavailability >= rlo.Unavailability {
		t.Fatalf("unavailability did not fall with publisher rate: %v vs %v",
			rhi.Unavailability, rlo.Unavailability)
	}
}

func TestAvailabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without distributions")
		}
	}()
	SimulateAvailability(dist.NewRand(1), AvailabilityConfig{PeerRate: 1}, 10)
}
