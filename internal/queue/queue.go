// Package queue simulates the M/G/∞ queueing processes that underpin the
// paper's availability model, providing Monte-Carlo cross-checks for
// every closed form in internal/core:
//
//   - busy periods with an exceptional first customer (Browne & Steele),
//     validating eq. (9) and its special cases (17)–(20);
//   - residual busy periods B(n,m) that start with n customers and end
//     when the population reaches m, validating Lemma 3.3 (eq. 12);
//   - the alternating idle/busy availability process of a swarm with
//     intermittent publishers and impatient or patient peers, validating
//     eq. (10) (unavailability) and Lemma 3.2 (eq. 11, download time).
//
// The simulators run on the deterministic internal/des kernel, so every
// estimate is reproducible from its seed.
package queue

import (
	"math"
	"math/rand"

	"swarmavail/internal/des"
	"swarmavail/internal/dist"
	"swarmavail/internal/stats"
)

// BusyPeriodSample records one simulated busy period.
type BusyPeriodSample struct {
	Length float64 // duration of the busy period
	Served int     // customers whose service started in the period (incl. initiator)
}

// BusyPeriodConfig parameterises the exceptional-first-customer M/G/∞
// busy-period simulation.
type BusyPeriodConfig struct {
	// Beta is the Poisson arrival rate during the busy period.
	Beta float64
	// First is the service distribution of the customer that initiates a
	// busy period (H in Browne–Steele). If nil, Service is used.
	First dist.Dist
	// Service is the service distribution of all other customers (G).
	Service dist.Dist
}

// SimulateBusyPeriods generates n consecutive busy periods of the M/G/∞
// queue described by cfg and returns one sample per period. Idle periods
// are skipped (their length is irrelevant to the busy-period law).
func SimulateBusyPeriods(r *rand.Rand, cfg BusyPeriodConfig, n int) []BusyPeriodSample {
	if cfg.Service == nil {
		panic("queue: Service distribution required")
	}
	first := cfg.First
	if first == nil {
		first = cfg.Service
	}
	samples := make([]BusyPeriodSample, 0, n)
	for i := 0; i < n; i++ {
		samples = append(samples, simulateOneBusyPeriod(r, cfg.Beta, first, cfg.Service))
	}
	return samples
}

func simulateOneBusyPeriod(r *rand.Rand, beta float64, first, service dist.Dist) BusyPeriodSample {
	sim := des.New()
	population := 0
	served := 0
	depart := func() { population-- }

	admit := func(d dist.Dist) {
		population++
		served++
		sim.After(d.Sample(r), depart)
	}

	// The initiator arrives at time 0 with the exceptional service law.
	admit(first)
	var scheduleArrival func()
	scheduleArrival = func() {
		if beta <= 0 {
			return
		}
		sim.After(r.ExpFloat64()/beta, func() {
			if population == 0 {
				// The busy period has ended; this arrival belongs to the
				// next one and is discarded here.
				return
			}
			admit(service)
			scheduleArrival()
		})
	}
	scheduleArrival()

	// Run until the system empties. Because the arrival chain stops
	// rescheduling once the population hits zero, the calendar drains by
	// itself shortly after the busy period ends.
	for population > 0 && sim.Step() {
	}
	return BusyPeriodSample{Length: sim.Now(), Served: served}
}

// MeanBusyPeriod is a convenience that simulates n busy periods and
// returns the sample mean and its 95% confidence half-width.
func MeanBusyPeriod(r *rand.Rand, cfg BusyPeriodConfig, n int) (mean, ci float64) {
	var acc stats.Accumulator
	for _, s := range SimulateBusyPeriods(r, cfg, n) {
		acc.Add(s.Length)
	}
	return acc.Mean(), acc.CI95()
}

// SimulateResidualBusyPeriod estimates B(n,m): the expected time for an
// M/M/∞ system that currently holds n customers (each with a memoryless
// exp(serviceMean) residual) to first reach population m < n, with new
// customers arriving at rate lambda and drawing exp(serviceMean) service
// times. It returns one sample per repetition.
//
// This is exactly the quantity of Lemma 3.3: the residual busy period of
// a swarm sustained by peers alone after the last publisher departs.
func SimulateResidualBusyPeriod(r *rand.Rand, lambda, serviceMean float64, n, m, reps int) []float64 {
	if m < 0 || n < 0 {
		panic("queue: populations must be non-negative")
	}
	out := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		out = append(out, residualOnce(r, lambda, serviceMean, n, m))
	}
	return out
}

func residualOnce(r *rand.Rand, lambda, serviceMean float64, n, m int) float64 {
	if n <= m {
		return 0
	}
	// Pure birth–death race: with k customers present, the next departure
	// happens at rate k/serviceMean and the next arrival at rate lambda.
	// Simulating the embedded chain directly is faster and equivalent to
	// the event calendar for exponential laws.
	t := 0.0
	k := n
	for k > m {
		depRate := float64(k) / serviceMean
		total := depRate + lambda
		t += r.ExpFloat64() / total
		if r.Float64()*total < depRate {
			k--
		} else {
			k++
		}
	}
	return t
}

// AvailabilityConfig describes the alternating idle/busy swarm process of
// §3.3.1–3.3.2: publishers arrive at rate PublisherRate and stay for
// PublisherStay; peers arrive at rate PeerRate and need PeerService of
// service. Content is modelled as available whenever the M/G/∞ system is
// non-empty (coverage threshold one), and every busy period is initiated
// by a publisher.
type AvailabilityConfig struct {
	PeerRate      float64
	PublisherRate float64
	PeerService   dist.Dist
	PublisherStay dist.Dist
	// Patient selects §3.3.2 semantics: peers arriving while content is
	// unavailable wait for the next publisher and then begin service.
	// When false (§3.3.1), such peers leave immediately unserved.
	Patient bool
}

// AvailabilityResult aggregates a long-run simulation of the process.
type AvailabilityResult struct {
	// Unavailability is the fraction of peer arrivals that found the
	// content unavailable (the paper's P).
	Unavailability float64
	// MeanBusyPeriod and MeanIdlePeriod are the cycle components.
	MeanBusyPeriod float64
	MeanIdlePeriod float64
	// MeanDownloadTime is the mean time from peer arrival to service
	// completion (waiting + service); only peers that completed count.
	MeanDownloadTime float64
	// DownloadTimeCI is the 95% confidence half-width of MeanDownloadTime.
	DownloadTimeCI float64
	// PeerArrivals and PeersServed count demand and completions.
	PeerArrivals int
	PeersServed  int
	// BusyPeriods is the number of completed busy periods observed.
	BusyPeriods int
}

// SimulateAvailability runs the availability process for the given
// simulated horizon and returns long-run estimates.
func SimulateAvailability(r *rand.Rand, cfg AvailabilityConfig, horizon float64) AvailabilityResult {
	if cfg.PeerService == nil || cfg.PublisherStay == nil {
		panic("queue: PeerService and PublisherStay required")
	}
	sim := des.New()

	var (
		population  int
		busyStart   float64
		busy        bool
		waiting     []float64 // arrival times of patient peers queued while idle
		busyAcc     stats.Accumulator
		idleAcc     stats.Accumulator
		idleStart   float64
		dlAcc       stats.Accumulator
		peerArrived int
		peerServed  int
		peerBlocked int // peers that arrived while content was unavailable
	)

	beginService := func(arrivalTime float64) {
		population++
		svc := cfg.PeerService.Sample(r)
		sim.After(svc, func() {
			population--
			peerServed++
			dlAcc.Add(sim.Now() - arrivalTime) // waiting + service
			if population == 0 && busy {
				busy = false
				busyAcc.Add(sim.Now() - busyStart)
				idleStart = sim.Now()
			}
		})
	}

	publisherArrive := func() {
		wasIdle := !busy
		population++
		if wasIdle {
			busy = true
			busyStart = sim.Now()
			idleAcc.Add(sim.Now() - idleStart)
			// Waiting patient peers begin service now.
			for _, at := range waiting {
				beginService(at)
			}
			waiting = waiting[:0]
		}
		stay := cfg.PublisherStay.Sample(r)
		sim.After(stay, func() {
			population--
			if population == 0 && busy {
				busy = false
				busyAcc.Add(sim.Now() - busyStart)
				idleStart = sim.Now()
			}
		})
	}

	peerArrive := func() {
		peerArrived++
		if busy {
			beginService(sim.Now())
			return
		}
		peerBlocked++
		if cfg.Patient {
			waiting = append(waiting, sim.Now())
		}
		// Impatient peers leave unserved.
	}

	// Poisson arrival streams.
	var schedPeer, schedPub func()
	schedPeer = func() {
		if cfg.PeerRate <= 0 {
			return
		}
		sim.After(r.ExpFloat64()/cfg.PeerRate, func() {
			peerArrive()
			schedPeer()
		})
	}
	schedPub = func() {
		if cfg.PublisherRate <= 0 {
			return
		}
		sim.After(r.ExpFloat64()/cfg.PublisherRate, func() {
			publisherArrive()
			schedPub()
		})
	}
	schedPeer()
	schedPub()

	sim.RunUntil(horizon)

	res := AvailabilityResult{
		MeanBusyPeriod:   busyAcc.Mean(),
		MeanIdlePeriod:   idleAcc.Mean(),
		MeanDownloadTime: dlAcc.Mean(),
		DownloadTimeCI:   dlAcc.CI95(),
		PeerArrivals:     peerArrived,
		PeersServed:      peerServed,
		BusyPeriods:      busyAcc.N(),
	}
	if peerArrived > 0 {
		res.Unavailability = float64(peerBlocked) / float64(peerArrived)
	} else {
		res.Unavailability = math.NaN()
	}
	return res
}
