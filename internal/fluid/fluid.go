// Package fluid implements the Qiu–Srikant fluid model of BitTorrent
// steady-state performance (SIGCOMM 2004, building on Veciana & Yang) and
// its naive adaptation to bundles.
//
// The paper uses this model as the baseline comparator: "A naive
// adaptation of the fluid model [17] to bundles suggests strictly longer
// download times under bundling, whereas our model shows that bundling
// can decrease download times by improving availability." The fluid model
// has no notion of content availability — it assumes a swarm in steady
// state with seeds always reachable — which is exactly the assumption the
// availability model removes.
package fluid

import (
	"fmt"
	"math"
)

// Params are the fluid-model parameters in Qiu–Srikant's notation,
// normalised per file: rates are in files (not bytes) per second.
type Params struct {
	// Lambda is the leecher arrival rate (1/s).
	Lambda float64
	// Mu is the per-peer upload capacity in files/s (upload bytes per
	// second divided by file size).
	Mu float64
	// C is the per-peer download capacity in files/s.
	C float64
	// Gamma is the rate at which seeds leave (1/s); 1/Gamma is the mean
	// seeding time after completion.
	Gamma float64
	// Eta is the effectiveness of file sharing in [0,1] (the fraction of
	// a leecher's upload capacity that is usable; ≈1 for large swarms
	// under rarest-first).
	Eta float64
	// Theta is the rate at which leechers abandon before finishing (1/s).
	Theta float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.Lambda < 0 || math.IsNaN(p.Lambda):
		return fmt.Errorf("fluid: λ=%v must be ≥ 0", p.Lambda)
	case p.Mu <= 0:
		return fmt.Errorf("fluid: μ=%v must be > 0", p.Mu)
	case p.C <= 0:
		return fmt.Errorf("fluid: c=%v must be > 0", p.C)
	case p.Gamma <= 0:
		return fmt.Errorf("fluid: γ=%v must be > 0", p.Gamma)
	case p.Eta <= 0 || p.Eta > 1:
		return fmt.Errorf("fluid: η=%v must be in (0,1]", p.Eta)
	case p.Theta < 0:
		return fmt.Errorf("fluid: θ=%v must be ≥ 0", p.Theta)
	}
	return nil
}

// SteadyState returns the steady-state leecher population x̄, seed
// population ȳ, and mean download time T of the fluid model with no
// abandonment (θ = 0):
//
//	T = max{ 1/c , (1/η)·(1/μ − 1/γ) }   (0 when uploads outpace demand)
//	ȳ = λ/γ,  x̄ = λ·T  (Little's law)
//
// The download-constrained regime applies when seeds alone saturate the
// leechers' download capacity.
func (p Params) SteadyState() (x, y, t float64) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	tUpload := (1 / p.Eta) * (1/p.Mu - 1/p.Gamma)
	t = math.Max(1/p.C, tUpload)
	y = p.Lambda / p.Gamma
	x = p.Lambda * t
	return x, y, t
}

// DownloadTime returns the fluid steady-state mean download time.
func (p Params) DownloadTime() float64 {
	_, _, t := p.SteadyState()
	return t
}

// UploadConstrained reports whether the swarm operates in the
// upload-constrained regime (the usual case in the paper's experiments,
// where peer upload capacity is the bottleneck).
func (p Params) UploadConstrained() bool {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return (1/p.Eta)*(1/p.Mu-1/p.Gamma) >= 1/p.C
}

// Bundle returns the naive fluid parameters for a bundle of k files:
// demand aggregates (λ → K·λ) and per-file-normalised capacities shrink
// (μ → μ/K, c → c/K) because every download moves K times the bytes.
// Seeds leave at the same rate and η is unchanged.
func (p Params) Bundle(k int) Params {
	if k < 1 {
		panic("fluid: bundle size must be ≥ 1")
	}
	b := p
	b.Lambda = float64(k) * p.Lambda
	b.Mu = p.Mu / float64(k)
	b.C = p.C / float64(k)
	return b
}

// BundleDownloadTimeCurve returns the naive fluid prediction of bundle
// download time for K = 1..maxK (indexed K−1). It is strictly
// non-decreasing in K — the monotone prediction our availability model
// contradicts for unavailable publishers.
func (p Params) BundleDownloadTimeCurve(maxK int) []float64 {
	if maxK < 1 {
		panic("fluid: maxK must be ≥ 1")
	}
	out := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		out[k-1] = p.Bundle(k).DownloadTime()
	}
	return out
}

// FromSwarm builds fluid parameters from byte-level quantities: file
// size (same unit as the capacities' numerator), per-peer upload and
// download capacities (units/s), mean seeding time (s) and leecher
// arrival rate (1/s).
func FromSwarm(lambda, sizeUnits, upload, download, seedTime, eta float64) Params {
	if sizeUnits <= 0 {
		panic("fluid: size must be positive")
	}
	gamma := math.Inf(1)
	if seedTime > 0 {
		gamma = 1 / seedTime
	}
	return Params{
		Lambda: lambda,
		Mu:     upload / sizeUnits,
		C:      download / sizeUnits,
		Gamma:  gamma,
		Eta:    eta,
	}
}
