package fluid

import (
	"math"
	"testing"
	"testing/quick"
)

func base() Params {
	// 4 MB file, 50 KBps upload, 400 KBps download, 60 s seeding, η=1.
	return FromSwarm(1.0/60, 4000, 50, 400, 60, 1)
}

func TestValidate(t *testing.T) {
	if err := base().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Lambda: -1, Mu: 1, C: 1, Gamma: 1, Eta: 1},
		{Lambda: 1, Mu: 0, C: 1, Gamma: 1, Eta: 1},
		{Lambda: 1, Mu: 1, C: 0, Gamma: 1, Eta: 1},
		{Lambda: 1, Mu: 1, C: 1, Gamma: 0, Eta: 1},
		{Lambda: 1, Mu: 1, C: 1, Gamma: 1, Eta: 0},
		{Lambda: 1, Mu: 1, C: 1, Gamma: 1, Eta: 1.5},
		{Lambda: 1, Mu: 1, C: 1, Gamma: 1, Eta: 1, Theta: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestSteadyStateUploadConstrained(t *testing.T) {
	p := base()
	// T = (1/η)(1/μ − 1/γ): μ = 50/4000 = 0.0125 files/s → 1/μ = 80 s;
	// 1/γ = 60 s → T = 20 s... that is below 1/c = 10 s? 1/c = 4000/400
	// = 10 s, so T = 20 s, upload-constrained.
	x, y, tm := p.SteadyState()
	if math.Abs(tm-20) > 1e-9 {
		t.Fatalf("T = %v, want 20", tm)
	}
	if !p.UploadConstrained() {
		t.Fatal("should be upload-constrained")
	}
	// Little's law.
	if math.Abs(x-p.Lambda*tm) > 1e-12 {
		t.Fatalf("x̄ = %v, want λT = %v", x, p.Lambda*tm)
	}
	if math.Abs(y-p.Lambda/p.Gamma) > 1e-12 {
		t.Fatalf("ȳ = %v, want λ/γ = %v", y, p.Lambda/p.Gamma)
	}
}

func TestSteadyStateDownloadConstrained(t *testing.T) {
	// Generous seeding: 1/μ − 1/γ < 1/c ⇒ T = 1/c.
	p := FromSwarm(1.0/60, 4000, 50, 100, 79, 1)
	// 1/μ = 80, 1/γ = 79 → upload term 1 s; 1/c = 40 s.
	if got := p.DownloadTime(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("T = %v, want 40", got)
	}
	if p.UploadConstrained() {
		t.Fatal("should be download-constrained")
	}
}

func TestNoSeedingFluid(t *testing.T) {
	p := FromSwarm(1.0/60, 4000, 50, 400, 0, 1)
	// γ = ∞: T = 1/μ = 80 s (selfish peers, η=1).
	if got := p.DownloadTime(); math.Abs(got-80) > 1e-9 {
		t.Fatalf("T = %v, want 80", got)
	}
}

func TestEtaScalesUploadTerm(t *testing.T) {
	p := base()
	p.Eta = 0.5
	if got := p.DownloadTime(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("T = %v, want 40 at η=0.5", got)
	}
}

func TestBundleParams(t *testing.T) {
	p := base()
	b := p.Bundle(4)
	if math.Abs(b.Lambda-4*p.Lambda) > 1e-12 ||
		math.Abs(b.Mu-p.Mu/4) > 1e-12 ||
		math.Abs(b.C-p.C/4) > 1e-12 ||
		b.Gamma != p.Gamma {
		t.Fatalf("bundle params wrong: %+v", b)
	}
	if p.Bundle(1) != p {
		t.Fatal("K=1 must be identity")
	}
}

func TestNaiveFluidPredictsMonotoneIncrease(t *testing.T) {
	// The headline property of the baseline: bundle download time is
	// non-decreasing (here strictly increasing) in K — no availability
	// benefit exists in the fluid world.
	curve := base().BundleDownloadTimeCurve(10)
	for k := 1; k < len(curve); k++ {
		if curve[k] <= curve[k-1] {
			t.Fatalf("fluid curve not increasing at K=%d: %v", k+1, curve)
		}
	}
	// And roughly linear in K in the upload-constrained, γ-fixed case:
	// T(K) = K/μ·η⁻¹ − 1/(γη): slope between consecutive K constant.
	d1 := curve[1] - curve[0]
	d9 := curve[9] - curve[8]
	if math.Abs(d1-d9) > 1e-9 {
		t.Fatalf("fluid curve not affine: slopes %v vs %v", d1, d9)
	}
}

func TestPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Params{}.SteadyState() },
		func() { base().Bundle(0) },
		func() { base().BundleDownloadTimeCurve(0) },
		func() { FromSwarm(1, 0, 1, 1, 1, 1) },
		func() { Params{Lambda: -1, Mu: 1, C: 1, Gamma: 1, Eta: 1}.UploadConstrained() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: fluid download time is always ≥ the pure bandwidth bound
// max(1/c, 0) and finite for valid parameters.
func TestFluidLowerBoundProperty(t *testing.T) {
	f := func(l, up, down, st uint16) bool {
		p := FromSwarm(
			float64(l%100)/1000+0.001,
			4000,
			float64(up%500)+10,
			float64(down%2000)+50,
			float64(st%600),
			1,
		)
		tm := p.DownloadTime()
		return tm >= 1/p.C-1e-12 && !math.IsNaN(tm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
