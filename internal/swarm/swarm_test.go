package swarm

import (
	"math"
	"testing"

	"swarmavail/internal/dist"
	"swarmavail/internal/stats"
)

// oneFileConfig is the paper's single-file default: 4 MB file, 33 KBps
// peers, 50 KBps publisher.
func oneFileConfig(seed int64) Config {
	return Config{
		Seed:                seed,
		Files:               []FileSpec{{SizeKB: 4000, Lambda: 1.0 / 150}},
		PeerUpload:          dist.Deterministic{Value: 33},
		PublisherUploadKBps: 50,
		PublisherMode:       PublisherAlwaysOn,
		Horizon:             3000,
	}
}

func TestValidateConfig(t *testing.T) {
	good := oneFileConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(c *Config){
		func(c *Config) { c.Files = nil },
		func(c *Config) { c.Files[0].SizeKB = 0 },
		func(c *Config) { c.Files[0].Lambda = -1 },
		func(c *Config) { c.Files[0].Lambda = 0 },
		func(c *Config) { c.PieceSizeKB = -1 },
		func(c *Config) { c.PeerUpload = nil },
		func(c *Config) { c.PublisherUploadKBps = 0 },
		func(c *Config) { c.PublisherMode = PublisherOnOff },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.MaxUploads = -2 },
	}
	for i, mutate := range mutations {
		c := oneFileConfig(1)
		c.Files = []FileSpec{c.Files[0]} // fresh copy
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	c := Config{Files: []FileSpec{{SizeKB: 4000, Lambda: 0.01}, {SizeKB: 2000, Lambda: 0.02}}}
	if got := c.TotalSizeKB(); got != 6000 {
		t.Fatalf("total size %v", got)
	}
	if got := c.AggregateLambda(); math.Abs(got-0.03) > 1e-12 {
		t.Fatalf("aggregate λ %v", got)
	}
	if got := c.NumPieces(); got != 24 { // 6000/256 = 23.4 → 24
		t.Fatalf("pieces %v", got)
	}
}

func TestSinglePeerDownloadsAtPublisherRate(t *testing.T) {
	// One peer, always-on publisher: the peer is the publisher's only
	// transfer, so the download proceeds at 50 KBps over 16 pieces of
	// 256 KB = 4096 KB → 81.92 s.
	c := oneFileConfig(7)
	c.Files[0].Lambda = 1e-9 // effectively no organic arrivals
	c.Arrivals = dist.NewTraceArrivals([]float64{100})
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("admitted %d peers", len(res.Records))
	}
	rec := res.Records[0]
	if !rec.Completed() {
		t.Fatal("peer did not complete")
	}
	want := 16.0 * 256 / 50
	if math.Abs(rec.DownloadTime()-want) > 1e-6 {
		t.Fatalf("download time %v, want %v", rec.DownloadTime(), want)
	}
	if rec.Depart != rec.Complete {
		t.Fatal("selfish peer must depart at completion")
	}
}

func TestTwoConcurrentPeersSharePublisher(t *testing.T) {
	// Two simultaneous peers split the publisher 25/25 KBps but also
	// exchange complementary pieces with each other (rarest-first gives
	// them disjoint in-flight pieces), so both finish well before the
	// naive 2×163.8 s serial bound and no earlier than 81.92 s.
	c := oneFileConfig(8)
	c.Files[0].Lambda = 1e-9
	c.Arrivals = dist.NewTraceArrivals([]float64{10, 10.001})
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount() != 2 {
		t.Fatalf("completed %d of 2", res.CompletedCount())
	}
	for _, r := range res.Records {
		dt := r.DownloadTime()
		if dt < 81.92-1e-9 || dt > 2*163.84 {
			t.Fatalf("implausible download time %v", dt)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	a, err := Run(oneFileConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(oneFileConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
	c, err := Run(oneFileConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Records) == len(c.Records)
	if same {
		identical := true
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				identical = false
				break
			}
		}
		if identical && len(a.Records) > 3 {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestAlwaysOnPublisherAvailability(t *testing.T) {
	res, err := Run(oneFileConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.AvailabilityFraction(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("availability %v, want 1", got)
	}
	if got := res.PublisherAvailabilityFraction(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("publisher availability %v, want 1", got)
	}
}

func TestOnOffPublisherDutyCycle(t *testing.T) {
	c := oneFileConfig(4)
	c.PublisherMode = PublisherOnOff
	c.PublisherOn = dist.NewExponentialFromMean(300)
	c.PublisherOff = dist.NewExponentialFromMean(900)
	c.Horizon = 200000
	c.Files[0].Lambda = 1.0 / 400 // keep the run light
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	got := res.PublisherAvailabilityFraction()
	if math.Abs(got-0.25) > 0.06 {
		t.Fatalf("publisher duty cycle %v, want ≈0.25", got)
	}
	// Content availability must be at least publisher availability.
	if res.AvailabilityFraction() < got-1e-9 {
		t.Fatalf("content availability %v below publisher availability %v",
			res.AvailabilityFraction(), got)
	}
}

func TestRecordInvariants(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := oneFileConfig(seed)
		c.PublisherMode = PublisherOnOff
		c.PublisherOn = dist.NewExponentialFromMean(300)
		c.PublisherOff = dist.NewExponentialFromMean(900)
		c.Files[0].Lambda = 1.0 / 60
		c.Horizon = 1200
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res.Records {
			if r.Arrive < 0 || r.Arrive > c.Horizon {
				t.Fatalf("seed %d rec %d: arrive %v out of range", seed, i, r.Arrive)
			}
			if r.Completed() {
				if r.Complete < r.Arrive {
					t.Fatalf("seed %d rec %d: complete %v before arrive %v", seed, i, r.Complete, r.Arrive)
				}
				if r.Depart < r.Complete {
					t.Fatalf("seed %d rec %d: depart %v before complete %v", seed, i, r.Depart, r.Complete)
				}
				// Even with every source in parallel, the download takes
				// at least one piece at the fastest single-transfer rate.
				if r.DownloadTime() < 256/50-1e-9 {
					t.Fatalf("seed %d rec %d: impossible download time %v", seed, i, r.DownloadTime())
				}
			} else if !math.IsInf(r.Depart, 1) {
				t.Fatalf("seed %d rec %d: incomplete peer departed at %v", seed, i, r.Depart)
			}
		}
		// IDs are the arrival order.
		for i := 1; i < len(res.Records); i++ {
			if res.Records[i].Arrive < res.Records[i-1].Arrive {
				t.Fatalf("seed %d: records out of arrival order", seed)
			}
		}
	}
}

func TestSeedlessSustainabilityByBundling(t *testing.T) {
	// The Figure 4 mechanism: publisher leaves after the first completed
	// download. Small K starves quickly; K=8 keeps serving peers because
	// the aggregate arrival rate (and per-peer residence) sustains the
	// piece population.
	run := func(k int) *Result {
		files := make([]FileSpec, k)
		for i := range files {
			files[i] = FileSpec{SizeKB: 4000, Lambda: 1.0 / 150}
		}
		res, err := Run(Config{
			Seed:                99,
			Files:               files,
			PeerUpload:          dist.Deterministic{Value: 33},
			PublisherUploadKBps: 50,
			PublisherMode:       PublisherUntilFirstCompletion,
			Horizon:             6000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(1)
	large := run(8)
	if small.CompletedCount() > 6 {
		t.Fatalf("K=1 seedless swarm served %d peers; expected starvation", small.CompletedCount())
	}
	if large.CompletedCount() < 3*small.CompletedCount()+5 {
		t.Fatalf("K=8 served %d vs K=1 %d; expected self-sustaining growth",
			large.CompletedCount(), small.CompletedCount())
	}
	// The large bundle's availability outlives the publisher's presence.
	pubOnline := dist.AvailableFraction(large.PublisherSessions, large.Horizon)
	if large.AvailabilityFraction() < pubOnline+0.2 {
		t.Fatalf("bundle availability %v barely above publisher %v",
			large.AvailabilityFraction(), pubOnline)
	}
}

func TestLingeringImprovesAvailability(t *testing.T) {
	base := oneFileConfig(11)
	base.PublisherMode = PublisherUntilFirstCompletion
	base.Files[0].Lambda = 1.0 / 100
	base.Horizon = 4000

	selfish, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	linger := base
	linger.LingerMeanSeconds = 600
	altruistic, err := Run(linger)
	if err != nil {
		t.Fatal(err)
	}
	if altruistic.AvailabilityFraction() <= selfish.AvailabilityFraction() {
		t.Fatalf("lingering did not improve availability: %v vs %v",
			altruistic.AvailabilityFraction(), selfish.AvailabilityFraction())
	}
	if altruistic.CompletedCount() <= selfish.CompletedCount() {
		t.Fatalf("lingering did not increase completions: %d vs %d",
			altruistic.CompletedCount(), selfish.CompletedCount())
	}
}

func TestClassTaggingProportionalToDemand(t *testing.T) {
	c := Config{
		Seed: 13,
		Files: []FileSpec{
			{SizeKB: 1000, Lambda: 1.0 / 8},
			{SizeKB: 1000, Lambda: 1.0 / 16},
			{SizeKB: 1000, Lambda: 1.0 / 24},
			{SizeKB: 1000, Lambda: 1.0 / 32},
		},
		PeerUpload:          dist.Deterministic{Value: 50},
		PublisherUploadKBps: 100,
		PublisherMode:       PublisherAlwaysOn,
		Horizon:             20000,
	}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 4)
	for _, r := range res.Records {
		counts[r.Class]++
	}
	total := float64(len(res.Records))
	if total < 1000 {
		t.Fatalf("too few arrivals: %v", total)
	}
	agg := c.AggregateLambda()
	for i, f := range c.Files {
		want := f.Lambda / agg
		got := counts[i] / total
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("class %d share %v, want %v", i, got, want)
		}
	}
}

func TestDownloadTimesHelpers(t *testing.T) {
	c := oneFileConfig(17)
	c.Horizon = 5000
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	all := res.DownloadTimes()
	if len(all) != res.CompletedCount() {
		t.Fatalf("download times %d vs completed %d", len(all), res.CompletedCount())
	}
	byClass := res.DownloadTimesByClass(0)
	if len(byClass) != len(all) {
		t.Fatalf("single-class swarm: %d vs %d", len(byClass), len(all))
	}
	if len(res.DownloadTimesByClass(5)) != 0 {
		t.Fatal("unknown class must be empty")
	}
	ct := res.CompletionTimes()
	for i := 1; i < len(ct); i++ {
		if ct[i] < ct[i-1] {
			t.Fatal("completion times not sorted")
		}
	}
	var acc stats.Accumulator
	acc.AddAll(all)
	// Always-on publisher: mean download near the capacity-bound regime,
	// certainly below 10× the ideal 124 s and above the 82 s floor.
	if acc.Mean() < 80 || acc.Mean() > 1240 {
		t.Fatalf("mean download time %v implausible", acc.Mean())
	}
}

func TestTraceDrivenArrivals(t *testing.T) {
	c := oneFileConfig(19)
	times := []float64{50, 60, 70, 400, 410}
	c.Arrivals = dist.NewTraceArrivals(times)
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(times) {
		t.Fatalf("admitted %d, want %d", len(res.Records), len(times))
	}
	for i, r := range res.Records {
		if r.Arrive != times[i] {
			t.Fatalf("arrival %d at %v, want %v", i, r.Arrive, times[i])
		}
	}
}

func TestMaxArrivalsCap(t *testing.T) {
	c := oneFileConfig(23)
	c.Files[0].Lambda = 10 // flood
	c.MaxArrivals = 50
	c.Horizon = 1000
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 50 {
		t.Fatalf("admitted %d, want cap 50", len(res.Records))
	}
}

func TestPublisherModeString(t *testing.T) {
	if PublisherAlwaysOn.String() != "always-on" ||
		PublisherOnOff.String() != "on-off" ||
		PublisherUntilFirstCompletion.String() != "until-first-completion" {
		t.Fatal("stringers wrong")
	}
	if PublisherMode(9).String() == "" {
		t.Fatal("unknown mode must print")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	_, err := Run(Config{})
	if err == nil {
		t.Fatal("empty config must be rejected")
	}
}

func TestHeterogeneousUploadCapacities(t *testing.T) {
	c := oneFileConfig(29)
	c.PeerUpload = dist.BitTyrantUploadCapacities()
	c.Files[0].Lambda = 1.0 / 60
	c.Horizon = 2500
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// Capacities recorded per peer must span a wide range.
	lo, hi := math.Inf(1), 0.0
	for _, r := range res.Records {
		if r.UploadKBps < lo {
			lo = r.UploadKBps
		}
		if r.UploadKBps > hi {
			hi = r.UploadKBps
		}
	}
	if len(res.Records) < 20 || hi/lo < 5 {
		t.Fatalf("capacity heterogeneity not visible: n=%d lo=%v hi=%v",
			len(res.Records), lo, hi)
	}
}
