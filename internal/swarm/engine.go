package swarm

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"swarmavail/internal/des"
	"swarmavail/internal/dist"
	"swarmavail/internal/obs"
)

// node is a participant: the publisher or a peer. Peers arrive wanting
// the whole content; the publisher holds everything and only uploads.
type node struct {
	id          int
	publisher   bool
	class       int
	arrive      float64
	uploadCap   float64
	downloadCap float64 // +Inf when unconstrained
	online      bool

	pieces []bool
	have   int

	outgoing     []*transfer       // stable order for determinism
	incoming     map[int]*transfer // by piece
	incomingFrom map[int]int       // active transfers per uploader id

	peerIdx int // index into engine.peers, -1 when offline
	recIdx  int // index into engine.records (peers only)

	lastProgress float64 // last time a piece landed (abandonment clock)
	patience     float64 // sampled give-up threshold (0 = patient)
}

// transfer is one in-flight piece upload. Rates are re-divided whenever
// the uploader's number of concurrent uploads changes, so a node's full
// upload capacity is always in use (progressive-download model of an
// upload-constrained swarm).
type transfer struct {
	up, down   *node
	piece      int
	remaining  float64 // KB left to move
	rate       float64 // current KBps
	lastUpdate float64
	ev         *des.Event
}

type engine struct {
	cfg Config
	sim *des.Simulator
	rng *rand.Rand

	totalPieces int
	pieceKB     float64
	classPick   *dist.Categorical

	publisher *node
	peers     []*node // online peers (leechers + lingering seeds)
	nextID    int

	copies  []int // per piece: holders among online peers (publisher excluded)
	missing int   // pieces with zero peer copies

	available  bool
	availStart float64
	avail      []dist.Interval

	pubOnAt     float64
	pubSessions []dist.Interval

	records  []PeerRecord
	arrivals int

	deliveredKB float64
	wastedKB    float64

	firstCompletionSeen bool
}

// Run simulates one swarm and returns its full result. It is
// deterministic in Config.Seed.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	e := &engine{
		cfg:         c,
		sim:         des.New(),
		rng:         dist.NewRand(c.Seed),
		totalPieces: c.NumPieces(),
		pieceKB:     c.PieceSizeKB,
	}
	weights := make([]float64, len(c.Files))
	var agg float64
	for i, f := range c.Files {
		weights[i] = f.Lambda
		agg += f.Lambda
	}
	if agg <= 0 {
		for i := range weights {
			weights[i] = 1
		}
	}
	e.classPick = dist.NewCategorical(weights)
	e.copies = make([]int, e.totalPieces)
	e.missing = e.totalPieces

	e.publisher = &node{
		id:          -1,
		publisher:   true,
		uploadCap:   c.PublisherUploadKBps,
		downloadCap: math.Inf(1),
		pieces:      nil, // implicit: holds everything
		have:        e.totalPieces,
		peerIdx:     -1,
	}

	start := time.Now()
	e.publisherOn()
	e.scheduleNextArrival()
	e.sim.RunUntil(c.Horizon)
	res := e.finish()
	e.instrument(res, time.Since(start))
	return res, nil
}

// instrument adds the run's outcome to the swarm_sim_* series on
// cfg.Metrics (no-op without a registry). Each Run accumulates into the
// same series, so over a sweep the counters read as campaign totals.
func (e *engine) instrument(res *Result, wall time.Duration) {
	reg := e.cfg.Metrics
	if reg == nil {
		return
	}
	reg.Counter("swarm_sim_runs_total").Inc()
	reg.Counter("swarm_sim_events_total").Add(e.sim.Fired())
	reg.Counter("swarm_sim_arrivals_total").Add(uint64(e.arrivals))
	reg.Counter("swarm_sim_completions_total").Add(uint64(res.CompletedCount()))
	reg.Counter("swarm_sim_abandons_total").Add(uint64(res.AbandonedCount()))
	reg.Counter("swarm_sim_busy_periods_total").Add(uint64(len(res.AvailableIntervals)))
	reg.Gauge("swarm_sim_delivered_kb").Add(res.DeliveredKB)
	reg.Gauge("swarm_sim_wasted_kb").Add(res.WastedKB)
	reg.Histogram("swarm_sim_run_seconds", obs.LatencyBuckets).Observe(wall.Seconds())
	if s := wall.Seconds(); s > 0 {
		reg.Gauge("swarm_sim_events_per_second").Set(float64(e.sim.Fired()) / s)
	}
}

// ---------------------------------------------------------------------------
// Arrivals and departures.

func (e *engine) scheduleNextArrival() {
	if e.arrivals >= e.cfg.MaxArrivals {
		return
	}
	var next float64
	if e.cfg.Arrivals != nil {
		next = e.cfg.Arrivals.NextAfter(e.rng, e.sim.Now())
	} else {
		next = dist.PoissonProcess{Rate: e.cfg.AggregateLambda()}.NextAfter(e.rng, e.sim.Now())
	}
	cutoff := e.cfg.Horizon
	if e.cfg.ArrivalCutoff > 0 && e.cfg.ArrivalCutoff < cutoff {
		cutoff = e.cfg.ArrivalCutoff
	}
	if math.IsInf(next, 1) || next > cutoff {
		return
	}
	e.sim.Schedule(next, func() {
		e.admitPeer()
		e.scheduleNextArrival()
	})
}

func (e *engine) admitPeer() {
	p := &node{
		id:           e.nextID,
		class:        e.classPick.Sample(e.rng),
		arrive:       e.sim.Now(),
		uploadCap:    e.cfg.PeerUpload.Sample(e.rng),
		downloadCap:  math.Inf(1),
		online:       true,
		pieces:       make([]bool, e.totalPieces),
		incoming:     make(map[int]*transfer),
		incomingFrom: make(map[int]int),
		recIdx:       len(e.records),
	}
	if p.uploadCap <= 0 {
		p.uploadCap = 1 // defensive floor; capacity distributions are positive
	}
	if e.cfg.PeerDownload != nil {
		p.downloadCap = e.cfg.PeerDownload.Sample(e.rng)
		if p.downloadCap <= 0 {
			p.downloadCap = 1
		}
	}
	e.nextID++
	e.arrivals++
	p.peerIdx = len(e.peers)
	e.peers = append(e.peers, p)
	e.records = append(e.records, PeerRecord{
		ID:         p.id,
		Class:      p.class,
		Arrive:     p.arrive,
		Complete:   math.Inf(1),
		Depart:     math.Inf(1),
		UploadKBps: p.uploadCap,
	})
	if e.cfg.AbandonMeanSeconds > 0 {
		p.lastProgress = p.arrive
		p.patience = e.rng.ExpFloat64() * e.cfg.AbandonMeanSeconds
		e.sim.After(p.patience, func() { e.checkAbandon(p) })
	}
	e.dispatchToward(p)
}

// checkAbandon fires when a peer's patience would expire if it had made
// no progress; progress (a delivered piece) resets the clock, so the
// check reschedules itself until the peer truly stalls out. Impatience
// thus models §3.3.1's semantics: peers give up when the content is
// effectively unavailable to them, not mid-download.
func (e *engine) checkAbandon(p *node) {
	if p.peerIdx < 0 || p.have == e.totalPieces || p.patience <= 0 {
		return
	}
	idle := e.sim.Now() - p.lastProgress
	if idle+1e-9 >= p.patience {
		e.records[p.recIdx].Abandoned = true
		e.departPeer(p)
		return
	}
	e.sim.Schedule(p.lastProgress+p.patience, func() { e.checkAbandon(p) })
}

func (e *engine) departPeer(p *node) {
	if p.peerIdx < 0 {
		return // already gone
	}
	// Abort uploads in progress from this peer; the orphaned downloaders
	// get a chance to re-source their pieces below.
	var orphaned []*node
	for len(p.outgoing) > 0 {
		orphaned = append(orphaned, p.outgoing[0].down)
		e.abortTransfer(p.outgoing[0])
	}
	// Abort downloads in progress to this peer, releasing each uploader.
	var freedUploaders []*node
	if len(p.incoming) > 0 {
		ts := make([]*transfer, 0, len(p.incoming))
		for _, t := range p.incoming {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i].piece < ts[j].piece })
		ups := map[*node]bool{}
		for _, t := range ts {
			e.wastedKB += e.progressedKB(t)
			e.removeTransfer(t)
			ups[t.up] = true
		}
		// Deterministic order: publisher first, then by id.
		for u := range ups {
			freedUploaders = append(freedUploaders, u)
		}
		sort.Slice(freedUploaders, func(i, j int) bool {
			return freedUploaders[i].id < freedUploaders[j].id
		})
		for _, u := range freedUploaders {
			e.updateRates(u)
		}
	}
	// Remove from the online set (swap-remove).
	last := len(e.peers) - 1
	e.peers[p.peerIdx] = e.peers[last]
	e.peers[p.peerIdx].peerIdx = p.peerIdx
	e.peers = e.peers[:last]
	p.peerIdx = -1
	p.online = false
	// Withdraw piece copies.
	for i, has := range p.pieces {
		if has {
			e.copies[i]--
			if e.copies[i] == 0 {
				e.missing++
			}
		}
	}
	e.records[p.recIdx].Depart = e.sim.Now()
	e.refreshAvailability()
	// Freed uploader slots and orphaned downloaders may admit new work.
	for _, u := range freedUploaders {
		e.tryStartAll(u)
	}
	for _, d := range orphaned {
		e.dispatchToward(d)
	}
}

// ---------------------------------------------------------------------------
// Publisher lifecycle.

func (e *engine) publisherOn() {
	e.publisher.online = true
	e.pubOnAt = e.sim.Now()
	e.refreshAvailability()
	if e.cfg.PublisherMode == PublisherOnOff {
		stay := e.cfg.PublisherOn.Sample(e.rng)
		e.sim.After(stay, e.publisherOff)
	}
	e.tryStartAll(e.publisher)
}

func (e *engine) publisherOff() {
	if !e.publisher.online {
		return
	}
	e.publisher.online = false
	var orphaned []*node
	for len(e.publisher.outgoing) > 0 {
		orphaned = append(orphaned, e.publisher.outgoing[0].down)
		e.abortTransfer(e.publisher.outgoing[0])
	}
	e.pubSessions = append(e.pubSessions, dist.Interval{Start: e.pubOnAt, End: e.sim.Now()})
	e.refreshAvailability()
	if e.cfg.PublisherMode == PublisherOnOff {
		gap := e.cfg.PublisherOff.Sample(e.rng)
		e.sim.After(gap, e.publisherOn)
	}
	for _, d := range orphaned {
		e.dispatchToward(d)
	}
}

// ---------------------------------------------------------------------------
// Transfers.

func (e *engine) has(u *node, piece int) bool {
	if u.publisher {
		return true
	}
	return u.pieces[piece]
}

// Dispatch is event-targeted: a new transfer (u → d) only becomes
// possible when d arrives, u gains a piece or a slot, d's in-flight
// claim on a piece aborts, or the publisher returns. Each of those
// events triggers exactly the scans it can affect (tryStartAll on the
// uploader side, dispatchToward on the downloader side), so the engine
// never rescans the whole swarm on unrelated events.

// tryStartAll starts as many uploads from u as its slots and the demand
// admit.
func (e *engine) tryStartAll(u *node) {
	if u.publisher && !u.online {
		return
	}
	if !u.publisher && u.peerIdx < 0 {
		return
	}
	if u.have == 0 {
		return
	}
	for len(u.outgoing) < e.cfg.MaxUploads && e.tryStart(u) {
	}
}

// dispatchToward attempts to start one transfer to d from every willing
// uploader.
func (e *engine) dispatchToward(d *node) {
	if d.peerIdx < 0 || d.have == e.totalPieces {
		return
	}
	if e.publisher.online {
		e.tryStartPair(e.publisher, d)
	}
	for _, u := range e.peers {
		if u != d && u.have > 0 {
			e.tryStartPair(u, d)
		}
	}
}

// tryStart attempts to begin one upload from u; it reports success.
func (e *engine) tryStart(u *node) bool {
	if len(u.outgoing) >= e.cfg.MaxUploads {
		return false
	}
	// Collect interested downloaders: online leechers missing a piece u
	// has, with no active transfer from u.
	var eligible []*node
	for _, d := range e.peers {
		if d == u || d.have == e.totalPieces {
			continue
		}
		if d.incomingFrom[u.id] > 0 {
			continue
		}
		if e.usefulPiece(u, d) >= 0 {
			eligible = append(eligible, d)
		}
	}
	if len(eligible) == 0 {
		return false
	}
	d := eligible[e.rng.Intn(len(eligible))]
	return e.startTransfer(u, d)
}

// tryStartPair starts one transfer u → d if eligible.
func (e *engine) tryStartPair(u, d *node) bool {
	if len(u.outgoing) >= e.cfg.MaxUploads || d.have == e.totalPieces {
		return false
	}
	if d.incomingFrom[u.id] > 0 || e.usefulPiece(u, d) < 0 {
		return false
	}
	return e.startTransfer(u, d)
}

func (e *engine) startTransfer(u, d *node) bool {
	piece := e.pickRarest(u, d)
	if piece < 0 {
		return false
	}
	t := &transfer{
		up:         u,
		down:       d,
		piece:      piece,
		remaining:  e.pieceKB,
		lastUpdate: e.sim.Now(),
	}
	u.outgoing = append(u.outgoing, t)
	d.incoming[piece] = t
	d.incomingFrom[u.id]++
	e.updateRates(u)
	e.updateRates(d)
	return true
}

// usefulPiece returns any piece u could send d, or -1.
func (e *engine) usefulPiece(u, d *node) int {
	for i := 0; i < e.totalPieces; i++ {
		if !d.pieces[i] && d.incoming[i] == nil && e.has(u, i) {
			return i
		}
	}
	return -1
}

// pickRarest returns the eligible piece with the fewest online copies
// (rarest-first), breaking ties uniformly at random. Under the
// RandomPieceSelection ablation every eligible piece is a tie.
func (e *engine) pickRarest(u, d *node) int {
	best := math.MaxInt
	var ties []int
	for i := 0; i < e.totalPieces; i++ {
		if d.pieces[i] || d.incoming[i] != nil || !e.has(u, i) {
			continue
		}
		c := 0
		if !e.cfg.RandomPieceSelection {
			c = e.copies[i]
		}
		if c < best {
			best = c
			ties = ties[:0]
			ties = append(ties, i)
		} else if c == best {
			ties = append(ties, i)
		}
	}
	if len(ties) == 0 {
		return -1
	}
	return ties[e.rng.Intn(len(ties))]
}

// targetRate is the per-transfer rate under endpoint fair sharing: the
// uploader splits its capacity across its uploads and the downloader
// splits its (possibly infinite) download cap across its downloads; the
// transfer moves at the smaller share.
func (e *engine) targetRate(t *transfer) float64 {
	up := t.up.uploadCap / float64(len(t.up.outgoing))
	down := math.Inf(1)
	if !math.IsInf(t.down.downloadCap, 1) && len(t.down.incoming) > 0 {
		down = t.down.downloadCap / float64(len(t.down.incoming))
	}
	return math.Min(up, down)
}

// updateRates refreshes every transfer touching n (its uploads and its
// downloads), folding in progress made at the old rates and
// rescheduling completions. Rate changes are local to the two endpoints
// of each transfer, so refreshing both endpoints of a changed transfer
// suffices.
func (e *engine) updateRates(n *node) {
	now := e.sim.Now()
	refresh := func(t *transfer) {
		if t.ev != nil {
			t.remaining -= t.rate * (now - t.lastUpdate)
			if t.remaining < 0 {
				t.remaining = 0
			}
			e.sim.Cancel(t.ev)
		}
		t.rate = e.targetRate(t)
		t.lastUpdate = now
		tt := t
		t.ev = e.sim.After(t.remaining/t.rate, func() { e.completeTransfer(tt) })
	}
	for _, t := range n.outgoing {
		refresh(t)
	}
	if len(n.incoming) > 0 {
		// Deterministic order for the map.
		pieces := make([]int, 0, len(n.incoming))
		for piece := range n.incoming {
			pieces = append(pieces, piece)
		}
		sort.Ints(pieces)
		for _, piece := range pieces {
			refresh(n.incoming[piece])
		}
	}
}

// removeTransfer unlinks t from both endpoints without rate updates.
func (e *engine) removeTransfer(t *transfer) {
	if t.ev != nil {
		e.sim.Cancel(t.ev)
		t.ev = nil
	}
	for i, o := range t.up.outgoing {
		if o == t {
			t.up.outgoing = append(t.up.outgoing[:i], t.up.outgoing[i+1:]...)
			break
		}
	}
	if t.down.incoming[t.piece] == t {
		delete(t.down.incoming, t.piece)
	}
	if t.down.incomingFrom[t.up.id] > 0 {
		t.down.incomingFrom[t.up.id]--
		if t.down.incomingFrom[t.up.id] == 0 {
			delete(t.down.incomingFrom, t.up.id)
		}
	}
}

// progressedKB returns how much of the piece t has moved so far.
func (e *engine) progressedKB(t *transfer) float64 {
	rem := t.remaining
	if t.ev != nil {
		rem -= t.rate * (e.sim.Now() - t.lastUpdate)
	}
	if rem < 0 {
		rem = 0
	}
	done := e.pieceKB - rem
	if done < 0 {
		done = 0
	}
	return done
}

// abortTransfer cancels t mid-flight (partial piece data is discarded,
// as a real client would re-request the piece).
func (e *engine) abortTransfer(t *transfer) {
	e.wastedKB += e.progressedKB(t)
	e.removeTransfer(t)
	e.updateRates(t.up)
	e.updateRates(t.down)
}

func (e *engine) completeTransfer(t *transfer) {
	t.ev = nil
	e.deliveredKB += e.pieceKB
	e.removeTransfer(t)
	d := t.down
	if !d.pieces[t.piece] {
		d.pieces[t.piece] = true
		d.have++
		d.lastProgress = e.sim.Now()
		e.copies[t.piece]++
		if e.copies[t.piece] == 1 {
			e.missing--
		}
	}
	e.updateRates(t.up)
	e.updateRates(d)
	if d.have == e.totalPieces {
		e.completePeer(d)
	}
	e.refreshAvailability()
	// The uploader freed a slot; the downloader may now serve its new
	// piece to others (or, having departed, these become no-ops).
	e.tryStartAll(t.up)
	e.tryStartAll(d)
}

func (e *engine) completePeer(d *node) {
	e.records[d.recIdx].Complete = e.sim.Now()
	// Any residual incoming bookkeeping is gone by construction: the last
	// piece just landed and duplicates are never scheduled.
	if e.cfg.PublisherMode == PublisherUntilFirstCompletion && !e.firstCompletionSeen {
		e.firstCompletionSeen = true
		e.publisherOff()
	}
	stay := e.cfg.DepartureLagSeconds
	if e.cfg.LingerMeanSeconds > 0 {
		stay += e.rng.ExpFloat64() * e.cfg.LingerMeanSeconds
	}
	if stay > 0 {
		e.sim.After(stay, func() { e.departPeer(d) })
		return
	}
	e.departPeer(d)
}

// ---------------------------------------------------------------------------
// Availability accounting.

func (e *engine) refreshAvailability() {
	now := e.sim.Now()
	avail := e.publisher.online || e.missing == 0
	if avail == e.available {
		return
	}
	if avail {
		e.availStart = now
	} else {
		e.avail = append(e.avail, dist.Interval{Start: e.availStart, End: now})
	}
	e.available = avail
}

func (e *engine) finish() *Result {
	now := e.cfg.Horizon
	if e.available {
		e.avail = append(e.avail, dist.Interval{Start: e.availStart, End: now})
	}
	if e.publisher.online {
		e.pubSessions = append(e.pubSessions, dist.Interval{Start: e.pubOnAt, End: now})
	}
	return &Result{
		Config:             e.cfg,
		Records:            e.records,
		PublisherSessions:  dist.MergeIntervals(e.pubSessions),
		AvailableIntervals: dist.MergeIntervals(e.avail),
		TotalPieces:        e.totalPieces,
		Horizon:            e.cfg.Horizon,
		DeliveredKB:        e.deliveredKB,
		WastedKB:           e.wastedKB,
	}
}
