package swarm

import (
	"math"
	"testing"

	"swarmavail/internal/dist"
)

func TestDeliveredBytesAccounting(t *testing.T) {
	// Always-on publisher, one peer: exactly the content volume moves
	// (16 pieces × 256 KB) and nothing is wasted.
	c := oneFileConfig(41)
	c.Files[0].Lambda = 1e-9
	c.Arrivals = dist.NewTraceArrivals([]float64{50})
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount() != 1 {
		t.Fatal("peer did not complete")
	}
	want := float64(res.TotalPieces) * 256
	if math.Abs(res.DeliveredKB-want) > 1e-9 {
		t.Fatalf("delivered %v KB, want %v", res.DeliveredKB, want)
	}
	if res.WastedKB != 0 {
		t.Fatalf("wasted %v KB in a clean run", res.WastedKB)
	}
}

func TestDeliveredBytesLowerBound(t *testing.T) {
	// Every completed peer received the whole content.
	c := oneFileConfig(43)
	c.Horizon = 4000
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	min := float64(res.CompletedCount()) * float64(res.TotalPieces) * 256
	if res.DeliveredKB < min-1e-6 {
		t.Fatalf("delivered %v KB below completion floor %v", res.DeliveredKB, min)
	}
}

func TestWastedBytesOnPublisherChurn(t *testing.T) {
	// An on/off publisher aborts transfers mid-piece: waste must appear.
	c := oneFileConfig(47)
	c.PublisherMode = PublisherOnOff
	c.PublisherOn = dist.NewExponentialFromMean(60) // short sessions: many aborts
	c.PublisherOff = dist.NewExponentialFromMean(120)
	c.Files[0].Lambda = 1.0 / 40
	c.Horizon = 6000
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.WastedKB <= 0 {
		t.Fatal("publisher churn produced no waste")
	}
	// Waste is bounded by one piece per abort and must stay a modest
	// fraction of useful traffic in a functioning swarm.
	if res.WastedKB > res.DeliveredKB {
		t.Fatalf("waste %v exceeds useful traffic %v", res.WastedKB, res.DeliveredKB)
	}
}

func TestTrafficOverheadGrowsWithBundleSize(t *testing.T) {
	// A peer comes for one file but downloads the whole bundle: the
	// traffic multiplier approaches K.
	overhead := func(k int) float64 {
		files := make([]FileSpec, k)
		for i := range files {
			files[i] = FileSpec{SizeKB: 2000, Lambda: 1.0 / 100}
		}
		res, err := Run(Config{
			Seed:                int64(50 + k),
			Files:               files,
			PeerUpload:          dist.Deterministic{Value: 50},
			PublisherUploadKBps: 100,
			PublisherMode:       PublisherAlwaysOn,
			Horizon:             6000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TrafficOverhead()
	}
	o1 := overhead(1)
	o4 := overhead(4)
	if math.Abs(o1-1) > 0.25 {
		t.Fatalf("K=1 overhead %v, want ≈1", o1)
	}
	if o4 < 3 || o4 > 5 {
		t.Fatalf("K=4 overhead %v, want ≈4", o4)
	}
}

func TestTrafficOverheadEmpty(t *testing.T) {
	r := &Result{}
	if r.TrafficOverhead() != 0 {
		t.Fatal("empty result overhead must be 0")
	}
}

func TestDownloadCapLimitsSinglePeer(t *testing.T) {
	// One peer, always-on 50 KBps publisher, but the peer can only
	// receive at 20 KBps: the download must take 16·256/20 s instead of
	// 16·256/50 s.
	c := oneFileConfig(61)
	c.Files[0].Lambda = 1e-9
	c.Arrivals = dist.NewTraceArrivals([]float64{10})
	c.PeerDownload = dist.Deterministic{Value: 20}
	c.Horizon = 3000
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount() != 1 {
		t.Fatal("peer did not complete")
	}
	want := 16.0 * 256 / 20
	if got := res.Records[0].DownloadTime(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("capped download time %v, want %v", got, want)
	}
}

func TestDownloadCapAboveUploadIsNeutral(t *testing.T) {
	// A generous download cap must not change the upload-limited result.
	base := oneFileConfig(63)
	base.Files[0].Lambda = 1e-9
	base.Arrivals = dist.NewTraceArrivals([]float64{10})
	capped := base
	capped.Arrivals = dist.NewTraceArrivals([]float64{10})
	capped.PeerDownload = dist.Deterministic{Value: 100000}
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(capped)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Records[0].DownloadTime()-r2.Records[0].DownloadTime()) > 1e-6 {
		t.Fatalf("generous cap changed the result: %v vs %v",
			r1.Records[0].DownloadTime(), r2.Records[0].DownloadTime())
	}
}

func TestAbandonment(t *testing.T) {
	// Publisher never present after the first completion; impatient
	// peers must give up instead of waiting forever.
	c := oneFileConfig(53)
	c.PublisherMode = PublisherUntilFirstCompletion
	c.Files[0].Lambda = 1.0 / 100
	c.AbandonMeanSeconds = 300
	c.Horizon = 8000
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.AbandonedCount() == 0 {
		t.Fatal("no peer abandoned despite an absent publisher")
	}
	for i, p := range res.Records {
		if p.Abandoned {
			if p.Completed() {
				t.Fatalf("record %d both completed and abandoned", i)
			}
			if math.IsInf(p.Depart, 1) {
				t.Fatalf("record %d abandoned but never departed", i)
			}
		}
	}
}

func TestAbandonmentDoesNotKillCompletions(t *testing.T) {
	// With an always-on publisher and generous patience, abandonment
	// stays rare and completions dominate.
	c := oneFileConfig(59)
	c.AbandonMeanSeconds = 3600
	c.Horizon = 4000
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount() == 0 {
		t.Fatal("nothing completed")
	}
	if res.AbandonedCount() > res.CompletedCount()/2 {
		t.Fatalf("too many abandonments: %d vs %d completions",
			res.AbandonedCount(), res.CompletedCount())
	}
	// Lingering seeds must never be hit by stale abandonment timers.
	c.LingerMeanSeconds = 200
	res, err = Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Records {
		if p.Completed() && p.Abandoned {
			t.Fatalf("record %d: completed peer marked abandoned", i)
		}
	}
}
