package swarm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"swarmavail/internal/dist"
)

// randomConfig builds a small but varied configuration from fuzz input.
func randomConfig(seed int64) Config {
	r := rand.New(rand.NewSource(seed))
	k := 1 + r.Intn(4)
	files := make([]FileSpec, k)
	for i := range files {
		files[i] = FileSpec{
			SizeKB: 500 + r.Float64()*4000,
			Lambda: 1.0 / (30 + r.Float64()*300),
		}
	}
	cfg := Config{
		Seed:                seed,
		Files:               files,
		PieceSizeKB:         float64(int(64) << r.Intn(3)), // 64..256
		PeerUpload:          dist.Deterministic{Value: 20 + r.Float64()*80},
		MaxUploads:          1 + r.Intn(5),
		PublisherUploadKBps: 40 + r.Float64()*100,
		Horizon:             500 + r.Float64()*2500,
	}
	switch r.Intn(3) {
	case 0:
		cfg.PublisherMode = PublisherAlwaysOn
	case 1:
		cfg.PublisherMode = PublisherOnOff
		cfg.PublisherOn = dist.NewExponentialFromMean(100 + r.Float64()*400)
		cfg.PublisherOff = dist.NewExponentialFromMean(100 + r.Float64()*800)
	default:
		cfg.PublisherMode = PublisherUntilFirstCompletion
	}
	if r.Intn(2) == 0 {
		cfg.LingerMeanSeconds = r.Float64() * 300
	}
	if r.Intn(2) == 0 {
		cfg.DepartureLagSeconds = r.Float64() * 30
	}
	if r.Intn(3) == 0 {
		cfg.AbandonMeanSeconds = 200 + r.Float64()*2000
	}
	if r.Intn(3) == 0 {
		cfg.RandomPieceSelection = true
	}
	if r.Intn(3) == 0 {
		cfg.ArrivalCutoff = cfg.Horizon * (0.3 + 0.5*r.Float64())
	}
	return cfg
}

// TestEngineInvariantsProperty fuzzes the engine with random
// configurations and checks the result's structural invariants — the
// swarm-level analogue of a model checker for the dispatch logic.
func TestEngineInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := randomConfig(seed)
		res, err := Run(cfg)
		if err != nil {
			t.Logf("seed %d: run failed: %v", seed, err)
			return false
		}
		// Records in arrival order, lifecycle ordered, classes valid.
		prev := -1.0
		for i, p := range res.Records {
			if p.Arrive < prev {
				t.Logf("seed %d: record %d out of order", seed, i)
				return false
			}
			prev = p.Arrive
			if p.Class < 0 || p.Class >= len(cfg.Files) {
				t.Logf("seed %d: record %d class %d", seed, i, p.Class)
				return false
			}
			if p.Completed() && p.Complete < p.Arrive {
				t.Logf("seed %d: record %d completes before arrival", seed, i)
				return false
			}
			if !math.IsInf(p.Depart, 1) {
				if p.Depart > res.Horizon+1e-9 {
					t.Logf("seed %d: record %d departs after horizon", seed, i)
					return false
				}
				if p.Completed() && p.Depart < p.Complete {
					t.Logf("seed %d: record %d departs before completing", seed, i)
					return false
				}
				if !p.Completed() && !p.Abandoned && cfg.AbandonMeanSeconds == 0 {
					t.Logf("seed %d: record %d departed incomplete without abandonment", seed, i)
					return false
				}
			}
			if p.Abandoned && p.Completed() {
				t.Logf("seed %d: record %d both outcomes", seed, i)
				return false
			}
		}
		// Intervals sorted, disjoint, inside [0, horizon].
		for name, ivs := range map[string][]dist.Interval{
			"availability": res.AvailableIntervals,
			"publisher":    res.PublisherSessions,
		} {
			end := -1.0
			for _, iv := range ivs {
				if iv.Start < 0 || iv.End > res.Horizon+1e-9 || iv.End <= iv.Start {
					t.Logf("seed %d: bad %s interval %+v", seed, name, iv)
					return false
				}
				if iv.Start <= end {
					t.Logf("seed %d: %s intervals overlap", seed, name)
					return false
				}
				end = iv.End
			}
		}
		// Content availability can never be below publisher availability.
		if res.AvailabilityFraction() < res.PublisherAvailabilityFraction()-1e-9 {
			t.Logf("seed %d: availability %v < publisher %v", seed,
				res.AvailabilityFraction(), res.PublisherAvailabilityFraction())
			return false
		}
		// Traffic accounting: delivered covers completions; nothing negative.
		floor := float64(res.CompletedCount()*res.TotalPieces) * cfg.withDefaults().PieceSizeKB
		if res.DeliveredKB < floor-1e-6 || res.WastedKB < 0 {
			t.Logf("seed %d: traffic accounting broken: %v < %v (wasted %v)",
				seed, res.DeliveredKB, floor, res.WastedKB)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
