package swarm

import (
	"testing"

	"swarmavail/internal/obs"
)

// TestRunEmitsMetrics checks that a run with a registry configured
// lands the swarm_sim_* series, that counters accumulate across runs,
// and that metrics do not perturb determinism.
func TestRunEmitsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := oneFileConfig(7)
	cfg.Metrics = reg
	res1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("swarm_sim_runs_total"); v != 1 {
		t.Errorf("runs = %v, want 1", v)
	}
	if v, _ := reg.Value("swarm_sim_events_total"); v == 0 {
		t.Error("no events counted")
	}
	if v, _ := reg.Value("swarm_sim_arrivals_total"); v != float64(len(res1.Records)) {
		t.Errorf("arrivals = %v, want %d", v, len(res1.Records))
	}
	if v, _ := reg.Value("swarm_sim_completions_total"); v != float64(res1.CompletedCount()) {
		t.Errorf("completions = %v, want %d", v, res1.CompletedCount())
	}
	if v, _ := reg.Value("swarm_sim_busy_periods_total"); v != float64(len(res1.AvailableIntervals)) {
		t.Errorf("busy periods = %v, want %d", v, len(res1.AvailableIntervals))
	}
	if v, _ := reg.Value("swarm_sim_delivered_kb"); v != res1.DeliveredKB {
		t.Errorf("delivered = %v, want %v", v, res1.DeliveredKB)
	}
	if h := reg.Histogram("swarm_sim_run_seconds", obs.LatencyBuckets); h.Count() != 1 {
		t.Errorf("run duration observations = %d, want 1", h.Count())
	}
	if v, _ := reg.Value("swarm_sim_events_per_second"); v <= 0 {
		t.Errorf("events/sec = %v, want > 0", v)
	}

	// Second run accumulates.
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("swarm_sim_runs_total"); v != 2 {
		t.Errorf("runs after second = %v, want 2", v)
	}

	// Same seed without a registry produces the identical result.
	bare := oneFileConfig(7)
	res2, err := Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Records) != len(res1.Records) || res2.DeliveredKB != res1.DeliveredKB {
		t.Errorf("metrics perturbed determinism: %d/%v vs %d/%v",
			len(res2.Records), res2.DeliveredKB, len(res1.Records), res1.DeliveredKB)
	}
}
