// Package swarm is a block-level discrete-event simulator of a
// BitTorrent-like swarm: pieces, upload-capacity sharing, rarest-first
// piece selection, an intermittently available publisher, Poisson or
// trace-driven peer arrivals, selfish departures or altruistic lingering.
//
// It is the substitute for the paper's PlanetLab deployment of the
// mainline client (§4): it reproduces the macroscopic dynamics the
// experiments measure — busy periods sustained by peers, blocked leechers
// when the publisher holds the last copy of a piece, flash departures
// when it returns, and download-time-versus-bundle-size curves — while
// remaining deterministic and laptop-fast.
//
// One Config describes one torrent. A bundle is simply a torrent whose
// content is the concatenation of several files; peers always fetch the
// whole content (pure bundling, as in the paper's experiments), but each
// peer is tagged with the file class that brought it to the swarm so that
// per-file download times can be reported (§4.3.3).
package swarm

import (
	"fmt"
	"math"
	"sort"

	"swarmavail/internal/dist"
	"swarmavail/internal/obs"
)

// FileSpec describes one file carried by the torrent.
type FileSpec struct {
	// SizeKB is the file size in kilobytes.
	SizeKB float64
	// Lambda is the arrival rate (1/s) of peers whose primary interest is
	// this file. The torrent's aggregate peer arrival rate is the sum
	// over files, matching the paper's bundling demand model.
	Lambda float64
}

// PublisherMode selects the publisher's availability pattern.
type PublisherMode int

const (
	// PublisherAlwaysOn keeps the publisher online for the whole run.
	PublisherAlwaysOn PublisherMode = iota
	// PublisherOnOff alternates online/offline sojourns drawn from
	// Config.PublisherOn / Config.PublisherOff (starting online).
	PublisherOnOff
	// PublisherUntilFirstCompletion keeps the publisher online until the
	// first peer completes its download, then takes it offline for good —
	// the seedless-sustainability experiment of §4.2 (Figure 4).
	PublisherUntilFirstCompletion
)

// String implements fmt.Stringer.
func (m PublisherMode) String() string {
	switch m {
	case PublisherAlwaysOn:
		return "always-on"
	case PublisherOnOff:
		return "on-off"
	case PublisherUntilFirstCompletion:
		return "until-first-completion"
	default:
		return fmt.Sprintf("PublisherMode(%d)", int(m))
	}
}

// Config parameterises one simulation run.
type Config struct {
	// Seed drives all randomness in the run.
	Seed int64
	// Files is the content carried by the torrent (≥ 1 entry).
	Files []FileSpec
	// PieceSizeKB is the piece size; 256 KB (the mainline default) if 0.
	PieceSizeKB float64
	// PeerUpload is the distribution of per-peer upload capacity in KBps.
	// Use dist.Deterministic for the paper's homogeneous experiments and
	// dist.BitTyrantUploadCapacities() for §4.3.2.
	PeerUpload dist.Dist
	// PeerDownload optionally caps per-peer download capacity in KBps
	// (nil = unconstrained, the upload-constrained idealisation). Each
	// transfer then moves at min(uploader share, downloader share),
	// which models access-link asymmetry (PlanetLab hosts were ≈10 Mbps).
	PeerDownload dist.Dist
	// MaxUploads caps a node's concurrent outgoing transfers (the unchoke
	// slot count); 4 if 0.
	MaxUploads int
	// PublisherUploadKBps is the publisher's upload capacity.
	PublisherUploadKBps float64
	// PublisherMode, PublisherOn, PublisherOff configure publisher
	// availability; On/Off are required only for PublisherOnOff.
	PublisherMode PublisherMode
	PublisherOn   dist.Dist
	PublisherOff  dist.Dist
	// LingerMeanSeconds is the mean (exponential) time peers remain as
	// seeds after completing; 0 means selfish immediate departure.
	LingerMeanSeconds float64
	// DepartureLagSeconds is a small deterministic delay between
	// completing and disconnecting, modelling real client shutdown and
	// announce latency. It matters a great deal: with whole-piece
	// transfers and a zero lag, a peer that receives the last scarce
	// piece completes and vanishes before relaying it, so post-idle
	// backlogs drain at publisher speed only. Real BitTorrent clients
	// relay scarce blocks during their final seconds online, which is
	// what makes the paper's "flash departures" fast. The §4.3
	// experiment drivers set ≈15 s.
	DepartureLagSeconds float64
	// Horizon is the simulated duration in seconds.
	Horizon float64
	// ArrivalCutoff stops admitting peers after this time while the
	// simulation continues to Horizon (0 means arrivals continue to the
	// horizon). The §4.3 experiments use 1200 s of arrivals but measure
	// the download time of every admitted peer, so the run must outlive
	// the last straggler's wait.
	ArrivalCutoff float64
	// Arrivals optionally overrides the aggregate peer arrival process
	// (e.g. a flash crowd or a recorded trace). When nil, a Poisson
	// process with rate Σ Lambda is used. Peer classes are always drawn
	// proportionally to the file Lambdas.
	Arrivals dist.ArrivalProcess
	// MaxArrivals is a safety cap on admitted peers (100000 if 0).
	MaxArrivals int
	// RandomPieceSelection replaces rarest-first with uniform-random
	// piece selection — the ablation target for the piece-selection
	// design choice (rarest-first is what keeps piece populations
	// balanced enough for peer-sustained busy periods).
	RandomPieceSelection bool
	// AbandonMeanSeconds makes peers impatient (§3.3.1 semantics in the
	// testbed): a leecher that has not completed after an exponential
	// time with this mean gives up and departs. 0 means peers are
	// patient and wait indefinitely.
	AbandonMeanSeconds float64
	// Metrics is an optional observability registry; each Run adds to
	// the swarm_sim_* series on it (runs, events, arrivals,
	// completions, busy periods, delivered/wasted volume, wall-clock
	// run time and event throughput). Does not affect determinism.
	Metrics *obs.Registry
}

func (c *Config) withDefaults() Config {
	cc := *c
	if cc.PieceSizeKB == 0 {
		cc.PieceSizeKB = 256
	}
	if cc.MaxUploads == 0 {
		cc.MaxUploads = 4
	}
	if cc.MaxArrivals == 0 {
		cc.MaxArrivals = 100000
	}
	return cc
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	cc := c.withDefaults()
	if len(cc.Files) == 0 {
		return fmt.Errorf("swarm: at least one file required")
	}
	var lambda float64
	for i, f := range cc.Files {
		if f.SizeKB <= 0 {
			return fmt.Errorf("swarm: file %d has non-positive size", i)
		}
		if f.Lambda < 0 {
			return fmt.Errorf("swarm: file %d has negative arrival rate", i)
		}
		lambda += f.Lambda
	}
	if lambda <= 0 && cc.Arrivals == nil {
		return fmt.Errorf("swarm: aggregate arrival rate must be positive")
	}
	if cc.PieceSizeKB <= 0 {
		return fmt.Errorf("swarm: piece size must be positive")
	}
	if cc.PeerUpload == nil {
		return fmt.Errorf("swarm: PeerUpload distribution required")
	}
	if cc.PublisherUploadKBps <= 0 {
		return fmt.Errorf("swarm: publisher upload capacity must be positive")
	}
	if cc.PublisherMode == PublisherOnOff && (cc.PublisherOn == nil || cc.PublisherOff == nil) {
		return fmt.Errorf("swarm: PublisherOn/PublisherOff required for on-off mode")
	}
	if cc.Horizon <= 0 {
		return fmt.Errorf("swarm: horizon must be positive")
	}
	if cc.MaxUploads < 1 {
		return fmt.Errorf("swarm: MaxUploads must be ≥ 1")
	}
	return nil
}

// TotalSizeKB returns the content size of the torrent.
func (c *Config) TotalSizeKB() float64 {
	var s float64
	for _, f := range c.Files {
		s += f.SizeKB
	}
	return s
}

// NumPieces returns the number of pieces the content divides into.
func (c *Config) NumPieces() int {
	cc := c.withDefaults()
	n := int(math.Ceil(cc.TotalSizeKB() / cc.PieceSizeKB))
	if n < 1 {
		n = 1
	}
	return n
}

// AggregateLambda returns Σ Lambda over the files.
func (c *Config) AggregateLambda() float64 {
	var l float64
	for _, f := range c.Files {
		l += f.Lambda
	}
	return l
}

// PeerRecord is the lifecycle of one peer, mirroring the per-client
// traces the paper's controller collected.
type PeerRecord struct {
	// ID is the peer's admission index (0-based, in arrival order).
	ID int
	// Class is the index of the file whose demand generated this peer.
	Class int
	// Arrive is the arrival time (s).
	Arrive float64
	// Complete is the download completion time, or +Inf if the peer had
	// not finished by the horizon.
	Complete float64
	// Depart is the departure time (completion or end of lingering), or
	// +Inf if the peer was still online at the horizon.
	Depart float64
	// UploadKBps is the peer's upload capacity.
	UploadKBps float64
	// Abandoned reports that the peer gave up before completing (only
	// possible with Config.AbandonMeanSeconds > 0).
	Abandoned bool
}

// Completed reports whether the peer finished its download in the run.
func (p PeerRecord) Completed() bool { return !math.IsInf(p.Complete, 1) }

// DownloadTime returns Complete − Arrive (or +Inf if incomplete).
func (p PeerRecord) DownloadTime() float64 { return p.Complete - p.Arrive }

// Result aggregates everything a run produced.
type Result struct {
	// Config echoes the (defaulted) configuration of the run.
	Config Config
	// Records holds one entry per admitted peer, in arrival order.
	Records []PeerRecord
	// PublisherSessions are the publisher's online intervals.
	PublisherSessions []dist.Interval
	// AvailableIntervals are the intervals during which the content was
	// available: the publisher online, or every piece held by at least
	// one online peer.
	AvailableIntervals []dist.Interval
	// TotalPieces is the piece count of the content.
	TotalPieces int
	// Horizon is the simulated duration.
	Horizon float64
	// DeliveredKB is the total volume of completed piece transfers — the
	// network traffic the swarm generated (the paper's future-work
	// question about bundling's traffic cost).
	DeliveredKB float64
	// WastedKB is the volume moved by transfers that were aborted
	// mid-piece (publisher departures, peer churn) and discarded.
	WastedKB float64
}

// AbandonedCount returns the number of peers that gave up.
func (r *Result) AbandonedCount() int {
	n := 0
	for _, p := range r.Records {
		if p.Abandoned {
			n++
		}
	}
	return n
}

// TrafficOverhead returns DeliveredKB divided by the volume peers
// actually came for (completed peers × one file of interest each): the
// bundling traffic multiplier. It returns 0 when nothing completed.
func (r *Result) TrafficOverhead() float64 {
	completed := r.CompletedCount()
	if completed == 0 || len(r.Config.Files) == 0 {
		return 0
	}
	var wanted float64
	for _, p := range r.Records {
		if p.Completed() {
			wanted += r.Config.Files[p.Class].SizeKB
		}
	}
	if wanted == 0 {
		return 0
	}
	return r.DeliveredKB / wanted
}

// DownloadTimes returns the download times of all completed peers, in
// completion order.
func (r *Result) DownloadTimes() []float64 {
	var out []float64
	for _, p := range r.Records {
		if p.Completed() {
			out = append(out, p.DownloadTime())
		}
	}
	return out
}

// DownloadTimesByClass returns completed download times for peers of one
// file class.
func (r *Result) DownloadTimesByClass(class int) []float64 {
	var out []float64
	for _, p := range r.Records {
		if p.Class == class && p.Completed() {
			out = append(out, p.DownloadTime())
		}
	}
	return out
}

// CompletionTimes returns the sorted times at which downloads completed —
// the series plotted in Figure 4.
func (r *Result) CompletionTimes() []float64 {
	var out []float64
	for _, p := range r.Records {
		if p.Completed() {
			out = append(out, p.Complete)
		}
	}
	sort.Float64s(out)
	return out
}

// CompletedCount returns the number of peers served within the horizon.
func (r *Result) CompletedCount() int {
	n := 0
	for _, p := range r.Records {
		if p.Completed() {
			n++
		}
	}
	return n
}

// AvailabilityFraction returns the fraction of the horizon during which
// the content was available.
func (r *Result) AvailabilityFraction() float64 {
	return dist.AvailableFraction(r.AvailableIntervals, r.Horizon)
}

// PublisherAvailabilityFraction returns the fraction of the horizon the
// publisher was online (the §2 seed-availability statistic).
func (r *Result) PublisherAvailabilityFraction() float64 {
	return dist.AvailableFraction(r.PublisherSessions, r.Horizon)
}
