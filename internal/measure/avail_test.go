package measure

import (
	"math"
	"sort"
	"testing"

	"swarmavail/internal/dist"
	"swarmavail/internal/trace"
)

func TestSharedAvailabilityDefinitions(t *testing.T) {
	if !IsFullyAvailable(1) || !IsFullyAvailable(1 - 1e-12) {
		t.Fatal("availability of 1 (up to eps) must count as fully available")
	}
	if IsFullyAvailable(0.999) {
		t.Fatal("0.999 must not count as fully available")
	}
	if !IsMostlyUnavailable(0.2) || IsMostlyUnavailable(0.21) {
		t.Fatal("mostly-unavailable boundary must sit at 0.2 inclusive")
	}

	tr := trace.SwarmTrace{
		SeedSessions:  []dist.Interval{{Start: 0, End: 15}, {Start: 100, End: 110}},
		MonitoredDays: 200,
	}
	fm, full := Availability(tr)
	if fm != tr.FirstMonthAvailability() || full != tr.FullAvailability() {
		t.Fatalf("Availability() = %v/%v, trace methods %v/%v",
			fm, full, tr.FirstMonthAvailability(), tr.FullAvailability())
	}
}

func TestHeadlinesMatchesStreamingForm(t *testing.T) {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(500, 11))
	batch := Headlines(traces)
	fm, full := Availabilities(traces)
	streamed := HeadlinesFromAvailabilities(fm, full)
	if batch != streamed {
		t.Fatalf("batch %+v != streamed %+v", batch, streamed)
	}
	if batch.Swarms != 500 {
		t.Fatalf("swarms = %d", batch.Swarms)
	}

	// The sketch quantile must bracket the exact ⌈qn⌉-th order
	// statistic within one bin width (the sketch's accuracy contract).
	skFM, skFull := AvailabilitySketches(traces)
	sortedFM := append([]float64(nil), fm...)
	sortedFull := append([]float64(nil), full...)
	sort.Float64s(sortedFM)
	sort.Float64s(sortedFull)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		rank := int(math.Ceil(q * float64(len(sortedFM))))
		exactFM, exactFull := sortedFM[rank-1], sortedFull[rank-1]
		if got := skFM.Quantile(q); got < exactFM-1e-12 || got > exactFM+skFM.Resolution()+1e-12 {
			t.Errorf("first-month q%v: sketch %v vs exact order stat %v", q, got, exactFM)
		}
		if got := skFull.Quantile(q); got < exactFull-1e-12 || got > exactFull+skFull.Resolution()+1e-12 {
			t.Errorf("full q%v: sketch %v vs exact order stat %v", q, got, exactFull)
		}
	}
}

func TestHeadlinesFromAvailabilitiesEdges(t *testing.T) {
	if h := HeadlinesFromAvailabilities(nil, nil); h.Swarms != 0 {
		t.Fatalf("empty input: %+v", h)
	}
	// Mismatched lengths are refused rather than miscounted.
	if h := HeadlinesFromAvailabilities([]float64{1}, nil); h.FullyAvailableFirstMonth != 0 {
		t.Fatalf("mismatched input: %+v", h)
	}
}
