package measure

import (
	"testing"

	"swarmavail/internal/trace"
)

func snap(group int, bundle, seeded bool) trace.Snapshot {
	m := trace.SwarmMeta{Category: trace.TV, GroupID: group}
	if bundle {
		m.Files = []trace.FileMeta{{Name: "e1.avi"}, {Name: "e2.avi"}}
	} else {
		m.Files = []trace.FileMeta{{Name: "e1.avi"}}
	}
	s := trace.Snapshot{Meta: m}
	if seeded {
		s.Seeds = 1
	}
	return s
}

func TestCaseStudiesCounting(t *testing.T) {
	snaps := []trace.Snapshot{
		snap(1, true, true),
		snap(1, true, true),
		snap(1, false, true),
		snap(1, true, false),
		snap(1, false, false),
		snap(2, false, true),
		{Meta: trace.SwarmMeta{Category: trace.Music}}, // ungrouped: ignored
	}
	all := CaseStudies(snaps)
	if len(all) != 2 {
		t.Fatalf("groups: %d", len(all))
	}
	cs := all[1]
	if cs.Swarms != 5 || cs.Available != 3 || cs.AvailableBundles != 2 ||
		cs.Unavailable != 2 || cs.UnavailableBundles != 1 {
		t.Fatalf("case study wrong: %+v", cs)
	}
	if got := cs.BundleShareAvailable(); got != 2.0/3 {
		t.Fatalf("available bundle share %v", got)
	}
	if got := cs.BundleShareUnavailable(); got != 0.5 {
		t.Fatalf("unavailable bundle share %v", got)
	}
	best, ok := LargestCaseStudy(snaps)
	if !ok || best.GroupID != 1 {
		t.Fatalf("largest: %+v %v", best, ok)
	}
}

func TestCaseStudyEmpty(t *testing.T) {
	if _, ok := LargestCaseStudy(nil); ok {
		t.Fatal("empty dataset produced a case study")
	}
	zero := CaseStudy{}
	if zero.BundleShareAvailable() != 0 || zero.BundleShareUnavailable() != 0 {
		t.Fatal("zero case study shares must be 0")
	}
}

func TestFriendsStyleCorrelationOnSyntheticCensus(t *testing.T) {
	// The paper's §2.3.2 observation on the synthetic census: across TV
	// franchises, bundles are strongly overrepresented among the
	// available swarms.
	snaps := trace.GenerateSnapshot(trace.SnapshotConfig{Seed: 71, NumSwarms: 60000})
	or := BundlingAvailabilityOddsRatio(snaps, trace.TV)
	if or < 1.5 {
		t.Fatalf("bundling/availability odds ratio %v, want clearly > 1", or)
	}
	// The biggest franchise must have enough swarms for a Friends-style
	// table and show the same direction.
	best, ok := LargestCaseStudy(snaps)
	if !ok {
		t.Fatal("no franchises generated")
	}
	if best.Swarms < 30 {
		t.Fatalf("largest franchise has only %d swarms", best.Swarms)
	}
	if best.Available > 0 && best.Unavailable > 0 {
		if best.BundleShareAvailable() <= best.BundleShareUnavailable() {
			t.Fatalf("bundle share not higher among available: %+v", best)
		}
	}
}

func TestOddsRatioDegenerate(t *testing.T) {
	// All seeded singles: odds ratio undefined → 0.
	snaps := []trace.Snapshot{snap(1, false, true)}
	if got := BundlingAvailabilityOddsRatio(snaps, trace.TV); got != 0 {
		t.Fatalf("degenerate odds ratio %v", got)
	}
}
