package measure

import (
	"sort"

	"swarmavail/internal/trace"
)

// CaseStudy is the §2.3.2 per-franchise analysis ("there were a total of
// 52 swarms associated with [Friends]. Among them, 23 had one or more
// seeds available … The 23 available swarms consisted of 21 bundles,
// whereas the 29 unavailable swarms consisted of only 7 bundles.").
type CaseStudy struct {
	GroupID int
	// Swarms is the franchise's swarm count.
	Swarms int
	// Available/Unavailable split by seed presence; the Bundles fields
	// count how many of each side are bundles.
	Available          int
	AvailableBundles   int
	Unavailable        int
	UnavailableBundles int
}

// BundleShareAvailable returns the fraction of available swarms that are
// bundles (0 when none are available).
func (c CaseStudy) BundleShareAvailable() float64 {
	if c.Available == 0 {
		return 0
	}
	return float64(c.AvailableBundles) / float64(c.Available)
}

// BundleShareUnavailable returns the fraction of unavailable swarms that
// are bundles.
func (c CaseStudy) BundleShareUnavailable() float64 {
	if c.Unavailable == 0 {
		return 0
	}
	return float64(c.UnavailableBundles) / float64(c.Unavailable)
}

// CaseStudies groups a snapshot dataset by franchise (GroupID > 0) and
// computes the availability-by-bundling split for each.
func CaseStudies(snaps []trace.Snapshot) map[int]CaseStudy {
	out := map[int]CaseStudy{}
	for _, s := range snaps {
		g := s.Meta.GroupID
		if g == 0 {
			continue
		}
		cs := out[g]
		cs.GroupID = g
		cs.Swarms++
		bundle := IsBundle(s.Meta)
		if s.Seeds > 0 {
			cs.Available++
			if bundle {
				cs.AvailableBundles++
			}
		} else {
			cs.Unavailable++
			if bundle {
				cs.UnavailableBundles++
			}
		}
		out[g] = cs
	}
	return out
}

// LargestCaseStudy returns the franchise with the most swarms — the
// synthetic analogue of picking "Friends" — breaking ties by GroupID.
func LargestCaseStudy(snaps []trace.Snapshot) (CaseStudy, bool) {
	all := CaseStudies(snaps)
	if len(all) == 0 {
		return CaseStudy{}, false
	}
	ids := make([]int, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	best := all[ids[0]]
	for _, id := range ids[1:] {
		if all[id].Swarms > best.Swarms {
			best = all[id]
		}
	}
	return best, true
}

// BundlingAvailabilityOddsRatio aggregates across all franchises of a
// category: the odds that a bundle has a seed divided by the odds that a
// single-file swarm has one. Values well above 1 reproduce the paper's
// "strong correlation between bundling and higher availability".
func BundlingAvailabilityOddsRatio(snaps []trace.Snapshot, cat trace.Category) float64 {
	var ba, bu, sa, su float64 // bundle-available, bundle-unavailable, single-…
	for _, s := range snaps {
		if s.Meta.Category != cat {
			continue
		}
		bundle := IsBundle(s.Meta)
		avail := s.Seeds > 0
		switch {
		case bundle && avail:
			ba++
		case bundle && !avail:
			bu++
		case !bundle && avail:
			sa++
		default:
			su++
		}
	}
	if bu == 0 || sa == 0 {
		return 0
	}
	return (ba / bu) / (sa / su)
}
