package measure

import (
	"swarmavail/internal/stats"
	"swarmavail/internal/trace"
)

// This file holds the shared availability definitions used by both the
// offline batch analysis (this package) and the online ingestion engine
// (internal/ingest). Keeping them in one place guarantees the streaming
// statistics converge to exactly the numbers the §2 reproduction
// reports.

const (
	// FirstMonthDays is the paper's "first month" availability window.
	FirstMonthDays = 30.0
	// FullAvailabilityEps is the tolerance under which a first-month
	// availability counts as "fully seeded" (guards float roundoff in
	// interval arithmetic).
	FullAvailabilityEps = 1e-9
	// LowAvailabilityThreshold is the whole-trace availability at or
	// below which a swarm counts as "unavailable most of the time"
	// (the paper's ≈80%-of-swarms headline).
	LowAvailabilityThreshold = 0.2
)

// IsFullyAvailable reports whether a first-month availability fraction
// counts as fully seeded through the first month.
func IsFullyAvailable(firstMonth float64) bool {
	return firstMonth >= 1-FullAvailabilityEps
}

// IsMostlyUnavailable reports whether a whole-trace availability
// fraction counts as unavailable at least 80% of the time.
func IsMostlyUnavailable(full float64) bool {
	return full <= LowAvailabilityThreshold
}

// Availability returns the two per-swarm availability fractions the §2
// study reports: over the first month and over the whole monitored
// window. It is the single definition both pipelines evaluate.
func Availability(t trace.SwarmTrace) (firstMonth, full float64) {
	return t.AvailabilityOver(FirstMonthDays), t.AvailabilityOver(t.MonitoredDays)
}

// HeadlinesFromAvailabilities computes StudyHeadlines from per-swarm
// availability pairs — the streaming-friendly core of Headlines.
// firstMonth and full must be parallel slices.
func HeadlinesFromAvailabilities(firstMonth, full []float64) StudyHeadlines {
	h := StudyHeadlines{Swarms: len(firstMonth)}
	if len(firstMonth) == 0 || len(firstMonth) != len(full) {
		return h
	}
	var fullFM, lowFull int
	for i := range firstMonth {
		if IsFullyAvailable(firstMonth[i]) {
			fullFM++
		}
		if IsMostlyUnavailable(full[i]) {
			lowFull++
		}
	}
	h.FullyAvailableFirstMonth = float64(fullFM) / float64(len(firstMonth))
	h.MostlyUnavailableOverall = float64(lowFull) / float64(len(full))
	return h
}

// Availabilities evaluates Availability over a dataset, returning the
// parallel per-swarm samples behind Figure 1.
func Availabilities(traces []trace.SwarmTrace) (firstMonth, full []float64) {
	firstMonth = make([]float64, 0, len(traces))
	full = make([]float64, 0, len(traces))
	for _, t := range traces {
		fm, fl := Availability(t)
		firstMonth = append(firstMonth, fm)
		full = append(full, fl)
	}
	return firstMonth, full
}

// AvailabilitySketches folds a dataset's availabilities into mergeable
// quantile sketches with the ingestion pipeline's standard geometry —
// the offline reference for online CDF convergence tests.
func AvailabilitySketches(traces []trace.SwarmTrace) (firstMonth, full *stats.QuantileSketch) {
	firstMonth = stats.NewAvailabilitySketch()
	full = stats.NewAvailabilitySketch()
	for _, t := range traces {
		fm, fl := Availability(t)
		firstMonth.Add(fm)
		full.Add(fl)
	}
	return firstMonth, full
}
