package measure

import (
	"math"
	"testing"

	"swarmavail/internal/trace"
)

func meta(cat trace.Category, title string, names ...string) trace.SwarmMeta {
	m := trace.SwarmMeta{Category: cat, Title: title}
	for _, n := range names {
		m.Files = append(m.Files, trace.FileMeta{Name: n, SizeKB: 1000})
	}
	return m
}

func TestIsBundleDetector(t *testing.T) {
	cases := []struct {
		meta trace.SwarmMeta
		want bool
	}{
		{meta(trace.Music, "album", "a.mp3", "b.mp3"), true},
		{meta(trace.Music, "single", "a.mp3"), false},
		{meta(trace.Music, "single+cover", "a.mp3", "cover.jpg"), false},
		{meta(trace.TV, "season", "e1.avi", "e2.mpg"), true},
		{meta(trace.TV, "episode", "e1.avi", "readme.txt"), false},
		{meta(trace.Books, "pack", "a.pdf", "b.djvu"), true},
		{meta(trace.Books, "one", "a.pdf"), false},
		// Movies are not classified even with many video files (DVD rip).
		{meta(trace.Movies, "dvd", "VTS_01.avi", "VTS_02.avi"), false},
		{meta(trace.Other, "misc", "a.iso", "b.iso"), false},
		// Case-insensitive extensions.
		{meta(trace.Music, "album", "A.MP3", "B.Mp3"), true},
	}
	for i, c := range cases {
		if got := IsBundle(c.meta); got != c.want {
			t.Errorf("case %d (%s): IsBundle = %v, want %v", i, c.meta.Title, got, c.want)
		}
	}
}

func TestIsCollection(t *testing.T) {
	if !IsCollection(meta(trace.Books, "Ultimate Math Collection (1)", "a.pdf")) {
		t.Fatal("collection keyword not detected")
	}
	if !IsCollection(meta(trace.Books, "my cOLLECTIOn", "a.pdf")) {
		t.Fatal("case-insensitive match failed")
	}
	if IsCollection(meta(trace.Books, "Calculus Textbook", "a.pdf")) {
		t.Fatal("false positive")
	}
}

func TestExtentOfBundlingOnSyntheticSnapshot(t *testing.T) {
	snaps := trace.GenerateSnapshot(trace.SnapshotConfig{Seed: 31, NumSwarms: 40000})
	ext := ExtentOfBundling(snaps)

	// §2.3.1 marginals: music ≈72.4%, TV ≈15.8%, books ≈10.7% bundles.
	want := map[trace.Category]float64{
		trace.Music: 0.724,
		trace.TV:    0.158,
		trace.Books: 0.107,
	}
	for cat, frac := range want {
		e := ext[cat]
		if e.Swarms < 500 {
			t.Fatalf("%v: only %d swarms", cat, e.Swarms)
		}
		if got := e.BundleFraction(); math.Abs(got-frac) > 0.03 {
			t.Errorf("%v bundle fraction %v, want ≈%v", cat, got, frac)
		}
	}
	// Collections exist among book swarms, and are a small share.
	books := ext[trace.Books]
	if books.Collections == 0 {
		t.Fatal("no collections detected")
	}
	if frac := float64(books.Collections) / float64(books.Swarms); frac > 0.05 {
		t.Fatalf("collections fraction %v too high", frac)
	}
	// Only analysed categories appear.
	if _, ok := ext[trace.Movies]; ok {
		t.Fatal("movies must not be classified")
	}
}

func TestCompareAvailabilityBooks(t *testing.T) {
	snaps := trace.GenerateSnapshot(trace.SnapshotConfig{Seed: 37, NumSwarms: 60000})
	cmp := CompareAvailability(snaps, trace.Books)
	if cmp.NAll < 2000 || cmp.NBundles < 200 {
		t.Fatalf("too few samples: %d / %d", cmp.NAll, cmp.NBundles)
	}
	// §2.3.2: 62% of all book swarms seedless vs 36% of bundled ones.
	if math.Abs(cmp.SeedlessAll-0.62) > 0.05 {
		t.Errorf("seedless all = %v, want ≈0.62", cmp.SeedlessAll)
	}
	if math.Abs(cmp.SeedlessBundles-0.36) > 0.06 {
		t.Errorf("seedless bundles = %v, want ≈0.36", cmp.SeedlessBundles)
	}
	// Demand: ≈2,578 vs ≈4,216 downloads.
	if cmp.MeanDownloadsAll < 1800 || cmp.MeanDownloadsAll > 3400 {
		t.Errorf("mean downloads (all) = %v, want ≈2578", cmp.MeanDownloadsAll)
	}
	if cmp.MeanDownloadsBundles < 3100 || cmp.MeanDownloadsBundles > 5400 {
		t.Errorf("mean downloads (bundles) = %v, want ≈4216", cmp.MeanDownloadsBundles)
	}
	if cmp.MeanDownloadsBundles <= cmp.MeanDownloadsAll {
		t.Error("bundles must out-draw the average")
	}
}

func TestCompareAvailabilityEmptyCategory(t *testing.T) {
	cmp := CompareAvailability(nil, trace.Books)
	if cmp.NAll != 0 || cmp.SeedlessAll != 0 || cmp.MeanDownloadsAll != 0 {
		t.Fatalf("empty comparison non-zero: %+v", cmp)
	}
}

func TestSeedAvailabilityCDFsFigure1(t *testing.T) {
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(20000, 41))
	firstMonth, full := SeedAvailabilityCDFs(traces)
	if firstMonth.N() != 20000 || full.N() != 20000 {
		t.Fatalf("CDF sizes %d/%d", firstMonth.N(), full.N())
	}
	// The full-trace distribution must dominate (higher CDF = less
	// available) the first-month distribution everywhere.
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		if full.At(x) < firstMonth.At(x)-0.02 {
			t.Fatalf("full CDF below first-month CDF at %v: %v vs %v",
				x, full.At(x), firstMonth.At(x))
		}
	}

	h := Headlines(traces)
	// Paper: "less than 35% of the swarms had at least one seed
	// available all the time" in the first month.
	if h.FullyAvailableFirstMonth < 0.20 || h.FullyAvailableFirstMonth > 0.37 {
		t.Errorf("fully available first month = %v, want ≈0.30±", h.FullyAvailableFirstMonth)
	}
	// Paper: "almost 80% of the swarms are unavailable 80% of the time".
	if h.MostlyUnavailableOverall < 0.68 || h.MostlyUnavailableOverall > 0.9 {
		t.Errorf("mostly unavailable overall = %v, want ≈0.8", h.MostlyUnavailableOverall)
	}
}

func TestHeadlinesEmpty(t *testing.T) {
	h := Headlines(nil)
	if h.Swarms != 0 || h.FullyAvailableFirstMonth != 0 {
		t.Fatalf("empty headlines: %+v", h)
	}
}
