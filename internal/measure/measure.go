// Package measure reimplements the paper's measurement analysis (§2) on
// trace data: seed-availability distributions (Figure 1), bundling
// detection by file-extension counting and collection keywords (§2.3.1),
// and the availability/demand comparisons between bundled and unbundled
// content (§2.3.2).
package measure

import (
	"strings"

	"swarmavail/internal/stats"
	"swarmavail/internal/trace"
)

// extSets maps each analysed category to the extensions whose
// multiplicity marks a bundle (the §2.3.1 methodology).
var extSets = map[trace.Category][]string{
	trace.Music: trace.AudioExts,
	trace.TV:    trace.VideoExts,
	trace.Books: trace.BookExts,
}

// IsBundle applies the paper's detector: a swarm in an analysed category
// is a bundle if it has two or more files with that category's known
// extensions. Categories outside music/TV/books are not classified
// (returns false), mirroring the paper's restriction.
func IsBundle(meta trace.SwarmMeta) bool {
	exts, ok := extSets[meta.Category]
	if !ok {
		return false
	}
	count := 0
	for _, f := range meta.Files {
		e := f.Ext()
		for _, want := range exts {
			if e == want {
				count++
				break
			}
		}
		if count >= 2 {
			return true
		}
	}
	return false
}

// IsCollection reports whether a (book) swarm is a keyword-titled
// collection.
func IsCollection(meta trace.SwarmMeta) bool {
	return strings.Contains(strings.ToLower(meta.Title), "collection")
}

// BundlingExtent summarises bundling within one category (§2.3.1's
// table rows).
type BundlingExtent struct {
	Category    trace.Category
	Swarms      int
	Bundles     int
	Collections int // keyword-titled collections (books)
}

// BundleFraction returns Bundles/Swarms.
func (b BundlingExtent) BundleFraction() float64 {
	if b.Swarms == 0 {
		return 0
	}
	return float64(b.Bundles) / float64(b.Swarms)
}

// ExtentOfBundling classifies a snapshot dataset per analysed category.
func ExtentOfBundling(snaps []trace.Snapshot) map[trace.Category]BundlingExtent {
	out := map[trace.Category]BundlingExtent{}
	for cat := range extSets {
		out[cat] = BundlingExtent{Category: cat}
	}
	for _, s := range snaps {
		ext, ok := out[s.Meta.Category]
		if !ok {
			continue
		}
		ext.Swarms++
		if IsBundle(s.Meta) {
			ext.Bundles++
		}
		if s.Meta.Category == trace.Books && IsCollection(s.Meta) {
			ext.Collections++
		}
		out[s.Meta.Category] = ext
	}
	return out
}

// AvailabilityByBundling compares seedlessness and demand between
// bundled and unbundled swarms of one category (§2.3.2: books, 62% vs
// 36% seedless; 2,578 vs 4,216 downloads).
type AvailabilityByBundling struct {
	Category trace.Category
	// SeedlessAll is the fraction of all swarms with zero seeds.
	SeedlessAll float64
	// SeedlessBundles is the fraction of bundles with zero seeds.
	SeedlessBundles float64
	// MeanDownloadsAll and MeanDownloadsBundles compare demand.
	MeanDownloadsAll     float64
	MeanDownloadsBundles float64
	// N counts.
	NAll, NBundles int
}

// CompareAvailability computes the §2.3.2 comparison for a category.
func CompareAvailability(snaps []trace.Snapshot, cat trace.Category) AvailabilityByBundling {
	out := AvailabilityByBundling{Category: cat}
	var seedlessAll, seedlessBundles int
	var dlAll, dlBundles stats.Accumulator
	for _, s := range snaps {
		if s.Meta.Category != cat {
			continue
		}
		out.NAll++
		dlAll.Add(float64(s.Downloads))
		if s.Seeds == 0 {
			seedlessAll++
		}
		if IsBundle(s.Meta) {
			out.NBundles++
			dlBundles.Add(float64(s.Downloads))
			if s.Seeds == 0 {
				seedlessBundles++
			}
		}
	}
	if out.NAll > 0 {
		out.SeedlessAll = float64(seedlessAll) / float64(out.NAll)
		out.MeanDownloadsAll = dlAll.Mean()
	}
	if out.NBundles > 0 {
		out.SeedlessBundles = float64(seedlessBundles) / float64(out.NBundles)
		out.MeanDownloadsBundles = dlBundles.Mean()
	}
	return out
}

// SeedAvailabilityCDFs computes Figure 1's two distributions from an
// availability study: the per-swarm seed availability over the first
// month and over the whole monitored window.
func SeedAvailabilityCDFs(traces []trace.SwarmTrace) (firstMonth, full *stats.ECDF) {
	fm, fl := Availabilities(traces)
	return stats.NewECDF(fm), stats.NewECDF(fl)
}

// StudyHeadlines extracts the two headline statistics the paper quotes
// from Figure 1: the fraction of swarms fully seeded through their first
// month, and the fraction unavailable at least 80% of the time over the
// whole trace.
type StudyHeadlines struct {
	FullyAvailableFirstMonth float64
	MostlyUnavailableOverall float64 // availability ≤ 0.2 over the full window
	Swarms                   int
}

// Headlines computes StudyHeadlines from a study dataset.
func Headlines(traces []trace.SwarmTrace) StudyHeadlines {
	fm, full := Availabilities(traces)
	return HeadlinesFromAvailabilities(fm, full)
}
