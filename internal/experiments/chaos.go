package experiments

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/peer"
	"swarmavail/internal/bittorrent/tracker"
	"swarmavail/internal/faultnet"
	"swarmavail/internal/plot"
)

// chaos.go threads the package metrics registry (SetMetrics) into every
// live component it runs: the tracker, the peer fleet, and the fault
// layer's counters after the run.

func init() {
	register(Driver{
		ID:          "chaos",
		Description: "Seedless sustainability on the live TCP testbed under injected churn (resets + publisher departure)",
		Run:         Chaos,
	})
}

// Chaos re-runs the §4.2 seedless-sustainability experiment at reduced
// scale on the *real* BitTorrent stack — tracker, TCP peers, PEX — with
// a faultnet layer injecting latency and mid-stream connection resets
// throughout. The publisher departs the moment the first leecher
// completes (exactly the paper's protocol); the remaining leechers must
// finish from each other through the injected churn. A fixed seed fixes
// the fault decision stream, so the run is reproducible.
func Chaos(scale Scale, seed int64) (*Result, error) {
	res, _, err := chaosRun(scale, seed)
	return res, err
}

// chaosRun is the driver body; tests use the returned fault stats to
// assert the run actually rode through injected failures.
func chaosRun(scale Scale, seed int64) (*Result, faultnet.Stats, error) {
	leechers := 4
	fileKB := 24
	deadline := 60 * time.Second
	if scale == Full {
		leechers = 8
		fileKB = 96
		deadline = 180 * time.Second
	}

	fnet := faultnet.New(faultnet.Config{
		Seed:      seed,
		Latency:   time.Millisecond,
		Jitter:    2 * time.Millisecond,
		ResetProb: 0.02,
	})
	listen := func(network, addr string) (net.Listener, error) {
		ln, err := net.Listen(network, addr)
		if err != nil {
			return nil, err
		}
		return fnet.Listener(ln), nil
	}
	httpClient := &http.Client{Transport: fnet.RoundTripper(nil), Timeout: 5 * time.Second}

	// Tracker + a K=2 bundle, the smallest configuration the paper's
	// bundling story needs.
	reg := metricsReg
	srv := tracker.NewServer()
	srv.Instrument(reg)
	trkLn, closeTrk, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		return nil, faultnet.Stats{}, err
	}
	defer closeTrk()

	content := make([]byte, 2*fileKB*1024)
	prng := newSplitMix(uint64(seed))
	for i := range content {
		content[i] = byte(prng())
	}
	info, err := metainfo.New("chaos-bundle", 4096, []metainfo.File{
		{Path: "ep1.bin", Length: int64(fileKB * 1024)},
		{Path: "ep2.bin", Length: int64(fileKB * 1024)},
	}, content)
	if err != nil {
		return nil, faultnet.Stats{}, err
	}
	tor := &metainfo.Torrent{
		Announce: "http://" + trkLn.Addr().String() + "/announce",
		Info:     *info,
	}

	mkPeer := func(c []byte) (*peer.Node, error) {
		return peer.New(peer.Config{
			Torrent:          tor,
			Content:          c,
			AnnounceInterval: 150 * time.Millisecond,
			DialTimeout:      2 * time.Second,
			Dial:             fnet.Dial,
			Listen:           listen,
			HTTPClient:       httpClient,
			Metrics:          reg,
		})
	}

	pub, err := mkPeer(content)
	if err != nil {
		return nil, faultnet.Stats{}, err
	}
	if err := pub.Start(); err != nil {
		return nil, faultnet.Stats{}, err
	}
	pubUp := true
	defer func() {
		if pubUp {
			pub.Stop()
		}
	}()

	start := time.Now()
	nodes := make([]*peer.Node, leechers)
	for i := range nodes {
		n, err := mkPeer(nil)
		if err != nil {
			return nil, faultnet.Stats{}, err
		}
		if err := n.Start(); err != nil {
			return nil, faultnet.Stats{}, err
		}
		defer n.Stop()
		nodes[i] = n
		time.Sleep(20 * time.Millisecond) // staggered arrivals
	}

	// Wait for completions; on the first one, the publisher departs —
	// its host dies on the fault layer too, so half-open dials to it
	// fail the way a vanished PlanetLab node's would.
	done := make([]float64, leechers)
	remaining := leechers
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	expire := time.After(deadline)
	for remaining > 0 {
		select {
		case <-expire:
			return nil, fnet.Stats(), fmt.Errorf(
				"chaos: %d of %d leechers unfinished after %v (faults injected: %+v)",
				remaining, leechers, deadline, fnet.Stats())
		case <-ticker.C:
		}
		for i, n := range nodes {
			if done[i] == 0 {
				select {
				case <-n.Done():
					done[i] = time.Since(start).Seconds()
					remaining--
					if pubUp {
						fnet.KillHost(pub.Addr())
						pub.Stop()
						pubUp = false
					}
				default:
				}
			}
		}
	}

	stats := fnet.Stats()
	reg.Counter("chaos_fault_resets_total").Add(stats.Resets)
	reg.Counter("chaos_fault_dials_denied_total").Add(stats.DialsDenied)
	reg.Counter("chaos_fault_truncations_total").Add(stats.Truncations)
	reg.Counter("chaos_fault_conns_wrapped_total").Add(stats.Conns)
	res := &Result{
		ID:          "chaos",
		Description: "Live-swarm seedless sustainability under fault injection",
	}
	tl := &plot.Timeline{
		Title:   "chaos: leecher downloads (publisher departs at first completion)",
		Horizon: time.Since(start).Seconds(),
	}
	var first float64
	for i, d := range done {
		if first == 0 || d < first {
			first = d
		}
		tl.Spans = append(tl.Spans, plot.Span{
			Label: fmt.Sprintf("leech%02d", i), Start: 0, End: d,
		})
	}
	plot.SortSpansByStart(tl.Spans)
	res.Timelines = append(res.Timelines, tl)
	res.Notef("all %d leechers completed a %d KB bundle; publisher departed at t=%.2f s", leechers, 2*fileKB, first)
	res.Notef("faults ridden through: %d resets, %d dials denied (of %d dials), %d conns wrapped",
		stats.Resets, stats.DialsDenied, stats.Dials, stats.Conns)
	return res, stats, nil
}

// newSplitMix returns a tiny deterministic byte stream generator
// (content bytes should not consume the faultnet decision stream).
func newSplitMix(state uint64) func() uint64 {
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}
