package experiments

import (
	"fmt"
	"math"

	"swarmavail/internal/dist"
	"swarmavail/internal/queue"
)

func init() {
	register(Driver{
		ID:          "ablation-distributions",
		Description: "Sensitivity of busy periods and availability to non-exponential laws",
		Run:         AblationDistributions,
	})
}

// AblationDistributions probes the model's exponential assumptions with
// the M/G/∞ simulator:
//
//   - the *mean* busy period is insensitive to the service law beyond
//     its mean (so eq. 2/20 survive heavy tails unchanged), which we
//     verify under deterministic, uniform and Pareto services;
//   - the unavailability P of the alternating process, in contrast,
//     moves when the *publisher residence* law changes shape at fixed
//     mean, because cycles mix busy periods with exp(1/r) idle periods
//     — we quantify that shift for Pareto and deterministic residence.
func AblationDistributions(scale Scale, seed int64) (*Result, error) {
	res := &Result{
		ID:          "ablation-distributions",
		Description: "Busy-period insensitivity and availability sensitivity to service laws",
	}
	reps := 30000
	horizon := 1.5e6
	if scale == Full {
		reps = 120000
		horizon = 6e6
	}

	// Part 1: busy-period mean insensitivity.
	beta, alpha := 0.05, 20.0
	want := math.Expm1(beta*alpha) / beta
	tb := Table{
		Name:   "M/G/∞ mean busy period across service laws (β=0.05, E[S]=20)",
		Header: []string{"service law", "simulated E[B]", "eq. (20)", "deviation"},
	}
	laws := []struct {
		name string
		d    dist.Dist
	}{
		{"exponential", dist.Exponential{Rate: 1 / alpha}},
		{"deterministic", dist.Deterministic{Value: alpha}},
		{"uniform(0,2E)", dist.Uniform{Lo: 0, Hi: 2 * alpha}},
		{"pareto(α=1.5)", dist.Pareto{Scale: alpha / 3, Shape: 1.5}},
		{"weibull(k=0.7)", dist.Weibull{Shape: 0.7, Scale: alpha / math.Gamma(1+1/0.7)}},
	}
	r := dist.NewRand(seed)
	for _, law := range laws {
		mean, _ := queue.MeanBusyPeriod(r, queue.BusyPeriodConfig{Beta: beta, Service: law.d}, reps)
		tb.Rows = append(tb.Rows, []string{
			law.name,
			fmt.Sprintf("%.1f", mean),
			fmt.Sprintf("%.1f", want),
			fmt.Sprintf("%+.1f%%", 100*(mean-want)/want),
		})
	}
	res.Tables = append(res.Tables, tb)
	res.Notef("the mean busy period is insensitive to the service law (all rows ≈ eq. 20)")

	// Part 2: availability sensitivity to the publisher-residence law.
	base := queue.AvailabilityConfig{
		PeerRate:      0.01,
		PublisherRate: 0.002,
		PeerService:   dist.Exponential{Rate: 1.0 / 80},
	}
	tb2 := Table{
		Name:   "Unavailability P across publisher-residence laws (mean u = 300 s)",
		Header: []string{"residence law", "simulated P"},
	}
	var ps []float64
	for _, law := range []struct {
		name string
		d    dist.Dist
	}{
		{"exponential", dist.NewExponentialFromMean(300)},
		{"deterministic", dist.Deterministic{Value: 300}},
		{"pareto(α=1.5)", dist.Pareto{Scale: 100, Shape: 1.5}},
	} {
		cfg := base
		cfg.PublisherStay = law.d
		out := queue.SimulateAvailability(dist.NewRand(seed+7), cfg, horizon)
		ps = append(ps, out.Unavailability)
		tb2.Rows = append(tb2.Rows, []string{law.name, fmt.Sprintf("%.3f", out.Unavailability)})
	}
	res.Tables = append(res.Tables, tb2)
	res.Notef("P(exp)=%.3f P(det)=%.3f P(pareto)=%.3f — unlike E[B], availability shifts "+
		"with residence shape because longer-tailed stays anchor longer busy periods",
		ps[0], ps[1], ps[2])
	return res, nil
}
