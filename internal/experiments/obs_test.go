package experiments

import (
	"errors"
	"testing"

	"swarmavail/internal/obs"
)

func TestInstrumentedDriver(t *testing.T) {
	reg := obs.NewRegistry()
	calls := 0
	d := Driver{ID: "fake", Run: func(Scale, int64) (*Result, error) {
		calls++
		if calls > 1 {
			return nil, errors.New("boom")
		}
		return &Result{ID: "fake"}, nil
	}}
	wrapped := d.Instrumented(reg)
	if _, err := wrapped.Run(Quick, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.Run(Quick, 1); err == nil {
		t.Fatal("expected error on second run")
	}
	if v, _ := reg.Value("experiment_runs_total", obs.L("id", "fake")); v != 2 {
		t.Errorf("runs = %v, want 2", v)
	}
	if v, _ := reg.Value("experiment_failures_total", obs.L("id", "fake")); v != 1 {
		t.Errorf("failures = %v, want 1", v)
	}
	h := reg.Histogram("experiment_run_seconds", obs.LatencyBuckets, obs.L("id", "fake"))
	if h.Count() != 2 {
		t.Errorf("duration observations = %d, want 2", h.Count())
	}
	// Nil registry leaves the driver untouched.
	if un := d.Instrumented(nil); un.Run == nil {
		t.Fatal("nil registry broke the driver")
	}
}
