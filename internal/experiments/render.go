package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// RenderOptions controls WriteResult's output.
type RenderOptions struct {
	// Width and Height size the ASCII charts (72×16 when zero).
	Width, Height int
	// CSVDir, when non-empty, receives one CSV file per chart, timeline
	// and boxplot, named <id>_<part>.csv.
	CSVDir string
}

func (o RenderOptions) withDefaults() RenderOptions {
	if o.Width == 0 {
		o.Width = 72
	}
	if o.Height == 0 {
		o.Height = 16
	}
	return o
}

// WriteResult renders a Result: ASCII charts, timelines, boxplots and
// tables to w, notes at the end, and (optionally) CSV artefacts to
// opts.CSVDir. It is the single rendering path shared by cmd/figures
// and any other consumer.
func WriteResult(w io.Writer, res *Result, opts RenderOptions) error {
	opts = opts.withDefaults()
	for i, ch := range res.Charts {
		if err := ch.Render(w, opts.Width, opts.Height); err != nil {
			return fmt.Errorf("experiments: chart %d of %s: %w", i, res.ID, err)
		}
		if err := writeCSV(w, opts.CSVDir, res.ID, fmt.Sprintf("chart%d", i), ch.WriteCSV); err != nil {
			return err
		}
	}
	for i, tl := range res.Timelines {
		if err := tl.Render(w, opts.Width); err != nil {
			return fmt.Errorf("experiments: timeline %d of %s: %w", i, res.ID, err)
		}
		if err := writeCSV(w, opts.CSVDir, res.ID, fmt.Sprintf("timeline%d", i), tl.WriteCSV); err != nil {
			return err
		}
	}
	for i, bp := range res.Boxplots {
		if err := bp.Render(w, opts.Width); err != nil {
			return fmt.Errorf("experiments: boxplot %d of %s: %w", i, res.ID, err)
		}
		if err := writeCSV(w, opts.CSVDir, res.ID, fmt.Sprintf("boxplot%d", i), bp.WriteCSV); err != nil {
			return err
		}
	}
	for _, tb := range res.Tables {
		RenderTable(w, tb)
	}
	for _, n := range res.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	return nil
}

func writeCSV(log io.Writer, dir, id, part string, write func(w io.Writer) error) error {
	if dir == "" {
		return nil
	}
	name := filepath.Join(dir, SanitizeID(id)+"_"+part+".csv")
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	fmt.Fprintf(log, "  wrote %s\n", name)
	return f.Close()
}

// SanitizeID maps an artefact ID to a filesystem-safe token.
func SanitizeID(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}

// RenderTable prints a Table with aligned columns.
func RenderTable(w io.Writer, tb Table) {
	fmt.Fprintf(w, "-- %s --\n", tb.Name)
	widths := make([]int, len(tb.Header))
	for i, h := range tb.Header {
		widths[i] = len(h)
	}
	for _, row := range tb.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts = append(parts, fmt.Sprintf("%-*s", widths[i], c))
			} else {
				parts = append(parts, c)
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(tb.Header)
	for _, row := range tb.Rows {
		printRow(row)
	}
}
