package experiments

import (
	"fmt"
	"math"

	"swarmavail/internal/core"
	"swarmavail/internal/dist"
	"swarmavail/internal/plot"
	"swarmavail/internal/stats"
	"swarmavail/internal/swarm"
)

func init() {
	register(Driver{
		ID:          "fig2",
		Description: "Illustration: busy/idle periods of a swarm with an intermittent publisher",
		Run:         Fig2,
	})
	register(Driver{
		ID:          "fig4",
		Description: "Seedless swarms: completed downloads over time per bundle size",
		Run:         Fig4,
	})
	register(Driver{
		ID:          "fig5",
		Description: "Peer arrival/departure timelines for K=2,3,4 with an intermittent publisher",
		Run:         Fig5,
	})
	register(Driver{
		ID:          "fig6a",
		Description: "Mean download time vs bundle size (homogeneous capacities) + eq. 16 model",
		Run:         Fig6a,
	})
	register(Driver{
		ID:          "fig6b",
		Description: "Mean download time vs bundle size with BitTyrant upload capacities",
		Run:         Fig6b,
	})
	register(Driver{
		ID:          "fig6c",
		Description: "Heterogeneous popularity: four solo files vs their bundle",
		Run:         Fig6c,
	})
}

// fig5Config is the §4.3 testbed: λ = 1/60 per file, μ = 50 KBps peers,
// 100 KBps publisher alternating on 300 s / off 900 s, 4 MB files.
func fig5Config(k int, seed int64, horizon float64) swarm.Config {
	files := make([]swarm.FileSpec, k)
	for i := range files {
		files[i] = swarm.FileSpec{SizeKB: 4000, Lambda: 1.0 / 60}
	}
	return swarm.Config{
		Seed:                seed,
		Files:               files,
		PeerUpload:          dist.Deterministic{Value: 50},
		PublisherUploadKBps: 100,
		PublisherMode:       swarm.PublisherOnOff,
		PublisherOn:         dist.NewExponentialFromMean(300),
		PublisherOff:        dist.NewExponentialFromMean(900),
		DepartureLagSeconds: 15, // client shutdown latency (see Config doc)
		Horizon:             horizon,
	}
}

// Fig2 produces the busy/idle-period illustration from a real simulated
// sample path: peer and publisher spans plus the derived availability
// intervals.
func Fig2(_ Scale, seed int64) (*Result, error) {
	cfg := fig5Config(2, seed, 3000)
	res0, err := swarm.Run(cfg)
	if err != nil {
		return nil, err
	}
	tl := &plot.Timeline{
		Title:   "Figure 2: busy and idle periods (thick = publisher, thin = peers)",
		Horizon: res0.Horizon,
	}
	for _, s := range res0.PublisherSessions {
		tl.Spans = append(tl.Spans, plot.Span{
			Label: "publisher", Start: s.Start, End: s.End, Thick: true,
		})
	}
	for _, p := range res0.Records {
		tl.Spans = append(tl.Spans, plot.Span{
			Label: fmt.Sprintf("peer%02d", p.ID),
			Start: p.Arrive,
			End:   p.Depart,
			Open:  math.IsInf(p.Depart, 1),
		})
	}
	plot.SortSpansByStart(tl.Spans)
	avail := &plot.Timeline{Title: "content availability (busy periods)", Horizon: res0.Horizon}
	for i, iv := range res0.AvailableIntervals {
		avail.Spans = append(avail.Spans, plot.Span{
			Label: fmt.Sprintf("busy%02d", i+1), Start: iv.Start, End: iv.End, Thick: true,
		})
	}
	out := &Result{
		ID:          "fig2",
		Description: "Sample path: publisher sessions, peer sojourns, busy periods",
		Timelines:   []*plot.Timeline{tl, avail},
	}
	out.Notef("availability fraction on this path: %.2f", res0.AvailabilityFraction())
	out.Notef("busy periods observed: %d", len(res0.AvailableIntervals))
	return out, nil
}

// Fig4 regenerates the seedless-sustainability experiment (§4.2): the
// publisher leaves after the first completed download; completions over
// time are plotted per bundle size.
func Fig4(scale Scale, seed int64) (*Result, error) {
	ks := []int{1, 2, 4, 6, 8, 10}
	horizon := 1500.0
	runs := 1
	if scale == Full {
		runs = 5
		horizon = 1500
	}
	res := &Result{
		ID:          "fig4",
		Description: "Completed downloads over time in publisher-less swarms",
	}
	chart := &plot.Chart{
		Title:  "Figure 4: availability of seedless swarms",
		XLabel: "time (s)",
		YLabel: "peers served (cumulative)",
	}
	for _, k := range ks {
		// Average the cumulative-completion staircase over runs.
		bucket := 100.0
		bins := int(horizon/bucket) + 1
		acc := make([]float64, bins)
		for run := 0; run < runs; run++ {
			files := make([]swarm.FileSpec, k)
			for i := range files {
				files[i] = swarm.FileSpec{SizeKB: 4000, Lambda: 1.0 / 150}
			}
			r, err := swarm.Run(swarm.Config{
				Seed:                seed + int64(run*1000+k),
				Files:               files,
				PeerUpload:          dist.Deterministic{Value: 33},
				PublisherUploadKBps: 50,
				PublisherMode:       swarm.PublisherUntilFirstCompletion,
				Horizon:             horizon,
			})
			if err != nil {
				return nil, err
			}
			for _, t := range r.CompletionTimes() {
				for b := int(t / bucket); b < bins; b++ {
					acc[b]++
				}
			}
		}
		s := plot.Series{Name: fmt.Sprintf("K=%d", k)}
		for b := 0; b < bins; b++ {
			s.X = append(s.X, float64(b)*bucket)
			s.Y = append(s.Y, acc[b]/float64(runs))
		}
		chart.Series = append(chart.Series, s)
		res.Notef("K=%d: %.1f peers served by t=%.0f s", k, acc[bins-1]/float64(runs), horizon)
	}
	res.Charts = append(res.Charts, chart)

	// Attach the model's B̄(9) table (§4.2 quotes it against this figure).
	bm, err := TableBm(scale, seed)
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, bm.Tables...)
	return res, nil
}

// Fig5 regenerates the arrival/departure timelines for K = 2, 3, 4.
func Fig5(scale Scale, seed int64) (*Result, error) {
	horizon := 1200.0
	res := &Result{
		ID:          "fig5",
		Description: "Peer sojourn timelines under an intermittent publisher",
	}
	for _, k := range []int{2, 3, 4} {
		r, err := swarm.Run(fig5Config(k, seed+int64(k), horizon))
		if err != nil {
			return nil, err
		}
		tl := &plot.Timeline{
			Title:   fmt.Sprintf("Figure 5: K=%d (| span = peer sojourn, = publisher online)", k),
			Horizon: horizon,
		}
		for _, s := range r.PublisherSessions {
			tl.Spans = append(tl.Spans, plot.Span{Label: "pub", Start: s.Start, End: s.End, Thick: true})
		}
		for _, p := range r.Records {
			tl.Spans = append(tl.Spans, plot.Span{
				Label: fmt.Sprintf("p%03d", p.ID),
				Start: p.Arrive,
				End:   p.Depart,
				Open:  math.IsInf(p.Depart, 1),
			})
		}
		plot.SortSpansByStart(tl.Spans)
		res.Timelines = append(res.Timelines, tl)

		// Flash-departure statistic: the largest number of completions
		// inside any 30-second window (blocked peers released together).
		burst := maxCompletionsInWindow(r.CompletionTimes(), 30)
		res.Notef("K=%d: completed %d, max completions in a 30 s window: %d",
			k, r.CompletedCount(), burst)
	}
	return res, nil
}

func maxCompletionsInWindow(times []float64, window float64) int {
	best := 0
	j := 0
	for i := range times {
		for times[i]-times[j] > window {
			j++
		}
		if i-j+1 > best {
			best = i - j + 1
		}
	}
	return best
}

// fig6Sweep runs the §4.3 download-time-vs-K sweep and returns the mean,
// CI, and per-K samples.
func fig6Sweep(ks []int, runs int, seed int64, upload dist.Dist) (means, cis []float64, samples map[int][]float64, err error) {
	return fig6SweepCapped(ks, runs, seed, upload, nil)
}

// fig6SweepCapped additionally applies a per-peer download cap (nil =
// unconstrained) — needed for §4.3.2, where heterogeneous high-capacity
// uploaders would otherwise drain blocked backlogs at rates no 2008
// access link could receive.
func fig6SweepCapped(ks []int, runs int, seed int64, upload, download dist.Dist) (means, cis []float64, samples map[int][]float64, err error) {
	samples = make(map[int][]float64)
	for _, k := range ks {
		var all []float64
		for run := 0; run < runs; run++ {
			// Arrivals stop at 1200 s (the paper's run length) but the
			// simulation continues so every admitted peer's download
			// time — including stragglers blocked on the publisher — is
			// measured without censoring bias.
			cfg := fig5Config(k, seed+int64(run*100+k), 15000)
			cfg.ArrivalCutoff = 1200
			cfg.PeerUpload = upload
			cfg.PeerDownload = download
			r, err := swarm.Run(cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			all = append(all, r.DownloadTimes()...)
		}
		samples[k] = all
		var acc stats.Accumulator
		acc.AddAll(all)
		means = append(means, acc.Mean())
		cis = append(cis, acc.CI95())
	}
	return means, cis, samples, nil
}

// Fig6a regenerates Figure 6(a) (homogeneous 50 KBps peers) and overlays
// the eq. (16) model prediction (§4.3.1).
func Fig6a(scale Scale, seed int64) (*Result, error) {
	ks := []int{1, 2, 3, 4, 5, 6, 7, 8}
	runs := 3
	if scale == Full {
		runs = 10 // the paper's 10 runs of 1200 s
	}
	means, cis, _, err := fig6Sweep(ks, runs, seed, dist.Deterministic{Value: 50})
	if err != nil {
		return nil, err
	}

	// Model overlay: s/μ = 80 s, λ = 1/60, 1/R = 900 s, u = 300 s, m = 9.
	model := core.SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	bestModel, modelCurve := model.OptimalBundleSizeThreshold(len(ks), 9, core.ConstantPublisher)

	res := &Result{
		ID:          "fig6a",
		Description: "Mean download time vs K: simulation testbed and eq. (16) model",
	}
	chart := &plot.Chart{
		Title:  "Figure 6(a): download time vs bundle size (exp. on/off publisher)",
		XLabel: "bundle size K",
		YLabel: "mean download time (s)",
	}
	sim := plot.Series{Name: "testbed (simulated clients)"}
	mod := plot.Series{Name: "model eq. (16)"}
	tb := Table{
		Name:   "Download time vs K",
		Header: []string{"K", "testbed mean (s)", "±95% CI", "model (s)"},
	}
	bestSim := 1
	for i, k := range ks {
		sim.X = append(sim.X, float64(k))
		sim.Y = append(sim.Y, means[i])
		mod.X = append(mod.X, float64(k))
		mod.Y = append(mod.Y, modelCurve[i])
		if means[i] < means[bestSim-1] {
			bestSim = k
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", means[i]),
			fmt.Sprintf("%.0f", cis[i]),
			fmt.Sprintf("%.0f", modelCurve[i]),
		})
	}
	chart.Series = append(chart.Series, sim, mod)
	res.Charts = append(res.Charts, chart)
	res.Tables = append(res.Tables, tb)
	res.Notef("testbed optimal K=%d (paper experiment: K=4)", bestSim)
	res.Notef("model optimal K=%d (paper model: K=5)", bestModel)
	return res, nil
}

// Fig6b repeats the sweep with the heterogeneous BitTyrant capacity
// distribution; the optimum shifts right (paper: K=5).
func Fig6b(scale Scale, seed int64) (*Result, error) {
	ks := []int{1, 2, 3, 4, 5, 6, 7, 8}
	runs := 3
	if scale == Full {
		runs = 10
	}
	means, cis, _, err := fig6SweepCapped(ks, runs, seed,
		dist.BitTyrantUploadCapacities(), dist.Deterministic{Value: 1250})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:          "fig6b",
		Description: "Download time vs K under heterogeneous (BitTyrant) upload capacities",
	}
	chart := &plot.Chart{
		Title:  "Figure 6(b): heterogeneous upload capacities",
		XLabel: "bundle size K",
		YLabel: "mean download time (s)",
	}
	s := plot.Series{Name: "testbed (BitTyrant capacities)"}
	best := 1
	for i, k := range ks {
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, means[i])
		if means[i] < means[best-1] {
			best = k
		}
		_ = cis
	}
	chart.Series = append(chart.Series, s)
	res.Charts = append(res.Charts, chart)
	res.Notef("optimal K=%d with heterogeneous capacities (paper: K=5, ≥ homogeneous optimum)", best)
	return res, nil
}

// Fig6c regenerates the heterogeneous-popularity experiment (§4.3.3):
// λᵢ = 1/(8i) for i = 1..4 run solo, then bundled with λ = Σλᵢ = 1/3.84.
func Fig6c(scale Scale, seed int64) (*Result, error) {
	runs := 3
	horizon := 2400.0
	if scale == Full {
		runs = 10
		horizon = 4800
	}
	lambdas := []float64{1.0 / 8, 1.0 / 16, 1.0 / 24, 1.0 / 32}

	runExperiment := func(files []swarm.FileSpec, tag int) ([]float64, error) {
		var all []float64
		for run := 0; run < runs; run++ {
			r, err := swarm.Run(swarm.Config{
				Seed:                seed + int64(tag*1000+run),
				Files:               files,
				PeerUpload:          dist.Deterministic{Value: 50},
				PublisherUploadKBps: 100,
				PublisherMode:       swarm.PublisherOnOff,
				PublisherOn:         dist.NewExponentialFromMean(300),
				PublisherOff:        dist.NewExponentialFromMean(900),
				DepartureLagSeconds: 15,
				ArrivalCutoff:       horizon,
				Horizon:             horizon + 12000,
			})
			if err != nil {
				return nil, err
			}
			all = append(all, r.DownloadTimes()...)
		}
		return all, nil
	}

	res := &Result{
		ID:          "fig6c",
		Description: "Solo downloads of files with λᵢ = 1/(8i) vs their 4-file bundle",
	}
	box := &plot.Boxplot{
		Title:  "Figure 6(c): heterogeneous demand",
		YLabel: "download time (s)",
	}
	var soloMeans []float64
	for i, l := range lambdas {
		times, err := runExperiment([]swarm.FileSpec{{SizeKB: 4000, Lambda: l}}, i+1)
		if err != nil {
			return nil, err
		}
		fn, err := stats.Summarize(times)
		if err != nil {
			return nil, fmt.Errorf("experiment %d produced no completions", i+1)
		}
		soloMeans = append(soloMeans, fn.Mean)
		box.Groups = append(box.Groups, plot.BoxGroup{
			Label: fmt.Sprintf("file%d solo", i+1),
			P5:    fn.P5, Q1: fn.Q1, Median: fn.Median, Q3: fn.Q3, P95: fn.P95,
			Mean: fn.Mean, N: fn.N,
		})
	}
	bundleFiles := make([]swarm.FileSpec, len(lambdas))
	for i, l := range lambdas {
		bundleFiles[i] = swarm.FileSpec{SizeKB: 4000, Lambda: l}
	}
	bundleTimes, err := runExperiment(bundleFiles, 5)
	if err != nil {
		return nil, err
	}
	fn, err := stats.Summarize(bundleTimes)
	if err != nil {
		return nil, fmt.Errorf("bundle experiment produced no completions")
	}
	box.Groups = append(box.Groups, plot.BoxGroup{
		Label: "bundle (exp 5)",
		P5:    fn.P5, Q1: fn.Q1, Median: fn.Median, Q3: fn.Q3, P95: fn.P95,
		Mean: fn.Mean, N: fn.N,
	})
	res.Boxplots = append(res.Boxplots, box)

	for i, m := range soloMeans {
		res.Notef("file %d solo mean: %.0f s", i+1, m)
	}
	// The model's view of the same five experiments (eq. 16, m=9): solo
	// download time rises as popularity falls, and the bundle sits above
	// file 1 but below files 2–4 — the ordering the paper reports. The
	// testbed reproduces the bundle-vs-tail comparisons; the solo-file
	// ordering is washed out by whole-piece coverage noise (see
	// EXPERIMENTS.md).
	for i, l := range lambdas {
		solo := core.SwarmParams{Lambda: l, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
		res.Notef("model: file %d solo E[T] = %.0f s", i+1, solo.SinglePublisherDownloadTime(9))
	}
	bundleModel := core.SwarmParams{Lambda: 1.0 / 3.84, Size: 16000, Mu: 50, R: 1.0 / 900, U: 300}
	res.Notef("model: bundle E[T] = %.0f s", bundleModel.SinglePublisherDownloadTime(9))
	res.Notef("bundle mean: %.0f s (paper: 405 s — above file 1's solo 329 s, below files 2–4)", fn.Mean)
	worse := 0
	for _, m := range soloMeans[1:] {
		if fn.Mean < m {
			worse++
		}
	}
	res.Notef("bundle beats %d of 3 unpopular solo files", worse)
	return res, nil
}
