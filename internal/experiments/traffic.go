package experiments

import (
	"fmt"

	"swarmavail/internal/plot"
	"swarmavail/internal/stats"
	"swarmavail/internal/swarm"
)

func init() {
	register(Driver{
		ID:          "ablation-traffic",
		Description: "Traffic cost of bundling: delivered volume per wanted file vs K",
		Run:         AblationTraffic,
	})
	register(Driver{
		ID:          "ablation-impatience",
		Description: "Impatient peers: abandonment vs bundle size under an intermittent publisher",
		Run:         AblationImpatience,
	})
	register(Driver{
		ID:          "ablation-slots",
		Description: "Unchoke-slot count: download time vs MaxUploads in the testbed",
		Run:         AblationSlots,
	})
}

// AblationSlots sweeps the per-node concurrent-upload limit (the unchoke
// slot count): too few slots serialise the publisher's injections after
// idle periods; many slots split capacity so thin that piece transfers
// crawl. The default of 4 (the mainline's unchoke count) sits in the
// flat middle.
func AblationSlots(scale Scale, seed int64) (*Result, error) {
	runs := 2
	if scale == Full {
		runs = 6
	}
	res := &Result{
		ID:          "ablation-slots",
		Description: "Mean download time at K=4 vs MaxUploads",
	}
	tb := Table{
		Name:   "Unchoke slots (K=4, intermittent publisher)",
		Header: []string{"MaxUploads", "mean download (s)", "completed"},
	}
	for _, slots := range []int{1, 2, 4, 8, 16} {
		var acc stats.Accumulator
		completed := 0
		for run := 0; run < runs; run++ {
			cfg := fig5Config(4, seed+int64(run*10+slots), 15000)
			cfg.ArrivalCutoff = 1200
			cfg.MaxUploads = slots
			r, err := swarm.Run(cfg)
			if err != nil {
				return nil, err
			}
			acc.AddAll(r.DownloadTimes())
			completed += r.CompletedCount()
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", slots),
			fmt.Sprintf("%.0f", acc.Mean()),
			fmt.Sprintf("%d", completed),
		})
		res.Notef("MaxUploads=%d: mean %.0f s over %d completions", slots, acc.Mean(), completed)
	}
	res.Tables = append(res.Tables, tb)
	return res, nil
}

// AblationTraffic measures the paper's future-work concern ("bundling
// may increase the traffic in the network"): total delivered volume per
// file actually wanted, as a function of K, in the §4.3 testbed.
func AblationTraffic(scale Scale, seed int64) (*Result, error) {
	runs := 2
	if scale == Full {
		runs = 6
	}
	res := &Result{
		ID:          "ablation-traffic",
		Description: "Bundling's bandwidth multiplier in the testbed",
	}
	chart := &plot.Chart{
		Title:  "Traffic overhead vs bundle size (pure bundling moves K× the bytes)",
		XLabel: "bundle size K",
		YLabel: "delivered KB per wanted KB",
	}
	s := plot.Series{Name: "testbed"}
	tb := Table{
		Name:   "Traffic per bundle size",
		Header: []string{"K", "delivered (MB)", "wasted (MB)", "overhead ×"},
	}
	for _, k := range []int{1, 2, 4, 6, 8} {
		var delivered, wasted, overhead float64
		for run := 0; run < runs; run++ {
			cfg := fig5Config(k, seed+int64(run*10+k), 15000)
			cfg.ArrivalCutoff = 1200
			r, err := swarm.Run(cfg)
			if err != nil {
				return nil, err
			}
			delivered += r.DeliveredKB
			wasted += r.WastedKB
			overhead += r.TrafficOverhead()
		}
		overhead /= float64(runs)
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, overhead)
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", delivered/1000/float64(runs)),
			fmt.Sprintf("%.1f", wasted/1000/float64(runs)),
			fmt.Sprintf("%.2f", overhead),
		})
		res.Notef("K=%d: overhead %.2f× (pure bundling ceiling: %d×)", k, overhead, k)
	}
	chart.Series = append(chart.Series, s)
	res.Charts = append(res.Charts, chart)
	res.Notef("availability gains are paid for in bandwidth ≈ linear in K — " +
		"the tradeoff the paper flags for ISP-facing future work")
	return res, nil
}

// AblationImpatience gives testbed peers finite patience (§3.3.1's
// impatient-peer semantics) and measures how bundling converts
// abandonments into completions.
func AblationImpatience(scale Scale, seed int64) (*Result, error) {
	runs := 2
	if scale == Full {
		runs = 6
	}
	res := &Result{
		ID:          "ablation-impatience",
		Description: "Abandonment rate vs bundle size with 600 s mean patience",
	}
	tb := Table{
		Name:   "Impatient peers (patience ~ exp(600 s))",
		Header: []string{"K", "arrivals", "completed", "abandoned", "loss rate"},
	}
	for _, k := range []int{1, 2, 4, 6, 8} {
		var arrivals, completed, abandoned int
		for run := 0; run < runs; run++ {
			cfg := fig5Config(k, seed+int64(run*10+k), 15000)
			cfg.ArrivalCutoff = 1200
			cfg.AbandonMeanSeconds = 600
			r, err := swarm.Run(cfg)
			if err != nil {
				return nil, err
			}
			arrivals += len(r.Records)
			completed += r.CompletedCount()
			abandoned += r.AbandonedCount()
		}
		loss := 0.0
		if arrivals > 0 {
			loss = float64(abandoned) / float64(arrivals)
		}
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", arrivals),
			fmt.Sprintf("%d", completed),
			fmt.Sprintf("%d", abandoned),
			fmt.Sprintf("%.1f%%", 100*loss),
		})
		res.Notef("K=%d: %.1f%% of impatient peers lost", k, 100*loss)
	}
	res.Tables = append(res.Tables, tb)
	res.Notef("losses mirror Figure 3's shape: intermediate K lengthens downloads " +
		"across publisher gaps before self-sustainability kicks in; large K " +
		"(self-sustaining) converts abandonments into completions")
	return res, nil
}
