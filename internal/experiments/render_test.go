package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swarmavail/internal/plot"
)

func sampleResult() *Result {
	return &Result{
		ID:          "fig-test",
		Description: "render test",
		Charts: []*plot.Chart{{
			Title:  "chart title",
			XLabel: "x",
			YLabel: "y",
			Series: []plot.Series{{Name: "s1", X: []float64{1, 2, 3}, Y: []float64{3, 1, 2}}},
		}},
		Timelines: []*plot.Timeline{{
			Title:   "tl",
			Horizon: 10,
			Spans:   []plot.Span{{Label: "a", Start: 1, End: 5}},
		}},
		Boxplots: []*plot.Boxplot{{
			Title:  "bp",
			Groups: []plot.BoxGroup{{Label: "g", P5: 1, Q1: 2, Median: 3, Q3: 4, P95: 5}},
		}},
		Tables: []Table{{
			Name:   "tbl",
			Header: []string{"k", "value"},
			Rows:   [][]string{{"1", "10"}, {"22", "3"}},
		}},
		Notes: []string{"headline note"},
	}
}

func TestWriteResultASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResult(&buf, sampleResult(), RenderOptions{Width: 40, Height: 8}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chart title", "tl", "bp", "-- tbl --", "note: headline note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestWriteResultCSVDir(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := WriteResult(&buf, sampleResult(), RenderOptions{CSVDir: dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig-test_chart0.csv", "fig-test_timeline0.csv", "fig-test_boxplot0.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	if !strings.Contains(buf.String(), "wrote ") {
		t.Fatal("CSV writes not logged")
	}
}

func TestWriteResultBadChart(t *testing.T) {
	res := &Result{
		ID:     "broken",
		Charts: []*plot.Chart{{Series: []plot.Series{}}}, // nothing to draw
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res, RenderOptions{}); err == nil {
		t.Fatal("empty chart accepted")
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"fig6a":        "fig6a",
		"sec2.3":       "sec2_3",
		"a/b c":        "a_b_c",
		"table-bm":     "table-bm",
		"Ünïcode-name": "_n_code-name",
	}
	for in, want := range cases {
		if got := SanitizeID(in); got != want {
			t.Errorf("SanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	RenderTable(&buf, Table{
		Name:   "t",
		Header: []string{"aa", "b"},
		Rows:   [][]string{{"1", "222"}, {"333", "4", "extra"}},
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %v", lines)
	}
	// Columns aligned: header and rows share the same prefix width.
	if !strings.HasPrefix(lines[1], "  aa ") {
		t.Fatalf("header misaligned: %q", lines[1])
	}
	if !strings.Contains(lines[3], "extra") {
		t.Fatal("overflow cell dropped")
	}
}
