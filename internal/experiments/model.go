package experiments

import (
	"fmt"
	"math"

	"swarmavail/internal/core"
	"swarmavail/internal/fluid"
	"swarmavail/internal/plot"
)

func init() {
	register(Driver{
		ID:          "fig3",
		Description: "Model: expected download time vs bundle size for 1/R ∈ [100,1100]",
		Run:         Fig3,
	})
	register(Driver{
		ID:          "table-bm",
		Description: "Model: residual busy periods B(m) for the Figure 4 parameters",
		Run:         TableBm,
	})
	register(Driver{
		ID:          "scaling-laws",
		Description: "Theorems 3.1/3.2 and Lemma 3.1: e^{Θ(K²)} scaling checks",
		Run:         ScalingLaws,
	})
	register(Driver{
		ID:          "fluid-baseline",
		Description: "Qiu–Srikant fluid baseline vs the availability model under bundling",
		Run:         FluidBaseline,
	})
}

// Fig3Params are the calibrated parameters reproducing Figure 3's shape
// and optima exactly: the legend of the published figure is unreadable
// in the source scan, so λ, s/μ and u were fitted such that the
// published optima hold (K*=1 for 1/R ≤ 400, K*=3 for 1/R ∈ [500,1100],
// with the increase–decrease–increase shape; see DESIGN.md).
var Fig3Params = core.SwarmParams{Lambda: 0.004, Size: 140, Mu: 1, U: 100}

// Fig3 regenerates Figure 3 from eq. (9) + eq. (11).
func Fig3(_ Scale, _ int64) (*Result, error) {
	const maxK = 10
	res := &Result{
		ID:          "fig3",
		Description: "E[T] vs bundle size K, one curve per publisher interarrival 1/R",
	}
	chart := &plot.Chart{
		Title:  "Figure 3: bundles may reduce download time",
		XLabel: "bundle size K",
		YLabel: "expected download time (s)",
	}
	optima := Table{
		Name:   "Optimal bundle size per publisher unavailability",
		Header: []string{"1/R (s)", "optimal K", "E[T](1)", "E[T](K*)"},
	}
	for invR := 100.0; invR <= 1100; invR += 100 {
		p := Fig3Params
		p.R = 1 / invR
		best, curve := p.OptimalBundleSize(maxK, core.ConstantPublisher)
		s := plot.Series{Name: fmt.Sprintf("1/R=%.0f", invR)}
		for k := 1; k <= maxK; k++ {
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, curve[k-1])
		}
		chart.Series = append(chart.Series, s)
		optima.Rows = append(optima.Rows, []string{
			fmt.Sprintf("%.0f", invR),
			fmt.Sprintf("%d", best),
			fmt.Sprintf("%.0f", curve[0]),
			fmt.Sprintf("%.0f", curve[best-1]),
		})
		res.Notef("1/R=%.0f: optimal K=%d", invR, best)
	}
	res.Charts = append(res.Charts, chart)
	res.Tables = append(res.Tables, optima)
	return res, nil
}

// Fig4ModelParams are the §4.2 parameters (sizes in KB, rates in KB/s).
func Fig4ModelParams() core.SwarmParams {
	return core.SwarmParams{Lambda: 1.0 / 150, Size: 4000, Mu: 33, R: 1.0 / 900, U: 300}
}

// TableBm regenerates the §4.2 table of steady-state residual busy
// periods B(m) for m=9 and K=1..8 (the paper reports
// (0, 0, 47, 569, 2816, 8835, 256446, 75276); the last two published
// values are non-monotone, which the paper's own self-sustainability
// reading suggests is a typo — our model yields a monotone explosion).
func TableBm(_ Scale, _ int64) (*Result, error) {
	base := Fig4ModelParams()
	res := &Result{
		ID:          "table-bm",
		Description: "Residual busy periods B̄(9) vs bundle size (s = 4 MB, μ = 33 KBps, λ = 1/150)",
	}
	tb := Table{
		Name:   "B̄(m=9) per bundle size",
		Header: []string{"K", "rho (λ·s/μ)", "B̄(9) seconds", "self-sustaining ≥1500 s"},
	}
	for k := 1; k <= 8; k++ {
		b := base.Bundle(k, core.ScaledPublisher)
		bm := b.SteadyStateResidualBusyPeriod(9)
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.2f", b.Rho()),
			formatSeconds(bm),
			fmt.Sprintf("%v", bm >= 1500),
		})
		res.Notef("K=%d: B̄(9) = %s", k, formatSeconds(bm))
	}
	res.Tables = append(res.Tables, tb)
	return res, nil
}

func formatSeconds(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// ScalingLaws verifies the asymptotic statements numerically: Lemma 3.1
// (log E[B] = Θ(K²)), Theorem 3.1 (−log P = Θ(K²)) and the Theorem 3.2
// bracket.
func ScalingLaws(_ Scale, _ int64) (*Result, error) {
	p := core.SwarmParams{Lambda: 0.01, Size: 15, Mu: 1, R: 0.0005, U: 100}
	res := &Result{
		ID:          "scaling-laws",
		Description: "Numerical verification of the e^{Θ(K²)} bundling laws",
	}
	chart := &plot.Chart{
		Title:  "−log P(K) grows as Θ(K²) (constant publisher process)",
		XLabel: "K²",
		YLabel: "−log unavailability",
	}
	s := plot.Series{Name: "−log P"}
	var exps []float64
	for _, k := range []int{4, 8, 12, 16, 24, 32} {
		e := p.AvailabilityGainExponent(k, core.ConstantPublisher)
		exps = append(exps, e)
		s.X = append(s.X, float64(k*k))
		s.Y = append(s.Y, e)
	}
	chart.Series = append(chart.Series, s)
	res.Charts = append(res.Charts, chart)

	// Quadratic-coefficient fit via doubling differences.
	d1 := exps[3] - exps[1] // e(16)−e(8)
	d2 := exps[5] - exps[3] // e(32)−e(16)
	res.Notef("doubling-difference ratio (→4 for Θ(K²)): %.2f", d2/d1)

	single := p.DownloadTime()
	for _, k := range []int{2, 4, 8} {
		bundle := p.Bundle(k, core.ScaledPublisher).DownloadTime()
		res.Notef("Theorem 3.2 bracket at K=%d: E[T_B]/E[T] = %.3f (≤ K = %d)",
			k, bundle/single, k)
	}
	return res, nil
}

// FluidBaseline compares the naive fluid-model bundling prediction
// (monotone increase) against the availability model (interior optimum)
// under the Figure 3 parameters with 1/R = 900 s.
func FluidBaseline(_ Scale, _ int64) (*Result, error) {
	const maxK = 10
	p := Fig3Params
	p.R = 1.0 / 900
	_, availCurve := p.OptimalBundleSize(maxK, core.ConstantPublisher)

	// Fluid equivalent: service s/μ = 140 s for a unit-size file means
	// μ_fluid = 1/140 files/s; selfish peers (γ→∞), generous download.
	fl := fluid.Params{Lambda: p.Lambda, Mu: 1.0 / 140, C: 1.0 / 10, Gamma: math.Inf(1), Eta: 1}
	fluidCurve := fl.BundleDownloadTimeCurve(maxK)

	res := &Result{
		ID:          "fluid-baseline",
		Description: "Naive fluid bundling prediction vs the availability model",
	}
	chart := &plot.Chart{
		Title:  "Fluid baseline is monotone; availability model has an interior optimum",
		XLabel: "bundle size K",
		YLabel: "expected download time (s)",
	}
	av := plot.Series{Name: "availability model (1/R=900)"}
	fv := plot.Series{Name: "fluid baseline"}
	for k := 1; k <= maxK; k++ {
		av.X = append(av.X, float64(k))
		av.Y = append(av.Y, availCurve[k-1])
		fv.X = append(fv.X, float64(k))
		fv.Y = append(fv.Y, fluidCurve[k-1])
	}
	chart.Series = append(chart.Series, av, fv)
	res.Charts = append(res.Charts, chart)

	bestAvail := 1
	for k := 2; k <= maxK; k++ {
		if availCurve[k-1] < availCurve[bestAvail-1] {
			bestAvail = k
		}
	}
	res.Notef("availability model optimum: K=%d", bestAvail)
	monotone := true
	for k := 1; k < maxK; k++ {
		if fluidCurve[k] < fluidCurve[k-1] {
			monotone = false
		}
	}
	res.Notef("fluid baseline monotone increasing: %v (never predicts a bundling win)", monotone)
	return res, nil
}
