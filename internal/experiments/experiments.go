// Package experiments contains one driver per table and figure of the
// paper's evaluation, shared by cmd/figures (full-scale regeneration)
// and the repository's benchmark harness (scaled-down regeneration with
// reported metrics). Each driver returns a Result carrying the charts,
// timelines, boxplots, tables and headline notes that together
// reconstitute the published artefact.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"swarmavail/internal/obs"
	"swarmavail/internal/plot"
)

// Scale selects how much work a driver does.
type Scale int

const (
	// Quick runs a reduced version suitable for unit tests and
	// benchmarks (seconds).
	Quick Scale = iota
	// Full runs the paper-scale version (tens of seconds to minutes).
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Table is a simple textual table.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// Result is everything a driver produced.
type Result struct {
	// ID names the paper artefact ("fig1", "fig6a", "table-bm", …).
	ID string
	// Description summarises what the artefact shows.
	Description string
	Charts      []*plot.Chart
	Timelines   []*plot.Timeline
	Boxplots    []*plot.Boxplot
	Tables      []Table
	// Notes carries headline numbers (optima, fractions, factors) that
	// EXPERIMENTS.md records against the paper's values.
	Notes []string
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Driver is a runnable experiment.
type Driver struct {
	ID          string
	Description string
	Run         func(scale Scale, seed int64) (*Result, error)
}

// Instrumented returns a copy of d whose Run also records
// experiment_runs_total{id}, experiment_failures_total{id} and an
// experiment_run_seconds{id} histogram on reg. A nil registry returns d
// unchanged. The id label is bounded by the registry of drivers.
func (d Driver) Instrumented(reg *obs.Registry) Driver {
	if reg == nil {
		return d
	}
	inner := d.Run
	id := obs.L("id", d.ID)
	d.Run = func(scale Scale, seed int64) (*Result, error) {
		start := time.Now()
		res, err := inner(scale, seed)
		reg.Histogram("experiment_run_seconds", obs.LatencyBuckets, id).Observe(time.Since(start).Seconds())
		reg.Counter("experiment_runs_total", id).Inc()
		if err != nil {
			reg.Counter("experiment_failures_total", id).Inc()
		}
		return res, err
	}
	return d
}

// metricsReg is the optional registry testbed-backed drivers (chaos)
// thread into their peer fleet and tracker; see SetMetrics.
var metricsReg *obs.Registry

// SetMetrics installs a registry for drivers that run live components:
// the chaos testbed passes it to its tracker and every peer node, so
// one scrape shows the whole fleet (tracker_*, peer_*, chaos_fault_*
// series). Call once at startup, before running drivers; nil disables.
func SetMetrics(reg *obs.Registry) { metricsReg = reg }

// registry holds all drivers keyed by ID.
var registry = map[string]Driver{}

func register(d Driver) {
	if _, dup := registry[d.ID]; dup {
		panic("experiments: duplicate driver " + d.ID)
	}
	registry[d.ID] = d
}

// Lookup returns the driver for an artefact ID.
func Lookup(id string) (Driver, bool) {
	d, ok := registry[id]
	return d, ok
}

// All returns every registered driver sorted by ID.
func All() []Driver {
	out := make([]Driver, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
