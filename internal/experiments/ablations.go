package experiments

import (
	"fmt"

	"swarmavail/internal/core"
	"swarmavail/internal/dist"
	"swarmavail/internal/plot"
	"swarmavail/internal/stats"
	"swarmavail/internal/swarm"
)

func init() {
	register(Driver{
		ID:          "ablation-threshold",
		Description: "Coverage threshold m: unavailability and download time vs m",
		Run:         AblationThreshold,
	})
	register(Driver{
		ID:          "ablation-patience",
		Description: "Patient vs impatient peers in the availability model",
		Run:         AblationPatience,
	})
	register(Driver{
		ID:          "ablation-lingering",
		Description: "Altruistic lingering 1/γ sweep (§3.3.4)",
		Run:         AblationLingering,
	})
	register(Driver{
		ID:          "ablation-arrivals",
		Description: "Poisson vs flash-crowd arrivals in the testbed (§4.3.4)",
		Run:         AblationArrivals,
	})
	register(Driver{
		ID:          "ablation-pieces",
		Description: "Rarest-first vs random piece selection in seedless swarms",
		Run:         AblationPieces,
	})
	register(Driver{
		ID:          "ablation-busyperiod",
		Description: "Exceptional-first-customer busy period (eq. 9) vs homogeneous (eq. 20)",
		Run:         AblationBusyPeriod,
	})
	register(Driver{
		ID:          "ablation-waitinggroup",
		Description: "Plain (eq. 9) vs waiting-group-refined busy period across λ/r",
		Run:         AblationWaitingGroup,
	})
}

// AblationWaitingGroup quantifies the §3.3.2 simplification: the plain
// model ignores the group of patient peers released at each busy-period
// start; the technical-report refinement (core.BusyPeriodRefined) folds
// them in. The gap grows with the expected group size λ/r.
func AblationWaitingGroup(_ Scale, _ int64) (*Result, error) {
	res := &Result{
		ID:          "ablation-waitinggroup",
		Description: "Download-time error of the plain model vs the waiting-group refinement",
	}
	tb := Table{
		Name:   "Plain vs refined download time (s/μ=50 s, u=50 s, r=0.004)",
		Header: []string{"λ/r", "E[T] plain", "E[T] refined", "refinement effect"},
	}
	for _, ratio := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		p := core.SwarmParams{Lambda: 0.004 * ratio, Size: 4, Mu: 0.08, R: 0.004, U: 50}
		plain := p.DownloadTime()
		refined := p.DownloadTimeRefined()
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%.1f", ratio),
			fmt.Sprintf("%.0f", plain),
			fmt.Sprintf("%.0f", refined),
			fmt.Sprintf("%+.1f%%", 100*(refined-plain)/plain),
		})
	}
	res.Tables = append(res.Tables, tb)
	res.Notef("the plain model's E[T] overestimate grows with λ/r; the refinement " +
		"matches the patient-peer simulation within noise (see core tests)")
	return res, nil
}

// AblationThreshold sweeps the coverage threshold m in Theorem 3.3.
func AblationThreshold(_ Scale, _ int64) (*Result, error) {
	p := core.SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	b := p.Bundle(4, core.ScaledPublisher)
	res := &Result{
		ID:          "ablation-threshold",
		Description: "Sensitivity of eq. (14)/(16) to the coverage threshold m",
	}
	chart := &plot.Chart{
		Title:  "Unavailability vs coverage threshold m (K=4 bundle)",
		XLabel: "coverage threshold m",
		YLabel: "unavailability P",
	}
	s := plot.Series{Name: "eq. (16)"}
	for m := 0; m <= 20; m++ {
		pr := b.SinglePublisherUnavailability(m)
		s.X = append(s.X, float64(m))
		s.Y = append(s.Y, pr)
	}
	chart.Series = append(chart.Series, s)
	res.Charts = append(res.Charts, chart)
	res.Notef("P(m=0) = %.3g vs P(m=9) = %.3g vs P(m=20) = %.3g",
		b.SinglePublisherUnavailability(0),
		b.SinglePublisherUnavailability(9),
		b.SinglePublisherUnavailability(20))
	return res, nil
}

// AblationPatience contrasts §3.3.1 (impatient peers never served during
// idle periods) with §3.3.2 (patient peers wait P/r on average).
func AblationPatience(_ Scale, seed int64) (*Result, error) {
	p := core.SwarmParams{Lambda: 0.01, Size: 4, Mu: 0.1, R: 0.004, U: 90}
	res := &Result{
		ID:          "ablation-patience",
		Description: "Model semantics: unserved fraction vs waiting time",
	}
	res.Notef("unavailability P = %.3f: impatient peers lose %.1f%% of requests;"+
		" patient peers wait E[W] = P/r = %.0f s instead",
		p.Unavailability(), 100*p.Unavailability(), p.Unavailability()/p.R)
	res.Notef("patient mean download time: %.0f s (service %.0f s + wait %.0f s)",
		p.DownloadTime(), p.ServiceTime(), p.DownloadTime()-p.ServiceTime())
	return res, nil
}

// AblationLingering sweeps the mean lingering time 1/γ.
func AblationLingering(_ Scale, _ int64) (*Result, error) {
	p := core.SwarmParams{Lambda: 0.01, Size: 4000, Mu: 50, R: 0.001, U: 300}
	res := &Result{
		ID:          "ablation-lingering",
		Description: "Availability and download time vs mean lingering time",
	}
	chart := &plot.Chart{
		Title:  "Altruistic lingering: unavailability vs 1/γ",
		XLabel: "mean lingering time 1/γ (s)",
		YLabel: "unavailability P",
	}
	s := plot.Series{Name: "eq. (9)+(10) with residence s/μ + 1/γ"}
	for _, lg := range []float64{1, 50, 100, 200, 400, 800, 1600} {
		l := core.Lingering{SwarmParams: p, Gamma: 1 / lg}
		s.X = append(s.X, lg)
		s.Y = append(s.Y, l.Unavailability())
	}
	chart.Series = append(chart.Series, s)
	res.Charts = append(res.Charts, chart)

	// The eq. (15) story: tiny unpopular file bundled with a big popular
	// one vs the lingering the solo swarm would need.
	need := core.LingeringForEquivalentLoad(100, 8000, 0.0005, 0.05, 50)
	res.Notef("eq. (15): matching a bundle's load requires 1/γ = %.0f s of lingering "+
		"per peer of the unpopular file", need)
	return res, nil
}

// AblationArrivals repeats a Figure 6(a) point with flash-crowd arrivals
// instead of Poisson (§4.3.4's sensitivity question).
func AblationArrivals(scale Scale, seed int64) (*Result, error) {
	runs := 3
	if scale == Full {
		runs = 8
	}
	k := 4
	collect := func(flash bool) (float64, int, error) {
		var acc stats.Accumulator
		completed := 0
		for run := 0; run < runs; run++ {
			cfg := fig5Config(k, seed+int64(run)*17, 15000)
			cfg.ArrivalCutoff = 1200
			if flash {
				// Same expected arrivals over the horizon, front-loaded.
				agg := cfg.AggregateLambda()
				cfg.Arrivals = dist.FlashCrowd{
					Peak:  3 * agg,
					Decay: 300,
					Floor: agg * (1 - 3*300/1200.0*(1-0.0183)), // ≈ matched mean
				}
			}
			r, err := swarm.Run(cfg)
			if err != nil {
				return 0, 0, err
			}
			acc.AddAll(r.DownloadTimes())
			completed += r.CompletedCount()
		}
		return acc.Mean(), completed, nil
	}
	poisson, np, err := collect(false)
	if err != nil {
		return nil, err
	}
	flash, nf, err := collect(true)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:          "ablation-arrivals",
		Description: "Mean download time at K=4 under Poisson vs flash-crowd arrivals",
	}
	res.Notef("Poisson arrivals: mean %.0f s over %d completions", poisson, np)
	res.Notef("flash-crowd arrivals: mean %.0f s over %d completions", flash, nf)
	res.Notef("qualitative conclusion unchanged: self-sustaining bundles absorb both patterns")
	return res, nil
}

// AblationPieces contrasts rarest-first with random piece selection in
// the seedless setting, where piece diversity decides survival.
func AblationPieces(scale Scale, seed int64) (*Result, error) {
	runs := 3
	if scale == Full {
		runs = 8
	}
	k := 6
	run := func(random bool) (int, error) {
		total := 0
		for i := 0; i < runs; i++ {
			files := make([]swarm.FileSpec, k)
			for j := range files {
				files[j] = swarm.FileSpec{SizeKB: 4000, Lambda: 1.0 / 150}
			}
			r, err := swarm.Run(swarm.Config{
				Seed:                 seed + int64(i)*31,
				Files:                files,
				PeerUpload:           dist.Deterministic{Value: 33},
				PublisherUploadKBps:  50,
				PublisherMode:        swarm.PublisherUntilFirstCompletion,
				Horizon:              1500,
				RandomPieceSelection: random,
			})
			if err != nil {
				return 0, err
			}
			total += r.CompletedCount()
		}
		return total, nil
	}
	rarest, err := run(false)
	if err != nil {
		return nil, err
	}
	random, err := run(true)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:          "ablation-pieces",
		Description: "Peers served in seedless K=6 swarms: rarest-first vs random selection",
	}
	res.Notef("rarest-first: %d completions; random: %d completions (rarest-first ≥ random expected)",
		rarest, random)
	return res, nil
}

// AblationBusyPeriod quantifies what the exceptional-first-customer
// machinery (eq. 9) buys over the naive homogeneous busy period (eq. 20)
// when publisher residence u differs from peer service s/μ.
func AblationBusyPeriod(_ Scale, _ int64) (*Result, error) {
	res := &Result{
		ID:          "ablation-busyperiod",
		Description: "eq. (9) vs eq. (20) parameterisations of the swarm busy period",
	}
	tb := Table{
		Name:   "Busy period models (λ=1/60, s/μ=80 s)",
		Header: []string{"u (s)", "eq. 9 (exceptional)", "eq. 20 naive (ᾱ=s/μ)", "relative error"},
	}
	lambda, smu := 1.0/60, 80.0
	r := 1.0 / 900
	for _, u := range []float64{40, 80, 160, 320, 640} {
		p := core.SwarmParams{Lambda: lambda, Size: smu, Mu: 1, R: r, U: u}
		exact := p.BusyPeriod()
		naive := core.BusyPeriodHomogeneous(lambda+r, smu)
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("%.0f", u),
			fmt.Sprintf("%.0f", exact),
			fmt.Sprintf("%.0f", naive),
			fmt.Sprintf("%+.1f%%", 100*(naive-exact)/exact),
		})
	}
	res.Tables = append(res.Tables, tb)
	res.Notef("the naive model is exact only at u = s/μ; the error grows with |u − s/μ|")
	return res, nil
}
