package experiments

import (
	"testing"

	"swarmavail/internal/obs"
)

// TestChaosSustainability is the PR's headline robustness check: a real
// TCP swarm, a seeded fault layer resetting connections mid-stream, and
// a publisher that departs at first completion — the scaled-down §4.2
// run must still complete. The seed is fixed, so the fault decision
// stream is reproducible run to run.
func TestChaosSustainability(t *testing.T) {
	if testing.Short() {
		t.Skip("live-swarm chaos run")
	}
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)
	res, stats, err := chaosRun(Quick, 42)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	// A chaos run that injected nothing proves nothing.
	if stats.Resets == 0 && stats.DialsDenied == 0 {
		t.Fatalf("no faults injected (stats %+v); increase probabilities or traffic", stats)
	}
	// The fleet shares the registry: tracker, peers and fault counters
	// must all have landed on it.
	if v, _ := reg.Value("tracker_announces_total"); v == 0 {
		t.Error("tracker announces not recorded on the shared registry")
	}
	if reg.Sum("peer_announces_total") == 0 {
		t.Error("peer announces not recorded on the shared registry")
	}
	if v, _ := reg.Value("peer_piece_bytes_rx_total"); v == 0 {
		t.Error("piece throughput not recorded on the shared registry")
	}
	if got := reg.Sum("chaos_fault_resets_total") + reg.Sum("chaos_fault_dials_denied_total"); got == 0 {
		t.Error("fault counters not recorded on the shared registry")
	}
	if len(res.Notes) == 0 || len(res.Timelines) == 0 {
		t.Fatalf("chaos result missing notes/timeline: %+v", res)
	}
	for _, note := range res.Notes {
		t.Log(note)
	}
}
