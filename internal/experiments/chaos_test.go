package experiments

import "testing"

// TestChaosSustainability is the PR's headline robustness check: a real
// TCP swarm, a seeded fault layer resetting connections mid-stream, and
// a publisher that departs at first completion — the scaled-down §4.2
// run must still complete. The seed is fixed, so the fault decision
// stream is reproducible run to run.
func TestChaosSustainability(t *testing.T) {
	if testing.Short() {
		t.Skip("live-swarm chaos run")
	}
	res, stats, err := chaosRun(Quick, 42)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	// A chaos run that injected nothing proves nothing.
	if stats.Resets == 0 && stats.DialsDenied == 0 {
		t.Fatalf("no faults injected (stats %+v); increase probabilities or traffic", stats)
	}
	if len(res.Notes) == 0 || len(res.Timelines) == 0 {
		t.Fatalf("chaos result missing notes/timeline: %+v", res)
	}
	for _, note := range res.Notes {
		t.Log(note)
	}
}
