package experiments

import (
	"fmt"

	"swarmavail/internal/dist"
	"swarmavail/internal/measure"
	"swarmavail/internal/plot"
	"swarmavail/internal/trace"
)

func init() {
	register(Driver{
		ID:          "fig1",
		Description: "CDF of seed availability (first month vs whole trace)",
		Run:         Fig1,
	})
	register(Driver{
		ID:          "sec2.3",
		Description: "Extent of bundling and availability-by-bundling statistics",
		Run:         Sec23,
	})
	register(Driver{
		ID:          "fig7",
		Description: "Peer arrival patterns of new vs old swarms",
		Run:         Fig7,
	})
}

// Fig1 regenerates Figure 1: the CDF of per-swarm seed availability over
// the synthetic seven-month measurement study.
func Fig1(scale Scale, seed int64) (*Result, error) {
	n := 5000
	if scale == Full {
		n = 45693 // the paper's swarm count
	}
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(n, seed))
	firstMonth, full := measure.SeedAvailabilityCDFs(traces)

	fmX, fmY := firstMonth.Points()
	flX, flY := full.Points()
	res := &Result{
		ID:          "fig1",
		Description: "CDF of seed availability in synthetic swarms monitored for 7 months",
		Charts: []*plot.Chart{{
			Title:  "Figure 1: CDF of seed availability",
			XLabel: "seed availability (fraction of time)",
			YLabel: "CDF",
			Series: []plot.Series{
				{Name: "first month", X: downsample(fmX, 200), Y: downsample(fmY, 200)},
				{Name: "whole trace", X: downsample(flX, 200), Y: downsample(flY, 200)},
			},
		}},
	}
	h := measure.Headlines(traces)
	res.Notef("swarms monitored: %d", h.Swarms)
	res.Notef("fully seeded through first month: %.1f%% (paper: <35%%)",
		100*h.FullyAvailableFirstMonth)
	res.Notef("availability ≤20%% over whole trace: %.1f%% (paper: ≈80%%)",
		100*h.MostlyUnavailableOverall)
	return res, nil
}

// Sec23 regenerates the §2.3 statistics: bundling extent per category
// and the availability/demand comparison for book swarms.
func Sec23(scale Scale, seed int64) (*Result, error) {
	n := 40000
	if scale == Full {
		n = 1087933 // the paper's snapshot size
	}
	snaps := trace.GenerateSnapshot(trace.SnapshotConfig{Seed: seed, NumSwarms: n})
	ext := measure.ExtentOfBundling(snaps)

	res := &Result{
		ID:          "sec2.3",
		Description: "Extent of bundling (music, TV, books) and availability by bundling",
	}
	tb := Table{
		Name:   "Extent of bundling (§2.3.1)",
		Header: []string{"category", "swarms", "bundles", "bundle %", "collections"},
	}
	for _, cat := range []trace.Category{trace.Music, trace.TV, trace.Books} {
		e := ext[cat]
		tb.Rows = append(tb.Rows, []string{
			cat.String(),
			fmt.Sprintf("%d", e.Swarms),
			fmt.Sprintf("%d", e.Bundles),
			fmt.Sprintf("%.1f%%", 100*e.BundleFraction()),
			fmt.Sprintf("%d", e.Collections),
		})
	}
	res.Tables = append(res.Tables, tb)

	cmp := measure.CompareAvailability(snaps, trace.Books)
	res.Tables = append(res.Tables, Table{
		Name:   "Availability by bundling, books (§2.3.2)",
		Header: []string{"population", "N", "seedless", "mean downloads"},
		Rows: [][]string{
			{"all book swarms", fmt.Sprintf("%d", cmp.NAll),
				fmt.Sprintf("%.1f%%", 100*cmp.SeedlessAll),
				fmt.Sprintf("%.0f", cmp.MeanDownloadsAll)},
			{"bundled book swarms", fmt.Sprintf("%d", cmp.NBundles),
				fmt.Sprintf("%.1f%%", 100*cmp.SeedlessBundles),
				fmt.Sprintf("%.0f", cmp.MeanDownloadsBundles)},
		},
	})
	res.Notef("books seedless: all %.1f%% vs bundles %.1f%% (paper: 62%% vs 36%%)",
		100*cmp.SeedlessAll, 100*cmp.SeedlessBundles)
	res.Notef("books mean downloads: all %.0f vs bundles %.0f (paper: 2578 vs 4216)",
		cmp.MeanDownloadsAll, cmp.MeanDownloadsBundles)

	// The Friends-style case study (§2.3.2): the largest TV franchise's
	// availability-by-bundling split.
	if cs, ok := measure.LargestCaseStudy(snaps); ok {
		res.Tables = append(res.Tables, Table{
			Name:   "Largest TV franchise (the paper's 'Friends' analysis)",
			Header: []string{"population", "swarms", "bundles"},
			Rows: [][]string{
				{"available", fmt.Sprintf("%d", cs.Available), fmt.Sprintf("%d", cs.AvailableBundles)},
				{"unavailable", fmt.Sprintf("%d", cs.Unavailable), fmt.Sprintf("%d", cs.UnavailableBundles)},
			},
		})
		res.Notef("largest franchise: %d swarms; bundle share %.0f%% among available vs %.0f%% among unavailable "+
			"(paper's Friends: 52 swarms, 21/23 vs 7/29)",
			cs.Swarms, 100*cs.BundleShareAvailable(), 100*cs.BundleShareUnavailable())
	}
	res.Notef("TV bundling/availability odds ratio: %.1f (strong positive correlation)",
		measure.BundlingAvailabilityOddsRatio(snaps, trace.TV))
	return res, nil
}

// Fig7 regenerates Figure 7: typical peer arrival patterns of a young
// swarm (flash crowd) and an old swarm (steady rate).
func Fig7(scale Scale, seed int64) (*Result, error) {
	horizon := 3.0 * 24 * 3600 // three days
	if scale == Full {
		horizon = 14 * 24 * 3600
	}
	r := dist.NewRand(seed)
	young := trace.NewSwarmArrivals(80, 10, 0.8)
	old := trace.OldSwarmArrivals(2.5)
	bucket := 3600.0

	yc, ycv := trace.BinnedArrivals(young, r, horizon, bucket)
	oc, ocv := trace.BinnedArrivals(old, r, horizon, bucket)

	toSeries := func(name string, counts []int) plot.Series {
		s := plot.Series{Name: name}
		for i, c := range counts {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, float64(c))
		}
		return s
	}
	res := &Result{
		ID:          "fig7",
		Description: "Peer arrivals per hour: new (flash crowd) vs old (steady) swarm",
		Charts: []*plot.Chart{{
			Title:  "Figure 7: typical peer arrival patterns",
			XLabel: "hours since start",
			YLabel: "arrivals per hour",
			Series: []plot.Series{
				toSeries(young.Label, yc),
				toSeries(old.Label, oc),
			},
		}},
	}
	res.Notef("arrival-count CV: new swarm %.2f vs old swarm %.2f (new ≫ old)", ycv, ocv)
	return res, nil
}

// downsample keeps at most n evenly spaced points of a series (the CDFs
// have one point per swarm, far more than a chart needs).
func downsample(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, xs[i*len(xs)/n])
	}
	return out
}
