package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-arrivals", "ablation-busyperiod", "ablation-distributions",
		"ablation-impatience", "ablation-lingering", "ablation-patience",
		"ablation-pieces", "ablation-slots", "ablation-threshold",
		"ablation-traffic", "ablation-waitinggroup", "chaos",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6a", "fig6b", "fig6c",
		"fig7", "fluid-baseline", "scaling-laws", "sec2.3", "table-bm",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d drivers, want %d", len(all), len(want))
	}
	for i, d := range all {
		if d.ID != want[i] {
			t.Fatalf("driver %d is %q, want %q", i, d.ID, want[i])
		}
		if d.Description == "" || d.Run == nil {
			t.Fatalf("driver %q incomplete", d.ID)
		}
	}
	if _, ok := Lookup("fig6a"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("scale strings wrong")
	}
}

// runQuick executes a driver at Quick scale and does generic sanity
// checks on its result.
func runQuick(t *testing.T, id string) *Result {
	t.Helper()
	d, ok := Lookup(id)
	if !ok {
		t.Fatalf("driver %q missing", id)
	}
	res, err := d.Run(Quick, 12345)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result ID %q for driver %q", res.ID, id)
	}
	if len(res.Charts)+len(res.Timelines)+len(res.Boxplots)+len(res.Tables)+len(res.Notes) == 0 {
		t.Fatalf("%s produced nothing", id)
	}
	return res
}

func noteContaining(t *testing.T, res *Result, substr string) string {
	t.Helper()
	for _, n := range res.Notes {
		if strings.Contains(n, substr) {
			return n
		}
	}
	t.Fatalf("%s: no note containing %q in %v", res.ID, substr, res.Notes)
	return ""
}

func TestFig1Quick(t *testing.T) {
	res := runQuick(t, "fig1")
	if len(res.Charts) != 1 || len(res.Charts[0].Series) != 2 {
		t.Fatal("fig1 must have one chart with two CDFs")
	}
	noteContaining(t, res, "fully seeded")
	noteContaining(t, res, "availability ≤20%")
}

func TestSec23Quick(t *testing.T) {
	res := runQuick(t, "sec2.3")
	if len(res.Tables) != 3 {
		t.Fatalf("sec2.3 has %d tables", len(res.Tables))
	}
	if len(res.Tables[0].Rows) != 3 {
		t.Fatalf("extent table rows: %d", len(res.Tables[0].Rows))
	}
	noteContaining(t, res, "62%")
	noteContaining(t, res, "largest franchise")
	noteContaining(t, res, "odds ratio")
}

func TestFig3Quick(t *testing.T) {
	res := runQuick(t, "fig3")
	if len(res.Charts[0].Series) != 11 {
		t.Fatalf("fig3 has %d curves, want 11", len(res.Charts[0].Series))
	}
	// The calibrated optima: K*=1 for 1/R ≤ 400 and K*=3 beyond.
	tb := res.Tables[0]
	for _, row := range tb.Rows {
		invR, _ := strconv.ParseFloat(row[0], 64)
		k, _ := strconv.Atoi(row[1])
		if invR <= 400 && k != 1 {
			t.Errorf("1/R=%v: optimum K=%d, want 1", invR, k)
		}
		if invR >= 500 && k != 3 {
			t.Errorf("1/R=%v: optimum K=%d, want 3", invR, k)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	// The paper's curves show an initial increase, a dip, and a final
	// increase. In our calibration the initial-increase phase belongs to
	// the low-1/R curves (K*=1) and the dip-then-increase phase to the
	// high-1/R curves (K*=3); check both.
	res := runQuick(t, "fig3")
	curve := func(name string) []float64 {
		for _, s := range res.Charts[0].Series {
			if s.Name == name {
				return s.Y
			}
		}
		t.Fatalf("curve %q missing", name)
		return nil
	}
	low := curve("1/R=400")
	if !(low[1] > low[0] && low[2] > low[1] && low[3] > low[2]) {
		t.Errorf("1/R=400 should increase initially: %v", low[:4])
	}
	high := curve("1/R=900")
	if !(high[2] < high[1] && high[1] < high[0]) {
		t.Errorf("1/R=900 should dip toward K=3: %v", high[:3])
	}
	if !(high[9] > high[2]) {
		t.Errorf("1/R=900 should increase after the optimum: %v", high)
	}
	// Benefits of bundling grow as R falls: depth of the dip at K=3.
	gain500 := curve("1/R=500")[0] - curve("1/R=500")[2]
	gain1100 := curve("1/R=1100")[0] - curve("1/R=1100")[2]
	if gain1100 <= gain500 {
		t.Errorf("bundling gain should grow with 1/R: %v vs %v", gain1100, gain500)
	}
}

func TestTableBmQuick(t *testing.T) {
	res := runQuick(t, "table-bm")
	tb := res.Tables[0]
	if len(tb.Rows) != 8 {
		t.Fatalf("B(m) table rows: %d", len(tb.Rows))
	}
	// Self-sustaining flag must flip from false to true as K grows.
	if tb.Rows[0][3] != "false" || tb.Rows[7][3] != "true" {
		t.Fatalf("self-sustainability flags wrong: %v", tb.Rows)
	}
}

func TestFig2Quick(t *testing.T) {
	res := runQuick(t, "fig2")
	if len(res.Timelines) != 2 {
		t.Fatalf("fig2 timelines: %d", len(res.Timelines))
	}
	foundPub := false
	for _, s := range res.Timelines[0].Spans {
		if s.Thick {
			foundPub = true
		}
	}
	if !foundPub {
		t.Fatal("no publisher span in fig2")
	}
}

func TestFig4Quick(t *testing.T) {
	res := runQuick(t, "fig4")
	if len(res.Charts[0].Series) != 6 {
		t.Fatalf("fig4 series: %d", len(res.Charts[0].Series))
	}
	// Self-sustainability: K=10's final completions far exceed K=1's.
	final := map[string]float64{}
	for _, s := range res.Charts[0].Series {
		final[s.Name] = s.Y[len(s.Y)-1]
	}
	if final["K=10"] < final["K=1"]+5 {
		t.Fatalf("K=10 (%v) not clearly above K=1 (%v)", final["K=10"], final["K=1"])
	}
}

func TestFig5Quick(t *testing.T) {
	res := runQuick(t, "fig5")
	if len(res.Timelines) != 3 {
		t.Fatalf("fig5 timelines: %d", len(res.Timelines))
	}
	for _, tl := range res.Timelines {
		if len(tl.Spans) < 3 {
			t.Fatalf("timeline %q nearly empty", tl.Title)
		}
	}
}

func TestFig6aQuick(t *testing.T) {
	res := runQuick(t, "fig6a")
	if len(res.Charts[0].Series) != 2 {
		t.Fatal("fig6a needs testbed + model series")
	}
	sim := res.Charts[0].Series[0].Y
	// The U shape: K=1 much worse than the best K; the tail grows again.
	best := sim[0]
	bestK := 1
	for i, v := range sim {
		if v < best {
			best, bestK = v, i+1
		}
	}
	if bestK < 3 || bestK > 6 {
		t.Errorf("testbed optimum K=%d outside [3,6]: %v", bestK, sim)
	}
	if sim[0] < 1.3*best {
		t.Errorf("K=1 (%v) not clearly worse than optimum (%v)", sim[0], best)
	}
	noteContaining(t, res, "model optimal K=")
}

func TestFig6cQuick(t *testing.T) {
	res := runQuick(t, "fig6c")
	if len(res.Boxplots) != 1 || len(res.Boxplots[0].Groups) != 5 {
		t.Fatal("fig6c needs 5 boxplot groups")
	}
	// The robust testbed claim: the bundle beats the unpopular solo
	// files (the paper's headline for this experiment). Solo-file
	// ordering among files 1–4 is noise in the whole-piece substrate and
	// is asserted on the model output instead.
	groups := res.Boxplots[0].Groups
	bundle := groups[4].Mean
	beats := 0
	for _, g := range groups[1:4] {
		if bundle < g.Mean {
			beats++
		}
	}
	if beats < 2 {
		t.Errorf("bundle (%v) beats only %d of 3 unpopular solo files: %+v",
			bundle, beats, groups)
	}
	// Model ordering: solo E[T] strictly increasing in 1/λ.
	var modelSolo []float64
	for _, n := range res.Notes {
		if strings.Contains(n, "model: file") {
			f := strings.Fields(n)
			v, err := strconv.ParseFloat(f[len(f)-2], 64)
			if err != nil {
				t.Fatalf("cannot parse %q", n)
			}
			modelSolo = append(modelSolo, v)
		}
	}
	if len(modelSolo) != 4 {
		t.Fatalf("model notes missing: %v", res.Notes)
	}
	for i := 1; i < len(modelSolo); i++ {
		if modelSolo[i] < modelSolo[i-1] {
			t.Fatalf("model solo ordering broken: %v", modelSolo)
		}
	}
	noteContaining(t, res, "bundle mean")
}

func TestFig7Quick(t *testing.T) {
	res := runQuick(t, "fig7")
	noteContaining(t, res, "CV")
}

func TestScalingLawsQuick(t *testing.T) {
	res := runQuick(t, "scaling-laws")
	note := noteContaining(t, res, "doubling-difference ratio")
	// Extract the trailing number and check it is near 4.
	fields := strings.Fields(note)
	v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		t.Fatalf("cannot parse ratio from %q", note)
	}
	if v < 3.5 || v > 4.5 {
		t.Fatalf("scaling ratio %v, want ≈4", v)
	}
}

func TestFluidBaselineQuick(t *testing.T) {
	res := runQuick(t, "fluid-baseline")
	noteContaining(t, res, "monotone increasing: true")
	chart := res.Charts[0]
	if len(chart.Series) != 2 {
		t.Fatal("fluid chart needs two series")
	}
	// The availability model's curve must dip below its K=1 value
	// somewhere; the fluid curve never does.
	avail := chart.Series[0].Y
	dips := false
	for _, v := range avail[1:] {
		if v < avail[0] {
			dips = true
		}
	}
	if !dips {
		t.Fatalf("availability model curve never dips: %v", avail)
	}
}

func TestAblationsQuick(t *testing.T) {
	for _, id := range []string{
		"ablation-threshold", "ablation-patience", "ablation-lingering",
		"ablation-arrivals", "ablation-pieces", "ablation-busyperiod",
		"ablation-waitinggroup", "ablation-distributions",
		"ablation-traffic", "ablation-impatience", "ablation-slots",
	} {
		res := runQuick(t, id)
		if len(res.Notes) == 0 {
			t.Errorf("%s: no notes", id)
		}
	}
}

func TestAblationThresholdMonotone(t *testing.T) {
	res := runQuick(t, "ablation-threshold")
	ys := res.Charts[0].Series[0].Y
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]-1e-12 {
			t.Fatalf("P(m) not non-decreasing at m=%d: %v", i, ys)
		}
	}
}

func TestFig6bQuick(t *testing.T) {
	res := runQuick(t, "fig6b")
	noteContaining(t, res, "optimal K=")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	register(Driver{ID: "fig1", Description: "dup", Run: Fig1})
}
