package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"swarmavail/internal/ingest"
	"swarmavail/internal/obs"
)

// readPathCluster boots a 3-node cluster behind a gateway plus a
// reference engine that saw the identical stream, with every node (and
// the reference) flushed, so snapshot answers equal barrier answers.
func readPathCluster(t *testing.T, reg *obs.Registry) ([]*testNode, *Gateway, *httptest.Server, *ingest.Engine) {
	t.Helper()
	nodes := []*testNode{newTestNode(t), newTestNode(t), newTestNode(t)}
	cfg := GatewayConfig{
		Nodes: []NodeConfig{
			{Name: "n0", URL: nodes[0].srv.URL},
			{Name: "n1", URL: nodes[1].srv.URL},
			{Name: "n2", URL: nodes[2].srv.URL},
		},
		ClientConfig: fastClient,
		HealthEvery:  time.Hour,
		Metrics:      reg,
		Logf:         t.Logf,
	}
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	gw := httptest.NewServer(g.Handler())
	t.Cleanup(gw.Close)

	ref := ingest.New(ingest.Config{Shards: 2, BatchSize: 16})
	t.Cleanup(func() { ref.Close() })
	client := ingest.NewHTTPClient(func() ingest.HTTPClientConfig {
		c := fastClient
		c.BaseURL = gw.URL
		return c
	}())
	for batch := 0; batch < 8; batch++ {
		recs := mkRecords(64, 97, batch)
		if err := client.Push(context.Background(), recs); err != nil {
			t.Fatalf("push %d: %v", batch, err)
		}
		ops := make([]ingest.Op, len(recs))
		for i, rec := range recs {
			ops[i] = ingest.EventOp(rec)
		}
		if err := ref.Submit(ops); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		n.e.Flush()
	}
	ref.Flush()
	return nodes, g, gw, ref
}

func getTagged(t *testing.T, url, inm string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), string(body)
}

func renderRef(write func(w http.ResponseWriter)) string {
	rec := httptest.NewRecorder()
	write(rec)
	return rec.Body.String()
}

// TestGatewayWindowParity: the gateway's windowed answers over a 3-node
// cluster are byte-identical to a single engine that saw the whole
// stream — on the snapshot path and on ?consistent=1.
func TestGatewayWindowParity(t *testing.T) {
	_, _, gw, ref := readPathCluster(t, nil)
	refWin := ref.Window()

	for _, d := range []string{"24h", "7", "2000"} {
		days, err := ingest.ParseWindowDays(d)
		if err != nil {
			t.Fatal(err)
		}
		want := renderRef(func(w http.ResponseWriter) { ingest.WriteWindow(w, refWin, days) })
		for _, q := range []string{"", "&consistent=1"} {
			code, _, got := getTagged(t, gw.URL+"/v1/availability/window?d="+d+q, "")
			if code != http.StatusOK {
				t.Fatalf("GET window d=%s%s: status %d", d, q, code)
			}
			if got != want {
				t.Fatalf("merged window d=%s%s diverged from single-engine answer\n--- gateway ---\n%s--- reference ---\n%s", d, q, got, want)
			}
		}
	}

	wantState := renderRef(func(w http.ResponseWriter) { ingest.WriteJSON(w, refWin) })
	for _, q := range []string{"", "?consistent=1"} {
		code, _, got := getTagged(t, gw.URL+"/v1/window/state"+q, "")
		if code != http.StatusOK {
			t.Fatalf("GET /v1/window/state%s: status %d", q, code)
		}
		if got != wantState {
			t.Fatalf("merged window state%s diverged\n--- gateway ---\n%s--- reference ---\n%s", q, got, wantState)
		}
	}
}

// TestGatewayConditionalReads pins the two cache layers: the gateway
// revalidates each node with If-None-Match (a 304 reuses the parsed
// state and counts a read_cache_hits_total), and hands its own clients
// an ETag that 304s until the cluster state actually moves.
func TestGatewayConditionalReads(t *testing.T) {
	reg := obs.NewRegistry()
	nodes, _, gw, _ := readPathCluster(t, reg)

	code, etag, body := getTagged(t, gw.URL+"/v1/summary", "")
	if code != http.StatusOK || etag == "" {
		t.Fatalf("first read: status %d etag %q", code, etag)
	}
	served := int64(0)
	for _, n := range nodes {
		served += n.reads.Load()
	}

	// Same state: the client's validator holds, and the node fleet
	// serves no new bodies (every scatter leg 304s).
	code2, etag2, _ := getTagged(t, gw.URL+"/v1/summary", etag)
	if code2 != http.StatusNotModified || etag2 != etag {
		t.Fatalf("revalidation: status %d etag %q, want 304 with %q", code2, etag2, etag)
	}
	if hits, _ := reg.Value("read_cache_hits_total"); hits < float64(len(nodes)) {
		t.Fatalf("read_cache_hits_total = %v, want ≥ %d (one 304 per node)", hits, len(nodes))
	}
	for _, n := range nodes {
		served2 := n.reads.Load()
		if served2 > served {
			t.Fatalf("a node re-served a full body on an unchanged cluster")
		}
	}

	// An unconditional re-read also rides the node caches: same bytes,
	// no new node bodies.
	code3, _, body3 := getTagged(t, gw.URL+"/v1/summary", "")
	if code3 != http.StatusOK || body3 != body {
		t.Fatalf("cached re-read diverged (status %d)", code3)
	}

	// New data moves the validator.
	n0 := nodes[0]
	if err := n0.e.Submit([]ingest.Op{ingest.EventOp(ingest.Record{SwarmID: 5, PeerID: 99, Seed: true, Online: true, Time: 50})}); err != nil {
		t.Fatal(err)
	}
	n0.e.Flush()
	code4, etag4, _ := getTagged(t, gw.URL+"/v1/summary", etag)
	if code4 != http.StatusOK || etag4 == etag || etag4 == "" {
		t.Fatalf("post-write read: status %d etag %q (old %q), want 200 with a fresh validator", code4, etag4, etag)
	}

	// Consistent reads carry no validator: every node must answer.
	code5, etag5, _ := getTagged(t, gw.URL+"/v1/summary?consistent=1", "")
	if code5 != http.StatusOK || etag5 != "" {
		t.Fatalf("consistent read: status %d etag %q, want 200 untagged", code5, etag5)
	}
}

// TestGatewayCollapsedReads: concurrent identical snapshot-path
// scatter-gathers collapse into one flight; consistent reads never do.
func TestGatewayCollapsedReads(t *testing.T) {
	reg := obs.NewRegistry()
	nodes, _, gw, _ := readPathCluster(t, reg)
	for _, n := range nodes {
		n.readDelay.Store(int64(50 * time.Millisecond))
	}

	const readers = 8
	bodies := make([]string, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, body := getTagged(t, gw.URL+"/v1/summary", "")
			if code != http.StatusOK {
				t.Errorf("reader %d: status %d", i, code)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < readers; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("collapsed readers saw different bodies")
		}
	}
	collapsed, _ := reg.Value("gateway_collapsed_reads_total")
	if collapsed < 1 {
		t.Fatalf("gateway_collapsed_reads_total = %v, want ≥ 1 with %d concurrent identical reads", collapsed, readers)
	}
	t.Logf("collapsed %v of %d concurrent reads", collapsed, readers)
}
