package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"swarmavail/internal/obs"
)

func openGate(t *testing.T, dir string) (*EpochGate, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	g, err := OpenEpochGate(dir, reg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return g, reg
}

// do sends one request through the gate's middleware around a handler
// that records whether it was reached.
func do(t *testing.T, g *EpochGate, method, stamp string) (*httptest.ResponseRecorder, bool) {
	t.Helper()
	reached := false
	h := g.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached = true
		w.WriteHeader(http.StatusOK)
	}))
	var body *strings.Reader
	if method == http.MethodPost {
		body = strings.NewReader("x")
	} else {
		body = strings.NewReader("")
	}
	req := httptest.NewRequest(method, "/v1/ingest", body)
	if stamp != "" {
		req.Header.Set(EpochHeader, stamp)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec, reached
}

func TestEpochGatePersistence(t *testing.T) {
	dir := t.TempDir()
	g, _ := openGate(t, dir)
	if g.Epoch() != 1 || g.Fenced() {
		t.Fatalf("fresh gate: epoch=%d fenced=%v, want 1/false", g.Epoch(), g.Fenced())
	}
	if err := g.Adopt(3); err != nil {
		t.Fatal(err)
	}

	g2, _ := openGate(t, dir)
	if g2.Epoch() != 3 || g2.Fenced() {
		t.Fatalf("reopened gate: epoch=%d fenced=%v, want 3/false", g2.Epoch(), g2.Fenced())
	}

	// A stamped newer request fences the node; the fence must survive a
	// restart — a zombie that reboots comes back demoted, not writable.
	if rec, _ := do(t, g2, http.MethodPost, "5"); rec.Code != http.StatusConflict {
		t.Fatalf("newer-epoch request: %d, want 409", rec.Code)
	}
	g3, _ := openGate(t, dir)
	if g3.Epoch() != 5 || !g3.Fenced() {
		t.Fatalf("gate after fence+restart: epoch=%d fenced=%v, want 5/true", g3.Epoch(), g3.Fenced())
	}
}

func TestEpochGateAdopt(t *testing.T) {
	g, _ := openGate(t, "") // memory-only: engines without a data dir
	if err := g.Adopt(4); err != nil {
		t.Fatal(err)
	}
	if err := g.Adopt(2); err == nil {
		t.Fatal("adopting a lower epoch succeeded")
	}
	// Fence, then re-adopt at a higher epoch: the fence clears — the
	// node is the legitimate owner again (e.g. re-promoted).
	if rec, _ := do(t, g, http.MethodPost, "6"); rec.Code != http.StatusConflict {
		t.Fatalf("fencing request: %d, want 409", rec.Code)
	}
	if !g.Fenced() || g.Epoch() != 6 {
		t.Fatalf("after fence: epoch=%d fenced=%v", g.Epoch(), g.Fenced())
	}
	if err := g.Adopt(7); err != nil {
		t.Fatal(err)
	}
	if g.Fenced() || g.Epoch() != 7 {
		t.Fatalf("after re-adopt: epoch=%d fenced=%v, want 7/false", g.Epoch(), g.Fenced())
	}
}

// TestEpochGateMiddlewareAlgebra walks the full decision table.
func TestEpochGateMiddlewareAlgebra(t *testing.T) {
	g, reg := openGate(t, t.TempDir())
	if err := g.Adopt(3); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		method     string
		stamp      string
		code       int
		reached    bool
		wantEpoch  uint64 // expected response header epoch
		wantFenced bool   // gate state afterwards
	}{
		{"unstamped read", http.MethodGet, "", 200, true, 3, false},
		{"unstamped write", http.MethodPost, "", 200, true, 3, false},
		{"equal stamp", http.MethodPost, "3", 200, true, 3, false},
		{"stale stamp", http.MethodPost, "2", 409, false, 3, false},
		{"bad stamp", http.MethodPost, "not-a-number", 400, false, 3, false},
		{"zero stamp", http.MethodPost, "0", 400, false, 3, false},
		// A newer stamp demotes — even on a read: the gateway's
		// post-heal probe is a stamped GET.
		{"newer stamp read", http.MethodGet, "5", 409, false, 5, true},
		// Once fenced: unstamped reads still serve, everything else 409s.
		{"fenced unstamped read", http.MethodGet, "", 200, true, 5, true},
		{"fenced unstamped write", http.MethodPost, "", 409, false, 5, true},
		{"fenced equal stamp", http.MethodPost, "5", 409, false, 5, true},
	}
	for _, tc := range cases {
		rec, reached := do(t, g, tc.method, tc.stamp)
		if rec.Code != tc.code || reached != tc.reached {
			t.Fatalf("%s: code=%d reached=%v, want %d/%v", tc.name, rec.Code, reached, tc.code, tc.reached)
		}
		if got := rec.Header().Get(EpochHeader); got != strconv.FormatUint(tc.wantEpoch, 10) {
			t.Fatalf("%s: response epoch header %q, want %d", tc.name, got, tc.wantEpoch)
		}
		if g.Fenced() != tc.wantFenced {
			t.Fatalf("%s: gate fenced=%v, want %v", tc.name, g.Fenced(), tc.wantFenced)
		}
		if rec.Code == http.StatusConflict {
			var body struct {
				Epoch uint64 `json:"epoch"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Epoch != tc.wantEpoch {
				t.Fatalf("%s: 409 body %q (err %v), want epoch %d", tc.name, rec.Body.String(), err, tc.wantEpoch)
			}
		}
	}

	// Four rejects above; the counter and the epoch gauge must agree.
	if v, ok := reg.Value("cluster_fenced_requests_total"); !ok || v != 4 {
		t.Fatalf("cluster_fenced_requests_total = %v ok=%v, want 4", v, ok)
	}
	if v, ok := reg.Value("cluster_epoch"); !ok || v != 5 {
		t.Fatalf("cluster_epoch = %v ok=%v, want 5", v, ok)
	}
}
