package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"swarmavail/internal/ingest"
)

// testLeader is an in-process durable engine with the WAL-shipping
// routes mounted, standing in for a leader availd.
type testLeader struct {
	e   *ingest.Engine
	srv *httptest.Server
	dir string
}

func newTestLeader(t *testing.T) *testLeader {
	t.Helper()
	dir := t.TempDir()
	e, _, err := ingest.OpenDurable(
		ingest.Config{Shards: 2, BatchSize: 16},
		ingest.DurabilityConfig{Dir: dir},
	)
	if err != nil {
		t.Fatalf("open leader: %v", err)
	}
	mux := http.NewServeMux()
	(&WALServer{Log: e.WAL(), Dir: dir}).Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &testLeader{e: e, srv: srv, dir: dir}
}

// submit pushes one batch of synthetic events through the durable
// engine (journaled, so shippable).
func (l *testLeader) submit(t *testing.T, round, n int) {
	t.Helper()
	ops := make([]ingest.Op, n)
	for i := range ops {
		ops[i] = ingest.EventOp(ingest.Record{
			SwarmID: (round*n + i) % 37,
			PeerID:  uint64(round + 1),
			Seed:    i%3 != 2,
			Online:  (round+i)%2 == 0,
			Time:    float64(round*100+i) / 50,
		})
	}
	if err := l.e.Submit(ops); err != nil {
		t.Fatalf("leader submit: %v", err)
	}
}

// stateBytes renders an engine's full mergeable state, the equality
// currency of these tests.
func stateBytes(t *testing.T, e *ingest.Engine) []byte {
	t.Helper()
	e.Flush()
	raw, err := json.Marshal(e.Summary().State())
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestFollowerCatchUpAndPromote(t *testing.T) {
	leader := newTestLeader(t)
	for r := 0; r < 10; r++ {
		leader.submit(t, r, 32)
	}

	f, err := NewFollower(FollowerConfig{
		LeaderURL: leader.srv.URL,
		Dir:       t.TempDir(),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := f.Sync(ctx); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got, want := f.Shipped(), leader.e.WAL().LastSeq(); got != want {
		t.Fatalf("shipped %d, leader at %d", got, want)
	}

	// More writes land after the first catch-up; the next pass ships
	// just the delta.
	for r := 10; r < 15; r++ {
		leader.submit(t, r, 32)
	}
	if err := f.Sync(ctx); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	if got, want := f.Shipped(), leader.e.WAL().LastSeq(); got != want {
		t.Fatalf("after delta: shipped %d, leader at %d", got, want)
	}

	promoted, rs, err := f.Promote(ingest.Config{Shards: 2})
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer promoted.Close()
	t.Logf("promotion recovery: %+v", rs)
	if got, want := stateBytes(t, promoted), stateBytes(t, leader.e); string(got) != string(want) {
		t.Fatalf("promoted state diverged from leader\n--- promoted ---\n%s\n--- leader ---\n%s", got, want)
	}
	leader.e.Close()
}

// TestFollowerCheckpointBootstrap: a follower arriving after the leader
// checkpointed (journal truncated) must re-base on the checkpoint, then
// stream the tail.
func TestFollowerCheckpointBootstrap(t *testing.T) {
	leader := newTestLeader(t)
	for r := 0; r < 8; r++ {
		leader.submit(t, r, 32)
	}
	leader.e.Flush()
	if _, err := leader.e.Checkpoint(); err != nil {
		t.Fatalf("leader checkpoint: %v", err)
	}
	// A tail beyond the checkpoint, so the bootstrap path and the
	// streaming path both carry real data.
	for r := 8; r < 12; r++ {
		leader.submit(t, r, 32)
	}

	f, err := NewFollower(FollowerConfig{
		LeaderURL: leader.srv.URL,
		Dir:       t.TempDir(),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(context.Background()); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if f.Bootstraps() != 1 {
		t.Fatalf("expected exactly one checkpoint bootstrap, got %d", f.Bootstraps())
	}
	if got, want := f.Shipped(), leader.e.WAL().LastSeq(); got != want {
		t.Fatalf("shipped %d, leader at %d", got, want)
	}

	promoted, _, err := f.Promote(ingest.Config{Shards: 2})
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer promoted.Close()
	if got, want := stateBytes(t, promoted), stateBytes(t, leader.e); string(got) != string(want) {
		t.Fatalf("bootstrapped state diverged from leader\n--- promoted ---\n%s\n--- leader ---\n%s", got, want)
	}
	leader.e.Close()
}

// TestFollowerResume: a restarted follower resumes from its on-disk
// watermark instead of re-shipping history.
func TestFollowerResume(t *testing.T) {
	leader := newTestLeader(t)
	for r := 0; r < 6; r++ {
		leader.submit(t, r, 16)
	}
	dir := t.TempDir()
	f1, err := NewFollower(FollowerConfig{LeaderURL: leader.srv.URL, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	mark := f1.Shipped()
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := NewFollower(FollowerConfig{LeaderURL: leader.srv.URL, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if f2.Shipped() != mark {
		t.Fatalf("restarted follower lost its watermark: %d, had %d", f2.Shipped(), mark)
	}
	leader.submit(t, 6, 16)
	if err := f2.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := f2.Shipped(), leader.e.WAL().LastSeq(); got != want {
		t.Fatalf("resumed follower shipped %d, leader at %d", got, want)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	leader.e.Close()
}

// TestWALStreamTruncationRace: a checkpoint can truncate the leader's
// journal between a follower's status fetch and its stream request —
// or mid-stream. The follower must come through every such race via a
// clean 410 Gone → checkpoint bootstrap, never a torn read: after the
// churn settles, its promoted state must equal the leader's exactly.
func TestWALStreamTruncationRace(t *testing.T) {
	leader := newTestLeader(t)
	// Two checkpointed rounds before the follower exists: its first sync
	// deterministically finds the history truncated and must re-base.
	leader.submit(t, 0, 16)
	leader.submit(t, 1, 16)
	leader.e.Flush()
	if _, err := leader.e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	f, err := NewFollower(FollowerConfig{
		LeaderURL: leader.srv.URL,
		Dir:       t.TempDir(),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Churn: the leader keeps appending and checkpointing (each
	// checkpoint truncates the journal) while the follower syncs
	// concurrently, so syncs land at every point of the truncation
	// window.
	const rounds = 40
	done := make(chan error, 1)
	go func() {
		for r := 2; r < rounds; r++ {
			ops := make([]ingest.Op, 16)
			for i := range ops {
				ops[i] = ingest.EventOp(ingest.Record{
					SwarmID: (r*16 + i) % 37,
					PeerID:  uint64(r + 1),
					Seed:    i%3 != 2,
					Online:  (r+i)%2 == 0,
					Time:    float64(r*100+i) / 50,
				})
			}
			if err := leader.e.Submit(ops); err != nil {
				done <- err
				return
			}
			leader.e.Flush()
			if _, err := leader.e.Checkpoint(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	syncs := 0
churn:
	for {
		if err := f.Sync(ctx); err != nil {
			t.Fatalf("sync during checkpoint churn: %v", err)
		}
		syncs++
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("leader churn: %v", err)
			}
			break churn
		default:
		}
	}

	// The leader is quiet now; one more pass must land exactly at its
	// tip, and the churn must have forced at least one bootstrap.
	if err := f.Sync(ctx); err != nil {
		t.Fatalf("final sync: %v", err)
	}
	if got, want := f.Shipped(), leader.e.WAL().LastSeq(); got != want {
		t.Fatalf("shipped %d after churn, leader at %d", got, want)
	}
	if f.Bootstraps() < 1 {
		t.Fatal("no 410 → checkpoint bootstrap happened; the race was not exercised")
	}
	t.Logf("%d syncs raced %d rounds of truncation, %d bootstraps", syncs, rounds, f.Bootstraps())

	promoted, _, err := f.Promote(ingest.Config{Shards: 2})
	if err != nil {
		t.Fatalf("promote after churn: %v", err)
	}
	defer promoted.Close()
	if got, want := stateBytes(t, promoted), stateBytes(t, leader.e); string(got) != string(want) {
		t.Fatalf("torn read: promoted state diverged from leader\n--- promoted ---\n%s\n--- leader ---\n%s", got, want)
	}
	leader.e.Close()
}

func TestWALServerStatus(t *testing.T) {
	leader := newTestLeader(t)
	leader.submit(t, 0, 8)
	leader.submit(t, 1, 8)
	st, err := FetchWALStatus(http.DefaultClient, leader.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.FirstSeq != 1 || st.LastSeq < 2 || st.CheckpointSeq != 0 {
		t.Fatalf("unexpected status %+v", st)
	}
	last := st.LastSeq
	leader.e.Flush()
	if _, err := leader.e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err = FetchWALStatus(http.DefaultClient, leader.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.CheckpointSeq != last {
		t.Fatalf("checkpoint seq %d, want %d", st.CheckpointSeq, last)
	}
	// The journal was truncated by the checkpoint: streaming from 1 is
	// now Gone.
	resp, err := http.Get(leader.srv.URL + "/v1/wal/stream?from=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stream from truncated seq: got %d, want 410", resp.StatusCode)
	}
	leader.e.Close()
}
