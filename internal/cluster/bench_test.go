package cluster

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"swarmavail/internal/ingest"
)

// BenchmarkGatewayIngest measures end-to-end gateway throughput: HTTP
// in, ring partitioning, per-node fan-out over HTTP, engine Submit on
// every node. Three in-process nodes, batches of 512 records.
func BenchmarkGatewayIngest(b *testing.B) {
	nodes := make([]NodeConfig, 3)
	for i := range nodes {
		n := startTestNode(ingest.Config{Shards: 2, BatchSize: 256})
		b.Cleanup(func() { n.srv.Close(); n.e.Close() })
		nodes[i] = NodeConfig{URL: n.srv.URL}
	}
	g, err := NewGateway(GatewayConfig{
		Nodes:       nodes,
		HealthEvery: time.Hour,
		ClientConfig: ingest.HTTPClientConfig{
			MaxAttempts: 2,
			BackoffBase: time.Millisecond,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	client := ingest.NewHTTPClient(ingest.HTTPClientConfig{
		BaseURL:     gw.URL,
		MaxAttempts: 2,
	})
	const batch = 512
	recs := mkRecords(batch, 499, 1)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Push(context.Background(), recs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
}
