package cluster

import "testing"

func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 10_000; id++ {
		if a.Node(id) != b.Node(id) {
			t.Fatalf("swarm %d routes to %d on one ring, %d on another", id, a.Node(id), b.Node(id))
		}
	}
}

func TestRingBalance(t *testing.T) {
	const nodes, swarms = 3, 30_000
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, nodes)
	for id := 0; id < swarms; id++ {
		n := r.Node(id)
		if n < 0 || n >= nodes {
			t.Fatalf("swarm %d routed to out-of-range node %d", id, n)
		}
		counts[n]++
	}
	// Consistent hashing with 64 vnodes is not perfectly even, but every
	// node must carry a real share: at least half of fair.
	fair := swarms / nodes
	for n, c := range counts {
		if c < fair/2 || c > 2*fair {
			t.Fatalf("node %d holds %d of %d swarms (fair share %d): ring badly unbalanced %v",
				n, c, swarms, fair, counts)
		}
	}
	t.Logf("placement across %d nodes: %v", nodes, counts)
}

// TestRingSingleNode: with one node, everything routes to it.
func TestRingSingleNode(t *testing.T) {
	r, err := NewRing(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 100; id++ {
		if r.Node(id) != 0 {
			t.Fatalf("swarm %d routed to node %d on a 1-node ring", id, r.Node(id))
		}
	}
}

func TestRingRejectsEmptyMembership(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("NewRing(0, …) succeeded")
	}
}

// TestRingStabilityUnderGrowth: adding a node moves some swarms (it
// must — the new node needs a share) but leaves the majority of
// placements untouched. That minimal-disruption property is why the
// gateway hashes with a ring rather than mod-N.
func TestRingStabilityUnderGrowth(t *testing.T) {
	const swarms = 30_000
	r3, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for id := 0; id < swarms; id++ {
		if r3.Node(id) != r4.Node(id) {
			moved++
		}
	}
	// Ideal reshuffle moves 1/4 of keys; mod-N would move ~3/4. Assert
	// we are much closer to the former.
	if moved > swarms/2 {
		t.Fatalf("%d of %d swarms moved when growing 3→4 nodes; consistent hashing should move ~1/4", moved, swarms)
	}
	t.Logf("3→4 nodes moved %d/%d swarms (ideal %d)", moved, swarms, swarms/4)
}
