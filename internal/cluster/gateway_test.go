package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"swarmavail/internal/ingest"
	"swarmavail/internal/trace"
)

// testNode is an in-process stand-in for one availd: engine plus the
// slice of the API the gateway talks to.
type testNode struct {
	e         *ingest.Engine
	srv       *httptest.Server
	healthy   atomic.Bool
	failAll   atomic.Bool  // 500 every ingest, for partial-failure tests
	readDelay atomic.Int64 // ns to stall reads, for collapse tests
	reads     atomic.Int64 // full (non-304) read bodies served
}

func newTestNode(t *testing.T) *testNode {
	t.Helper()
	n := startTestNode(ingest.Config{Shards: 2, BatchSize: 16})
	t.Cleanup(func() { n.srv.Close(); n.e.Close() })
	return n
}

func startTestNode(cfg ingest.Config) *testNode {
	n := &testNode{e: ingest.New(cfg)}
	n.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		if n.failAll.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		sc := trace.NewScanner[ingest.Record](r.Body)
		var ops []ingest.Op
		for sc.Scan() {
			ops = append(ops, ingest.EventOp(sc.Record()))
		}
		if err := sc.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := n.e.Submit(ops); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		ingest.WriteJSON(w, map[string]int{"accepted": len(ops)})
	})
	// The read handlers mirror availd's: the default path serves the
	// ETag-tagged lock-free snapshot, ?consistent=1 the queue barrier.
	// The mock flushes up front so either path sees every acked push —
	// the read-your-writes discipline the older gateway tests assume.
	mux.HandleFunc("GET /v1/state", func(w http.ResponseWriter, r *http.Request) {
		if d := n.readDelay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		n.e.Flush()
		if r.URL.Query().Get("consistent") != "" {
			n.reads.Add(1)
			ingest.WriteState(w, n.e.Summary())
			return
		}
		snap := n.e.Snapshot()
		if ingest.NotModified(w, r, snap.ETag) {
			return
		}
		n.reads.Add(1)
		ingest.WriteState(w, snap.Summary)
	})
	mux.HandleFunc("GET /v1/window/state", func(w http.ResponseWriter, r *http.Request) {
		n.e.Flush()
		if r.URL.Query().Get("consistent") != "" {
			n.reads.Add(1)
			ingest.WriteJSON(w, n.e.Window())
			return
		}
		snap := n.e.Snapshot()
		if ingest.NotModified(w, r, snap.ETag) {
			return
		}
		n.reads.Add(1)
		ingest.WriteJSON(w, snap.Window)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !n.healthy.Load() {
			http.Error(w, `{"state":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		ingest.WriteJSON(w, map[string]string{"state": "serving"})
	})
	n.srv = httptest.NewServer(mux)
	return n
}

// fastClient is a retry-quick client template for tests.
var fastClient = ingest.HTTPClientConfig{
	MaxAttempts: 3,
	BackoffBase: 2 * time.Millisecond,
	BackoffCap:  10 * time.Millisecond,
}

func mkRecords(n, swarms, salt int) []ingest.Record {
	recs := make([]ingest.Record, n)
	for i := range recs {
		recs[i] = ingest.Record{
			SwarmID: (salt*n + i) % swarms,
			PeerID:  uint64(salt + 1),
			Seed:    i%3 != 2,
			Online:  (salt+i)%2 == 0,
			Time:    float64(salt*1000+i) / 100,
		}
	}
	return recs
}

// TestGatewayFanOutMergedReads is the heart of the scatter-gather
// contract: the gateway's /v1/summary and /v1/availability/cdf over a
// 3-node cluster must be byte-identical to a single availd that saw
// the whole stream.
func TestGatewayFanOutMergedReads(t *testing.T) {
	nodes := []*testNode{newTestNode(t), newTestNode(t), newTestNode(t)}
	cfg := GatewayConfig{
		Nodes: []NodeConfig{
			{Name: "n0", URL: nodes[0].srv.URL},
			{Name: "n1", URL: nodes[1].srv.URL},
			{Name: "n2", URL: nodes[2].srv.URL},
		},
		ClientConfig: fastClient,
		HealthEvery:  time.Hour, // health out of the way
		Logf:         t.Logf,
	}
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	ref := ingest.New(ingest.Config{Shards: 2, BatchSize: 16})
	defer ref.Close()

	client := ingest.NewHTTPClient(func() ingest.HTTPClientConfig {
		c := fastClient
		c.BaseURL = gw.URL
		return c
	}())
	const swarms = 151
	for batch := 0; batch < 12; batch++ {
		recs := mkRecords(64, swarms, batch)
		if err := client.Push(context.Background(), recs); err != nil {
			t.Fatalf("push %d: %v", batch, err)
		}
		ops := make([]ingest.Op, len(recs))
		for i, rec := range recs {
			ops[i] = ingest.EventOp(rec)
		}
		if err := ref.Submit(ops); err != nil {
			t.Fatal(err)
		}
	}
	ref.Flush()

	// Every swarm must live on exactly one node, and the populations
	// must add up.
	total := 0
	for i, n := range nodes {
		n.e.Flush()
		got := n.e.Summary().Swarms
		if got == 0 {
			t.Fatalf("node %d holds no swarms; ring is not spreading", i)
		}
		total += got
	}
	if total != swarms {
		t.Fatalf("nodes hold %d swarms total, want %d (a swarm was split or lost)", total, swarms)
	}

	fetch := func(base, path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	render := func(write func(w http.ResponseWriter)) string {
		rec := httptest.NewRecorder()
		write(rec)
		return rec.Body.String()
	}

	refSum := ref.Summary()
	if got, want := fetch(gw.URL, "/v1/summary"),
		render(func(w http.ResponseWriter) { ingest.WriteSummary(w, refSum) }); got != want {
		t.Fatalf("merged /v1/summary diverged from single-engine answer\n--- gateway ---\n%s--- reference ---\n%s", got, want)
	}
	if got, want := fetch(gw.URL, "/v1/availability/cdf"),
		render(func(w http.ResponseWriter) { ingest.WriteCDF(w, refSum, ingest.DefaultCDFQuantiles) }); got != want {
		t.Fatalf("merged /v1/availability/cdf diverged\n--- gateway ---\n%s--- reference ---\n%s", got, want)
	}
	if got, want := fetch(gw.URL, "/v1/state"),
		render(func(w http.ResponseWriter) { ingest.WriteState(w, refSum) }); got != want {
		t.Fatalf("merged /v1/state diverged\n--- gateway ---\n%s--- reference ---\n%s", got, want)
	}
}

// TestGatewayPartialFailureNoAck: if any node cannot journal its share,
// the gateway must not acknowledge the batch.
func TestGatewayPartialFailureNoAck(t *testing.T) {
	good, bad := newTestNode(t), newTestNode(t)
	bad.failAll.Store(true)
	cfg := GatewayConfig{
		Nodes: []NodeConfig{
			{Name: "good", URL: good.srv.URL},
			{Name: "bad", URL: bad.srv.URL},
		},
		ClientConfig: func() ingest.HTTPClientConfig {
			c := fastClient
			c.MaxAttempts = 2
			return c
		}(),
		SendPasses:  1,
		HealthEvery: time.Hour,
		Logf:        t.Logf,
	}
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	client := ingest.NewHTTPClient(func() ingest.HTTPClientConfig {
		c := fastClient
		c.MaxAttempts = 1
		c.BaseURL = gw.URL
		return c
	}())
	err = client.Push(context.Background(), mkRecords(64, 51, 0))
	if err == nil {
		t.Fatal("gateway acknowledged a batch one node refused to journal")
	}
	t.Logf("push correctly failed: %v", err)
}

// TestGatewayFailover: when a node dies, the health loop promotes its
// follower and in-flight pushes land there.
func TestGatewayFailover(t *testing.T) {
	alive, dying, standby := newTestNode(t), newTestNode(t), newTestNode(t)
	var promoteCalls atomic.Int32
	cfg := GatewayConfig{
		Nodes: []NodeConfig{
			{Name: "n0", URL: alive.srv.URL},
			{Name: "n1", URL: dying.srv.URL, Follower: standby.srv.URL},
		},
		ClientConfig: fastClient,
		HealthEvery:  20 * time.Millisecond,
		FailAfter:    2,
		SendPasses:   40,
		Promote: func(ctx context.Context, n NodeConfig, epoch uint64) (string, error) {
			promoteCalls.Add(1)
			return n.Follower, nil
		},
		Logf: t.Logf,
	}
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	client := ingest.NewHTTPClient(func() ingest.HTTPClientConfig {
		c := fastClient
		c.MaxAttempts = 2
		c.BaseURL = gw.URL
		return c
	}())
	if err := client.Push(context.Background(), mkRecords(64, 51, 0)); err != nil {
		t.Fatalf("pre-failure push: %v", err)
	}

	// Kill node 1: its listener vanishes, pushes and health checks fail.
	dying.srv.Close()

	// This push includes swarms homed on the dead node; the sender must
	// ride through the failover and land them on the standby.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := client.Push(ctx, mkRecords(64, 51, 1)); err != nil {
		t.Fatalf("push during failover: %v", err)
	}
	if promoteCalls.Load() != 1 {
		t.Fatalf("promote called %d times, want 1", promoteCalls.Load())
	}
	if g.NodeURL(1) != standby.srv.URL {
		t.Fatalf("slot 1 routes to %s, want standby %s", g.NodeURL(1), standby.srv.URL)
	}
	standby.e.Flush()
	if standby.e.Summary().Events == 0 {
		t.Fatal("standby received no records after promotion")
	}
	t.Logf("standby holds %d events after failover", standby.e.Summary().Events)
}
