package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"swarmavail/internal/ingest"
	"swarmavail/internal/obs"
	"swarmavail/internal/trace"
)

// ErrGatewayClosed is returned for pushes caught mid-flight by a
// gateway shutdown.
var ErrGatewayClosed = errors.New("cluster: gateway closed")

// NodeConfig names one cluster slot: the leader serving it and,
// optionally, the follower the gateway may promote into it.
type NodeConfig struct {
	// Name labels the node in logs and metrics (default: the URL).
	Name string
	// URL is the leader availd's base URL.
	URL string
	// Follower is the standby's base URL ("" = no failover for this
	// slot). The follower must be running availd -follow against URL.
	Follower string
}

func (n NodeConfig) name() string {
	if n.Name != "" {
		return n.Name
	}
	return n.URL
}

// GatewayConfig parameterises a Gateway.
type GatewayConfig struct {
	// Nodes is the cluster membership, in slot order. The ring maps
	// swarms to slot indices, so order is part of the cluster identity:
	// every gateway over the same ordered membership routes identically.
	Nodes []NodeConfig
	// Vnodes is the virtual-node count per slot (default DefaultVnodes).
	Vnodes int
	// QueueDepth bounds queued pushes per node (default 32); a full
	// queue back-pressures the ingest handler rather than buffering
	// unboundedly.
	QueueDepth int
	// SendPasses is how many full client retry cycles a push gets before
	// the gateway reports failure (default 8). Each pass re-resolves the
	// node's current client, so pushes in flight during a failover land
	// on the promoted follower.
	SendPasses int
	// HealthEvery is the leader health-check cadence (default 1s).
	HealthEvery time.Duration
	// FailAfter is the consecutive health-check failures that trigger
	// failover (default 3).
	FailAfter int
	// ClientConfig is the template for per-node ingest clients; URL and
	// BaseURL are overwritten per node. Tests inject fault transports
	// and fast backoff here.
	ClientConfig ingest.HTTPClientConfig
	// Promote, when set, replaces the default promotion call (POST
	// {follower}/v1/promote) and returns the promoted node's base URL.
	Promote func(ctx context.Context, n NodeConfig) (string, error)
	// Metrics, when set, registers gateway series.
	Metrics *obs.Registry
	// Logf, when set, receives lifecycle and failure lines.
	Logf func(format string, args ...any)
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.SendPasses <= 0 {
		c.SendPasses = 8
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	return c
}

// gwNode is one cluster slot's runtime state.
type gwNode struct {
	idx int
	cfg NodeConfig

	url      atomic.Value // string: current base URL (leader, then follower)
	client   atomic.Pointer[ingest.HTTPClient]
	jobs     chan *pushJob
	fails    atomic.Int32 // consecutive failed health checks
	promoted atomic.Bool  // failover done; no second standby

	unhealthy *obs.Gauge
}

func (n *gwNode) currentURL() string { return n.url.Load().(string) }

// pushJob is one node's share of an ingest request.
type pushJob struct {
	ctx  context.Context
	recs []ingest.Record
	done chan error // buffered(1): sender never blocks answering
}

// Gateway is the cluster front door. It speaks the same API as a
// single availd — POST /v1/ingest, GET /v1/summary, /v1/availability/cdf,
// /v1/state — over N nodes:
//
//   - Writes are partitioned by the consistent-hash ring (whole swarms,
//     never split) and fanned out through per-node retrying clients,
//     one in-order sender per node. The request is acknowledged only
//     when every node has journaled its share; a partial failure is
//     reported as 503 and acknowledges nothing, so the monitor's
//     retry preserves at-least-once delivery end to end.
//   - Reads scatter-gather /v1/state from every node and merge with
//     Summary.Merge. The merge algebra is exact (integer counters and
//     sketch bin counts), the merge order is fixed (slot order), and
//     the rendering is the same code a single availd runs — so the
//     merged responses are byte-identical to a lone node that saw the
//     whole stream.
//   - A health loop probes each leader's /v1/healthz; FailAfter
//     consecutive misses promote the slot's follower and swap the
//     slot's client, redirecting queued and future pushes.
type Gateway struct {
	cfg   GatewayConfig
	ring  *Ring
	nodes []*gwNode

	healthClient *http.Client

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	records   *obs.Counter
	batches   *obs.Counter
	pushFails *obs.Counter
	failovers *obs.Counter
}

// NewGateway builds and starts a gateway: senders and the health loop
// are running when it returns. Close stops them.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: gateway needs at least one node")
	}
	ring, err := NewRing(len(cfg.Nodes), cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:          cfg,
		ring:         ring,
		healthClient: &http.Client{Timeout: cfg.HealthEvery},
		stop:         make(chan struct{}),
	}
	if reg := cfg.Metrics; reg != nil {
		g.records = reg.Counter("gateway_ingest_records_total")
		g.batches = reg.Counter("gateway_ingest_batches_total")
		g.pushFails = reg.Counter("gateway_push_failures_total")
		g.failovers = reg.Counter("gateway_failovers_total")
	}
	for i, nc := range cfg.Nodes {
		if nc.URL == "" {
			return nil, fmt.Errorf("cluster: node %d has no URL", i)
		}
		n := &gwNode{idx: i, cfg: nc, jobs: make(chan *pushJob, cfg.QueueDepth)}
		n.url.Store(nc.URL)
		n.client.Store(g.newClient(nc.URL))
		if reg := cfg.Metrics; reg != nil {
			n.unhealthy = reg.Gauge("gateway_node_unhealthy", obs.L("node", nc.name()))
		}
		g.nodes = append(g.nodes, n)
	}
	for _, n := range g.nodes {
		g.wg.Add(1)
		go g.sender(n)
	}
	g.wg.Add(1)
	go g.healthLoop()
	return g, nil
}

// newClient builds a node client from the config template.
func (g *Gateway) newClient(baseURL string) *ingest.HTTPClient {
	cc := g.cfg.ClientConfig
	cc.URL, cc.BaseURL = "", baseURL
	return ingest.NewHTTPClient(cc)
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// Ring exposes the routing table (tests assert placement with it).
func (g *Gateway) Ring() *Ring { return g.ring }

// NodeURL returns slot i's current base URL (the follower's after a
// promotion).
func (g *Gateway) NodeURL(i int) string { return g.nodes[i].currentURL() }

// Close stops the senders and health loop, failing any queued pushes.
func (g *Gateway) Close() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	close(g.stop)
	g.wg.Wait()
	// Senders are gone; anything still buffered can only be answered
	// here. done is buffered, so this never blocks.
	for _, n := range g.nodes {
		for {
			select {
			case job := <-n.jobs:
				job.done <- ErrGatewayClosed
			default:
				goto next
			}
		}
	next:
	}
}

// sender delivers one node's pushes in order. In-order matters: records
// for a swarm are an event stream, and the engine applies them in
// arrival order, so the gateway must never let batch k+1 overtake
// batch k on its node.
func (g *Gateway) sender(n *gwNode) {
	defer g.wg.Done()
	for {
		select {
		case <-g.stop:
			return
		case job := <-n.jobs:
			job.done <- g.deliver(n, job)
		}
	}
}

// deliver pushes one job, re-resolving the node's client between
// passes so a failover mid-push redirects the retry to the promoted
// follower rather than hammering a corpse.
func (g *Gateway) deliver(n *gwNode, job *pushJob) error {
	var lastErr error
	for pass := 1; pass <= g.cfg.SendPasses; pass++ {
		if err := job.ctx.Err(); err != nil {
			return err
		}
		client := n.client.Load()
		err := client.Push(job.ctx, job.recs)
		if err == nil {
			return nil
		}
		lastErr = err
		g.pushFails.Inc()
		g.logf("gateway: push to %s failed (pass %d/%d): %v", n.cfg.name(), pass, g.cfg.SendPasses, err)
		if pass == g.cfg.SendPasses {
			break
		}
		// Give the health loop a beat to notice and promote before the
		// next pass re-resolves the client.
		select {
		case <-job.ctx.Done():
			return job.ctx.Err()
		case <-g.stop:
			return lastErr
		case <-time.After(g.cfg.HealthEvery):
		}
	}
	return lastErr
}

// healthLoop probes each slot's current leader and promotes its
// follower after FailAfter consecutive misses.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
		}
		for _, n := range g.nodes {
			if n.promoted.Load() {
				continue // one standby per slot; nothing left to do
			}
			if g.healthy(n) {
				n.fails.Store(0)
				n.unhealthy.Set(0)
				continue
			}
			fails := n.fails.Add(1)
			n.unhealthy.Set(1)
			g.logf("gateway: %s failed health check (%d/%d)", n.cfg.name(), fails, g.cfg.FailAfter)
			if int(fails) >= g.cfg.FailAfter && n.cfg.Follower != "" {
				g.failover(n)
			}
		}
	}
}

func (g *Gateway) healthy(n *gwNode) bool {
	resp, err := g.healthClient.Get(n.currentURL() + "/v1/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// failover promotes n's follower and swaps the slot's client. A failed
// promotion is retried on the next health tick (the miss counter stays
// over threshold).
func (g *Gateway) failover(n *gwNode) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	promote := g.cfg.Promote
	if promote == nil {
		promote = g.httpPromote
	}
	newURL, err := promote(ctx, n.cfg)
	if err != nil {
		g.logf("gateway: promoting follower of %s: %v", n.cfg.name(), err)
		return
	}
	n.promoted.Store(true)
	n.url.Store(newURL)
	n.client.Store(g.newClient(newURL))
	n.fails.Store(0)
	n.unhealthy.Set(0)
	g.failovers.Inc()
	g.logf("gateway: promoted follower of %s at %s", n.cfg.name(), newURL)
}

// httpPromote is the default promotion: POST {follower}/v1/promote and
// route to the follower once it answers 200 (it does so only after
// recovering the shipped state and swapping into serving mode).
func (g *Gateway) httpPromote(ctx context.Context, n NodeConfig) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.Follower+"/v1/promote", nil)
	if err != nil {
		return "", err
	}
	resp, err := (&http.Client{Timeout: 30 * time.Second}).Do(req)
	if err != nil {
		return "", err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("cluster: promote %s: %s", n.Follower, resp.Status)
	}
	return n.Follower, nil
}

// Handler returns the gateway's HTTP API: the availd read/write surface
// served cluster-wide.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		ingest.WriteJSON(w, map[string]string{"state": "serving"})
	})
	mux.HandleFunc("POST /v1/ingest", g.handleIngest)
	mux.HandleFunc("GET /v1/summary", g.handleSummary)
	mux.HandleFunc("GET /v1/availability/cdf", g.handleCDF)
	mux.HandleFunc("GET /v1/state", g.handleState)
	mux.HandleFunc("GET /v1/cluster", g.handleCluster)
	if reg := g.cfg.Metrics; reg != nil {
		mux.Handle("GET /metrics", obs.MetricsHandler(reg))
		mux.Handle("GET /debug/vars", obs.VarsHandler(reg))
	}
	return mux
}

// maxIngestBody mirrors availd's request bound.
const maxIngestBody = 32 << 20

// handleIngest partitions the batch by swarm across the ring and fans
// it out. 200 {"accepted": n} means every node journaled its share; any
// other outcome acknowledges nothing, and the retrying client replays
// the batch — nodes that did accept their share see the replay again
// (at-least-once, the same contract a lone availd's lost-ack retry
// already imposes).
func (g *Gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBody)
	sc := trace.NewScanner[ingest.Record](r.Body)
	perNode := make([][]ingest.Record, len(g.nodes))
	n := 0
	for sc.Scan() {
		rec := sc.Record()
		slot := g.ring.Node(rec.SwarmID)
		perNode[slot] = append(perNode[slot], rec)
		n++
	}
	if err := sc.Err(); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad record %d: %v", n, err), http.StatusBadRequest)
		return
	}

	jobs := make([]*pushJob, 0, len(g.nodes))
	for slot, recs := range perNode {
		if len(recs) == 0 {
			continue
		}
		job := &pushJob{ctx: r.Context(), recs: recs, done: make(chan error, 1)}
		select {
		case g.nodes[slot].jobs <- job:
			jobs = append(jobs, job)
		case <-r.Context().Done():
			http.Error(w, "client gone", http.StatusServiceUnavailable)
			return
		case <-g.stop:
			http.Error(w, ErrGatewayClosed.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	var firstErr error
	for _, job := range jobs {
		select {
		case err := <-job.done:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case <-g.stop:
			if firstErr == nil {
				firstErr = ErrGatewayClosed
			}
		}
	}
	if firstErr != nil {
		http.Error(w, firstErr.Error(), http.StatusServiceUnavailable)
		return
	}
	g.batches.Inc()
	g.records.Add(uint64(n))
	ingest.WriteJSON(w, map[string]int{"accepted": n})
}

// merged scatter-gathers every node's /v1/state and merges in slot
// order. All-or-nothing: a partial merge would silently undercount, so
// one unreachable node fails the read.
func (g *Gateway) merged(ctx context.Context) (*ingest.Summary, error) {
	sums := make([]*ingest.Summary, len(g.nodes))
	errs := make([]error, len(g.nodes))
	var wg sync.WaitGroup
	for i, n := range g.nodes {
		wg.Add(1)
		go func(i int, n *gwNode) {
			defer wg.Done()
			sums[i], errs[i] = n.client.Load().FetchState(ctx)
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("node %s: %w", g.nodes[i].cfg.name(), err)
		}
	}
	merged := ingest.NewSummary()
	for _, s := range sums {
		merged.Merge(s)
	}
	return merged, nil
}

func (g *Gateway) handleSummary(w http.ResponseWriter, r *http.Request) {
	sum, err := g.merged(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	ingest.WriteSummary(w, sum)
}

func (g *Gateway) handleCDF(w http.ResponseWriter, r *http.Request) {
	qs, err := ingest.ParseQuantiles(r.URL.Query().Get("q"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sum, merr := g.merged(r.Context())
	if merr != nil {
		http.Error(w, merr.Error(), http.StatusServiceUnavailable)
		return
	}
	ingest.WriteCDF(w, sum, qs)
}

func (g *Gateway) handleState(w http.ResponseWriter, r *http.Request) {
	sum, err := g.merged(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	ingest.WriteState(w, sum)
}

// clusterNodeStatus is one slot in the GET /v1/cluster body.
type clusterNodeStatus struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Follower string `json:"follower,omitempty"`
	Promoted bool   `json:"promoted"`
	Fails    int    `json:"consecutive_health_failures"`
}

func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Nodes []clusterNodeStatus `json:"nodes"`
	}{}
	for _, n := range g.nodes {
		out.Nodes = append(out.Nodes, clusterNodeStatus{
			Name:     n.cfg.name(),
			URL:      n.currentURL(),
			Follower: n.cfg.Follower,
			Promoted: n.promoted.Load(),
			Fails:    int(n.fails.Load()),
		})
	}
	ingest.WriteJSON(w, out)
}
