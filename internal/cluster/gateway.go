package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"swarmavail/internal/ingest"
	"swarmavail/internal/obs"
	"swarmavail/internal/trace"
)

// ErrGatewayClosed is returned for pushes caught mid-flight by a
// gateway shutdown.
var ErrGatewayClosed = errors.New("cluster: gateway closed")

// NodeConfig names one cluster slot: the leader serving it and,
// optionally, the follower the gateway may promote into it.
type NodeConfig struct {
	// Name labels the node in logs and metrics (default: the URL).
	Name string
	// URL is the leader availd's base URL.
	URL string
	// Follower is the standby's base URL ("" = no failover for this
	// slot). The follower must be running availd -follow against URL.
	Follower string
	// BinAddr is the leader's binary streaming ingest address (availd
	// -ingest-bin). Required on every node for Gateway.ServeStream.
	BinAddr string
	// FollowerBin is the follower's binary ingest address; after a
	// promotion stream forwarding redials here ("" = binary forwarding
	// for this slot keeps dialing BinAddr).
	FollowerBin string
}

func (n NodeConfig) name() string {
	if n.Name != "" {
		return n.Name
	}
	return n.URL
}

// GatewayConfig parameterises a Gateway.
type GatewayConfig struct {
	// Nodes is the cluster membership, in slot order. The ring maps
	// swarms to slot indices, so order is part of the cluster identity:
	// every gateway over the same ordered membership routes identically.
	Nodes []NodeConfig
	// Vnodes is the virtual-node count per slot (default DefaultVnodes).
	Vnodes int
	// QueueDepth bounds queued pushes per node (default 32); a full
	// queue back-pressures the ingest handler rather than buffering
	// unboundedly.
	QueueDepth int
	// SendPasses is how many full client retry cycles a push gets before
	// the gateway reports failure (default 8). Each pass re-resolves the
	// node's current client, so pushes in flight during a failover land
	// on the promoted follower.
	SendPasses int
	// HealthEvery is the leader health-check cadence (default 1s).
	HealthEvery time.Duration
	// FailAfter is the consecutive health-check failures that trigger
	// failover (default 3).
	FailAfter int
	// ProbeTimeout bounds each individual health probe (default
	// HealthEvery) so a hung node reads as down, not as a stalled loop.
	ProbeTimeout time.Duration
	// PromoteTimeout bounds one promotion attempt (default 30s).
	PromoteTimeout time.Duration
	// HealthClient, when set, carries the health probes and promotion
	// calls (tests inject fault transports). Timeouts come from
	// ProbeTimeout/PromoteTimeout contexts, not from the client.
	HealthClient *http.Client
	// SourceID is the idempotency source stem for pushes the gateway
	// originates keys for (default: a fresh random id). Unkeyed client
	// batches are re-keyed per slot as "<SourceID>#<slot>"; batches that
	// arrive already keyed keep their upstream key.
	SourceID string
	// ClientConfig is the template for per-node ingest clients; URL and
	// BaseURL are overwritten per node. Tests inject fault transports
	// and fast backoff here.
	ClientConfig ingest.HTTPClientConfig
	// Promote, when set, replaces the default promotion call (POST
	// {follower}/v1/promote stamped with the successor epoch) and
	// returns the promoted node's base URL. Implementations should make
	// the promoted node adopt epoch.
	Promote func(ctx context.Context, n NodeConfig, epoch uint64) (string, error)
	// Metrics, when set, registers gateway series.
	Metrics *obs.Registry
	// Logf, when set, receives lifecycle and failure lines.
	Logf func(format string, args ...any)
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.SendPasses <= 0 {
		c.SendPasses = 8
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.HealthEvery
	}
	if c.PromoteTimeout <= 0 {
		c.PromoteTimeout = 30 * time.Second
	}
	if c.HealthClient == nil {
		c.HealthClient = &http.Client{}
	}
	if c.SourceID == "" {
		c.SourceID = ingest.NewSourceID()
	}
	return c
}

// gwNode is one cluster slot's runtime state.
type gwNode struct {
	idx int
	cfg NodeConfig

	url      atomic.Value // string: current base URL (leader, then follower)
	binAddr  atomic.Value // string: current binary ingest address
	client   atomic.Pointer[ingest.HTTPClient]
	jobs     chan *pushJob
	fails    atomic.Int32 // consecutive failed health checks
	promoted atomic.Bool  // failover done; no second standby

	// epoch is the slot epoch the gateway believes (0 = not yet
	// learned; pre-epoch nodes never teach one). Promotion bumps it;
	// probe responses and 409s raise it.
	epoch atomic.Uint64
	// seq numbers the gateway-originated idempotency keys for this slot.
	seq atomic.Uint64
	// retired holds the pre-promotion leader's URL until the gateway has
	// fenced it (stamped it with the successor epoch); "" once done.
	retired atomic.Value // string

	// stateCache/windowCache hold this node's last parsed snapshot-path
	// answer with its ETag; refreshes send If-None-Match and a 304
	// reuses the parsed copy without re-decoding. The node's ETag nonce
	// changes with its engine incarnation, so a promoted follower can
	// never validate the old leader's cache entry.
	stateCache  atomic.Pointer[nodeState]
	windowCache atomic.Pointer[nodeWindow]

	unhealthy *obs.Gauge
}

// nodeState is one node's cached mergeable summary state.
type nodeState struct {
	etag string
	sum  *ingest.Summary
}

// nodeWindow is one node's cached mergeable windowed aggregate.
type nodeWindow struct {
	etag string
	win  *ingest.WindowState
}

func (n *gwNode) currentURL() string { return n.url.Load().(string) }

// pushJob is one node's share of an ingest request. source/seq is the
// idempotency key the sender stamps on every delivery attempt, so
// retries across passes (and across a failover) deduplicate server-side.
type pushJob struct {
	ctx    context.Context
	source string
	seq    uint64
	recs   []ingest.Record
	done   chan error // buffered(1): sender never blocks answering
}

// Gateway is the cluster front door. It speaks the same API as a
// single availd — POST /v1/ingest, GET /v1/summary, /v1/availability/cdf,
// /v1/state — over N nodes:
//
//   - Writes are partitioned by the consistent-hash ring (whole swarms,
//     never split) and fanned out through per-node retrying clients,
//     one in-order sender per node. The request is acknowledged only
//     when every node has journaled its share; a partial failure is
//     reported as 503 and acknowledges nothing, so the monitor's
//     retry preserves at-least-once delivery end to end.
//   - Reads scatter-gather /v1/state from every node and merge with
//     Summary.Merge. The merge algebra is exact (integer counters and
//     sketch bin counts), the merge order is fixed (slot order), and
//     the rendering is the same code a single availd runs — so the
//     merged responses are byte-identical to a lone node that saw the
//     whole stream.
//   - A health loop probes each leader's /v1/healthz; FailAfter
//     consecutive misses promote the slot's follower and swap the
//     slot's client, redirecting queued and future pushes.
type Gateway struct {
	cfg   GatewayConfig
	ring  *Ring
	nodes []*gwNode

	healthClient *http.Client

	stop     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool
	draining atomic.Bool

	records   *obs.Counter
	batches   *obs.Counter
	pushFails *obs.Counter
	failovers *obs.Counter

	streamConns  *obs.Counter
	streamFrames *obs.Counter

	// readCacheHits counts node answers served from the conditional-GET
	// caches (304); collapsedReads counts scatter-gathers that rode an
	// identical in-flight one instead of fanning out again.
	readCacheHits  *obs.Counter
	collapsedReads *obs.Counter

	// flights holds the in-flight snapshot-path scatter-gathers by kind
	// ("state"/"window"); concurrent identical reads wait for the leader
	// instead of each hitting every node. Consistent reads never
	// collapse — each must observe its own prior writes.
	flightMu sync.Mutex
	flights  map[string]*flight
}

// flight is one in-flight collapsed scatter-gather.
type flight struct {
	done chan struct{}
	sum  *ingest.Summary
	win  *ingest.WindowState
	etag string
	err  error
}

// NewGateway builds and starts a gateway: senders and the health loop
// are running when it returns. Close stops them.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: gateway needs at least one node")
	}
	ring, err := NewRing(len(cfg.Nodes), cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:          cfg,
		ring:         ring,
		healthClient: cfg.HealthClient,
		stop:         make(chan struct{}),
		flights:      make(map[string]*flight),
	}
	if reg := cfg.Metrics; reg != nil {
		g.records = reg.Counter("gateway_ingest_records_total")
		g.batches = reg.Counter("gateway_ingest_batches_total")
		g.pushFails = reg.Counter("gateway_push_failures_total")
		g.failovers = reg.Counter("gateway_failovers_total")
		g.streamConns = reg.Counter("gateway_stream_conns_total")
		g.streamFrames = reg.Counter("gateway_stream_frames_total")
		g.readCacheHits = reg.Counter("read_cache_hits_total")
		g.collapsedReads = reg.Counter("gateway_collapsed_reads_total")
	}
	for i, nc := range cfg.Nodes {
		if nc.URL == "" {
			return nil, fmt.Errorf("cluster: node %d has no URL", i)
		}
		n := &gwNode{idx: i, cfg: nc, jobs: make(chan *pushJob, cfg.QueueDepth)}
		n.url.Store(nc.URL)
		n.binAddr.Store(nc.BinAddr)
		n.retired.Store("")
		n.client.Store(g.newClient(nc.URL, 0))
		if reg := cfg.Metrics; reg != nil {
			n.unhealthy = reg.Gauge("gateway_node_unhealthy", obs.L("node", nc.name()))
			reg.GaugeFunc("gateway_slot_epoch",
				func() float64 { return float64(n.epoch.Load()) },
				obs.L("node", nc.name()))
		}
		g.nodes = append(g.nodes, n)
	}
	for _, n := range g.nodes {
		g.wg.Add(1)
		go g.sender(n)
	}
	g.wg.Add(1)
	go g.healthLoop()
	return g, nil
}

// newClient builds a node client from the config template, stamping
// epoch (0 = unstamped) on everything it sends.
func (g *Gateway) newClient(baseURL string, epoch uint64) *ingest.HTTPClient {
	cc := g.cfg.ClientConfig
	cc.URL, cc.BaseURL = "", baseURL
	cc.Epoch = epoch
	return ingest.NewHTTPClient(cc)
}

// adoptEpoch raises slot n's epoch to epoch (CAS-max) and swaps in a
// client stamping it. Lower or equal epochs are no-ops.
func (g *Gateway) adoptEpoch(n *gwNode, epoch uint64) {
	for {
		cur := n.epoch.Load()
		if epoch <= cur {
			return
		}
		if n.epoch.CompareAndSwap(cur, epoch) {
			n.client.Store(g.newClient(n.currentURL(), epoch))
			g.logf("gateway: %s now at epoch %d", n.cfg.name(), epoch)
			return
		}
	}
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// Ring exposes the routing table (tests assert placement with it).
func (g *Gateway) Ring() *Ring { return g.ring }

// NodeURL returns slot i's current base URL (the follower's after a
// promotion).
func (g *Gateway) NodeURL(i int) string { return g.nodes[i].currentURL() }

// SetDraining flips the gateway's /v1/healthz readiness answer: true
// makes it 503 {"state":"draining"} so load balancers stop routing new
// work here while in-flight requests finish (mirroring availd's
// -drain-grace sequence).
func (g *Gateway) SetDraining(v bool) { g.draining.Store(v) }

// Close stops the senders and health loop, failing any queued pushes.
func (g *Gateway) Close() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	close(g.stop)
	g.wg.Wait()
	// Senders are gone; anything still buffered can only be answered
	// here. done is buffered, so this never blocks.
	for _, n := range g.nodes {
		for {
			select {
			case job := <-n.jobs:
				job.done <- ErrGatewayClosed
			default:
				goto next
			}
		}
	next:
	}
}

// sender delivers one node's pushes in order. In-order matters: records
// for a swarm are an event stream, and the engine applies them in
// arrival order, so the gateway must never let batch k+1 overtake
// batch k on its node.
func (g *Gateway) sender(n *gwNode) {
	defer g.wg.Done()
	for {
		select {
		case <-g.stop:
			return
		case job := <-n.jobs:
			job.done <- g.deliver(n, job)
		}
	}
}

// deliver pushes one job, re-resolving the node's client between
// passes so a failover mid-push redirects the retry to the promoted
// follower rather than hammering a corpse.
func (g *Gateway) deliver(n *gwNode, job *pushJob) error {
	var lastErr error
	for pass := 1; pass <= g.cfg.SendPasses; pass++ {
		if err := job.ctx.Err(); err != nil {
			return err
		}
		client := n.client.Load()
		err := client.PushKeyed(job.ctx, job.source, job.seq, job.recs)
		if err == nil {
			return nil
		}
		// An epoch conflict from a node ahead of us is self-inflicted
		// staleness, not a node failure: adopt the newer epoch and retry
		// immediately with the re-stamped client.
		var conflict *ingest.EpochConflictError
		if errors.As(err, &conflict) && conflict.NodeEpoch > n.epoch.Load() {
			g.adoptEpoch(n, conflict.NodeEpoch)
			lastErr = err
			continue
		}
		lastErr = err
		g.pushFails.Inc()
		g.logf("gateway: push to %s failed (pass %d/%d): %v", n.cfg.name(), pass, g.cfg.SendPasses, err)
		if pass == g.cfg.SendPasses {
			break
		}
		// Give the health loop a beat to notice and promote before the
		// next pass re-resolves the client.
		select {
		case <-job.ctx.Done():
			return job.ctx.Err()
		case <-g.stop:
			return lastErr
		case <-time.After(g.cfg.HealthEvery):
		}
	}
	return lastErr
}

// healthLoop probes each slot's current leader and promotes its
// follower after FailAfter consecutive misses.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
		}
		for _, n := range g.nodes {
			if n.promoted.Load() {
				// One standby per slot, so no further failover — but the
				// retired leader may still need fencing once reachable.
				g.fenceRetired(n)
				continue
			}
			if g.healthy(n) {
				n.fails.Store(0)
				n.unhealthy.Set(0)
				continue
			}
			fails := n.fails.Add(1)
			n.unhealthy.Set(1)
			g.logf("gateway: %s failed health check (%d/%d)", n.cfg.name(), fails, g.cfg.FailAfter)
			if int(fails) >= g.cfg.FailAfter && n.cfg.Follower != "" {
				g.failover(n)
			}
		}
	}
}

func (g *Gateway) healthy(n *gwNode) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.currentURL()+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	// Stamp the probe once the slot epoch is known: a leader that fell
	// behind the epoch answers 409, reads as unhealthy, and is demoted by
	// this very request. Learn from the response either way.
	if e := n.epoch.Load(); e != 0 {
		req.Header.Set(EpochHeader, strconv.FormatUint(e, 10))
	}
	resp, err := g.healthClient.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if e, perr := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64); perr == nil {
		g.adoptEpoch(n, e)
	}
	return resp.StatusCode == http.StatusOK
}

// fenceRetired stamps the pre-promotion leader with the successor epoch
// so it demotes itself the moment it is reachable again (partition
// healed, process unstuck). Any HTTP answer settles it — the epoch
// middleware fences on sight of the newer stamp — while transport
// errors leave it queued for the next tick.
func (g *Gateway) fenceRetired(n *gwNode) {
	retired, _ := n.retired.Load().(string)
	if retired == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, retired+"/v1/healthz", nil)
	if err != nil {
		n.retired.Store("")
		return
	}
	req.Header.Set(EpochHeader, strconv.FormatUint(n.epoch.Load(), 10))
	resp, err := g.healthClient.Do(req)
	if err != nil {
		return // unreachable; retry next tick — healing is when fencing matters
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	g.logf("gateway: fenced retired leader %s at epoch %d (%s)", retired, n.epoch.Load(), resp.Status)
	n.retired.Store("")
}

// failover promotes n's follower under the successor epoch and swaps
// the slot's client. A failed promotion is retried on the next health
// tick (the miss counter stays over threshold).
func (g *Gateway) failover(n *gwNode) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.PromoteTimeout)
	defer cancel()
	promote := g.cfg.Promote
	if promote == nil {
		promote = g.httpPromote
	}
	// The successor epoch: one past what the slot last taught us, and
	// never below 2 (a pre-epoch slot still moves to a numbered era on
	// its first failover, fencing the old leader's implicit epoch 1).
	newEpoch := n.epoch.Load() + 1
	if newEpoch < 2 {
		newEpoch = 2
	}
	oldURL := n.currentURL()
	newURL, err := promote(ctx, n.cfg, newEpoch)
	if err != nil {
		g.logf("gateway: promoting follower of %s: %v", n.cfg.name(), err)
		return
	}
	n.promoted.Store(true)
	n.url.Store(newURL)
	if n.cfg.FollowerBin != "" {
		n.binAddr.Store(n.cfg.FollowerBin)
	}
	n.epoch.Store(newEpoch)
	n.client.Store(g.newClient(newURL, newEpoch))
	n.retired.Store(oldURL)
	n.fails.Store(0)
	n.unhealthy.Set(0)
	g.failovers.Inc()
	g.logf("gateway: promoted follower of %s at %s (epoch %d)", n.cfg.name(), newURL, newEpoch)
}

// httpPromote is the default promotion: POST {follower}/v1/promote
// stamped with the successor epoch, routing to the follower once it
// answers 200 (it does so only after recovering the shipped state and
// swapping into serving mode at that epoch).
func (g *Gateway) httpPromote(ctx context.Context, n NodeConfig, epoch uint64) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.Follower+"/v1/promote", nil)
	if err != nil {
		return "", err
	}
	req.Header.Set(EpochHeader, strconv.FormatUint(epoch, 10))
	resp, err := g.healthClient.Do(req)
	if err != nil {
		return "", err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("cluster: promote %s: %s", n.Follower, resp.Status)
	}
	return n.Follower, nil
}

// Handler returns the gateway's HTTP API: the availd read/write surface
// served cluster-wide.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if g.draining.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"state":"draining"}`)
			return
		}
		ingest.WriteJSON(w, map[string]string{"state": "serving"})
	})
	mux.HandleFunc("POST /v1/ingest", g.handleIngest)
	mux.HandleFunc("GET /v1/summary", g.handleSummary)
	mux.HandleFunc("GET /v1/availability/cdf", g.handleCDF)
	mux.HandleFunc("GET /v1/state", g.handleState)
	mux.HandleFunc("GET /v1/availability/window", g.handleWindow)
	mux.HandleFunc("GET /v1/window/state", g.handleWindowState)
	mux.HandleFunc("GET /v1/swarm/{id}", g.proxySwarm)
	mux.HandleFunc("GET /v1/swarm/{id}/timeline", g.proxySwarm)
	mux.HandleFunc("GET /v1/cluster", g.handleCluster)
	if reg := g.cfg.Metrics; reg != nil {
		mux.Handle("GET /metrics", obs.MetricsHandler(reg))
		mux.Handle("GET /debug/vars", obs.VarsHandler(reg))
	}
	return mux
}

// maxIngestBody mirrors availd's request bound.
const maxIngestBody = 32 << 20

// handleIngest partitions the batch by swarm across the ring and fans
// it out. 200 {"accepted": n} means every node journaled its share; any
// other outcome acknowledges nothing, and the retrying client replays
// the batch — nodes that did accept their share see the replay again
// (at-least-once, the same contract a lone availd's lost-ack retry
// already imposes).
func (g *Gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	// A batch that arrives already keyed keeps its upstream key on every
	// slot's share — so the client's retry of a lost gateway ack (or a
	// second gateway's replay) still deduplicates at the nodes. Unkeyed
	// batches get a gateway-originated per-slot key instead.
	upSource := r.Header.Get(ingest.HeaderSource)
	var upSeq uint64
	if upSource != "" {
		var err error
		upSeq, err = strconv.ParseUint(r.Header.Get(ingest.HeaderSeq), 10, 64)
		if err != nil || upSeq == 0 {
			http.Error(w, "bad "+ingest.HeaderSeq+" header", http.StatusBadRequest)
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBody)
	sc := trace.NewScanner[ingest.Record](r.Body)
	perNode := make([][]ingest.Record, len(g.nodes))
	n := 0
	for sc.Scan() {
		rec := sc.Record()
		slot := g.ring.Node(rec.SwarmID)
		perNode[slot] = append(perNode[slot], rec)
		n++
	}
	if err := sc.Err(); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad record %d: %v", n, err), http.StatusBadRequest)
		return
	}

	jobs := make([]*pushJob, 0, len(g.nodes))
	for slot, recs := range perNode {
		if len(recs) == 0 {
			continue
		}
		source, seq := upSource, upSeq
		if source == "" {
			source = g.cfg.SourceID + "#" + strconv.Itoa(slot)
			seq = g.nodes[slot].seq.Add(1)
		}
		job := &pushJob{ctx: r.Context(), source: source, seq: seq, recs: recs, done: make(chan error, 1)}
		select {
		case g.nodes[slot].jobs <- job:
			jobs = append(jobs, job)
		case <-r.Context().Done():
			http.Error(w, "client gone", http.StatusServiceUnavailable)
			return
		case <-g.stop:
			http.Error(w, ErrGatewayClosed.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	var firstErr error
	for _, job := range jobs {
		select {
		case err := <-job.done:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case <-g.stop:
			if firstErr == nil {
				firstErr = ErrGatewayClosed
			}
		}
	}
	if firstErr != nil {
		http.Error(w, firstErr.Error(), http.StatusServiceUnavailable)
		return
	}
	g.batches.Inc()
	g.records.Add(uint64(n))
	ingest.WriteJSON(w, map[string]int{"accepted": n})
}

// wantConsistent mirrors availd's ?consistent=1 escape hatch: the
// barrier read path on every node, bypassing snapshot caches,
// conditional GETs and scatter-gather collapsing.
func wantConsistent(r *http.Request) bool {
	v := r.URL.Query().Get("consistent")
	return v != "" && v != "0"
}

// learnEpoch folds an epoch-conflict verdict from node i into the slot
// so the next read is stamped correctly.
func (g *Gateway) learnEpoch(i int, err error) error {
	var conflict *ingest.EpochConflictError
	if errors.As(err, &conflict) && conflict.NodeEpoch > g.nodes[i].epoch.Load() {
		g.adoptEpoch(g.nodes[i], conflict.NodeEpoch)
	}
	return fmt.Errorf("node %s: %w", g.nodes[i].cfg.name(), err)
}

// joinETags derives the gateway's validator from the per-node ones: the
// merged answer is a pure function of the node states, so the
// concatenation of their validators validates it. Empty when any node
// did not tag its answer (consistent reads, pre-ETag nodes).
func joinETags(etags []string) string {
	parts := make([]string, len(etags))
	for i, e := range etags {
		if e == "" {
			return ""
		}
		parts[i] = strings.Trim(e, `"`)
	}
	return `"` + strings.Join(parts, "+") + `"`
}

// collapse runs fetch under the named singleflight: concurrent calls
// with the same key wait for the leader's result instead of fanning out
// themselves. A follower whose leader was cancelled retries as its own
// leader (a cancelled leader must not fail an unrelated caller).
func (g *Gateway) collapse(ctx context.Context, key string, fetch func() *flight) (*flight, error) {
	for {
		g.flightMu.Lock()
		if f, ok := g.flights[key]; ok {
			g.flightMu.Unlock()
			select {
			case <-f.done:
				if f.err != nil && (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) && ctx.Err() == nil {
					continue
				}
				g.collapsedReads.Inc()
				return f, f.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		g.flights[key] = f
		g.flightMu.Unlock()
		res := fetch()
		f.sum, f.win, f.etag, f.err = res.sum, res.win, res.etag, res.err
		g.flightMu.Lock()
		delete(g.flights, key)
		g.flightMu.Unlock()
		close(f.done)
		return f, f.err
	}
}

// merged scatter-gathers every node's /v1/state and merges in slot
// order. All-or-nothing: a partial merge would silently undercount, so
// one unreachable node fails the read. Snapshot-path reads (the
// default) ride the per-node conditional-GET caches — an unchanged node
// answers 304 and its parsed state is reused — and concurrent identical
// scatter-gathers collapse into one. The returned etag validates the
// merged answer (empty on the consistent path).
func (g *Gateway) merged(ctx context.Context, consistent bool) (*ingest.Summary, string, error) {
	if consistent {
		f := g.fetchState(ctx, true)
		return f.sum, "", f.err
	}
	f, err := g.collapse(ctx, "state", func() *flight { return g.fetchState(ctx, false) })
	if err != nil {
		return nil, "", err
	}
	return f.sum, f.etag, nil
}

func (g *Gateway) fetchState(ctx context.Context, consistent bool) *flight {
	sums := make([]*ingest.Summary, len(g.nodes))
	etags := make([]string, len(g.nodes))
	errs := make([]error, len(g.nodes))
	var wg sync.WaitGroup
	for i, n := range g.nodes {
		wg.Add(1)
		go func(i int, n *gwNode) {
			defer wg.Done()
			c := n.client.Load()
			if consistent {
				sums[i], _, _, errs[i] = c.FetchStateTagged(ctx, true, "")
				return
			}
			var inm string
			cached := n.stateCache.Load()
			if cached != nil {
				inm = cached.etag
			}
			sum, etag, notModified, err := c.FetchStateTagged(ctx, false, inm)
			if err != nil {
				errs[i] = err
				return
			}
			if notModified {
				g.readCacheHits.Inc()
				sums[i], etags[i] = cached.sum, cached.etag
				return
			}
			if etag != "" {
				n.stateCache.Store(&nodeState{etag: etag, sum: sum})
			}
			sums[i], etags[i] = sum, etag
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// A stale-epoch answer must never be merged — but learn the
			// newer epoch so the next read is stamped correctly.
			return &flight{err: g.learnEpoch(i, err)}
		}
	}
	merged := ingest.NewSummary()
	for _, s := range sums {
		merged.Merge(s)
	}
	return &flight{sum: merged, etag: joinETags(etags)}
}

// mergedWindow is merged for the windowed aggregate
// (GET /v1/window/state on every node, WindowState.Merge — exact
// integer algebra, so the answer is byte-identical to a single engine
// over the whole stream).
func (g *Gateway) mergedWindow(ctx context.Context, consistent bool) (*ingest.WindowState, string, error) {
	if consistent {
		f := g.fetchWindow(ctx, true)
		return f.win, "", f.err
	}
	f, err := g.collapse(ctx, "window", func() *flight { return g.fetchWindow(ctx, false) })
	if err != nil {
		return nil, "", err
	}
	return f.win, f.etag, nil
}

func (g *Gateway) fetchWindow(ctx context.Context, consistent bool) *flight {
	wins := make([]*ingest.WindowState, len(g.nodes))
	etags := make([]string, len(g.nodes))
	errs := make([]error, len(g.nodes))
	var wg sync.WaitGroup
	for i, n := range g.nodes {
		wg.Add(1)
		go func(i int, n *gwNode) {
			defer wg.Done()
			c := n.client.Load()
			if consistent {
				wins[i], _, _, errs[i] = c.FetchWindowState(ctx, true, "")
				return
			}
			var inm string
			cached := n.windowCache.Load()
			if cached != nil {
				inm = cached.etag
			}
			win, etag, notModified, err := c.FetchWindowState(ctx, false, inm)
			if err != nil {
				errs[i] = err
				return
			}
			if notModified {
				g.readCacheHits.Inc()
				wins[i], etags[i] = cached.win, cached.etag
				return
			}
			if etag != "" {
				n.windowCache.Store(&nodeWindow{etag: etag, win: win})
			}
			wins[i], etags[i] = win, etag
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return &flight{err: g.learnEpoch(i, err)}
		}
	}
	// Merge into a fresh state carrying the cluster's shared geometry —
	// node caches must never be mutated.
	merged := &ingest.WindowState{
		BinDays:    wins[0].BinDays,
		FoldFactor: wins[0].FoldFactor,
		FineBins:   wins[0].FineBins,
		CoarseBins: wins[0].CoarseBins,
	}
	for i, win := range wins {
		if err := merged.Merge(win); err != nil {
			return &flight{err: fmt.Errorf("node %s: %w", g.nodes[i].cfg.name(), err)}
		}
	}
	return &flight{win: merged, etag: joinETags(etags)}
}

func (g *Gateway) handleSummary(w http.ResponseWriter, r *http.Request) {
	sum, etag, err := g.merged(r.Context(), wantConsistent(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if ingest.NotModified(w, r, etag) {
		return
	}
	ingest.WriteSummary(w, sum)
}

func (g *Gateway) handleCDF(w http.ResponseWriter, r *http.Request) {
	qs, err := ingest.ParseQuantiles(r.URL.Query().Get("q"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sum, etag, merr := g.merged(r.Context(), wantConsistent(r))
	if merr != nil {
		http.Error(w, merr.Error(), http.StatusServiceUnavailable)
		return
	}
	if ingest.NotModified(w, r, etag) {
		return
	}
	ingest.WriteCDF(w, sum, qs)
}

func (g *Gateway) handleState(w http.ResponseWriter, r *http.Request) {
	sum, etag, err := g.merged(r.Context(), wantConsistent(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if ingest.NotModified(w, r, etag) {
		return
	}
	ingest.WriteState(w, sum)
}

func (g *Gateway) handleWindow(w http.ResponseWriter, r *http.Request) {
	days, err := ingest.ParseWindowDays(r.URL.Query().Get("d"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	win, etag, merr := g.mergedWindow(r.Context(), wantConsistent(r))
	if merr != nil {
		http.Error(w, merr.Error(), http.StatusServiceUnavailable)
		return
	}
	if ingest.NotModified(w, r, etag) {
		return
	}
	ingest.WriteWindow(w, win, days)
}

func (g *Gateway) handleWindowState(w http.ResponseWriter, r *http.Request) {
	win, etag, err := g.mergedWindow(r.Context(), wantConsistent(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if ingest.NotModified(w, r, etag) {
		return
	}
	ingest.WriteJSON(w, win)
}

// proxySwarm forwards a per-swarm read (GET /v1/swarm/{id} and its
// /timeline) to the swarm's home node by ring slot, verbatim — the home
// node owns the swarm outright, so there is nothing to merge.
func (g *Gateway) proxySwarm(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad swarm id", http.StatusBadRequest)
		return
	}
	slot := g.ring.Node(id)
	target := g.nodes[slot].currentURL() + r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := g.healthClient.Do(req)
	if err != nil {
		http.Error(w, fmt.Sprintf("node %s: %v", g.nodes[slot].cfg.name(), err), http.StatusServiceUnavailable)
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "ETag"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// clusterNodeStatus is one slot in the GET /v1/cluster body.
type clusterNodeStatus struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Follower string `json:"follower,omitempty"`
	Promoted bool   `json:"promoted"`
	Epoch    uint64 `json:"epoch"`
	Fails    int    `json:"consecutive_health_failures"`
}

func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Nodes []clusterNodeStatus `json:"nodes"`
	}{}
	for _, n := range g.nodes {
		out.Nodes = append(out.Nodes, clusterNodeStatus{
			Name:     n.cfg.name(),
			URL:      n.currentURL(),
			Follower: n.cfg.Follower,
			Promoted: n.promoted.Load(),
			Epoch:    n.epoch.Load(),
			Fails:    int(n.fails.Load()),
		})
	}
	ingest.WriteJSON(w, out)
}
