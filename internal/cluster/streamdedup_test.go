package cluster

import (
	"context"
	"testing"

	"swarmavail/internal/ingest"
)

// TestStreamDedupSurvivesPromotion is the cross-failover half of the
// stream exactly-once property: keyed wire frames applied on the
// leader, shipped via the WAL, must be recognised as duplicates by the
// promoted follower — a monitor whose stream reconnects to the new
// leader and resends its unacked window re-applies nothing.
func TestStreamDedupSurvivesPromotion(t *testing.T) {
	leader := newTestLeader(t)

	var frames [][]byte
	for seq := uint64(1); seq <= 6; seq++ {
		ops := []ingest.Op{
			ingest.EventOp(ingest.Record{SwarmID: int(seq) % 5, PeerID: seq, Seed: true, Online: true, Time: float64(seq) / 3}),
			ingest.EventOp(ingest.Record{SwarmID: int(seq) % 7, PeerID: seq + 100, Online: true, Time: float64(seq)}),
		}
		frame, err := ingest.EncodeFrame(nil, "mon-promote", seq, ops)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
		applied, err := leader.e.SubmitFrame(frame)
		if err != nil || !applied {
			t.Fatalf("leader SubmitFrame seq %d: applied=%v err=%v", seq, applied, err)
		}
	}
	// The leader's own replay check: same frames again, all absorbed.
	for i, frame := range frames {
		applied, err := leader.e.SubmitFrame(frame)
		if err != nil || applied {
			t.Fatalf("leader replay %d: applied=%v err=%v", i, applied, err)
		}
	}
	leaderState := stateBytes(t, leader.e)

	f, err := NewFollower(FollowerConfig{LeaderURL: leader.srv.URL, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(context.Background()); err != nil {
		t.Fatalf("sync: %v", err)
	}
	promoted, _, err := f.Promote(ingest.Config{Shards: 2})
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer promoted.Close()

	if got := stateBytes(t, promoted); string(got) != string(leaderState) {
		t.Fatalf("promoted state diverged from leader\n--- promoted ---\n%s\n--- leader ---\n%s", got, leaderState)
	}

	// The reconnect-after-failover resend: every frame again, against
	// the promoted engine. Nothing may re-apply, and every duplicate op
	// must land in ingest_deduped_total.
	base := promoted.Metrics()
	var dupOps uint64
	for i, frame := range frames {
		applied, err := promoted.SubmitFrame(frame)
		if err != nil {
			t.Fatalf("promoted SubmitFrame %d: %v", i, err)
		}
		if applied {
			t.Fatalf("promoted engine re-applied frame %d after failover", i)
		}
		dupOps += 2
	}
	m := promoted.Metrics()
	if m.Records != base.Records {
		t.Fatalf("records moved %d -> %d across replay", base.Records, m.Records)
	}
	if want := base.Deduped + dupOps; m.Deduped != want {
		t.Fatalf("deduped %d, want %d", m.Deduped, want)
	}
	if got := stateBytes(t, promoted); string(got) != string(leaderState) {
		t.Fatal("state changed across a fully deduplicated replay")
	}
	leader.e.Close()
}
