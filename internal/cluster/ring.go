// Package cluster scales the ingest pipeline past one availd process:
// a consistent-hash ring partitions the swarm keyspace across N nodes
// (the same "partition by swarm, never split a swarm" rule that
// internal/ingest's shards apply within a process, lifted one level
// up), a gateway fans writes out and scatter-gathers reads back
// through Summary.Merge, and a WAL-shipping follower gives each node a
// warm standby the gateway can promote when health checks mark the
// leader dead.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per physical node. Imbalance
// under consistent hashing falls roughly with 1/sqrt(vnodes); 256
// points per node keeps the largest share within ~10% of fair for a
// handful of nodes while ring construction and lookups stay trivial
// (the whole table is nodes×256 entries, binary-searched).
const DefaultVnodes = 256

// Ring is an immutable consistent-hash ring mapping swarm ids to node
// indices. Immutability is the point: the gateway builds one ring at
// startup and every request hashes against the same table, so a swarm's
// home node never changes while the cluster membership doesn't —
// failover replaces the process behind a slot, not the slot itself.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int
}

// NewRing builds a ring over nodes physical nodes with vnodes virtual
// points each (vnodes <= 0 selects DefaultVnodes).
func NewRing(nodes, vnodes int) (*Ring, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node, got %d", nodes)
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, nodes*vnodes), nodes: nodes}
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "node-%d/vnode-%d", n, v)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tie-break so two gateways built from the same
		// membership agree even on (vanishingly unlikely) hash collisions.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the physical node count.
func (r *Ring) Nodes() int { return r.nodes }

// Node maps a swarm id to its home node index. The key is mixed through
// the same splitmix64 finalizer internal/ingest uses for shard routing:
// swarm ids are small sequential integers, and an unmixed key would
// walk the ring instead of spraying across it.
func (r *Ring) Node(swarmID int) int {
	key := mix64(uint64(swarmID))
	// First ring point at or clockwise-after the key; wrap to the start.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// mix64 is the splitmix64 finalizer — the same mix as ingest's
// shardIndex, so both levels of partitioning treat dense integer ids
// as uniform keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
