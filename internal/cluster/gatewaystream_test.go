package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"swarmavail/internal/ingest"
	"swarmavail/internal/obs"
)

// streamNode is one in-memory availd stand-in: an engine serving both
// the binary stream protocol and the /v1/state + /v1/healthz routes the
// gateway needs.
type streamNode struct {
	e       *ingest.Engine
	srv     *httptest.Server
	binAddr string
}

func newStreamNode(t *testing.T) *streamNode {
	t.Helper()
	e := ingest.New(ingest.Config{Shards: 2})
	t.Cleanup(e.Close)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		ingest.WriteJSON(w, map[string]string{"state": "serving"})
	})
	mux.HandleFunc("GET /v1/state", func(w http.ResponseWriter, r *http.Request) {
		e.Flush()
		ingest.WriteState(w, e.Summary())
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := ingest.NewStreamServer(e, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ss.Serve(ln)
	}()
	t.Cleanup(func() {
		ln.Close()
		ss.Close()
		<-done
	})
	return &streamNode{e: e, srv: srv, binAddr: ln.Addr().String()}
}

// streamGateway wires nodes into a gateway with its binary stream
// listener up, returning the gateway, its HTTP test server and the
// stream address.
func streamGateway(t *testing.T, nodes []*streamNode) (*Gateway, *httptest.Server, string) {
	t.Helper()
	cfgs := make([]NodeConfig, len(nodes))
	for i, n := range nodes {
		cfgs[i] = NodeConfig{Name: fmt.Sprintf("n%d", i), URL: n.srv.URL, BinAddr: n.binAddr}
	}
	g, err := NewGateway(GatewayConfig{
		Nodes:       cfgs,
		HealthEvery: time.Hour, // no failover noise in these tests
		Metrics:     obs.NewRegistry(),
		SourceID:    "gwtest",
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = g.ServeStream(ln)
	}()
	t.Cleanup(func() {
		ln.Close()
		<-done
		g.Close()
	})
	return g, srv, ln.Addr().String()
}

func fetchBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return body
}

// TestGatewayStreamParity pushes one op stream through the gateway's
// binary stream front — frames straddling slots, so both the verbatim
// single-slot path and the split-and-re-key path run — and requires the
// gateway's merged /v1/summary and /v1/availability/cdf to be
// byte-identical to a lone engine that saw the whole stream.
func TestGatewayStreamParity(t *testing.T) {
	nodes := []*streamNode{newStreamNode(t), newStreamNode(t), newStreamNode(t)}
	_, gwSrv, streamAddr := streamGateway(t, nodes)

	lone := ingest.New(ingest.Config{Shards: 2})
	defer lone.Close()

	c := ingest.NewStreamClient(ingest.StreamClientConfig{Addr: streamAddr, BatchSize: 64})
	for swarm := 0; swarm < 150; swarm++ {
		for k := 0; k < 8; k++ {
			rec := ingest.Record{
				SwarmID: swarm,
				PeerID:  uint64(k + 1),
				Seed:    k%3 == 0,
				Online:  k%4 != 3,
				Time:    float64(k) / 4,
			}
			if err := c.Observe(rec); err != nil {
				t.Fatal(err)
			}
			if err := lone.Observe(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	lone.Flush()

	loneSummary := httptest.NewRecorder()
	ingest.WriteSummary(loneSummary, lone.Summary())
	qs, err := ingest.ParseQuantiles("")
	if err != nil {
		t.Fatal(err)
	}
	loneCDF := httptest.NewRecorder()
	ingest.WriteCDF(loneCDF, lone.Summary(), qs)

	if got := fetchBody(t, gwSrv.URL+"/v1/summary"); !bytes.Equal(got, loneSummary.Body.Bytes()) {
		t.Fatalf("merged summary diverged from lone engine\n--- gateway ---\n%s\n--- lone ---\n%s",
			got, loneSummary.Body.Bytes())
	}
	if got := fetchBody(t, gwSrv.URL+"/v1/availability/cdf"); !bytes.Equal(got, loneCDF.Body.Bytes()) {
		t.Fatalf("merged cdf diverged from lone engine\n--- gateway ---\n%s\n--- lone ---\n%s",
			got, loneCDF.Body.Bytes())
	}
}

// TestGatewayStreamKeyedReplayForwardsVerbatim replays a single-slot
// keyed frame through the gateway twice. The forward is verbatim —
// same bytes, same key — so the owning node's dedup window absorbs the
// replay: no node re-applies, and the summary is unchanged.
func TestGatewayStreamKeyedReplayForwardsVerbatim(t *testing.T) {
	nodes := []*streamNode{newStreamNode(t), newStreamNode(t)}
	g, gwSrv, streamAddr := streamGateway(t, nodes)

	// A frame whose ops all live on one slot, keyed by the monitor.
	slotOf := func(swarm int) int { return g.Ring().Node(swarm) }
	wantSlot := slotOf(1)
	var ops []ingest.Op
	for swarm := 1; len(ops) < 6; swarm++ {
		if slotOf(swarm) != wantSlot {
			continue
		}
		ops = append(ops,
			ingest.EventOp(ingest.Record{SwarmID: swarm, PeerID: 1, Seed: true, Online: true, Time: 0.5}),
			ingest.EventOp(ingest.Record{SwarmID: swarm, PeerID: 2, Online: true, Time: 1.5}),
		)
	}
	frame, err := ingest.EncodeFrame(nil, "mon-verbatim", 7, ops)
	if err != nil {
		t.Fatal(err)
	}

	push := func() {
		c := ingest.NewStreamClient(ingest.StreamClientConfig{Addr: streamAddr, Source: "mon-verbatim"})
		if err := c.PushFrame(frame); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	push()
	base := fetchBody(t, gwSrv.URL+"/v1/summary")
	var applied, deduped uint64
	for _, n := range nodes {
		m := n.e.Metrics()
		applied += m.Records
		deduped += m.Deduped
	}
	if want := uint64(len(ops)); applied != want {
		t.Fatalf("nodes applied %d records, want %d", applied, want)
	}
	if deduped != 0 {
		t.Fatalf("unexpected dedups before replay: %d", deduped)
	}

	push() // the lost-ack retry
	var applied2, deduped2 uint64
	for _, n := range nodes {
		m := n.e.Metrics()
		applied2 += m.Records
		deduped2 += m.Deduped
	}
	if applied2 != applied {
		t.Fatalf("replay re-applied: %d -> %d records", applied, applied2)
	}
	if want := uint64(len(ops)); deduped2 != want {
		t.Fatalf("replay deduped %d records, want %d", deduped2, want)
	}
	if got := fetchBody(t, gwSrv.URL+"/v1/summary"); !bytes.Equal(got, base) {
		t.Fatal("summary changed across a deduplicated replay")
	}
}
