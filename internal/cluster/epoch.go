package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"

	"swarmavail/internal/ingest"
	"swarmavail/internal/obs"
)

// EpochHeader is the cluster epoch header stamped on proxied requests
// and echoed on every node response (re-exported from ingest, which
// owns the wire constants).
const EpochHeader = ingest.HeaderEpoch

// epochFile is the slot epoch's on-disk name inside a node's data dir,
// next to the WAL segments and checkpoints it fences.
const epochFile = "cluster-epoch.json"

// epochState is the persisted form: the slot epoch this node last
// served at, and whether it has been fenced (saw a newer epoch and
// demoted itself). Fencing is persisted so a zombie leader that
// restarts after the cluster moved past it comes back fenced, not
// writable.
type epochState struct {
	Epoch  uint64 `json:"epoch"`
	Fenced bool   `json:"fenced"`
}

// EpochGate is a node's side of cluster epoch fencing: a monotonic
// per-slot epoch plus a fenced flag, persisted in the data dir. Its
// Middleware stamps every response with the node's epoch and rejects
// requests the epoch algebra says must not be served (see Middleware).
//
// State machine: a node starts at the persisted epoch (1 on a fresh
// dir). Promotion Adopts the successor epoch. A request stamped with a
// newer epoch demotes the node — it persists the newer epoch with
// fenced=true and refuses writes (and stamped reads) from then on,
// which is what makes a partitioned-but-alive leader harmless once the
// partition heals: the gateway's first stamped probe fences it.
type EpochGate struct {
	dir    string // "" = memory-only (in-memory engines)
	epoch  atomic.Uint64
	fenced atomic.Bool

	// mu serialises persisted-state transitions (Adopt, demote) so two
	// concurrent demotions cannot interleave their file writes.
	mu sync.Mutex

	fencedTotal *obs.Counter
	logf        func(format string, args ...any)
}

// OpenEpochGate loads (or initialises) the slot epoch persisted in dir
// and registers the gate's instruments on reg: cluster_epoch (gauge)
// and cluster_fenced_requests_total. dir may be "" for an engine
// without a data dir — the gate then lives in memory only.
func OpenEpochGate(dir string, reg *obs.Registry, logf func(format string, args ...any)) (*EpochGate, error) {
	g := &EpochGate{dir: dir, logf: logf, fencedTotal: reg.Counter("cluster_fenced_requests_total")}
	st := epochState{Epoch: 1}
	if dir != "" {
		data, err := os.ReadFile(filepath.Join(dir, epochFile))
		switch {
		case err == nil:
			if jerr := json.Unmarshal(data, &st); jerr != nil {
				return nil, fmt.Errorf("cluster: corrupt %s: %w", epochFile, jerr)
			}
			if st.Epoch == 0 {
				st.Epoch = 1
			}
		case os.IsNotExist(err):
			// Fresh dir: epoch 1, not fenced. Persist lazily on the first
			// transition; an all-defaults file adds nothing.
		default:
			return nil, err
		}
	}
	g.epoch.Store(st.Epoch)
	g.fenced.Store(st.Fenced)
	reg.GaugeFunc("cluster_epoch", func() float64 { return float64(g.epoch.Load()) })
	return g, nil
}

// Epoch returns the node's current slot epoch.
func (g *EpochGate) Epoch() uint64 { return g.epoch.Load() }

// Fenced reports whether the node has demoted itself.
func (g *EpochGate) Fenced() bool { return g.fenced.Load() }

// Adopt installs epoch as the node's own — the promotion path. It
// clears any fence (the node is the legitimate owner at this epoch) and
// fails if epoch would move backwards.
func (g *EpochGate) Adopt(epoch uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if cur := g.epoch.Load(); epoch < cur {
		return fmt.Errorf("cluster: cannot adopt epoch %d below current %d", epoch, cur)
	}
	if err := g.persist(epochState{Epoch: epoch, Fenced: false}); err != nil {
		return err
	}
	g.epoch.Store(epoch)
	g.fenced.Store(false)
	return nil
}

// demote fences the node at the newer epoch it just witnessed. The
// in-memory fence is installed even when persisting fails — refusing
// writes now matters more than remembering the refusal across a
// restart.
func (g *EpochGate) demote(epoch uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if epoch < g.epoch.Load() {
		epoch = g.epoch.Load()
	}
	if err := g.persist(epochState{Epoch: epoch, Fenced: true}); err != nil && g.logf != nil {
		g.logf("cluster: persisting fence at epoch %d: %v", epoch, err)
	}
	g.epoch.Store(epoch)
	g.fenced.Store(true)
}

// persist writes st via temp + fsync + atomic rename. Caller holds mu.
func (g *EpochGate) persist(st epochState) error {
	if g.dir == "" {
		return nil
	}
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(g.dir, "cluster-epoch-*.tmp")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, filepath.Join(g.dir, epochFile)); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// isWrite reports whether r mutates node state. Reads from a fenced
// node stay served when unstamped (operators debugging a demoted node,
// followers shipping its WAL); writes never.
func isWrite(r *http.Request) bool {
	switch r.Method {
	case http.MethodGet, http.MethodHead, http.MethodOptions:
		return false
	}
	return true
}

// Middleware enforces the epoch algebra around next and stamps every
// response with the node's current epoch:
//
//   - request stamped with a newer epoch: the cluster has moved past us
//     — demote (persist the fence) and answer 409. This applies to
//     reads too: the gateway's post-heal probe is a stamped GET.
//   - request stamped with an older epoch: the sender is stale — 409
//     with our epoch so it can re-learn.
//   - request stamped with our epoch, node fenced: 409 — our state
//     diverged the moment we were fenced and must not be merged.
//   - unstamped write, node fenced: 409 (a zombie's direct clients
//     don't get to bypass the fence by omitting the header).
//   - unstamped read: always served.
func (g *EpochGate) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		own := g.epoch.Load()
		w.Header().Set(EpochHeader, strconv.FormatUint(own, 10))
		stamp := r.Header.Get(EpochHeader)
		if stamp == "" {
			if g.fenced.Load() && isWrite(r) {
				g.reject(w, own, "node fenced at epoch")
				return
			}
			next.ServeHTTP(w, r)
			return
		}
		reqE, err := strconv.ParseUint(stamp, 10, 64)
		if err != nil || reqE == 0 {
			http.Error(w, "bad "+EpochHeader+" header", http.StatusBadRequest)
			return
		}
		switch {
		case reqE > own:
			if g.logf != nil {
				g.logf("cluster: fenced by epoch %d request (own epoch %d)", reqE, own)
			}
			g.demote(reqE)
			w.Header().Set(EpochHeader, strconv.FormatUint(g.epoch.Load(), 10))
			g.reject(w, g.epoch.Load(), "demoted by newer epoch")
		case reqE < own:
			g.reject(w, own, "request epoch stale, node at epoch")
		case g.fenced.Load():
			g.reject(w, own, "node fenced at epoch")
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// reject answers 409 with the node's epoch and counts the fenced
// request.
func (g *EpochGate) reject(w http.ResponseWriter, epoch uint64, why string) {
	g.fencedTotal.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusConflict)
	json.NewEncoder(w).Encode(map[string]any{
		"error": fmt.Sprintf("%s %d", why, epoch),
		"epoch": epoch,
	})
}
