package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"swarmavail/internal/ingest"
	"swarmavail/internal/wal"
)

// maxStreamFrames caps the frames served per /v1/wal/stream response.
// The follower polls, so a cap costs another round trip, not data; what
// it buys is bounded response bodies while a cold follower catches up
// through months of journal.
const maxStreamFrames = 4096

// WALStatus is the GET /v1/wal/status body: the shippable window of a
// leader's journal.
type WALStatus struct {
	// FirstSeq is the oldest frame still on disk (0 = journal empty);
	// a follower whose catch-up point is older must bootstrap from the
	// checkpoint instead.
	FirstSeq uint64 `json:"first_seq"`
	// LastSeq is the newest appended frame (0 = nothing ever appended).
	LastSeq uint64 `json:"last_seq"`
	// CheckpointSeq is the newest on-disk checkpoint's coverage
	// (0 = no checkpoint).
	CheckpointSeq uint64 `json:"checkpoint_seq"`
}

// WALServer serves a durable engine's journal over HTTP for follower
// catch-up: status (what's shippable), stream (the frames themselves,
// re-framed with the same length+CRC envelope they carry on disk) and
// checkpoint (bootstrap when the requested tail has been truncated).
// All reads use wal.Log.Tail, which is safe alongside the engine's
// appends, so shipping never stalls ingest.
type WALServer struct {
	Log *wal.Log
	// Dir is the durability directory holding checkpoint files.
	Dir string
}

// Register mounts the WAL-shipping routes on mux.
func (s *WALServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/wal/status", s.handleStatus)
	mux.HandleFunc("/v1/wal/stream", s.handleStream)
	mux.HandleFunc("/v1/wal/checkpoint", s.handleCheckpoint)
}

// Status reports the journal's shippable window.
func (s *WALServer) Status() (WALStatus, error) {
	st := WALStatus{FirstSeq: s.Log.FirstSeq(), LastSeq: s.Log.LastSeq()}
	_, ckptSeq, ok, err := ingest.NewestCheckpoint(s.Dir)
	if err != nil {
		return st, err
	}
	if ok {
		st.CheckpointSeq = ckptSeq
	}
	return st, nil
}

func (s *WALServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	st, err := s.Status()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ingest.WriteJSON(w, st)
}

// handleStream serves GET /v1/wal/stream?from=N: frames N, N+1, … (up
// to maxStreamFrames) in the on-disk envelope, concatenated. The first
// frame served is exactly N or the response is an error — a follower
// can therefore trust positions: frame i of the body has sequence N+i.
//
//   - 200: zero or more frames starting at N (empty body = caught up).
//   - 410: N is below the retained window (checkpoint truncated it);
//     re-bootstrap from /v1/wal/checkpoint.
//   - 400: bad or missing from.
func (s *WALServer) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		http.Error(w, "bad from sequence", http.StatusBadRequest)
		return
	}
	// The oldest sequence this journal can serve: FirstSeq when frames
	// exist, otherwise the next sequence to be appended (an empty journal
	// after a checkpoint at seq S can serve from S+1 on).
	minAvail := s.Log.FirstSeq()
	if minAvail == 0 {
		minAvail = s.Log.LastSeq() + 1
	}
	if from < minAvail {
		http.Error(w, fmt.Sprintf("sequence %d truncated (oldest available %d); bootstrap from checkpoint", from, minAvail), http.StatusGone)
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-From-Seq", strconv.FormatUint(from, 10))
	var (
		buf    []byte
		served int
		want   = from
	)
	errStop := fmt.Errorf("stream frame cap")
	err = s.Log.Tail(from, func(seq uint64, payload []byte) error {
		if served >= maxStreamFrames {
			return errStop
		}
		if seq != want {
			return fmt.Errorf("wal tail gap: want seq %d, got %d", want, seq)
		}
		buf = wal.AppendFrame(buf[:0], payload)
		if _, werr := w.Write(buf); werr != nil {
			return werr
		}
		served++
		want++
		return nil
	})
	// Frames already written are valid whatever happened after them: the
	// follower appends the clean prefix it received and re-polls. The cap
	// is not an error at all, and a mid-stream failure (segment deleted
	// by a racing checkpoint truncation) just ends the response early —
	// status 200 was committed with the first byte anyway.
	_ = err
}

// handleCheckpoint serves the newest checkpoint file whole, with its
// coverage sequence in X-Checkpoint-Seq. 404 when no checkpoint exists
// yet (the follower then streams the journal from seq 1).
func (s *WALServer) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	path, seq, ok, err := ingest.NewestCheckpoint(s.Dir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, "no checkpoint", http.StatusNotFound)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Checkpoint-Seq", strconv.FormatUint(seq, 10))
	_, _ = io.Copy(w, f)
}

// FetchWALStatus fetches a leader's /v1/wal/status.
func FetchWALStatus(client *http.Client, baseURL string) (WALStatus, error) {
	var st WALStatus
	resp, err := client.Get(baseURL + "/v1/wal/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return st, fmt.Errorf("cluster: wal status: %s: %s", resp.Status, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("cluster: wal status: %w", err)
	}
	return st, nil
}
