package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"swarmavail/internal/ingest"
	"swarmavail/internal/wal"
)

// maxGatewayStreamFrame bounds one downstream stream frame's payload,
// mirroring the availd stream server's bound.
const maxGatewayStreamFrame = 8 << 20

// ServeStream serves the binary streaming ingest protocol cluster-wide:
// it accepts monitor stream connections on ln and forwards each DATA
// frame's ops to the owning slots over upstream stream connections
// (every node's BinAddr), acknowledging a frame downstream only after
// every upstream share is acknowledged.
//
// A keyed frame whose ops all land on one slot is forwarded byte for
// byte — the node journals exactly the bytes the monitor signed with
// its CRC. Frames that straddle slots are split along the ring and
// re-encoded per slot under the same (source, seq) key, so a retry
// after a lost downstream ack still deduplicates at every node (each
// node sees at most one share per key, exactly as the HTTP fan-out).
// Unkeyed frames get gateway-originated per-slot keys, making the
// upstream resend after a broken node connection exactly-once even
// though the monitor asked only for at-least-once.
//
// ServeStream returns nil when ln closes. Close the listener before
// Gateway.Close on shutdown.
func (g *Gateway) ServeStream(ln net.Listener) error {
	for i, n := range g.nodes {
		if addr, _ := n.binAddr.Load().(string); addr == "" {
			return fmt.Errorf("cluster: node %d (%s) has no BinAddr for stream forwarding", i, n.cfg.name())
		}
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			if err := g.serveStreamConn(conn); err != nil {
				g.logf("gateway stream %s: %v", conn.RemoteAddr(), err)
			}
		}(conn)
	}
}

// slotTarget is one slot's cumulative-sent watermark at the time a
// downstream frame finished fanning out.
type slotTarget struct {
	slot int
	sent uint64
}

// streamAckJob asks the ack relay to acknowledge the first count
// downstream DATA frames once every slot watermark is settled.
type streamAckJob struct {
	count   uint64
	targets []slotTarget
}

// streamForwarder is one downstream connection's forwarding state.
type streamForwarder struct {
	g       *Gateway
	conn    net.Conn
	clients []*ingest.StreamClient // lazy, per slot

	wmu  sync.Mutex // downstream writes: ack relay vs. ERR frames
	wbuf []byte

	// accepted counts downstream DATA frames fanned out on this
	// connection; only the serve loop touches it.
	accepted uint64

	acks chan streamAckJob
	done chan struct{} // ack relay exited
	ferr chan error    // first relay failure (buffered 1)
}

func (g *Gateway) serveStreamConn(conn net.Conn) error {
	g.streamConns.Inc()
	f := &streamForwarder{
		g:       g,
		conn:    conn,
		clients: make([]*ingest.StreamClient, len(g.nodes)),
		acks:    make(chan streamAckJob, 128),
		done:    make(chan struct{}),
		ferr:    make(chan error, 1),
	}
	go f.relay()
	err := f.serve()
	close(f.acks)
	<-f.done
	for _, c := range f.clients {
		if c != nil {
			c.Close()
		}
	}
	if err == nil {
		select {
		case rerr := <-f.ferr:
			err = rerr
		default:
		}
	}
	return err
}

// client returns slot's upstream stream client, dialing lazily. The
// dial func re-reads the slot's current binary address, so a reconnect
// after a failover lands on the promoted follower.
func (f *streamForwarder) client(slot int) *ingest.StreamClient {
	if f.clients[slot] == nil {
		n := f.g.nodes[slot]
		f.clients[slot] = ingest.NewStreamClient(ingest.StreamClientConfig{
			Dial: func() (net.Conn, error) {
				addr, _ := n.binAddr.Load().(string)
				return net.DialTimeout("tcp", addr, 10*time.Second)
			},
			Source: f.g.cfg.SourceID + "#" + strconv.Itoa(slot),
			Logf:   f.g.cfg.Logf,
		})
	}
	return f.clients[slot]
}

// serve is the downstream read loop: one iteration per frame, exactly
// the availd stream server's protocol surface.
func (f *streamForwarder) serve() error {
	fr := wal.NewFrameReader(f.conn)
	for {
		payload, err := fr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			if errors.Is(err, wal.ErrCorrupt) {
				f.sendErr(ingest.StreamErrProto, "corrupt frame: "+err.Error())
				return fmt.Errorf("corrupt frame: %w", err)
			}
			return err
		}
		if len(payload) > maxGatewayStreamFrame {
			f.sendErr(ingest.StreamErrProto, "frame exceeds stream bound")
			return fmt.Errorf("oversized stream frame (%d bytes)", len(payload))
		}
		switch payload[0] {
		case ingest.StreamFrameData:
			if err := f.forward(payload[1:]); err != nil {
				return err
			}
		case ingest.StreamFrameClose:
			// Queue a final targetless ack job: the relay settles every
			// queued watermark in order, so when it reaches this job the
			// whole stream is settled and the ack it writes is the final
			// cumulative one the client is waiting for.
			f.acks <- streamAckJob{count: f.accepted}
			return nil
		default:
			f.sendErr(ingest.StreamErrProto, fmt.Sprintf("unknown frame type 0x%02x", payload[0]))
			return fmt.Errorf("unknown stream frame type 0x%02x", payload[0])
		}
	}
}

// forward fans one DATA frame's ops out to their slots and queues the
// ack watermarks.
func (f *streamForwarder) forward(frame []byte) error {
	source, seq, ops, err := ingest.DecodeFrame(frame)
	if err != nil {
		f.sendErr(ingest.StreamErrCodec, err.Error())
		return fmt.Errorf("data frame rejected: %w", err)
	}
	g := f.g
	var touched []int
	if len(ops) > 0 {
		slots := make([][]ingest.Op, len(g.nodes))
		single := g.ring.Node(ops[0].SwarmID())
		for _, op := range ops {
			slot := g.ring.Node(op.SwarmID())
			if slot != single {
				single = -1
			}
			slots[slot] = append(slots[slot], op)
		}
		if single >= 0 && source != "" {
			// Whole frame owned by one slot under the monitor's own key:
			// forward the received bytes verbatim.
			if err := f.push(single, func(c *ingest.StreamClient) error {
				return c.PushFrame(frame)
			}); err != nil {
				return err
			}
			touched = append(touched, single)
		} else {
			for slot, share := range slots {
				if len(share) == 0 {
					continue
				}
				src, sq := source, seq
				if src == "" {
					src = g.cfg.SourceID + "#" + strconv.Itoa(slot)
					sq = g.nodes[slot].seq.Add(1)
				}
				enc, err := ingest.EncodeFrame(nil, src, sq, share)
				if err != nil {
					f.sendErr(ingest.StreamErrCodec, err.Error())
					return fmt.Errorf("re-encode for slot %d: %w", slot, err)
				}
				if err := f.push(slot, func(c *ingest.StreamClient) error {
					return c.PushFrame(enc)
				}); err != nil {
					return err
				}
				touched = append(touched, slot)
			}
		}
	}
	g.streamFrames.Inc()
	f.accepted++
	job := streamAckJob{count: f.accepted}
	for _, slot := range touched {
		job.targets = append(job.targets, slotTarget{slot: slot, sent: f.clients[slot].Sent()})
	}
	f.acks <- job
	return nil
}

// push runs one upstream send, converting a fatal upstream verdict into
// a downstream ERR.
func (f *streamForwarder) push(slot int, send func(*ingest.StreamClient) error) error {
	if err := send(f.client(slot)); err != nil {
		f.sendErr(ingest.StreamErrState, fmt.Sprintf("slot %d: %v", slot, err))
		return fmt.Errorf("forward to slot %d: %w", slot, err)
	}
	return nil
}

// relay settles ack jobs in order: wait until every slot watermark in
// the job is acknowledged upstream, then acknowledge downstream.
// Consecutive settled jobs coalesce into one downstream ack. On an
// upstream failure it reports once, closes the downstream connection,
// and keeps draining so the serve loop never blocks on the queue.
func (f *streamForwarder) relay() {
	defer close(f.done)
	failed := false
	for job := range f.acks {
		if failed {
			continue
		}
		if err := f.settle(job); err != nil {
			failed = true
			f.ferr <- err
			f.sendErr(ingest.StreamErrState, err.Error())
			f.conn.Close()
			continue
		}
		// Coalesce: settle everything already queued before acking.
		count := job.count
	drain:
		for {
			select {
			case next, ok := <-f.acks:
				if !ok {
					f.writeAck(count)
					return
				}
				if err := f.settle(next); err != nil {
					failed = true
					f.ferr <- err
					f.sendErr(ingest.StreamErrState, err.Error())
					f.conn.Close()
					break drain
				}
				count = next.count
			default:
				break drain
			}
		}
		if !failed {
			f.writeAck(count)
		}
	}
}

func (f *streamForwarder) settle(job streamAckJob) error {
	for _, t := range job.targets {
		if err := f.clients[t.slot].WaitAcked(t.sent); err != nil {
			return fmt.Errorf("slot %d: %w", t.slot, err)
		}
	}
	return nil
}

func (f *streamForwarder) writeAck(count uint64) {
	var p [9]byte
	p[0] = ingest.StreamFrameAck
	binary.LittleEndian.PutUint64(p[1:], count)
	f.wmu.Lock()
	f.wbuf = wal.AppendFrame(f.wbuf[:0], p[:])
	_, _ = f.conn.Write(f.wbuf)
	f.wmu.Unlock()
}

func (f *streamForwarder) sendErr(code byte, msg string) {
	if len(msg) > 512 {
		msg = msg[:512]
	}
	p := make([]byte, 0, 2+len(msg))
	p = append(p, ingest.StreamFrameErr, code)
	p = append(p, msg...)
	f.wmu.Lock()
	env := wal.AppendFrame(nil, p)
	_, _ = f.conn.Write(env)
	f.wmu.Unlock()
}
