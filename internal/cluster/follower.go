package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"swarmavail/internal/ingest"
	"swarmavail/internal/obs"
	"swarmavail/internal/wal"
)

// FollowerConfig parameterises a Follower.
type FollowerConfig struct {
	// LeaderURL is the leader's base URL (e.g. http://127.0.0.1:8647).
	LeaderURL string
	// Dir is the follower's local durability directory: shipped WAL
	// segments and bootstrap checkpoints land here, in exactly the
	// layout ingest.OpenDurable expects, so promotion is a recovery.
	Dir string
	// Client is the HTTP client for leader requests (default 30s timeout).
	Client *http.Client
	// PollEvery is the catch-up poll cadence (default 250ms).
	PollEvery time.Duration
	// Fsync selects the local WAL sync policy (default per-append, the
	// same guarantee the leader gives: a shipped frame survives SIGKILL).
	Fsync wal.SyncPolicy
	// Metrics, when set, registers follower gauges and counters.
	Metrics *obs.Registry
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 250 * time.Millisecond
	}
	return c
}

// Follower replicates a leader availd's journal into a local directory
// by polling the leader's WAL-shipping endpoints: status to find the
// window, stream to pull frames from its last shipped sequence, and
// checkpoint to re-bootstrap when the leader's own checkpointing has
// truncated the frames it needs. Everything lands on disk in
// ingest.OpenDurable's layout, so promoting the follower is exactly a
// crash recovery — load newest checkpoint, replay WAL tail — of state
// the leader acknowledged.
//
// Shipping is pull-based and at-least-once at the transport level but
// exactly-once on disk: frame i of a stream response is guaranteed to
// be sequence from+i, the follower appends only at its own log's next
// sequence, and any mismatch aborts the pass rather than corrupting
// the copy.
type Follower struct {
	cfg FollowerConfig
	log *wal.Log

	shipped    atomic.Uint64 // newest sequence durably copied locally
	bootstraps atomic.Uint64

	shippedFrames *obs.Counter

	running atomic.Bool // Run entered; Close must wait for done

	mu      sync.Mutex
	stopped bool
	stop    chan struct{}
	done    chan struct{}
}

// NewFollower opens (or resumes) a follower over dir. An existing
// directory resumes where the last run stopped: the shipped watermark
// is the newer of the local journal's tail and the newest local
// checkpoint.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	cfg = cfg.withDefaults()
	if cfg.LeaderURL == "" || cfg.Dir == "" {
		return nil, errors.New("cluster: follower needs LeaderURL and Dir")
	}
	log, _, err := wal.Open(cfg.Dir, wal.Options{Policy: cfg.Fsync})
	if err != nil {
		return nil, err
	}
	f := &Follower{
		cfg:  cfg,
		log:  log,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	shipped := log.LastSeq()
	if _, ckptSeq, ok, err := ingest.NewestCheckpoint(cfg.Dir); err != nil {
		log.Close()
		return nil, err
	} else if ok && ckptSeq > shipped {
		shipped = ckptSeq
	}
	f.shipped.Store(shipped)
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("follower_shipped_seq", func() float64 { return float64(f.shipped.Load()) })
		reg.GaugeFunc("follower_bootstraps_total", func() float64 { return float64(f.bootstraps.Load()) })
		f.shippedFrames = reg.Counter("follower_shipped_frames_total")
	}
	return f, nil
}

// Shipped returns the newest sequence durably copied locally.
func (f *Follower) Shipped() uint64 { return f.shipped.Load() }

// Bootstraps returns how many times the follower re-based on a leader
// checkpoint because its catch-up point had been truncated.
func (f *Follower) Bootstraps() uint64 { return f.bootstraps.Load() }

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Run polls the leader until ctx ends or Close is called. Transient
// sync errors (leader briefly unreachable, stream cut mid-response) are
// logged and retried on the next tick — a follower's job description is
// surviving its leader's bad days.
func (f *Follower) Run(ctx context.Context) {
	f.running.Store(true)
	defer close(f.done)
	t := time.NewTicker(f.cfg.PollEvery)
	defer t.Stop()
	for {
		if err := f.Sync(ctx); err != nil && ctx.Err() == nil {
			f.logf("follower sync: %v", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-f.stop:
			return
		case <-t.C:
		}
	}
}

// Sync performs one catch-up pass: pull stream responses from
// shipped+1 until the leader reports no more frames, bootstrapping from
// the leader's checkpoint if the tail was truncated away. Safe to call
// directly (tests, pre-promotion drains) as long as Run isn't also
// mid-pass.
func (f *Follower) Sync(ctx context.Context) error {
	for {
		n, err := f.streamOnce(ctx)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
	}
}

// streamOnce pulls one /v1/wal/stream response and appends its frames.
// Returns the number of frames appended.
func (f *Follower) streamOnce(ctx context.Context) (int, error) {
	from := f.shipped.Load() + 1
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/wal/stream?from=%d", f.cfg.LeaderURL, from), nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// The leader checkpointed past our tail: re-base on its
		// checkpoint, then resume streaming from there.
		if err := f.bootstrap(ctx); err != nil {
			return 0, err
		}
		return 1, nil // force another pass to stream past the checkpoint
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("cluster: wal stream: %s: %s", resp.Status, msg)
	}

	r := wal.NewFrameReader(resp.Body)
	want := from
	appended := 0
	for {
		payload, rerr := r.Next()
		if rerr != nil {
			// io.EOF is the clean end; anything else is a cut response —
			// the frames before the cut are good, so keep them and let
			// the next pass re-poll from the new watermark.
			if !errors.Is(rerr, io.EOF) {
				f.logf("follower stream cut at seq %d: %v", want, rerr)
			}
			return appended, nil
		}
		seq, aerr := f.log.Append(payload)
		if aerr != nil {
			return appended, aerr
		}
		if seq != want {
			// The local log disagrees about the next sequence — a gap that
			// replaying would silently misnumber. Refuse loudly.
			return appended, fmt.Errorf("cluster: follower appended seq %d, want %d", seq, want)
		}
		f.shipped.Store(seq)
		f.shippedFrames.Inc()
		want++
		appended++
	}
}

// bootstrap fetches the leader's newest checkpoint into the local
// directory and advances the local journal past it.
func (f *Follower) bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.LeaderURL+"/v1/wal/checkpoint", nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: wal checkpoint: %s: %s", resp.Status, msg)
	}
	seqStr := resp.Header.Get("X-Checkpoint-Seq")
	var seq uint64
	if _, err := fmt.Sscanf(seqStr, "%d", &seq); err != nil || seq == 0 {
		return fmt.Errorf("cluster: wal checkpoint: bad X-Checkpoint-Seq %q", seqStr)
	}

	// Temp file + rename so a cut transfer never leaves a half
	// checkpoint under the name recovery trusts.
	tmp, err := os.CreateTemp(f.cfg.Dir, "checkpoint-*.tmp")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := io.Copy(tmp, resp.Body); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	dst := filepath.Join(f.cfg.Dir, fmt.Sprintf("checkpoint-%016d.bin", seq))
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
		return err
	}
	if err := f.log.AdvanceTo(seq); err != nil {
		return err
	}
	f.shipped.Store(seq)
	f.bootstraps.Add(1)
	f.logf("follower bootstrapped from leader checkpoint at seq %d", seq)
	return nil
}

// Close stops the poll loop (if running) and closes the local journal.
// Idempotent. After Close the directory is quiescent and ready for
// ingest.OpenDurable — promotion in one call. Close must not race the
// start of Run: start the loop before arranging its shutdown.
func (f *Follower) Close() error {
	f.mu.Lock()
	if !f.stopped {
		f.stopped = true
		close(f.stop)
	}
	f.mu.Unlock()
	if f.running.Load() {
		<-f.done
	}
	return f.log.Close()
}

// Promote closes the follower and opens a durable engine over the
// shipped state: newest checkpoint plus WAL tail, exactly the leader's
// acknowledged history up to the shipped watermark.
func (f *Follower) Promote(cfg ingest.Config) (*ingest.Engine, ingest.RecoveryStats, error) {
	if err := f.Close(); err != nil {
		return nil, ingest.RecoveryStats{}, err
	}
	return ingest.OpenDurable(cfg, ingest.DurabilityConfig{Dir: f.cfg.Dir})
}
