package des

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var fired []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		s.Schedule(tm, func() { fired = append(fired, tm) })
	}
	s.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events", len(fired))
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want 5", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(7, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at float64
	s.Schedule(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(1, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event should report cancelled")
	}
	// Double-cancel and nil-cancel are no-ops.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelFromHandler(t *testing.T) {
	s := New()
	var b *Event
	bFired := false
	s.Schedule(1, func() { s.Cancel(b) })
	b = s.Schedule(2, func() { bFired = true })
	s.Run()
	if bFired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(float64(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("processed %d events after Stop, want 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// Run may be resumed.
	s.Run()
	if count != 10 {
		t.Fatalf("resume processed %d total", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 10} {
		tm := tm
		s.Schedule(tm, func() { fired = append(fired, tm) })
	}
	s.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired %v", fired)
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want exactly the horizon", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// A second RunUntil picks up the remaining event.
	s.RunUntil(20)
	if len(fired) != 4 || s.Now() != 20 {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
}

func TestRunUntilEmptyAdvancesClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.Schedule(1, func() {})
}

func TestScheduleNaNPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling at NaN")
		}
	}()
	s.Schedule(math.NaN(), func() {})
}

func TestNilHandlerPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil handler")
		}
	}()
	s.Schedule(1, nil)
}

func TestHandlerSchedulingAtSameTime(t *testing.T) {
	// A handler may schedule another event at the current instant; it
	// must fire in the same run, after the current handler.
	s := New()
	var order []string
	s.Schedule(3, func() {
		order = append(order, "first")
		s.Schedule(3, func() { order = append(order, "second") })
	})
	s.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.Schedule(float64(i), func() {})
	}
	s.Run()
	if s.Fired() != 5 {
		t.Fatalf("fired = %d", s.Fired())
	}
}

// Property: with random schedule/cancel interleavings, events always fire
// in non-decreasing time order and cancelled events never fire.
func TestCalendarProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		type rec struct {
			ev        *Event
			cancelled bool
		}
		var recs []*rec
		var fired []float64
		for i := 0; i < 200; i++ {
			tm := r.Float64() * 100
			rc := &rec{}
			rc.ev = s.Schedule(tm, func() { fired = append(fired, tm) })
			recs = append(recs, rc)
		}
		for i := 0; i < 50; i++ {
			rc := recs[r.Intn(len(recs))]
			s.Cancel(rc.ev)
			rc.cancelled = true
		}
		s.Run()
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		var want int
		for _, rc := range recs {
			if !rc.cancelled {
				want++
			}
		}
		return len(fired) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
