// Package des implements a small, deterministic discrete-event simulation
// kernel: a simulated clock, a binary-heap event calendar with stable
// FIFO tie-breaking at equal timestamps, and cancellable timers.
//
// Both the M/G/∞ queue simulator (internal/queue) and the block-level
// swarming simulator (internal/swarm) run on this kernel, so their sample
// paths are reproducible bit-for-bit from a seed.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is the callback invoked when an event fires. The simulator's
// clock is already advanced to the event time when the handler runs.
type Handler func()

// Event is a scheduled occurrence in the calendar. It is returned by
// Schedule so callers can cancel it.
type Event struct {
	time    float64
	seq     uint64
	index   int // heap index, -1 once removed
	handler Handler
}

// Time returns the simulated time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Cancelled reports whether the event has been cancelled or has fired.
func (e *Event) Cancelled() bool { return e.index == -1 && e.handler == nil }

// eventHeap orders events by (time, seq): seq breaks ties in scheduling
// order, which makes simultaneous events deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the simulated clock and the event calendar. The zero
// value is not usable; create one with New.
type Simulator struct {
	now     float64
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events executed so far (useful for
// instrumentation and runaway detection in tests).
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return len(s.events) }

// Schedule registers h to run at absolute time t. Scheduling in the past
// (t < Now) panics: it is always a modelling bug.
func (s *Simulator) Schedule(t float64, h Handler) *Event {
	if h == nil {
		panic("des: nil handler")
	}
	if t < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("des: schedule at NaN")
	}
	e := &Event{time: t, seq: s.seq, handler: h}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After registers h to run d time units from now.
func (s *Simulator) After(d float64, h Handler) *Event {
	return s.Schedule(s.now+d, h)
}

// Cancel removes a pending event from the calendar. Cancelling an event
// that already fired or was already cancelled is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.index == -1 {
		return
	}
	heap.Remove(&s.events, e.index)
	e.handler = nil
	e.index = -1
}

// Stop halts the run loop after the current handler returns.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the next event, advancing the clock. It reports false when
// the calendar is empty.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.handler == nil { // cancelled while queued (defensive)
			continue
		}
		s.now = e.time
		h := e.handler
		e.handler = nil
		s.fired++
		h()
		return true
	}
	return false
}

// Run fires events until the calendar drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with time ≤ horizon, then advances the clock to
// horizon exactly (even if further events remain scheduled beyond it).
func (s *Simulator) RunUntil(horizon float64) {
	s.stopped = false
	for !s.stopped {
		if len(s.events) == 0 || s.events[0].time > horizon {
			break
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}
