package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfWeightsNormalised(t *testing.T) {
	for _, n := range []int{1, 4, 100} {
		w := ZipfWeights(n, 0.8)
		var sum float64
		for _, x := range w {
			sum += x
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("n=%d: weights sum %v", n, sum)
		}
	}
}

func TestZipfWeightsDecreasing(t *testing.T) {
	w := ZipfWeights(10, 1.0)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("weights not strictly decreasing at %d: %v", i, w)
		}
	}
	// δ=1: p1/p2 = 2.
	if math.Abs(w[0]/w[1]-2) > 1e-12 {
		t.Fatalf("p1/p2 = %v, want 2", w[0]/w[1])
	}
}

func TestZipfWeightsUniformAtDeltaZero(t *testing.T) {
	w := ZipfWeights(5, 0)
	for _, x := range w {
		if math.Abs(x-0.2) > 1e-12 {
			t.Fatalf("δ=0 should be uniform, got %v", w)
		}
	}
}

func TestZipfWeightsEmpty(t *testing.T) {
	if w := ZipfWeights(0, 1); w != nil {
		t.Fatalf("n=0 gave %v", w)
	}
}

func TestSplitRate(t *testing.T) {
	rates := SplitRate(1.0/3.84, []float64{1.0 / 8, 1.0 / 16, 1.0 / 24, 1.0 / 32})
	// §4.3.3: λi = 1/(8i); aggregate 1/3.84. The split should return the
	// same per-file rates.
	want := []float64{1.0 / 8, 1.0 / 16, 1.0 / 24, 1.0 / 32}
	var sumw float64
	for _, w := range want {
		sumw += w
	}
	for i := range want {
		expect := (1.0 / 3.84) * want[i] / sumw
		if math.Abs(rates[i]-expect) > 1e-12 {
			t.Fatalf("rate %d = %v, want %v", i, rates[i], expect)
		}
	}
	// And because Σλi = 1/3.84 exactly, split must reproduce λi.
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-9 {
			t.Fatalf("rate %d = %v, want %v", i, rates[i], want[i])
		}
	}
}

func TestSplitRateZeroWeights(t *testing.T) {
	rates := SplitRate(5, []float64{0, 0})
	for _, r := range rates {
		if r != 0 {
			t.Fatalf("zero weights must give zero rates, got %v", rates)
		}
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	c := NewCategorical([]float64{1, 2, 7})
	r := NewRand(21)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, w := range want {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.01 {
			t.Fatalf("category %d frequency %v, want %v", i, got, w)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewCategorical(nil) },
		func() { NewCategorical([]float64{0, 0}) },
		func() { NewCategorical([]float64{1, -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPoissonCountMean(t *testing.T) {
	r := NewRand(22)
	for _, mean := range []float64{0.5, 5, 80} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(PoissonCount(r, mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.02 {
			t.Fatalf("mean %v: empirical %v", mean, got)
		}
	}
}

func TestPoissonCountZero(t *testing.T) {
	if PoissonCount(NewRand(1), 0) != 0 {
		t.Fatal("zero-mean Poisson must return 0")
	}
	if PoissonCount(NewRand(1), -3) != 0 {
		t.Fatal("negative-mean Poisson must return 0")
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, mean := range []float64{0.1, 1, 10, 133} {
		var sum float64
		for i := 0; i < 2000; i++ {
			sum += PoissonPMF(mean, i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("mean %v: PMF sums to %v", mean, sum)
		}
	}
}

func TestPoissonPMFKnownValues(t *testing.T) {
	if got := PoissonPMF(0, 0); got != 1 {
		t.Fatalf("PMF(0,0) = %v", got)
	}
	if got := PoissonPMF(2, 0); math.Abs(got-math.Exp(-2)) > 1e-12 {
		t.Fatalf("PMF(2,0) = %v", got)
	}
	if got := PoissonPMF(2, 1); math.Abs(got-2*math.Exp(-2)) > 1e-12 {
		t.Fatalf("PMF(2,1) = %v", got)
	}
	if got := PoissonPMF(5, -1); got != 0 {
		t.Fatalf("PMF(5,-1) = %v", got)
	}
}

// Property: PMF is non-negative for a range of means and indices and its
// mode is near the mean.
func TestPoissonPMFProperty(t *testing.T) {
	f := func(m uint8, i uint8) bool {
		mean := float64(m%50) + 0.5
		return PoissonPMF(mean, int(i)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Zipf weights are a valid probability vector for any n, δ.
func TestZipfWeightsProperty(t *testing.T) {
	f := func(n uint8, d uint8) bool {
		nn := int(n%40) + 1
		delta := float64(d) / 32
		w := ZipfWeights(nn, delta)
		var sum float64
		for _, x := range w {
			if x <= 0 || x > 1 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
