package dist

import (
	"math"
	"math/rand"
	"sort"
)

// QuantileTable is a distribution defined by a piecewise quantile
// function: Q(Probs[i]) = Values[i], interpolated log-linearly in the
// value between breakpoints. Probs must start at 0, end at 1, and be
// strictly increasing; Values must be positive and non-decreasing.
//
// Log-linear interpolation is the natural choice for capacity
// distributions spanning several orders of magnitude (dial-up to fibre).
type QuantileTable struct {
	Probs  []float64
	Values []float64
}

// NewQuantileTable validates and builds a QuantileTable.
func NewQuantileTable(probs, values []float64) *QuantileTable {
	if len(probs) != len(values) || len(probs) < 2 {
		panic("dist: quantile table needs matching slices with at least two points")
	}
	if probs[0] != 0 || probs[len(probs)-1] != 1 {
		panic("dist: quantile table probabilities must span [0,1]")
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] <= probs[i-1] {
			panic("dist: quantile table probabilities must be strictly increasing")
		}
		if values[i] < values[i-1] {
			panic("dist: quantile table values must be non-decreasing")
		}
	}
	for _, v := range values {
		if v <= 0 {
			panic("dist: quantile table values must be positive for log-linear interpolation")
		}
	}
	p := make([]float64, len(probs))
	v := make([]float64, len(values))
	copy(p, probs)
	copy(v, values)
	return &QuantileTable{Probs: p, Values: v}
}

// Quantile returns Q(p) for p in [0,1].
func (q *QuantileTable) Quantile(p float64) float64 {
	if p <= 0 {
		return q.Values[0]
	}
	if p >= 1 {
		return q.Values[len(q.Values)-1]
	}
	i := sort.SearchFloat64s(q.Probs, p)
	if i == 0 {
		return q.Values[0]
	}
	p0, p1 := q.Probs[i-1], q.Probs[i]
	v0, v1 := q.Values[i-1], q.Values[i]
	if v0 == v1 {
		return v0
	}
	frac := (p - p0) / (p1 - p0)
	return v0 * math.Pow(v1/v0, frac)
}

// Mean integrates the quantile function over [0,1]. For a log-linear
// segment from v0 to v1 the probability-averaged value is the logarithmic
// mean (v1−v0)/ln(v1/v0).
func (q *QuantileTable) Mean() float64 {
	var mean float64
	for i := 1; i < len(q.Probs); i++ {
		w := q.Probs[i] - q.Probs[i-1]
		v0, v1 := q.Values[i-1], q.Values[i]
		if v0 == v1 {
			mean += w * v0
			continue
		}
		mean += w * (v1 - v0) / math.Log(v1/v0)
	}
	return mean
}

// Var integrates Q(p)² over [0,1] and subtracts Mean()². For a
// log-linear segment, ∫v² dp = (v1²−v0²)/(2·ln(v1/v0)).
func (q *QuantileTable) Var() float64 {
	var m2 float64
	for i := 1; i < len(q.Probs); i++ {
		w := q.Probs[i] - q.Probs[i-1]
		v0, v1 := q.Values[i-1], q.Values[i]
		if v0 == v1 {
			m2 += w * v0 * v0
			continue
		}
		m2 += w * (v1*v1 - v0*v0) / (2 * math.Log(v1/v0))
	}
	m := q.Mean()
	return m2 - m*m
}

// Median returns Q(0.5).
func (q *QuantileTable) Median() float64 { return q.Quantile(0.5) }

// Sample draws by inverse transform.
func (q *QuantileTable) Sample(r *rand.Rand) float64 { return q.Quantile(r.Float64()) }

// BitTyrantUploadCapacities returns the heterogeneous peer upload-capacity
// distribution used in §4.3.2, standing in for the measured distribution
// of the BitTyrant study (Piatek et al., NSDI'07): median 50 KBps and
// mean ≈280 KBps, strongly right-skewed. Units are KB/s.
//
// The original CDF is not reproducible from the paper; this table is
// calibrated so the two published summary statistics match (see the
// package tests), which is all §4.3.2's conclusion depends on.
func BitTyrantUploadCapacities() *QuantileTable {
	return NewQuantileTable(
		[]float64{0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1},
		[]float64{4, 12, 25, 50, 130, 500, 1200, 4000, 12000},
	)
}
