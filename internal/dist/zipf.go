package dist

import (
	"math"
	"math/rand"
)

// ZipfWeights returns the normalised Zipf popularity vector
// p_k = c/k^delta for k = 1..n (§3.3.1: skewed peer preferences over the
// K contents of a bundle).
func ZipfWeights(n int, delta float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	for k := 1; k <= n; k++ {
		w[k-1] = 1 / math.Pow(float64(k), delta)
		sum += w[k-1]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// SplitRate partitions an aggregate arrival rate lambda across n classes
// according to weights (which need not be normalised). It returns the
// per-class rates λ_k = p_k·Λ used when a bundle aggregates files of
// different popularity.
func SplitRate(lambda float64, weights []float64) []float64 {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	out := make([]float64, len(weights))
	if sum <= 0 {
		return out
	}
	for i, w := range weights {
		out[i] = lambda * w / sum
	}
	return out
}

// Categorical samples an index in [0, len(weights)) with probability
// proportional to weights.
type Categorical struct {
	cum []float64
}

// NewCategorical builds a categorical distribution over the given
// non-negative weights. It panics on empty or all-zero weights.
func NewCategorical(weights []float64) *Categorical {
	if len(weights) == 0 {
		panic("dist: categorical needs at least one weight")
	}
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		if w < 0 {
			panic("dist: categorical weight must be non-negative")
		}
		acc += w
		cum[i] = acc
	}
	if acc <= 0 {
		panic("dist: categorical weights must sum to a positive value")
	}
	for i := range cum {
		cum[i] /= acc
	}
	cum[len(cum)-1] = 1
	return &Categorical{cum: cum}
}

// Sample draws an index.
func (c *Categorical) Sample(r *rand.Rand) int {
	u := r.Float64()
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if u <= c.cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.cum) }

// PoissonCount samples a Poisson random count with the given mean using
// Knuth's product method for small means and a normal approximation with
// continuity correction for large means. It is used by the snapshot
// generator (file counts, download counts).
func PoissonCount(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	x := math.Round(mean + math.Sqrt(mean)*r.NormFloat64())
	if x < 0 {
		return 0
	}
	return int(x)
}

// PoissonPMF returns the Poisson probability mass e^{-mean}·mean^i/i!,
// computed stably in log space. It backs eq. (13)'s Poisson weighting of
// residual busy periods.
func PoissonPMF(mean float64, i int) float64 {
	if mean < 0 || i < 0 {
		return 0
	}
	if mean == 0 {
		if i == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(i) + 1)
	return math.Exp(-mean + float64(i)*math.Log(mean) - lg)
}
