package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantileTableEndpoints(t *testing.T) {
	q := NewQuantileTable([]float64{0, 0.5, 1}, []float64{1, 10, 100})
	if q.Quantile(0) != 1 || q.Quantile(1) != 100 {
		t.Fatalf("endpoints wrong: %v %v", q.Quantile(0), q.Quantile(1))
	}
	if q.Quantile(-0.5) != 1 || q.Quantile(2) != 100 {
		t.Fatal("out-of-range probabilities must clamp")
	}
	if q.Quantile(0.5) != 10 {
		t.Fatalf("breakpoint value: %v", q.Quantile(0.5))
	}
}

func TestQuantileTableLogLinearMidpoint(t *testing.T) {
	q := NewQuantileTable([]float64{0, 1}, []float64{1, 100})
	// Log-linear: Q(0.5) = sqrt(1·100) = 10.
	if got := q.Quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Q(0.5) = %v, want 10", got)
	}
}

func TestQuantileTableMonotone(t *testing.T) {
	q := BitTyrantUploadCapacities()
	prev := 0.0
	for p := 0.0; p <= 1.0; p += 0.001 {
		v := q.Quantile(p)
		if v < prev {
			t.Fatalf("quantile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestQuantileTableAnalyticMomentsMatchSampling(t *testing.T) {
	q := BitTyrantUploadCapacities()
	r := NewRand(31)
	var sum float64
	const n = 500000
	for i := 0; i < n; i++ {
		sum += q.Sample(r)
	}
	empMean := sum / n
	if am := q.Mean(); math.Abs(empMean-am) > 0.02*am {
		t.Fatalf("empirical mean %v vs analytic %v", empMean, am)
	}
}

func TestBitTyrantSummaryStatistics(t *testing.T) {
	// §4.3.2: "The average upload rate is 280KBps and the median is
	// 50KBps." The calibrated table must match both.
	q := BitTyrantUploadCapacities()
	if med := q.Median(); math.Abs(med-50) > 1e-9 {
		t.Fatalf("median = %v KBps, want 50", med)
	}
	if mean := q.Mean(); math.Abs(mean-280) > 15 {
		t.Fatalf("mean = %v KBps, want ≈280", mean)
	}
	if q.Var() <= 0 {
		t.Fatalf("variance must be positive, got %v", q.Var())
	}
}

func TestQuantileTableValidation(t *testing.T) {
	cases := []func(){
		func() { NewQuantileTable([]float64{0, 1}, []float64{1}) },
		func() { NewQuantileTable([]float64{0.1, 1}, []float64{1, 2}) },
		func() { NewQuantileTable([]float64{0, 0.9}, []float64{1, 2}) },
		func() { NewQuantileTable([]float64{0, 0.5, 0.5, 1}, []float64{1, 2, 3, 4}) },
		func() { NewQuantileTable([]float64{0, 0.5, 1}, []float64{1, 3, 2}) },
		func() { NewQuantileTable([]float64{0, 1}, []float64{0, 2}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestQuantileTableFlatSegment(t *testing.T) {
	q := NewQuantileTable([]float64{0, 0.5, 1}, []float64{5, 5, 10})
	if got := q.Quantile(0.25); got != 5 {
		t.Fatalf("flat segment Q(0.25) = %v, want 5", got)
	}
	// Mean: 0.5·5 + 0.5·(10−5)/ln2.
	want := 0.5*5 + 0.5*5/math.Log(2)
	if got := q.Mean(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

// Property: sampled values always lie within [min, max] of the table.
func TestQuantileTableSupportProperty(t *testing.T) {
	q := BitTyrantUploadCapacities()
	lo := q.Values[0]
	hi := q.Values[len(q.Values)-1]
	f := func(seed int64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := q.Sample(r)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
