package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleMoments draws n samples and returns their empirical mean and
// variance.
func sampleMoments(t *testing.T, d Dist, n int, seed int64) (mean, variance float64) {
	t.Helper()
	r := NewRand(seed)
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		sum += x
		sumsq += x * x
	}
	mean = sum / float64(n)
	variance = sumsq/float64(n) - mean*mean
	return mean, variance
}

// checkMoments asserts the empirical moments match the analytic ones
// within rel relative tolerance.
func checkMoments(t *testing.T, name string, d Dist, n int, rel float64) {
	t.Helper()
	mean, variance := sampleMoments(t, d, n, 42)
	if am := d.Mean(); math.Abs(mean-am) > rel*math.Abs(am)+1e-12 {
		t.Errorf("%s: empirical mean %.5g vs analytic %.5g", name, mean, am)
	}
	if av := d.Var(); !math.IsInf(av, 1) && math.Abs(variance-av) > 3*rel*math.Abs(av)+1e-12 {
		t.Errorf("%s: empirical var %.5g vs analytic %.5g", name, variance, av)
	}
}

func TestExponentialMoments(t *testing.T) {
	checkMoments(t, "exp(2)", Exponential{Rate: 2}, 200000, 0.02)
	checkMoments(t, "exp(0.01)", Exponential{Rate: 0.01}, 200000, 0.02)
}

func TestNewExponentialFromMean(t *testing.T) {
	e := NewExponentialFromMean(300)
	if got := e.Mean(); math.Abs(got-300) > 1e-12 {
		t.Fatalf("mean = %v, want 300", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive mean")
		}
	}()
	NewExponentialFromMean(0)
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 7.5}
	if d.Mean() != 7.5 || d.Var() != 0 {
		t.Fatalf("moments wrong: %v %v", d.Mean(), d.Var())
	}
	if d.Sample(nil) != 7.5 {
		t.Fatal("sample must equal value")
	}
}

func TestUniformMoments(t *testing.T) {
	checkMoments(t, "U(3,9)", Uniform{Lo: 3, Hi: 9}, 200000, 0.02)
}

func TestUniformRange(t *testing.T) {
	u := Uniform{Lo: -1, Hi: 2}
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		x := u.Sample(r)
		if x < -1 || x >= 2 {
			t.Fatalf("sample %v out of [-1,2)", x)
		}
	}
}

func TestParetoMoments(t *testing.T) {
	checkMoments(t, "Pareto(1,3)", Pareto{Scale: 1, Shape: 3}, 400000, 0.05)
}

func TestParetoInfiniteMean(t *testing.T) {
	p := Pareto{Scale: 1, Shape: 0.9}
	if !math.IsInf(p.Mean(), 1) {
		t.Fatal("shape<=1 must have infinite mean")
	}
	if !math.IsInf(Pareto{Scale: 1, Shape: 1.5}.Var(), 1) {
		t.Fatal("shape<=2 must have infinite variance")
	}
}

func TestParetoSupport(t *testing.T) {
	p := Pareto{Scale: 2, Shape: 2.5}
	r := NewRand(2)
	for i := 0; i < 1000; i++ {
		if x := p.Sample(r); x < 2 {
			t.Fatalf("Pareto sample %v below scale", x)
		}
	}
}

func TestLogNormalMoments(t *testing.T) {
	checkMoments(t, "LN(0,0.5)", LogNormal{Mu: 0, Sigma: 0.5}, 400000, 0.03)
}

func TestWeibullMoments(t *testing.T) {
	checkMoments(t, "Weibull(1.5,2)", Weibull{Shape: 1.5, Scale: 2}, 300000, 0.03)
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	w := Weibull{Shape: 1, Scale: 10}
	if math.Abs(w.Mean()-10) > 1e-9 {
		t.Fatalf("Weibull(1,10) mean = %v, want 10", w.Mean())
	}
	if math.Abs(w.Var()-100) > 1e-6 {
		t.Fatalf("Weibull(1,10) var = %v, want 100", w.Var())
	}
}

func TestHypoexponentialMoments(t *testing.T) {
	h := MaxOfExponentials(5, 10)
	// Mean of max of 5 exponentials with mean 10 is 10·H_5.
	want := 10 * (1 + 0.5 + 1.0/3 + 0.25 + 0.2)
	if math.Abs(h.Mean()-want) > 1e-9 {
		t.Fatalf("hypoexponential mean = %v, want %v", h.Mean(), want)
	}
	checkMoments(t, "hypo", h, 200000, 0.02)
}

func TestHypoexponentialMatchesMaxSimulation(t *testing.T) {
	// The distribution of max{X1..Xn} should match the hypoexponential
	// stage construction in mean.
	r := NewRand(7)
	const n, mean, trials = 4, 8.0, 200000
	var sum float64
	for i := 0; i < trials; i++ {
		m := 0.0
		for j := 0; j < n; j++ {
			if x := r.ExpFloat64() * mean; x > m {
				m = x
			}
		}
		sum += m
	}
	got := sum / trials
	want := MaxOfExponentials(n, mean).Mean()
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("max-of-exponentials empirical mean %v vs hypoexponential %v", got, want)
	}
}

func TestMixtureMoments(t *testing.T) {
	m := NewMixture(
		[]Dist{Exponential{Rate: 1.0 / 80}, Exponential{Rate: 1.0 / 300}},
		[]float64{0.75, 0.25},
	)
	want := 0.75*80 + 0.25*300
	if math.Abs(m.Mean()-want) > 1e-9 {
		t.Fatalf("mixture mean = %v, want %v", m.Mean(), want)
	}
	checkMoments(t, "mixture", m, 300000, 0.03)
}

func TestMixtureWeightNormalisation(t *testing.T) {
	m := NewMixture([]Dist{Deterministic{1}, Deterministic{3}}, []float64{2, 6})
	if math.Abs(m.Weights[0]-0.25) > 1e-12 || math.Abs(m.Weights[1]-0.75) > 1e-12 {
		t.Fatalf("weights not normalised: %v", m.Weights)
	}
	if math.Abs(m.Mean()-2.5) > 1e-12 {
		t.Fatalf("mean = %v, want 2.5", m.Mean())
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]Dist{Deterministic{1}}, []float64{1, 2}) },
		func() { NewMixture([]Dist{Deterministic{1}}, []float64{-1}) },
		func() { NewMixture([]Dist{Deterministic{1}}, []float64{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestShifted(t *testing.T) {
	s := Shifted{Base: Exponential{Rate: 1}, Offset: 5}
	if math.Abs(s.Mean()-6) > 1e-12 {
		t.Fatalf("mean = %v, want 6", s.Mean())
	}
	if math.Abs(s.Var()-1) > 1e-12 {
		t.Fatalf("var = %v, want 1", s.Var())
	}
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if s.Sample(r) < 5 {
			t.Fatal("shifted exponential below offset")
		}
	}
}

// Property: exponential samples are always non-negative and the sample
// mean over a modest batch is finite for any positive rate.
func TestExponentialPositivityProperty(t *testing.T) {
	f := func(seed int64, rateBits uint8) bool {
		rate := 0.001 * float64(rateBits%200+1) // (0, 0.2]
		e := Exponential{Rate: rate}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			if x := e.Sample(r); x < 0 || math.IsNaN(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mixture mean always lies within [min component mean, max
// component mean].
func TestMixtureMeanBoundedProperty(t *testing.T) {
	f := func(a, b uint16, w uint8) bool {
		m1 := float64(a%1000) + 1
		m2 := float64(b%1000) + 1
		wt := float64(w%99+1) / 100
		mix := NewMixture(
			[]Dist{Exponential{Rate: 1 / m1}, Exponential{Rate: 1 / m2}},
			[]float64{wt, 1 - wt},
		)
		lo, hi := math.Min(m1, m2), math.Max(m1, m2)
		mm := mix.Mean()
		return mm >= lo-1e-9 && mm <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
