package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonProcessRate(t *testing.T) {
	p := PoissonProcess{Rate: 0.5}
	r := NewRand(11)
	const horizon = 20000.0
	arrivals := CollectArrivals(p, r, horizon, 0)
	got := float64(len(arrivals)) / horizon
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("empirical rate %v, want 0.5", got)
	}
}

func TestPoissonProcessZeroRate(t *testing.T) {
	p := PoissonProcess{Rate: 0}
	if next := p.NextAfter(NewRand(1), 5); !math.IsInf(next, 1) {
		t.Fatalf("zero-rate process produced arrival at %v", next)
	}
}

func TestPoissonInterArrivalsExponential(t *testing.T) {
	p := PoissonProcess{Rate: 2}
	r := NewRand(12)
	prev := 0.0
	var sum, sumsq float64
	const n = 100000
	for i := 0; i < n; i++ {
		next := p.NextAfter(r, prev)
		gap := next - prev
		sum += gap
		sumsq += gap * gap
		prev = next
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("gap mean %v, want 0.5", mean)
	}
	// Exponential: var = mean² (CV = 1).
	if math.Abs(variance-0.25) > 0.02 {
		t.Fatalf("gap var %v, want 0.25", variance)
	}
}

func TestNonHomogeneousPoissonMatchesConstantRate(t *testing.T) {
	// An NHPP with constant rate must reduce to a plain Poisson process.
	nh := NonHomogeneousPoisson{Rate: func(float64) float64 { return 1.5 }, MaxRate: 1.5}
	r := NewRand(13)
	const horizon = 10000.0
	n := len(CollectArrivals(nh, r, horizon, 0))
	got := float64(n) / horizon
	if math.Abs(got-1.5) > 0.05 {
		t.Fatalf("empirical rate %v, want 1.5", got)
	}
}

func TestFlashCrowdExpectedCount(t *testing.T) {
	fc := FlashCrowd{Peak: 0.5, Decay: 600, Floor: 0.01}
	r := NewRand(14)
	const horizon = 3600.0
	var total int
	const reps = 50
	for i := 0; i < reps; i++ {
		total += len(CollectArrivals(fc, r, horizon, 0))
	}
	got := float64(total) / reps
	want := fc.ExpectedCount(horizon)
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("flash crowd arrivals %v, want ≈%v", got, want)
	}
}

func TestFlashCrowdDecays(t *testing.T) {
	// Early window should see a much higher arrival rate than a late one.
	fc := FlashCrowd{Peak: 1, Decay: 300, Floor: 0.005}
	r := NewRand(15)
	arrivals := CollectArrivals(fc, r, 4000, 0)
	var early, late int
	for _, a := range arrivals {
		switch {
		case a < 300:
			early++
		case a >= 3000:
			late++
		}
	}
	if early <= late {
		t.Fatalf("flash crowd did not decay: early=%d late=%d", early, late)
	}
}

func TestTraceArrivalsReplay(t *testing.T) {
	tr := NewTraceArrivals([]float64{5, 1, 3, 3, 9})
	r := NewRand(0)
	var got []float64
	now := 0.0
	for {
		next := tr.NextAfter(r, now)
		if math.IsInf(next, 1) {
			break
		}
		got = append(got, next)
		now = next
	}
	want := []float64{1, 3, 9} // strictly-after semantics skips the duplicate 3 and 5>3? no: 5 comes after 3
	_ = want
	// Expected: 1, 3, 5, 9 (the duplicate 3 is skipped because NextAfter
	// is strictly increasing from "now").
	expect := []float64{1, 3, 5, 9}
	if len(got) != len(expect) {
		t.Fatalf("replayed %v, want %v", got, expect)
	}
	for i := range expect {
		if got[i] != expect[i] {
			t.Fatalf("replayed %v, want %v", got, expect)
		}
	}
}

func TestTraceArrivalsExhaustion(t *testing.T) {
	tr := NewTraceArrivals([]float64{2})
	if next := tr.NextAfter(nil, 2); !math.IsInf(next, 1) {
		t.Fatalf("exhausted trace returned %v", next)
	}
}

func TestScaledProcess(t *testing.T) {
	base := PoissonProcess{Rate: 1}
	s := Scaled{Base: base, Speed: 4}
	r := NewRand(16)
	const horizon = 5000.0
	n := len(CollectArrivals(s, r, horizon, 0))
	got := float64(n) / horizon
	if math.Abs(got-4) > 0.15 {
		t.Fatalf("scaled rate %v, want 4", got)
	}
}

func TestOnOffSessionsCoverHorizonFraction(t *testing.T) {
	// On mean 300, off mean 900: long-run availability = 300/1200 = 0.25.
	o := OnOff{
		On:      NewExponentialFromMean(300),
		Off:     NewExponentialFromMean(900),
		StartOn: true,
	}
	r := NewRand(17)
	const horizon = 1e6
	sessions := o.Sessions(r, horizon)
	frac := AvailableFraction(sessions, horizon)
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("availability %v, want ≈0.25", frac)
	}
	for i, s := range sessions {
		if s.End <= s.Start {
			t.Fatalf("session %d empty: %+v", i, s)
		}
		if i > 0 && s.Start < sessions[i-1].End {
			t.Fatalf("sessions overlap at %d", i)
		}
	}
}

func TestOnOffStartOff(t *testing.T) {
	o := OnOff{
		On:      Deterministic{10},
		Off:     Deterministic{20},
		StartOn: false,
	}
	sessions := o.Sessions(NewRand(1), 100)
	if len(sessions) == 0 || sessions[0].Start != 20 {
		t.Fatalf("first session %+v, want start at 20", sessions)
	}
}

func TestMergeIntervals(t *testing.T) {
	merged := MergeIntervals([]Interval{
		{Start: 5, End: 7},
		{Start: 0, End: 2},
		{Start: 1, End: 3},
		{Start: 7, End: 9},
	})
	want := []Interval{{Start: 0, End: 3}, {Start: 5, End: 9}}
	if len(merged) != len(want) {
		t.Fatalf("merged = %v, want %v", merged, want)
	}
	for i := range want {
		if merged[i] != want[i] {
			t.Fatalf("merged = %v, want %v", merged, want)
		}
	}
}

func TestMergeIntervalsEmpty(t *testing.T) {
	if got := MergeIntervals(nil); got != nil {
		t.Fatalf("merge of nil = %v", got)
	}
}

func TestAvailableFractionClipping(t *testing.T) {
	sessions := []Interval{{Start: -10, End: 5}, {Start: 95, End: 200}}
	frac := AvailableFraction(sessions, 100)
	if math.Abs(frac-0.10) > 1e-12 {
		t.Fatalf("clipped fraction = %v, want 0.10", frac)
	}
}

func TestCollectArrivalsCap(t *testing.T) {
	p := PoissonProcess{Rate: 100}
	got := CollectArrivals(p, NewRand(3), 1e9, 25)
	if len(got) != 25 {
		t.Fatalf("cap ignored: %d arrivals", len(got))
	}
}

// Property: arrival times returned by any process here are strictly
// increasing.
func TestArrivalMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRand(seed)
		procs := []ArrivalProcess{
			PoissonProcess{Rate: 0.7},
			FlashCrowd{Peak: 0.3, Decay: 100, Floor: 0.05},
			Scaled{Base: PoissonProcess{Rate: 1}, Speed: 2},
		}
		for _, p := range procs {
			prev := 0.0
			for i := 0; i < 200; i++ {
				next := p.NextAfter(r, prev)
				if next <= prev {
					return false
				}
				prev = next
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: merged intervals are sorted, disjoint, and cover the same
// measure (within float tolerance) as the union of the inputs.
func TestMergeIntervalsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var ivs []Interval
		for i := 0; i+1 < len(raw); i += 2 {
			a := float64(raw[i] % 1000)
			b := a + float64(raw[i+1]%50) + 1
			ivs = append(ivs, Interval{Start: a, End: b})
		}
		merged := MergeIntervals(ivs)
		for i := 1; i < len(merged); i++ {
			if merged[i].Start <= merged[i-1].End {
				return false
			}
		}
		// Compare measure against a brute-force boolean cover.
		cover := make([]bool, 1100)
		for _, iv := range ivs {
			for x := int(iv.Start); x < int(iv.End); x++ {
				cover[x] = true
			}
		}
		var brute float64
		for _, c := range cover {
			if c {
				brute++
			}
		}
		var got float64
		for _, iv := range merged {
			got += iv.Duration()
		}
		return math.Abs(got-brute) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
