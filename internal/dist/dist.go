// Package dist provides the random-variate distributions and arrival
// processes used throughout the swarmavail simulators and workload
// generators.
//
// All sampling is explicit about its randomness source (*rand.Rand) so that
// every simulation in the repository is reproducible from a seed. The
// package deliberately exposes analytic moments (Mean, Var) next to the
// samplers: the model/simulation cross-checks in internal/queue and
// internal/core lean on them.
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a one-dimensional distribution that can report its analytic
// moments and draw samples.
//
// Implementations must be safe for concurrent use as values (they are
// immutable after construction); the *rand.Rand passed to Sample is the
// only mutable state involved.
type Dist interface {
	// Mean returns the expected value of the distribution.
	Mean() float64
	// Var returns the variance of the distribution.
	Var() float64
	// Sample draws one variate using r as the randomness source.
	Sample(r *rand.Rand) float64
}

// NewRand returns a deterministic random source seeded with seed.
// It is a tiny convenience wrapper so callers do not repeat the
// rand.New(rand.NewSource(...)) incantation.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Exponential is the exponential distribution with rate Rate (>0).
// Its mean is 1/Rate. It is the workhorse of the paper: inter-arrival
// times of peers and publishers, residence times, and service times are
// all exponential unless stated otherwise.
type Exponential struct {
	Rate float64
}

// NewExponentialFromMean returns an Exponential with the given mean.
func NewExponentialFromMean(mean float64) Exponential {
	if mean <= 0 {
		panic(fmt.Sprintf("dist: exponential mean must be positive, got %v", mean))
	}
	return Exponential{Rate: 1 / mean}
}

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Var returns 1/Rate².
func (e Exponential) Var() float64 { return 1 / (e.Rate * e.Rate) }

// Sample draws an exponential variate.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() / e.Rate }

// Deterministic is the degenerate distribution concentrated at Value.
// Useful as a service-time distribution when checking insensitivity
// properties of the M/G/∞ busy period.
type Deterministic struct {
	Value float64
}

// Mean returns Value.
func (d Deterministic) Mean() float64 { return d.Value }

// Var returns 0.
func (d Deterministic) Var() float64 { return 0 }

// Sample returns Value.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.Value }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Var returns (Hi-Lo)²/12.
func (u Uniform) Var() float64 { d := u.Hi - u.Lo; return d * d / 12 }

// Sample draws a uniform variate.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Pareto is the Pareto (type I) distribution with minimum Scale and tail
// index Shape. Heavy-tailed residence times in swarms are well described
// by Pareto laws; we use it for sensitivity experiments around the
// exponential assumptions of the paper.
type Pareto struct {
	Scale float64 // x_m > 0
	Shape float64 // α > 0
}

// Mean returns Scale·Shape/(Shape−1) for Shape > 1 and +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Shape <= 1 {
		return math.Inf(1)
	}
	return p.Scale * p.Shape / (p.Shape - 1)
}

// Var returns the variance for Shape > 2 and +Inf otherwise.
func (p Pareto) Var() float64 {
	if p.Shape <= 2 {
		return math.Inf(1)
	}
	a := p.Shape
	return p.Scale * p.Scale * a / ((a - 1) * (a - 1) * (a - 2))
}

// Sample draws a Pareto variate via inverse transform.
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := 1 - r.Float64() // in (0,1]
	return p.Scale / math.Pow(u, 1/p.Shape)
}

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma²)).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// Mean returns exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Var returns (exp(Sigma²)−1)·exp(2Mu+Sigma²).
func (l LogNormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// Sample draws a log-normal variate.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Weibull is the Weibull distribution with the given Shape (k) and
// Scale (λ) parameters.
type Weibull struct {
	Shape float64
	Scale float64
}

// Mean returns Scale·Γ(1+1/Shape).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// Var returns Scale²·(Γ(1+2/k) − Γ(1+1/k)²).
func (w Weibull) Var() float64 {
	g1 := math.Gamma(1 + 1/w.Shape)
	g2 := math.Gamma(1 + 2/w.Shape)
	return w.Scale * w.Scale * (g2 - g1*g1)
}

// Sample draws a Weibull variate via inverse transform.
func (w Weibull) Sample(r *rand.Rand) float64 {
	u := 1 - r.Float64()
	return w.Scale * math.Pow(-math.Log(u), 1/w.Shape)
}

// Hypoexponential is the distribution of a sum of independent exponential
// random variables with the given (not necessarily distinct) rates.
//
// In the paper it appears as the residual service requirement of the
// "virtual customer" that starts a residual busy period with n extant
// leechers: Y = max{X₁,…,X_n} of i.i.d. exponentials with mean s/μ is
// hypoexponential with rates (μ/s, 2μ/s, …, nμ/s) — see Lemma 3.3.
type Hypoexponential struct {
	Rates []float64
}

// MaxOfExponentials returns the Hypoexponential distribution of the
// maximum of n i.i.d. exponential random variables with the given mean,
// i.e. the hypoexponential with rates (1/mean, 2/mean, …, n/mean).
func MaxOfExponentials(n int, mean float64) Hypoexponential {
	rates := make([]float64, n)
	for i := 1; i <= n; i++ {
		rates[i-1] = float64(i) / mean
	}
	return Hypoexponential{Rates: rates}
}

// Mean returns Σ 1/rateᵢ.
func (h Hypoexponential) Mean() float64 {
	var m float64
	for _, rate := range h.Rates {
		m += 1 / rate
	}
	return m
}

// Var returns Σ 1/rateᵢ² (stages are independent).
func (h Hypoexponential) Var() float64 {
	var v float64
	for _, rate := range h.Rates {
		v += 1 / (rate * rate)
	}
	return v
}

// Sample draws a hypoexponential variate as the sum of its stages.
func (h Hypoexponential) Sample(r *rand.Rand) float64 {
	var x float64
	for _, rate := range h.Rates {
		x += r.ExpFloat64() / rate
	}
	return x
}

// Mixture is a finite mixture distribution: component i is drawn with
// probability Weights[i] (weights need not be normalised; they are
// normalised on construction via NewMixture).
//
// The two-point exponential mixture is exactly the service distribution
// G(·) of Browne–Steele's exceptional-first-service busy period as
// parameterised in eq. (9): a peer service time s/μ with probability q₁
// and a publisher residence u with probability q₂ = 1−q₁.
type Mixture struct {
	Components []Dist
	Weights    []float64 // normalised, cumulative weights live in cum
	cum        []float64
}

// NewMixture builds a mixture from parallel component and weight slices.
// It panics if the slices disagree in length, are empty, or the weights
// do not sum to a positive value.
func NewMixture(components []Dist, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("dist: mixture needs matching non-empty components and weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("dist: mixture weight must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		panic("dist: mixture weights must sum to a positive value")
	}
	norm := make([]float64, len(weights))
	cum := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		norm[i] = w / total
		acc += norm[i]
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard against round-off
	return &Mixture{Components: components, Weights: norm, cum: cum}
}

// Mean returns Σ wᵢ·E[Xᵢ].
func (m *Mixture) Mean() float64 {
	var mean float64
	for i, c := range m.Components {
		mean += m.Weights[i] * c.Mean()
	}
	return mean
}

// Var returns the mixture variance E[X²] − E[X]².
func (m *Mixture) Var() float64 {
	var m1, m2 float64
	for i, c := range m.Components {
		cm := c.Mean()
		m1 += m.Weights[i] * cm
		m2 += m.Weights[i] * (c.Var() + cm*cm)
	}
	return m2 - m1*m1
}

// Sample draws from a randomly selected component.
func (m *Mixture) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for i, c := range m.cum {
		if u <= c {
			return m.Components[i].Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

// Shifted adds a constant Offset to samples from Base. Mean shifts by
// Offset; variance is unchanged.
type Shifted struct {
	Base   Dist
	Offset float64
}

// Mean returns Base.Mean() + Offset.
func (s Shifted) Mean() float64 { return s.Base.Mean() + s.Offset }

// Var returns Base.Var().
func (s Shifted) Var() float64 { return s.Base.Var() }

// Sample draws from Base and shifts.
func (s Shifted) Sample(r *rand.Rand) float64 { return s.Base.Sample(r) + s.Offset }
