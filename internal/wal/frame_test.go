package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("a"),
		[]byte("hello frame"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	for i, want := range payloads {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestFrameHeaderLayout(t *testing.T) {
	payload := []byte("layout probe")
	buf := AppendFrame(nil, payload)
	if len(buf) != FrameHeaderSize+len(payload) {
		t.Fatalf("envelope is %d bytes, want %d", len(buf), FrameHeaderSize+len(payload))
	}
	if n := binary.LittleEndian.Uint32(buf[0:4]); int(n) != len(payload) {
		t.Fatalf("length field %d, want %d", n, len(payload))
	}
	wantCRC := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
	if c := binary.LittleEndian.Uint32(buf[4:8]); c != wantCRC {
		t.Fatalf("crc field %#x, want %#x", c, wantCRC)
	}
	if !bytes.Equal(buf[FrameHeaderSize:], payload) {
		t.Fatal("payload bytes differ")
	}
}

// TestFrameReaderReusesBuffer pins the documented aliasing contract:
// the slice Next returns is only valid until the following Next.
func TestFrameReaderReusesBuffer(t *testing.T) {
	buf := AppendFrame(nil, []byte("first"))
	buf = AppendFrame(buf, []byte("worse"))
	fr := NewFrameReader(bytes.NewReader(buf))
	a, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	keep := string(a) // copy before the next frame overwrites
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if keep != "first" {
		t.Fatalf("copied payload %q, want %q", keep, "first")
	}
	if string(a) != "worse" {
		t.Fatalf("reader did not reuse its buffer: %q", a)
	}
}

func TestFrameCorruption(t *testing.T) {
	whole := AppendFrame(nil, []byte("intact payload bytes"))
	cases := []struct {
		name string
		data []byte
	}{
		{"torn header", whole[:FrameHeaderSize-2]},
		{"torn payload", whole[:len(whole)-3]},
		{"flipped payload bit", flip(whole, len(whole)-1)},
		{"flipped crc bit", flip(whole, 5)},
		{"zero length", AppendFrame(nil, nil)},
		{"oversized length", oversized()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr := NewFrameReader(bytes.NewReader(tc.data))
			_, err := fr.Next()
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestFrameTornHeaderAfterCleanFrames: a trailing partial header is a
// torn write, reported as corrupt (the WAL repairs it by truncating).
func TestFrameTornTail(t *testing.T) {
	buf := AppendFrame(nil, []byte("complete"))
	buf = append(buf, 0x07, 0x00) // two bytes of a next header
	fr := NewFrameReader(bytes.NewReader(buf))
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn tail: got %v, want ErrCorrupt", err)
	}
}

// TestFinishFrame: building a payload in place after a reserved header
// must produce byte-identical output to AppendFrame.
func TestFinishFrame(t *testing.T) {
	payload := []byte("in-place construction")
	env := make([]byte, FrameHeaderSize, FrameHeaderSize+len(payload))
	env = append(env, payload...)
	env, err := FinishFrame(env)
	if err != nil {
		t.Fatal(err)
	}
	if want := AppendFrame(nil, payload); !bytes.Equal(env, want) {
		t.Fatalf("FinishFrame produced %x, AppendFrame %x", env, want)
	}
	got, err := NewFrameReader(bytes.NewReader(env)).Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip got %q", got)
	}
}

func TestFinishFrameRejectsBadSizes(t *testing.T) {
	if _, err := FinishFrame(make([]byte, FrameHeaderSize-1)); err == nil {
		t.Fatal("short env accepted")
	}
	if _, err := FinishFrame(make([]byte, FrameHeaderSize)); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func flip(frame []byte, i int) []byte {
	out := append([]byte(nil), frame...)
	out[i] ^= 0x01
	return out
}

func oversized() []byte {
	var hdr [FrameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(MaxFrameBytes+1))
	return hdr[:]
}
