package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays the whole log into a slice of payload copies.
func collect(t *testing.T, l *Log, fromSeq uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	if err := l.Replay(fromSeq, func(seq uint64, payload []byte) error {
		got[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func openT(t *testing.T, dir string, opts Options) (*Log, OpenStats) {
	t.Helper()
	l, st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several rotations.
	l, _ := openT(t, dir, Options{SegmentBytes: 64, Policy: SyncNone})
	const n = 50
	for i := 1; i <= n; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("frame-%03d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
	}
	if l.LastSeq() != n {
		t.Fatalf("LastSeq = %d, want %d", l.LastSeq(), n)
	}
	if l.Segments() < 2 {
		t.Fatalf("expected rotation, got %d segments", l.Segments())
	}
	got := collect(t, l, 1)
	if len(got) != n {
		t.Fatalf("replayed %d frames, want %d", len(got), n)
	}
	for i := 1; i <= n; i++ {
		if got[uint64(i)] != fmt.Sprintf("frame-%03d", i) {
			t.Fatalf("frame %d = %q", i, got[uint64(i)])
		}
	}
	// fromSeq skips the prefix.
	if tail := collect(t, l, n-4); len(tail) != 5 {
		t.Fatalf("tail replay got %d frames, want 5", len(tail))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen: everything survives, appends continue the sequence.
	l2, st := openT(t, dir, Options{SegmentBytes: 64, Policy: SyncNone})
	defer l2.Close()
	if st.Frames != n || st.TruncatedBytes != 0 || st.DroppedSegments != 0 {
		t.Fatalf("reopen stats %+v", st)
	}
	seq, err := l2.Append([]byte("after"))
	if err != nil || seq != n+1 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
	if got := collect(t, l2, 1); len(got) != n+1 || got[n+1] != "after" {
		t.Fatalf("replay after reopen: %d frames", len(got))
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNone})
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	path := l.active.path
	l.Close()

	// Simulate a crash mid-append: garbage half-frame at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, st := openT(t, dir, Options{Policy: SyncNone})
	defer l2.Close()
	if st.TruncatedBytes != 6 {
		t.Fatalf("TruncatedBytes = %d, want 6", st.TruncatedBytes)
	}
	if got := collect(t, l2, 1); len(got) != 5 {
		t.Fatalf("replayed %d frames after repair, want 5", len(got))
	}
	// The repaired log accepts appends again.
	if seq, err := l2.Append([]byte("post-repair")); err != nil || seq != 6 {
		t.Fatalf("append after repair: seq=%d err=%v", seq, err)
	}
}

func TestCorruptMiddleDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 32, Policy: SyncNone})
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if segs < 3 {
		t.Fatalf("want ≥3 segments, got %d", segs)
	}
	first := l.sealed[0]
	l.Close()

	// Flip one payload byte in the FIRST segment: every later frame —
	// including whole later segments — is beyond the repair point.
	raw, err := os.ReadFile(first.path)
	if err != nil {
		t.Fatal(err)
	}
	raw[frameHeaderSize] ^= 0xff
	if err := os.WriteFile(first.path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, st := openT(t, dir, Options{SegmentBytes: 32, Policy: SyncNone})
	defer l2.Close()
	if st.DroppedSegments != segs-1 {
		t.Fatalf("DroppedSegments = %d, want %d", st.DroppedSegments, segs-1)
	}
	if got := collect(t, l2, 1); len(got) != 0 {
		t.Fatalf("replayed %d frames from a log corrupt at frame 1", len(got))
	}
	if l2.LastSeq() != 0 {
		t.Fatalf("LastSeq = %d, want 0", l2.LastSeq())
	}
}

func TestTruncateThroughDropsSealedSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 48, Policy: SyncNone})
	defer l.Close()
	for i := 1; i <= 30; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	if n := l.Segments(); n != 0 {
		t.Fatalf("segments after full truncate = %d, want 0", n)
	}
	if got := collect(t, l, 1); len(got) != 0 {
		t.Fatalf("replay after full truncate returned %d frames", len(got))
	}
	// The sequence continues monotonically.
	seq, err := l.Append([]byte("next-era"))
	if err != nil || seq != 31 {
		t.Fatalf("append after truncate: seq=%d err=%v", seq, err)
	}
	if got := collect(t, l, 1); len(got) != 1 || got[31] != "next-era" {
		t.Fatalf("replay after truncate+append: %v", got)
	}

	// Partial truncate keeps frames above the mark.
	for i := 32; i <= 40; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateThrough(35); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 1)
	for seq := range got {
		if seq <= 31 {
			// Whole segments only: frames ≤35 may survive if they share
			// a segment with later frames, but a fully-covered segment
			// must be gone — seq 31's 48-byte segment sealed well
			// before 35.
			t.Fatalf("frame %d should have been dropped", seq)
		}
	}
	if _, ok := got[40]; !ok {
		t.Fatal("frame 40 lost by partial truncate")
	}
}

func TestReopenAfterTruncateThroughKeepsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 48, Policy: SyncNone})
	for i := 1; i <= 30; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateThrough(15); err != nil {
		t.Fatal(err)
	}
	before := collect(t, l, 1)
	if len(before) == 0 {
		t.Fatal("truncate removed everything")
	}
	l.Close()

	// Reopen: the log no longer starts at sequence 1 — the surviving
	// suffix must be kept intact, not mistaken for corruption.
	l2, st := openT(t, dir, Options{SegmentBytes: 48, Policy: SyncNone})
	defer l2.Close()
	if st.DroppedSegments != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("reopen after checkpoint-truncate repaired a healthy log: %+v", st)
	}
	after := collect(t, l2, 1)
	if len(after) != len(before) {
		t.Fatalf("reopen kept %d frames, want %d", len(after), len(before))
	}
	if _, ok := after[30]; !ok {
		t.Fatal("frame 30 lost on reopen")
	}
	if seq, err := l2.Append([]byte("onward")); err != nil || seq != 31 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestAdvanceTo(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNone})
	for i := 1; i <= 5; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Advancing below the tail is a no-op.
	if err := l.AdvanceTo(3); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 5 {
		t.Fatalf("LastSeq after no-op advance = %d", l.LastSeq())
	}
	// Advancing past the tail (checkpoint newer than the journal) drops
	// the covered frames and moves the sequence.
	if err := l.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if seq, err := l.Append([]byte("y")); err != nil || seq != 101 {
		t.Fatalf("append after advance: seq=%d err=%v", seq, err)
	}
	l.Close()
	l2, st := openT(t, dir, Options{Policy: SyncNone})
	defer l2.Close()
	if st.Frames != 1 {
		t.Fatalf("frames after reopen = %d, want 1", st.Frames)
	}
	got := collect(t, l2, 1)
	if got[101] != "y" {
		t.Fatalf("frame 101 = %q", got[101])
	}
}

func TestTruncateFromCutsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 64, Policy: SyncNone})
	defer l.Close()
	for i := 1; i <= 20; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateFrom(8); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 1)
	if len(got) != 7 {
		t.Fatalf("replayed %d frames after TruncateFrom(8), want 7", len(got))
	}
	if _, ok := got[8]; ok {
		t.Fatal("frame 8 survived TruncateFrom(8)")
	}
	if seq, err := l.Append([]byte("rewritten")); err != nil || seq != 8 {
		t.Fatalf("append after cut: seq=%d err=%v", seq, err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncEachAppend, SyncInterval, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openT(t, dir, Options{Policy: policy, SyncEvery: time.Millisecond})
			for i := 0; i < 10; i++ {
				if _, err := l.Append([]byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			if policy == SyncInterval {
				time.Sleep(5 * time.Millisecond) // let the ticker fire
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, st := openT(t, dir, Options{Policy: policy})
			defer l2.Close()
			if st.Frames != 10 {
				t.Fatalf("frames after reopen = %d, want 10", st.Frames)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"batch": SyncEachAppend, "": SyncEachAppend,
		"interval": SyncInterval, "off": SyncNone, "OFF": SyncNone,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("everysooften"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNone})
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
	if err := l.TruncateThrough(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("truncate after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestAppendRejectsOversizedPayload(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNone})
	defer l.Close()
	if _, err := l.Append(nil); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, st := openT(t, dir, Options{Policy: SyncNone})
	defer l.Close()
	if st.Frames != 0 || st.Segments != 0 {
		t.Fatalf("stats with foreign file: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatalf("foreign file touched: %v", err)
	}
}
