package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The frame codec is the one envelope every binary surface of the
// system shares: WAL segments on disk, checkpoint files, the follower's
// WAL-shipping HTTP stream, and the binary ingest stream protocol all
// carry
//
//	uint32 LE  payload length
//	uint32 LE  CRC32-C (Castagnoli) of the payload
//	payload bytes
//
// Keeping one implementation here — instead of per-consumer copies —
// means one set of corruption rules: a length of 0 or above
// MaxFrameBytes is corruption (never an allocation request), a short
// read is a torn frame, and a checksum mismatch rejects the payload
// before any byte of it is interpreted.

// ErrCorrupt marks an invalid frame: a torn header or payload, an
// out-of-range length, or a checksum mismatch. Readers wrap it, so
// errors.Is(err, ErrCorrupt) identifies the class.
var ErrCorrupt = errors.New("wal: corrupt frame")

// FrameHeaderSize is the per-frame envelope overhead in bytes:
// the length word plus the CRC word.
const FrameHeaderSize = 8

// frameHeaderSize is the historical internal name; the log code reads
// better with the short form.
const frameHeaderSize = FrameHeaderSize

// MaxFrameBytes bounds a single frame's payload; a length field larger
// than this is treated as corruption rather than an allocation request.
const MaxFrameBytes = 64 << 20

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends payload to dst in the frame encoding
// (length + CRC32-C + payload). Exported so sibling binary formats —
// internal/ingest's checkpoint files and streaming ingest protocol, the
// cluster WAL shipper — share the framing and its corruption detection.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// FinishFrame seals a frame built in place: env must start with
// FrameHeaderSize reserved bytes (their content ignored) followed by
// the payload. The header is written over the reserved prefix and env
// is returned whole. This is the zero-copy complement to AppendFrame
// for callers that append the payload directly after a reserved header
// — one allocation for the whole envelope instead of payload + copy.
func FinishFrame(env []byte) ([]byte, error) {
	if len(env) < FrameHeaderSize {
		return nil, fmt.Errorf("wal: FinishFrame on %d bytes, need %d reserved", len(env), FrameHeaderSize)
	}
	payload := env[FrameHeaderSize:]
	if len(payload) == 0 || len(payload) > MaxFrameBytes {
		return nil, fmt.Errorf("wal: FinishFrame payload length %d out of range", len(payload))
	}
	binary.LittleEndian.PutUint32(env[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(env[4:8], crc32.Checksum(payload, castagnoli))
	return env, nil
}

// frameReader decodes frames from a byte stream.
type frameReader struct {
	r   io.Reader
	buf []byte
}

// next returns the next frame's payload. io.EOF marks a clean end;
// ErrCorrupt (wrapped) marks a torn or invalid frame.
func (fr *frameReader) next() ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: torn frame header: %v", ErrCorrupt, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > MaxFrameBytes {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, length)
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	payload := fr.buf[:length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, fmt.Errorf("%w: torn frame payload: %v", ErrCorrupt, err)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// FrameReader decodes a stream of frames written by AppendFrame.
type FrameReader struct {
	fr frameReader
}

// NewFrameReader reads frames from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{fr: frameReader{r: r}}
}

// Next returns the next frame's payload, valid until the following
// call. io.EOF marks a clean end of stream; a torn or invalid frame
// returns an error wrapping ErrCorrupt.
func (r *FrameReader) Next() ([]byte, error) { return r.fr.next() }
