package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay mutates raw segment bytes and requires that Open +
// Replay never panic: any corruption must either be repaired (clean
// prefix) or surface as an error, and an append must still work on the
// repaired log. This is the crash-recovery contract under arbitrary
// disk damage, not just the torn tails a clean SIGKILL leaves.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed two-frame segment...
	var seed []byte
	seed = AppendFrame(seed, []byte("hello"))
	seed = AppendFrame(seed, []byte("world, this is frame two"))
	f.Add(seed)
	// ...and with its classic mutations: torn tail, zero length, huge
	// length, flipped CRC.
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 9})
	f.Add(append([]byte{5, 0, 0, 0, 0, 0, 0, 0}, 'a', 'b', 'c', 'd', 'e'))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", 1)), data, 0o644); err != nil {
			t.Skip()
		}
		l, st, err := Open(dir, Options{Policy: SyncNone})
		if err != nil {
			return // I/O errors are allowed; panics are not
		}
		defer l.Close()
		var frames uint64
		if err := l.Replay(1, func(seq uint64, payload []byte) error {
			frames++
			return nil
		}); err != nil {
			t.Fatalf("replay of a repaired log reported corruption: %v (stats %+v)", err, st)
		}
		if frames != st.Frames {
			t.Fatalf("replayed %d frames, Open reported %d", frames, st.Frames)
		}
		// The repaired log must accept and retain a new append.
		seq, err := l.Append([]byte("post-repair"))
		if err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if seq != st.Frames+1 {
			t.Fatalf("append seq %d after %d recovered frames", seq, st.Frames)
		}
	})
}
